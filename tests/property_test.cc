#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <set>
#include <string>

#include "common/rng.h"
#include "datasets/specs.h"
#include "eval/metrics.h"

namespace stm {
namespace {

// ---------- generator invariants over every canned spec ----------

using SpecFactory = datasets::SyntheticSpec (*)(uint64_t);

struct NamedSpec {
  const char* name;
  SpecFactory factory;
};

class SpecPropertyTest : public ::testing::TestWithParam<NamedSpec> {};

datasets::SyntheticSpec SmallVariant(const NamedSpec& named) {
  datasets::SyntheticSpec spec = named.factory(97);
  spec.num_docs = 60;
  spec.pretrain_docs = std::min<size_t>(spec.pretrain_docs, 40);
  spec.aux_docs_per_topic = std::min<size_t>(spec.aux_docs_per_topic, 5);
  return spec;
}

TEST_P(SpecPropertyTest, TokensAndLabelsWellFormed) {
  const datasets::SyntheticDataset data =
      datasets::Generate(SmallVariant(GetParam()));
  ASSERT_EQ(data.corpus.num_docs(), 60u);
  for (const auto& doc : data.corpus.docs()) {
    ASSERT_FALSE(doc.labels.empty());
    for (int label : doc.labels) {
      ASSERT_GE(label, 0);
      ASSERT_LT(static_cast<size_t>(label), data.corpus.num_labels());
      ASSERT_TRUE(data.tree.IsLeaf(label));
    }
    ASSERT_FALSE(doc.tokens.empty());
    for (int32_t id : doc.tokens) {
      ASSERT_GE(id, text::kNumSpecialTokens);
      ASSERT_LT(static_cast<size_t>(id), data.corpus.vocab().size());
    }
    // label_path is a real root-to-leaf chain for the primary label.
    ASSERT_FALSE(doc.label_path.empty());
    EXPECT_EQ(doc.label_path.back(), doc.labels[0]);
    EXPECT_EQ(data.tree.ParentOf(doc.label_path.front()), -1);
  }
}

TEST_P(SpecPropertyTest, SupervisionCoversEveryLeaf) {
  const datasets::SyntheticDataset data =
      datasets::Generate(SmallVariant(GetParam()));
  ASSERT_EQ(data.supervision.class_keywords.size(),
            data.leaf_classes.size());
  for (size_t c = 0; c < data.leaf_classes.size(); ++c) {
    ASSERT_FALSE(data.supervision.class_keywords[c].empty());
    // First seed is the class-name token.
    EXPECT_EQ(data.supervision.class_keywords[c][0],
              data.leaf_name_tokens[c][0]);
  }
  EXPECT_EQ(data.label_descriptions.size(), data.leaf_classes.size());
}

TEST_P(SpecPropertyTest, DeterministicAcrossCalls) {
  const datasets::SyntheticDataset a =
      datasets::Generate(SmallVariant(GetParam()));
  const datasets::SyntheticDataset b =
      datasets::Generate(SmallVariant(GetParam()));
  ASSERT_EQ(a.fingerprint, b.fingerprint);
  for (size_t d = 0; d < a.corpus.num_docs(); ++d) {
    ASSERT_EQ(a.corpus.docs()[d].tokens, b.corpus.docs()[d].tokens);
    ASSERT_EQ(a.corpus.docs()[d].labels, b.corpus.docs()[d].labels);
    ASSERT_EQ(a.corpus.docs()[d].metadata, b.corpus.docs()[d].metadata);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSpecs, SpecPropertyTest,
    ::testing::Values(
        NamedSpec{"agnews", datasets::AgNewsSpec},
        NamedSpec{"nyt", datasets::NytSpec},
        NamedSpec{"twentynews", datasets::TwentyNewsSpec},
        NamedSpec{"nyt_topic", datasets::NytTopicSpec},
        NamedSpec{"nyt_location", datasets::NytLocationSpec},
        NamedSpec{"yelp", datasets::YelpSpec},
        NamedSpec{"imdb", datasets::ImdbSpec},
        NamedSpec{"dbpedia", datasets::DbpediaSpec},
        NamedSpec{"amazon_flat", datasets::AmazonFlatSpec},
        NamedSpec{"arxiv", datasets::ArxivSpec},
        NamedSpec{"yelp_hier", datasets::YelpHierSpec},
        NamedSpec{"amazon_taxo", datasets::AmazonTaxoSpec},
        NamedSpec{"dbpedia_taxo", datasets::DbpediaTaxoSpec},
        NamedSpec{"github_bio", datasets::GithubBioSpec},
        NamedSpec{"github_ai", datasets::GithubAiSpec},
        NamedSpec{"github_sec", datasets::GithubSecSpec},
        NamedSpec{"amazon_meta", datasets::AmazonMetaSpec},
        NamedSpec{"twitter", datasets::TwitterSpec},
        NamedSpec{"mag_cs", datasets::MagCsSpec},
        NamedSpec{"pubmed", datasets::PubMedSpec}),
    [](const ::testing::TestParamInfo<NamedSpec>& info) {
      return std::string(info.param.name);
    });

// ---------- metric properties over random label assignments ----------

class MetricPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetricPropertyTest, SingleLabelMetricInvariants) {
  Rng rng(GetParam());
  const size_t n = 120;
  const size_t c = 2 + rng.UniformInt(8);
  std::vector<int> gold(n);
  std::vector<int> pred(n);
  for (size_t i = 0; i < n; ++i) {
    gold[i] = static_cast<int>(rng.UniformInt(c));
    pred[i] = static_cast<int>(rng.UniformInt(c));
  }
  const double acc = eval::Accuracy(pred, gold);
  const double micro = eval::MicroF1(pred, gold, c);
  const double macro = eval::MacroF1(pred, gold, c);
  // Micro-F1 equals accuracy for single-label multi-class.
  EXPECT_NEAR(micro, acc, 1e-9);
  EXPECT_GE(macro, 0.0);
  EXPECT_LE(macro, 1.0);
  // Perfect prediction dominates every random prediction.
  EXPECT_GE(eval::MicroF1(gold, gold, c), micro);
  EXPECT_GE(eval::MacroF1(gold, gold, c) + 1e-12, macro);
}

TEST_P(MetricPropertyTest, RankingMetricInvariants) {
  Rng rng(GetParam() + 1000);
  const size_t n = 60;
  const size_t num_labels = 12;
  std::vector<std::vector<int>> gold(n);
  std::vector<std::vector<int>> ranked(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t k = 1 + rng.UniformInt(3);
    for (size_t j : rng.SampleWithoutReplacement(num_labels, k)) {
      gold[i].push_back(static_cast<int>(j));
    }
    for (size_t j : rng.Permutation(num_labels)) {
      ranked[i].push_back(static_cast<int>(j));
    }
  }
  // P@k and NDCG@k lie in [0,1]; NDCG of a ranking that lists the gold
  // labels first is 1.
  for (size_t k : {1, 3, 5}) {
    const double p = eval::PrecisionAtK(ranked, gold, k);
    const double ndcg = eval::NdcgAtK(ranked, gold, k);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    EXPECT_GE(ndcg, 0.0);
    EXPECT_LE(ndcg, 1.0 + 1e-12);
  }
  std::vector<std::vector<int>> ideal(n);
  for (size_t i = 0; i < n; ++i) {
    ideal[i] = gold[i];
    for (size_t j = 0; j < num_labels; ++j) {
      if (std::find(gold[i].begin(), gold[i].end(), static_cast<int>(j)) ==
          gold[i].end()) {
        ideal[i].push_back(static_cast<int>(j));
      }
    }
  }
  EXPECT_NEAR(eval::NdcgAtK(ideal, gold, 5), 1.0, 1e-12);
  // Example-F1 of gold against itself is 1.
  EXPECT_NEAR(eval::ExampleF1(gold, gold), 1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace stm
