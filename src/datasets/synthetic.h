#ifndef STM_DATASETS_SYNTHETIC_H_
#define STM_DATASETS_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "taxonomy/taxonomy.h"
#include "text/corpus.h"

namespace stm::datasets {

// One class (taxonomy node) in a synthetic dataset specification.
struct ClassSpec {
  // Human-readable name. Multi-word names ("machine learning") are split
  // into tokens; each token enters the vocabulary and the class' topical
  // distribution, so label-name-only methods can anchor on them.
  std::string name;

  // Extra seed keywords beyond the auto-generated topical vocabulary.
  std::vector<std::string> keywords;

  // Relative prior mass (class imbalance). Only leaves receive documents.
  double prior = 1.0;

  // Parent node index within the spec (-1 = root).
  int parent = -1;
};

// Full specification of a synthetic corpus. The generator mirrors the
// structure knobs that differentiate the tutorial's benchmark datasets:
// ambiguity (ConWea), label-name coverage (LOTClass/X-Class), hierarchy
// (WeSHClass/TaxoClass), imbalance (NYT), metadata (MetaCat/MICoL).
struct SyntheticSpec {
  std::string dataset_name = "synthetic";
  std::vector<ClassSpec> classes;

  size_t num_docs = 800;
  size_t doc_len_min = 14;
  size_t doc_len_max = 38;

  size_t background_vocab = 600;   // shared Zipfian background words
  size_t class_vocab = 24;         // generated topical words per class
  double topical_fraction = 0.42;  // P(token is topical | leaf doc)
  double topic_noise = 0.16;       // P(topical token from a random class)
  double parent_share = 0.35;      // hierarchical: P(topical token from an
                                   // ancestor theme)

  // Polysemy: `num_ambiguous` tokens each shared between two classes with
  // substantial weight, so context-free seed matching misfires. When
  // `ambiguous_seeds` is set, each class's seed keywords include one of
  // its ambiguous words (the ConWea setting: user-provided seeds carry
  // polysemous words like "penalty").
  size_t num_ambiguous = 0;
  bool ambiguous_seeds = true;

  // Multi-label generation: each doc samples 1..max_labels distinct leaves.
  bool multi_label = false;
  size_t max_labels = 3;

  // Metadata. Users "cause" documents (global metadata); tags "describe"
  // them (local metadata); references link same-topic documents.
  size_t num_users = 0;
  double user_affinity = 0.85;     // P(doc's user is from its class pool)
  size_t num_tags = 0;             // total tags, partitioned among classes
  size_t tags_per_doc = 0;
  double tag_noise = 0.15;         // P(tag drawn from a random class)
  size_t refs_per_doc = 0;         // citation-style doc->doc links
  double ref_same_class = 0.9;     // P(reference targets a same-class doc)
  std::string venue_prefix;        // non-empty: add per-class venue metadata

  // Auxiliary topics: extra classes (disjoint names/topical words, same
  // background) used to pre-train transfer components (the NLI relevance
  // model) without leaking evaluation classes.
  size_t num_aux_topics = 0;
  size_t aux_docs_per_topic = 40;

  // Size of the "general corpus" for LM pre-training (drawn from all
  // themes, eval + aux, labels discarded).
  size_t pretrain_docs = 1200;

  // When false, the pre-training corpus draws from auxiliary themes and
  // background only — the evaluation domain is *out of distribution* for
  // the pre-trained LM, as in transfer settings (MICoL's SciBERT on MAG).
  bool pretrain_include_eval = true;

  uint64_t seed = 1;
};

// The generated bundle handed to methods and benches.
struct SyntheticDataset {
  // Evaluation corpus with gold labels (methods must not read them).
  text::Corpus corpus;

  // The label taxonomy (flat specs produce a forest of roots).
  taxonomy::LabelTree tree;

  // Indices of leaf classes (the classes documents carry), in the order
  // used by Corpus::label_names for flat evaluation.
  std::vector<int> leaf_classes;

  // Weak supervision: per-leaf seed keywords (first entry = name token).
  text::WeakSupervision supervision;

  // Natural-language-ish label descriptions (name + keywords), per leaf.
  std::vector<std::string> label_descriptions;

  // General corpus for MiniLm pre-training (unlabeled token sequences).
  std::vector<std::vector<int32_t>> pretrain_docs;

  // Auxiliary topic material for transfer pre-training.
  std::vector<std::string> aux_topic_names;
  std::vector<std::vector<int32_t>> aux_topic_name_tokens;
  std::vector<std::vector<int32_t>> aux_docs;
  std::vector<int> aux_labels;     // index into aux_topic_names

  // Per-leaf name token ids (possibly multi-token).
  std::vector<std::vector<int32_t>> leaf_name_tokens;

  // Deterministic fingerprint (for PLM cache keys).
  uint64_t fingerprint = 0;
};

// Generates a dataset from `spec`. Deterministic in `spec.seed`.
SyntheticDataset Generate(const SyntheticSpec& spec);

// Draws `count` labeled documents per leaf class (for the DOCS supervision
// setting), returning per-class document indices; deterministic in `seed`.
std::vector<std::vector<size_t>> SampleLabeledDocs(
    const text::Corpus& corpus, size_t per_class, uint64_t seed);

}  // namespace stm::datasets

#endif  // STM_DATASETS_SYNTHETIC_H_
