#include "core/westclass.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "core/pseudo_docs.h"
#include "la/matrix.h"
#include "text/tfidf.h"
#include "text/vocabulary.h"

namespace stm::core {

namespace {

std::vector<std::vector<int32_t>> CorpusTokens(const text::Corpus& corpus) {
  std::vector<std::vector<int32_t>> docs;
  docs.reserve(corpus.num_docs());
  for (const auto& doc : corpus.docs()) docs.push_back(doc.tokens);
  return docs;
}

}  // namespace

WestClass::WestClass(const text::Corpus& corpus,
                     const WestClassConfig& config)
    : corpus_(corpus),
      config_(config),
      embeddings_([&corpus, &config] {
        // Streaming overload: pulls documents through the CorpusReader
        // interface (bit-identical to the in-RAM token-list overload).
        embedding::SgnsConfig sgns;
        sgns.epochs = config.sgns_epochs;
        sgns.seed = config.seed;
        auto trained = embedding::WordEmbeddings::Train(corpus, sgns);
        STM_CHECK(trained.ok()) << trained.status().message();
        return std::move(trained).value();
      }()) {
  const std::vector<int64_t> counts = corpus.TokenCounts();
  background_.assign(counts.size(), 0.0);
  for (size_t i = text::kNumSpecialTokens; i < counts.size(); ++i) {
    background_[i] = static_cast<double>(counts[i]);
  }
}

std::vector<std::vector<int32_t>> WestClass::SeedWords(
    Supervision mode, const text::WeakSupervision& supervision) const {
  const size_t num_classes = corpus_.num_labels();
  std::vector<std::vector<int32_t>> seeds(num_classes);
  switch (mode) {
    case Supervision::kLabels:
      // Class names only: the first seed in each keyword list is the name
      // token (by construction of WeakSupervision).
      for (size_t c = 0; c < num_classes; ++c) {
        STM_CHECK(!supervision.class_keywords[c].empty());
        seeds[c].push_back(supervision.class_keywords[c][0]);
      }
      break;
    case Supervision::kKeywords:
      for (size_t c = 0; c < num_classes; ++c) {
        seeds[c] = supervision.class_keywords[c];
      }
      break;
    case Supervision::kDocs: {
      STM_CHECK_EQ(supervision.labeled_docs.size(), num_classes);
      text::TfIdf tfidf(corpus_);
      for (size_t c = 0; c < num_classes; ++c) {
        for (size_t d : supervision.labeled_docs[c]) {
          const auto terms = tfidf.TopTerms(corpus_.docs()[d].tokens,
                                            config_.tfidf_terms_per_doc);
          seeds[c].insert(seeds[c].end(), terms.begin(), terms.end());
        }
        std::sort(seeds[c].begin(), seeds[c].end());
        seeds[c].erase(std::unique(seeds[c].begin(), seeds[c].end()),
                       seeds[c].end());
      }
      break;
    }
  }
  return seeds;
}

std::vector<std::vector<int32_t>> WestClass::GeneratePseudoDocs(
    const std::vector<int32_t>& seeds, Rng& rng) const {
  PseudoDocOptions options;
  options.docs_per_class = config_.pseudo_docs_per_class;
  options.doc_len = config_.pseudo_doc_len;
  options.topical_candidates = config_.topical_candidates;
  options.background_alpha = config_.background_alpha;
  options.enable_vmf = config_.enable_vmf;
  PseudoDocGenerator generator(&embeddings_, background_, options);
  return generator.Generate(seeds, rng);
}

std::vector<int> WestClass::Run(Supervision mode,
                                const text::WeakSupervision& supervision) {
  const size_t num_classes = corpus_.num_labels();
  Rng rng(config_.seed);

  // 1. Seed words per class, expanded to `expanded_seeds` via embedding
  //    neighborhoods around the class average.
  expanded_seeds_ = SeedWords(mode, supervision);
  for (auto& seeds : expanded_seeds_) {
    if (seeds.empty()) continue;
    if (seeds.size() < config_.expanded_seeds) {
      const std::vector<float> center = embeddings_.AverageOf(seeds);
      const auto neighbors = embeddings_.MostSimilar(
          center, config_.expanded_seeds - seeds.size(), seeds);
      for (const auto& [id, _] : neighbors) seeds.push_back(id);
    }
  }

  // 2. Pseudo documents with smoothed soft labels.
  std::vector<std::vector<int32_t>> pseudo_docs;
  std::vector<float> pseudo_targets;
  for (size_t c = 0; c < num_classes; ++c) {
    const auto docs = GeneratePseudoDocs(expanded_seeds_[c], rng);
    for (const auto& doc : docs) {
      pseudo_docs.push_back(doc);
      for (size_t j = 0; j < num_classes; ++j) {
        const float off =
            config_.label_smoothing / static_cast<float>(num_classes);
        pseudo_targets.push_back(j == c
                                     ? 1.0f - config_.label_smoothing + off
                                     : off);
      }
    }
  }

  // 3. Pre-train the neural classifier on pseudo documents.
  nn::ClassifierConfig clf_config;
  clf_config.vocab_size = corpus_.vocab().size();
  clf_config.num_classes = num_classes;
  clf_config.conv_widths = config_.conv_widths;
  clf_config.seed = config_.seed + 1;
  auto classifier = nn::MakeClassifier(config_.classifier, clf_config);
  // Static embeddings warm-start the classifier's word vectors. Rows are
  // rescaled to a small uniform norm: raw SGNS norms vary by orders of
  // magnitude with frequency and destabilize the randomly-initialized
  // upper layers.
  if (config_.warm_start_embeddings) {
    std::vector<std::vector<float>> init(corpus_.vocab().size());
    for (size_t id = 0; id < init.size(); ++id) {
      init[id] = embeddings_.vectors().RowVec(id);
      la::NormalizeInPlace(init[id].data(), init[id].size());
      la::ScaleInPlace(init[id].data(), init[id].size(), 0.3f);
      init[id].resize(clf_config.embed_dim, 0.0f);
    }
    classifier->InitWordEmbeddings(init);
  }
  for (int epoch = 0; epoch < config_.pretrain_epochs; ++epoch) {
    classifier->TrainEpoch(pseudo_docs, pseudo_targets);
  }

  // 4. Self-train on the real corpus.
  const std::vector<std::vector<int32_t>> docs = CorpusTokens(corpus_);
  if (config_.enable_self_training) {
    return SelfTrain(*classifier, docs, config_.self_train);
  }
  return classifier->Predict(docs);
}

}  // namespace stm::core
