#ifndef STM_EMBEDDING_SGNS_H_
#define STM_EMBEDDING_SGNS_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/env.h"
#include "common/status.h"
#include "index/ann.h"
#include "la/matrix.h"
#include "text/corpus.h"

namespace stm::embedding {

// Skip-gram with negative sampling (word2vec), the static-embedding
// substrate of WeSTClass / WeSHClass / MetaCat and the Word2Vec baseline.
struct SgnsConfig {
  size_t dim = 32;
  int epochs = 3;
  int window = 5;
  int negatives = 5;
  float lr = 0.05f;
  double subsample = 1e-3;   // frequent-word subsampling threshold (0=off)
  uint64_t seed = 17;
};

class WordEmbeddings {
 public:
  // Trains input vectors on token sequences over a dense vocabulary.
  static WordEmbeddings Train(const std::vector<std::vector<int32_t>>& docs,
                              size_t vocab_size, const SgnsConfig& config);

  // Streaming variant: pulls documents shard-at-a-time from any
  // CorpusReader (each epoch walks the shards in order). SGNS is a
  // strictly sequential single-RNG-stream algorithm, and the shard order
  // preserves the global document order, so the result is bit-identical
  // to the in-RAM overload on the same documents at any shard size.
  static StatusOr<WordEmbeddings> Train(const text::CorpusReader& corpus,
                                        const SgnsConfig& config);

  // Wraps an existing table (rows = token ids).
  explicit WordEmbeddings(la::Matrix vectors);

  // Movable despite the lazy-index synchronization members; a moved-into
  // object simply rebuilds its index on the next MostSimilar call.
  WordEmbeddings(WordEmbeddings&& other) noexcept
      : vectors_(std::move(other.vectors_)) {}
  WordEmbeddings& operator=(WordEmbeddings&& other) noexcept {
    vectors_ = std::move(other.vectors_);
    index_.reset();
    return *this;
  }

  size_t dim() const { return vectors_.cols(); }
  size_t vocab_size() const { return vectors_.rows(); }

  const la::Matrix& vectors() const { return vectors_; }

  // L2-normalized row copy.
  std::vector<float> UnitVectorOf(int32_t id) const;

  // Top-k ids most cosine-similar to `query` (excluding ids in `exclude`
  // and ids < first_regular_id, i.e. special tokens). Served by an
  // ann::Index built lazily over the whole table: exact (GEMM-batched)
  // below the STM_ANN auto cutover, LSH above it.
  std::vector<std::pair<int32_t, float>> MostSimilar(
      const std::vector<float>& query, size_t k,
      const std::vector<int32_t>& exclude = {},
      int32_t first_regular_id = 5) const;

  // Average of unit vectors for `ids` (skips out-of-range), normalized.
  std::vector<float> AverageOf(const std::vector<int32_t>& ids) const;

  // Binary persistence (embedding tables are expensive to retrain).
  // Framed + CRC32C-protected artifacts written atomically via `env`;
  // Load returns kUnavailable for a missing file, kCorruptData for one
  // that fails frame/checksum/shape validation.
  Status Save(Env* env, const std::string& path) const;
  static StatusOr<std::unique_ptr<WordEmbeddings>> Load(
      Env* env, const std::string& path);

  // Legacy bool/nullptr shims over the Status API (Env::Default()).
  bool Save(const std::string& path) const;
  static std::unique_ptr<WordEmbeddings> Load(const std::string& path);

 private:
  la::Matrix vectors_;
  // Lazy retrieval index over vectors_, built under the mutex on the
  // first MostSimilar call (the table is immutable after construction)
  // and never reset while queries are in flight.
  mutable std::mutex index_mutex_;
  mutable std::unique_ptr<ann::Index> index_;
};

// PV-DBOW document embeddings (Doc2Vec baseline, MetaCat documents):
// trains one vector per document to predict its words via negative
// sampling against fixed word output vectors.
struct DocEmbeddingConfig {
  size_t dim = 32;
  int epochs = 6;
  int negatives = 5;
  float lr = 0.05f;
  uint64_t seed = 19;
};

la::Matrix TrainDocEmbeddings(const std::vector<std::vector<int32_t>>& docs,
                              size_t vocab_size,
                              const DocEmbeddingConfig& config);

}  // namespace stm::embedding

#endif  // STM_EMBEDDING_SGNS_H_
