#include "nn/optimizer.h"

#include <cmath>

#include "common/check.h"

namespace stm::nn {

Tensor ParameterStore::Register(const std::string& name, Tensor param) {
  STM_CHECK(param.defined());
  STM_CHECK(param.requires_grad()) << "parameter " << name
                                   << " does not require grad";
  for (const std::string& existing : names_) {
    STM_CHECK_NE(existing, name) << "duplicate parameter name";
  }
  params_.push_back(param);
  names_.push_back(name);
  return param;
}

void ParameterStore::ZeroGrads() {
  for (Tensor& p : params_) {
    auto& grad = p.grad();
    std::fill(grad.begin(), grad.end(), 0.0f);
  }
}

size_t ParameterStore::TotalSize() const {
  size_t total = 0;
  for (const Tensor& p : params_) total += p.size();
  return total;
}

std::vector<float> ParameterStore::Snapshot() const {
  std::vector<float> snapshot;
  snapshot.reserve(TotalSize());
  for (const Tensor& p : params_) {
    snapshot.insert(snapshot.end(), p.value().begin(), p.value().end());
  }
  return snapshot;
}

void ParameterStore::Restore(const std::vector<float>& snapshot) {
  STM_CHECK_EQ(snapshot.size(), TotalSize());
  size_t offset = 0;
  for (Tensor& p : params_) {
    std::copy(snapshot.begin() + static_cast<std::ptrdiff_t>(offset),
              snapshot.begin() + static_cast<std::ptrdiff_t>(offset + p.size()),
              p.value().begin());
    offset += p.size();
  }
  BumpGeneration();
}

AdamOptimizer::AdamOptimizer(ParameterStore* store, OptimizerConfig config)
    : store_(store), config_(config) {
  STM_CHECK(store != nullptr);
  m_.resize(store->params().size());
  v_.resize(store->params().size());
  for (size_t i = 0; i < store->params().size(); ++i) {
    m_[i].assign(store->params()[i].size(), 0.0f);
    v_[i].assign(store->params()[i].size(), 0.0f);
  }
}

void AdamOptimizer::Step() {
  ++step_;
  store_->BumpGeneration();
  // Optional global gradient clipping.
  if (config_.grad_clip > 0.0f) {
    double norm_sq = 0.0;
    for (const Tensor& p : store_->params()) {
      if (p.node()->grad.empty()) continue;
      for (float g : p.node()->grad) norm_sq += static_cast<double>(g) * g;
    }
    const double norm = std::sqrt(norm_sq);
    if (norm > config_.grad_clip) {
      const float scale = config_.grad_clip / static_cast<float>(norm);
      for (Tensor& p : const_cast<std::vector<Tensor>&>(store_->params())) {
        for (float& g : p.grad()) g *= scale;
      }
    }
  }
  const float bc1 =
      1.0f - std::pow(config_.beta1, static_cast<float>(step_));
  const float bc2 =
      1.0f - std::pow(config_.beta2, static_cast<float>(step_));
  auto& params = const_cast<std::vector<Tensor>&>(store_->params());
  for (size_t i = 0; i < params.size(); ++i) {
    Tensor& p = params[i];
    auto& value = p.value();
    auto& grad = p.grad();
    for (size_t j = 0; j < value.size(); ++j) {
      const float g = grad[j];
      m_[i][j] = config_.beta1 * m_[i][j] + (1.0f - config_.beta1) * g;
      v_[i][j] = config_.beta2 * v_[i][j] + (1.0f - config_.beta2) * g * g;
      const float mhat = m_[i][j] / bc1;
      const float vhat = v_[i][j] / bc2;
      float update = config_.lr * mhat / (std::sqrt(vhat) + config_.eps);
      if (config_.weight_decay > 0.0f) {
        update += config_.lr * config_.weight_decay * value[j];
      }
      value[j] -= update;
      grad[j] = 0.0f;
    }
  }
}

SgdOptimizer::SgdOptimizer(ParameterStore* store, float lr, float momentum)
    : store_(store), lr_(lr), momentum_(momentum) {
  STM_CHECK(store != nullptr);
  velocity_.resize(store->params().size());
  for (size_t i = 0; i < store->params().size(); ++i) {
    velocity_[i].assign(store->params()[i].size(), 0.0f);
  }
}

void SgdOptimizer::Step() {
  store_->BumpGeneration();
  auto& params = const_cast<std::vector<Tensor>&>(store_->params());
  for (size_t i = 0; i < params.size(); ++i) {
    Tensor& p = params[i];
    auto& value = p.value();
    auto& grad = p.grad();
    for (size_t j = 0; j < value.size(); ++j) {
      if (momentum_ > 0.0f) {
        velocity_[i][j] = momentum_ * velocity_[i][j] + grad[j];
        value[j] -= lr_ * velocity_[i][j];
      } else {
        value[j] -= lr_ * grad[j];
      }
      grad[j] = 0.0f;
    }
  }
}

}  // namespace stm::nn
