// ISA-generic body of the packed GEMM kernels. Included (twice) by
// gemm_kernels_generic.cc and gemm_kernels_avx2.cc with
// STM_GEMM_KERNEL_NAMESPACE set; the including translation unit supplies
// the compiler flags (-mavx2 -mfma for the AVX2 build), and the plain
// fixed-trip-count loops below are written so GCC/Clang auto-vectorize
// the kGemmNr-wide inner dimension into the widest available vectors.
//
// NO include guard: this file is a template expanded once per ISA
// namespace. Do not include it outside the two kernel translation units.

#ifndef STM_GEMM_KERNEL_NAMESPACE
#error "define STM_GEMM_KERNEL_NAMESPACE before including gemm_kernels_impl.h"
#endif

#include <cstddef>
#include <utility>
#include <vector>

#include "la/gemm_kernels.h"
#include "la/workspace.h"

namespace stm::la::detail::STM_GEMM_KERNEL_NAMESPACE {

// Packs B panels [jp0, jp1): panel jp holds, p-major, the kGemmNr columns
// starting at jp * kGemmNr, zero-padded past n. Strided reads make the
// same routine serve both B and B^T operands.
void PackBPanels(const float* b, size_t rs, size_t cs, size_t k,
                 size_t n, size_t jp0, size_t jp1, float* out) {
  for (size_t jp = jp0; jp < jp1; ++jp) {
    const size_t j0 = jp * kGemmNr;
    const size_t nr = n - j0 < kGemmNr ? n - j0 : kGemmNr;
    float* panel = out + jp * k * kGemmNr;
    for (size_t p = 0; p < k; ++p) {
      const float* src = b + p * rs + j0 * cs;
      float* dst = panel + p * kGemmNr;
      for (size_t jj = 0; jj < nr; ++jj) dst[jj] = src[jj * cs];
      for (size_t jj = nr; jj < kGemmNr; ++jj) dst[jj] = 0.0f;
    }
  }
}

// Packs rows [i0, i0 + mr) of the strided A operand into one p-major
// micro-panel (kGemmMr floats per p, zero-padded past mr).
inline void PackAPanel(const float* a, size_t rs, size_t cs, size_t k,
                       size_t i0, size_t mr, float* out) {
  for (size_t p = 0; p < k; ++p) {
    float* dst = out + p * kGemmMr;
    const float* src = a + i0 * rs + p * cs;
    for (size_t ii = 0; ii < mr; ++ii) dst[ii] = src[ii * rs];
    for (size_t ii = mr; ii < kGemmMr; ++ii) dst[ii] = 0.0f;
  }
}

// Register-tiled micro-kernel: acc[kGemmMr][kGemmNr] += Apanel * Bpanel
// over the full k extent (ascending p — the fixed accumulation order the
// determinism contract relies on), then C[mr, nr] += acc.
inline void MicroKernel(const float* apanel, const float* bpanel, size_t k,
                        float* c, size_t ldc, size_t mr, size_t nr) {
  float acc[kGemmMr][kGemmNr] = {};
  for (size_t p = 0; p < k; ++p) {
    const float* av = apanel + p * kGemmMr;
    const float* bv = bpanel + p * kGemmNr;
    for (size_t ii = 0; ii < kGemmMr; ++ii) {
      const float aval = av[ii];
      for (size_t jj = 0; jj < kGemmNr; ++jj) {
        acc[ii][jj] += aval * bv[jj];
      }
    }
  }
  if (mr == kGemmMr && nr == kGemmNr) {
    for (size_t ii = 0; ii < kGemmMr; ++ii) {
      float* crow = c + ii * ldc;
      for (size_t jj = 0; jj < kGemmNr; ++jj) crow[jj] += acc[ii][jj];
    }
  } else {
    for (size_t ii = 0; ii < mr; ++ii) {
      float* crow = c + ii * ldc;
      for (size_t jj = 0; jj < nr; ++jj) crow[jj] += acc[ii][jj];
    }
  }
}

// Computes C rows [r0, r1): packs A in L2-sized row blocks (buffer
// borrowed from the calling thread's workspace) and sweeps every B panel
// per block. Writes are confined to C rows [r0, r1), so concurrent chunks
// never touch the same output.
void RunRowChunk(const float* a, size_t a_rs, size_t a_cs,
                 const float* bpack, float* c, size_t k, size_t n,
                 size_t r0, size_t r1) {
  const size_t npanels = CeilDiv(n, kGemmNr);
  const size_t block_rows = GemmABlockRows(k);
  std::vector<float> apack =
      AcquireVec(RoundUp(block_rows < r1 - r0 ? block_rows : r1 - r0,
                         kGemmMr) *
                 k);
  for (size_t ic = r0; ic < r1; ic += block_rows) {
    const size_t ie = ic + block_rows < r1 ? ic + block_rows : r1;
    for (size_t i0 = ic; i0 < ie; i0 += kGemmMr) {
      const size_t mr = ie - i0 < kGemmMr ? ie - i0 : kGemmMr;
      PackAPanel(a, a_rs, a_cs, k, i0, mr,
                 apack.data() + ((i0 - ic) / kGemmMr) * k * kGemmMr);
    }
    for (size_t jp = 0; jp < npanels; ++jp) {
      const size_t j0 = jp * kGemmNr;
      const size_t nr = n - j0 < kGemmNr ? n - j0 : kGemmNr;
      const float* bpanel = bpack + jp * k * kGemmNr;
      for (size_t i0 = ic; i0 < ie; i0 += kGemmMr) {
        const size_t mr = ie - i0 < kGemmMr ? ie - i0 : kGemmMr;
        MicroKernel(apack.data() + ((i0 - ic) / kGemmMr) * k * kGemmMr,
                    bpanel, k, c + i0 * n + j0, n, mr, nr);
      }
    }
  }
  ReleaseVec(std::move(apack));
}

}  // namespace stm::la::detail::STM_GEMM_KERNEL_NAMESPACE
