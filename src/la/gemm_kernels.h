#ifndef STM_LA_GEMM_KERNELS_H_
#define STM_LA_GEMM_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace stm::la {

// Cache-blocked, register-tiled GEMM kernel library.
//
// Layout (see DESIGN.md, "Kernel library"):
//  * B is packed once per call into column panels of kGemmNr columns,
//    stored p-major (panel jp holds B[p][jp*Nr .. jp*Nr+Nr) for every p,
//    zero-padded at the right edge);
//  * A is packed per row block into panels of kGemmMr rows, also p-major
//    and zero-padded, sized so a block stays L2-resident;
//  * the micro-kernel accumulates a kGemmMr x kGemmNr output tile in
//    registers over the full k extent, then adds the tile into C.
//
// Two micro-kernel builds exist: a portable one and (on x86-64) one
// compiled for AVX2+FMA, selected once at startup via cpuid. Dispatch
// depends on the machine, never on the thread count, so output is
// bit-identical across STM_NUM_THREADS on any given machine (it may
// legitimately differ from the scalar reference and across machines).

// Micro-tile extents. Part of the pack layout; identical in every ISA
// build.
inline constexpr size_t kGemmMr = 4;
inline constexpr size_t kGemmNr = 8;

// Shapes below this many multiply-adds run the serial scalar reference
// (packing overhead would dominate). Shape-only, so the dispatch is
// thread-count invariant.
inline constexpr size_t kGemmPackedMinOps = size_t{1} << 15;

// ---- serial scalar reference kernels ----
//
// The seed implementation, kept as the correctness baseline for tests and
// bench, and as the execution path for tiny shapes.

// c[m, n] += a[m, k] * b[k, n].
void ReferenceGemmAcc(const float* a, const float* b, float* c, size_t m,
                      size_t k, size_t n);

// c[m, n] += a[m, k] * b[n, k]^T.
void ReferenceGemmBtAcc(const float* a, const float* b, float* c, size_t m,
                        size_t k, size_t n);

// c[m, n] += a[k, m]^T * b[k, n].
void ReferenceGemmAtAcc(const float* a, const float* b, float* c, size_t m,
                        size_t k, size_t n);

// ---- packed kernels ----

// True when (m, k, n) takes the packed path.
bool UsePackedGemm(size_t m, size_t k, size_t n);

// c[m, n] += A * B over strided operands: A[i][p] = a[i*a_rs + p*a_cs],
// B[p][j] = b[p*b_rs + j*b_cs], C row-major with leading dimension n.
// The three transpose variants of the library map onto it as:
//   Gemm:   A = (a, k, 1),  B = (b, n, 1)
//   GemmBt: A = (a, k, 1),  B = (b, 1, k)   (B^T view of an n x k array)
//   GemmAt: A = (a, 1, m),  B = (b, n, 1)   (A^T view of a k x m array)
// Parallel over row blocks on the global thread pool; chunking and
// accumulation order depend only on the shape.
void PackedGemmAcc(const float* a, size_t a_rs, size_t a_cs, const float* b,
                   size_t b_rs, size_t b_cs, float* c, size_t m, size_t k,
                   size_t n);

// Name of the micro-kernel build selected at startup ("avx2+fma" or
// "generic").
const char* GemmKernelIsa();

namespace detail {

inline constexpr size_t CeilDiv(size_t a, size_t b) { return (a + b - 1) / b; }
inline constexpr size_t RoundUp(size_t a, size_t b) {
  return CeilDiv(a, b) * b;
}

// Rows per packed A block: keeps block_rows * k floats around 256KB
// (L2-resident) and a multiple of kGemmMr.
inline size_t GemmABlockRows(size_t k) {
  constexpr size_t kBlockFloats = size_t{64} * 1024;
  const size_t rows = kBlockFloats / (k == 0 ? 1 : k);
  return rows < kGemmMr ? kGemmMr
                        : (rows / kGemmMr) * kGemmMr;
}

// Output rows per parallel chunk: ~1M multiply-adds, rounded to whole
// micro-panels. Shape-only, like every grain in the library; shared by
// the fp32 and int8 packed drivers.
inline size_t PackedRowGrain(size_t k, size_t n) {
  constexpr size_t kTargetOps = size_t{1} << 20;
  const size_t ops_per_row = k * n;
  if (ops_per_row == 0) return kGemmMr;
  const size_t rows = kTargetOps / ops_per_row;
  return RoundUp(rows < 1 ? 1 : rows, kGemmMr);
}

// Per-ISA entry points (one namespace per micro-kernel build; see
// gemm_kernels_impl.h).
struct GemmKernelFns {
  // Packs B panels [jp0, jp1) of the strided operand into `out` (panel jp
  // at offset jp * k * kGemmNr).
  void (*pack_b)(const float* b, size_t rs, size_t cs, size_t k, size_t n,
                 size_t jp0, size_t jp1, float* out);
  // Computes C rows [r0, r1) from the strided A operand and packed B.
  void (*run_rows)(const float* a, size_t a_rs, size_t a_cs,
                   const float* bpack, float* c, size_t k, size_t n,
                   size_t r0, size_t r1);
  // Int8 path (see la/qgemm.h): computes C rows [r0, r1) from row-major
  // offset-quantized A bytes (aq + 64, stride k) and an Int8PackedB's
  // panels/scales/colsums. Both ISA builds produce identical int32
  // accumulators, so dequantized output matches bit-for-bit.
  void (*int8_run_rows)(const uint8_t* aoff, const float* a_scales,
                        const int8_t* bpanels, const float* b_scales,
                        const int32_t* b_colsums, float* c, size_t k,
                        size_t n, size_t r0, size_t r1);
  // Serial scalar kernels built in the same TU as the micro-kernel so
  // both sides of the UsePackedGemm dispatch share one FP-contraction
  // regime (see gemm_kernels_impl.h) — a shape change can move a GEMM
  // across the dispatch threshold without changing a single output bit.
  void (*reference_gemm_acc)(const float* a, const float* b, float* c,
                             size_t m, size_t k, size_t n);
  void (*reference_gemm_bt_acc)(const float* a, const float* b, float* c,
                                size_t m, size_t k, size_t n);
  void (*reference_gemm_at_acc)(const float* a, const float* b, float* c,
                                size_t m, size_t k, size_t n);
  const char* name;
};

const GemmKernelFns& ActiveGemmKernels();

}  // namespace detail

}  // namespace stm::la

#endif  // STM_LA_GEMM_KERNELS_H_
