#include "common/env_parse.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>

namespace stm {

namespace {

void Warn(const char* name, const char* value, const std::string& detail,
          const std::string& fallback) {
  std::fprintf(stderr, "[stm] ignoring %s='%s' (%s); using %s\n", name,
               value, detail.c_str(), fallback.c_str());
}

}  // namespace

size_t ParseSizeEnv(const char* name, size_t fallback, size_t min_value,
                    size_t max_value) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  const std::string fb = std::to_string(fallback);
  for (const char* p = value; *p != '\0'; ++p) {
    if (!std::isdigit(static_cast<unsigned char>(*p))) {
      Warn(name, value, "not a non-negative integer", fb);
      return fallback;
    }
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (errno == ERANGE || end == value || *end != '\0' ||
      parsed > std::numeric_limits<size_t>::max()) {
    Warn(name, value, "integer overflow", fb);
    return fallback;
  }
  const size_t result = static_cast<size_t>(parsed);
  if (result < min_value || result > max_value) {
    Warn(name, value,
         "out of range [" + std::to_string(min_value) + ", " +
             std::to_string(max_value) + "]",
         fb);
    return fallback;
  }
  return result;
}

float ParseFloatEnv(const char* name, float fallback, float min_value,
                    float max_value) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  const std::string fb = std::to_string(fallback);
  // strtof skips leading whitespace; the full-token contract does not.
  if (std::isspace(static_cast<unsigned char>(value[0]))) {
    Warn(name, value, "not a number", fb);
    return fallback;
  }
  errno = 0;
  char* end = nullptr;
  const float parsed = std::strtof(value, &end);
  if (end == value || *end != '\0') {
    Warn(name, value, "not a number", fb);
    return fallback;
  }
  if (errno == ERANGE || !std::isfinite(parsed)) {
    Warn(name, value, "not a finite number", fb);
    return fallback;
  }
  if (parsed < min_value || parsed > max_value) {
    Warn(name, value,
         "out of range [" + std::to_string(min_value) + ", " +
             std::to_string(max_value) + "]",
         fb);
    return fallback;
  }
  return parsed;
}

bool ParseBoolEnv(const char* name, bool fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  std::string token(value);
  for (char& c : token) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (token == "1" || token == "true" || token == "on" || token == "yes") {
    return true;
  }
  if (token == "0" || token == "false" || token == "off" || token == "no") {
    return false;
  }
  Warn(name, value, "not a boolean (1/0/true/false/on/off/yes/no)",
       fallback ? "true" : "false");
  return fallback;
}

size_t ParseEnumEnv(const char* name,
                    const std::vector<std::string_view>& values,
                    size_t fallback_index) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback_index;
  const std::string_view token(value);
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i] == token) return i;
  }
  std::string accepted;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) accepted += "|";
    accepted += values[i];
  }
  Warn(name, value, "expected one of " + accepted,
       std::string(values[fallback_index]));
  return fallback_index;
}

size_t SaturatingMulSize(size_t a, size_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > std::numeric_limits<size_t>::max() / b) {
    return std::numeric_limits<size_t>::max();
  }
  return a * b;
}

}  // namespace stm
