#ifndef STM_NN_LOSS_H_
#define STM_NN_LOSS_H_

#include <vector>

#include "nn/tensor.h"

namespace stm::nn {

// Loss functions. All return scalar tensors (mean over the batch).

// Mean negative log-likelihood of `targets` under log-probabilities
// `logp` [n, C].
Tensor NllLoss(const Tensor& logp, const std::vector<int>& targets);

// Softmax cross entropy over logits [n, C] with hard integer targets.
Tensor CrossEntropy(const Tensor& logits, const std::vector<int>& targets);

// Cross entropy with soft targets `probs` (row-stochastic, n*C flat).
// Used by self-training against sharpened distributions.
Tensor SoftCrossEntropy(const Tensor& logits,
                        const std::vector<float>& probs);

// Binary cross entropy with logits [n] (or [n,1]) and 0/1 float targets.
Tensor BceWithLogits(const Tensor& logits, const std::vector<float>& targets);

// InfoNCE over a similarity matrix [n, n] whose diagonal holds positive
// pairs; `temperature` scales similarities before softmax.
Tensor InfoNce(const Tensor& similarities, float temperature);

}  // namespace stm::nn

#endif  // STM_NN_LOSS_H_
