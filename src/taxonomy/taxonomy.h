#ifndef STM_TAXONOMY_TAXONOMY_H_
#define STM_TAXONOMY_TAXONOMY_H_

#include <string>
#include <vector>

namespace stm::taxonomy {

// A label hierarchy. Nodes are indexed densely; every node has at most one
// parent here (tree), which covers the tutorial's WeSHClass/X-Class paths;
// TaxoClass's DAG is represented by the same structure plus the convention
// that a document may carry several leaves (their ancestor sets may
// overlap, giving the DAG-like multi-path label sets).
class LabelTree {
 public:
  LabelTree() = default;

  // Adds a node; parent = -1 for roots. Returns the node id.
  int AddNode(const std::string& name, int parent);

  size_t size() const { return names_.size(); }
  const std::string& NameOf(int node) const;
  int ParentOf(int node) const;
  const std::vector<int>& ChildrenOf(int node) const;
  bool IsLeaf(int node) const;

  // All root nodes (parent == -1).
  std::vector<int> Roots() const;

  // All leaf nodes.
  std::vector<int> Leaves() const;

  // Path from root to `node`, inclusive.
  std::vector<int> PathTo(int node) const;

  // `node` and all its ancestors.
  std::vector<int> WithAncestors(int node) const;

  // Union of WithAncestors over `nodes` (deduplicated, sorted).
  std::vector<int> ClosureOf(const std::vector<int>& nodes) const;

  // Depth of a node (roots have depth 0).
  int DepthOf(int node) const;

  // Maximum depth over all nodes.
  int MaxDepth() const;

  // Nodes at exactly `depth`.
  std::vector<int> NodesAtDepth(int depth) const;

 private:
  std::vector<std::string> names_;
  std::vector<int> parents_;
  std::vector<std::vector<int>> children_;
};

}  // namespace stm::taxonomy

#endif  // STM_TAXONOMY_TAXONOMY_H_
