// E7 — PromptClass results table (tutorial: integrating head-token and
// prompt-based fine-tuning).
//
// Micro/Macro-F1 on AG News, 20News (fine), Yelp and IMDB for:
// WeSTClass, LOTClass, X-Class (earlier weak supervision), the MLM-style
// ("RoBERTa") and RTD-style ("ELECTRA") zero-shot prompts, two PromptClass
// variants (prompt style x head fine-tuning), and the supervised bound.
//
// Expected shape (paper): PromptClass variants > plain zero-shot prompts
// and > earlier weakly-supervised methods; ELECTRA-style prompting is the
// stronger zero-shot; supervised on top.

#include <string>
#include <vector>

#include "bench/harness.h"
#include "core/baselines.h"
#include "core/lotclass.h"
#include "core/promptclass.h"
#include "core/westclass.h"
#include "core/xclass.h"
#include "eval/metrics.h"

namespace stm {
namespace {

struct Entry {
  std::string name;
  datasets::SyntheticDataset data;
};

std::vector<int> ArgmaxRows(const la::Matrix& scores) {
  std::vector<int> pred(scores.rows());
  for (size_t d = 0; d < scores.rows(); ++d) {
    const float* row = scores.Row(d);
    pred[d] =
        static_cast<int>(std::max_element(row, row + scores.cols()) - row);
  }
  return pred;
}

}  // namespace

int Main() {
  std::vector<Entry> entries;
  {
    datasets::SyntheticSpec spec = datasets::AgNewsSpec(101);
    spec.num_docs = 400;
    spec.pretrain_docs = 900;
    entries.push_back({"AGNews", datasets::Generate(spec)});
  }
  {
    datasets::SyntheticSpec spec = datasets::TwentyNewsSpec(102);
    spec.num_docs = 450;
    spec.pretrain_docs = 900;
    datasets::SyntheticDataset data = datasets::Generate(spec);
    datasets::FlatView fine = datasets::FlattenToDepth(data, 1);
    data.corpus = std::move(fine.corpus);
    data.supervision = std::move(fine.supervision);
    data.leaf_name_tokens.clear();
    for (const auto& seeds : data.supervision.class_keywords) {
      data.leaf_name_tokens.push_back({seeds[0]});
    }
    entries.push_back({"20News", std::move(data)});
  }
  {
    datasets::SyntheticSpec spec = datasets::YelpSpec(103);
    spec.num_docs = 400;
    spec.pretrain_docs = 900;
    entries.push_back({"Yelp", datasets::Generate(spec)});
  }
  {
    datasets::SyntheticSpec spec = datasets::ImdbSpec(104);
    spec.num_docs = 400;
    spec.pretrain_docs = 900;
    entries.push_back({"IMDB", datasets::Generate(spec)});
  }

  std::vector<std::string> columns;
  for (const auto& entry : entries) {
    columns.push_back(entry.name + ":Mi");
    columns.push_back(entry.name + ":Ma");
  }
  const std::vector<std::string> rows = {
      "WeSTClass",
      "LOTClass",
      "X-Class",
      "MLM prompt (0-shot)",
      "RTD prompt (0-shot)",
      "PromptClass (MLM+head)",
      "PromptClass (RTD+head)",
      "Fully Supervised (bound)"};
  bench::Table table("E7 PromptClass — Micro/Macro F1, category names only",
                     columns);
  std::vector<std::vector<double>> cells(
      rows.size(), std::vector<double>(columns.size(), -1));

  for (size_t e = 0; e < entries.size(); ++e) {
    Entry& entry = entries[e];
    bench::Progress(entry.name);
    auto model = bench::PretrainedLm(entry.data);
    const auto gold = entry.data.corpus.GoldLabels();
    const size_t num_classes = entry.data.corpus.num_labels();
    auto put = [&](size_t row, const std::vector<int>& pred) {
      cells[row][2 * e] = eval::MicroF1(pred, gold, num_classes);
      cells[row][2 * e + 1] = eval::MacroF1(pred, gold, num_classes);
    };

    {
      core::WestClassConfig config;
      config.classifier = "bow";
      config.seed = 111;
      core::WestClass method(entry.data.corpus, config);
      put(0, method.Run(core::Supervision::kLabels,
                        entry.data.supervision));
    }
    {
      core::LotClassConfig config;
      config.seed = 112;
      core::LotClass method(entry.data.corpus, model.get(), config);
      put(1, method.Run(entry.data.leaf_name_tokens));
    }
    {
      core::XClassConfig config;
      config.seed = 113;
      core::XClass method(entry.data.corpus, model.get(), config);
      put(2, method.Run(entry.data.leaf_name_tokens));
    }
    core::PromptClassConfig prompt_config;
    core::PromptClass prompt(entry.data.corpus, model.get(), prompt_config);
    put(3, ArgmaxRows(prompt.ZeroShotScores(entry.data.leaf_name_tokens,
                                            core::PromptStyle::kMlm)));
    put(4, ArgmaxRows(prompt.ZeroShotScores(entry.data.leaf_name_tokens,
                                            core::PromptStyle::kRtd)));
    {
      core::PromptClassConfig config;
      config.prompt = core::PromptStyle::kMlm;
      config.seed = 114;
      core::PromptClass method(entry.data.corpus, model.get(), config);
      put(5, method.Run(entry.data.leaf_name_tokens));
    }
    {
      core::PromptClassConfig config;
      config.prompt = core::PromptStyle::kRtd;
      config.seed = 115;
      core::PromptClass method(entry.data.corpus, model.get(), config);
      put(6, method.Run(entry.data.leaf_name_tokens));
    }
    {
      std::vector<size_t> train;
      for (size_t d = 0; d < entry.data.corpus.num_docs(); ++d) {
        if (d % 5 != 0) train.push_back(d);
      }
      put(7, core::SupervisedBound(entry.data.corpus, train, "bow", 12,
                                   116));
    }
  }
  for (size_t r = 0; r < rows.size(); ++r) table.AddRow(rows[r], cells[r]);
  table.Print();
  return 0;
}

}  // namespace stm

int main() { return stm::Main(); }
