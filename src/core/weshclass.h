#ifndef STM_CORE_WESHCLASS_H_
#define STM_CORE_WESHCLASS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/westclass.h"
#include "taxonomy/taxonomy.h"

namespace stm::core {

// WeSHClass (Meng et al., AAAI'19): weakly-supervised *hierarchical*
// classification over a label tree.
//   * Local classifier per internal node, trained WeSTClass-style on vMF
//     pseudo-documents of its children.
//   * Global classifier per level: the product of conditional
//     probabilities along each root-to-node path (ensemble of local
//     classifiers), refined with self-training level by level.
struct WeshClassConfig {
  std::string classifier = "bow";
  size_t pseudo_docs_per_class = 100;
  size_t pseudo_doc_len = 40;
  size_t expanded_seeds = 10;
  float background_alpha = 0.2f;
  float label_smoothing = 0.2f;
  int pretrain_epochs = 8;
  bool enable_global = true;        // No-global ablation: leaf-local only
  bool enable_vmf = true;           // No-vMF ablation
  bool enable_self_training = true; // No-self-train ablation
  SelfTrainConfig self_train;
  uint64_t seed = 111;
};

class WeshClass {
 public:
  // `corpus` documents carry gold leaf labels (ids = tree node ids);
  // `keywords` maps every tree node to its seed tokens (name + any user
  // keywords; internal nodes included).
  WeshClass(const text::Corpus& corpus, const taxonomy::LabelTree& tree,
            std::vector<std::vector<int32_t>> keywords,
            const WeshClassConfig& config);

  // Runs level-wise classification; returns the predicted *path* (tree
  // node per level) for each document. paths[d][k] = node at depth k.
  std::vector<std::vector<int>> Run();

  // Convenience: leaf predictions (last entry of each path).
  static std::vector<int> LeafOf(const std::vector<std::vector<int>>& paths);

 private:
  const text::Corpus& corpus_;
  const taxonomy::LabelTree& tree_;
  std::vector<std::vector<int32_t>> keywords_;
  WeshClassConfig config_;
};

}  // namespace stm::core

#endif  // STM_CORE_WESHCLASS_H_
