// Out-of-core corpus bench: a 10^6-document synthetic corpus is written
// doc-at-a-time through CorpusShardWriter, then streamed shard-at-a-time
// through the full pipeline — TF-IDF transform, MiniLm encoding with the
// EncodeCache as the dedup working set, and ANN index construction via
// IndexBuilder — while peak RSS stays under a budget of one mapped shard
// plus the cache plus the (unavoidably resident) index, far below the
// corpus payload itself. A second pass at 10^5 scale times the streamed
// pipeline against the all-in-RAM one on identical documents; the
// committed BENCH_corpus.json records both along with the RSS numbers.
//
//   ./bench_corpus            full sweep (respects STM_NUM_THREADS)
//   ./bench_corpus --smoke    fast correctness pass used by ctest; exits
//                             non-zero unless every streamed stage is
//                             BIT-identical to the in-RAM path at shard
//                             sizes {1 doc, default, whole corpus}
//
// With STM_BENCH_JSON=<path> every phase timing plus the derived ratios
// is recorded (see bench/run_benches.sh).

#include <sys/resource.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/env.h"
#include "common/rng.h"
#include "common/timer.h"
#include "index/ann.h"
#include "la/matrix.h"
#include "plm/encode_cache.h"
#include "plm/minilm.h"
#include "text/corpus.h"
#include "text/corpus_store.h"
#include "text/tfidf.h"
#include "text/vocabulary.h"

namespace stm {
namespace {

// Current peak RSS in bytes (ru_maxrss is KiB on Linux).
size_t PeakRssBytes() {
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<size_t>(usage.ru_maxrss) * 1024;
}

void RecordSeconds(const std::string& name, double value) {
  bench::BenchJsonWriter::Instance().Record("corpus", name, value);
}

// Unique-document pool: corpora at scale repeat documents (the PR 5
// dedup scenario), which is exactly what lets the EncodeCache bound the
// encode working set to the distinct documents.
std::vector<std::vector<int32_t>> MakeDocPool(size_t unique, size_t vocab,
                                              size_t min_len, size_t max_len,
                                              uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<int32_t>> pool(unique);
  for (auto& doc : pool) {
    const size_t len = min_len + rng.UniformInt(max_len - min_len + 1);
    doc.resize(len);
    for (int32_t& id : doc) {
      id = text::kNumSpecialTokens +
           static_cast<int32_t>(
               rng.UniformInt(vocab - text::kNumSpecialTokens));
    }
  }
  return pool;
}

text::Vocabulary MakeVocab(size_t vocab) {
  text::Vocabulary out;
  for (size_t w = text::kNumSpecialTokens; w < vocab; ++w) {
    out.AddToken("w" + std::to_string(w), 0);
  }
  return out;
}

std::unique_ptr<plm::MiniLm> BenchModel(size_t vocab) {
  plm::MiniLmConfig config;
  config.vocab_size = vocab;
  config.dim = 16;
  config.layers = 1;
  config.heads = 2;
  config.ffn_dim = 32;
  config.max_seq = 32;
  config.seed = 11;
  // Random init: streaming throughput and bit-identity are independent of
  // training, and skipping pre-training keeps the bench self-contained.
  return std::make_unique<plm::MiniLm>(config);
}

// Removes every regular file inside `dir` (best effort; `dir` may not
// exist yet).
void CleanStoreDir(Env* env, const std::string& dir) {
  auto names = env->ListDir(dir);
  if (!names.ok()) return;
  for (const std::string& name : names.value()) {
    (void)env->Delete(dir + "/" + name);
  }
}

// Streams the store through TF-IDF; returns total nonzeros (keep-alive).
size_t StreamTfIdf(const text::TfIdf& tfidf,
                   const text::ShardedCorpus& store) {
  size_t nnz = 0;
  for (size_t s = 0; s < store.num_shards(); ++s) {
    auto vectors = tfidf.TransformShard(store, s);
    if (!vectors.ok()) {
      std::fprintf(stderr, "FAIL: TransformShard: %s\n",
                   vectors.status().message().c_str());
      std::abort();
    }
    for (const text::SparseVector& v : vectors.value()) nnz += v.size();
  }
  return nnz;
}

// Encodes every shard through the cache and feeds the pooled rows to an
// IndexBuilder; returns the finished index.
ann::Index StreamEncodeAndBuild(plm::MiniLm& model,
                                const text::CorpusReader& corpus) {
  ann::IndexBuilder builder(model.config().dim, corpus.num_docs());
  std::vector<std::vector<int32_t>> shard_docs;
  for (size_t s = 0; s < corpus.num_shards(); ++s) {
    shard_docs.clear();
    Status visited =
        corpus.VisitShard(s, [&](size_t, const text::DocView& view) {
          shard_docs.emplace_back(view.tokens, view.tokens + view.num_tokens);
        });
    if (!visited.ok()) {
      std::fprintf(stderr, "FAIL: VisitShard: %s\n",
                   visited.message().c_str());
      std::abort();
    }
    builder.Add(model.PoolBatch(shard_docs));
  }
  return builder.Finish();
}

// ---- full sweep ----

int RunSweep() {
  Env* env = Env::Default();
  constexpr size_t kDocs = 1'000'000;
  constexpr size_t kUnique = 20'000;
  constexpr size_t kVocab = 20'000;
  constexpr size_t kMinLen = 32;
  constexpr size_t kMaxLen = 160;
  const std::string dir = "bench_corpus_store";

  const size_t rss_before = PeakRssBytes();
  const auto pool = MakeDocPool(kUnique, kVocab, kMinLen, kMaxLen, 71);
  const text::Vocabulary vocab = MakeVocab(kVocab);
  auto model = BenchModel(vocab.size());
  plm::EncodeCache::Config cache_config;
  cache_config.max_bytes = size_t{16} * 1024 * 1024;
  model->SetEncodeCache(std::make_shared<plm::EncodeCache>(cache_config));

  // Phase 1: ingest 10^6 documents, one Add() at a time — the writer
  // holds one shard buffer, never the corpus.
  bench::Progress("writing " + std::to_string(kDocs) + " docs");
  CleanStoreDir(env, dir);
  double write_s = 0.0;
  size_t payload_bytes = 0;
  {
    bench::MethodTimer timer("corpus", "write_1e6");
    text::CorpusShardWriter writer(env, dir);
    Rng rng(172);
    for (size_t i = 0; i < kDocs; ++i) {
      const std::vector<int32_t>& doc = pool[rng.UniformInt(kUnique)];
      const int32_t label = static_cast<int32_t>(i % 5);
      Status added = writer.Add(doc.data(), doc.size(), &label, 1);
      if (!added.ok()) {
        std::fprintf(stderr, "FAIL: Add: %s\n", added.message().c_str());
        return 1;
      }
      payload_bytes += (doc.size() + 1) * sizeof(int32_t);
    }
    Status finished =
        writer.Finish(vocab, {"c0", "c1", "c2", "c3", "c4"});
    if (!finished.ok()) {
      std::fprintf(stderr, "FAIL: Finish: %s\n",
                   finished.message().c_str());
      return 1;
    }
    write_s = timer.Seconds();
  }

  auto opened = text::ShardedCorpus::Open(env, dir);
  if (!opened.ok()) {
    std::fprintf(stderr, "FAIL: Open: %s\n",
                 opened.status().message().c_str());
    return 1;
  }
  const std::unique_ptr<text::ShardedCorpus> store =
      std::move(opened).value();
  bench::Progress("store: " + std::to_string(store->num_shards()) +
                  " shards, " +
                  std::to_string(payload_bytes >> 20) + " MiB payload");

  // Phase 2: streamed TF-IDF over every shard.
  double tfidf_s = 0.0;
  {
    bench::MethodTimer timer("corpus", "tfidf_stream_1e6");
    const text::TfIdf tfidf(*store);
    const size_t nnz = StreamTfIdf(tfidf, *store);
    if (nnz == 0) std::abort();  // keep the pass alive
    tfidf_s = timer.Seconds();
  }
  bench::Progress("tfidf " + std::to_string(tfidf_s) + "s");

  // Phase 3: shard-at-a-time encode (cache-deduped) + ANN build.
  double encode_s = 0.0;
  size_t index_rows = 0;
  bool lsh = false;
  {
    bench::MethodTimer timer("corpus", "encode_ann_1e6");
    const ann::Index index = StreamEncodeAndBuild(*model, *store);
    index_rows = index.rows();
    lsh = index.lsh_enabled();
    encode_s = timer.Seconds();
  }
  if (index_rows != kDocs) std::abort();
  bench::Progress("encode+ann " + std::to_string(encode_s) + "s (lsh=" +
                  std::to_string(lsh ? 1 : 0) + ")");

  // RSS accounting: the streamed pipeline may keep the index (base rows +
  // sketches — the output), the encode cache, and a handful of shard-sized
  // working buffers resident, plus allocator slack. The corpus payload
  // itself must NOT be part of the budget.
  const size_t dim = model->config().dim;
  const size_t index_bytes =
      kDocs * dim * sizeof(float) + (lsh ? kDocs * 2 * sizeof(uint64_t) : 0);
  const size_t shard_bytes = text::CorpusStoreOptions().shard_bytes;
  const size_t budget = index_bytes + cache_config.max_bytes +
                        4 * shard_bytes + (size_t{128} << 20);
  const size_t rss_after = PeakRssBytes();
  const size_t rss_delta = rss_after > rss_before ? rss_after - rss_before : 0;
  const double mb = 1.0 / (1024.0 * 1024.0);
  bench::Progress("rss delta " + std::to_string(rss_delta >> 20) +
                  " MiB, budget " + std::to_string(budget >> 20) +
                  " MiB, corpus payload " +
                  std::to_string(payload_bytes >> 20) + " MiB");
  RecordSeconds("rss_delta_mb", static_cast<double>(rss_delta) * mb);
  RecordSeconds("rss_budget_mb", static_cast<double>(budget) * mb);
  RecordSeconds("corpus_payload_mb", static_cast<double>(payload_bytes) * mb);
  int failures = 0;
  if (rss_delta >= budget) {
    std::fprintf(stderr,
                 "FAIL: peak RSS delta %zu MiB exceeds the streaming "
                 "budget %zu MiB\n",
                 rss_delta >> 20, budget >> 20);
    ++failures;
  }
  if (budget >= payload_bytes) {
    // The bound only means something while it is below corpus residency.
    std::fprintf(stderr,
                 "WARN: budget %zu MiB not below corpus payload %zu MiB\n",
                 budget >> 20, payload_bytes >> 20);
  }
  model->SetEncodeCache(nullptr);
  CleanStoreDir(env, dir);  // drop the large store, keep the dir

  // Phase 4: streamed vs in-RAM pipeline at 10^5 scale on identical
  // documents (fresh cache for each side, so both pay the same misses).
  constexpr size_t kCmpDocs = 100'000;
  constexpr size_t kCmpUnique = 5'000;
  text::Corpus corpus;
  corpus.label_names() = {"c0", "c1", "c2", "c3", "c4"};
  for (size_t w = text::kNumSpecialTokens; w < kVocab; ++w) {
    corpus.vocab().AddToken("w" + std::to_string(w), 0);
  }
  {
    Rng rng(293);
    for (size_t i = 0; i < kCmpDocs; ++i) {
      text::Document doc;
      doc.tokens = pool[rng.UniformInt(kCmpUnique)];
      doc.labels.push_back(static_cast<int>(i % 5));
      corpus.docs().push_back(std::move(doc));
    }
  }
  const std::string cmp_dir = "bench_corpus_store_cmp";
  CleanStoreDir(env, cmp_dir);
  {
    Status written = text::WriteCorpusStore(env, corpus, cmp_dir);
    if (!written.ok()) {
      std::fprintf(stderr, "FAIL: WriteCorpusStore: %s\n",
                   written.message().c_str());
      return 1;
    }
  }

  double inram_s = 0.0;
  {
    model->SetEncodeCache(std::make_shared<plm::EncodeCache>(cache_config));
    bench::MethodTimer timer("corpus", "inram_1e5");
    const text::TfIdf tfidf(corpus);
    size_t nnz = 0;
    for (const text::SparseVector& v : tfidf.TransformAll(corpus)) {
      nnz += v.size();
    }
    std::vector<std::vector<int32_t>> docs;
    docs.reserve(corpus.num_docs());
    for (const text::Document& doc : corpus.docs()) docs.push_back(doc.tokens);
    const ann::Index index = ann::Index::Build(model->PoolBatch(docs));
    if (nnz == 0 || index.rows() != kCmpDocs) std::abort();
    inram_s = timer.Seconds();
  }
  bench::Progress("in-RAM 1e5 " + std::to_string(inram_s) + "s");

  double stream_s = 0.0;
  {
    auto cmp = text::ShardedCorpus::Open(env, cmp_dir);
    if (!cmp.ok()) {
      std::fprintf(stderr, "FAIL: Open: %s\n",
                   cmp.status().message().c_str());
      return 1;
    }
    model->SetEncodeCache(std::make_shared<plm::EncodeCache>(cache_config));
    bench::MethodTimer timer("corpus", "stream_1e5");
    const text::TfIdf tfidf(*cmp.value());
    const size_t nnz = StreamTfIdf(tfidf, *cmp.value());
    const ann::Index index = StreamEncodeAndBuild(*model, *cmp.value());
    if (nnz == 0 || index.rows() != kCmpDocs) std::abort();
    stream_s = timer.Seconds();
  }
  bench::Progress("streamed 1e5 " + std::to_string(stream_s) + "s");
  model->SetEncodeCache(nullptr);
  CleanStoreDir(env, cmp_dir);

  const double throughput_ratio = stream_s > 0 ? inram_s / stream_s : 0.0;
  RecordSeconds("stream_vs_inram", throughput_ratio);
  if (throughput_ratio < 0.9) {
    std::fprintf(stderr,
                 "WARN: streamed pipeline at %.2fx of in-RAM throughput "
                 "(target >= 0.9)\n",
                 throughput_ratio);
  }

  bench::Table table(
      "Out-of-core corpus: streamed 10^6-doc pipeline + 10^5 streamed vs "
      "in-RAM (seconds, ratio = in-RAM / streamed)",
      {"write_s", "tfidf_s", "enc_ann_s", "rss_mb", "budget_mb"});
  table.AddRow("stream_1e6",
               {write_s, tfidf_s, encode_s,
                static_cast<double>(rss_delta) * mb,
                static_cast<double>(budget) * mb});
  table.AddSeparator();
  bench::Table ratio_table(
      "Streamed vs in-RAM pipeline at 10^5 docs",
      {"inram_s", "stream_s", "ratio"});
  ratio_table.AddRow("pipeline_1e5", {inram_s, stream_s, throughput_ratio});
  table.Print();
  ratio_table.Print();
  return failures == 0 ? 0 : 1;
}

// ---- smoke: streamed stages bit-identical to in-RAM at several shard
// sizes ----

int RunSmoke() {
  Env* env = Env::Default();
  constexpr size_t kDocs = 400;
  constexpr size_t kVocab = 300;
  const auto pool = MakeDocPool(120, kVocab, 2, 24, 7);
  text::Corpus corpus;
  corpus.label_names() = {"c0", "c1", "c2"};
  for (size_t w = text::kNumSpecialTokens; w < kVocab; ++w) {
    corpus.vocab().AddToken("w" + std::to_string(w), 0);
  }
  {
    Rng rng(15);
    for (size_t i = 0; i < kDocs; ++i) {
      text::Document doc;
      doc.tokens = pool[rng.UniformInt(pool.size())];
      for (int32_t id : doc.tokens) corpus.vocab().AddCount(id, 1);
      doc.labels.push_back(static_cast<int>(i % 3));
      corpus.docs().push_back(std::move(doc));
    }
  }

  auto model = BenchModel(corpus.vocab().size());
  const text::TfIdf tfidf(corpus);
  const std::vector<text::SparseVector> want_vectors =
      tfidf.TransformAll(corpus);
  std::vector<std::vector<int32_t>> docs;
  for (const text::Document& doc : corpus.docs()) docs.push_back(doc.tokens);
  const la::Matrix want_pooled = model->PoolBatch(docs);
  const ann::Index want_index = ann::Index::Build(want_pooled);
  la::Matrix queries(5, model->config().dim);
  {
    Rng rng(91);
    for (size_t i = 0; i < queries.size(); ++i) {
      queries.data()[i] = static_cast<float>(rng.Uniform()) - 0.5f;
    }
  }
  const auto want_top = want_index.TopK(queries, 5);

  int failures = 0;
  const size_t shard_sizes[] = {1, text::CorpusStoreOptions().shard_docs,
                                kDocs + 1};
  for (size_t shard_docs : shard_sizes) {
    text::CorpusStoreOptions options;
    options.shard_docs = shard_docs;
    const std::string dir =
        "bench_corpus_smoke_" + std::to_string(shard_docs);
    CleanStoreDir(env, dir);
    Status written = text::WriteCorpusStore(env, corpus, dir, options);
    if (!written.ok()) {
      std::fprintf(stderr, "FAIL: WriteCorpusStore: %s\n",
                   written.message().c_str());
      return 1;
    }
    auto opened = text::ShardedCorpus::Open(env, dir, options);
    if (!opened.ok()) {
      std::fprintf(stderr, "FAIL: Open: %s\n",
                   opened.status().message().c_str());
      return 1;
    }
    const text::ShardedCorpus& store = *opened.value();

    // TF-IDF: fit and per-shard transform, bitwise.
    const text::TfIdf streamed(store);
    size_t doc_index = 0;
    for (size_t s = 0; s < store.num_shards(); ++s) {
      auto vectors = streamed.TransformShard(store, s);
      if (!vectors.ok()) {
        std::fprintf(stderr, "FAIL: TransformShard: %s\n",
                     vectors.status().message().c_str());
        return 1;
      }
      for (const text::SparseVector& got : vectors.value()) {
        const text::SparseVector& want = want_vectors[doc_index++];
        if (got.ids != want.ids ||
            std::memcmp(got.weights.data(), want.weights.data(),
                        want.weights.size() * sizeof(float)) != 0) {
          std::fprintf(stderr,
                       "FAIL: shard_docs=%zu tfidf differs at doc %zu\n",
                       shard_docs, doc_index - 1);
          ++failures;
        }
      }
    }
    if (doc_index != kDocs) ++failures;

    // Encode: PoolCorpus over the store, bitwise against PoolBatch.
    auto pooled = plm::PoolCorpus(*model, store);
    if (!pooled.ok()) {
      std::fprintf(stderr, "FAIL: PoolCorpus: %s\n",
                   pooled.status().message().c_str());
      return 1;
    }
    if (std::memcmp(pooled.value().data(), want_pooled.data(),
                    want_pooled.size() * sizeof(float)) != 0) {
      std::fprintf(stderr,
                   "FAIL: shard_docs=%zu PoolCorpus differs from "
                   "PoolBatch\n",
                   shard_docs);
      ++failures;
    }

    // ANN: incremental build from shard-sized blocks, identical ranking.
    const ann::Index index = StreamEncodeAndBuild(*model, store);
    const auto got_top = index.TopK(queries, 5);
    for (size_t q = 0; q < want_top.size(); ++q) {
      if (got_top[q].size() != want_top[q].size()) {
        ++failures;
        continue;
      }
      for (size_t j = 0; j < want_top[q].size(); ++j) {
        if (got_top[q][j].id != want_top[q][j].id ||
            got_top[q][j].score != want_top[q][j].score) {
          std::fprintf(stderr,
                       "FAIL: shard_docs=%zu ann ranking differs\n",
                       shard_docs);
          ++failures;
          q = want_top.size() - 1;
          break;
        }
      }
    }
    CleanStoreDir(env, dir);
  }

  if (failures == 0) std::printf("bench_corpus --smoke: OK\n");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace stm

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--smoke") {
    return stm::RunSmoke();
  }
  return stm::RunSweep();
}
