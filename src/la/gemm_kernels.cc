#include "la/gemm_kernels.h"

#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "la/workspace.h"

namespace stm::la {

namespace detail {

// Per-ISA builds of the packed kernels (gemm_kernels_impl.h expanded in
// gemm_kernels_generic.cc / gemm_kernels_avx2.cc).
namespace generic {
void PackBPanels(const float* b, size_t rs, size_t cs, size_t k, size_t n,
                 size_t jp0, size_t jp1, float* out);
void RunRowChunk(const float* a, size_t a_rs, size_t a_cs,
                 const float* bpack, float* c, size_t k, size_t n, size_t r0,
                 size_t r1);
void Int8RunRowChunk(const uint8_t* aoff, const float* a_scales,
                     const int8_t* bpanels, const float* b_scales,
                     const int32_t* b_colsums, float* c, size_t k, size_t n,
                     size_t r0, size_t r1);
void ReferenceGemmAcc(const float* a, const float* b, float* c, size_t m,
                      size_t k, size_t n);
void ReferenceGemmBtAcc(const float* a, const float* b, float* c, size_t m,
                        size_t k, size_t n);
void ReferenceGemmAtAcc(const float* a, const float* b, float* c, size_t m,
                        size_t k, size_t n);
}  // namespace generic

#ifdef STM_HAVE_AVX2_KERNELS
namespace avx2 {
void PackBPanels(const float* b, size_t rs, size_t cs, size_t k, size_t n,
                 size_t jp0, size_t jp1, float* out);
void RunRowChunk(const float* a, size_t a_rs, size_t a_cs,
                 const float* bpack, float* c, size_t k, size_t n, size_t r0,
                 size_t r1);
void Int8RunRowChunk(const uint8_t* aoff, const float* a_scales,
                     const int8_t* bpanels, const float* b_scales,
                     const int32_t* b_colsums, float* c, size_t k, size_t n,
                     size_t r0, size_t r1);
void ReferenceGemmAcc(const float* a, const float* b, float* c, size_t m,
                      size_t k, size_t n);
void ReferenceGemmBtAcc(const float* a, const float* b, float* c, size_t m,
                        size_t k, size_t n);
void ReferenceGemmAtAcc(const float* a, const float* b, float* c, size_t m,
                        size_t k, size_t n);
}  // namespace avx2
#endif

const GemmKernelFns& ActiveGemmKernels() {
  // Selected once per process from cpuid: constant for the lifetime of
  // the program, so every GEMM (at any thread count) runs the same
  // micro-kernel.
  static const GemmKernelFns fns = [] {
#ifdef STM_HAVE_AVX2_KERNELS
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
      return GemmKernelFns{&avx2::PackBPanels,        &avx2::RunRowChunk,
                           &avx2::Int8RunRowChunk,    &avx2::ReferenceGemmAcc,
                           &avx2::ReferenceGemmBtAcc, &avx2::ReferenceGemmAtAcc,
                           "avx2+fma"};
    }
#endif
    return GemmKernelFns{&generic::PackBPanels,
                         &generic::RunRowChunk,
                         &generic::Int8RunRowChunk,
                         &generic::ReferenceGemmAcc,
                         &generic::ReferenceGemmBtAcc,
                         &generic::ReferenceGemmAtAcc,
                         "generic"};
  }();
  return fns;
}

}  // namespace detail

const char* GemmKernelIsa() { return detail::ActiveGemmKernels().name; }

// ---- serial scalar reference kernels (the seed inner loops) ----
//
// The bodies live in gemm_kernels_impl.h, built per ISA namespace, so the
// reference loops and the packed micro-kernel share one FP-contraction
// regime: whichever side of the UsePackedGemm threshold a shape lands on,
// the per-cell accumulation chain rounds identically.

void ReferenceGemmAcc(const float* a, const float* b, float* c, size_t m,
                      size_t k, size_t n) {
  detail::ActiveGemmKernels().reference_gemm_acc(a, b, c, m, k, n);
}

void ReferenceGemmBtAcc(const float* a, const float* b, float* c, size_t m,
                        size_t k, size_t n) {
  detail::ActiveGemmKernels().reference_gemm_bt_acc(a, b, c, m, k, n);
}

void ReferenceGemmAtAcc(const float* a, const float* b, float* c, size_t m,
                        size_t k, size_t n) {
  detail::ActiveGemmKernels().reference_gemm_at_acc(a, b, c, m, k, n);
}

// ---- packed driver ----

bool UsePackedGemm(size_t m, size_t k, size_t n) {
  return m * k * n >= kGemmPackedMinOps;
}

void PackedGemmAcc(const float* a, size_t a_rs, size_t a_cs, const float* b,
                   size_t b_rs, size_t b_cs, float* c, size_t m, size_t k,
                   size_t n) {
  if (m == 0 || n == 0 || k == 0) return;
  const detail::GemmKernelFns& fns = detail::ActiveGemmKernels();
  const size_t npanels = detail::CeilDiv(n, kGemmNr);
  std::vector<float> bpack = AcquireVec(npanels * k * kGemmNr);
  // Panels are disjoint writes, so packing parallelizes cleanly; the
  // panel contents depend only on B, never on the thread count.
  ParallelFor(0, npanels, GrainForOps(k * kGemmNr),
              [&](size_t jp0, size_t jp1) {
                fns.pack_b(b, b_rs, b_cs, k, n, jp0, jp1, bpack.data());
              });
  ParallelFor(0, m, detail::PackedRowGrain(k, n), [&](size_t r0, size_t r1) {
    fns.run_rows(a, a_rs, a_cs, bpack.data(), c, k, n, r0, r1);
  });
  ReleaseVec(std::move(bpack));
}

}  // namespace stm::la
