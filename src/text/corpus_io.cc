#include "text/corpus_io.h"

#include <fstream>
#include <map>

#include "common/string_util.h"
#include "text/tokenizer.h"

namespace stm::text {

bool LoadTsv(const std::string& path, Corpus* corpus, size_t* skipped) {
  std::ifstream in(path);
  if (!in) return false;
  size_t bad = 0;
  std::map<std::string, int> label_ids;
  std::string line;
  while (std::getline(in, line)) {
    const std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const std::vector<std::string> columns = ::stm::Split(trimmed, '\t');
    if (columns.size() < 2) {
      ++bad;
      continue;
    }
    Document doc;
    bool ok = true;
    for (const std::string& label : ::stm::Split(columns[0], '|')) {
      auto [it, inserted] = label_ids.try_emplace(
          label, static_cast<int>(corpus->label_names().size()));
      if (inserted) corpus->label_names().push_back(label);
      doc.labels.push_back(it->second);
    }
    if (doc.labels.empty()) ok = false;
    doc.tokens = Tokenizer::Encode(columns[1], corpus->vocab(),
                                   /*grow_vocab=*/true);
    if (doc.tokens.empty()) ok = false;
    for (size_t c = 2; c < columns.size(); ++c) {
      const size_t eq = columns[c].find('=');
      if (eq == std::string::npos || eq == 0 ||
          eq + 1 >= columns[c].size()) {
        ok = false;
        break;
      }
      doc.metadata[columns[c].substr(0, eq)].push_back(
          columns[c].substr(eq + 1));
    }
    if (!ok) {
      ++bad;
      continue;
    }
    corpus->docs().push_back(std::move(doc));
  }
  if (skipped != nullptr) *skipped = bad;
  return true;
}

bool SaveTsv(const Corpus& corpus, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  for (const Document& doc : corpus.docs()) {
    std::vector<std::string> labels;
    for (int label : doc.labels) {
      labels.push_back(corpus.label_names()[static_cast<size_t>(label)]);
    }
    out << Join(labels, "|") << '\t';
    for (size_t t = 0; t < doc.tokens.size(); ++t) {
      if (t > 0) out << ' ';
      out << corpus.vocab().TokenOf(doc.tokens[t]);
    }
    for (const auto& [type, values] : doc.metadata) {
      for (const std::string& value : values) {
        out << '\t' << type << '=' << value;
      }
    }
    out << '\n';
  }
  return static_cast<bool>(out);
}

}  // namespace stm::text
