#include "common/serialize.h"

#include <cstring>
#include <fstream>

#include "common/check.h"

namespace stm {

namespace {

template <typename T>
void AppendRaw(std::string& buffer, T value) {
  char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  buffer.append(bytes, sizeof(T));
}

}  // namespace

void BinaryWriter::WriteU32(uint32_t value) { AppendRaw(buffer_, value); }
void BinaryWriter::WriteU64(uint64_t value) { AppendRaw(buffer_, value); }
void BinaryWriter::WriteF32(float value) { AppendRaw(buffer_, value); }

void BinaryWriter::WriteString(const std::string& value) {
  WriteU64(value.size());
  buffer_.append(value);
}

void BinaryWriter::WriteFloats(const std::vector<float>& values) {
  WriteU64(values.size());
  const size_t bytes = values.size() * sizeof(float);
  const size_t old = buffer_.size();
  buffer_.resize(old + bytes);
  if (bytes > 0) std::memcpy(buffer_.data() + old, values.data(), bytes);
}

bool BinaryWriter::Flush(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
  return static_cast<bool>(out);
}

BinaryReader::BinaryReader(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return;
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  if (size < 0) return;
  in.seekg(0, std::ios::beg);
  buffer_.resize(static_cast<size_t>(size));
  in.read(buffer_.data(), size);
  ok_ = static_cast<bool>(in);
}

bool BinaryReader::Ensure(size_t bytes) {
  if (!ok_ || pos_ + bytes > buffer_.size()) {
    ok_ = false;
    return false;
  }
  return true;
}

uint32_t BinaryReader::ReadU32() {
  uint32_t value = 0;
  if (Ensure(sizeof(value))) {
    std::memcpy(&value, buffer_.data() + pos_, sizeof(value));
    pos_ += sizeof(value);
  }
  return value;
}

uint64_t BinaryReader::ReadU64() {
  uint64_t value = 0;
  if (Ensure(sizeof(value))) {
    std::memcpy(&value, buffer_.data() + pos_, sizeof(value));
    pos_ += sizeof(value);
  }
  return value;
}

float BinaryReader::ReadF32() {
  float value = 0.0f;
  if (Ensure(sizeof(value))) {
    std::memcpy(&value, buffer_.data() + pos_, sizeof(value));
    pos_ += sizeof(value);
  }
  return value;
}

std::string BinaryReader::ReadString() {
  const uint64_t size = ReadU64();
  std::string value;
  if (Ensure(size)) {
    value.assign(buffer_.data() + pos_, size);
    pos_ += size;
  }
  return value;
}

std::vector<float> BinaryReader::ReadFloats() {
  const uint64_t count = ReadU64();
  std::vector<float> values;
  const size_t bytes = count * sizeof(float);
  if (Ensure(bytes)) {
    values.resize(count);
    if (bytes > 0) std::memcpy(values.data(), buffer_.data() + pos_, bytes);
    pos_ += bytes;
  }
  return values;
}

}  // namespace stm
