#ifndef STM_COMMON_ENV_PARSE_H_
#define STM_COMMON_ENV_PARSE_H_

#include <cstddef>
#include <string_view>
#include <vector>

namespace stm {

// Validated parsing for the STM_* environment knobs.
//
// The contract every helper follows:
//  * variable unset or empty        -> return `fallback`, silently;
//  * variable set to a valid token  -> return the parsed value;
//  * anything else (trailing junk, sign on an unsigned knob, overflow,
//    NaN/Inf, out-of-range value, unknown enum token) -> return
//    `fallback` and print ONE warning line to stderr naming the variable,
//    the rejected value and the fallback, matching the existing
//    STM_ENCODE_BATCH message style.
//
// The old call sites passed a null `endptr` to strtof/strtol/strtoull, so
// `STM_ENCODE_BUCKET_WASTE=0.5x` parsed as 0.5 and `STM_NUM_THREADS=abc`
// parsed as 0 — both silently. A knob that is set but not understood now
// always says so.

// Unsigned integer knob. The token must be decimal digits only (no sign,
// no suffix). Values outside [min_value, max_value] are rejected.
size_t ParseSizeEnv(const char* name, size_t fallback, size_t min_value,
                    size_t max_value);

// Float knob. The token must be a finite decimal number fully consumed by
// strtof (NaN and Inf are rejected). Values outside [min_value, max_value]
// are rejected.
float ParseFloatEnv(const char* name, float fallback, float min_value,
                    float max_value);

// Boolean knob: "1"/"true"/"on"/"yes" -> true, "0"/"false"/"off"/"no" ->
// false (ASCII case-insensitive). Anything else warns and falls back.
bool ParseBoolEnv(const char* name, bool fallback);

// Enum knob: returns the index of the token in `values`, or
// `fallback_index` (with a warning listing the accepted tokens) when the
// token matches none of them.
size_t ParseEnumEnv(const char* name,
                    const std::vector<std::string_view>& values,
                    size_t fallback_index);

// a * b saturating at SIZE_MAX instead of wrapping — for MB -> bytes
// style conversions of user-supplied sizes.
size_t SaturatingMulSize(size_t a, size_t b);

}  // namespace stm

#endif  // STM_COMMON_ENV_PARSE_H_
