#include "taxonomy/taxonomy.h"

#include <algorithm>

#include "common/check.h"

namespace stm::taxonomy {

int LabelTree::AddNode(const std::string& name, int parent) {
  const int id = static_cast<int>(names_.size());
  STM_CHECK_GE(parent, -1);
  STM_CHECK_LT(parent, id) << "parent must be added before child";
  names_.push_back(name);
  parents_.push_back(parent);
  children_.emplace_back();
  if (parent >= 0) children_[static_cast<size_t>(parent)].push_back(id);
  return id;
}

const std::string& LabelTree::NameOf(int node) const {
  STM_CHECK_GE(node, 0);
  STM_CHECK_LT(static_cast<size_t>(node), names_.size());
  return names_[static_cast<size_t>(node)];
}

int LabelTree::ParentOf(int node) const {
  STM_CHECK_GE(node, 0);
  STM_CHECK_LT(static_cast<size_t>(node), parents_.size());
  return parents_[static_cast<size_t>(node)];
}

const std::vector<int>& LabelTree::ChildrenOf(int node) const {
  STM_CHECK_GE(node, 0);
  STM_CHECK_LT(static_cast<size_t>(node), children_.size());
  return children_[static_cast<size_t>(node)];
}

bool LabelTree::IsLeaf(int node) const { return ChildrenOf(node).empty(); }

std::vector<int> LabelTree::Roots() const {
  std::vector<int> roots;
  for (size_t i = 0; i < parents_.size(); ++i) {
    if (parents_[i] == -1) roots.push_back(static_cast<int>(i));
  }
  return roots;
}

std::vector<int> LabelTree::Leaves() const {
  std::vector<int> leaves;
  for (size_t i = 0; i < children_.size(); ++i) {
    if (children_[i].empty()) leaves.push_back(static_cast<int>(i));
  }
  return leaves;
}

std::vector<int> LabelTree::PathTo(int node) const {
  std::vector<int> path = WithAncestors(node);
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<int> LabelTree::WithAncestors(int node) const {
  std::vector<int> chain;
  int current = node;
  while (current != -1) {
    chain.push_back(current);
    current = ParentOf(current);
  }
  return chain;
}

std::vector<int> LabelTree::ClosureOf(const std::vector<int>& nodes) const {
  std::vector<int> closure;
  for (int node : nodes) {
    const std::vector<int> chain = WithAncestors(node);
    closure.insert(closure.end(), chain.begin(), chain.end());
  }
  std::sort(closure.begin(), closure.end());
  closure.erase(std::unique(closure.begin(), closure.end()), closure.end());
  return closure;
}

int LabelTree::DepthOf(int node) const {
  return static_cast<int>(WithAncestors(node).size()) - 1;
}

int LabelTree::MaxDepth() const {
  int max_depth = 0;
  for (size_t i = 0; i < names_.size(); ++i) {
    max_depth = std::max(max_depth, DepthOf(static_cast<int>(i)));
  }
  return max_depth;
}

std::vector<int> LabelTree::NodesAtDepth(int depth) const {
  std::vector<int> nodes;
  for (size_t i = 0; i < names_.size(); ++i) {
    if (DepthOf(static_cast<int>(i)) == depth) {
      nodes.push_back(static_cast<int>(i));
    }
  }
  return nodes;
}

}  // namespace stm::taxonomy
