#ifndef STM_CORE_MICOL_H_
#define STM_CORE_MICOL_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "nn/optimizer.h"
#include "plm/minilm.h"
#include "plm/pair_scorer.h"
#include "text/corpus.h"

namespace stm::core {

// MICoL (Zhang et al., WWW'22): metadata-induced contrastive learning for
// zero-shot multi-label classification. Similar-document pairs mined from
// metadata meta-paths (graph::MinePairs) replace labeled (doc, label)
// pairs:
//  * Bi-Encoder: fine-tune the PLM itself with InfoNCE so that paired
//    documents embed nearby; rank labels by embedding similarity with the
//    label's name+description text.
//  * Cross-Encoder: train a pair relevance head on (paired, random)
//    documents; rank labels by head score on (doc, label text).
struct MicolConfig {
  int bi_encoder_steps = 400;
  size_t batch_pairs = 8;
  float lr = 1e-3f;
  float temperature = 0.2f;
  int cross_epochs = 6;
  // false (default, the paper's setting): fine-tune the whole encoder in
  // place; true: train only a projection head over the frozen encoder.
  bool projection_head = false;
  uint64_t seed = 141;
};

class Micol {
 public:
  // With projection_head=false the model is fine-tuned IN PLACE by
  // FineTuneBiEncoder; callers who need the base encoder elsewhere should
  // load a fresh instance.
  Micol(const text::Corpus& corpus, plm::MiniLm* model,
        const MicolConfig& config);

  // Contrastive fine-tuning on mined doc-index pairs. Returns final loss.
  double FineTuneBiEncoder(
      const std::vector<std::pair<size_t, size_t>>& pairs);

  // Trains the cross-encoder head on mined pairs (positives) vs random
  // document pairs (negatives). Does not modify the encoder.
  std::unique_ptr<plm::PairScorer> TrainCrossEncoder(
      const std::vector<std::pair<size_t, size_t>>& pairs);

  // Ranked label ids per document by pooled-embedding cosine with each
  // label's name+description tokens.
  std::vector<std::vector<int>> RankByBiEncoder(
      const std::vector<std::vector<int32_t>>& label_texts);

  // Ranked label ids per document by cross-encoder score.
  std::vector<std::vector<int>> RankByCrossEncoder(
      plm::PairScorer* scorer,
      const std::vector<std::vector<int32_t>>& label_texts);

 private:
  // Pooled representation after the (optional) trained projection.
  std::vector<float> Represent(const std::vector<int32_t>& tokens);

  const text::Corpus& corpus_;
  plm::MiniLm* model_;
  MicolConfig config_;
  // Projection head state (projection_head mode).
  nn::ParameterStore proj_store_;
  nn::Tensor proj_weight_;
  bool projection_trained_ = false;
};

// EDA-style augmentation (word dropout + local swaps): used by the
// text-based contrastive baselines that MICoL is compared against.
std::vector<int32_t> AugmentEda(const std::vector<int32_t>& tokens,
                                Rng& rng);

// UDA-style augmentation (unigram-resampling a fraction of tokens).
std::vector<int32_t> AugmentUda(const std::vector<int32_t>& tokens,
                                const std::vector<double>& unigram,
                                Rng& rng);

}  // namespace stm::core

#endif  // STM_CORE_MICOL_H_
