# Empty compiler generated dependencies file for bench_westclass.
# This may be replaced when dependencies are built.
