#include "common/hash.h"

namespace stm {

std::string HashToHex(uint64_t hash) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kDigits[hash & 0xF];
    hash >>= 4;
  }
  return out;
}

}  // namespace stm
