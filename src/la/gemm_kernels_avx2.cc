// AVX2+FMA micro-kernel build: this translation unit (and nothing else)
// is compiled with -mavx2 -mfma (see src/CMakeLists.txt), so the
// auto-vectorizer turns the 8-wide accumulator loops in
// gemm_kernels_impl.h into 256-bit FMA sequences. Only entered when
// cpuid reports AVX2 and FMA (see ActiveGemmKernels), so it is safe to
// build on any x86-64 baseline.

#define STM_GEMM_KERNEL_NAMESPACE avx2
#define STM_GEMM_KERNEL_NAME "avx2+fma"
#include "la/gemm_kernels_impl.h"
