#ifndef STM_CORE_TAXOCLASS_H_
#define STM_CORE_TAXOCLASS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/feature_classifier.h"
#include "plm/minilm.h"
#include "plm/pair_scorer.h"
#include "taxonomy/taxonomy.h"
#include "text/corpus.h"

namespace stm::core {

// TaxoClass (Shen et al., NAACL'21): hierarchical multi-label text
// classification from class names only.
//   1. Document-class relevance from a pre-trained entailment model (here:
//      a PairScorer over MiniLm pooled vectors, pre-trained on
//      (document, topic-name) entailment pairs built from *auxiliary*
//      topics so evaluation classes are never seen).
//   2. Top-down exploration of the taxonomy keeping the top-k children per
//      level, shrinking the label search space.
//   3. Core classes: confident (doc, class) pairs from the reduced space.
//   4. Multi-label classifier trained on core classes, generalized with
//      self-training; predictions are closed under ancestors.
struct TaxoClassConfig {
  size_t beam_per_level = 4;        // children kept per explored node
  double core_percentile = 0.8;     // relevance cutoff for core classes
  size_t core_min_per_class = 3;    // top docs kept per class regardless
  int classifier_epochs = 15;
  int self_train_rounds = 2;
  double self_train_threshold = 0.6;
  float predict_threshold = 0.25f;
  uint64_t seed = 121;
};

class TaxoClass {
 public:
  // `relevance` must already be trained (see TrainRelevanceModel).
  TaxoClass(const text::Corpus& corpus, const taxonomy::LabelTree& tree,
            plm::MiniLm* model, plm::PairScorer* relevance,
            const TaxoClassConfig& config);

  struct Result {
    // Predicted label sets (closed under ancestors), per document.
    std::vector<std::vector<int>> predicted;
    // All tree nodes ranked by classifier probability, per document.
    std::vector<std::vector<int>> ranked;
  };

  // `label_name_tokens[node]` = token ids of the node's name.
  Result Run(const std::vector<std::vector<int32_t>>& label_name_tokens);

  // Candidate nodes from the last top-down exploration, per document.
  const std::vector<std::vector<int>>& candidates() const {
    return candidates_;
  }

  // Self-trained multi-label classifier, shared so the serving layer
  // (serve::Server) can route single documents through it. Null before
  // Run().
  std::shared_ptr<nn::FeatureMlpClassifier> trained_classifier() const {
    return classifier_;
  }

 private:
  const text::Corpus& corpus_;
  const taxonomy::LabelTree& tree_;
  plm::MiniLm* model_;
  plm::PairScorer* relevance_;
  TaxoClassConfig config_;
  std::vector<std::vector<int>> candidates_;
  std::shared_ptr<nn::FeatureMlpClassifier> classifier_;
};

// ---- relevance primitives (shared with the Hier-0Shot-TC baseline) ----

// Occurrence-averaged contextual representation of `name_tokens[0]` over
// `docs` (the X-Class "static word representation"); falls back to the
// pooled encoding of the name tokens when the word never occurs.
std::vector<float> OccurrenceAverageRep(
    plm::MiniLm* model, const std::vector<std::vector<int32_t>>& docs,
    const std::vector<int32_t>& name_tokens, size_t max_occurrences = 30);

// Mean of the `k` token vectors in `hidden` most cosine-similar to
// `class_rep` — the document's best evidence for the class.
std::vector<float> TopTokenContext(const la::Matrix& hidden,
                                   const std::vector<float>& class_rep,
                                   size_t k = 5);

// Pre-trains the shared relevance model on auxiliary-topic entailment
// pairs: positives (aux doc evidence, its topic rep), negatives (evidence
// w.r.t. another topic, that topic's rep). This mirrors fine-tuning BERT
// on NLI: the evaluation classes are never seen.
std::unique_ptr<plm::PairScorer> TrainRelevanceModel(
    plm::MiniLm* model, const std::vector<std::vector<int32_t>>& aux_docs,
    const std::vector<int>& aux_labels,
    const std::vector<std::vector<int32_t>>& aux_topic_name_tokens,
    uint64_t seed);

}  // namespace stm::core

#endif  // STM_CORE_TAXOCLASS_H_
