#ifndef STM_GRAPH_HIN_H_
#define STM_GRAPH_HIN_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "la/matrix.h"
#include "text/corpus.h"

namespace stm::graph {

// Heterogeneous information network over documents and their metadata:
// node types are "doc", the metadata attribute names ("user", "tag",
// "venue", "ref" targets resolve to "doc"), and optionally "word"/"label".
// MetaCat's embedding learner and the metapath2vec baseline both operate
// on this structure; MICoL mines similar-document pairs from its
// meta-paths.
class Hin {
 public:
  // Adds (or returns existing) node of `type` with external `name`.
  int AddNode(const std::string& type, const std::string& name);

  // Looks up a node; -1 if absent.
  int NodeOf(const std::string& type, const std::string& name) const;

  // Undirected edge.
  void AddEdge(int a, int b);

  size_t num_nodes() const { return types_.size(); }
  const std::string& TypeOf(int node) const;
  const std::string& NameOf(int node) const;
  const std::vector<int>& NeighborsOf(int node) const;

  // Neighbors of `node` having `type`.
  std::vector<int> NeighborsOfType(int node, const std::string& type) const;

 private:
  std::vector<std::string> types_;
  std::vector<std::string> names_;
  std::vector<std::vector<int>> adjacency_;
  std::unordered_map<std::string, int> index_;  // "type\tname" -> id
};

struct HinBuildOptions {
  bool include_words = false;   // add word nodes (doc-word edges)
  int min_word_count = 3;       // skip rare words when include_words
  bool include_labels = false;  // add label nodes linked to labeled docs
  // Document indices with known labels (labels read from the corpus).
  std::vector<size_t> labeled_docs;
};

// Builds a HIN from a corpus: doc nodes "d<i>", one node per metadata
// value, edges doc—metadata. "ref" metadata values ("d<j>") become
// doc—doc edges.
Hin BuildHin(const text::Corpus& corpus, const HinBuildOptions& options);

// Random walks following a cyclic meta-path of node types, e.g.
// {"doc", "user", "doc"} (the terminal type must equal the first). Walks
// start at every node of the first type, `walks_per_node` times, and
// continue until `walk_len` nodes or a dead end.
std::vector<std::vector<int>> MetaPathWalks(const Hin& hin,
                                            const std::vector<std::string>& metapath,
                                            int walks_per_node, int walk_len,
                                            uint64_t seed);

// Skip-gram over walks -> node embeddings [num_nodes, dim]
// (metapath2vec). `window`/`negatives`/`epochs` follow word2vec defaults.
struct NodeEmbeddingConfig {
  size_t dim = 32;
  int window = 3;
  int negatives = 5;
  int epochs = 3;
  float lr = 0.05f;
  uint64_t seed = 37;
};
la::Matrix TrainNodeEmbeddings(const std::vector<std::vector<int>>& walks,
                               size_t num_nodes,
                               const NodeEmbeddingConfig& config);

// MICoL meta-path pair mining over "ref" links:
//  "P->P<-P"   : documents citing a common document,
//  "P<-(PP)->P": documents co-cited by a common document,
//  "P-V-P"     : documents sharing a venue,
//  "P-A-P"     : documents sharing a user/author.
// Returns up to `max_pairs` distinct (i, j) doc-index pairs.
std::vector<std::pair<size_t, size_t>> MinePairs(
    const text::Corpus& corpus, const std::string& metapath,
    size_t max_pairs, uint64_t seed);

}  // namespace stm::graph

#endif  // STM_GRAPH_HIN_H_
