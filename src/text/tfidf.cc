#include "text/tfidf.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/check.h"
#include "common/thread_pool.h"
#include "text/tokenizer.h"

namespace stm::text {

float SparseCosine(const SparseVector& a, const SparseVector& b) {
  float dot = 0.0f;
  float na = 0.0f;
  float nb = 0.0f;
  for (float w : a.weights) na += w * w;
  for (float w : b.weights) nb += w * w;
  if (na == 0.0f || nb == 0.0f) return 0.0f;
  size_t i = 0;
  size_t j = 0;
  while (i < a.ids.size() && j < b.ids.size()) {
    if (a.ids[i] == b.ids[j]) {
      dot += a.weights[i] * b.weights[j];
      ++i;
      ++j;
    } else if (a.ids[i] < b.ids[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return dot / std::sqrt(na * nb);
}

TfIdf::TfIdf(const CorpusReader& corpus, bool drop_stopwords) {
  const size_t vocab_size = corpus.vocab().size();
  const std::vector<int32_t> df = corpus.DocumentFrequencies();
  const float n = static_cast<float>(corpus.num_docs());
  idf_.resize(vocab_size, 0.0f);
  skip_.resize(vocab_size, false);
  for (size_t i = 0; i < vocab_size; ++i) {
    idf_[i] = std::log((1.0f + n) / (1.0f + static_cast<float>(df[i]))) + 1.0f;
    const int32_t id = static_cast<int32_t>(i);
    if (Vocabulary::IsSpecial(id) ||
        (drop_stopwords && IsStopword(corpus.vocab().TokenOf(id)))) {
      skip_[i] = true;
    }
  }
}

SparseVector TfIdf::Transform(const std::vector<int32_t>& tokens) const {
  return Transform(tokens.data(), tokens.size());
}

SparseVector TfIdf::Transform(const int32_t* tokens, size_t count) const {
  std::unordered_map<int32_t, int> tf;
  for (size_t t = 0; t < count; ++t) {
    const int32_t id = tokens[t];
    if (id >= 0 && static_cast<size_t>(id) < skip_.size() &&
        !skip_[static_cast<size_t>(id)]) {
      tf[id]++;
    }
  }
  SparseVector vec;
  vec.ids.reserve(tf.size());
  for (const auto& [id, _] : tf) vec.ids.push_back(id);
  std::sort(vec.ids.begin(), vec.ids.end());
  vec.weights.reserve(vec.ids.size());
  float norm_sq = 0.0f;
  for (int32_t id : vec.ids) {
    const float weight =
        (1.0f + std::log(static_cast<float>(tf[id]))) *
        idf_[static_cast<size_t>(id)];
    vec.weights.push_back(weight);
    norm_sq += weight * weight;
  }
  if (norm_sq > 0.0f) {
    const float inv = 1.0f / std::sqrt(norm_sq);
    for (float& w : vec.weights) w *= inv;
  }
  return vec;
}

std::vector<SparseVector> TfIdf::TransformAll(const Corpus& corpus) const {
  // Documents transform independently; each slot is written by exactly
  // one worker, so the result is identical at any thread count.
  std::vector<SparseVector> vecs(corpus.num_docs());
  const std::vector<Document>& docs = corpus.docs();
  ParallelFor(0, docs.size(), 16, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) vecs[i] = Transform(docs[i].tokens);
  });
  return vecs;
}

StatusOr<std::vector<SparseVector>> TfIdf::TransformShard(
    const CorpusReader& corpus, size_t shard) const {
  // DocView spans die when VisitShard returns (a mapped shard is dropped
  // on return), so the collector copies each token sequence; the copies
  // then transform independently in parallel, same contract as
  // TransformAll.
  const auto [begin, end] = corpus.ShardDocRange(shard);
  std::vector<std::vector<int32_t>> docs(end - begin);
  STM_RETURN_IF_ERROR(corpus.VisitShard(
      shard, [&](size_t doc, const DocView& view) {
        docs[doc - begin].assign(view.tokens, view.tokens + view.num_tokens);
      }));
  std::vector<SparseVector> vecs(docs.size());
  ParallelFor(0, docs.size(), 16, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) {
      vecs[i] = Transform(docs[i].data(), docs[i].size());
    }
  });
  return vecs;
}

SparseVector TfIdf::KeywordQuery(
    const std::vector<int32_t>& keyword_ids) const {
  std::vector<int32_t> ids = keyword_ids;
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  SparseVector vec;
  float norm_sq = 0.0f;
  for (int32_t id : ids) {
    if (id < 0 || static_cast<size_t>(id) >= idf_.size()) continue;
    const float weight = idf_[static_cast<size_t>(id)];
    vec.ids.push_back(id);
    vec.weights.push_back(weight);
    norm_sq += weight * weight;
  }
  if (norm_sq > 0.0f) {
    const float inv = 1.0f / std::sqrt(norm_sq);
    for (float& w : vec.weights) w *= inv;
  }
  return vec;
}

std::vector<int32_t> TfIdf::TopTerms(const std::vector<int32_t>& tokens,
                                     size_t k) const {
  const SparseVector vec = Transform(tokens);
  std::vector<size_t> order(vec.ids.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  // Ties broken by token id (vec.ids is ascending, so index order is id
  // order) to keep the output independent of the stdlib sort.
  std::sort(order.begin(), order.end(), [&vec](size_t a, size_t b) {
    if (vec.weights[a] != vec.weights[b]) {
      return vec.weights[a] > vec.weights[b];
    }
    return a < b;
  });
  std::vector<int32_t> top;
  for (size_t i = 0; i < order.size() && i < k; ++i) {
    top.push_back(vec.ids[order[i]]);
  }
  return top;
}

float TfIdf::IdfOf(int32_t id) const {
  STM_CHECK_GE(id, 0);
  STM_CHECK_LT(static_cast<size_t>(id), idf_.size());
  return idf_[static_cast<size_t>(id)];
}

std::vector<float> BagOfWords(const std::vector<int32_t>& tokens,
                              size_t vocab_size) {
  std::vector<float> counts(vocab_size, 0.0f);
  for (int32_t id : tokens) {
    if (id >= 0 && static_cast<size_t>(id) < vocab_size) {
      counts[static_cast<size_t>(id)] += 1.0f;
    }
  }
  return counts;
}

}  // namespace stm::text
