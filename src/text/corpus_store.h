#ifndef STM_TEXT_CORPUS_STORE_H_
#define STM_TEXT_CORPUS_STORE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/env.h"
#include "common/status.h"
#include "text/corpus.h"

namespace stm::text {

// Sharded on-disk corpus format ("corpus store"). A store directory holds:
//
//   shard-000000.stmc         framed "STMS" artifact: token ids, per-doc
//   shard-000001.stmc         offsets, gold labels for a doc range
//   ...
//   shard-000000.counts.stmc  framed "STMV" sidecar: per-shard document
//   ...                       frequencies + token occurrence counts
//   dict.stmc                 framed "STMD": vocabulary + label names
//   manifest.stmc             framed "STMN": totals + per-shard doc counts
//                             and payload CRCs — the commit point
//
// Every file reuses the PR 3 framed-artifact container (CRC32C payload
// checksum, atomic publish via Env::WriteFileAtomic), so torn or
// bit-flipped files surface as kCorruptData, never as wrong data. Shard
// payloads lay out their token/label arrays 4-byte aligned relative to the
// frame, so a mapped shard serves DocView spans zero-copy.
//
// Streaming invariants: documents carry stable global indices assigned in
// Add() order and contiguous across shards; integer DF/occurrence sidecars
// sum to exactly the in-RAM counts regardless of shard boundaries. Both
// are what lets every consumer stay bit-identical to the in-RAM path at
// any shard size (see DESIGN.md §5k).

inline constexpr uint32_t kCorpusShardMagic = 0x53544D53;   // shard "STMS"
inline constexpr uint32_t kCorpusCountsMagic = 0x53544D56;  // sidecar "STMV"
inline constexpr uint32_t kCorpusDictMagic = 0x53544D44;    // dict "STMD"
inline constexpr uint32_t kCorpusManifestMagic = 0x53544D4E;  // man. "STMN"

struct CorpusStoreOptions {
  // A shard is flushed once it would exceed either budget; a single
  // oversized document still gets a (one-doc) shard of its own.
  size_t shard_docs = 8192;            // STM_CORPUS_SHARD_DOCS
  size_t shard_bytes = 8u << 20;       // STM_CORPUS_SHARD_BYTES (token+label
                                       // payload bytes)
  bool use_mmap = true;                // STM_CORPUS_MMAP
};

// Reads the knobs above from the environment (full-token validation, one
// warning + default on malformed values).
CorpusStoreOptions CorpusStoreOptionsFromEnv();

// Splits a document stream into fixed-budget shard artifacts under `dir`.
// Usage: Add() every document, then Finish() with the final vocabulary —
// the manifest is written last, so a store is visible only once complete.
class CorpusShardWriter {
 public:
  CorpusShardWriter(Env* env, std::string dir,
                    const CorpusStoreOptions& options = CorpusStoreOptions());

  // Appends one document; may flush a full shard. Documents receive
  // consecutive global indices in Add() order.
  Status Add(const int32_t* tokens, size_t num_tokens, const int32_t* labels,
             size_t num_labels);
  Status Add(const Document& doc);

  // Flushes the tail shard, then writes the dictionary and finally the
  // manifest (the commit point). The vocabulary must cover every token id
  // that was added.
  Status Finish(const Vocabulary& vocab,
                const std::vector<std::string>& label_names);

  size_t docs_added() const { return docs_added_; }
  size_t shards_written() const { return shards_.size(); }

 private:
  struct ShardMeta {
    std::string file;  // name within dir, e.g. "shard-000000.stmc"
    uint64_t doc_count = 0;
    uint64_t first_doc = 0;
    uint32_t payload_crc = 0;
  };

  Status FlushShard();
  void CountDoc(const int32_t* tokens, size_t num_tokens);

  Env* env_;
  std::string dir_;
  CorpusStoreOptions options_;
  bool finished_ = false;

  // Current shard buffers.
  std::vector<int32_t> tokens_;
  std::vector<int32_t> labels_;
  std::vector<uint64_t> doc_offsets_{0};
  std::vector<uint64_t> label_offsets_{0};
  std::vector<int32_t> shard_df_;
  std::vector<int64_t> shard_counts_;
  std::vector<uint64_t> df_seen_;  // per-token doc stamp, avoids a set

  size_t docs_added_ = 0;
  std::vector<ShardMeta> shards_;
};

// Convenience: exports an in-RAM corpus as a store.
Status WriteCorpusStore(Env* env, const Corpus& corpus, const std::string& dir,
                        const CorpusStoreOptions& options =
                            CorpusStoreOptions());

// Mmap-backed CorpusReader over a store directory. Shards are mapped
// lazily, one VisitShard at a time: the shard file is mapped (or read,
// when mmap is disabled or unavailable), its CRC is validated against the
// manifest, every document is visited zero-copy, and the mapping is
// dropped — so a full pass holds one shard resident, never the corpus.
// Aggregate counts come from the sidecars, summed once at Open.
class ShardedCorpus : public CorpusReader {
 public:
  // Validates the manifest, dictionary and sidecars. kUnavailable when the
  // store (manifest) is missing, kCorruptData when any of them fail their
  // frame checks — see RepairCorpusStore.
  static StatusOr<std::unique_ptr<ShardedCorpus>> Open(
      Env* env, const std::string& dir,
      const CorpusStoreOptions& options = CorpusStoreOptionsFromEnv());

  size_t num_docs() const override { return total_docs_; }
  const Vocabulary& vocab() const override { return vocab_; }
  const std::vector<std::string>& label_names() const override {
    return label_names_;
  }
  size_t num_shards() const override { return shards_.size(); }
  std::pair<size_t, size_t> ShardDocRange(size_t shard) const override;
  Status VisitShard(
      size_t shard,
      const std::function<void(size_t doc, const DocView&)>& fn)
      const override;
  std::vector<int32_t> DocumentFrequencies() const override { return df_; }
  std::vector<int64_t> TokenCounts() const override { return counts_; }

  // True when the last VisitShard served a real memory mapping rather
  // than a heap copy (test hook for the mmap-failure fallback).
  bool last_visit_mapped() const {
    return last_visit_mapped_.load(std::memory_order_relaxed);
  }

 private:
  struct ShardInfo {
    std::string file;
    uint64_t doc_count = 0;
    uint64_t first_doc = 0;
    uint32_t payload_crc = 0;
  };

  ShardedCorpus() = default;

  Env* env_ = nullptr;
  std::string dir_;
  CorpusStoreOptions options_;
  Vocabulary vocab_;
  std::vector<std::string> label_names_;
  std::vector<ShardInfo> shards_;
  std::vector<int32_t> df_;
  std::vector<int64_t> counts_;
  size_t total_docs_ = 0;
  mutable std::atomic<bool> last_visit_mapped_{false};
};

// Scans a damaged store: every shard whose frame, CRC or sidecar fails
// validation is quarantined as `<shard>.corrupt` (sidecar deleted), a
// missing-but-manifested shard is dropped, a valid shard with a damaged
// sidecar gets the sidecar recomputed, and a fresh manifest is rebuilt
// from the survivors with renumbered global doc indices. Requires an
// intact dictionary (the one unrecoverable piece). Never crashes; returns
// what it did.
struct CorpusRepairReport {
  size_t shards_kept = 0;
  size_t shards_quarantined = 0;
  size_t sidecars_rebuilt = 0;
  uint64_t docs_kept = 0;
};

StatusOr<CorpusRepairReport> RepairCorpusStore(Env* env,
                                               const std::string& dir);

// Open, and on kCorruptData repair once and re-open.
StatusOr<std::unique_ptr<ShardedCorpus>> OpenOrRepairCorpusStore(
    Env* env, const std::string& dir,
    const CorpusStoreOptions& options = CorpusStoreOptionsFromEnv());

}  // namespace stm::text

#endif  // STM_TEXT_CORPUS_STORE_H_
