#include "graph/hin.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "common/check.h"
#include "text/vocabulary.h"

namespace stm::graph {

int Hin::AddNode(const std::string& type, const std::string& name) {
  const std::string key = type + "\t" + name;
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  const int id = static_cast<int>(types_.size());
  types_.push_back(type);
  names_.push_back(name);
  adjacency_.emplace_back();
  index_.emplace(key, id);
  return id;
}

int Hin::NodeOf(const std::string& type, const std::string& name) const {
  auto it = index_.find(type + "\t" + name);
  return it == index_.end() ? -1 : it->second;
}

void Hin::AddEdge(int a, int b) {
  STM_CHECK_GE(a, 0);
  STM_CHECK_GE(b, 0);
  STM_CHECK_LT(static_cast<size_t>(a), adjacency_.size());
  STM_CHECK_LT(static_cast<size_t>(b), adjacency_.size());
  adjacency_[static_cast<size_t>(a)].push_back(b);
  adjacency_[static_cast<size_t>(b)].push_back(a);
}

const std::string& Hin::TypeOf(int node) const {
  STM_CHECK_GE(node, 0);
  STM_CHECK_LT(static_cast<size_t>(node), types_.size());
  return types_[static_cast<size_t>(node)];
}

const std::string& Hin::NameOf(int node) const {
  STM_CHECK_GE(node, 0);
  STM_CHECK_LT(static_cast<size_t>(node), names_.size());
  return names_[static_cast<size_t>(node)];
}

const std::vector<int>& Hin::NeighborsOf(int node) const {
  STM_CHECK_GE(node, 0);
  STM_CHECK_LT(static_cast<size_t>(node), adjacency_.size());
  return adjacency_[static_cast<size_t>(node)];
}

std::vector<int> Hin::NeighborsOfType(int node,
                                      const std::string& type) const {
  std::vector<int> out;
  for (int neighbor : NeighborsOf(node)) {
    if (TypeOf(neighbor) == type) out.push_back(neighbor);
  }
  return out;
}

Hin BuildHin(const text::Corpus& corpus, const HinBuildOptions& options) {
  Hin hin;
  // Doc nodes first so node id == doc index.
  for (size_t d = 0; d < corpus.num_docs(); ++d) {
    hin.AddNode("doc", "d" + std::to_string(d));
  }
  for (size_t d = 0; d < corpus.num_docs(); ++d) {
    const text::Document& doc = corpus.docs()[d];
    const int doc_node = static_cast<int>(d);
    for (const auto& [type, values] : doc.metadata) {
      for (const std::string& value : values) {
        if (type == "ref") {
          // Reference targets are documents.
          const int target = hin.NodeOf("doc", value);
          if (target >= 0) hin.AddEdge(doc_node, target);
        } else {
          hin.AddEdge(doc_node, hin.AddNode(type, value));
        }
      }
    }
  }
  if (options.include_words) {
    const std::vector<int64_t> counts = corpus.TokenCounts();
    for (size_t d = 0; d < corpus.num_docs(); ++d) {
      std::set<int32_t> seen;
      for (int32_t id : corpus.docs()[d].tokens) {
        if (id < text::kNumSpecialTokens) continue;
        if (counts[static_cast<size_t>(id)] < options.min_word_count) continue;
        if (!seen.insert(id).second) continue;
        hin.AddEdge(static_cast<int>(d),
                    hin.AddNode("word", corpus.vocab().TokenOf(id)));
      }
    }
  }
  if (options.include_labels) {
    for (size_t d : options.labeled_docs) {
      STM_CHECK_LT(d, corpus.num_docs());
      for (int label : corpus.docs()[d].labels) {
        hin.AddEdge(static_cast<int>(d),
                    hin.AddNode("label", corpus.label_names()[
                                             static_cast<size_t>(label)]));
      }
    }
  }
  return hin;
}

std::vector<std::vector<int>> MetaPathWalks(
    const Hin& hin, const std::vector<std::string>& metapath,
    int walks_per_node, int walk_len, uint64_t seed) {
  STM_CHECK_GE(metapath.size(), 2u);
  STM_CHECK_EQ(metapath.front(), metapath.back())
      << "meta-path must be cyclic";
  Rng rng(seed);
  std::vector<std::vector<int>> walks;
  for (size_t start = 0; start < hin.num_nodes(); ++start) {
    if (hin.TypeOf(static_cast<int>(start)) != metapath[0]) continue;
    for (int w = 0; w < walks_per_node; ++w) {
      std::vector<int> walk = {static_cast<int>(start)};
      size_t step = 0;  // position within the metapath cycle
      while (static_cast<int>(walk.size()) < walk_len) {
        const size_t next_type = (step + 1) % (metapath.size() - 1) == 0
                                     ? 0
                                     : step + 1;
        // The next node type in the cyclic pattern.
        const std::string& want =
            metapath[(step % (metapath.size() - 1)) + 1];
        const std::vector<int> candidates =
            hin.NeighborsOfType(walk.back(), want);
        if (candidates.empty()) break;
        walk.push_back(candidates[rng.UniformInt(candidates.size())]);
        step = next_type;
      }
      if (walk.size() > 1) walks.push_back(std::move(walk));
    }
  }
  return walks;
}

la::Matrix TrainNodeEmbeddings(const std::vector<std::vector<int>>& walks,
                               size_t num_nodes,
                               const NodeEmbeddingConfig& config) {
  Rng rng(config.seed);
  const size_t dim = config.dim;
  la::Matrix in(num_nodes, dim);
  la::Matrix out(num_nodes, dim);
  for (size_t i = 0; i < in.size(); ++i) {
    in.data()[i] =
        static_cast<float>(rng.Uniform(-0.5, 0.5)) / static_cast<float>(dim);
  }
  // Degree-based noise distribution.
  std::vector<double> counts(num_nodes, 1e-3);
  for (const auto& walk : walks) {
    for (int node : walk) counts[static_cast<size_t>(node)] += 1.0;
  }
  for (double& c : counts) c = std::pow(c, 0.75);
  AliasSampler noise(counts);

  auto sigmoid = [](float x) {
    if (x > 8.0f) return 1.0f;
    if (x < -8.0f) return 0.0f;
    return 1.0f / (1.0f + std::exp(-x));
  };
  std::vector<float> grad(dim);
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    const float lr = config.lr *
                         (1.0f - static_cast<float>(epoch) / config.epochs) +
                     1e-4f;
    for (const auto& walk : walks) {
      for (size_t t = 0; t < walk.size(); ++t) {
        for (int off = -config.window; off <= config.window; ++off) {
          if (off == 0) continue;
          const long ctx = static_cast<long>(t) + off;
          if (ctx < 0 || ctx >= static_cast<long>(walk.size())) continue;
          float* center = in.Row(static_cast<size_t>(walk[t]));
          std::fill(grad.begin(), grad.end(), 0.0f);
          for (int n = 0; n <= config.negatives; ++n) {
            const int target =
                n == 0 ? walk[static_cast<size_t>(ctx)]
                       : static_cast<int>(noise.Sample(rng));
            const float label = n == 0 ? 1.0f : 0.0f;
            float* out_vec = out.Row(static_cast<size_t>(target));
            const float g =
                (sigmoid(la::Dot(center, out_vec, dim)) - label) * lr;
            for (size_t j = 0; j < dim; ++j) {
              grad[j] += g * out_vec[j];
              out_vec[j] -= g * center[j];
            }
          }
          for (size_t j = 0; j < dim; ++j) center[j] -= grad[j];
        }
      }
    }
  }
  return in;
}

std::vector<std::pair<size_t, size_t>> MinePairs(
    const text::Corpus& corpus, const std::string& metapath,
    size_t max_pairs, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<size_t, size_t>> pairs;
  std::set<std::pair<size_t, size_t>> seen;
  auto add_group = [&](const std::vector<size_t>& group) {
    for (size_t i = 0; i < group.size(); ++i) {
      for (size_t j = i + 1; j < group.size(); ++j) {
        auto key = std::minmax(group[i], group[j]);
        if (key.first == key.second) continue;
        if (seen.insert({key.first, key.second}).second) {
          pairs.emplace_back(key.first, key.second);
        }
      }
    }
  };

  if (metapath == "P->P<-P") {
    // Group citing docs by cited target.
    std::map<size_t, std::vector<size_t>> by_target;
    for (size_t d = 0; d < corpus.num_docs(); ++d) {
      auto it = corpus.docs()[d].metadata.find("ref");
      if (it == corpus.docs()[d].metadata.end()) continue;
      for (const std::string& ref : it->second) {
        by_target[std::stoul(ref.substr(1))].push_back(d);
      }
    }
    for (const auto& [_, group] : by_target) add_group(group);
  } else if (metapath == "P<-(PP)->P") {
    // Co-cited: group referenced targets by citing doc.
    for (size_t d = 0; d < corpus.num_docs(); ++d) {
      auto it = corpus.docs()[d].metadata.find("ref");
      if (it == corpus.docs()[d].metadata.end()) continue;
      std::vector<size_t> targets;
      for (const std::string& ref : it->second) {
        targets.push_back(std::stoul(ref.substr(1)));
      }
      add_group(targets);
    }
  } else if (metapath == "P-V-P" || metapath == "P-A-P") {
    const std::string type = metapath == "P-V-P" ? "venue" : "user";
    std::map<std::string, std::vector<size_t>> by_value;
    for (size_t d = 0; d < corpus.num_docs(); ++d) {
      auto it = corpus.docs()[d].metadata.find(type);
      if (it == corpus.docs()[d].metadata.end()) continue;
      for (const std::string& value : it->second) {
        by_value[value].push_back(d);
      }
    }
    for (const auto& [_, group] : by_value) {
      if (group.size() > 60) continue;  // hub values produce weak pairs
      add_group(group);
    }
  } else {
    STM_CHECK(false) << "unknown metapath: " << metapath;
  }

  rng.Shuffle(pairs);
  if (pairs.size() > max_pairs) pairs.resize(max_pairs);
  return pairs;
}

}  // namespace stm::graph
