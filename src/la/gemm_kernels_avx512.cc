// AVX-512F/BW micro-kernel build: this translation unit is compiled with
// -mavx512f -mavx512bw -mavx512dq -mavx512vl -mfma (see
// src/CMakeLists.txt), so the auto-vectorizer turns the 16-wide
// accumulator loops in gemm_kernels_impl.h into 512-bit FMA sequences and
// the int8 micro-kernel takes the 512-bit maddubs/madd path. The wider
// 8x16 register tile amortizes each B-panel load over twice the A rows of
// the AVX2 build. Only entered when cpuid reports the full AVX-512
// F/BW/DQ/VL set (see ActiveGemmKernels), so it is safe to build on any
// x86-64 baseline.

#define STM_GEMM_KERNEL_NAMESPACE avx512
#define STM_GEMM_KERNEL_NAME "avx512"
#define STM_GEMM_KERNEL_MR 8
#define STM_GEMM_KERNEL_NR 16
#include "la/gemm_kernels_impl.h"
