#include "nn/loss.h"

#include <cmath>
#include <memory>

#include "common/check.h"
#include "nn/ops.h"

namespace stm::nn {

namespace {

// Internal fused op: -mean_i sum_j probs[i,j] * logp[i,j], probs constant.
Tensor SoftNll(const Tensor& logp, std::vector<float> probs) {
  STM_CHECK_EQ(logp.rank(), 2u);
  STM_CHECK_EQ(logp.size(), probs.size());
  const size_t n = logp.dim(0);
  const size_t c = logp.dim(1);
  auto node = std::make_shared<Node>();
  node->value.assign(1, 0.0f);
  node->shape = {1};
  node->parents.push_back(logp.ptr());
  if (logp.node()->requires_grad) {
    node->requires_grad = true;
    auto probs_ptr = std::make_shared<std::vector<float>>(std::move(probs));
    node->backward = [n, c, probs_ptr](Node& self) {
      Node* parent = self.parents[0].get();
      if (!parent->requires_grad) return;
      parent->EnsureGrad();
      const float g = self.grad[0] / static_cast<float>(n);
      for (size_t i = 0; i < n * c; ++i) {
        parent->grad[i] -= g * (*probs_ptr)[i];
      }
    };
    float loss = 0.0f;
    for (size_t i = 0; i < n * c; ++i) {
      loss -= (*probs_ptr)[i] * logp.value()[i];
    }
    node->value[0] = loss / static_cast<float>(n);
  } else {
    float loss = 0.0f;
    for (size_t i = 0; i < n * c; ++i) {
      loss -= probs[i] * logp.value()[i];
    }
    node->value[0] = loss / static_cast<float>(n);
  }
  return Tensor(std::move(node));
}

}  // namespace

Tensor NllLoss(const Tensor& logp, const std::vector<int>& targets) {
  STM_CHECK_EQ(logp.rank(), 2u);
  STM_CHECK_EQ(logp.dim(0), targets.size());
  const size_t c = logp.dim(1);
  std::vector<float> probs(logp.size(), 0.0f);
  for (size_t i = 0; i < targets.size(); ++i) {
    STM_CHECK_GE(targets[i], 0);
    STM_CHECK_LT(static_cast<size_t>(targets[i]), c);
    probs[i * c + static_cast<size_t>(targets[i])] = 1.0f;
  }
  return SoftNll(logp, std::move(probs));
}

Tensor CrossEntropy(const Tensor& logits, const std::vector<int>& targets) {
  return NllLoss(LogSoftmaxLastDim(logits), targets);
}

Tensor SoftCrossEntropy(const Tensor& logits,
                        const std::vector<float>& probs) {
  return SoftNll(LogSoftmaxLastDim(logits), probs);
}

Tensor BceWithLogits(const Tensor& logits,
                     const std::vector<float>& targets) {
  STM_CHECK_EQ(logits.size(), targets.size());
  const size_t n = logits.size();
  auto node = std::make_shared<Node>();
  node->value.assign(1, 0.0f);
  node->shape = {1};
  node->parents.push_back(logits.ptr());
  // loss_i = max(z,0) - z*t + log(1+exp(-|z|)); dz = sigmoid(z) - t.
  float loss = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    const float z = logits.value()[i];
    loss += std::max(z, 0.0f) - z * targets[i] +
            std::log1p(std::exp(-std::fabs(z)));
  }
  node->value[0] = loss / static_cast<float>(n);
  if (logits.node()->requires_grad) {
    node->requires_grad = true;
    auto t = std::make_shared<std::vector<float>>(targets);
    node->backward = [n, t](Node& self) {
      Node* parent = self.parents[0].get();
      if (!parent->requires_grad) return;
      parent->EnsureGrad();
      const float g = self.grad[0] / static_cast<float>(n);
      for (size_t i = 0; i < n; ++i) {
        const float z = parent->value[i];
        const float sig = 1.0f / (1.0f + std::exp(-z));
        parent->grad[i] += g * (sig - (*t)[i]);
      }
    };
  }
  return Tensor(std::move(node));
}

Tensor InfoNce(const Tensor& similarities, float temperature) {
  STM_CHECK_EQ(similarities.rank(), 2u);
  STM_CHECK_EQ(similarities.dim(0), similarities.dim(1));
  STM_CHECK_GT(temperature, 0.0f);
  const size_t n = similarities.dim(0);
  std::vector<int> targets(n);
  for (size_t i = 0; i < n; ++i) targets[i] = static_cast<int>(i);
  return CrossEntropy(Scale(similarities, 1.0f / temperature), targets);
}

}  // namespace stm::nn
