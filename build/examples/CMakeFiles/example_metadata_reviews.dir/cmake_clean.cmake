file(REMOVE_RECURSE
  "CMakeFiles/example_metadata_reviews.dir/metadata_reviews.cc.o"
  "CMakeFiles/example_metadata_reviews.dir/metadata_reviews.cc.o.d"
  "example_metadata_reviews"
  "example_metadata_reviews.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_metadata_reviews.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
