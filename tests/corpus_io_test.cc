#include <gtest/gtest.h>

#include <fstream>

#include "datasets/specs.h"
#include "text/corpus_io.h"

namespace stm::text {
namespace {

std::string WriteFile(const std::string& name, const std::string& body) {
  const std::string path = testing::TempDir() + "/" + name;
  std::ofstream out(path, std::ios::trunc);
  out << body;
  return path;
}

TEST(CorpusIoTest, LoadBasicTsv) {
  const std::string path = WriteFile("basic.tsv",
                                     "sports\tthe game was great\n"
                                     "law\tthe court ruled today\n"
                                     "# a comment line\n"
                                     "\n"
                                     "sports\tanother match report\n");
  Corpus corpus;
  size_t skipped = 99;
  ASSERT_TRUE(LoadTsv(path, &corpus, &skipped));
  EXPECT_EQ(skipped, 0u);
  ASSERT_EQ(corpus.num_docs(), 3u);
  EXPECT_EQ(corpus.label_names(),
            (std::vector<std::string>{"sports", "law"}));
  EXPECT_EQ(corpus.docs()[0].Label(), 0);
  EXPECT_EQ(corpus.docs()[1].Label(), 1);
  EXPECT_EQ(corpus.docs()[2].Label(), 0);
  EXPECT_EQ(corpus.vocab().TokenOf(corpus.docs()[0].tokens[1]), "game");
}

TEST(CorpusIoTest, MultiLabelAndMetadata) {
  const std::string path = WriteFile(
      "meta.tsv",
      "ml|systems\tdistributed training of models\tuser=alice\ttag=gpu\n");
  Corpus corpus;
  ASSERT_TRUE(LoadTsv(path, &corpus, nullptr));
  ASSERT_EQ(corpus.num_docs(), 1u);
  EXPECT_EQ(corpus.docs()[0].labels, (std::vector<int>{0, 1}));
  EXPECT_EQ(corpus.docs()[0].metadata.at("user"),
            (std::vector<std::string>{"alice"}));
  EXPECT_EQ(corpus.docs()[0].metadata.at("tag"),
            (std::vector<std::string>{"gpu"}));
}

TEST(CorpusIoTest, SkipsMalformedLines) {
  const std::string path = WriteFile("bad.tsv",
                                     "only-one-column\n"
                                     "ok\tsome text\n"
                                     "bad\ttext\tno-equals-meta\n");
  Corpus corpus;
  size_t skipped = 0;
  ASSERT_TRUE(LoadTsv(path, &corpus, &skipped));
  EXPECT_EQ(corpus.num_docs(), 1u);
  EXPECT_EQ(skipped, 2u);
}

TEST(CorpusIoTest, MissingFileFails) {
  Corpus corpus;
  EXPECT_FALSE(LoadTsv("/nonexistent/nope.tsv", &corpus, nullptr));
}

TEST(CorpusIoTest, RoundTripPreservesStructure) {
  datasets::SyntheticSpec spec = datasets::GithubBioSpec(23);
  spec.num_docs = 40;
  spec.pretrain_docs = 0;
  const auto data = datasets::Generate(spec);
  const std::string path = testing::TempDir() + "/roundtrip.tsv";
  ASSERT_TRUE(SaveTsv(data.corpus, path));

  Corpus loaded;
  ASSERT_TRUE(LoadTsv(path, &loaded, nullptr));
  ASSERT_EQ(loaded.num_docs(), data.corpus.num_docs());
  for (size_t d = 0; d < loaded.num_docs(); ++d) {
    const auto& a = data.corpus.docs()[d];
    const auto& b = loaded.docs()[d];
    ASSERT_EQ(a.tokens.size(), b.tokens.size()) << "doc " << d;
    for (size_t t = 0; t < a.tokens.size(); ++t) {
      EXPECT_EQ(data.corpus.vocab().TokenOf(a.tokens[t]),
                loaded.vocab().TokenOf(b.tokens[t]));
    }
    // Label names match (ids may be renumbered by first-seen order).
    ASSERT_EQ(a.labels.size(), b.labels.size());
    for (size_t l = 0; l < a.labels.size(); ++l) {
      EXPECT_EQ(
          data.corpus.label_names()[static_cast<size_t>(a.labels[l])],
          loaded.label_names()[static_cast<size_t>(b.labels[l])]);
    }
    EXPECT_EQ(a.metadata, b.metadata);
  }
}

}  // namespace
}  // namespace stm::text
