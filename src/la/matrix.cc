#include "la/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/check.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace stm::la {

Matrix::Matrix(size_t rows, size_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

float* Matrix::Row(size_t r) {
  STM_CHECK_LT(r, rows_);
  return data_.data() + r * cols_;
}

const float* Matrix::Row(size_t r) const {
  STM_CHECK_LT(r, rows_);
  return data_.data() + r * cols_;
}

float& Matrix::At(size_t r, size_t c) {
  STM_CHECK_LT(r, rows_);
  STM_CHECK_LT(c, cols_);
  return data_[r * cols_ + c];
}

float Matrix::At(size_t r, size_t c) const {
  STM_CHECK_LT(r, rows_);
  STM_CHECK_LT(c, cols_);
  return data_[r * cols_ + c];
}

void Matrix::Reshape(size_t rows, size_t cols) {
  STM_CHECK_EQ(rows * cols, data_.size());
  rows_ = rows;
  cols_ = cols;
}

void Matrix::Fill(float value) {
  for (float& v : data_) v = value;
}

std::vector<float> Matrix::RowVec(size_t r) const {
  const float* p = Row(r);
  return std::vector<float>(p, p + cols_);
}

void Matrix::SetRow(size_t r, const std::vector<float>& values) {
  STM_CHECK_EQ(values.size(), cols_);
  std::memcpy(Row(r), values.data(), cols_ * sizeof(float));
}

float Dot(const float* a, const float* b, size_t n) {
  float sum = 0.0f;
  for (size_t i = 0; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

float Norm(const float* a, size_t n) { return std::sqrt(Dot(a, a, n)); }

void NormalizeInPlace(float* a, size_t n) {
  const float norm = Norm(a, n);
  if (norm > 0.0f) ScaleInPlace(a, n, 1.0f / norm);
}

void Axpy(float alpha, const float* x, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void ScaleInPlace(float* a, size_t n, float s) {
  for (size_t i = 0; i < n; ++i) a[i] *= s;
}

float Cosine(const float* a, const float* b, size_t n) {
  const float na = Norm(a, n);
  const float nb = Norm(b, n);
  if (na == 0.0f || nb == 0.0f) return 0.0f;
  return Dot(a, b, n) / (na * nb);
}

float Cosine(const std::vector<float>& a, const std::vector<float>& b) {
  STM_CHECK_EQ(a.size(), b.size());
  return Cosine(a.data(), b.data(), a.size());
}

std::vector<float> MeanOf(const std::vector<const float*>& vecs, size_t n) {
  std::vector<float> mean(n, 0.0f);
  if (vecs.empty()) return mean;
  for (const float* v : vecs) Axpy(1.0f, v, mean.data(), n);
  ScaleInPlace(mean.data(), n, 1.0f / static_cast<float>(vecs.size()));
  return mean;
}

namespace {

// Output rows per chunk, targeting ~64k multiply-adds per chunk so small
// matrices stay on the serial path. Depends only on the shape, never on
// the thread count, which keeps the chunking (and thus every float) stable
// across STM_NUM_THREADS values.
size_t RowGrain(size_t ops_per_row) {
  constexpr size_t kTargetOps = size_t{1} << 16;
  if (ops_per_row == 0) return 1;
  return std::max<size_t>(1, kTargetOps / ops_per_row);
}

}  // namespace

void GemmAcc(const float* a, const float* b, float* c, size_t m, size_t k,
             size_t n) {
  ParallelFor(0, m, RowGrain(k * n), [=](size_t r0, size_t r1) {
    for (size_t i = r0; i < r1; ++i) {
      const float* arow = a + i * k;
      float* crow = c + i * n;
      for (size_t p = 0; p < k; ++p) {
        const float av = arow[p];
        if (av == 0.0f) continue;
        const float* brow = b + p * n;
        for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  });
}

void GemmBtAcc(const float* a, const float* b, float* c, size_t m, size_t k,
               size_t n) {
  ParallelFor(0, m, RowGrain(k * n), [=](size_t r0, size_t r1) {
    for (size_t i = r0; i < r1; ++i) {
      const float* arow = a + i * k;
      float* crow = c + i * n;
      for (size_t j = 0; j < n; ++j) crow[j] += Dot(arow, b + j * k, k);
    }
  });
}

void GemmAtAcc(const float* a, const float* b, float* c, size_t m, size_t k,
               size_t n) {
  // Each worker owns a block of output rows (columns of a); the inner
  // accumulation stays in ascending-p order per element.
  ParallelFor(0, m, RowGrain(k * n), [=](size_t r0, size_t r1) {
    for (size_t i = r0; i < r1; ++i) {
      float* crow = c + i * n;
      for (size_t p = 0; p < k; ++p) {
        const float av = a[p * m + i];
        if (av == 0.0f) continue;
        const float* brow = b + p * n;
        for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  });
}

void Gemm(const Matrix& a, const Matrix& b, Matrix& c, bool accumulate) {
  STM_CHECK_EQ(a.cols(), b.rows());
  if (c.rows() != a.rows() || c.cols() != b.cols()) {
    c = Matrix(a.rows(), b.cols());
  } else if (!accumulate) {
    c.Fill(0.0f);
  }
  GemmAcc(a.data(), b.data(), c.data(), a.rows(), a.cols(), b.cols());
}

void GemmBt(const Matrix& a, const Matrix& b, Matrix& c, bool accumulate) {
  STM_CHECK_EQ(a.cols(), b.cols());
  if (c.rows() != a.rows() || c.cols() != b.rows()) {
    c = Matrix(a.rows(), b.rows());
  } else if (!accumulate) {
    c.Fill(0.0f);
  }
  GemmBtAcc(a.data(), b.data(), c.data(), a.rows(), a.cols(), b.rows());
}

void GemmAt(const Matrix& a, const Matrix& b, Matrix& c, bool accumulate) {
  STM_CHECK_EQ(a.rows(), b.rows());
  if (c.rows() != a.cols() || c.cols() != b.cols()) {
    c = Matrix(a.cols(), b.cols());
  } else if (!accumulate) {
    c.Fill(0.0f);
  }
  GemmAtAcc(a.data(), b.data(), c.data(), a.cols(), a.rows(), b.cols());
}

void NormalizeRows(Matrix& m) {
  for (size_t r = 0; r < m.rows(); ++r) NormalizeInPlace(m.Row(r), m.cols());
}

Matrix Pca(const Matrix& data, size_t k, int power_iters) {
  STM_CHECK_GT(data.rows(), 0u);
  STM_CHECK_GE(data.cols(), k);
  const size_t n = data.rows();
  const size_t d = data.cols();

  // Center the data.
  std::vector<float> mean(d, 0.0f);
  for (size_t i = 0; i < n; ++i) Axpy(1.0f, data.Row(i), mean.data(), d);
  ScaleInPlace(mean.data(), d, 1.0f / static_cast<float>(n));
  Matrix centered(n, d);
  for (size_t i = 0; i < n; ++i) {
    const float* src = data.Row(i);
    float* dst = centered.Row(i);
    for (size_t j = 0; j < d; ++j) dst[j] = src[j] - mean[j];
  }

  // Covariance (d x d).
  Matrix cov;
  GemmAt(centered, centered, cov);
  for (size_t i = 0; i < cov.size(); ++i) {
    cov.data()[i] /= static_cast<float>(n);
  }

  // Orthogonal power iteration for the top-k eigenvectors.
  Rng rng(42);
  Matrix components(k, d);
  for (size_t c = 0; c < k; ++c) {
    for (size_t j = 0; j < d; ++j) {
      components.At(c, j) = static_cast<float>(rng.Normal());
    }
  }
  std::vector<float> next(d);
  for (int iter = 0; iter < power_iters; ++iter) {
    for (size_t c = 0; c < k; ++c) {
      float* v = components.Row(c);
      // next := cov * v
      for (size_t i = 0; i < d; ++i) next[i] = Dot(cov.Row(i), v, d);
      // Deflate against earlier components (Gram-Schmidt).
      for (size_t prev = 0; prev < c; ++prev) {
        const float proj = Dot(next.data(), components.Row(prev), d);
        Axpy(-proj, components.Row(prev), next.data(), d);
      }
      NormalizeInPlace(next.data(), d);
      std::memcpy(v, next.data(), d * sizeof(float));
    }
  }

  // Project.
  Matrix projected(n, k);
  for (size_t i = 0; i < n; ++i) {
    const float* row = centered.Row(i);
    for (size_t c = 0; c < k; ++c) {
      projected.At(i, c) = Dot(row, components.Row(c), d);
    }
  }
  return projected;
}

}  // namespace stm::la
