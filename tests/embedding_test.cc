#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "datasets/synthetic.h"
#include "embedding/sgns.h"
#include "embedding/vmf.h"
#include "la/matrix.h"

namespace stm::embedding {
namespace {

datasets::SyntheticDataset TwoTopicData(uint64_t seed) {
  datasets::SyntheticSpec spec;
  spec.seed = seed;
  spec.num_docs = 250;
  spec.pretrain_docs = 0;
  spec.background_vocab = 100;
  spec.class_vocab = 10;
  spec.topical_fraction = 0.55;
  spec.classes = {{"soccer", {"goal"}, 1.0, -1},
                  {"court", {"judge"}, 1.0, -1}};
  return datasets::Generate(spec);
}

std::vector<std::vector<int32_t>> Docs(const datasets::SyntheticDataset& d) {
  std::vector<std::vector<int32_t>> docs;
  for (const auto& doc : d.corpus.docs()) docs.push_back(doc.tokens);
  return docs;
}

TEST(SgnsTest, SameTopicWordsCloser) {
  auto data = TwoTopicData(1);
  SgnsConfig config;
  config.epochs = 4;
  WordEmbeddings emb = WordEmbeddings::Train(
      Docs(data), data.corpus.vocab().size(), config);
  const auto& vocab = data.corpus.vocab();
  const auto soccer = emb.UnitVectorOf(vocab.IdOf("soccer"));
  const auto goal = emb.UnitVectorOf(vocab.IdOf("goal"));
  const auto judge = emb.UnitVectorOf(vocab.IdOf("judge"));
  EXPECT_GT(la::Cosine(soccer, goal), la::Cosine(soccer, judge));
}

TEST(SgnsTest, MostSimilarFindsTopicalNeighbors) {
  auto data = TwoTopicData(2);
  SgnsConfig config;
  config.epochs = 4;
  WordEmbeddings emb = WordEmbeddings::Train(
      Docs(data), data.corpus.vocab().size(), config);
  const auto& vocab = data.corpus.vocab();
  const auto neighbors =
      emb.MostSimilar(emb.UnitVectorOf(vocab.IdOf("soccer")), 8,
                      {vocab.IdOf("soccer")});
  ASSERT_EQ(neighbors.size(), 8u);
  int soccer_theme = 0;
  for (const auto& [id, sim] : neighbors) {
    const std::string& token = vocab.TokenOf(id);
    if (token.rfind("soccer_t", 0) == 0 || token == "goal") ++soccer_theme;
  }
  EXPECT_GE(soccer_theme, 4);
}

TEST(SgnsTest, AverageOfIsUnitNorm) {
  auto data = TwoTopicData(3);
  SgnsConfig config;
  config.epochs = 1;
  WordEmbeddings emb = WordEmbeddings::Train(
      Docs(data), data.corpus.vocab().size(), config);
  auto avg = emb.AverageOf({6, 7, 8});
  EXPECT_NEAR(la::Norm(avg.data(), avg.size()), 1.0f, 1e-4f);
}

TEST(DocEmbeddingTest, SameTopicDocsCloser) {
  auto data = TwoTopicData(4);
  DocEmbeddingConfig config;
  config.epochs = 5;
  la::Matrix docs = TrainDocEmbeddings(
      Docs(data), data.corpus.vocab().size(), config);
  double same = 0.0;
  double cross = 0.0;
  size_t same_n = 0;
  size_t cross_n = 0;
  for (size_t i = 0; i < 60; ++i) {
    for (size_t j = i + 1; j < 60; ++j) {
      const float sim =
          la::Cosine(docs.Row(i), docs.Row(j), docs.cols());
      if (data.corpus.docs()[i].labels[0] ==
          data.corpus.docs()[j].labels[0]) {
        same += sim;
        ++same_n;
      } else {
        cross += sim;
        ++cross_n;
      }
    }
  }
  EXPECT_GT(same / same_n, cross / cross_n);
}

TEST(VmfTest, FitRecoversMeanDirection) {
  Rng rng(5);
  std::vector<float> mu = {0.6f, 0.8f, 0.0f};
  std::vector<std::vector<float>> samples;
  for (int i = 0; i < 200; ++i) {
    std::vector<float> v = mu;
    for (float& x : v) x += static_cast<float>(rng.Normal(0.0, 0.15));
    la::NormalizeInPlace(v.data(), v.size());
    samples.push_back(v);
  }
  VonMisesFisher vmf = VonMisesFisher::Fit(samples);
  EXPECT_GT(la::Cosine(vmf.mu(), mu), 0.99f);
  EXPECT_GT(vmf.kappa(), 5.0f);
}

TEST(VmfTest, HigherKappaConcentratesSamples) {
  Rng rng(6);
  std::vector<float> mu = {1.0f, 0.0f, 0.0f, 0.0f};
  VonMisesFisher tight(mu, 200.0f);
  VonMisesFisher loose(mu, 2.0f);
  double tight_cos = 0.0;
  double loose_cos = 0.0;
  for (int i = 0; i < 200; ++i) {
    tight_cos += la::Cosine(tight.Sample(rng), mu);
    loose_cos += la::Cosine(loose.Sample(rng), mu);
  }
  EXPECT_GT(tight_cos / 200.0, loose_cos / 200.0);
  EXPECT_GT(tight_cos / 200.0, 0.9);
}

TEST(VmfTest, SamplesAreUnitNorm) {
  Rng rng(7);
  VonMisesFisher vmf({0.0f, 0.0f, 1.0f}, 20.0f);
  for (int i = 0; i < 50; ++i) {
    auto s = vmf.Sample(rng);
    EXPECT_NEAR(la::Norm(s.data(), s.size()), 1.0f, 1e-4f);
  }
}

TEST(VmfTest, ZeroKappaIsRoughlyUniform) {
  Rng rng(8);
  VonMisesFisher vmf({1.0f, 0.0f, 0.0f}, 0.0f);
  double mean_cos = 0.0;
  for (int i = 0; i < 500; ++i) {
    mean_cos += la::Cosine(vmf.Sample(rng), vmf.mu());
  }
  EXPECT_NEAR(mean_cos / 500.0, 0.0, 0.15);
}

}  // namespace
}  // namespace stm::embedding
