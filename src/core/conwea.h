#ifndef STM_CORE_CONWEA_H_
#define STM_CORE_CONWEA_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/text_classifier.h"
#include "plm/minilm.h"
#include "text/corpus.h"

namespace stm::core {

// ConWea (Mekala & Shang, ACL'20): contextualized weak supervision.
//   1. For every seed word, collect its occurrences, embed them with the
//      pre-trained LM, and cluster the contextual vectors into senses;
//      keep for each class only the sense whose centroid is closest to
//      that class's aggregate seed context.
//   2. Pseudo-label documents by (sense-filtered) seed matches; train a
//      text classifier.
//   3. Expand seeds by comparative ranking of words in predicted classes;
//      iterate.
struct ConWeaConfig {
  int iterations = 2;              // contextualize -> train -> expand loops
  size_t max_occurrences = 40;     // contextual samples per seed word
  size_t senses = 2;               // k for sense clustering
  double sense_margin = 0.05;      // min silhouette to accept a word split
  size_t expand_per_class = 5;     // new seeds per class per iteration
  int classifier_epochs = 8;
  double min_seed_hits = 1.0;      // pseudo-label evidence threshold

  bool enable_contextualization = true;  // ConWea-NoCon ablation
  bool enable_expansion = true;          // ConWea-NoExpan ablation
  // ConWea-WSD ablation: cluster senses but pick them by global majority
  // instead of class-aware matching (a generic WSD stand-in).
  bool class_aware_senses = true;

  uint64_t seed = 71;
};

class ConWea {
 public:
  // `model` must be pre-trained on a corpus covering this vocabulary.
  ConWea(const text::Corpus& corpus, plm::MiniLm* model,
         const ConWeaConfig& config);

  // Runs the full loop; returns hard predictions for every document.
  std::vector<int> Run(const text::WeakSupervision& supervision);

  // Final seed sets (post-expansion), for inspection.
  const std::vector<std::vector<int32_t>>& final_seeds() const {
    return seeds_;
  }

  // Classifier trained in the last iteration, shared so the serving layer
  // (serve::Server) can route single documents through it after Run()
  // returns. Null until Run() produced at least one training round.
  std::shared_ptr<nn::TextClassifier> trained_classifier() const {
    return classifier_;
  }

 private:
  // Occurrence of a seed word with its sense assignment.
  struct SenseFilter {
    int32_t word = 0;
    // Occurrences (doc, position) accepted for the owning class.
    std::vector<std::pair<size_t, size_t>> accepted;
  };

  // Computes sense-filtered occurrences of `word` for class `c` given the
  // class's context centroid.
  SenseFilter FilterSenses(int32_t word, size_t c,
                           const std::vector<std::vector<float>>& class_centroids);

  // Contextual vector of the token at (doc, pos).
  std::vector<float> ContextVector(size_t doc, size_t pos);

  // Contextual vectors for many occurrences in one batched encoding pass
  // (row i corresponds to occurrences[i]); bitwise identical to calling
  // ContextVector per occurrence, just parallel across windows.
  std::vector<std::vector<float>> ContextVectors(
      const std::vector<std::pair<size_t, size_t>>& occurrences);

  const text::Corpus& corpus_;
  plm::MiniLm* model_;
  ConWeaConfig config_;
  std::vector<std::vector<int32_t>> seeds_;
  std::shared_ptr<nn::TextClassifier> classifier_;
};

}  // namespace stm::core

#endif  // STM_CORE_CONWEA_H_
