#ifndef STM_COMMON_SERIALIZE_H_
#define STM_COMMON_SERIALIZE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace stm {

// Minimal little-endian binary (de)serialization used by the model caches
// (pre-trained MiniLm weights, embedding tables). The format is a private
// implementation detail of this library: a magic tag plus raw scalars.

class BinaryWriter {
 public:
  void WriteU32(uint32_t value);
  void WriteU64(uint64_t value);
  void WriteF32(float value);
  void WriteString(const std::string& value);
  void WriteFloats(const std::vector<float>& values);

  const std::string& buffer() const { return buffer_; }

  // Writes the accumulated buffer to `path`; returns false on I/O error.
  bool Flush(const std::string& path) const;

 private:
  std::string buffer_;
};

class BinaryReader {
 public:
  // Reads the whole file; `ok()` reports success.
  explicit BinaryReader(const std::string& path);

  bool ok() const { return ok_; }

  uint32_t ReadU32();
  uint64_t ReadU64();
  float ReadF32();
  std::string ReadString();
  std::vector<float> ReadFloats();

  // True when every read so far stayed in bounds and the file loaded.
  bool exhausted() const { return pos_ == buffer_.size(); }

 private:
  bool Ensure(size_t bytes);

  std::string buffer_;
  size_t pos_ = 0;
  bool ok_ = false;
};

}  // namespace stm

#endif  // STM_COMMON_SERIALIZE_H_
