// E10 — MetaCat Tables 2-3 (SIGIR'20).
//
// Micro-F1 and Macro-F1 on the five metadata corpora (GitHub-Bio,
// GitHub-AI, GitHub-Sec, Amazon, Twitter) with a few labeled documents per
// class. Rows: text-based baselines (CNN, HAN, WeSTClass), graph-based
// metapath2vec, MetaCat without metadata features (ablation), and MetaCat.
//
// Expected shape (paper): MetaCat tops every dataset; metadata helps most
// on the small weak-text corpora (GitHub-Bio/AI); graph baselines beat
// pure-text CNN/HAN at this label budget.

#include <string>
#include <vector>

#include "bench/harness.h"
#include "core/baselines.h"
#include "core/metacat.h"
#include "core/westclass.h"
#include "eval/metrics.h"
#include "graph/hin.h"
#include "nn/feature_classifier.h"

namespace stm {
namespace {

struct Entry {
  std::string name;
  datasets::SyntheticDataset data;
};

// metapath2vec baseline: HIN node embeddings + nearest labeled centroid.
std::vector<int> Metapath2VecClassify(
    const text::Corpus& corpus,
    const std::vector<std::vector<size_t>>& labeled_docs, uint64_t seed) {
  graph::HinBuildOptions options;
  graph::Hin hin = graph::BuildHin(corpus, options);
  std::vector<std::vector<int>> walks;
  for (const auto& metapath : std::vector<std::vector<std::string>>{
           {"doc", "user", "doc"}, {"doc", "tag", "doc"}}) {
    auto more = graph::MetaPathWalks(hin, metapath, 4, 9, seed);
    walks.insert(walks.end(), more.begin(), more.end());
  }
  graph::NodeEmbeddingConfig config;
  config.seed = seed + 1;
  const la::Matrix emb =
      graph::TrainNodeEmbeddings(walks, hin.num_nodes(), config);
  // Class centroids from the labeled docs.
  const size_t num_classes = corpus.num_labels();
  la::Matrix centroids(num_classes, emb.cols());
  for (size_t c = 0; c < num_classes; ++c) {
    for (size_t d : labeled_docs[c]) {
      la::Axpy(1.0f, emb.Row(d), centroids.Row(c), emb.cols());
    }
    la::NormalizeInPlace(centroids.Row(c), emb.cols());
  }
  std::vector<int> pred(corpus.num_docs(), 0);
  for (size_t d = 0; d < corpus.num_docs(); ++d) {
    float best = -2.0f;
    for (size_t c = 0; c < num_classes; ++c) {
      const float sim =
          la::Cosine(emb.Row(d), centroids.Row(c), emb.cols());
      if (sim > best) {
        best = sim;
        pred[d] = static_cast<int>(c);
      }
    }
  }
  return pred;
}

}  // namespace

int Main() {
  std::vector<Entry> entries;
  {
    datasets::SyntheticSpec spec = datasets::GithubBioSpec(161);
    spec.num_docs = 260;
    spec.pretrain_docs = 0;
    entries.push_back({"GitHub-Bio", datasets::Generate(spec)});
  }
  {
    datasets::SyntheticSpec spec = datasets::GithubAiSpec(162);
    spec.num_docs = 380;
    spec.pretrain_docs = 0;
    entries.push_back({"GitHub-AI", datasets::Generate(spec)});
  }
  {
    datasets::SyntheticSpec spec = datasets::GithubSecSpec(163);
    spec.num_docs = 600;
    spec.pretrain_docs = 0;
    entries.push_back({"GitHub-Sec", datasets::Generate(spec)});
  }
  {
    datasets::SyntheticSpec spec = datasets::AmazonMetaSpec(164);
    spec.num_docs = 500;
    spec.pretrain_docs = 0;
    entries.push_back({"Amazon", datasets::Generate(spec)});
  }
  {
    datasets::SyntheticSpec spec = datasets::TwitterSpec(165);
    spec.num_docs = 500;
    spec.pretrain_docs = 0;
    entries.push_back({"Twitter", datasets::Generate(spec)});
  }

  std::vector<std::string> columns;
  for (const auto& entry : entries) columns.push_back(entry.name);
  const std::vector<std::string> rows = {
      "CNN (labeled docs)",  "HAN (labeled docs)", "WeSTClass (DOCS)",
      "Metapath2vec",        "MetaCat (text only)", "MetaCat"};

  for (bool micro : {true, false}) {
    bench::Table table(std::string("E10 MetaCat — ") +
                           (micro ? "Micro-F1" : "Macro-F1") +
                           ", 10 labeled docs per class",
                       columns);
    std::vector<std::vector<double>> cells(
        rows.size(), std::vector<double>(columns.size(), -1));

    for (size_t e = 0; e < entries.size(); ++e) {
      Entry& entry = entries[e];
      bench::Progress(entry.name);
      const auto gold = entry.data.corpus.GoldLabels();
      const size_t num_classes = entry.data.corpus.num_labels();
      const auto labeled =
          datasets::SampleLabeledDocs(entry.data.corpus, 10, 171);
      auto score = [&](const std::vector<int>& pred) {
        return micro ? eval::MicroF1(pred, gold, num_classes)
                     : eval::MacroF1(pred, gold, num_classes);
      };
      std::vector<size_t> labeled_flat;
      for (const auto& docs : labeled) {
        labeled_flat.insert(labeled_flat.end(), docs.begin(), docs.end());
      }

      cells[0][e] = score(core::SupervisedBound(entry.data.corpus,
                                                labeled_flat, "cnn", 15,
                                                172));
      cells[1][e] = score(core::SupervisedBound(entry.data.corpus,
                                                labeled_flat, "han", 15,
                                                173));
      {
        text::WeakSupervision supervision = entry.data.supervision;
        supervision.labeled_docs = labeled;
        core::WestClassConfig config;
        config.classifier = "bow";
        config.seed = 174;
        core::WestClass method(entry.data.corpus, config);
        cells[2][e] =
            score(method.Run(core::Supervision::kDocs, supervision));
      }
      cells[3][e] =
          score(Metapath2VecClassify(entry.data.corpus, labeled, 175));
      {
        core::MetaCatConfig config;
        config.use_metadata_features = false;
        config.seed = 176;
        core::MetaCat method(entry.data.corpus, config);
        cells[4][e] = score(method.Run(labeled));
      }
      {
        core::MetaCatConfig config;
        config.seed = 176;
        core::MetaCat method(entry.data.corpus, config);
        cells[5][e] = score(method.Run(labeled));
      }
    }
    for (size_t r = 0; r < rows.size(); ++r) {
      table.AddRow(rows[r], cells[r]);
    }
    table.Print();
  }
  return 0;
}

}  // namespace stm

int main() { return stm::Main(); }
