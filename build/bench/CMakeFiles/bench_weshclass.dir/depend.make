# Empty dependencies file for bench_weshclass.
# This may be replaced when dependencies are built.
