#ifndef STM_CORE_WESTCLASS_H_
#define STM_CORE_WESTCLASS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/self_training.h"
#include "embedding/sgns.h"
#include "text/corpus.h"

namespace stm::core {

// WeSTClass (Meng et al., CIKM'18): weakly-supervised neural text
// classification from three kinds of seed supervision.
//   1. Embed the corpus (skip-gram); derive per-class seed word sets from
//      LABELS (class names), KEYWORDS (user keywords) or DOCS (top TF-IDF
//      terms of a few labeled documents).
//   2. Fit a von Mises-Fisher distribution per class over the unit seed
//      embeddings; sample topic directions and emit pseudo-documents as
//      keyword bags mixed with background noise.
//   3. Pre-train a neural classifier (CNN or HAN) on the pseudo documents
//      with smoothed labels, then self-train on the real unlabeled corpus.

enum class Supervision { kLabels, kKeywords, kDocs };

struct WestClassConfig {
  std::string classifier = "cnn";   // "cnn" | "han" | "bow"
  int sgns_epochs = 6;              // corpus embedding training passes
  std::vector<size_t> conv_widths = {1, 2, 3};  // TextCNN filter widths
  size_t expanded_seeds = 10;       // vMF is fit on this many words/class
  size_t pseudo_docs_per_class = 150;
  size_t pseudo_doc_len = 40;
  size_t topical_candidates = 50;   // words eligible per sampled direction
  float background_alpha = 0.2f;    // background interpolation in pseudo docs
  float label_smoothing = 0.2f;     // pseudo-doc target mass off the class
  int pretrain_epochs = 8;
  bool warm_start_embeddings = true;  // init classifier from SGNS vectors
  bool enable_self_training = true; // NoST ablation turns this off
  bool enable_vmf = true;           // No-vMF ablation: seed bags only
  SelfTrainConfig self_train;
  size_t tfidf_terms_per_doc = 10;  // DOCS setting keyword harvest
  uint64_t seed = 51;
};

class WestClass {
 public:
  WestClass(const text::Corpus& corpus, const WestClassConfig& config);

  // Runs the full pipeline and returns hard predictions for every corpus
  // document. `supervision` supplies whichever seed type `mode` needs.
  std::vector<int> Run(Supervision mode,
                       const text::WeakSupervision& supervision);

  // Seed sets actually used in the last Run (after expansion), for
  // inspection and tests.
  const std::vector<std::vector<int32_t>>& expanded_seeds() const {
    return expanded_seeds_;
  }

  // The trained word embeddings (shared with other components in benches).
  const embedding::WordEmbeddings& embeddings() const { return embeddings_; }

 private:
  std::vector<std::vector<int32_t>> SeedWords(
      Supervision mode, const text::WeakSupervision& supervision) const;

  // Pseudo-document generation for one class.
  std::vector<std::vector<int32_t>> GeneratePseudoDocs(
      const std::vector<int32_t>& seeds, Rng& rng) const;

  const text::Corpus& corpus_;
  WestClassConfig config_;
  embedding::WordEmbeddings embeddings_;
  std::vector<double> background_;             // unigram distribution
  std::vector<std::vector<int32_t>> expanded_seeds_;
};

}  // namespace stm::core

#endif  // STM_CORE_WESTCLASS_H_
