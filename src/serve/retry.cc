#include "serve/retry.h"

#include <chrono>
#include <thread>
#include <utility>

#include "common/rng.h"

namespace stm::serve {

StatusOr<Prediction> ServeWithRetry(Server& server, const std::string& model,
                                    std::vector<int32_t> ids,
                                    const SubmitOptions& submit,
                                    const RetryOptions& retry,
                                    uint64_t jitter_seed) {
  Rng rng(jitter_seed);
  const int attempts = retry.max_attempts < 1 ? 1 : retry.max_attempts;
  double backoff_ms = static_cast<double>(retry.initial_backoff_ms);
  for (int attempt = 1;; ++attempt) {
    // The ids survive each attempt: Serve moves them into the request, so
    // retry from a copy and keep the original for the next round.
    StatusOr<Prediction> result = server.Serve(model, ids, submit);
    if (result.ok() ||
        result.status().code() != StatusCode::kUnavailable ||
        attempt >= attempts) {
      return result;
    }
    // Jittered exponential backoff: [0.5, 1.0) x 2^(attempt-1) x initial.
    const double sleep_ms = backoff_ms * (0.5 + 0.5 * rng.Uniform());
    if (sleep_ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(sleep_ms));
    }
    backoff_ms *= 2.0;
  }
}

}  // namespace stm::serve
