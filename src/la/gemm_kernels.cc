#include "la/gemm_kernels.h"

#include <array>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string_view>
#include <utility>
#include <vector>

#include "common/env_parse.h"
#include "common/thread_pool.h"
#include "la/workspace.h"

namespace stm::la {

namespace detail {

// Per-ISA builds of the packed kernels (gemm_kernels_impl.h expanded once
// per translation unit; each exposes its table through KernelFns()).
namespace generic {
const GemmKernelFns& KernelFns();
}
#ifdef STM_HAVE_AVX2_KERNELS
namespace avx2 {
const GemmKernelFns& KernelFns();
}
#endif
#ifdef STM_HAVE_AVX512_KERNELS
namespace avx512 {
const GemmKernelFns& KernelFns();
}
#endif
#ifdef STM_HAVE_VNNI_KERNELS
namespace vnni {
const GemmKernelFns& KernelFns();
}
#endif

namespace {

struct TierEntry {
  const GemmKernelFns* fns = nullptr;  // null when not compiled in
  bool supported = false;              // cpuid allows running it here
};

// Indexes match the STM_ISA tokens (generic, avx2, avx512, vnni); auto is
// handled by the dispatch, not the table.
std::array<TierEntry, 4> TierTable() {
  std::array<TierEntry, 4> t{};
  t[0] = {&generic::KernelFns(), true};
#ifdef STM_HAVE_AVX2_KERNELS
  t[1] = {&avx2::KernelFns(), __builtin_cpu_supports("avx2") &&
                                  __builtin_cpu_supports("fma")};
#endif
#ifdef STM_HAVE_AVX512_KERNELS
  t[2] = {&avx512::KernelFns(), __builtin_cpu_supports("avx512f") &&
                                    __builtin_cpu_supports("avx512bw") &&
                                    __builtin_cpu_supports("avx512dq") &&
                                    __builtin_cpu_supports("avx512vl")};
#endif
#ifdef STM_HAVE_VNNI_KERNELS
  t[3] = {&vnni::KernelFns(), __builtin_cpu_supports("avx512f") &&
                                  __builtin_cpu_supports("avx512bw") &&
                                  __builtin_cpu_supports("avx512dq") &&
                                  __builtin_cpu_supports("avx512vl") &&
                                  __builtin_cpu_supports("avx512vnni")};
#endif
  return t;
}

}  // namespace

const GemmKernelFns& ActiveGemmKernels() {
  // Selected once per process from cpuid and STM_ISA: constant for the
  // lifetime of the program, so every GEMM (at any thread count) runs the
  // same micro-kernel.
  static const GemmKernelFns* const fns = [] {
    const std::array<TierEntry, 4> tiers = TierTable();
    static const std::vector<std::string_view> kTokens = {
        "generic", "avx2", "avx512", "vnni", "auto"};
    const size_t kAuto = 4;
    const size_t choice = ParseEnumEnv("STM_ISA", kTokens, kAuto);
    if (choice != kAuto) {
      const TierEntry& e = tiers[choice];
      if (e.fns != nullptr && e.supported) return e.fns;
      std::fprintf(
          stderr,
          "STM_ISA: tier \"%.*s\" is %s; falling back to auto detection\n",
          static_cast<int>(kTokens[choice].size()), kTokens[choice].data(),
          e.fns == nullptr ? "not compiled into this binary"
                           : "not supported by this machine");
    }
    // auto: widest supported tier (the table is ordered narrow -> wide).
    const GemmKernelFns* best = tiers[0].fns;
    for (const TierEntry& e : tiers) {
      if (e.fns != nullptr && e.supported) best = e.fns;
    }
    return best;
  }();
  return *fns;
}

std::vector<GemmKernelTier> CompiledGemmKernelTiers() {
  std::vector<GemmKernelTier> out;
  for (const TierEntry& e : TierTable()) {
    if (e.fns != nullptr) out.push_back({e.fns, e.supported});
  }
  return out;
}

const GemmKernelFns& FreezeKernelsForWidth(size_t n) {
  // Both reads are once per process, like the main dispatch, so every
  // freeze of the same width picks the same tier.
  static const bool hint_enabled = [] {
    static const std::vector<std::string_view> kTokens = {
        "generic", "avx2", "avx512", "vnni", "auto"};
    return ParseEnumEnv("STM_ISA", kTokens, 4) == 4;  // auto only
  }();
  static const size_t narrow_below = ParseSizeEnv(
      "STM_GEMM_NARROW_N", 64, 0, std::numeric_limits<size_t>::max());
  const GemmKernelFns& active = ActiveGemmKernels();
  if (!hint_enabled || n == 0 || n >= narrow_below) return active;
  const GemmKernelFns* best = &active;
  for (const GemmKernelTier& tier : CompiledGemmKernelTiers()) {
    if (!tier.supported) continue;
    // Same FP-contraction regime only: the hint must never change bits,
    // just the zero padding of the packed panels.
    if (std::string_view(tier.fns->fp_regime) != active.fp_regime) continue;
    if (RoundUp(n, tier.fns->nr) < RoundUp(n, best->nr)) best = tier.fns;
  }
  return *best;
}

}  // namespace detail

const char* GemmKernelIsa() { return detail::ActiveGemmKernels().name; }

const char* GemmKernelFpRegime() {
  return detail::ActiveGemmKernels().fp_regime;
}

// ---- serial scalar reference kernels (the seed inner loops) ----
//
// The bodies live in gemm_kernels_impl.h, built per ISA namespace, so the
// reference loops and the packed micro-kernel share one FP-contraction
// regime: whichever side of the UsePackedGemm threshold a shape lands on,
// the per-cell accumulation chain rounds identically.

void ReferenceGemmAcc(const float* a, const float* b, float* c, size_t m,
                      size_t k, size_t n) {
  detail::ActiveGemmKernels().reference_gemm_acc(a, b, c, m, k, n);
}

void ReferenceGemmBtAcc(const float* a, const float* b, float* c, size_t m,
                        size_t k, size_t n) {
  detail::ActiveGemmKernels().reference_gemm_bt_acc(a, b, c, m, k, n);
}

void ReferenceGemmAtAcc(const float* a, const float* b, float* c, size_t m,
                        size_t k, size_t n) {
  detail::ActiveGemmKernels().reference_gemm_at_acc(a, b, c, m, k, n);
}

// ---- packed driver ----

bool UsePackedGemm(size_t m, size_t k, size_t n) {
  return m * k * n >= kGemmPackedMinOps;
}

void PackedGemmAcc(const float* a, size_t a_rs, size_t a_cs, const float* b,
                   size_t b_rs, size_t b_cs, float* c, size_t m, size_t k,
                   size_t n) {
  if (m == 0 || n == 0 || k == 0) return;
  const detail::GemmKernelFns& fns = detail::ActiveGemmKernels();
  const size_t npanels = detail::CeilDiv(n, fns.nr);
  std::vector<float> bpack = AcquireVec(npanels * k * fns.nr);
  // Panels are disjoint writes, so packing parallelizes cleanly; the
  // panel contents depend only on B, never on the thread count.
  ParallelFor(0, npanels, GrainForOps(k * fns.nr),
              [&](size_t jp0, size_t jp1) {
                fns.pack_b(b, b_rs, b_cs, k, n, jp0, jp1, bpack.data());
              });
  ParallelFor(0, m, detail::PackedRowGrain(k, n, fns.mr),
              [&](size_t r0, size_t r1) {
                fns.run_rows(a, a_rs, a_cs, bpack.data(), c, k, n, r0, r1);
              });
  ReleaseVec(std::move(bpack));
}

PackedBF32 PackFp32B(const float* b, size_t rs, size_t cs, size_t k,
                     size_t n) {
  const detail::GemmKernelFns& fns = detail::FreezeKernelsForWidth(n);
  PackedBF32 out;
  out.k = k;
  out.n = n;
  out.panel_nr = fns.nr;
  out.tier = &fns;
  const size_t npanels = detail::CeilDiv(n, fns.nr);
  out.panels.resize(npanels * k * fns.nr);
  // Serial: runs once per weight matrix (at freeze time), never in a hot
  // loop.
  fns.pack_b(b, rs, cs, k, n, 0, npanels, out.panels.data());
  return out;
}

void PrepackedGemmAcc(const float* a, size_t m, const PackedBF32& b,
                      float* c) {
  if (m == 0 || b.k == 0 || b.n == 0) return;
  const detail::GemmKernelFns& fns =
      b.tier != nullptr ? *b.tier : detail::ActiveGemmKernels();
  // The dispatch is one-time per process and PackFp32B records the tier
  // it packed for, so a panel-width mismatch here is a caller bug (e.g. a
  // PackedBF32 deserialized from another build — the type is deliberately
  // not serializable for this reason).
  if (b.panel_nr != fns.nr) {
    std::fprintf(stderr,
                 "PrepackedGemmAcc: operand packed for nr=%zu but its "
                 "tier uses nr=%zu\n",
                 b.panel_nr, fns.nr);
    std::abort();
  }
  ParallelFor(0, m, detail::PackedRowGrain(b.k, b.n, fns.mr),
              [&](size_t r0, size_t r1) {
                fns.run_rows(a, b.k, 1, b.panels.data(), c, b.k, b.n, r0,
                             r1);
              });
}

}  // namespace stm::la
