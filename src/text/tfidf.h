#ifndef STM_TEXT_TFIDF_H_
#define STM_TEXT_TFIDF_H_

#include <cstdint>
#include <vector>

#include "text/corpus.h"

namespace stm::text {

// Sparse document vector: sorted (token id, weight) pairs.
struct SparseVector {
  std::vector<int32_t> ids;      // ascending
  std::vector<float> weights;    // parallel to ids

  size_t size() const { return ids.size(); }
};

// Cosine similarity between two sparse vectors.
float SparseCosine(const SparseVector& a, const SparseVector& b);

// TF-IDF vectorizer: fit IDF on a corpus, transform documents into
// L2-normalized sparse vectors. Used by the IR baseline, the Dataless
// baseline's keyword queries, and the NoST/ConWea classifiers' features.
class TfIdf {
 public:
  // Smoothed IDF: log((1 + N) / (1 + df)) + 1. Accepts any CorpusReader
  // (the in-RAM Corpus or an on-disk ShardedCorpus): the IDF table comes
  // from integer document frequencies, so the sharded and in-RAM fits are
  // bit-identical.
  explicit TfIdf(const CorpusReader& corpus, bool drop_stopwords = true);

  // Transforms a token sequence; tf is log-scaled (1 + log tf).
  SparseVector Transform(const std::vector<int32_t>& tokens) const;
  SparseVector Transform(const int32_t* tokens, size_t count) const;

  // Transforms every document in a corpus (parallel across documents on
  // the global thread pool; output is thread-count-invariant).
  std::vector<SparseVector> TransformAll(const Corpus& corpus) const;

  // Streaming variant: transforms the documents of one shard (parallel
  // across its documents), returned in shard-local order. Concatenating
  // shards in order yields exactly TransformAll.
  StatusOr<std::vector<SparseVector>> TransformShard(
      const CorpusReader& corpus, size_t shard) const;

  // Builds a unit query vector from keyword ids (each with weight idf).
  SparseVector KeywordQuery(const std::vector<int32_t>& keyword_ids) const;

  // Top-`k` highest TF-IDF token ids of a document (used to harvest
  // keywords from labeled docs, per WeSTClass's DOCS setting). Equal
  // weights are ordered by ascending token id.
  std::vector<int32_t> TopTerms(const std::vector<int32_t>& tokens,
                                size_t k) const;

  float IdfOf(int32_t id) const;

 private:
  std::vector<float> idf_;
  std::vector<bool> skip_;  // stopwords / specials to ignore
};

// Dense bag-of-words count vector over the vocabulary (float).
std::vector<float> BagOfWords(const std::vector<int32_t>& tokens,
                              size_t vocab_size);

}  // namespace stm::text

#endif  // STM_TEXT_TFIDF_H_
