// E5 + E6 + E12 — X-Class (NAACL'21).
//
// Figures section: (a) the tutorial's "average-pooled BERT representations
// preserve domains" figure — PCA of mean MiniLm document vectors over a
// 5-domain corpus with per-class centroid separation statistics; (b) the
// clustering confusion matrix (k-means, k = #classes, aligned).
//
// Table section: accuracy/macro-F1 of Supervised, WeSTClass, ConWea,
// LOTClass, X-Class and the X-Class-Rep / X-Class-Align ablations on the
// seven datasets of the paper (AGNews, 20News, NYT-Small, NYT-Topic,
// NYT-Location, Yelp, DBpedia).
//
// Expected shape (paper): X-Class best or near-best everywhere;
// Rep < Align < full X-Class; supervised on top.

#include <cmath>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "cluster/cluster.h"
#include "core/baselines.h"
#include "core/conwea.h"
#include "core/lotclass.h"
#include "core/westclass.h"
#include "core/xclass.h"
#include "eval/metrics.h"
#include "la/matrix.h"

namespace stm {
namespace {

void FiguresSection() {
  datasets::SyntheticSpec spec = datasets::NytTopicSpec(81);
  spec.num_docs = 300;
  spec.pretrain_docs = 900;
  // Keep 5 balanced domains for the figure, like the tutorial's plot.
  spec.classes.resize(5);
  for (auto& cls : spec.classes) cls.prior = 1.0;
  datasets::SyntheticDataset data = datasets::Generate(spec);
  auto model = bench::PretrainedLm(data);

  core::XClassConfig config;
  core::XClass xclass(data.corpus, model.get(), config);
  la::Matrix reps = xclass.AverageDocReps();
  la::Matrix projected = la::Pca(reps, 2);

  std::printf("\n=== E12/E5 Figure 1 — PCA of average-pooled LM document "
              "representations (5 domains) ===\n");
  // Per-class centroids in the 2-D projection plus scatter statistics: a
  // textual rendition of the tutorial's colored scatter plot.
  const auto gold = data.corpus.GoldLabels();
  const size_t num_classes = data.corpus.num_labels();
  for (size_t c = 0; c < num_classes; ++c) {
    double cx = 0.0;
    double cy = 0.0;
    double spread = 0.0;
    size_t n = 0;
    for (size_t d = 0; d < projected.rows(); ++d) {
      if (static_cast<size_t>(gold[d]) != c) continue;
      cx += projected.At(d, 0);
      cy += projected.At(d, 1);
      ++n;
    }
    if (n == 0) continue;
    cx /= static_cast<double>(n);
    cy /= static_cast<double>(n);
    for (size_t d = 0; d < projected.rows(); ++d) {
      if (static_cast<size_t>(gold[d]) != c) continue;
      const double dx = projected.At(d, 0) - cx;
      const double dy = projected.At(d, 1) - cy;
      spread += std::sqrt(dx * dx + dy * dy);
    }
    std::printf("  domain %-12s centroid (%7.3f, %7.3f)  mean spread %.3f"
                "  (n=%zu)\n",
                data.corpus.label_names()[c].c_str(), cx, cy,
                spread / static_cast<double>(n), n);
  }

  // Figure 2: k-means with k = #classes on the averaged representations,
  // aligned to gold classes, shown as a confusion matrix.
  cluster::KMeansOptions kmeans;
  kmeans.k = num_classes;
  kmeans.spherical = true;
  const auto clusters = cluster::KMeans(reps, kmeans);
  const auto mapping =
      cluster::AlignClusters(clusters.assignment, gold, num_classes);
  std::vector<int> pred(gold.size());
  for (size_t d = 0; d < gold.size(); ++d) {
    pred[d] = mapping[static_cast<size_t>(clusters.assignment[d])];
  }
  std::printf("\n=== E5 Figure 2 — confusion matrix of k-means on average "
              "representations (k=%zu) ===\n",
              num_classes);
  std::printf("%s", eval::FormatConfusion(
                        eval::ConfusionMatrix(pred, gold, num_classes),
                        data.corpus.label_names())
                        .c_str());
  std::printf("clustering accuracy after alignment: %.3f\n",
              eval::Accuracy(pred, gold));
  std::fflush(stdout);
}

struct Entry {
  std::string name;
  datasets::SyntheticDataset data;
};

}  // namespace

int Main() {
  FiguresSection();

  std::vector<Entry> entries;
  {
    datasets::SyntheticSpec spec = datasets::AgNewsSpec(82);
    spec.num_docs = 400;
    spec.pretrain_docs = 900;
    entries.push_back({"AGNews", datasets::Generate(spec)});
  }
  {
    datasets::SyntheticSpec spec = datasets::TwentyNewsSpec(83);
    spec.num_docs = 500;
    spec.pretrain_docs = 900;
    datasets::SyntheticDataset data = datasets::Generate(spec);
    // Fine view (20 classes) is the paper's "20News".
    datasets::FlatView fine = datasets::FlattenToDepth(data, 1);
    data.corpus = std::move(fine.corpus);
    data.supervision = std::move(fine.supervision);
    data.leaf_name_tokens.clear();
    for (const auto& seeds : data.supervision.class_keywords) {
      data.leaf_name_tokens.push_back({seeds[0]});
    }
    entries.push_back({"20News", std::move(data)});
  }
  {
    datasets::SyntheticSpec spec = datasets::NytSpec(84);
    spec.num_docs = 500;
    spec.pretrain_docs = 900;
    datasets::SyntheticDataset data = datasets::Generate(spec);
    datasets::FlatView coarse = datasets::FlattenToDepth(data, 0);
    data.corpus = std::move(coarse.corpus);
    data.supervision = std::move(coarse.supervision);
    data.leaf_name_tokens.clear();
    for (const auto& seeds : data.supervision.class_keywords) {
      data.leaf_name_tokens.push_back({seeds[0]});
    }
    entries.push_back({"NYT-Small", std::move(data)});
  }
  {
    datasets::SyntheticSpec spec = datasets::NytTopicSpec(85);
    spec.num_docs = 450;
    spec.pretrain_docs = 900;
    entries.push_back({"NYT-Topic", datasets::Generate(spec)});
  }
  {
    datasets::SyntheticSpec spec = datasets::NytLocationSpec(86);
    spec.num_docs = 450;
    spec.pretrain_docs = 900;
    entries.push_back({"NYT-Loc", datasets::Generate(spec)});
  }
  {
    datasets::SyntheticSpec spec = datasets::YelpSpec(87);
    spec.num_docs = 400;
    spec.pretrain_docs = 900;
    entries.push_back({"Yelp", datasets::Generate(spec)});
  }
  {
    datasets::SyntheticSpec spec = datasets::DbpediaSpec(88);
    spec.num_docs = 500;
    spec.pretrain_docs = 900;
    entries.push_back({"DBpedia", datasets::Generate(spec)});
  }

  std::vector<std::string> columns;
  for (const auto& entry : entries) columns.push_back(entry.name);
  const std::vector<std::string> rows = {
      "Supervised (bound)", "WeSTClass", "ConWea",        "LOTClass",
      "X-Class",            "X-Class-Rep", "X-Class-Align"};
  bench::Table table("E6 X-Class — accuracy across seven datasets",
                     columns);
  std::vector<std::vector<double>> cells(
      rows.size(), std::vector<double>(columns.size(), -1));

  for (size_t e = 0; e < entries.size(); ++e) {
    Entry& entry = entries[e];
    bench::Progress(entry.name);
    auto model = bench::PretrainedLm(entry.data);
    const auto gold = entry.data.corpus.GoldLabels();
    auto score = [&](const std::vector<int>& pred) {
      return eval::Accuracy(pred, gold);
    };

    {
      std::vector<size_t> train;
      for (size_t d = 0; d < entry.data.corpus.num_docs(); ++d) {
        if (d % 5 != 0) train.push_back(d);
      }
      cells[0][e] = score(core::SupervisedBound(entry.data.corpus, train,
                                                "bow", 12, 91));
    }
    {
      core::WestClassConfig config;
      config.classifier = "bow";
      config.seed = 92;
      core::WestClass method(entry.data.corpus, config);
      cells[1][e] = score(method.Run(core::Supervision::kLabels,
                                     entry.data.supervision));
    }
    {
      core::ConWeaConfig config;
      config.max_occurrences = 20;
      config.seed = 93;
      core::ConWea method(entry.data.corpus, model.get(), config);
      cells[2][e] = score(method.Run(entry.data.supervision));
    }
    {
      core::LotClassConfig config;
      config.seed = 94;
      core::LotClass method(entry.data.corpus, model.get(), config);
      cells[3][e] = score(method.Run(entry.data.leaf_name_tokens));
    }
    {
      core::XClassConfig config;
      config.seed = 95;
      core::XClass method(entry.data.corpus, model.get(), config);
      cells[4][e] = score(method.Run(entry.data.leaf_name_tokens));
      cells[5][e] = score(method.RepOnly());
      cells[6][e] = score(method.AlignOnly());
    }
  }
  for (size_t r = 0; r < rows.size(); ++r) table.AddRow(rows[r], cells[r]);
  table.Print();
  return 0;
}

}  // namespace stm

int main() { return stm::Main(); }
