#ifndef STM_NN_TEXT_CLASSIFIER_H_
#define STM_NN_TEXT_CLASSIFIER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "la/matrix.h"
#include "nn/layers.h"
#include "nn/optimizer.h"

namespace stm::nn {

// Configuration shared by the neural document classifiers.
struct ClassifierConfig {
  size_t vocab_size = 0;
  size_t num_classes = 0;
  size_t embed_dim = 32;
  size_t max_len = 64;                       // pad/truncate length
  std::vector<size_t> conv_widths = {2, 3, 4};  // TextCNN only
  size_t filters = 24;                       // TextCNN filters per width
  size_t attn_hidden = 32;                   // HAN attention space
  size_t hidden = 48;                        // classifier MLP hidden
  float lr = 2e-3f;
  float bow_lr = 0.1f;  // BowLogRegClassifier learning rate
  float dropout = 0.1f;
  size_t batch_size = 16;
  uint64_t seed = 7;
};

// Common interface of the trainable document classifiers used by the
// weakly-supervised methods (WeSTClass CNN/HAN, ConWea, self-training).
// Training consumes *soft* targets (row-stochastic, n x C flattened) so the
// same code path serves pseudo-labels and self-training distributions.
class TextClassifier {
 public:
  virtual ~TextClassifier() = default;

  // Optionally seeds the word embedding table from pre-trained static
  // embeddings (row = token id). Default: no-op for models without one.
  virtual void InitWordEmbeddings(
      const std::vector<std::vector<float>>& embeddings);

  // One pass over `docs` in shuffled minibatches; returns the mean loss.
  virtual double TrainEpoch(const std::vector<std::vector<int32_t>>& docs,
                            const std::vector<float>& soft_targets) = 0;

  // Class probability matrix [n, C].
  virtual la::Matrix PredictProbs(
      const std::vector<std::vector<int32_t>>& docs) = 0;

  // Argmax labels.
  std::vector<int> Predict(const std::vector<std::vector<int32_t>>& docs);

  // Trains for `epochs` epochs on hard labels (converted to one-hot).
  void Fit(const std::vector<std::vector<int32_t>>& docs,
           const std::vector<int>& labels, int epochs);
};

// Word-level CNN (Kim 2014 style): embedding -> parallel 1-D convolutions
// -> max-over-time pooling -> MLP. WeSTClass's stronger variant.
class TextCnnClassifier : public TextClassifier {
 public:
  explicit TextCnnClassifier(const ClassifierConfig& config);

  void InitWordEmbeddings(
      const std::vector<std::vector<float>>& embeddings) override;
  double TrainEpoch(const std::vector<std::vector<int32_t>>& docs,
                    const std::vector<float>& soft_targets) override;
  la::Matrix PredictProbs(
      const std::vector<std::vector<int32_t>>& docs) override;

 private:
  Tensor Logits(const std::vector<std::vector<int32_t>>& docs,
                size_t begin, size_t count, bool training);

  ClassifierConfig config_;
  Rng rng_;
  ParameterStore store_;
  std::unique_ptr<Embedding> embedding_;
  std::vector<std::unique_ptr<Linear>> convs_;
  std::unique_ptr<Linear> dense_;
  std::unique_ptr<Linear> out_;
  std::unique_ptr<AdamOptimizer> optimizer_;
};

// Attention network (HAN without the sentence level, which matches the
// tutorial's use on short documents): embedding -> tanh projection ->
// context-vector attention -> weighted sum -> MLP.
class HanClassifier : public TextClassifier {
 public:
  explicit HanClassifier(const ClassifierConfig& config);

  void InitWordEmbeddings(
      const std::vector<std::vector<float>>& embeddings) override;
  double TrainEpoch(const std::vector<std::vector<int32_t>>& docs,
                    const std::vector<float>& soft_targets) override;
  la::Matrix PredictProbs(
      const std::vector<std::vector<int32_t>>& docs) override;

 private:
  Tensor Logits(const std::vector<std::vector<int32_t>>& docs,
                size_t begin, size_t count, bool training);

  ClassifierConfig config_;
  Rng rng_;
  ParameterStore store_;
  std::unique_ptr<Embedding> embedding_;
  std::unique_ptr<Linear> proj_;
  std::unique_ptr<Linear> attn_;
  std::unique_ptr<Linear> dense_;
  std::unique_ptr<Linear> out_;
  std::unique_ptr<AdamOptimizer> optimizer_;
};

// Logistic regression over L1-normalized bag-of-words features. Fast and
// strong on the synthetic corpora; the default classifier for methods that
// only need "a text classifier" as a component (ConWea, X-Class,
// PromptClass head, TaxoClass).
class BowLogRegClassifier : public TextClassifier {
 public:
  explicit BowLogRegClassifier(const ClassifierConfig& config);

  double TrainEpoch(const std::vector<std::vector<int32_t>>& docs,
                    const std::vector<float>& soft_targets) override;
  la::Matrix PredictProbs(
      const std::vector<std::vector<int32_t>>& docs) override;

 private:
  Tensor Features(const std::vector<std::vector<int32_t>>& docs,
                  size_t begin, size_t count) const;

  ClassifierConfig config_;
  Rng rng_;
  ParameterStore store_;
  std::unique_ptr<Linear> out_;
  std::unique_ptr<AdamOptimizer> optimizer_;
};

// Factory by name: "cnn", "han", "bow".
std::unique_ptr<TextClassifier> MakeClassifier(const std::string& kind,
                                               const ClassifierConfig& config);

}  // namespace stm::nn

#endif  // STM_NN_TEXT_CLASSIFIER_H_
