# Empty dependencies file for bench_taxoclass.
# This may be replaced when dependencies are built.
