#include <gtest/gtest.h>

#include <map>
#include <set>

#include "datasets/specs.h"
#include "datasets/synthetic.h"
#include "taxonomy/taxonomy.h"

namespace stm::datasets {
namespace {

TEST(LabelTreeTest, StructureQueries) {
  taxonomy::LabelTree tree;
  const int root = tree.AddNode("root", -1);
  const int a = tree.AddNode("a", root);
  const int b = tree.AddNode("b", root);
  const int a1 = tree.AddNode("a1", a);
  EXPECT_EQ(tree.Roots(), (std::vector<int>{root}));
  EXPECT_EQ(tree.Leaves(), (std::vector<int>{b, a1}));
  EXPECT_TRUE(tree.IsLeaf(b));
  EXPECT_FALSE(tree.IsLeaf(a));
  EXPECT_EQ(tree.PathTo(a1), (std::vector<int>{root, a, a1}));
  EXPECT_EQ(tree.DepthOf(a1), 2);
  EXPECT_EQ(tree.MaxDepth(), 2);
  EXPECT_EQ(tree.NodesAtDepth(1), (std::vector<int>{a, b}));
  EXPECT_EQ(tree.ClosureOf({a1, b}), (std::vector<int>{root, a, b, a1}));
}

TEST(GenerateTest, DeterministicInSeed) {
  SyntheticDataset a = Generate(AgNewsSpec(5));
  SyntheticDataset b = Generate(AgNewsSpec(5));
  ASSERT_EQ(a.corpus.num_docs(), b.corpus.num_docs());
  EXPECT_EQ(a.corpus.docs()[10].tokens, b.corpus.docs()[10].tokens);
  EXPECT_EQ(a.corpus.docs()[10].labels, b.corpus.docs()[10].labels);
  SyntheticDataset c = Generate(AgNewsSpec(6));
  EXPECT_NE(a.corpus.docs()[10].tokens, c.corpus.docs()[10].tokens);
}

TEST(GenerateTest, AgNewsBasicShape) {
  SyntheticDataset data = Generate(AgNewsSpec(1));
  EXPECT_EQ(data.corpus.num_docs(), 700u);
  EXPECT_EQ(data.leaf_classes.size(), 4u);
  EXPECT_EQ(data.supervision.class_keywords.size(), 4u);
  // Every doc has tokens within vocab and exactly one label.
  for (const auto& doc : data.corpus.docs()) {
    EXPECT_EQ(doc.labels.size(), 1u);
    EXPECT_GE(doc.tokens.size(), 14u);  // doc_len_min
    for (int32_t id : doc.tokens) {
      ASSERT_GE(id, 0);
      ASSERT_LT(static_cast<size_t>(id), data.corpus.vocab().size());
    }
  }
}

TEST(GenerateTest, LabelNamesAppearInOwnClassDocs) {
  SyntheticDataset data = Generate(AgNewsSpec(2));
  // The class-name token should occur far more often in docs of its own
  // class than in other classes (LOTClass precondition).
  for (size_t c = 0; c < data.leaf_classes.size(); ++c) {
    const int32_t name_id = data.leaf_name_tokens[c][0];
    size_t own = 0;
    size_t other = 0;
    for (const auto& doc : data.corpus.docs()) {
      size_t count = 0;
      for (int32_t id : doc.tokens) count += (id == name_id);
      if (doc.labels[0] == data.leaf_classes[c]) {
        own += count;
      } else {
        other += count;
      }
    }
    EXPECT_GT(own, other * 2) << "class " << c;
  }
}

TEST(GenerateTest, AmbiguousTokensSpanTwoClasses) {
  SyntheticSpec spec = AgNewsSpec(3);
  spec.num_ambiguous = 4;
  SyntheticDataset data = Generate(spec);
  const int32_t amb = data.corpus.vocab().IdOf("amb0");
  ASSERT_NE(amb, text::kUnkId);
  std::set<int> classes_using;
  for (const auto& doc : data.corpus.docs()) {
    for (int32_t id : doc.tokens) {
      if (id == amb) classes_using.insert(doc.labels[0]);
    }
  }
  EXPECT_GE(classes_using.size(), 2u);
}

TEST(GenerateTest, ImbalancedPriorsRespected) {
  SyntheticDataset data = Generate(NytTopicSpec(4));
  std::map<int, size_t> counts;
  for (const auto& doc : data.corpus.docs()) counts[doc.labels[0]]++;
  // politics (prior 9.0) must dominate estate (prior 0.33).
  EXPECT_GT(counts[data.leaf_classes[0]], counts[data.leaf_classes[8]] * 4);
}

TEST(GenerateTest, HierarchicalPathsConsistent) {
  SyntheticDataset data = Generate(NytSpec(5));
  EXPECT_EQ(data.tree.MaxDepth(), 1);
  EXPECT_EQ(data.leaf_classes.size(), 25u);
  for (const auto& doc : data.corpus.docs()) {
    ASSERT_EQ(doc.label_path.size(), 2u);
    EXPECT_EQ(data.tree.ParentOf(doc.label_path[1]), doc.label_path[0]);
    EXPECT_EQ(doc.label_path[1], doc.labels[0]);
  }
}

TEST(GenerateTest, MultiLabelDatasetsHaveLabelSets) {
  SyntheticDataset data = Generate(AmazonTaxoSpec(6));
  size_t multi = 0;
  for (const auto& doc : data.corpus.docs()) {
    EXPECT_GE(doc.labels.size(), 1u);
    EXPECT_LE(doc.labels.size(), 3u);
    multi += doc.labels.size() > 1;
    std::set<int> unique(doc.labels.begin(), doc.labels.end());
    EXPECT_EQ(unique.size(), doc.labels.size());
    for (int label : doc.labels) EXPECT_TRUE(data.tree.IsLeaf(label));
  }
  EXPECT_GT(multi, data.corpus.num_docs() / 4);
}

TEST(GenerateTest, MetadataCorrelatesWithClass) {
  SyntheticDataset data = Generate(GithubBioSpec(7));
  // Tags: count how often a doc's tag maps back to its own class slot.
  const size_t num_leaves = data.leaf_classes.size();
  size_t aligned = 0;
  size_t total = 0;
  for (const auto& doc : data.corpus.docs()) {
    auto it = doc.metadata.find("tag");
    ASSERT_NE(it, doc.metadata.end());
    const size_t leaf_pos = static_cast<size_t>(doc.labels[0]);
    for (const std::string& tag : it->second) {
      const size_t tag_id = std::stoul(tag.substr(1));
      aligned += (tag_id % num_leaves) == leaf_pos % num_leaves;
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(aligned) / total, 0.6);
}

TEST(GenerateTest, ReferencesMostlySameClass) {
  SyntheticDataset data = Generate(MagCsSpec(8));
  size_t same = 0;
  size_t total = 0;
  for (size_t d = 0; d < data.corpus.num_docs(); ++d) {
    const auto& doc = data.corpus.docs()[d];
    auto it = doc.metadata.find("ref");
    if (it == doc.metadata.end()) continue;
    for (const std::string& ref : it->second) {
      const size_t target = std::stoul(ref.substr(1));
      same += data.corpus.docs()[target].labels[0] == doc.labels[0];
      ++total;
    }
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(same) / total, 0.7);
}

TEST(GenerateTest, AuxTopicsDisjointFromEvalClasses) {
  SyntheticDataset data = Generate(AmazonTaxoSpec(9));
  EXPECT_EQ(data.aux_topic_names.size(), 8u);
  EXPECT_EQ(data.aux_docs.size(), 8u * 50u);
  std::set<std::string> eval_names;
  for (const auto& name : data.corpus.label_names()) eval_names.insert(name);
  for (const auto& name : data.aux_topic_names) {
    EXPECT_FALSE(eval_names.count(name));
  }
}

TEST(GenerateTest, PretrainCorpusPresent) {
  SyntheticDataset data = Generate(AgNewsSpec(10));
  EXPECT_EQ(data.pretrain_docs.size(), 1200u);
}

TEST(SampleLabeledDocsTest, CorrectCountsAndLabels) {
  SyntheticDataset data = Generate(AgNewsSpec(11));
  auto labeled = SampleLabeledDocs(data.corpus, 5, 3);
  ASSERT_EQ(labeled.size(), data.corpus.num_labels());
  for (size_t c = 0; c < labeled.size(); ++c) {
    if (labeled[c].empty()) continue;
    EXPECT_EQ(labeled[c].size(), 5u);
    for (size_t d : labeled[c]) {
      EXPECT_EQ(data.corpus.docs()[d].labels[0], static_cast<int>(c));
    }
  }
}

TEST(FlattenTest, CoarseViewOfNyt) {
  SyntheticDataset data = Generate(NytSpec(12));
  FlatView coarse = FlattenToDepth(data, 0);
  EXPECT_EQ(coarse.corpus.num_labels(), 5u);
  EXPECT_EQ(coarse.corpus.num_docs(), data.corpus.num_docs());
  FlatView fine = FlattenToDepth(data, 1);
  EXPECT_EQ(fine.corpus.num_labels(), 25u);
  // Coarse label of each doc must be the parent of its fine label node.
  for (size_t d = 0; d < data.corpus.num_docs(); ++d) {
    const int coarse_node =
        coarse.node_of_label[static_cast<size_t>(
            coarse.corpus.docs()[d].labels[0])];
    const int fine_node = fine.node_of_label[static_cast<size_t>(
        fine.corpus.docs()[d].labels[0])];
    EXPECT_EQ(data.tree.ParentOf(fine_node), coarse_node);
  }
}

}  // namespace
}  // namespace stm::datasets
