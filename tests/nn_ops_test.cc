#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/rng.h"
#include "nn/loss.h"
#include "nn/ops.h"
#include "nn/optimizer.h"
#include "nn/tensor.h"

namespace stm::nn {
namespace {

// Checks autograd gradients of `loss_fn` (rebuilt per evaluation) against
// central differences w.r.t. every element of `param`.
void CheckGradients(Tensor param, const std::function<Tensor()>& loss_fn,
                    float tol = 2e-2f, float eps = 1e-3f) {
  Tensor loss = loss_fn();
  for (float& g : param.grad()) g = 0.0f;
  Backward(loss);
  const std::vector<float> analytic = param.grad();
  for (size_t i = 0; i < param.size(); ++i) {
    const float saved = param.value()[i];
    param.value()[i] = saved + eps;
    const float plus = loss_fn().item();
    param.value()[i] = saved - eps;
    const float minus = loss_fn().item();
    param.value()[i] = saved;
    const float numeric = (plus - minus) / (2.0f * eps);
    EXPECT_NEAR(analytic[i], numeric,
                tol * std::max(1.0f, std::fabs(numeric)))
        << "at element " << i;
  }
}

Tensor RandomParam(std::vector<size_t> shape, uint64_t seed,
                   float stddev = 0.5f) {
  Rng rng(seed);
  return Tensor::Param(std::move(shape), stddev, rng);
}

TEST(TensorTest, ConstructorsAndAccessors) {
  Tensor z = Tensor::Zeros({2, 3}, 1.5f);
  EXPECT_EQ(z.rank(), 2u);
  EXPECT_EQ(z.size(), 6u);
  EXPECT_FLOAT_EQ(z.value()[5], 1.5f);
  EXPECT_FALSE(z.requires_grad());

  Tensor v = Tensor::FromVector({1, 2, 3, 4}, {2, 2});
  EXPECT_FLOAT_EQ(v.value()[3], 4.0f);

  Rng rng(1);
  Tensor p = Tensor::Param({4}, 0.1f, rng);
  EXPECT_TRUE(p.requires_grad());
}

TEST(TensorTest, ScalarItem) {
  Tensor s = Tensor::FromVector({42.0f}, {1});
  EXPECT_FLOAT_EQ(s.item(), 42.0f);
}

TEST(OpsTest, AddSubMulForward) {
  Tensor a = Tensor::FromVector({1, 2, 3}, {3});
  Tensor b = Tensor::FromVector({4, 5, 6}, {3});
  EXPECT_FLOAT_EQ(Add(a, b).value()[1], 7.0f);
  EXPECT_FLOAT_EQ(Sub(a, b).value()[2], -3.0f);
  EXPECT_FLOAT_EQ(Mul(a, b).value()[0], 4.0f);
  EXPECT_FLOAT_EQ(Scale(a, 2.0f).value()[2], 6.0f);
  EXPECT_FLOAT_EQ(AddScalar(a, 1.0f).value()[0], 2.0f);
}

TEST(OpsTest, MatMulForward) {
  Tensor a = Tensor::FromVector({1, 2, 3, 4}, {2, 2});
  Tensor b = Tensor::FromVector({5, 6, 7, 8}, {2, 2});
  Tensor c = MatMul(a, b);
  EXPECT_FLOAT_EQ(c.value()[0], 19.0f);
  EXPECT_FLOAT_EQ(c.value()[1], 22.0f);
  EXPECT_FLOAT_EQ(c.value()[2], 43.0f);
  EXPECT_FLOAT_EQ(c.value()[3], 50.0f);
}

TEST(OpsTest, MatMulGradient) {
  Tensor a = RandomParam({3, 4}, 11);
  Tensor b = RandomParam({4, 2}, 12);
  CheckGradients(a, [&] { return SumAll(Tanh(MatMul(a, b))); });
  CheckGradients(b, [&] { return SumAll(Tanh(MatMul(a, b))); });
}

TEST(OpsTest, BMatMulMatchesLoopedMatMul) {
  Rng rng(3);
  Tensor a = Tensor::Param({2, 3, 4}, 0.5f, rng);
  Tensor b = Tensor::Param({2, 4, 5}, 0.5f, rng);
  Tensor c = BMatMul(a, b);
  ASSERT_EQ(c.shape(), (std::vector<size_t>{2, 3, 5}));
  // Compare batch 1 against an explicit 2-D matmul.
  Tensor a1 = Tensor::FromVector(
      std::vector<float>(a.value().begin() + 12, a.value().end()), {3, 4});
  Tensor b1 = Tensor::FromVector(
      std::vector<float>(b.value().begin() + 20, b.value().end()), {4, 5});
  Tensor c1 = MatMul(a1, b1);
  for (size_t i = 0; i < 15; ++i) {
    EXPECT_NEAR(c.value()[15 + i], c1.value()[i], 1e-5f);
  }
}

TEST(OpsTest, BMatMulGradient) {
  Tensor a = RandomParam({2, 2, 3}, 21);
  Tensor b = RandomParam({2, 3, 2}, 22);
  CheckGradients(a, [&] { return SumAll(Tanh(BMatMul(a, b))); });
  CheckGradients(b, [&] { return SumAll(Tanh(BMatMul(a, b))); });
}

TEST(OpsTest, BMatMulTMatchesExplicitTranspose) {
  Rng rng(4);
  Tensor a = Tensor::Param({2, 3, 4}, 0.5f, rng);
  Tensor b = Tensor::Param({2, 5, 4}, 0.5f, rng);
  Tensor c = BMatMulT(a, b);
  Tensor bt = Permute(b, {0, 2, 1});
  Tensor c2 = BMatMul(a, bt);
  ASSERT_EQ(c.shape(), c2.shape());
  for (size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c.value()[i], c2.value()[i], 1e-5f);
  }
}

TEST(OpsTest, BMatMulTGradient) {
  Tensor a = RandomParam({2, 2, 3}, 31);
  Tensor b = RandomParam({2, 4, 3}, 32);
  CheckGradients(a, [&] { return SumAll(Tanh(BMatMulT(a, b))); });
  CheckGradients(b, [&] { return SumAll(Tanh(BMatMulT(a, b))); });
}

TEST(OpsTest, ActivationGradients) {
  Tensor x = RandomParam({2, 3}, 41);
  CheckGradients(x, [&] { return SumAll(Relu(x)); });
  CheckGradients(x, [&] { return SumAll(Gelu(x)); });
  CheckGradients(x, [&] { return SumAll(Tanh(x)); });
  CheckGradients(x, [&] { return SumAll(Sigmoid(x)); });
}

TEST(OpsTest, AddBiasGradient) {
  Tensor x = RandomParam({3, 2}, 51);
  Tensor b = RandomParam({2}, 52);
  CheckGradients(x, [&] { return SumAll(Tanh(AddBias(x, b))); });
  CheckGradients(b, [&] { return SumAll(Tanh(AddBias(x, b))); });
}

TEST(OpsTest, SoftmaxRowsSumToOne) {
  Tensor x = RandomParam({4, 5}, 61);
  Tensor y = SoftmaxLastDim(x);
  for (size_t r = 0; r < 4; ++r) {
    float sum = 0.0f;
    for (size_t j = 0; j < 5; ++j) sum += y.value()[r * 5 + j];
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(OpsTest, SoftmaxGradient) {
  Tensor x = RandomParam({2, 4}, 62);
  Tensor w = Tensor::FromVector({0.3f, -0.2f, 0.5f, 0.1f, 0.9f, -0.7f,
                                 0.2f, 0.4f},
                                {2, 4});
  CheckGradients(x, [&] { return SumAll(Mul(SoftmaxLastDim(x), w)); });
}

TEST(OpsTest, LogSoftmaxGradient) {
  Tensor x = RandomParam({2, 3}, 63);
  Tensor w = Tensor::FromVector({0.3f, -0.2f, 0.5f, 0.1f, 0.9f, -0.7f},
                                {2, 3});
  CheckGradients(x, [&] { return SumAll(Mul(LogSoftmaxLastDim(x), w)); });
}

TEST(OpsTest, LayerNormForwardNormalizes) {
  Tensor x = RandomParam({3, 8}, 71);
  Tensor gamma = Tensor::OnesParam({8});
  Tensor beta = Tensor::ZeroParam({8});
  Tensor y = LayerNorm(x, gamma, beta);
  for (size_t r = 0; r < 3; ++r) {
    float mean = 0.0f;
    for (size_t j = 0; j < 8; ++j) mean += y.value()[r * 8 + j];
    mean /= 8.0f;
    EXPECT_NEAR(mean, 0.0f, 1e-5f);
    float var = 0.0f;
    for (size_t j = 0; j < 8; ++j) {
      var += (y.value()[r * 8 + j] - mean) * (y.value()[r * 8 + j] - mean);
    }
    EXPECT_NEAR(var / 8.0f, 1.0f, 1e-3f);
  }
}

TEST(OpsTest, LayerNormGradients) {
  Tensor x = RandomParam({2, 4}, 72);
  Tensor gamma = RandomParam({4}, 73, 0.3f);
  Tensor beta = RandomParam({4}, 74, 0.3f);
  for (float& v : gamma.value()) v += 1.0f;
  auto loss = [&] { return SumAll(Tanh(LayerNorm(x, gamma, beta))); };
  CheckGradients(x, loss);
  CheckGradients(gamma, loss);
  CheckGradients(beta, loss);
}

TEST(OpsTest, RowsGradientAccumulatesRepeats) {
  Tensor table = RandomParam({5, 3}, 81);
  std::vector<int32_t> ids = {1, 1, 4};
  Tensor out = Rows(table, ids);
  Tensor loss = SumAll(out);
  Backward(loss);
  // Row 1 referenced twice -> grad 2, row 4 once -> 1, others 0.
  for (size_t j = 0; j < 3; ++j) {
    EXPECT_FLOAT_EQ(table.grad()[1 * 3 + j], 2.0f);
    EXPECT_FLOAT_EQ(table.grad()[4 * 3 + j], 1.0f);
    EXPECT_FLOAT_EQ(table.grad()[0 * 3 + j], 0.0f);
  }
}

TEST(OpsTest, SliceConcatRoundTrip) {
  Tensor x = RandomParam({2, 6}, 91);
  Tensor left = SliceCols(x, 0, 3);
  Tensor right = SliceCols(x, 3, 3);
  Tensor both = ConcatCols({left, right});
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_FLOAT_EQ(both.value()[i], x.value()[i]);
  }
  CheckGradients(x, [&] {
    return SumAll(Tanh(ConcatCols(
        {SliceCols(x, 0, 3), SliceCols(x, 3, 3)})));
  });
}

TEST(OpsTest, ConcatRowsStacks) {
  Tensor a = Tensor::FromVector({1, 2}, {1, 2});
  Tensor b = Tensor::FromVector({3, 4, 5, 6}, {2, 2});
  Tensor c = ConcatRows({a, b});
  EXPECT_EQ(c.shape(), (std::vector<size_t>{3, 2}));
  EXPECT_FLOAT_EQ(c.value()[4], 5.0f);
}

TEST(OpsTest, PermuteRank3) {
  Tensor x = Tensor::FromVector({0, 1, 2, 3, 4, 5}, {1, 2, 3});
  Tensor y = Permute(x, {0, 2, 1});
  EXPECT_EQ(y.shape(), (std::vector<size_t>{1, 3, 2}));
  // x[0, i, j] == y[0, j, i]
  EXPECT_FLOAT_EQ(y.value()[0 * 2 + 0], 0.0f);  // y[0,0,0] = x[0,0,0]
  EXPECT_FLOAT_EQ(y.value()[0 * 2 + 1], 3.0f);  // y[0,0,1] = x[0,1,0]
  EXPECT_FLOAT_EQ(y.value()[1 * 2 + 0], 1.0f);  // y[0,1,0] = x[0,0,1]
}

TEST(OpsTest, PermuteGradient) {
  Tensor x = RandomParam({2, 3, 2}, 92);
  CheckGradients(x, [&] { return SumAll(Tanh(Permute(x, {2, 0, 1}))); });
}

TEST(OpsTest, PermuteRank4RoundTrip) {
  Tensor x = RandomParam({2, 3, 2, 2}, 93);
  Tensor y = Permute(Permute(x, {0, 2, 1, 3}), {0, 2, 1, 3});
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_FLOAT_EQ(y.value()[i], x.value()[i]);
  }
}

TEST(OpsTest, MaskedMeanPool) {
  Tensor x = Tensor::FromVector({1, 1, 3, 3, 100, 100, 2, 2, 4, 4, 6, 6},
                                {6, 2});
  // batch=2, seq=3; first doc length 2 (ignores the 100s), second length 3.
  Tensor pooled = MaskedMeanPool(x, 2, 3, {2, 3});
  EXPECT_FLOAT_EQ(pooled.value()[0], 2.0f);
  EXPECT_FLOAT_EQ(pooled.value()[2], 4.0f);
}

TEST(OpsTest, MaskedMeanPoolGradient) {
  Tensor x = RandomParam({6, 2}, 94);
  CheckGradients(
      x, [&] { return SumAll(Tanh(MaskedMeanPool(x, 2, 3, {2, 3}))); });
}

TEST(OpsTest, MaxPoolRows) {
  Tensor x = Tensor::FromVector({1, 9, 5, 2, 7, 3}, {3, 2});
  Tensor pooled = MaxPoolRows(x, 1, 3);
  EXPECT_FLOAT_EQ(pooled.value()[0], 7.0f);
  EXPECT_FLOAT_EQ(pooled.value()[1], 9.0f);
}

TEST(OpsTest, MaxPoolRowsGradientRoutesToArgmax) {
  Tensor x = RandomParam({4, 3}, 95);
  CheckGradients(x, [&] { return SumAll(Tanh(MaxPoolRows(x, 2, 2))); });
}

TEST(OpsTest, WeightedSumRowsGradient) {
  Tensor x = RandomParam({3, 2}, 96);
  Tensor w = RandomParam({3}, 97);
  auto loss = [&] { return SumAll(Tanh(WeightedSumRows(x, w))); };
  CheckGradients(x, loss);
  CheckGradients(w, loss);
}

TEST(OpsTest, Im2ColShapeAndGradient) {
  Tensor x = RandomParam({6, 2}, 98);  // batch=2, seq=3, d=2
  Tensor cols = Im2Col(x, 2, 3, 2);
  EXPECT_EQ(cols.shape(), (std::vector<size_t>{4, 4}));
  CheckGradients(x, [&] { return SumAll(Tanh(Im2Col(x, 2, 3, 2))); });
}

TEST(OpsTest, DropoutTrainingZeroesAndScales) {
  Rng rng(123);
  Tensor x = Tensor::FromVector(std::vector<float>(1000, 1.0f), {1000});
  x.node()->requires_grad = true;
  Tensor y = Dropout(x, 0.5f, rng, /*training=*/true);
  int zeros = 0;
  for (float v : y.value()) {
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(v, 2.0f);
    }
  }
  EXPECT_NEAR(zeros, 500, 60);
}

TEST(OpsTest, DropoutEvalIsIdentity) {
  Rng rng(123);
  Tensor x = Tensor::FromVector({1, 2, 3}, {3});
  Tensor y = Dropout(x, 0.5f, rng, /*training=*/false);
  EXPECT_EQ(y.node(), x.node());
}

TEST(LossTest, CrossEntropyMatchesManual) {
  Tensor logits = Tensor::FromVector({2.0f, 0.0f, 0.0f, 3.0f}, {2, 2});
  Tensor loss = CrossEntropy(logits, {0, 1});
  const float l0 = -std::log(std::exp(2.0f) / (std::exp(2.0f) + 1.0f));
  const float l1 = -std::log(std::exp(3.0f) / (std::exp(3.0f) + 1.0f));
  EXPECT_NEAR(loss.item(), (l0 + l1) / 2.0f, 1e-5f);
}

TEST(LossTest, CrossEntropyGradient) {
  Tensor logits = RandomParam({3, 4}, 101);
  CheckGradients(logits, [&] { return CrossEntropy(logits, {1, 3, 0}); });
}

TEST(LossTest, SoftCrossEntropyGradient) {
  Tensor logits = RandomParam({2, 3}, 102);
  std::vector<float> probs = {0.7f, 0.2f, 0.1f, 0.1f, 0.1f, 0.8f};
  CheckGradients(logits, [&] { return SoftCrossEntropy(logits, probs); });
}

TEST(LossTest, BceWithLogitsGradient) {
  Tensor logits = RandomParam({5}, 103);
  std::vector<float> targets = {1, 0, 1, 1, 0};
  CheckGradients(logits, [&] { return BceWithLogits(logits, targets); });
}

TEST(LossTest, BceMatchesManual) {
  Tensor logits = Tensor::FromVector({0.0f}, {1});
  Tensor loss = BceWithLogits(logits, {1.0f});
  EXPECT_NEAR(loss.item(), std::log(2.0f), 1e-5f);
}

TEST(LossTest, InfoNceDecreasesWithBetterAlignment) {
  // Identity similarity (perfect) should score better than uniform.
  Tensor good = Tensor::FromVector({5, 0, 0, 5}, {2, 2});
  Tensor flat = Tensor::FromVector({1, 1, 1, 1}, {2, 2});
  EXPECT_LT(InfoNce(good, 1.0f).item(), InfoNce(flat, 1.0f).item());
}

TEST(OptimizerTest, AdamConvergesOnQuadratic) {
  Rng rng(7);
  ParameterStore store;
  Tensor w = store.Register("w", Tensor::Param({4}, 1.0f, rng));
  OptimizerConfig config;
  config.lr = 0.1f;
  AdamOptimizer opt(&store, config);
  for (int step = 0; step < 300; ++step) {
    Tensor loss = SumAll(Mul(w, w));
    Backward(loss);
    opt.Step();
  }
  for (float v : w.value()) EXPECT_NEAR(v, 0.0f, 1e-2f);
}

TEST(OptimizerTest, SgdConvergesOnQuadratic) {
  Rng rng(8);
  ParameterStore store;
  Tensor w = store.Register("w", Tensor::Param({3}, 1.0f, rng));
  SgdOptimizer opt(&store, 0.1f, 0.5f);
  for (int step = 0; step < 200; ++step) {
    Tensor loss = SumAll(Mul(w, w));
    Backward(loss);
    opt.Step();
  }
  for (float v : w.value()) EXPECT_NEAR(v, 0.0f, 1e-3f);
}

TEST(OptimizerTest, SnapshotRestoreRoundTrip) {
  Rng rng(9);
  ParameterStore store;
  Tensor a = store.Register("a", Tensor::Param({2, 2}, 1.0f, rng));
  Tensor b = store.Register("b", Tensor::Param({3}, 1.0f, rng));
  const std::vector<float> snap = store.Snapshot();
  const float a0 = a.value()[0];
  a.value()[0] = 99.0f;
  b.value()[2] = -99.0f;
  store.Restore(snap);
  EXPECT_FLOAT_EQ(a.value()[0], a0);
  EXPECT_NE(b.value()[2], -99.0f);
}

TEST(BackwardTest, DiamondGraphAccumulates) {
  // loss = sum(x*x) + sum(x) -> dx = 2x + 1.
  Tensor x = RandomParam({3}, 111);
  Tensor loss = Add(SumAll(Mul(x, x)), SumAll(x));
  Backward(loss);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(x.grad()[i], 2.0f * x.value()[i] + 1.0f, 1e-4f);
  }
}

TEST(BackwardTest, NoGradThroughConstants) {
  Tensor x = Tensor::FromVector({1, 2}, {2});  // constant
  Tensor w = RandomParam({2}, 112);
  Tensor loss = SumAll(Mul(x, w));
  Backward(loss);
  EXPECT_TRUE(x.node()->grad.empty());
}

}  // namespace
}  // namespace stm::nn
