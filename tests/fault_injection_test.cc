// Fault-injection suite for the durable artifact store: every truncation
// point and hundreds of random bit flips of a saved MiniLm / embedding
// cache must yield a clean kCorruptData Status (never a crash, never a
// silently restored model), LoadOrPretrain must recover by re-pretraining,
// and atomic writes must never publish a partial file. Runs in the
// `robustness` ctest label (see tests/CMakeLists.txt).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/rng.h"
#include "common/status.h"
#include "embedding/sgns.h"
#include "plm/minilm.h"

namespace stm {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

plm::MiniLmConfig SmallConfig() {
  plm::MiniLmConfig config;
  config.vocab_size = 30;
  config.dim = 8;
  config.layers = 1;
  config.heads = 2;
  config.ffn_dim = 16;
  config.max_seq = 12;
  return config;
}

std::vector<std::vector<int32_t>> SmallDocs() {
  std::vector<std::vector<int32_t>> docs;
  Rng rng(7);
  for (int d = 0; d < 10; ++d) {
    std::vector<int32_t> doc;
    for (int t = 0; t < 8; ++t) {
      doc.push_back(5 + static_cast<int32_t>(rng.UniformInt(25)));
    }
    docs.push_back(std::move(doc));
  }
  return docs;
}

bool PoolIsFinite(plm::MiniLm* model) {
  for (float v : model->Pool({6, 7, 8})) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

// Saves a fresh (un-pretrained) small model and returns the file bytes.
std::string SavedModelBytes(Env* env, const std::string& path) {
  plm::MiniLm model(SmallConfig());
  EXPECT_TRUE(model.Save(env, path).ok());
  StatusOr<std::string> bytes = env->ReadFile(path);
  EXPECT_TRUE(bytes.ok());
  return bytes.value();
}

TEST(FaultInjectionTest, MiniLmLoadSurvivesEveryTruncationPoint) {
  Env* env = Env::Default();
  const std::string bytes =
      SavedModelBytes(env, TempPath("fi_minilm_full.bin"));
  ASSERT_GT(bytes.size(), 128u);
  const std::string path = TempPath("fi_minilm_truncated.bin");
  for (size_t length = 0; length < bytes.size(); length += 64) {
    ASSERT_TRUE(env->WriteFileAtomic(path, bytes.substr(0, length)).ok());
    StatusOr<std::unique_ptr<plm::MiniLm>> loaded =
        plm::MiniLm::Load(env, path);
    ASSERT_FALSE(loaded.ok()) << "truncated to " << length << " bytes";
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruptData)
        << "truncated to " << length << " bytes: "
        << loaded.status().ToString();
  }
}

TEST(FaultInjectionTest, MiniLmLoadSurvivesRandomBitFlips) {
  Env* env = Env::Default();
  const std::string bytes =
      SavedModelBytes(env, TempPath("fi_minilm_flip_src.bin"));
  const std::string path = TempPath("fi_minilm_flipped.bin");
  Rng rng(42);
  for (int trial = 0; trial < 250; ++trial) {
    std::string corrupted = bytes;
    const size_t byte = rng.UniformInt(corrupted.size());
    const int bit = static_cast<int>(rng.UniformInt(8));
    corrupted[byte] = static_cast<char>(corrupted[byte] ^ (1 << bit));
    ASSERT_TRUE(env->WriteFileAtomic(path, corrupted).ok());
    StatusOr<std::unique_ptr<plm::MiniLm>> loaded =
        plm::MiniLm::Load(env, path);
    ASSERT_FALSE(loaded.ok())
        << "bit " << bit << " of byte " << byte << " flipped";
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruptData)
        << loaded.status().ToString();
  }
}

TEST(FaultInjectionTest, EmbeddingLoadSurvivesTruncationAndBitFlips) {
  Env* env = Env::Default();
  const std::string full = TempPath("fi_emb_full.bin");
  la::Matrix table(40, 16);
  Rng init(3);
  for (size_t i = 0; i < table.size(); ++i) {
    table.data()[i] = static_cast<float>(init.Uniform(-1.0, 1.0));
  }
  embedding::WordEmbeddings embeddings(std::move(table));
  ASSERT_TRUE(embeddings.Save(env, full).ok());
  const std::string bytes = env->ReadFile(full).value();

  const std::string path = TempPath("fi_emb_bad.bin");
  for (size_t length = 0; length < bytes.size(); length += 64) {
    ASSERT_TRUE(env->WriteFileAtomic(path, bytes.substr(0, length)).ok());
    StatusOr<std::unique_ptr<embedding::WordEmbeddings>> loaded =
        embedding::WordEmbeddings::Load(env, path);
    ASSERT_FALSE(loaded.ok()) << "truncated to " << length;
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruptData);
  }
  Rng rng(11);
  for (int trial = 0; trial < 250; ++trial) {
    std::string corrupted = bytes;
    const size_t byte = rng.UniformInt(corrupted.size());
    corrupted[byte] =
        static_cast<char>(corrupted[byte] ^ (1 << rng.UniformInt(8)));
    ASSERT_TRUE(env->WriteFileAtomic(path, corrupted).ok());
    StatusOr<std::unique_ptr<embedding::WordEmbeddings>> loaded =
        embedding::WordEmbeddings::Load(env, path);
    ASSERT_FALSE(loaded.ok())
        << "flip in byte " << byte << " went undetected";
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruptData);
  }
}

TEST(FaultInjectionTest, LoadOrPretrainRecoversFromCorruptCache) {
  Env* env = Env::Default();
  const std::string dir = TempPath("fi_cache_dir");
  std::filesystem::remove_all(dir);  // stale state from earlier runs
  std::filesystem::create_directory(dir);
  const auto docs = SmallDocs();
  plm::PretrainConfig pretrain;
  pretrain.steps = 3;
  pretrain.batch = 2;

  StatusOr<std::unique_ptr<plm::MiniLm>> first = plm::MiniLm::LoadOrPretrain(
      env, dir, /*extra_key=*/99, SmallConfig(), pretrain, docs);
  ASSERT_TRUE(first.ok());
  // Find the cache file LoadOrPretrain just wrote.
  std::string cache_path;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    cache_path = entry.path().string();
  }
  ASSERT_FALSE(cache_path.empty());

  // Corrupt it (single byte in the middle of the weights) and reload: the
  // bad cache must be quarantined and the model re-pretrained, with
  // identical results (same seeds, same data).
  std::string bytes = env->ReadFile(cache_path).value();
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0xFF);
  ASSERT_TRUE(env->WriteFileAtomic(cache_path, bytes).ok());

  StatusOr<std::unique_ptr<plm::MiniLm>> second = plm::MiniLm::LoadOrPretrain(
      env, dir, /*extra_key=*/99, SmallConfig(), pretrain, docs);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(PoolIsFinite(second.value().get()));
  EXPECT_TRUE(env->FileExists(cache_path + ".corrupt"));
  // The re-pretrained model matches the original run bit for bit.
  const auto a = first.value()->Pool({6, 7, 8});
  const auto b = second.value()->Pool({6, 7, 8});
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);

  // Third call hits the rewritten (healthy) cache.
  StatusOr<std::unique_ptr<plm::MiniLm>> third = plm::MiniLm::LoadOrPretrain(
      env, dir, /*extra_key=*/99, SmallConfig(), pretrain, docs);
  ASSERT_TRUE(third.ok());
  const auto c = third.value()->Pool({6, 7, 8});
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], c[i]);
}

TEST(FaultInjectionTest, CrashBeforeRenameLeavesOldFileIntact) {
  FaultInjectingEnv env(Env::Default());
  const std::string path = TempPath("fi_crash_consistency.bin");
  ASSERT_TRUE(env.WriteFileAtomic(path, "old artifact bytes").ok());
  env.CrashNextWrite();
  const Status status = env.WriteFileAtomic(path, "new artifact bytes");
  ASSERT_FALSE(status.ok());
  // The old content is still what readers see — no partial file at the
  // final path.
  EXPECT_EQ(env.ReadFile(path).value(), "old artifact bytes");
}

TEST(FaultInjectionTest, CrashBeforeRenamePublishesNothingWhenFileIsNew) {
  FaultInjectingEnv env(Env::Default());
  const std::string path = TempPath("fi_crash_fresh.bin");
  env.CrashNextWrite();
  ASSERT_FALSE(env.WriteFileAtomic(path, "never visible").ok());
  EXPECT_FALSE(env.FileExists(path));
}

TEST(FaultInjectionTest, TornWriteIsCaughtByChecksumOnLoad) {
  // A short write that still got renamed into place (e.g. a full disk at
  // flush time on a filesystem without atomic rename durability) must be
  // rejected by the CRC, not half-loaded.
  FaultInjectingEnv env(Env::Default());
  const std::string path = TempPath("fi_torn.bin");
  plm::MiniLm model(SmallConfig());
  env.ShortWriteNext(200);
  ASSERT_TRUE(model.Save(&env, path).ok());  // the torn publish "succeeds"
  StatusOr<std::unique_ptr<plm::MiniLm>> loaded =
      plm::MiniLm::Load(&env, path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruptData);

  env.TruncateNext(33);
  ASSERT_TRUE(model.Save(&env, path).ok());
  loaded = plm::MiniLm::Load(&env, path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruptData);
}

TEST(FaultInjectionTest, SaveRetriesTransientWriteFailures) {
  FaultInjectingEnv env(Env::Default());
  const std::string path = TempPath("fi_retry_save.bin");
  plm::MiniLm model(SmallConfig());
  env.FailNextWrites(2, StatusCode::kUnavailable);
  ASSERT_TRUE(model.Save(&env, path).ok());  // third attempt lands
  EXPECT_EQ(env.write_count(), 3);
  EXPECT_TRUE(plm::MiniLm::Load(&env, path).ok());
}

TEST(FaultInjectionTest, RetryExhaustionSurfacesTransientError) {
  FaultInjectingEnv env(Env::Default());
  const std::string path = TempPath("fi_retry_exhausted.bin");
  plm::MiniLm model(SmallConfig());
  env.FailNextWrites(100, StatusCode::kUnavailable);
  const Status status = model.Save(&env, path);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(env.write_count(), 3);  // default RetryOptions budget
  EXPECT_FALSE(env.FileExists(path));
}

TEST(FaultInjectionTest, InjectedReadFaultPropagatesAsStatus) {
  FaultInjectingEnv env(Env::Default());
  const std::string path = TempPath("fi_read_fault.bin");
  plm::MiniLm model(SmallConfig());
  ASSERT_TRUE(model.Save(&env, path).ok());
  env.FailNthOp(0, StatusCode::kIoError);
  StatusOr<std::unique_ptr<plm::MiniLm>> loaded =
      plm::MiniLm::Load(&env, path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
  // Without the fault the same file loads fine.
  EXPECT_TRUE(plm::MiniLm::Load(&env, path).ok());
}

}  // namespace
}  // namespace stm
