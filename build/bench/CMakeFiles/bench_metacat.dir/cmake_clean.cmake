file(REMOVE_RECURSE
  "CMakeFiles/bench_metacat.dir/bench_metacat.cc.o"
  "CMakeFiles/bench_metacat.dir/bench_metacat.cc.o.d"
  "bench_metacat"
  "bench_metacat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_metacat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
