// Tests for the online classification service (serve/serve.h) and its
// core-method adapters (core/serve_adapters.h). The headline contract:
// a served prediction is BIT-identical to the batch Run() prediction for
// the same token ids — independent of batch composition, arrival timing,
// STM_NUM_THREADS, and quant mode. Admission control must degrade into
// kUnavailable rejections, never crashes or unbounded queues. Built as
// stm_serve_tests (ctest label "serve") so scripts/check.sh can run the
// suite under ASan and TSan in isolation.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <future>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/serve_adapters.h"
#include "index/ann.h"
#include "la/matrix.h"
#include "nn/feature_classifier.h"
#include "nn/text_classifier.h"
#include "plm/batch_scheduler.h"
#include "plm/minilm.h"
#include "plm/quantized_minilm.h"
#include "serve/fault_injection.h"
#include "serve/retry.h"
#include "serve/serve.h"
#include "taxonomy/taxonomy.h"
#include "text/vocabulary.h"

namespace stm {
namespace {

// Restores process-wide switches no matter how a test exits.
struct ServeGuard {
  ~ServeGuard() {
    plm::SetQuantInference(-1);
    plm::SetBatchOptions(plm::BatchOptions{});
    ThreadPool::Reset(ThreadPool::ConfiguredThreads());
  }
};

plm::MiniLmConfig TestConfig(size_t vocab) {
  plm::MiniLmConfig config;
  config.vocab_size = vocab;
  config.dim = 24;
  config.layers = 2;
  config.heads = 4;
  config.ffn_dim = 48;
  config.max_seq = 32;
  config.seed = 7;
  return config;
}

// Mixed-length docs including the empty-doc edge case.
std::vector<std::vector<int32_t>> MixedDocs(size_t count, size_t vocab,
                                            uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<int32_t>> docs;
  docs.push_back({});
  for (size_t d = 1; d < count; ++d) {
    const size_t len = 2 + rng.UniformInt(30);
    std::vector<int32_t> doc(len);
    for (int32_t& id : doc) {
      id = text::kNumSpecialTokens +
           static_cast<int32_t>(
               rng.UniformInt(vocab - text::kNumSpecialTokens));
    }
    docs.push_back(std::move(doc));
  }
  return docs;
}

// A classifier that parks inside Classify until released, so tests can
// hold a drain worker busy and fill the queue deterministically.
class BlockingClassifier : public serve::Classifier {
 public:
  std::string name() const override { return "blocking"; }
  size_t num_classes() const override { return 1; }
  Input input() const override { return Input::kTokens; }

  serve::Prediction Classify(const std::vector<int32_t>&, const float*,
                             const la::Matrix*) const override {
    {
      std::unique_lock<std::mutex> lock(mu_);
      ++entered_;
      entered_cv_.notify_all();
      release_cv_.wait(lock, [&] { return released_; });
    }
    serve::Prediction prediction;
    prediction.label = 0;
    return prediction;
  }

  // Blocks until `count` Classify calls are parked inside the hook.
  void AwaitEntered(int count) const {
    std::unique_lock<std::mutex> lock(mu_);
    entered_cv_.wait(lock, [&] { return entered_ >= count; });
  }

  void Release() const {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    release_cv_.notify_all();
  }

  // Total Classify calls — lets tests prove a dropped (cancelled/expired)
  // request never reached the hook.
  int entered() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entered_;
  }

 private:
  mutable std::mutex mu_;
  mutable std::condition_variable entered_cv_;
  mutable std::condition_variable release_cv_;
  mutable int entered_ = 0;
  mutable bool released_ = false;
};

class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    model_ = new plm::MiniLm(TestConfig(kVocab));
    docs_ = new std::vector<std::vector<int32_t>>(MixedDocs(48, kVocab, 33));
    class_names_ = new std::vector<std::vector<int32_t>>();
    for (size_t c = 0; c < kClasses; ++c) {
      class_names_->push_back(
          {static_cast<int32_t>(text::kNumSpecialTokens + c),
           static_cast<int32_t>(text::kNumSpecialTokens + kClasses + c)});
    }
    // A small trained bow classifier (training labels are arbitrary; the
    // tests only compare serve vs batch on the same weights).
    nn::ClassifierConfig clf_config;
    clf_config.vocab_size = kVocab;
    clf_config.num_classes = kClasses;
    clf_config.seed = 13;
    bow_ = new std::shared_ptr<nn::TextClassifier>(
        std::make_shared<nn::BowLogRegClassifier>(clf_config));
    std::vector<int> labels;
    for (size_t d = 0; d < docs_->size(); ++d) {
      labels.push_back(static_cast<int>(d % kClasses));
    }
    (*bow_)->Fit(*docs_, labels, /*epochs=*/3);
  }

  static void TearDownTestSuite() {
    delete model_;
    delete docs_;
    delete class_names_;
    delete bow_;
    model_ = nullptr;
    docs_ = nullptr;
    class_names_ = nullptr;
    bow_ = nullptr;
  }

  // Batch-path reference for the simple-match adapter: full-corpus
  // PoolBatch + batched top-1 retrieval, exactly as PlmSimpleMatchClassify.
  static std::vector<int> BatchSimpleMatch() {
    const la::Matrix class_reps = model_->PoolBatch(*class_names_);
    const la::Matrix doc_reps = model_->PoolBatch(*docs_);
    const std::vector<std::vector<ann::Neighbor>> top =
        ann::TopKSimilar(doc_reps, class_reps, 1);
    std::vector<int> predictions(docs_->size(), 0);
    for (size_t d = 0; d < docs_->size(); ++d) {
      predictions[d] = static_cast<int>(top[d][0].id);
    }
    return predictions;
  }

  // Submits every doc concurrently (so they coalesce into shared batches)
  // and checks each result against the batch references.
  static void CheckServeMatchesBatch() {
    const std::vector<int> match_want = BatchSimpleMatch();
    const la::Matrix bow_probs = (*bow_)->PredictProbs(*docs_);
    const std::vector<int> bow_want = (*bow_)->Predict(*docs_);

    serve::ServeOptions options;
    options.max_batch = 16;
    options.deadline_ms = 5.0;
    options.workers = 2;
    serve::Server server(model_, options);
    ASSERT_TRUE(server.Register("match",
                    core::MakePlmSimpleMatchServable(model_, *class_names_)).ok());
    ASSERT_TRUE(server.Register("bow", std::make_shared<core::TextClassifierServable>(
                               "bow", *bow_, kClasses)).ok());

    std::vector<std::future<StatusOr<serve::Prediction>>> match_futures;
    std::vector<std::future<StatusOr<serve::Prediction>>> bow_futures;
    for (const auto& doc : *docs_) {
      match_futures.push_back(server.Submit("match", doc));
      bow_futures.push_back(server.Submit("bow", doc));
    }
    for (size_t d = 0; d < docs_->size(); ++d) {
      StatusOr<serve::Prediction> match = match_futures[d].get();
      ASSERT_TRUE(match.ok()) << match.status().ToString();
      EXPECT_EQ(match->label, match_want[d]) << "match doc " << d;

      StatusOr<serve::Prediction> bow = bow_futures[d].get();
      ASSERT_TRUE(bow.ok()) << bow.status().ToString();
      EXPECT_EQ(bow->label, bow_want[d]) << "bow doc " << d;
      ASSERT_EQ(bow->scores.size(), kClasses);
      EXPECT_EQ(0, std::memcmp(bow->scores.data(), bow_probs.Row(d),
                               kClasses * sizeof(float)))
          << "bow probs doc " << d;
    }
    const serve::Server::Stats stats = server.stats();
    EXPECT_EQ(stats.completed, 2 * docs_->size());
    EXPECT_EQ(stats.shed, 0u);
    EXPECT_GE(stats.batches, 1u);
  }

  static constexpr size_t kVocab = 120;
  static constexpr size_t kClasses = 4;
  static plm::MiniLm* model_;
  static std::vector<std::vector<int32_t>>* docs_;
  static std::vector<std::vector<int32_t>>* class_names_;
  static std::shared_ptr<nn::TextClassifier>* bow_;
};

plm::MiniLm* ServeTest::model_ = nullptr;
std::vector<std::vector<int32_t>>* ServeTest::docs_ = nullptr;
std::vector<std::vector<int32_t>>* ServeTest::class_names_ = nullptr;
std::shared_ptr<nn::TextClassifier>* ServeTest::bow_ = nullptr;

// ---- serve vs batch bit-identity ----

TEST_F(ServeTest, ServeMatchesBatchFp32) {
  ServeGuard guard;
  plm::SetQuantInference(0);
  CheckServeMatchesBatch();
}

TEST_F(ServeTest, ServeMatchesBatchInt8) {
  ServeGuard guard;
  plm::SetQuantInference(1);
  CheckServeMatchesBatch();
}

TEST_F(ServeTest, ServeMatchesBatchAnyThreadCount) {
  ServeGuard guard;
  plm::SetQuantInference(0);
  for (const size_t threads : {size_t{1}, size_t{4}}) {
    ThreadPool::Reset(threads);
    CheckServeMatchesBatch();
  }
}

TEST_F(ServeTest, PooledScoresBitIdenticalToBatchPool) {
  // Stronger than label equality: the similarity scores the serve path
  // computes (one normalize + GEMV per request) must be bitwise what the
  // batch retrieval panel computes over the full corpus, which can only
  // hold if the pooled vectors themselves are bit-identical AND both
  // paths run the same normalize-once + kernel-dot float operations.
  ServeGuard guard;
  plm::SetQuantInference(0);
  const la::Matrix class_reps = model_->PoolBatch(*class_names_);
  const la::Matrix doc_reps = model_->PoolBatch(*docs_);
  const la::Matrix panel = ann::SimilarityPanel(doc_reps, class_reps);

  serve::Server server(model_, serve::ServeOptions{});
  ASSERT_TRUE(server.Register("match",
                  core::MakePlmSimpleMatchServable(model_, *class_names_)).ok());
  for (size_t d = 0; d < docs_->size(); ++d) {
    StatusOr<serve::Prediction> got = server.Serve("match", (*docs_)[d]);
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(got->scores.size(), class_reps.rows());
    for (size_t c = 0; c < class_reps.rows(); ++c) {
      const float want = panel.At(d, c);
      EXPECT_EQ(std::memcmp(&want, &got->scores[c], sizeof(float)), 0)
          << "doc " << d << " class " << c;
    }
  }
}

TEST_F(ServeTest, TaxoServableMatchesBatchRule) {
  // The TaxoClass adapter must reproduce the batch decision block: same
  // probabilities (row-count-invariant MLP forward), same leaf thresholds,
  // same ancestor closure.
  ServeGuard guard;
  taxonomy::LabelTree tree;
  const int root = tree.AddNode("root", -1);
  const int a = tree.AddNode("a", root);
  const int b = tree.AddNode("b", root);
  const int a1 = tree.AddNode("a1", a);
  const int a2 = tree.AddNode("a2", a);
  const int b1 = tree.AddNode("b1", b);
  (void)a1;
  (void)a2;
  (void)b1;
  const size_t num_nodes = tree.size();

  nn::FeatureMlpClassifier::Config clf_config;
  clf_config.input_dim = kVocab;
  clf_config.num_classes = num_nodes;
  clf_config.hidden = 16;
  clf_config.multi_label = true;
  clf_config.seed = 29;
  auto classifier = std::make_shared<nn::FeatureMlpClassifier>(clf_config);

  // Train briefly on random multi-label targets over bow features, then
  // compare the batch decision rule against the served one per doc.
  la::Matrix features(docs_->size(), kVocab);
  for (size_t d = 0; d < docs_->size(); ++d) {
    float total = 0.0f;
    float* row = features.Row(d);
    for (int32_t id : (*docs_)[d]) {
      if (id < text::kNumSpecialTokens) continue;
      row[id] += 1.0f;
      total += 1.0f;
    }
    if (total > 0.0f) {
      for (size_t j = 0; j < kVocab; ++j) row[j] /= total;
    }
  }
  Rng rng(31);
  la::Matrix targets(docs_->size(), num_nodes);
  for (size_t d = 0; d < docs_->size(); ++d) {
    const std::vector<int> leaves = tree.Leaves();
    const int leaf = leaves[rng.UniformInt(leaves.size())];
    for (int anc : tree.WithAncestors(leaf)) {
      targets.At(d, static_cast<size_t>(anc)) = 1.0f;
    }
  }
  for (int epoch = 0; epoch < 5; ++epoch) {
    classifier->TrainEpoch(features, targets);
  }

  const float threshold = 0.25f;
  const la::Matrix probs = classifier->PredictProbs(features);

  serve::Server server(model_, serve::ServeOptions{});
  ASSERT_TRUE(server.Register("taxo", std::make_shared<core::TaxoClassServable>(
                              "taxo", classifier, &tree, kVocab, threshold)).ok());
  for (size_t d = 0; d < docs_->size(); ++d) {
    // Batch rule, as in TaxoClass::Run.
    float best_leaf_prob = 0.0f;
    int best_leaf = tree.Leaves()[0];
    for (int leaf : tree.Leaves()) {
      const float p = probs.At(d, static_cast<size_t>(leaf));
      if (p > best_leaf_prob) {
        best_leaf_prob = p;
        best_leaf = leaf;
      }
    }
    std::vector<int> want;
    {
      std::set<int> predicted;
      for (int leaf : tree.Leaves()) {
        const float p = probs.At(d, static_cast<size_t>(leaf));
        if (p > threshold && p > 0.45f * best_leaf_prob) {
          for (int anc : tree.WithAncestors(leaf)) predicted.insert(anc);
        }
      }
      if (predicted.empty()) {
        for (int anc : tree.WithAncestors(best_leaf)) predicted.insert(anc);
      }
      want.assign(predicted.begin(), predicted.end());
    }

    StatusOr<serve::Prediction> got = server.Serve("taxo", (*docs_)[d]);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->label, best_leaf) << "doc " << d;
    EXPECT_EQ(got->labels, want) << "doc " << d;
    ASSERT_EQ(got->scores.size(), num_nodes);
    EXPECT_EQ(0, std::memcmp(got->scores.data(), probs.Row(d),
                             num_nodes * sizeof(float)))
        << "probs doc " << d;
  }
}

TEST_F(ServeTest, ConcurrentClientsBitIdentical) {
  // Several client threads hammering the server concurrently: every
  // result must still match the batch reference (exercised under TSan by
  // scripts/check.sh).
  ServeGuard guard;
  plm::SetQuantInference(0);
  const std::vector<int> want = BatchSimpleMatch();

  serve::ServeOptions options;
  options.max_batch = 8;
  options.deadline_ms = 1.0;
  options.workers = 3;
  serve::Server server(model_, options);
  ASSERT_TRUE(server.Register("match",
                  core::MakePlmSimpleMatchServable(model_, *class_names_)).ok());

  constexpr int kClients = 4;
  constexpr int kPerClient = 24;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      Rng rng(100 + static_cast<uint64_t>(t));
      for (int i = 0; i < kPerClient; ++i) {
        const size_t d = rng.UniformInt(docs_->size());
        StatusOr<serve::Prediction> got = server.Serve("match", (*docs_)[d]);
        if (!got.ok()) {
          ++failures;
        } else if (got->label != want[d]) {
          ++mismatches;
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(server.stats().completed,
            static_cast<uint64_t>(kClients * kPerClient));
}

// ---- admission control and failure behavior ----

TEST_F(ServeTest, QueueFullShedsWithUnavailable) {
  ServeGuard guard;
  auto blocking = std::make_shared<BlockingClassifier>();
  serve::ServeOptions options;
  options.max_batch = 1;
  options.deadline_ms = 0.0;
  options.queue_depth = 2;
  options.workers = 1;
  serve::Server server(model_, options);
  ASSERT_TRUE(server.Register("block", blocking).ok());

  const std::vector<int32_t> doc = {text::kNumSpecialTokens};
  // First request is drained immediately and parks inside Classify.
  auto parked = server.Submit("block", doc);
  blocking->AwaitEntered(1);
  // The next queue_depth requests fill the queue...
  std::vector<std::future<StatusOr<serve::Prediction>>> queued;
  for (size_t i = 0; i < options.queue_depth; ++i) {
    queued.push_back(server.Submit("block", doc));
  }
  // ...and everything beyond that is shed, immediately and non-fatally.
  for (int i = 0; i < 3; ++i) {
    StatusOr<serve::Prediction> shed = server.Submit("block", doc).get();
    ASSERT_FALSE(shed.ok());
    EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);
  }
  EXPECT_EQ(server.stats().shed, 3u);
  EXPECT_EQ(server.stats().max_queue, options.queue_depth);

  blocking->Release();
  EXPECT_TRUE(parked.get().ok());
  for (auto& future : queued) {
    EXPECT_TRUE(future.get().ok());
  }
  EXPECT_EQ(server.stats().completed, 1u + options.queue_depth);
}

TEST_F(ServeTest, InvalidRequestsAreStatusesNotCrashes) {
  ServeGuard guard;
  serve::Server server(model_, serve::ServeOptions{});
  ASSERT_TRUE(server.Register("match",
                  core::MakePlmSimpleMatchServable(model_, *class_names_)).ok());

  StatusOr<serve::Prediction> unknown =
      server.Serve("no-such-model", {text::kNumSpecialTokens});
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kInvalidArgument);

  // Hostile token ids must be rejected at admission, not abort a drain
  // worker inside Truncate.
  StatusOr<serve::Prediction> oov =
      server.Serve("match", {static_cast<int32_t>(kVocab) + 5});
  ASSERT_FALSE(oov.ok());
  EXPECT_EQ(oov.status().code(), StatusCode::kInvalidArgument);

  StatusOr<serve::Prediction> negative = server.Serve("match", {-3});
  ASSERT_FALSE(negative.ok());
  EXPECT_EQ(negative.status().code(), StatusCode::kInvalidArgument);

  EXPECT_EQ(server.stats().invalid, 3u);
  EXPECT_EQ(server.stats().completed, 0u);
}

TEST_F(ServeTest, ShutdownFailsQueuedAndRejectsNew) {
  ServeGuard guard;
  auto blocking = std::make_shared<BlockingClassifier>();
  serve::ServeOptions options;
  options.max_batch = 1;
  options.deadline_ms = 0.0;
  options.workers = 1;
  serve::Server server(model_, options);
  ASSERT_TRUE(server.Register("block", blocking).ok());

  const std::vector<int32_t> doc = {text::kNumSpecialTokens};
  auto parked = server.Submit("block", doc);
  blocking->AwaitEntered(1);
  auto queued = server.Submit("block", doc);

  // Shutdown from another thread: it fails the queued request right away
  // but can only join once the parked batch finishes.
  std::thread shutdown([&] { server.Shutdown(); });
  StatusOr<serve::Prediction> orphaned = queued.get();
  ASSERT_FALSE(orphaned.ok());
  EXPECT_EQ(orphaned.status().code(), StatusCode::kUnavailable);

  blocking->Release();
  shutdown.join();
  EXPECT_TRUE(parked.get().ok());

  StatusOr<serve::Prediction> late = server.Serve("block", doc);
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kUnavailable);
}

TEST_F(ServeTest, DeadlineCoalescesIntoSharedBatches) {
  ServeGuard guard;
  serve::ServeOptions options;
  options.max_batch = 64;
  options.deadline_ms = 50.0;
  options.workers = 1;
  serve::Server server(model_, options);
  ASSERT_TRUE(server.Register("match",
                  core::MakePlmSimpleMatchServable(model_, *class_names_)).ok());

  std::vector<std::future<StatusOr<serve::Prediction>>> futures;
  for (size_t d = 0; d < 8; ++d) {
    futures.push_back(server.Submit("match", (*docs_)[d]));
  }
  for (auto& future : futures) {
    EXPECT_TRUE(future.get().ok());
  }
  const serve::Server::Stats stats = server.stats();
  EXPECT_EQ(stats.completed, 8u);
  // Not all 8 can be asserted into ONE batch (the worker may drain the
  // first arrival before the rest are queued), but the deadline must have
  // coalesced at least some of them.
  EXPECT_LT(stats.batches, 8u);
  EXPECT_EQ(server.TakeLatenciesMs().size(), 8u);
  EXPECT_TRUE(server.TakeLatenciesMs().empty());  // drained destructively
}

// ---- overload resilience: deadlines, cancellation, faults, retry ----

TEST_F(ServeTest, RegisterAfterFirstSubmitIsRejected) {
  ServeGuard guard;
  serve::Server server(model_, serve::ServeOptions{});
  ASSERT_TRUE(server
                  .Register("match", core::MakePlmSimpleMatchServable(
                                         model_, *class_names_))
                  .ok());
  EXPECT_TRUE(server.Serve("match", (*docs_)[1]).ok());
  // The routing map is read unsynchronized once serving starts, so a late
  // Register must be refused, not raced.
  const Status late = server.Register(
      "late", core::MakePlmSimpleMatchServable(model_, *class_names_));
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.code(), StatusCode::kInvalidArgument);
  StatusOr<serve::Prediction> miss = server.Serve("late", (*docs_)[1]);
  ASSERT_FALSE(miss.ok());
  EXPECT_EQ(miss.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ServeTest, LatencyReservoirStaysBounded) {
  ServeGuard guard;
  serve::ServeOptions options;
  options.latency_reservoir = 8;
  serve::Server server(model_, options);
  ASSERT_TRUE(server
                  .Register("match", core::MakePlmSimpleMatchServable(
                                         model_, *class_names_))
                  .ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        server.Serve("match", (*docs_)[i % docs_->size()]).ok());
  }
  // 50 completions, but the reservoir holds exactly its capacity.
  const std::vector<double> sample = server.TakeLatenciesMs();
  EXPECT_EQ(sample.size(), 8u);
  for (const double ms : sample) EXPECT_GT(ms, 0.0);
  // Take resets the seen-counter too: the next completion is recorded as
  // if fresh, not thinned by the pre-Take history.
  ASSERT_TRUE(server.Serve("match", (*docs_)[0]).ok());
  EXPECT_EQ(server.TakeLatenciesMs().size(), 1u);
}

TEST_F(ServeTest, DeadlineExpiresInQueueWithoutReachingClassifier) {
  ServeGuard guard;
  auto blocking = std::make_shared<BlockingClassifier>();
  serve::ServeOptions options;
  options.max_batch = 1;
  options.deadline_ms = 0.0;
  options.workers = 1;
  serve::Server server(model_, options);
  ASSERT_TRUE(server.Register("block", blocking).ok());

  const std::vector<int32_t> doc = {text::kNumSpecialTokens};
  auto parked = server.Submit("block", doc);
  blocking->AwaitEntered(1);
  // Queued behind the parked batch with a 1 ms budget that will be long
  // gone by the time the worker drains again.
  serve::SubmitOptions tight;
  tight.deadline_ms = 1.0;
  auto doomed = server.Submit("block", doc, tight);
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  blocking->Release();

  StatusOr<serve::Prediction> result = doomed.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(parked.get().ok());
  const serve::Server::Stats stats = server.stats();
  EXPECT_EQ(stats.deadline_exceeded, 1u);
  EXPECT_EQ(stats.completed, 1u);
  // The expired request was failed at drain, cheaply: only the parked
  // request ever reached the classifier.
  EXPECT_EQ(blocking->entered(), 1);
}

TEST_F(ServeTest, CancellationDropsRequestAtDrain) {
  ServeGuard guard;
  auto blocking = std::make_shared<BlockingClassifier>();
  serve::ServeOptions options;
  options.max_batch = 1;
  options.deadline_ms = 0.0;
  options.workers = 1;
  serve::Server server(model_, options);
  ASSERT_TRUE(server.Register("block", blocking).ok());

  const std::vector<int32_t> doc = {text::kNumSpecialTokens};
  auto parked = server.Submit("block", doc);
  blocking->AwaitEntered(1);
  auto token = std::make_shared<serve::CancelToken>();
  serve::SubmitOptions cancellable;
  cancellable.cancel = token;
  auto doomed = server.Submit("block", doc, cancellable);
  token->Cancel();
  blocking->Release();

  StatusOr<serve::Prediction> result = doomed.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_TRUE(parked.get().ok());
  const serve::Server::Stats stats = server.stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(blocking->entered(), 1);
}

TEST_F(ServeTest, DeadlineAwareCloseRunsBatchBeforeFillDeadline) {
  ServeGuard guard;
  plm::SetQuantInference(0);
  serve::ServeOptions options;
  options.max_batch = 64;
  options.deadline_ms = 1000.0;  // a lone request would wait a full second
  options.workers = 1;
  serve::Server server(model_, options);
  ASSERT_TRUE(server
                  .Register("match", core::MakePlmSimpleMatchServable(
                                         model_, *class_names_))
                  .ok());

  // A 30 ms per-request deadline must close the batch early: waiting out
  // the 1 s fill window could only convert the request into a miss.
  serve::SubmitOptions tight;
  tight.deadline_ms = 30.0;
  const auto start = std::chrono::steady_clock::now();
  auto future = server.Submit("match", (*docs_)[1], tight);
  ASSERT_EQ(future.wait_for(std::chrono::milliseconds(900)),
            std::future_status::ready)
      << "batch waited out the fill deadline despite a tight request "
         "deadline";
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(elapsed_ms, 900.0);
  // Under normal scheduling the request also completes in time.
  StatusOr<serve::Prediction> result = future.get();
  if (result.ok()) {
    EXPECT_EQ(result->label, BatchSimpleMatch()[1]);
  } else {
    EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  }
}

TEST_F(ServeTest, ThrowingClassifierFailsRequestNotProcess) {
  ServeGuard guard;
  plm::SetQuantInference(0);
  auto fault = std::make_shared<serve::FaultInjectingClassifier>(
      core::MakePlmSimpleMatchServable(model_, *class_names_));
  serve::ServeOptions options;
  options.workers = 1;
  serve::Server server(model_, options);
  ASSERT_TRUE(server.Register("match", fault).ok());

  fault->ThrowNext(1);
  StatusOr<serve::Prediction> failed = server.Serve("match", (*docs_)[1]);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);
  // The status names the offender so operators can find it.
  EXPECT_NE(failed.status().ToString().find("plm-simple-match"),
            std::string::npos);

  // The drain worker survived: the next request gets the reference answer.
  StatusOr<serve::Prediction> ok = server.Serve("match", (*docs_)[1]);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->label, BatchSimpleMatch()[1]);
  const serve::Server::Stats stats = server.stats();
  EXPECT_EQ(stats.failed_requests, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(fault->injected_throws(), 1u);
}

TEST_F(ServeTest, ServeWithRetryNeverRetriesInvalidArgument) {
  ServeGuard guard;
  serve::Server server(model_, serve::ServeOptions{});
  ASSERT_TRUE(server
                  .Register("match", core::MakePlmSimpleMatchServable(
                                         model_, *class_names_))
                  .ok());
  RetryOptions retry;
  retry.max_attempts = 5;
  retry.initial_backoff_ms = 1;
  StatusOr<serve::Prediction> bad = serve::ServeWithRetry(
      server, "no-such-model", {text::kNumSpecialTokens}, {}, retry);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  // Exactly ONE attempt: resending a malformed request can never help.
  EXPECT_EQ(server.stats().invalid, 1u);
}

TEST_F(ServeTest, ServeWithRetryRetriesShedsThenGivesUp) {
  ServeGuard guard;
  auto blocking = std::make_shared<BlockingClassifier>();
  serve::ServeOptions options;
  options.max_batch = 1;
  options.deadline_ms = 0.0;
  options.queue_depth = 1;
  options.workers = 1;
  serve::Server server(model_, options);
  ASSERT_TRUE(server.Register("block", blocking).ok());

  const std::vector<int32_t> doc = {text::kNumSpecialTokens};
  auto parked = server.Submit("block", doc);
  blocking->AwaitEntered(1);
  auto queued = server.Submit("block", doc);  // fills the queue

  RetryOptions retry;
  retry.max_attempts = 3;
  retry.initial_backoff_ms = 1;
  StatusOr<serve::Prediction> shed =
      serve::ServeWithRetry(server, "block", doc, {}, retry);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);
  // kUnavailable IS retried: all three attempts were shed.
  EXPECT_EQ(server.stats().shed, 3u);

  blocking->Release();
  EXPECT_TRUE(parked.get().ok());
  EXPECT_TRUE(queued.get().ok());
}

TEST_F(ServeTest, ServeWithRetrySucceedsWhenPressureClears) {
  ServeGuard guard;
  auto blocking = std::make_shared<BlockingClassifier>();
  serve::ServeOptions options;
  options.max_batch = 1;
  options.deadline_ms = 0.0;
  options.queue_depth = 1;
  options.workers = 1;
  serve::Server server(model_, options);
  ASSERT_TRUE(server.Register("block", blocking).ok());

  const std::vector<int32_t> doc = {text::kNumSpecialTokens};
  auto parked = server.Submit("block", doc);
  blocking->AwaitEntered(1);
  auto queued = server.Submit("block", doc);

  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    blocking->Release();
  });
  RetryOptions retry;
  retry.max_attempts = 20;
  retry.initial_backoff_ms = 2;
  StatusOr<serve::Prediction> result =
      serve::ServeWithRetry(server, "block", doc, {}, retry);
  releaser.join();
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(parked.get().ok());
  EXPECT_TRUE(queued.get().ok());
  // At least one shed happened before the backoff rode out the overload.
  EXPECT_GE(server.stats().shed, 1u);
}

TEST_F(ServeTest, HealthSnapshotTracksLifecycle) {
  ServeGuard guard;
  serve::Server server(model_, serve::ServeOptions{});
  ASSERT_TRUE(server
                  .Register("match", core::MakePlmSimpleMatchServable(
                                         model_, *class_names_))
                  .ok());
  serve::Server::Health before = server.health();
  EXPECT_TRUE(before.ready);
  EXPECT_EQ(before.tier, serve::DegradeTier::kFull);
  EXPECT_EQ(before.stuck_workers, 0u);
  EXPECT_EQ(before.shed_rate, 0.0);

  ASSERT_TRUE(server.Serve("match", (*docs_)[1]).ok());
  serve::Server::Health mid = server.health();
  EXPECT_TRUE(mid.ready);
  EXPECT_GT(mid.ewma_batch_ms, 0.0);

  server.Shutdown();
  serve::Server::Health after = server.health();
  EXPECT_FALSE(after.ready);
}

TEST_F(ServeTest, DestructorShutsDownCleanly) {
  ServeGuard guard;
  for (int i = 0; i < 3; ++i) {
    serve::Server server(model_, serve::ServeOptions{});
    ASSERT_TRUE(server.Register("match",
                    core::MakePlmSimpleMatchServable(model_, *class_names_)).ok());
    EXPECT_TRUE(server.Serve("match", (*docs_)[1]).ok());
    // ~Server joins the workers with no explicit Shutdown call.
  }
}

}  // namespace
}  // namespace stm
