// E11 — MICoL results table (WWW'22).
//
// Zero-shot multi-label ranking on MAG-CS-like and PubMed-like corpora
// with venue/author/reference metadata and label descriptions.
// Rows: zero-shot baselines (Doc2Vec, the plain pre-trained encoder
// standing in for SciBERT, ZeroShot-Entail, EDA/UDA text-contrastive),
// four MICoL variants (Bi/Cross encoder x two meta-paths), and the
// supervised MATCH-like classifier at increasing label budgets.
//
// Expected shape (paper): MICoL > all zero-shot baselines; the supervised
// model crosses MICoL only once its label budget grows large.

#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/thread_pool.h"
#include "core/micol.h"
#include "core/taxoclass.h"
#include "embedding/sgns.h"
#include "eval/metrics.h"
#include "graph/hin.h"
#include "nn/feature_classifier.h"
#include "text/tokenizer.h"

namespace stm {
namespace {

struct Entry {
  std::string name;
  datasets::SyntheticDataset data;
  std::vector<std::vector<int32_t>> label_texts;  // per leaf
  std::vector<std::vector<int>> gold;             // leaf indices
};

Entry MakeEntry(const std::string& name, datasets::SyntheticSpec spec) {
  spec.num_docs = 300;
  spec.pretrain_docs = 900;
  Entry entry;
  entry.name = name;
  entry.data = datasets::Generate(spec);
  for (size_t l = 0; l < entry.data.leaf_classes.size(); ++l) {
    entry.label_texts.push_back(text::Tokenizer::Encode(
        entry.data.label_descriptions[l], entry.data.corpus.vocab()));
  }
  entry.gold.resize(entry.data.corpus.num_docs());
  for (size_t d = 0; d < entry.data.corpus.num_docs(); ++d) {
    for (int label : entry.data.corpus.docs()[d].labels) {
      const auto it =
          std::find(entry.data.leaf_classes.begin(),
                    entry.data.leaf_classes.end(), label);
      if (it != entry.data.leaf_classes.end()) {
        entry.gold[d].push_back(
            static_cast<int>(it - entry.data.leaf_classes.begin()));
      }
    }
  }
  return entry;
}

// Every row is scored on the held-out tail of the corpus (the supervised
// MATCH rows train on a prefix, so the tail keeps the comparison fair).
constexpr size_t kEvalFrom = 200;

std::vector<double> RankScores(const std::vector<std::vector<int>>& ranked,
                               const std::vector<std::vector<int>>& gold) {
  const std::vector<std::vector<int>> r(ranked.begin() + kEvalFrom,
                                        ranked.end());
  const std::vector<std::vector<int>> g(gold.begin() + kEvalFrom,
                                        gold.end());
  return {eval::PrecisionAtK(r, g, 1), eval::PrecisionAtK(r, g, 3),
          eval::PrecisionAtK(r, g, 5), eval::NdcgAtK(r, g, 3),
          eval::NdcgAtK(r, g, 5)};
}

// Ranks labels for every doc by cosine between row vectors.
std::vector<std::vector<int>> RankByMatrix(const la::Matrix& docs,
                                           const la::Matrix& labels) {
  std::vector<std::vector<int>> ranked(docs.rows());
  for (size_t d = 0; d < docs.rows(); ++d) {
    std::vector<std::pair<float, int>> scored;
    for (size_t l = 0; l < labels.rows(); ++l) {
      scored.emplace_back(
          la::Cosine(docs.Row(d), labels.Row(l), docs.cols()),
          static_cast<int>(l));
    }
    std::sort(scored.rbegin(), scored.rend());
    for (const auto& [s, label] : scored) ranked[d].push_back(label);
  }
  return ranked;
}

}  // namespace

int Main() {
  std::vector<Entry> entries;
  entries.push_back(MakeEntry("MAG-CS", datasets::MagCsSpec(181)));
  entries.push_back(MakeEntry("PubMed", datasets::PubMedSpec(182)));

  const std::vector<std::string> metric_names = {"P@1", "P@3", "P@5",
                                                 "N@3", "N@5"};
  for (Entry& entry : entries) {
    bench::Progress(entry.name);
    bench::Table table("E11 MICoL — " + entry.name +
                           " (zero-shot label ranking)",
                       metric_names);
    const auto& corpus = entry.data.corpus;
    const size_t num_docs = corpus.num_docs();
    const size_t num_labels = entry.label_texts.size();

    // ---- Doc2Vec baseline: joint doc+label-text embedding space. ----
    {
      std::vector<std::vector<int32_t>> all;
      for (const auto& doc : corpus.docs()) all.push_back(doc.tokens);
      for (const auto& text : entry.label_texts) all.push_back(text);
      embedding::DocEmbeddingConfig config;
      config.seed = 191;
      const la::Matrix emb = embedding::TrainDocEmbeddings(
          all, corpus.vocab().size(), config);
      la::Matrix docs(num_docs, emb.cols());
      la::Matrix labels(num_labels, emb.cols());
      for (size_t d = 0; d < num_docs; ++d) {
        docs.SetRow(d, emb.RowVec(d));
      }
      for (size_t l = 0; l < num_labels; ++l) {
        labels.SetRow(l, emb.RowVec(num_docs + l));
      }
      table.AddRow("Doc2Vec",
                   RankScores(RankByMatrix(docs, labels), entry.gold));
    }

    // ---- Plain encoder ("SciBERT") + MICoL variants. Each variant that
    //      fine-tunes gets a fresh encoder instance from the cache. ----
    {
      auto model = bench::PretrainedLm(entry.data);
      core::MicolConfig config;
      core::Micol micol(corpus, model.get(), config);
      table.AddRow("Encoder 0-shot (SciBERT)",
                   RankScores(micol.RankByBiEncoder(entry.label_texts),
                              entry.gold));
    }
    {
      // ZeroShot-Entail: the aux-topic relevance model applied to
      // (doc evidence, label description rep).
      auto model = bench::PretrainedLm(entry.data);
      auto relevance = core::TrainRelevanceModel(
          model.get(), entry.data.aux_docs, entry.data.aux_labels,
          entry.data.aux_topic_name_tokens, 192);
      std::vector<std::vector<int32_t>> corpus_tokens;
      for (const auto& doc : corpus.docs()) {
        corpus_tokens.push_back(doc.tokens);
      }
      const la::Matrix label_rep_rows = model->PoolBatch(entry.label_texts);
      std::vector<std::vector<float>> label_reps(num_labels);
      for (size_t l = 0; l < num_labels; ++l) {
        label_reps[l] = label_rep_rows.RowVec(l);
      }
      // Documents score independently (encoder and relevance model are
      // read-only here), so the loop parallelizes without reordering.
      std::vector<std::vector<int>> ranked(num_docs);
      stm::ParallelFor(0, num_docs, 1, [&](size_t begin, size_t end) {
        for (size_t d = begin; d < end; ++d) {
          const la::Matrix hidden = model->Encode(corpus_tokens[d]);
          std::vector<std::pair<float, int>> scored;
          for (size_t l = 0; l < num_labels; ++l) {
            const auto evidence =
                core::TopTokenContext(hidden, label_reps[l]);
            scored.emplace_back(relevance->Score(evidence, label_reps[l]),
                                static_cast<int>(l));
          }
          std::sort(scored.rbegin(), scored.rend());
          for (const auto& [s, label] : scored) ranked[d].push_back(label);
        }
      });
      table.AddRow("ZeroShot-Entail", RankScores(ranked, entry.gold));
    }

    // Text-based contrastive baselines: positive pairs are
    // (document, augmented document) instead of metadata-linked pairs.
    // The augmented copies are appended to a working corpus so the same
    // contrastive trainer runs unchanged.
    const std::vector<int64_t> counts = corpus.TokenCounts();
    std::vector<double> unigram(counts.begin(), counts.end());
    for (size_t i = 0; i < text::kNumSpecialTokens; ++i) unigram[i] = 0.0;
    for (const bool use_uda : {false, true}) {
      Rng rng(use_uda ? 194 : 195);
      text::Corpus augmented;
      augmented.vocab() = corpus.vocab();
      augmented.label_names() = corpus.label_names();
      augmented.docs() = corpus.docs();
      std::vector<std::pair<size_t, size_t>> pairs;
      for (size_t d = 0; d < num_docs; ++d) {
        text::Document copy = corpus.docs()[d];
        copy.tokens = use_uda
                          ? core::AugmentUda(copy.tokens, unigram, rng)
                          : core::AugmentEda(copy.tokens, rng);
        augmented.docs().push_back(std::move(copy));
        pairs.emplace_back(d, num_docs + d);
      }
      rng.Shuffle(pairs);
      pairs.resize(std::min<size_t>(pairs.size(), 250));
      auto model = bench::PretrainedLm(entry.data);
      core::MicolConfig config;
      config.seed = 193;
      core::Micol micol(augmented, model.get(), config);
      micol.FineTuneBiEncoder(pairs);
      auto ranked = micol.RankByBiEncoder(entry.label_texts);
      ranked.resize(num_docs);  // drop the augmented copies
      table.AddRow(use_uda ? "UDA (augment contrastive)"
                           : "EDA (augment contrastive)",
                   RankScores(ranked, entry.gold));
    }

    // ---- MICoL variants. ----
    for (const char* metapath : {"P->P<-P", "P<-(PP)->P"}) {
      const auto pairs = graph::MinePairs(corpus, metapath, 400, 195);
      {
        auto model = bench::PretrainedLm(entry.data);
        core::MicolConfig config;
        config.seed = 196;
        core::Micol micol(corpus, model.get(), config);
        micol.FineTuneBiEncoder(pairs);
        table.AddRow(std::string("MICoL (Bi-Encoder, ") + metapath + ")",
                     RankScores(micol.RankByBiEncoder(entry.label_texts),
                                entry.gold));
      }
      {
        // Cross-Encoder: a scoring head trained on the metadata pairs over
        // the contrastively fine-tuned encoder (the paper fine-tunes a
        // full cross-attention model; the tuned-encoder + pair head is our
        // scaled-down equivalent).
        auto model = bench::PretrainedLm(entry.data);
        core::MicolConfig config;
        config.seed = 197;
        core::Micol micol(corpus, model.get(), config);
        micol.FineTuneBiEncoder(pairs);
        auto scorer = micol.TrainCrossEncoder(pairs);
        table.AddRow(
            std::string("MICoL (Cross-Encoder, ") + metapath + ")",
            RankScores(
                micol.RankByCrossEncoder(scorer.get(), entry.label_texts),
                entry.gold));
      }
    }

    // ---- Supervised MATCH-like at increasing training budgets. ----
    table.AddSeparator();
    const size_t vocab_size = corpus.vocab().size();
    la::Matrix features(num_docs, vocab_size);
    for (size_t d = 0; d < num_docs; ++d) {
      float total = 0.0f;
      float* row = features.Row(d);
      for (int32_t id : corpus.docs()[d].tokens) {
        if (id < text::kNumSpecialTokens) continue;
        row[id] += 1.0f;
        total += 1.0f;
      }
      if (total > 0.0f) {
        for (size_t j = 0; j < vocab_size; ++j) row[j] /= total;
      }
    }
    for (size_t budget : {30u, 80u, 140u, 200u}) {
      nn::FeatureMlpClassifier::Config config;
      config.input_dim = vocab_size;
      config.num_classes = num_labels;
      config.hidden = 64;
      config.multi_label = true;
      config.seed = 198;
      nn::FeatureMlpClassifier classifier(config);
      la::Matrix train_x(budget, vocab_size);
      la::Matrix train_y(budget, num_labels);
      for (size_t i = 0; i < budget; ++i) {
        train_x.SetRow(i, features.RowVec(i));
        for (int label : entry.gold[i]) {
          train_y.At(i, static_cast<size_t>(label)) = 1.0f;
        }
      }
      for (int epoch = 0; epoch < 25; ++epoch) {
        classifier.TrainEpoch(train_x, train_y);
      }
      const la::Matrix probs = classifier.PredictProbs(features);
      std::vector<std::vector<int>> ranked(num_docs);
      for (size_t d = 0; d < num_docs; ++d) {
        std::vector<std::pair<float, int>> scored;
        for (size_t l = 0; l < num_labels; ++l) {
          scored.emplace_back(probs.At(d, l), static_cast<int>(l));
        }
        std::sort(scored.rbegin(), scored.rend());
        for (const auto& [p, label] : scored) ranked[d].push_back(label);
      }
      table.AddRow("MATCH (" + std::to_string(budget) + " labeled)",
                   RankScores(ranked, entry.gold));
    }
    table.Print();
  }
  return 0;
}

}  // namespace stm

int main() { return stm::Main(); }
