#include "core/weshclass.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/check.h"
#include "core/pseudo_docs.h"
#include "nn/text_classifier.h"
#include "text/vocabulary.h"

namespace stm::core {

namespace {

std::vector<std::vector<int32_t>> CorpusTokens(const text::Corpus& corpus) {
  std::vector<std::vector<int32_t>> docs;
  docs.reserve(corpus.num_docs());
  for (const auto& doc : corpus.docs()) docs.push_back(doc.tokens);
  return docs;
}

}  // namespace

WeshClass::WeshClass(const text::Corpus& corpus,
                     const taxonomy::LabelTree& tree,
                     std::vector<std::vector<int32_t>> keywords,
                     const WeshClassConfig& config)
    : corpus_(corpus),
      tree_(tree),
      keywords_(std::move(keywords)),
      config_(config) {
  STM_CHECK_EQ(keywords_.size(), tree.size());
}

std::vector<int> WeshClass::LeafOf(
    const std::vector<std::vector<int>>& paths) {
  std::vector<int> leaves;
  leaves.reserve(paths.size());
  for (const auto& path : paths) {
    STM_CHECK(!path.empty());
    leaves.push_back(path.back());
  }
  return leaves;
}

std::vector<std::vector<int>> WeshClass::Run() {
  const std::vector<std::vector<int32_t>> docs = CorpusTokens(corpus_);
  Rng rng(config_.seed);

  // Shared substrate: corpus embeddings + background distribution. The
  // streaming Train overload reads documents through the CorpusReader
  // interface (bit-identical to the in-RAM token-list overload).
  embedding::SgnsConfig sgns;
  sgns.seed = config_.seed;
  auto trained = embedding::WordEmbeddings::Train(corpus_, sgns);
  STM_CHECK(trained.ok()) << trained.status().message();
  const embedding::WordEmbeddings embeddings = std::move(trained).value();
  std::vector<double> background(corpus_.vocab().size(), 0.0);
  {
    const std::vector<int64_t> counts = corpus_.TokenCounts();
    for (size_t i = text::kNumSpecialTokens; i < counts.size(); ++i) {
      background[i] = static_cast<double>(counts[i]);
    }
  }
  PseudoDocOptions pseudo_options;
  pseudo_options.docs_per_class = config_.pseudo_docs_per_class;
  pseudo_options.doc_len = config_.pseudo_doc_len;
  pseudo_options.background_alpha = config_.background_alpha;
  pseudo_options.enable_vmf = config_.enable_vmf;
  const PseudoDocGenerator generator(&embeddings, background,
                                     pseudo_options);

  // Node seeds: own keywords + descendants' keywords (so internal nodes
  // cover their subtree's vocabulary).
  std::vector<std::vector<int32_t>> node_seeds(tree_.size());
  for (size_t node = 0; node < tree_.size(); ++node) {
    node_seeds[node] = keywords_[node];
  }
  for (size_t node = 0; node < tree_.size(); ++node) {
    int current = tree_.ParentOf(static_cast<int>(node));
    while (current != -1) {
      node_seeds[static_cast<size_t>(current)].insert(
          node_seeds[static_cast<size_t>(current)].end(),
          keywords_[node].begin(), keywords_[node].end());
      current = tree_.ParentOf(current);
    }
  }
  // Expand thin seed sets via embedding neighborhoods.
  for (auto& seeds : node_seeds) {
    std::sort(seeds.begin(), seeds.end());
    seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());
    if (!seeds.empty() && seeds.size() < config_.expanded_seeds) {
      const std::vector<float> center = embeddings.AverageOf(seeds);
      for (const auto& [id, _] : embeddings.MostSimilar(
               center, config_.expanded_seeds - seeds.size(), seeds)) {
        seeds.push_back(id);
      }
    }
  }

  // Trains a local WeSTClass-style classifier over a sibling group.
  auto train_local =
      [&](const std::vector<int>& group,
          uint64_t seed) -> std::unique_ptr<nn::TextClassifier> {
    nn::ClassifierConfig clf_config;
    clf_config.vocab_size = corpus_.vocab().size();
    clf_config.num_classes = group.size();
    clf_config.seed = seed;
    auto classifier = nn::MakeClassifier(config_.classifier, clf_config);
    std::vector<std::vector<int32_t>> pseudo_docs;
    std::vector<float> targets;
    for (size_t c = 0; c < group.size(); ++c) {
      const auto generated =
          generator.Generate(node_seeds[static_cast<size_t>(group[c])], rng);
      for (const auto& doc : generated) {
        pseudo_docs.push_back(doc);
        for (size_t j = 0; j < group.size(); ++j) {
          const float off =
              config_.label_smoothing / static_cast<float>(group.size());
          targets.push_back(j == c ? 1.0f - config_.label_smoothing + off
                                   : off);
        }
      }
    }
    for (int epoch = 0; epoch < config_.pretrain_epochs; ++epoch) {
      classifier->TrainEpoch(pseudo_docs, targets);
    }
    return classifier;
  };

  // ---- level-wise top-down classification ----
  const int max_depth = tree_.MaxDepth();
  // Global log-probability of each node per doc (built level by level).
  la::Matrix node_logp(corpus_.num_docs(), tree_.size());
  node_logp.Fill(0.0f);
  std::vector<std::vector<int>> paths(corpus_.num_docs());

  // Virtual root group = depth-0 nodes; then every internal node's
  // children.
  for (int depth = 0; depth <= max_depth; ++depth) {
    // Sibling groups whose members live at `depth`.
    std::vector<std::vector<int>> groups;
    std::vector<int> group_parent;  // -1 for the virtual root group
    if (depth == 0) {
      groups.push_back(tree_.Roots());
      group_parent.push_back(-1);
    } else {
      for (int node : tree_.NodesAtDepth(depth - 1)) {
        if (!tree_.IsLeaf(node)) {
          groups.push_back(tree_.ChildrenOf(node));
          group_parent.push_back(node);
        }
      }
    }

    for (size_t g = 0; g < groups.size(); ++g) {
      const std::vector<int>& group = groups[g];
      if (group.empty()) continue;
      auto classifier = train_local(
          group, config_.seed + static_cast<uint64_t>(depth * 131 + g));

      // Self-training uses only the docs routed to this group (current
      // path ends at the group's parent); prediction covers the whole
      // corpus so the global ensemble can revise earlier levels.
      std::vector<std::vector<int32_t>> routed_docs;
      for (size_t d = 0; d < corpus_.num_docs(); ++d) {
        if (group_parent[g] == -1 ||
            (!paths[d].empty() && paths[d].back() == group_parent[g])) {
          routed_docs.push_back(docs[d]);
        }
      }
      if (config_.enable_self_training && !routed_docs.empty()) {
        SelfTrain(*classifier, routed_docs, config_.self_train);
      }
      const la::Matrix probs = classifier->PredictProbs(docs);
      for (size_t d = 0; d < corpus_.num_docs(); ++d) {
        const float parent_logp =
            group_parent[g] == -1
                ? 0.0f
                : node_logp.At(d, static_cast<size_t>(group_parent[g]));
        for (size_t c = 0; c < group.size(); ++c) {
          node_logp.At(d, static_cast<size_t>(group[c])) =
              parent_logp + std::log(probs.At(d, c) + 1e-9f);
        }
      }
    }

    // Assign each doc its depth-level node.
    //  * Global ensemble: argmax of accumulated path log-probability over
    //    ALL nodes at this depth (can revise earlier-level mistakes).
    //  * No-global ablation: greedy descent — argmax of the local
    //    conditional among the children of the previously chosen node.
    const std::vector<int> level_nodes = tree_.NodesAtDepth(depth);
    for (size_t d = 0; d < corpus_.num_docs(); ++d) {
      std::vector<int> candidates;
      if (config_.enable_global || depth == 0) {
        candidates = level_nodes;
      } else {
        const int parent = paths[d].back();
        if (tree_.IsLeaf(parent)) continue;  // path already terminated
        candidates = tree_.ChildrenOf(parent);
      }
      if (candidates.empty()) continue;
      int best = candidates[0];
      for (int node : candidates) {
        if (node_logp.At(d, static_cast<size_t>(node)) >
            node_logp.At(d, static_cast<size_t>(best))) {
          best = node;
        }
      }
      paths[d] = tree_.PathTo(best);
    }
  }
  return paths;
}

}  // namespace stm::core
