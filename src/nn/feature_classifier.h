#ifndef STM_NN_FEATURE_CLASSIFIER_H_
#define STM_NN_FEATURE_CLASSIFIER_H_

#include <memory>
#include <vector>

#include "la/matrix.h"
#include "nn/layers.h"
#include "nn/optimizer.h"

namespace stm::nn {

// MLP over pre-computed dense feature vectors. Two output modes:
//  * softmax (single-label, trained with soft cross entropy)
//  * sigmoid (multi-label, trained with BCE against 0/1 indicator rows)
// Used by MetaCat (bow + HIN embedding features), TaxoClass's multi-label
// document classifier, and the supervised MATCH-like baseline in E11.
class FeatureMlpClassifier {
 public:
  struct Config {
    size_t input_dim = 0;
    size_t num_classes = 0;
    size_t hidden = 64;     // 0 = linear model
    float lr = 5e-3f;
    float dropout = 0.0f;
    size_t batch_size = 32;
    bool multi_label = false;  // sigmoid + BCE when true
    uint64_t seed = 23;
  };

  explicit FeatureMlpClassifier(const Config& config);

  // One epoch over rows of `features` [n, input_dim] with row-targets
  // [n, num_classes] (soft probabilities or multi-label indicators).
  double TrainEpoch(const la::Matrix& features, const la::Matrix& targets);

  // Probabilities [n, num_classes]: softmax rows or independent sigmoids.
  la::Matrix PredictProbs(const la::Matrix& features);

  // Argmax per row.
  std::vector<int> Predict(const la::Matrix& features);

 private:
  Tensor Logits(const la::Matrix& features, const std::vector<size_t>& rows,
                bool training);

  Config config_;
  Rng rng_;
  ParameterStore store_;
  std::unique_ptr<Linear> hidden_;
  std::unique_ptr<Linear> out_;
  std::unique_ptr<AdamOptimizer> optimizer_;
};

}  // namespace stm::nn

#endif  // STM_NN_FEATURE_CLASSIFIER_H_
