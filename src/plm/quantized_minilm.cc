#include "plm/quantized_minilm.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/env_parse.h"
#include "common/serialize.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "la/workspace.h"
#include "nn/infer_ops.h"
#include "plm/batch_scheduler.h"
#include "text/vocabulary.h"

namespace stm::plm {

namespace {

constexpr uint32_t kQuantModelMagic = 0x53544D51;  // "STMQ"
constexpr uint32_t kQuantFormatVersion = 1;
constexpr float kLayerNormEps = 1e-5f;  // must match nn::LayerNorm

std::atomic<int> g_quant_override{-1};

// Thread-local override layered above the process-wide switch; -1 means
// "not overridden on this thread". Plain int: only ever touched from the
// owning thread.
thread_local int t_quant_override = -1;

bool EnvQuantEnabled() {
  // Parsed once; the switch is process-wide so every call site (at any
  // thread count) takes the same path. A token that is not a boolean
  // (e.g. STM_QUANT=int8) warns and keeps fp32 instead of silently
  // enabling quantization.
  static const bool enabled = ParseBoolEnv("STM_QUANT", false);
  return enabled;
}

}  // namespace

bool QuantInferenceEnabled() {
  if (t_quant_override >= 0) return t_quant_override != 0;
  const int mode = g_quant_override.load(std::memory_order_relaxed);
  if (mode >= 0) return mode != 0;
  return EnvQuantEnabled();
}

void SetQuantInference(int mode) {
  g_quant_override.store(mode < 0 ? -1 : (mode != 0 ? 1 : 0),
                         std::memory_order_relaxed);
}

ScopedQuantOverride::ScopedQuantOverride(bool enable)
    : prev_(t_quant_override) {
  t_quant_override = enable ? 1 : 0;
}

ScopedQuantOverride::~ScopedQuantOverride() { t_quant_override = prev_; }

std::vector<int32_t> QuantizedMiniLm::Truncate(
    const std::vector<int32_t>& ids) const {
  // Mirrors MiniLm::Truncate so both paths see identical inputs.
  std::vector<int32_t> out = ids;
  if (out.size() > config_.max_seq) out.resize(config_.max_seq);
  if (out.empty()) out.push_back(text::kPadId);
  for (int32_t id : out) {
    STM_CHECK_GE(id, 0);
    STM_CHECK_LT(static_cast<size_t>(id), config_.vocab_size);
  }
  return out;
}

void QuantizedMiniLm::ApplyQuantLinear(const float* x, size_t rows,
                                       const QuantLinear& w, float* out) {
  const size_t n = w.weight.n;
  std::fill(out, out + rows * n, 0.0f);
  la::Int8GemmAcc(x, rows, w.weight, out);
  nn::AddBiasRows(out, rows, n, w.bias.data());
}

namespace {

// Row-chunked LayerNormRows: per-row math, so chunking is value-neutral
// and the chunk decomposition is the deterministic ParallelFor one.
void LayerNormRowsParallel(const float* x, size_t rows, size_t d,
                           const std::vector<float>& gamma,
                           const std::vector<float>& beta, float* out) {
  ParallelFor(0, rows, GrainForOps(8 * d), [&](size_t r0, size_t r1) {
    nn::LayerNormRows(x + r0 * d, r1 - r0, d, gamma.data(), beta.data(),
                      kLayerNormEps, out + r0 * d);
  });
}

// y[i] += x[i], chunked. Elementwise, so chunking is value-neutral.
void AddInplaceParallel(float* y, const float* x, size_t n) {
  ParallelFor(0, n, GrainForOps(2), [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) y[i] += x[i];
  });
}

}  // namespace

void QuantizedMiniLm::ForwardBucket(const int32_t* flat, size_t count,
                                    size_t seq,
                                    const std::vector<int>& lengths,
                                    float* out) const {
  const size_t R = count * seq;
  const size_t d = config_.dim;
  const size_t h = config_.heads;
  const size_t dh = d / h;
  const size_t f = config_.ffn_dim;
  const float att_scale = 1.0f / std::sqrt(static_cast<float>(dh));

  // Token + position embeddings (fp32, exact). Pad rows get real kPadId
  // embeddings — finite, deterministic values that flow through the
  // row-local projections but are never read by attention or the caller.
  std::vector<float> x = la::AcquireVec(R * d);
  ParallelFor(0, R, GrainForOps(2 * d), [&](size_t r0, size_t r1) {
    for (size_t r = r0; r < r1; ++r) {
      const float* tok =
          token_table_.data() + static_cast<size_t>(flat[r]) * d;
      const float* pos = pos_table_.data() + (r % seq) * d;
      float* row = x.data() + r * d;
      for (size_t j = 0; j < d; ++j) row[j] = tok[j] + pos[j];
    }
  });

  std::vector<float> normed = la::AcquireVec(R * d);
  std::vector<float> qkv = la::AcquireVec(R * 3 * d);
  // Zeroed once: attention only writes rows t < len, so pad rows stay an
  // exact 0.0 across layers instead of uninitialized bytes.
  std::vector<float> merged = la::AcquireZeroedVec(R * d);
  std::vector<float> proj = la::AcquireVec(R * d);
  std::vector<float> ffn = la::AcquireVec(R * f);

  for (const QuantLayer& layer : layers_) {
    // ---- attention sublayer (pre-LN) ----
    LayerNormRowsParallel(x.data(), R, d, layer.ln1_gamma, layer.ln1_beta,
                          normed.data());
    ApplyQuantLinear(normed.data(), R, layer.qkv, qkv.data());
    // Per-document, per-head fp32 attention at the document's exact
    // length: no additive mask needed, and the GEMM extents match the
    // per-document call bit-for-bit regardless of bucket composition.
    ParallelFor(
        0, count, GrainForOps(2 * h * seq * seq * dh),
        [&](size_t b0, size_t b1) {
          for (size_t b = b0; b < b1; ++b) {
            const size_t len = static_cast<size_t>(lengths[b]);
            const size_t base = b * seq;
            std::vector<float> qh = la::AcquireVec(len * dh);
            std::vector<float> kh = la::AcquireVec(len * dh);
            std::vector<float> vh = la::AcquireVec(len * dh);
            std::vector<float> ctx = la::AcquireVec(len * dh);
            for (size_t head = 0; head < h; ++head) {
              const size_t off = head * dh;
              for (size_t t = 0; t < len; ++t) {
                const float* row = qkv.data() + (base + t) * 3 * d;
                for (size_t j = 0; j < dh; ++j) {
                  qh[t * dh + j] = row[off + j];
                  kh[t * dh + j] = row[d + off + j];
                  vh[t * dh + j] = row[2 * d + off + j];
                }
              }
              // Query-strip tiled attention: O(strip * len) score
              // workspace instead of len x len, same bits (see
              // nn/infer_ops.h).
              nn::TiledAttentionHead(qh.data(), kh.data(), vh.data(), len,
                                     dh, att_scale, ctx.data());
              for (size_t t = 0; t < len; ++t) {
                float* mrow = merged.data() + (base + t) * d + off;
                const float* crow = ctx.data() + t * dh;
                for (size_t j = 0; j < dh; ++j) mrow[j] = crow[j];
              }
            }
            la::ReleaseVec(std::move(ctx));
            la::ReleaseVec(std::move(vh));
            la::ReleaseVec(std::move(kh));
            la::ReleaseVec(std::move(qh));
          }
        });
    ApplyQuantLinear(merged.data(), R, layer.out, proj.data());
    AddInplaceParallel(x.data(), proj.data(), R * d);

    // ---- feed-forward sublayer ----
    LayerNormRowsParallel(x.data(), R, d, layer.ln2_gamma, layer.ln2_beta,
                          normed.data());
    ApplyQuantLinear(normed.data(), R, layer.ffn1, ffn.data());
    ParallelFor(0, R * f, GrainForOps(8), [&](size_t b, size_t e) {
      nn::GeluInplace(ffn.data() + b, e - b);
    });
    ApplyQuantLinear(ffn.data(), R, layer.ffn2, proj.data());
    AddInplaceParallel(x.data(), proj.data(), R * d);
  }

  LayerNormRowsParallel(x.data(), R, d, final_gamma_, final_beta_, out);

  la::ReleaseVec(std::move(ffn));
  la::ReleaseVec(std::move(proj));
  la::ReleaseVec(std::move(merged));
  la::ReleaseVec(std::move(qkv));
  la::ReleaseVec(std::move(normed));
  la::ReleaseVec(std::move(x));
}

la::Matrix QuantizedMiniLm::Encode(const std::vector<int32_t>& ids) const {
  const std::vector<int32_t> trunc = Truncate(ids);
  const size_t S = trunc.size();
  la::Matrix out(S, config_.dim);
  ForwardBucket(trunc.data(), 1, S, {static_cast<int>(S)}, out.data());
  return out;
}

std::vector<float> QuantizedMiniLm::Pool(
    const std::vector<int32_t>& ids) const {
  const la::Matrix hidden = Encode(ids);
  const size_t d = config_.dim;
  std::vector<float> pooled(d, 0.0f);
  for (size_t t = 0; t < hidden.rows(); ++t) {
    const float* row = hidden.Row(t);
    for (size_t j = 0; j < d; ++j) pooled[j] += row[j];
  }
  const float inv = 1.0f / static_cast<float>(hidden.rows());
  for (size_t j = 0; j < d; ++j) pooled[j] *= inv;
  return pooled;
}

namespace {

// Flat kPadId-padded token block plus per-document lengths for one bucket.
void FillBucketTokens(const std::vector<std::vector<int32_t>>& trunc,
                      const EncodeBucket& bucket, std::vector<int32_t>* flat,
                      std::vector<int>* lens) {
  const size_t count = bucket.docs.size();
  flat->assign(count * bucket.seq, text::kPadId);
  lens->resize(count);
  for (size_t i = 0; i < count; ++i) {
    const std::vector<int32_t>& doc = trunc[bucket.docs[i]];
    std::copy(doc.begin(), doc.end(), flat->begin() + i * bucket.seq);
    (*lens)[i] = static_cast<int>(doc.size());
  }
}

}  // namespace

std::vector<la::Matrix> QuantizedMiniLm::EncodeBatch(
    const std::vector<std::vector<int32_t>>& docs) const {
  std::vector<la::Matrix> out(docs.size());
  const BatchOptions options = GetBatchOptions();
  if (options.mode == BatchMode::kPerDoc) {
    ParallelFor(0, docs.size(), 1, [&](size_t b, size_t e) {
      for (size_t i = b; i < e; ++i) out[i] = Encode(docs[i]);
    });
    return out;
  }
  std::vector<std::vector<int32_t>> trunc(docs.size());
  std::vector<size_t> lengths(docs.size());
  for (size_t i = 0; i < docs.size(); ++i) {
    trunc[i] = Truncate(docs[i]);
    lengths[i] = trunc[i].size();
  }
  const BatchPlan plan = PlanBuckets(lengths, options);
  const size_t d = config_.dim;
  std::vector<int32_t> flat;
  std::vector<int> lens;
  for (const EncodeBucket& bucket : plan.buckets) {
    FillBucketTokens(trunc, bucket, &flat, &lens);
    const size_t count = bucket.docs.size();
    std::vector<float> hidden = la::AcquireVec(count * bucket.seq * d);
    ForwardBucket(flat.data(), count, bucket.seq, lens, hidden.data());
    for (size_t i = 0; i < count; ++i) {
      const size_t len = static_cast<size_t>(lens[i]);
      la::Matrix m(len, d);
      std::memcpy(m.data(), hidden.data() + i * bucket.seq * d,
                  len * d * sizeof(float));
      out[bucket.docs[i]] = std::move(m);
    }
    la::ReleaseVec(std::move(hidden));
  }
  return out;
}

la::Matrix QuantizedMiniLm::PoolBatch(
    const std::vector<std::vector<int32_t>>& docs) const {
  la::Matrix out(docs.size(), config_.dim);
  const BatchOptions options = GetBatchOptions();
  if (options.mode == BatchMode::kPerDoc) {
    ParallelFor(0, docs.size(), 1, [&](size_t b, size_t e) {
      for (size_t i = b; i < e; ++i) {
        const std::vector<float> pooled = Pool(docs[i]);
        std::copy(pooled.begin(), pooled.end(), out.Row(i));
      }
    });
    return out;
  }
  std::vector<std::vector<int32_t>> trunc(docs.size());
  std::vector<size_t> lengths(docs.size());
  for (size_t i = 0; i < docs.size(); ++i) {
    trunc[i] = Truncate(docs[i]);
    lengths[i] = trunc[i].size();
  }
  const BatchPlan plan = PlanBuckets(lengths, options);
  const size_t d = config_.dim;
  std::vector<int32_t> flat;
  std::vector<int> lens;
  for (const EncodeBucket& bucket : plan.buckets) {
    FillBucketTokens(trunc, bucket, &flat, &lens);
    const size_t count = bucket.docs.size();
    std::vector<float> hidden = la::AcquireVec(count * bucket.seq * d);
    ForwardBucket(flat.data(), count, bucket.seq, lens, hidden.data());
    for (size_t i = 0; i < count; ++i) {
      const size_t len = static_cast<size_t>(lens[i]);
      // Same ascending sum + single multiply as Pool(): bit-identical.
      float* row = out.Row(bucket.docs[i]);
      std::fill(row, row + d, 0.0f);
      for (size_t t = 0; t < len; ++t) {
        const float* hr = hidden.data() + (i * bucket.seq + t) * d;
        for (size_t j = 0; j < d; ++j) row[j] += hr[j];
      }
      const float inv = 1.0f / static_cast<float>(len);
      for (size_t j = 0; j < d; ++j) row[j] *= inv;
    }
    la::ReleaseVec(std::move(hidden));
  }
  return out;
}

// ---- persistence ----

namespace {

void WriteQuantLinear(BinaryWriter* writer,
                      const QuantizedMiniLm::QuantLinear& w) {
  writer->WriteU64(w.weight.k);
  writer->WriteU64(w.weight.n);
  writer->WriteBytes(w.weight.rowmajor);
  writer->WriteFloats(w.weight.scales);
  writer->WriteFloats(w.bias);
}

Status ReadQuantLinear(BinaryReader* reader, const std::string& path,
                       size_t want_k, size_t want_n,
                       QuantizedMiniLm::QuantLinear* w) {
  uint64_t k = 0, n = 0;
  std::vector<int8_t> rowmajor;
  std::vector<float> scales;
  STM_RETURN_IF_ERROR(reader->Read(&k));
  STM_RETURN_IF_ERROR(reader->Read(&n));
  STM_RETURN_IF_ERROR(reader->Read(&rowmajor));
  STM_RETURN_IF_ERROR(reader->Read(&scales));
  STM_RETURN_IF_ERROR(reader->Read(&w->bias));
  // Shapes are fully determined by the (already validated) config, so a
  // crafted file cannot request an oversized repack; the array lengths
  // were bounds-checked against the payload during Read.
  if (k != want_k || n != want_n || scales.size() != n ||
      w->bias.size() != n || (n != 0 && rowmajor.size() / n != k) ||
      (n != 0 && rowmajor.size() % n != 0)) {
    return CorruptDataError(
        StrFormat("%s: quantized matrix shape mismatch", path.c_str()));
  }
  for (float s : scales) {
    if (!std::isfinite(s) || s < 0.0f) {
      return CorruptDataError(
          StrFormat("%s: implausible quantization scale", path.c_str()));
    }
  }
  w->weight = la::RepackInt8B(std::move(rowmajor), std::move(scales),
                              static_cast<size_t>(k),
                              static_cast<size_t>(n));
  return Status::Ok();
}

}  // namespace

Status QuantizedMiniLm::Save(Env* env, const std::string& path) const {
  BinaryWriter writer;
  writer.WriteU32(kQuantFormatVersion);
  writer.WriteU64(config_.vocab_size);
  writer.WriteU64(config_.dim);
  writer.WriteU64(config_.layers);
  writer.WriteU64(config_.heads);
  writer.WriteU64(config_.ffn_dim);
  writer.WriteU64(config_.max_seq);
  writer.WriteU64(config_.seed);
  writer.WriteFloats(token_table_);
  writer.WriteFloats(pos_table_);
  writer.WriteFloats(final_gamma_);
  writer.WriteFloats(final_beta_);
  for (const QuantLayer& layer : layers_) {
    writer.WriteFloats(layer.ln1_gamma);
    writer.WriteFloats(layer.ln1_beta);
    writer.WriteFloats(layer.ln2_gamma);
    writer.WriteFloats(layer.ln2_beta);
    WriteQuantLinear(&writer, layer.qkv);
    WriteQuantLinear(&writer, layer.out);
    WriteQuantLinear(&writer, layer.ffn1);
    WriteQuantLinear(&writer, layer.ffn2);
  }
  return writer.FlushToEnv(env, path, kQuantModelMagic);
}

StatusOr<std::unique_ptr<QuantizedMiniLm>> QuantizedMiniLm::Load(
    Env* env, const std::string& path) {
  STM_ASSIGN_OR_RETURN(
      BinaryReader reader,
      BinaryReader::OpenArtifact(env, path, kQuantModelMagic));
  const auto corrupt = [&path](const char* what) {
    return CorruptDataError(StrFormat("%s: %s", path.c_str(), what));
  };
  uint32_t version = 0;
  STM_RETURN_IF_ERROR(reader.Read(&version));
  if (version != kQuantFormatVersion) {
    return corrupt("unsupported quantized-model version");
  }
  uint64_t vocab_size = 0, dim = 0, layers = 0, heads = 0;
  uint64_t ffn_dim = 0, max_seq = 0, seed = 0;
  STM_RETURN_IF_ERROR(reader.Read(&vocab_size));
  STM_RETURN_IF_ERROR(reader.Read(&dim));
  STM_RETURN_IF_ERROR(reader.Read(&layers));
  STM_RETURN_IF_ERROR(reader.Read(&heads));
  STM_RETURN_IF_ERROR(reader.Read(&ffn_dim));
  STM_RETURN_IF_ERROR(reader.Read(&max_seq));
  STM_RETURN_IF_ERROR(reader.Read(&seed));
  // Hard caps first so every size product below fits without overflow;
  // then every array length is cross-checked against the config. The CRC
  // only proves some writer produced the bytes, not that they are sane.
  if (vocab_size == 0 || dim == 0 || heads == 0 || max_seq == 0 ||
      layers == 0 || ffn_dim == 0 || dim % heads != 0 ||
      vocab_size > (uint64_t{1} << 28) || dim > (uint64_t{1} << 16) ||
      ffn_dim > (uint64_t{1} << 20) || max_seq > (uint64_t{1} << 16) ||
      layers > 4096) {
    return corrupt("implausible quantized-model config");
  }
  auto model = std::unique_ptr<QuantizedMiniLm>(new QuantizedMiniLm());
  model->config_.vocab_size = static_cast<size_t>(vocab_size);
  model->config_.dim = static_cast<size_t>(dim);
  model->config_.layers = static_cast<size_t>(layers);
  model->config_.heads = static_cast<size_t>(heads);
  model->config_.ffn_dim = static_cast<size_t>(ffn_dim);
  model->config_.max_seq = static_cast<size_t>(max_seq);
  model->config_.seed = seed;
  STM_RETURN_IF_ERROR(reader.Read(&model->token_table_));
  STM_RETURN_IF_ERROR(reader.Read(&model->pos_table_));
  STM_RETURN_IF_ERROR(reader.Read(&model->final_gamma_));
  STM_RETURN_IF_ERROR(reader.Read(&model->final_beta_));
  const size_t d = model->config_.dim;
  if (model->token_table_.size() != model->config_.vocab_size * d ||
      model->pos_table_.size() != model->config_.max_seq * d ||
      model->final_gamma_.size() != d || model->final_beta_.size() != d) {
    return corrupt("embedding/norm table size mismatch");
  }
  model->layers_.resize(model->config_.layers);
  for (QuantLayer& layer : model->layers_) {
    STM_RETURN_IF_ERROR(reader.Read(&layer.ln1_gamma));
    STM_RETURN_IF_ERROR(reader.Read(&layer.ln1_beta));
    STM_RETURN_IF_ERROR(reader.Read(&layer.ln2_gamma));
    STM_RETURN_IF_ERROR(reader.Read(&layer.ln2_beta));
    if (layer.ln1_gamma.size() != d || layer.ln1_beta.size() != d ||
        layer.ln2_gamma.size() != d || layer.ln2_beta.size() != d) {
      return corrupt("layer-norm parameter size mismatch");
    }
    STM_RETURN_IF_ERROR(
        ReadQuantLinear(&reader, path, d, 3 * d, &layer.qkv));
    STM_RETURN_IF_ERROR(ReadQuantLinear(&reader, path, d, d, &layer.out));
    STM_RETURN_IF_ERROR(ReadQuantLinear(&reader, path, d,
                                        model->config_.ffn_dim,
                                        &layer.ffn1));
    STM_RETURN_IF_ERROR(ReadQuantLinear(&reader, path,
                                        model->config_.ffn_dim, d,
                                        &layer.ffn2));
  }
  STM_RETURN_IF_ERROR(reader.Finish());
  return model;
}

}  // namespace stm::plm
