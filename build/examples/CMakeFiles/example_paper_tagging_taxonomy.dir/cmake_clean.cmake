file(REMOVE_RECURSE
  "CMakeFiles/example_paper_tagging_taxonomy.dir/paper_tagging_taxonomy.cc.o"
  "CMakeFiles/example_paper_tagging_taxonomy.dir/paper_tagging_taxonomy.cc.o.d"
  "example_paper_tagging_taxonomy"
  "example_paper_tagging_taxonomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_paper_tagging_taxonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
