#include "plm/pair_scorer.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/thread_pool.h"
#include "nn/loss.h"
#include "la/matrix.h"
#include "nn/infer_ops.h"
#include "nn/ops.h"
#include "plm/quantized_minilm.h"

namespace stm::plm {

PairScorer::PairScorer(const Config& config)
    : config_(config), rng_(config.seed) {
  STM_CHECK_GT(config.encoder_dim, 0u);
  const size_t interaction_dim = 4 * config.encoder_dim + 1;
  hidden_ = std::make_unique<nn::Linear>(&store_, "hidden", interaction_dim,
                                         config.hidden, rng_);
  out_ = std::make_unique<nn::Linear>(&store_, "out", config.hidden, 1,
                                      rng_);
  nn::OptimizerConfig opt;
  opt.lr = config.lr;
  opt.grad_clip = 5.0f;
  optimizer_ = std::make_unique<nn::AdamOptimizer>(&store_, opt);
}

std::vector<float> PairScorer::Interaction(
    const std::vector<float>& u, const std::vector<float>& v) const {
  STM_CHECK_EQ(u.size(), config_.encoder_dim);
  STM_CHECK_EQ(v.size(), config_.encoder_dim);
  std::vector<float> features;
  features.reserve(4 * config_.encoder_dim + 1);
  features.insert(features.end(), u.begin(), u.end());
  features.insert(features.end(), v.begin(), v.end());
  for (size_t i = 0; i < u.size(); ++i) {
    features.push_back(std::fabs(u[i] - v[i]));
  }
  for (size_t i = 0; i < u.size(); ++i) features.push_back(u[i] * v[i]);
  // Explicit cosine: the single strongest relevance signal; giving it to
  // the head directly makes the small MLP far more sample-efficient.
  features.push_back(la::Cosine(u.data(), v.data(), u.size()));
  return features;
}

double PairScorer::Train(const std::vector<std::vector<float>>& u,
                         const std::vector<std::vector<float>>& v,
                         const std::vector<float>& labels) {
  STM_CHECK_EQ(u.size(), v.size());
  STM_CHECK_EQ(u.size(), labels.size());
  STM_CHECK(!u.empty());
  InvalidateFrozen();
  double last = 0.0;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    const std::vector<size_t> order = rng_.Permutation(u.size());
    double total = 0.0;
    size_t batches = 0;
    for (size_t begin = 0; begin < order.size();
         begin += config_.batch_size) {
      const size_t count =
          std::min(config_.batch_size, order.size() - begin);
      std::vector<float> batch;
      std::vector<float> targets;
      batch.reserve(count * 4 * config_.encoder_dim);
      for (size_t i = 0; i < count; ++i) {
        const size_t idx = order[begin + i];
        const std::vector<float> features = Interaction(u[idx], v[idx]);
        batch.insert(batch.end(), features.begin(), features.end());
        targets.push_back(labels[idx]);
      }
      nn::Tensor x = nn::Tensor::FromVector(
          std::move(batch), {count, 4 * config_.encoder_dim + 1});
      nn::Tensor logits = nn::Reshape(
          out_->Forward(nn::Relu(hidden_->Forward(x))), {count});
      nn::Tensor loss = nn::BceWithLogits(logits, targets);
      nn::Backward(loss);
      optimizer_->Step();
      total += loss.item();
      ++batches;
    }
    last = batches > 0 ? total / static_cast<double>(batches) : 0.0;
  }
  return last;
}

float PairScorer::Score(const std::vector<float>& u,
                        const std::vector<float>& v) {
  nn::Tensor x = nn::Tensor::FromVector(Interaction(u, v),
                                        {1, 4 * config_.encoder_dim + 1});
  nn::Tensor logits = out_->Forward(nn::Relu(hidden_->Forward(x)));
  return 1.0f / (1.0f + std::exp(-logits.value()[0]));
}

std::vector<float> PairScorer::ScoreBatch(
    const std::vector<std::vector<float>>& u,
    const std::vector<std::vector<float>>& v) {
  STM_CHECK_EQ(u.size(), v.size());
  if (QuantInferenceEnabled() && !u.empty()) {
    const FrozenHead* head = Frozen();
    const size_t n = u.size();
    const size_t feat = 4 * config_.encoder_dim + 1;
    // One interaction-feature matrix, then the whole head as two int8
    // GEMMs; feature rows are independent, so the parallel fill is
    // deterministic at any thread count.
    std::vector<float> features(n * feat);
    ParallelFor(0, n, 8, [&](size_t b, size_t e) {
      for (size_t i = b; i < e; ++i) {
        const std::vector<float> row = Interaction(u[i], v[i]);
        std::copy(row.begin(), row.end(), features.data() + i * feat);
      }
    });
    std::vector<float> hidden(n * config_.hidden, 0.0f);
    la::Int8GemmAcc(features.data(), n, head->w1, hidden.data());
    nn::AddBiasRows(hidden.data(), n, config_.hidden, head->b1.data());
    nn::ReluInplace(hidden.data(), hidden.size());
    std::vector<float> logits(n, 0.0f);
    la::Int8GemmAcc(hidden.data(), n, head->w2, logits.data());
    std::vector<float> scores(n);
    for (size_t i = 0; i < n; ++i) {
      scores[i] = 1.0f / (1.0f + std::exp(-(logits[i] + head->b2[0])));
    }
    return scores;
  }
  // Each pair builds its own forward graph over the (read-only) head
  // parameters, so pairs score independently and in parallel; slot i is
  // written by exactly one worker.
  std::vector<float> scores(u.size(), 0.0f);
  ParallelFor(0, u.size(), 8, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) scores[i] = Score(u[i], v[i]);
  });
  return scores;
}

const PairScorer::FrozenHead* PairScorer::Frozen() {
  std::lock_guard<std::mutex> lock(freeze_mu_);
  if (!frozen_) {
    auto head = std::make_shared<FrozenHead>();
    const size_t feat = 4 * config_.encoder_dim + 1;
    // nn::Linear weights are row-major [in, out]: row stride n, column
    // stride 1, contraction extent in.
    head->w1 = la::PackInt8B(hidden_->weight().value().data(),
                             config_.hidden, 1, feat, config_.hidden);
    head->b1 = hidden_->bias().value();
    head->w2 = la::PackInt8B(out_->weight().value().data(), 1, 1,
                             config_.hidden, 1);
    head->b2 = out_->bias().value();
    frozen_ = std::move(head);
  }
  return frozen_.get();
}

void PairScorer::InvalidateFrozen() {
  std::lock_guard<std::mutex> lock(freeze_mu_);
  frozen_.reset();
}

}  // namespace stm::plm
