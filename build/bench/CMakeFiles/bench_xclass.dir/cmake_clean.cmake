file(REMOVE_RECURSE
  "CMakeFiles/bench_xclass.dir/bench_xclass.cc.o"
  "CMakeFiles/bench_xclass.dir/bench_xclass.cc.o.d"
  "bench_xclass"
  "bench_xclass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_xclass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
