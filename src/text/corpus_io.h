#ifndef STM_TEXT_CORPUS_IO_H_
#define STM_TEXT_CORPUS_IO_H_

#include <string>

#include "text/corpus.h"

namespace stm::text {

// TSV corpus persistence so users can run the library on their own data.
//
// Format (one document per line, UTF-8, tab-separated):
//   <label-name>  <raw text>  [<meta>=<value> ...]
// A line may carry several labels separated by '|' in the first column and
// any number of trailing metadata columns ("user=u1", "tag=nlp", ...).
// Lines starting with '#' and blank lines are skipped.

// Loads a corpus from `path`, building the vocabulary with the rule-based
// tokenizer and the label set from the label column (in first-seen order).
// Returns false on I/O failure; malformed lines are skipped with a count
// reported through `skipped` when non-null.
bool LoadTsv(const std::string& path, Corpus* corpus,
             size_t* skipped = nullptr);

// Writes `corpus` in the same format (tokens are re-joined with spaces).
bool SaveTsv(const Corpus& corpus, const std::string& path);

}  // namespace stm::text

#endif  // STM_TEXT_CORPUS_IO_H_
