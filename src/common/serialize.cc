#include "common/serialize.h"

#include <cstring>

#include "common/check.h"
#include "common/hash.h"
#include "common/string_util.h"

namespace stm {

namespace {

// Frame layout around the payload (all little-endian):
//   u32 container magic, u32 version, u32 artifact magic, u32 reserved,
//   u64 payload size, payload, u32 CRC32C(payload).
constexpr size_t kHeaderSize = 4 * sizeof(uint32_t) + sizeof(uint64_t);
constexpr size_t kTrailerSize = sizeof(uint32_t);

template <typename T>
void AppendRaw(std::string& buffer, T value) {
  char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  buffer.append(bytes, sizeof(T));
}

template <typename T>
T LoadRaw(const std::string& buffer, size_t offset) {
  T value;
  std::memcpy(&value, buffer.data() + offset, sizeof(T));
  return value;
}

}  // namespace

void BinaryWriter::WriteU32(uint32_t value) { AppendRaw(buffer_, value); }
void BinaryWriter::WriteU64(uint64_t value) { AppendRaw(buffer_, value); }
void BinaryWriter::WriteF32(float value) { AppendRaw(buffer_, value); }

void BinaryWriter::WriteString(const std::string& value) {
  WriteU64(value.size());
  buffer_.append(value);
}

void BinaryWriter::WriteFloats(const std::vector<float>& values) {
  WriteFloats(values.data(), values.size());
}

void BinaryWriter::WriteFloats(const float* values, size_t count) {
  WriteU64(count);
  const size_t bytes = count * sizeof(float);
  const size_t old = buffer_.size();
  buffer_.resize(old + bytes);
  if (bytes > 0) std::memcpy(buffer_.data() + old, values, bytes);
}

void BinaryWriter::WriteU64s(const std::vector<uint64_t>& values) {
  WriteU64(values.size());
  const size_t bytes = values.size() * sizeof(uint64_t);
  const size_t old = buffer_.size();
  buffer_.resize(old + bytes);
  if (bytes > 0) std::memcpy(buffer_.data() + old, values.data(), bytes);
}

void BinaryWriter::WriteI32s(const int32_t* values, size_t count) {
  WriteU64(count);
  const size_t bytes = count * sizeof(int32_t);
  const size_t old = buffer_.size();
  buffer_.resize(old + bytes);
  if (bytes > 0) std::memcpy(buffer_.data() + old, values, bytes);
}

void BinaryWriter::WriteI32s(const std::vector<int32_t>& values) {
  WriteI32s(values.data(), values.size());
}

void BinaryWriter::WriteBytes(const std::vector<int8_t>& values) {
  WriteU64(values.size());
  const size_t old = buffer_.size();
  buffer_.resize(old + values.size());
  if (!values.empty()) {
    std::memcpy(buffer_.data() + old, values.data(), values.size());
  }
}

Status BinaryWriter::FlushToEnv(Env* env, const std::string& path,
                                uint32_t artifact_magic,
                                const RetryOptions& retry) const {
  std::string framed;
  framed.reserve(kHeaderSize + buffer_.size() + kTrailerSize);
  AppendRaw(framed, kContainerMagic);
  AppendRaw(framed, kContainerVersion);
  AppendRaw(framed, artifact_magic);
  AppendRaw(framed, uint32_t{0});  // reserved
  AppendRaw(framed, static_cast<uint64_t>(buffer_.size()));
  framed.append(buffer_);
  AppendRaw(framed, Crc32c(buffer_));
  return WriteFileAtomicWithRetry(env, path, framed, retry)
      .WithContext(StrFormat("writing artifact %s", path.c_str()));
}

bool BinaryWriter::Flush(const std::string& path) const {
  return Env::Default()->WriteFileAtomic(path, buffer_).ok();
}

BinaryReader::BinaryReader(const std::string& path) {
  StatusOr<std::string> data = Env::Default()->ReadFile(path);
  if (!data.ok()) {
    status_ = data.status();
    return;
  }
  buffer_ = std::move(data).value();
}

StatusOr<std::string_view> ValidateArtifactFrame(std::string_view file_bytes,
                                                 uint32_t artifact_magic,
                                                 const std::string& path) {
  const auto corrupt = [&path](const std::string& what) {
    return CorruptDataError(
        StrFormat("%s: %s", path.c_str(), what.c_str()));
  };
  const auto load_u32 = [&file_bytes](size_t offset) {
    uint32_t value;
    std::memcpy(&value, file_bytes.data() + offset, sizeof(value));
    return value;
  };
  if (file_bytes.size() < kHeaderSize + kTrailerSize) {
    return corrupt(StrFormat("file too small for artifact frame (%zu bytes)",
                             file_bytes.size()));
  }
  if (load_u32(0) != kContainerMagic) {
    return corrupt("bad container magic");
  }
  const uint32_t version = load_u32(4);
  if (version != kContainerVersion) {
    return corrupt(StrFormat("unsupported format version %u", version));
  }
  const uint32_t magic = load_u32(8);
  if (magic != artifact_magic) {
    return corrupt(StrFormat("artifact magic mismatch (got 0x%08x, want "
                             "0x%08x)",
                             magic, artifact_magic));
  }
  // The reserved field is outside the payload CRC, so it must be checked
  // explicitly or a flipped bit there would go unnoticed.
  if (load_u32(12) != 0) {
    return corrupt("nonzero reserved header field");
  }
  uint64_t payload_size;
  std::memcpy(&payload_size, file_bytes.data() + 16, sizeof(payload_size));
  if (payload_size != file_bytes.size() - kHeaderSize - kTrailerSize) {
    return corrupt(StrFormat(
        "payload size mismatch (header says %llu, file holds %zu)",
        static_cast<unsigned long long>(payload_size),
        file_bytes.size() - kHeaderSize - kTrailerSize));
  }
  const std::string_view payload =
      file_bytes.substr(kHeaderSize, static_cast<size_t>(payload_size));
  const uint32_t stored_crc = load_u32(kHeaderSize + payload.size());
  const uint32_t actual_crc = Crc32c(payload);
  if (stored_crc != actual_crc) {
    return corrupt(StrFormat("CRC32C mismatch (stored 0x%08x, computed "
                             "0x%08x)",
                             stored_crc, actual_crc));
  }
  return payload;
}

StatusOr<BinaryReader> BinaryReader::OpenArtifact(Env* env,
                                                  const std::string& path,
                                                  uint32_t artifact_magic) {
  STM_ASSIGN_OR_RETURN(std::string data, env->ReadFile(path));
  STM_ASSIGN_OR_RETURN(std::string_view payload,
                       ValidateArtifactFrame(data, artifact_magic, path));
  BinaryReader reader;
  reader.buffer_ = std::string(payload);
  return reader;
}

bool BinaryReader::Ensure(size_t bytes) {
  if (!status_.ok()) return false;
  // pos_ <= buffer_.size() always holds, so the subtraction cannot wrap;
  // comparing this way (instead of pos_ + bytes) is overflow-safe for any
  // untrusted `bytes`.
  if (bytes > buffer_.size() - pos_) {
    status_ = CorruptDataError(
        StrFormat("unexpected end of data at offset %zu (need %zu more "
                  "bytes, %zu available)",
                  pos_, bytes, buffer_.size() - pos_));
    return false;
  }
  return true;
}

Status BinaryReader::Read(uint32_t* value) {
  *value = 0;
  if (Ensure(sizeof(*value))) {
    std::memcpy(value, buffer_.data() + pos_, sizeof(*value));
    pos_ += sizeof(*value);
  }
  return status_;
}

Status BinaryReader::Read(uint64_t* value) {
  *value = 0;
  if (Ensure(sizeof(*value))) {
    std::memcpy(value, buffer_.data() + pos_, sizeof(*value));
    pos_ += sizeof(*value);
  }
  return status_;
}

Status BinaryReader::Read(float* value) {
  *value = 0.0f;
  if (Ensure(sizeof(*value))) {
    std::memcpy(value, buffer_.data() + pos_, sizeof(*value));
    pos_ += sizeof(*value);
  }
  return status_;
}

Status BinaryReader::Read(std::string* value) {
  value->clear();
  uint64_t size = 0;
  STM_RETURN_IF_ERROR(Read(&size));
  if (Ensure(static_cast<size_t>(size))) {
    value->assign(buffer_.data() + pos_, static_cast<size_t>(size));
    pos_ += static_cast<size_t>(size);
  }
  return status_;
}

Status BinaryReader::Read(std::vector<float>* values) {
  values->clear();
  uint64_t count = 0;
  STM_RETURN_IF_ERROR(Read(&count));
  // Reject before multiplying: `count * sizeof(float)` wraps for
  // count >= 2^62, which would turn a hostile length into a passing
  // bounds check and a multi-GB allocation.
  if (count > (buffer_.size() - pos_) / sizeof(float)) {
    status_ = CorruptDataError(
        StrFormat("float array length %llu exceeds remaining payload (%zu "
                  "bytes)",
                  static_cast<unsigned long long>(count),
                  buffer_.size() - pos_));
    return status_;
  }
  const size_t bytes = static_cast<size_t>(count) * sizeof(float);
  values->resize(static_cast<size_t>(count));
  if (bytes > 0) {
    std::memcpy(values->data(), buffer_.data() + pos_, bytes);
    pos_ += bytes;
  }
  return status_;
}

Status BinaryReader::Read(std::vector<int8_t>* values) {
  values->clear();
  uint64_t count = 0;
  STM_RETURN_IF_ERROR(Read(&count));
  // One byte per element, so the overflow-safe Ensure suffices as the
  // hostile-length bound here.
  if (Ensure(static_cast<size_t>(count))) {
    values->resize(static_cast<size_t>(count));
    if (count > 0) {
      std::memcpy(values->data(), buffer_.data() + pos_,
                  static_cast<size_t>(count));
      pos_ += static_cast<size_t>(count);
    }
  }
  return status_;
}

Status BinaryReader::Read(std::vector<uint64_t>* values) {
  values->clear();
  uint64_t count = 0;
  STM_RETURN_IF_ERROR(Read(&count));
  // Division, never multiplication: `count * 8` wraps for hostile counts.
  if (count > (buffer_.size() - pos_) / sizeof(uint64_t)) {
    status_ = CorruptDataError(
        StrFormat("u64 array length %llu exceeds remaining payload (%zu "
                  "bytes)",
                  static_cast<unsigned long long>(count),
                  buffer_.size() - pos_));
    return status_;
  }
  const size_t bytes = static_cast<size_t>(count) * sizeof(uint64_t);
  values->resize(static_cast<size_t>(count));
  if (bytes > 0) {
    std::memcpy(values->data(), buffer_.data() + pos_, bytes);
    pos_ += bytes;
  }
  return status_;
}

Status BinaryReader::Read(std::vector<int32_t>* values) {
  values->clear();
  uint64_t count = 0;
  STM_RETURN_IF_ERROR(Read(&count));
  // Division, never multiplication: `count * 4` wraps for hostile counts.
  if (count > (buffer_.size() - pos_) / sizeof(int32_t)) {
    status_ = CorruptDataError(
        StrFormat("i32 array length %llu exceeds remaining payload (%zu "
                  "bytes)",
                  static_cast<unsigned long long>(count),
                  buffer_.size() - pos_));
    return status_;
  }
  const size_t bytes = static_cast<size_t>(count) * sizeof(int32_t);
  values->resize(static_cast<size_t>(count));
  if (bytes > 0) {
    std::memcpy(values->data(), buffer_.data() + pos_, bytes);
    pos_ += bytes;
  }
  return status_;
}

uint32_t BinaryReader::ReadU32() {
  uint32_t value = 0;
  (void)Read(&value);
  return value;
}

uint64_t BinaryReader::ReadU64() {
  uint64_t value = 0;
  (void)Read(&value);
  return value;
}

float BinaryReader::ReadF32() {
  float value = 0.0f;
  (void)Read(&value);
  return value;
}

std::string BinaryReader::ReadString() {
  std::string value;
  (void)Read(&value);
  return value;
}

std::vector<float> BinaryReader::ReadFloats() {
  std::vector<float> values;
  (void)Read(&values);
  return values;
}

Status BinaryReader::Finish() const {
  STM_RETURN_IF_ERROR(status_);
  if (pos_ != buffer_.size()) {
    return CorruptDataError(
        StrFormat("%zu trailing bytes after payload", buffer_.size() - pos_));
  }
  return Status::Ok();
}

}  // namespace stm
