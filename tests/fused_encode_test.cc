// Tests for the fused frozen-fp32 inference path (STM_FP32_FUSED,
// plm/minilm.cc): pre-packed fused-QKV projections plus tiled attention
// (nn::TiledAttentionHead) must be BIT-identical to the fp32 autograd
// graph forward, per document and through every batch mode, at any
// thread count. Also pins down the freeze/invalidate boundary: training
// drops the frozen snapshot so the fused path never serves stale bits.
// Built into stm_encode_tests (ctest label "encode") so scripts/check.sh
// runs it under ASan and under both STM_ISA passes.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "la/matrix.h"
#include "nn/infer_ops.h"
#include "nn/loss.h"
#include "nn/ops.h"
#include "nn/optimizer.h"
#include "plm/batch_scheduler.h"
#include "plm/minilm.h"
#include "plm/quantized_minilm.h"
#include "text/vocabulary.h"

namespace stm {
namespace {

constexpr size_t kVocab = 120;

// Restores every process-wide switch the suite touches, no matter how a
// test exits, so a failing assertion can't leak state into later tests.
struct FusedGuard {
  ~FusedGuard() {
    plm::SetFp32FusedInference(-1);
    plm::SetQuantInference(-1);
    plm::SetBatchOptions(plm::BatchOptions{});
    ThreadPool::Reset(ThreadPool::ConfiguredThreads());
  }
};

plm::MiniLmConfig TestConfig() {
  plm::MiniLmConfig config;
  config.vocab_size = kVocab;
  config.dim = 24;
  config.layers = 2;
  config.heads = 4;
  config.ffn_dim = 48;
  config.max_seq = 32;
  config.seed = 11;
  return config;
}

// Mixed-length corpus including the edge cases: empty doc (becomes one
// pad token), single-token docs, and docs past max_seq (truncated).
std::vector<std::vector<int32_t>> MixedDocs(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<int32_t>> docs;
  docs.push_back({});
  docs.push_back({text::kNumSpecialTokens});
  for (size_t d = docs.size(); d < count; ++d) {
    size_t len;
    const double r = rng.Uniform();
    if (r < 0.6) {
      len = 2 + rng.UniformInt(10);
    } else if (r < 0.9) {
      len = 12 + rng.UniformInt(16);
    } else {
      len = 34 + rng.UniformInt(10);  // truncated to max_seq
    }
    std::vector<int32_t> doc(len);
    for (int32_t& id : doc) {
      id = text::kNumSpecialTokens +
           static_cast<int32_t>(
               rng.UniformInt(kVocab - text::kNumSpecialTokens));
    }
    docs.push_back(std::move(doc));
  }
  return docs;
}

void ExpectBitwiseEqual(const la::Matrix& want, const la::Matrix& got,
                        const std::string& what) {
  ASSERT_EQ(want.rows(), got.rows()) << what;
  ASSERT_EQ(want.cols(), got.cols()) << what;
  EXPECT_EQ(0, std::memcmp(want.data(), got.data(),
                           want.size() * sizeof(float)))
      << what;
}

class FusedEncodeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    plm::SetQuantInference(0);  // fp32 only; int8 has its own suite
    plm::SetBatchOptions(plm::BatchOptions{});
  }

  FusedGuard guard_;
};

plm::BatchOptions Options(plm::BatchMode mode) {
  plm::BatchOptions options;
  options.mode = mode;
  return options;
}

// The core contract: fused and autograd forwards agree bit-for-bit on
// every document, for both hidden states and pooled vectors.
TEST_F(FusedEncodeTest, PerDocEncodeAndPoolMatchAutogradBitwise) {
  plm::MiniLm model(TestConfig());
  const auto docs = MixedDocs(24, 31);
  for (size_t d = 0; d < docs.size(); ++d) {
    plm::SetFp32FusedInference(0);
    const la::Matrix want = model.Encode(docs[d]);
    const std::vector<float> want_pool = model.Pool(docs[d]);
    plm::SetFp32FusedInference(1);
    const la::Matrix got = model.Encode(docs[d]);
    const std::vector<float> got_pool = model.Pool(docs[d]);
    ExpectBitwiseEqual(want, got, "encode doc " + std::to_string(d));
    ASSERT_EQ(want_pool.size(), got_pool.size());
    EXPECT_EQ(0, std::memcmp(want_pool.data(), got_pool.data(),
                             want_pool.size() * sizeof(float)))
        << "pool doc " << d;
  }
}

// Bucketed batches (the default) run the fused bucket forward over
// ragged per-bucket lengths; every scatter-back row must match the
// autograd per-document bits.
TEST_F(FusedEncodeTest, BucketedBatchMatchesAutogradPerDoc) {
  plm::MiniLm model(TestConfig());
  const auto docs = MixedDocs(40, 47);

  plm::SetFp32FusedInference(0);
  plm::SetBatchOptions(Options(plm::BatchMode::kPerDoc));
  std::vector<la::Matrix> want;
  want.reserve(docs.size());
  for (const auto& doc : docs) want.push_back(model.Encode(doc));
  la::Matrix want_pool(docs.size(), model.config().dim);
  for (size_t d = 0; d < docs.size(); ++d) {
    const std::vector<float> row = model.Pool(docs[d]);
    std::memcpy(want_pool.data() + d * want_pool.cols(), row.data(),
                row.size() * sizeof(float));
  }

  plm::SetFp32FusedInference(1);
  for (const plm::BatchMode mode :
       {plm::BatchMode::kBucketed, plm::BatchMode::kPadded,
        plm::BatchMode::kPerDoc}) {
    plm::SetBatchOptions(Options(mode));
    const std::vector<la::Matrix> got = model.EncodeBatch(docs);
    ASSERT_EQ(got.size(), want.size());
    for (size_t d = 0; d < docs.size(); ++d) {
      ExpectBitwiseEqual(want[d], got[d],
                         "mode " + std::to_string(static_cast<int>(mode)) +
                             " doc " + std::to_string(d));
    }
    const la::Matrix got_pool = model.PoolBatch(docs);
    ExpectBitwiseEqual(want_pool, got_pool,
                       "pool mode " + std::to_string(static_cast<int>(mode)));
  }
}

// Pad rows inside a fused bucket must never leak into valid rows: a doc
// encoded alone and the same doc padded next to much longer ones agree
// bitwise (the -1e9 score mask underflows exp to exactly 0 for pad
// keys, and every chain is row-local — see FrozenFp32::ForwardBucket).
TEST_F(FusedEncodeTest, PaddedBucketsDoNotPerturbShortDocs) {
  plm::MiniLm model(TestConfig());
  plm::SetFp32FusedInference(1);
  const std::vector<std::vector<int32_t>> docs = {
      {5, 6, 7},
      MixedDocs(3, 77).back(),  // a long doc forcing seq >> 3
      {8},
  };
  plm::SetBatchOptions(Options(plm::BatchMode::kPerDoc));
  std::vector<la::Matrix> want;
  for (const auto& doc : docs) want.push_back(model.Encode(doc));
  plm::SetBatchOptions(Options(plm::BatchMode::kPadded));
  const std::vector<la::Matrix> got = model.EncodeBatch(docs);
  ASSERT_EQ(got.size(), want.size());
  for (size_t d = 0; d < docs.size(); ++d) {
    ExpectBitwiseEqual(want[d], got[d], "padded doc " + std::to_string(d));
  }
}

// Same bits at any thread count (the GEMM row chunks and per-doc loops
// are deterministic partitions; no accumulation crosses a chunk).
TEST_F(FusedEncodeTest, FusedOutputsAreThreadCountInvariant) {
  plm::MiniLm model(TestConfig());
  plm::SetFp32FusedInference(1);
  const auto docs = MixedDocs(16, 61);

  ThreadPool::Reset(1);
  const std::vector<la::Matrix> want = model.EncodeBatch(docs);
  const la::Matrix want_pool = model.PoolBatch(docs);
  for (const size_t threads : {2u, 8u}) {
    ThreadPool::Reset(threads);
    const std::vector<la::Matrix> got = model.EncodeBatch(docs);
    ASSERT_EQ(got.size(), want.size());
    for (size_t d = 0; d < docs.size(); ++d) {
      ExpectBitwiseEqual(want[d], got[d],
                         std::to_string(threads) + " threads, doc " +
                             std::to_string(d));
    }
    ExpectBitwiseEqual(want_pool, model.PoolBatch(docs),
                       std::to_string(threads) + " threads, pool");
  }
}

// The tiled attention itself, against the materialized formulation it
// replaced: one full len x len score matrix, softmax, context. Strip
// boundaries (len at, just below, just above and well past
// kAttentionQueryBlock) must never change a bit — tiling changes peak
// memory, not results.
TEST_F(FusedEncodeTest, TiledAttentionMatchesMaterializedScores) {
  constexpr size_t kDh = 8;
  Rng rng(19);
  for (const size_t len :
       {size_t{1}, size_t{63}, nn::kAttentionQueryBlock,
        nn::kAttentionQueryBlock + 1, size_t{100}, size_t{128}}) {
    std::vector<float> q(len * kDh), k(len * kDh), v(len * kDh);
    for (float* buf : {q.data(), k.data(), v.data()}) {
      for (size_t i = 0; i < len * kDh; ++i) {
        buf[i] = static_cast<float>(rng.Uniform() * 2.0 - 1.0);
      }
    }
    const float scale = 0.3535533906f;  // 1/sqrt(8)

    std::vector<float> scores(len * len, 0.0f);
    la::GemmBtAcc(q.data(), k.data(), scores.data(), len, kDh, len);
    for (float& s : scores) s *= scale;
    nn::SoftmaxRowsInplace(scores.data(), len, len);
    std::vector<float> want(len * kDh, 0.0f);
    la::GemmAcc(scores.data(), v.data(), want.data(), len, len, kDh);

    std::vector<float> got(len * kDh, 1.0f);  // must be overwritten
    nn::TiledAttentionHead(q.data(), k.data(), v.data(), len, kDh, scale,
                           got.data());
    EXPECT_EQ(0,
              std::memcmp(want.data(), got.data(), want.size() * sizeof(float)))
        << "len " << len;
  }
}

// Documents longer than one query strip (len > kAttentionQueryBlock)
// exercise the multi-strip path through the WHOLE model; the fused
// forward must still match autograd bitwise.
TEST_F(FusedEncodeTest, LongDocumentsCrossStripBoundary) {
  plm::MiniLmConfig config = TestConfig();
  config.max_seq = nn::kAttentionQueryBlock + 32;
  plm::MiniLm model(config);
  Rng rng(29);
  for (const size_t len :
       {nn::kAttentionQueryBlock, nn::kAttentionQueryBlock + 1,
        config.max_seq}) {
    std::vector<int32_t> doc(len);
    for (int32_t& id : doc) {
      id = text::kNumSpecialTokens +
           static_cast<int32_t>(
               rng.UniformInt(kVocab - text::kNumSpecialTokens));
    }
    plm::SetFp32FusedInference(0);
    const la::Matrix want = model.Encode(doc);
    plm::SetFp32FusedInference(1);
    const la::Matrix got = model.Encode(doc);
    ExpectBitwiseEqual(want, got, "len " + std::to_string(len));
  }
}

// Training must drop the frozen snapshot: after Pretrain the fused path
// re-freezes from the NEW weights and still matches autograd bitwise.
TEST_F(FusedEncodeTest, TrainingInvalidatesFrozenSnapshot) {
  plm::MiniLm model(TestConfig());
  const auto docs = MixedDocs(6, 83);
  plm::SetFp32FusedInference(1);
  const la::Matrix before = model.Encode(docs[2]);

  plm::PretrainConfig pretrain;
  pretrain.steps = 3;
  pretrain.batch = 2;
  pretrain.train_rtd = false;
  model.Pretrain(docs, pretrain);

  plm::SetFp32FusedInference(0);
  const la::Matrix want = model.Encode(docs[2]);
  plm::SetFp32FusedInference(1);
  const la::Matrix got = model.Encode(docs[2]);
  ExpectBitwiseEqual(want, got, "post-training encode");
  // And training really changed the weights (snapshot was not reused).
  EXPECT_NE(0, std::memcmp(before.data(), got.data(),
                           before.size() * sizeof(float)));
}

// Regression: MICoL-style fine-tuning runs its own AdamOptimizer over
// model.store(), never touching MiniLm's Pretrain/InvalidateFrozen
// boundary. The frozen fused snapshot must still be dropped (via the
// ParameterStore mutation generation), or fused inference keeps serving
// the pre-fine-tune weights.
TEST_F(FusedEncodeTest, ExternalOptimizerInvalidatesFrozenSnapshot) {
  plm::MiniLm model(TestConfig());
  const auto docs = MixedDocs(6, 131);
  plm::SetFp32FusedInference(1);
  const la::Matrix before = model.Encode(docs[0]);

  nn::OptimizerConfig opt_config;
  opt_config.lr = 5e-3f;
  nn::AdamOptimizer optimizer(&model.store(), opt_config);
  for (int step = 0; step < 2; ++step) {
    std::vector<nn::Tensor> pooled;
    for (size_t d = 0; d + 1 < docs.size(); d += 2) {
      pooled.push_back(model.PoolTensor(docs[d]));
      pooled.push_back(model.PoolTensor(docs[d + 1]));
    }
    nn::Tensor sims = nn::NormalizeRowsOp(nn::ConcatRows(pooled));
    const size_t rows = pooled.size();
    const size_t dim = model.config().dim;
    nn::Tensor sim = nn::Reshape(
        nn::BMatMulT(nn::Reshape(sims, {1, rows, dim}),
                     nn::Reshape(sims, {1, rows, dim})),
        {rows, rows});
    nn::Tensor loss = nn::InfoNce(sim, 0.1f);
    nn::Backward(loss);
    optimizer.Step();
  }

  plm::SetFp32FusedInference(0);
  const la::Matrix want = model.Encode(docs[0]);
  plm::SetFp32FusedInference(1);
  const la::Matrix got = model.Encode(docs[0]);
  ExpectBitwiseEqual(want, got, "post-fine-tune encode");
  EXPECT_NE(0, std::memcmp(before.data(), got.data(),
                           before.size() * sizeof(float)));
}

}  // namespace
}  // namespace stm
