#include <gtest/gtest.h>

#include "text/corpus.h"
#include "text/tfidf.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace stm::text {
namespace {

TEST(VocabularyTest, SpecialTokensPresent) {
  Vocabulary vocab;
  EXPECT_EQ(vocab.size(), static_cast<size_t>(kNumSpecialTokens));
  EXPECT_EQ(vocab.IdOf("[PAD]"), kPadId);
  EXPECT_EQ(vocab.IdOf("[MASK]"), kMaskId);
  EXPECT_TRUE(Vocabulary::IsSpecial(kClsId));
}

TEST(VocabularyTest, AddAndLookup) {
  Vocabulary vocab;
  const int32_t id = vocab.AddToken("soccer", 3);
  EXPECT_EQ(vocab.IdOf("soccer"), id);
  EXPECT_EQ(vocab.TokenOf(id), "soccer");
  EXPECT_EQ(vocab.CountOf(id), 3);
  vocab.AddToken("soccer", 2);
  EXPECT_EQ(vocab.CountOf(id), 5);
  EXPECT_EQ(vocab.IdOf("unknown-token"), kUnkId);
  EXPECT_FALSE(vocab.Contains("unknown-token"));
}

TEST(VocabularyTest, PrunedKeepsFrequent) {
  Vocabulary vocab;
  vocab.AddToken("rare", 1);
  vocab.AddToken("common", 100);
  vocab.AddToken("mid", 10);
  Vocabulary pruned = vocab.Pruned(5);
  EXPECT_TRUE(pruned.Contains("common"));
  EXPECT_TRUE(pruned.Contains("mid"));
  EXPECT_FALSE(pruned.Contains("rare"));
  // Frequency order after specials.
  EXPECT_LT(pruned.IdOf("common"), pruned.IdOf("mid"));
}

TEST(VocabularyTest, PrunedMaxSize) {
  Vocabulary vocab;
  for (int i = 0; i < 20; ++i) {
    vocab.AddToken("w" + std::to_string(i), 20 - i);
  }
  Vocabulary pruned = vocab.Pruned(1, kNumSpecialTokens + 5);
  EXPECT_EQ(pruned.size(), static_cast<size_t>(kNumSpecialTokens + 5));
  EXPECT_TRUE(pruned.Contains("w0"));
  EXPECT_FALSE(pruned.Contains("w10"));
}

TEST(TokenizerTest, BasicTokenization) {
  auto words = Tokenizer::Words("Hello, World! It's CNN-style. ");
  EXPECT_EQ(words,
            (std::vector<std::string>{"hello", "world", "it's",
                                      "cnn-style"}));
}

TEST(TokenizerTest, EncodeGrowsVocab) {
  Vocabulary vocab;
  auto ids = Tokenizer::Encode("alpha beta alpha", vocab, true);
  EXPECT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0], ids[2]);
  EXPECT_EQ(vocab.CountOf(ids[0]), 2);
}

TEST(TokenizerTest, EncodeFrozenMapsUnknownToUnk) {
  Vocabulary vocab;
  vocab.AddToken("known");
  auto ids = Tokenizer::Encode("known unknown", vocab);
  EXPECT_EQ(ids[0], vocab.IdOf("known"));
  EXPECT_EQ(ids[1], kUnkId);
}

TEST(StopwordsTest, CommonWordsAreStopwords) {
  EXPECT_TRUE(IsStopword("the"));
  EXPECT_TRUE(IsStopword("and"));
  EXPECT_FALSE(IsStopword("soccer"));
}

Corpus MakeTinyCorpus() {
  Corpus corpus;
  corpus.label_names() = {"sports", "law"};
  auto add_doc = [&corpus](const std::string& body, int label) {
    Document doc;
    doc.tokens = Tokenizer::Encode(body, corpus.vocab(), true);
    doc.labels = {label};
    corpus.docs().push_back(std::move(doc));
  };
  add_doc("soccer goal penalty match", 0);
  add_doc("soccer match stadium goal", 0);
  add_doc("judge court law penalty", 1);
  add_doc("court ruling law judge verdict", 1);
  return corpus;
}

TEST(CorpusTest, DocumentFrequencies) {
  Corpus corpus = MakeTinyCorpus();
  auto df = corpus.DocumentFrequencies();
  EXPECT_EQ(df[static_cast<size_t>(corpus.vocab().IdOf("soccer"))], 2);
  EXPECT_EQ(df[static_cast<size_t>(corpus.vocab().IdOf("penalty"))], 2);
  EXPECT_EQ(df[static_cast<size_t>(corpus.vocab().IdOf("verdict"))], 1);
}

TEST(CorpusTest, OccurrencesFindsAll) {
  Corpus corpus = MakeTinyCorpus();
  const int32_t penalty = corpus.vocab().IdOf("penalty");
  auto hits = corpus.Occurrences(penalty);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].first, 0u);
  EXPECT_EQ(hits[1].first, 2u);
}

TEST(CorpusTest, GoldLabels) {
  Corpus corpus = MakeTinyCorpus();
  EXPECT_EQ(corpus.GoldLabels(), (std::vector<int>{0, 0, 1, 1}));
}

TEST(SplitTest, DeterministicAndDisjoint) {
  Split a = MakeSplit(100, 0.2, 7);
  Split b = MakeSplit(100, 0.2, 7);
  EXPECT_EQ(a.test, b.test);
  EXPECT_EQ(a.test.size(), 20u);
  EXPECT_EQ(a.train.size(), 80u);
  std::set<size_t> all(a.test.begin(), a.test.end());
  all.insert(a.train.begin(), a.train.end());
  EXPECT_EQ(all.size(), 100u);
}

TEST(TfIdfTest, QueryMatchesRightDocs) {
  Corpus corpus = MakeTinyCorpus();
  TfIdf tfidf(corpus);
  auto vecs = tfidf.TransformAll(corpus);
  SparseVector sports_query = tfidf.KeywordQuery(
      {corpus.vocab().IdOf("soccer"), corpus.vocab().IdOf("goal")});
  // Sports docs should score higher than law docs.
  const float s0 = SparseCosine(sports_query, vecs[0]);
  const float s2 = SparseCosine(sports_query, vecs[2]);
  EXPECT_GT(s0, s2);
}

TEST(TfIdfTest, TransformIsUnitNorm) {
  Corpus corpus = MakeTinyCorpus();
  TfIdf tfidf(corpus);
  SparseVector vec = tfidf.Transform(corpus.docs()[0].tokens);
  float norm_sq = 0.0f;
  for (float w : vec.weights) norm_sq += w * w;
  EXPECT_NEAR(norm_sq, 1.0f, 1e-5f);
}

TEST(TfIdfTest, TopTermsPrefersDistinctive) {
  Corpus corpus = MakeTinyCorpus();
  TfIdf tfidf(corpus);
  auto top = tfidf.TopTerms(corpus.docs()[3].tokens, 2);
  ASSERT_EQ(top.size(), 2u);
  // "verdict" and "ruling" appear only in this doc -> highest idf.
  std::set<std::string> names;
  for (int32_t id : top) names.insert(corpus.vocab().TokenOf(id));
  EXPECT_TRUE(names.count("verdict") || names.count("ruling"));
}

TEST(TfIdfTest, TopTermsBreaksTiesByTokenId) {
  // One document, every token appearing exactly once: all weights are
  // equal (same tf, same idf), so the ranking must fall back to ascending
  // token id instead of whatever order the sort left equal keys in.
  Corpus corpus;
  std::vector<int32_t> tokens;
  for (const char* word : {"delta", "alpha", "echo", "bravo", "charlie"}) {
    tokens.push_back(corpus.vocab().AddToken(word));
  }
  Document doc;
  doc.tokens = tokens;
  corpus.docs().push_back(doc);
  TfIdf tfidf(corpus, /*drop_stopwords=*/false);
  const auto top = tfidf.TopTerms(doc.tokens, 3);
  ASSERT_EQ(top.size(), 3u);
  // Insertion order above is the id order: delta < alpha < echo ids.
  EXPECT_EQ(top[0], corpus.vocab().IdOf("delta"));
  EXPECT_EQ(top[1], corpus.vocab().IdOf("alpha"));
  EXPECT_EQ(top[2], corpus.vocab().IdOf("echo"));
}

TEST(TfIdfTest, SparseCosineOrthogonalAndIdentical) {
  SparseVector a{{1, 3}, {0.6f, 0.8f}};
  SparseVector b{{2, 4}, {1.0f, 1.0f}};
  EXPECT_FLOAT_EQ(SparseCosine(a, b), 0.0f);
  EXPECT_NEAR(SparseCosine(a, a), 1.0f, 1e-6f);
}

TEST(BagOfWordsTest, CountsTokens) {
  auto bow = BagOfWords({5, 5, 6}, 8);
  EXPECT_FLOAT_EQ(bow[5], 2.0f);
  EXPECT_FLOAT_EQ(bow[6], 1.0f);
  EXPECT_FLOAT_EQ(bow[7], 0.0f);
}

}  // namespace
}  // namespace stm::text
