// Tests for length-bucketed batch encoding (plm/batch_scheduler.h plus the
// bucketed EncodeBatch/PoolBatch paths in plm/minilm.cc and
// plm/quantized_minilm.cc). The contract under test is strict: bucketed and
// padded outputs are BIT-identical to the per-document calls, under any
// input permutation and any STM_NUM_THREADS, in both fp32 and int8. Built
// as its own binary (stm_encode_tests, ctest label "encode") so
// scripts/check.sh can run the suite under ASan in isolation.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <numeric>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "la/matrix.h"
#include "plm/batch_scheduler.h"
#include "plm/minilm.h"
#include "plm/quantized_minilm.h"
#include "text/vocabulary.h"

namespace stm {
namespace {

// Restores every process-wide switch the suite touches, no matter how a
// test exits, so a failing assertion can't leak state into later tests.
struct BatchGuard {
  ~BatchGuard() {
    plm::SetQuantInference(-1);
    plm::SetBatchOptions(plm::BatchOptions{});
    ThreadPool::Reset(ThreadPool::ConfiguredThreads());
  }
};

plm::BatchOptions Options(plm::BatchMode mode) {
  plm::BatchOptions options;
  options.mode = mode;
  return options;
}

// Mixed-length corpus: mostly short docs, a long tail, plus the edge
// cases (empty doc -> single pad token, doc longer than max_seq).
std::vector<std::vector<int32_t>> MixedDocs(size_t count, size_t vocab,
                                            uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<int32_t>> docs;
  docs.push_back({});  // Truncate turns this into one kPadId token
  for (size_t d = 1; d < count; ++d) {
    size_t len;
    const double r = rng.Uniform();
    if (r < 0.7) {
      len = 2 + rng.UniformInt(10);
    } else if (r < 0.95) {
      len = 12 + rng.UniformInt(14);
    } else {
      len = 36 + rng.UniformInt(8);  // truncated to max_seq
    }
    std::vector<int32_t> doc(len);
    for (int32_t& id : doc) {
      id = text::kNumSpecialTokens +
           static_cast<int32_t>(
               rng.UniformInt(vocab - text::kNumSpecialTokens));
    }
    docs.push_back(std::move(doc));
  }
  return docs;
}

plm::MiniLmConfig TestConfig(size_t vocab) {
  plm::MiniLmConfig config;
  config.vocab_size = vocab;
  config.dim = 24;
  config.layers = 2;
  config.heads = 4;
  config.ffn_dim = 48;
  config.max_seq = 32;
  config.seed = 7;
  return config;
}

void ExpectBitwiseEqual(const la::Matrix& want, const la::Matrix& got,
                        const std::string& what) {
  ASSERT_EQ(want.rows(), got.rows()) << what;
  ASSERT_EQ(want.cols(), got.cols()) << what;
  EXPECT_EQ(0, std::memcmp(want.data(), got.data(),
                           want.size() * sizeof(float)))
      << what;
}

// ---- PlanBuckets unit properties ----

TEST(PlanBucketsTest, EveryDocInExactlyOneBucket) {
  Rng rng(3);
  std::vector<size_t> lengths(200);
  for (size_t& len : lengths) len = 1 + rng.UniformInt(48);
  const plm::BatchPlan plan =
      plm::PlanBuckets(lengths, Options(plm::BatchMode::kBucketed));
  std::vector<int> seen(lengths.size(), 0);
  for (const plm::EncodeBucket& bucket : plan.buckets) {
    for (size_t doc : bucket.docs) {
      ASSERT_LT(doc, lengths.size());
      ++seen[doc];
      EXPECT_LE(lengths[doc], bucket.seq);
    }
  }
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], 1) << "doc " << i;
  }
}

TEST(PlanBucketsTest, RespectsWasteAndTokenBounds) {
  Rng rng(5);
  std::vector<size_t> lengths(300);
  for (size_t& len : lengths) len = 1 + rng.UniformInt(48);
  plm::BatchOptions options = Options(plm::BatchMode::kBucketed);
  options.max_waste = 0.25f;
  options.max_bucket_tokens = 256;
  const plm::BatchPlan plan = plm::PlanBuckets(lengths, options);
  size_t real = 0, padded = 0;
  for (const plm::EncodeBucket& bucket : plan.buckets) {
    ASSERT_FALSE(bucket.docs.empty());
    size_t bucket_real = 0;
    for (size_t doc : bucket.docs) bucket_real += lengths[doc];
    const size_t bucket_padded = bucket.seq * bucket.docs.size();
    // A single doc can exceed max_bucket_tokens only if it alone does.
    if (bucket.docs.size() > 1) {
      EXPECT_LE(bucket_padded, options.max_bucket_tokens);
    }
    const float waste =
        static_cast<float>(bucket_padded - bucket_real) /
        static_cast<float>(bucket_padded);
    EXPECT_LE(waste, options.max_waste + 1e-6f);
    real += bucket_real;
    padded += bucket_padded;
  }
  EXPECT_EQ(real, plan.real_tokens);
  EXPECT_EQ(padded, plan.padded_tokens);
  EXPECT_EQ(real, std::accumulate(lengths.begin(), lengths.end(), size_t{0}));
}

TEST(PlanBucketsTest, DeterministicAndPermutationConsistent) {
  Rng rng(9);
  std::vector<size_t> lengths(80);
  for (size_t& len : lengths) len = 1 + rng.UniformInt(32);
  const plm::BatchOptions options = Options(plm::BatchMode::kBucketed);
  const plm::BatchPlan a = plm::PlanBuckets(lengths, options);
  const plm::BatchPlan b = plm::PlanBuckets(lengths, options);
  ASSERT_EQ(a.buckets.size(), b.buckets.size());
  for (size_t i = 0; i < a.buckets.size(); ++i) {
    EXPECT_EQ(a.buckets[i].seq, b.buckets[i].seq);
    EXPECT_EQ(a.buckets[i].docs, b.buckets[i].docs);
  }
}

TEST(PlanBucketsTest, PerDocModeKeepsInputOrder) {
  const std::vector<size_t> lengths = {5, 3, 9, 1};
  const plm::BatchPlan plan =
      plm::PlanBuckets(lengths, Options(plm::BatchMode::kPerDoc));
  ASSERT_EQ(plan.buckets.size(), lengths.size());
  for (size_t i = 0; i < lengths.size(); ++i) {
    EXPECT_EQ(plan.buckets[i].seq, lengths[i]);
    ASSERT_EQ(plan.buckets[i].docs.size(), 1u);
    EXPECT_EQ(plan.buckets[i].docs[0], i);
  }
}

TEST(PlanBucketsTest, PaddedModeUsesGlobalMax) {
  const std::vector<size_t> lengths = {5, 3, 9, 1};
  const plm::BatchPlan plan =
      plm::PlanBuckets(lengths, Options(plm::BatchMode::kPadded));
  for (const plm::EncodeBucket& bucket : plan.buckets) {
    EXPECT_EQ(bucket.seq, 9u);
  }
}

// ---- batched vs per-document, fp32 and int8 ----

class EncodeBatchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    model_ = new plm::MiniLm(TestConfig(kVocab));
    docs_ = new std::vector<std::vector<int32_t>>(MixedDocs(60, kVocab, 21));
  }

  static void TearDownTestSuite() {
    delete model_;
    delete docs_;
    model_ = nullptr;
    docs_ = nullptr;
  }

  // Per-document reference outputs under the CURRENT quant setting.
  static std::vector<la::Matrix> ReferenceEncode() {
    plm::SetBatchOptions(Options(plm::BatchMode::kPerDoc));
    std::vector<la::Matrix> out;
    for (const auto& doc : *docs_) out.push_back(model_->Encode(doc));
    return out;
  }

  static la::Matrix ReferencePool() {
    plm::SetBatchOptions(Options(plm::BatchMode::kPerDoc));
    la::Matrix out(docs_->size(), model_->config().dim);
    for (size_t d = 0; d < docs_->size(); ++d) {
      const std::vector<float> pooled = model_->Pool((*docs_)[d]);
      std::copy(pooled.begin(), pooled.end(), out.Row(d));
    }
    return out;
  }

  static void CheckModeMatchesPerDoc(plm::BatchMode mode) {
    const std::vector<la::Matrix> want = ReferenceEncode();
    const la::Matrix want_pool = ReferencePool();
    plm::SetBatchOptions(Options(mode));
    const std::vector<la::Matrix> got = model_->EncodeBatch(*docs_);
    const la::Matrix got_pool = model_->PoolBatch(*docs_);
    ASSERT_EQ(want.size(), got.size());
    for (size_t d = 0; d < want.size(); ++d) {
      ExpectBitwiseEqual(want[d], got[d], "encode doc " + std::to_string(d));
    }
    ExpectBitwiseEqual(want_pool, got_pool, "pool batch");
  }

  static constexpr size_t kVocab = 120;
  static plm::MiniLm* model_;
  static std::vector<std::vector<int32_t>>* docs_;
};

plm::MiniLm* EncodeBatchTest::model_ = nullptr;
std::vector<std::vector<int32_t>>* EncodeBatchTest::docs_ = nullptr;

TEST_F(EncodeBatchTest, BucketedMatchesPerDocFp32) {
  BatchGuard guard;
  plm::SetQuantInference(0);
  CheckModeMatchesPerDoc(plm::BatchMode::kBucketed);
}

TEST_F(EncodeBatchTest, PaddedMatchesPerDocFp32) {
  BatchGuard guard;
  plm::SetQuantInference(0);
  CheckModeMatchesPerDoc(plm::BatchMode::kPadded);
}

TEST_F(EncodeBatchTest, BucketedMatchesPerDocInt8) {
  BatchGuard guard;
  plm::SetQuantInference(1);
  CheckModeMatchesPerDoc(plm::BatchMode::kBucketed);
}

TEST_F(EncodeBatchTest, PaddedMatchesPerDocInt8) {
  BatchGuard guard;
  plm::SetQuantInference(1);
  CheckModeMatchesPerDoc(plm::BatchMode::kPadded);
}

TEST_F(EncodeBatchTest, PermutationInvariantBothPrecisions) {
  BatchGuard guard;
  plm::SetBatchOptions(Options(plm::BatchMode::kBucketed));
  std::vector<size_t> perm(docs_->size());
  std::iota(perm.begin(), perm.end(), size_t{0});
  Rng rng(77);
  for (size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.UniformInt(i)]);
  }
  std::vector<std::vector<int32_t>> shuffled(docs_->size());
  for (size_t i = 0; i < perm.size(); ++i) shuffled[i] = (*docs_)[perm[i]];

  for (int quant = 0; quant <= 1; ++quant) {
    plm::SetQuantInference(quant);
    const std::vector<la::Matrix> base = model_->EncodeBatch(*docs_);
    const std::vector<la::Matrix> got = model_->EncodeBatch(shuffled);
    const la::Matrix base_pool = model_->PoolBatch(*docs_);
    const la::Matrix got_pool = model_->PoolBatch(shuffled);
    for (size_t i = 0; i < perm.size(); ++i) {
      ExpectBitwiseEqual(base[perm[i]], got[i],
                         "quant=" + std::to_string(quant) + " doc " +
                             std::to_string(i));
      EXPECT_EQ(0, std::memcmp(base_pool.Row(perm[i]), got_pool.Row(i),
                               base_pool.cols() * sizeof(float)))
          << "quant=" << quant << " pooled doc " << i;
    }
  }
}

TEST_F(EncodeBatchTest, ThreadCountInvariantBothPrecisions) {
  BatchGuard guard;
  plm::SetBatchOptions(Options(plm::BatchMode::kBucketed));
  for (int quant = 0; quant <= 1; ++quant) {
    plm::SetQuantInference(quant);
    ThreadPool::Reset(1);
    const std::vector<la::Matrix> single = model_->EncodeBatch(*docs_);
    const la::Matrix single_pool = model_->PoolBatch(*docs_);
    ThreadPool::Reset(4);
    const std::vector<la::Matrix> multi = model_->EncodeBatch(*docs_);
    const la::Matrix multi_pool = model_->PoolBatch(*docs_);
    ASSERT_EQ(single.size(), multi.size());
    for (size_t d = 0; d < single.size(); ++d) {
      ExpectBitwiseEqual(single[d], multi[d],
                         "quant=" + std::to_string(quant) + " doc " +
                             std::to_string(d));
    }
    ExpectBitwiseEqual(single_pool, multi_pool,
                       "quant=" + std::to_string(quant) + " pool");
  }
}

TEST_F(EncodeBatchTest, FrozenModelBatchMatchesItsOwnPerDoc) {
  BatchGuard guard;
  const auto frozen = model_->Freeze();
  plm::SetBatchOptions(Options(plm::BatchMode::kBucketed));
  const std::vector<la::Matrix> batched = frozen->EncodeBatch(*docs_);
  const la::Matrix batched_pool = frozen->PoolBatch(*docs_);
  ASSERT_EQ(batched.size(), docs_->size());
  for (size_t d = 0; d < docs_->size(); ++d) {
    const la::Matrix want = frozen->Encode((*docs_)[d]);
    ExpectBitwiseEqual(want, batched[d], "frozen doc " + std::to_string(d));
    const std::vector<float> want_pool = frozen->Pool((*docs_)[d]);
    EXPECT_EQ(0, std::memcmp(want_pool.data(), batched_pool.Row(d),
                             want_pool.size() * sizeof(float)))
        << "frozen pooled doc " << d;
  }
}

}  // namespace
}  // namespace stm
