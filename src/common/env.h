#ifndef STM_COMMON_ENV_H_
#define STM_COMMON_ENV_H_

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace stm {

// Read-only view of an entire file. Backed by a real memory mapping when
// the platform provides one (PosixEnv), otherwise by a heap copy of the
// bytes. The view owns its backing storage; `data()` stays valid until the
// view is destroyed.
class FileView {
 public:
  virtual ~FileView() = default;
  virtual const char* data() const = 0;
  virtual size_t size() const = 0;
  // True when the bytes are served straight from a memory mapping rather
  // than a heap copy (diagnostic / test hook).
  virtual bool mapped() const = 0;

  std::string_view view() const { return {data(), size()}; }
};

// Forward-only byte stream over a file, for line-at-a-time ingestion that
// must not hold the whole file in memory.
class SequentialFile {
 public:
  virtual ~SequentialFile() = default;
  // Reads up to `cap` bytes into `buf`; returns the byte count, where 0
  // means end of file.
  virtual StatusOr<size_t> Read(char* buf, size_t cap) = 0;
};

// Filesystem seam. All artifact I/O (model caches, embedding tables, TSV
// corpora) goes through an Env so tests can inject faults and production
// code gets atomic, durable writes in one place. Methods return Status:
// kUnavailable for a missing file or transient condition (retry may help),
// kIoError for everything else the filesystem refuses to do.
class Env {
 public:
  virtual ~Env() = default;

  // Reads the whole file into a string.
  virtual StatusOr<std::string> ReadFile(const std::string& path) = 0;

  // Writes `data` to a temporary file in the same directory, fsyncs, then
  // renames it over `path`. Readers never observe a partially written
  // file at `path`: they see the old bytes or the new bytes.
  virtual Status WriteFileAtomic(const std::string& path,
                                 std::string_view data) = 0;

  // Removes `path`. Deleting a non-existent file is kUnavailable.
  virtual Status Delete(const std::string& path) = 0;

  // Atomically renames `from` to `to` (same filesystem).
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  virtual bool FileExists(const std::string& path) = 0;

  // Maps `path` read-only. The base implementation is the portable
  // fallback — it reads the whole file through ReadFile() into a heap
  // view. PosixEnv overrides it with mmap + madvise(SEQUENTIAL) and falls
  // back to this path when the mapping itself fails.
  virtual StatusOr<std::unique_ptr<FileView>> MapFile(const std::string& path);

  // Opens `path` for forward-only streaming reads. The base implementation
  // reads the whole file eagerly (correct, not streaming); PosixEnv serves
  // bounded chunks from the file descriptor.
  virtual StatusOr<std::unique_ptr<SequentialFile>> OpenSequential(
      const std::string& path);

  // Creates a directory; an already-existing directory is not an error.
  // Parents are not created.
  virtual Status CreateDir(const std::string& path);

  // Lists the entry names (not paths) in a directory, sorted, excluding
  // "." and "..".
  virtual StatusOr<std::vector<std::string>> ListDir(const std::string& path);

  // Process-wide POSIX-backed instance. Never null; do not delete.
  static Env* Default();
};

// Bounded retry for transient (kUnavailable) write failures; backoff
// doubles per retry starting at `initial_backoff_ms`. Non-transient errors
// and exhaustion return the last Status unchanged.
struct RetryOptions {
  int max_attempts = 3;
  int initial_backoff_ms = 2;
};

Status WriteFileAtomicWithRetry(Env* env, const std::string& path,
                                std::string_view data,
                                const RetryOptions& retry = RetryOptions());

// Test double wrapping another Env. Faults are one-shot triggers armed by
// the test; unarmed operations pass through to the base env. See
// tests/fault_injection_test.cc for usage.
class FaultInjectingEnv : public Env {
 public:
  explicit FaultInjectingEnv(Env* base) : base_(base) {}

  StatusOr<std::string> ReadFile(const std::string& path) override;
  Status WriteFileAtomic(const std::string& path,
                         std::string_view data) override;
  Status Delete(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  bool FileExists(const std::string& path) override;
  StatusOr<std::unique_ptr<FileView>> MapFile(const std::string& path) override;
  StatusOr<std::unique_ptr<SequentialFile>> OpenSequential(
      const std::string& path) override;
  Status CreateDir(const std::string& path) override;
  StatusOr<std::vector<std::string>> ListDir(const std::string& path) override;

  // The next `count` MapFile calls behave as if mmap failed: the call
  // still succeeds but serves a heap copy (mapped() == false), exercising
  // the read-based fallback.
  void FailMmapNext(int count = 1) { fail_mmap_remaining_ = count; }

  // Streams opened by subsequent OpenSequential calls fail with kIoError
  // after serving `bytes` bytes — an I/O error in the middle of a file.
  void FailSequentialReadAfter(size_t bytes) {
    sequential_fail_armed_ = true;
    sequential_fail_after_ = bytes;
  }

  // Fails the next `count` WriteFileAtomic calls with `code` (transient by
  // default, so retry loops can be exercised).
  void FailNextWrites(int count,
                      StatusCode code = StatusCode::kUnavailable) {
    fail_writes_remaining_ = count;
    fail_write_code_ = code;
  }

  // Fails the Nth operation from now (0 = the very next one), counting
  // every ReadFile/WriteFileAtomic/Delete/Rename.
  void FailNthOp(int n, StatusCode code = StatusCode::kIoError) {
    fail_op_at_ = op_count_ + n;
    fail_op_code_ = code;
  }

  // The next WriteFileAtomic publishes only the first `keep_bytes` bytes —
  // a torn write that still got renamed into place.
  void ShortWriteNext(size_t keep_bytes) {
    short_write_armed_ = true;
    short_write_keep_ = keep_bytes;
  }

  // The next WriteFileAtomic publishes all but the last `drop_bytes` bytes.
  void TruncateNext(size_t drop_bytes) {
    truncate_armed_ = true;
    truncate_drop_ = drop_bytes;
  }

  // The next WriteFileAtomic "crashes" after writing the temp file but
  // before the rename: a stray `<path>.crashtmp` is left behind, nothing
  // appears at `path`, and kIoError is returned.
  void CrashNextWrite() { crash_write_armed_ = true; }

  int op_count() const { return op_count_; }
  int write_count() const { return write_count_; }
  int injected_failures() const { return injected_failures_; }

 private:
  // Returns true (and fills `out`) when a generic op fault is armed.
  bool MaybeInjectOpFault(const char* op, const std::string& path,
                          Status* out);

  Env* base_;
  int op_count_ = 0;
  int write_count_ = 0;
  int injected_failures_ = 0;

  int fail_writes_remaining_ = 0;
  StatusCode fail_write_code_ = StatusCode::kUnavailable;
  int fail_op_at_ = -1;
  StatusCode fail_op_code_ = StatusCode::kIoError;
  bool short_write_armed_ = false;
  size_t short_write_keep_ = 0;
  bool truncate_armed_ = false;
  size_t truncate_drop_ = 0;
  bool crash_write_armed_ = false;
  int fail_mmap_remaining_ = 0;
  bool sequential_fail_armed_ = false;
  size_t sequential_fail_after_ = 0;
};

}  // namespace stm

#endif  // STM_COMMON_ENV_H_
