// Recall and determinism guardrails for the src/index retrieval tiers:
// the brute-force tier must rank exactly like the scalar la::Cosine scans
// it replaced (same argmax ids, lowest-id ties) bitwise-identically at any
// thread count and under query permutation; the LSH tier must hold
// recall@10 >= 0.95 on clustered embeddings; and the STMA artifact must
// round-trip bitwise and quarantine (never crash on) corrupted bytes.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "index/ann.h"
#include "la/matrix.h"

namespace stm {
namespace {

std::string TestPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

// Restores one environment variable on scope exit.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = ::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value != nullptr) {
      ::setenv(name, value, /*overwrite=*/1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), /*overwrite=*/1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

// Restores the pool to the ambient default when a test resizes it.
class ScopedThreads {
 public:
  ~ScopedThreads() { ThreadPool::Reset(0); }
};

la::Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  la::Matrix m(rows, cols);
  Rng rng(seed);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.Normal());
  }
  return m;
}

// Clustered synthetic embeddings: `clusters` gaussian centers, points =
// center + small noise. Returns the data; true neighbors of a point
// concentrate in its own cluster, the regime LSH must handle.
la::Matrix ClusteredMatrix(size_t rows, size_t cols, size_t clusters,
                           uint64_t seed) {
  Rng rng(seed);
  la::Matrix centers(clusters, cols);
  for (size_t i = 0; i < centers.size(); ++i) {
    centers.data()[i] = static_cast<float>(rng.Normal());
  }
  la::Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    const float* center = centers.Row(r % clusters);
    float* row = m.Row(r);
    for (size_t c = 0; c < cols; ++c) {
      row[c] = center[c] + 0.15f * static_cast<float>(rng.Normal());
    }
  }
  return m;
}

// The scalar scan every converted call site used to run: la::Cosine per
// pair, strict > argmax (first maximum wins).
size_t ScalarArgmax(const float* query, const la::Matrix& base) {
  float best = -2.0f;
  size_t best_id = 0;
  for (size_t r = 0; r < base.rows(); ++r) {
    const float sim = la::Cosine(query, base.Row(r), base.cols());
    if (sim > best) {
      best = sim;
      best_id = r;
    }
  }
  return best_id;
}

TEST(AnnBruteTest, MatchesScalarArgmax) {
  const la::Matrix queries = RandomMatrix(40, 24, /*seed=*/1);
  const la::Matrix base = RandomMatrix(300, 24, /*seed=*/2);
  const std::vector<std::vector<ann::Neighbor>> top =
      ann::TopKSimilar(queries, base, 1);
  ASSERT_EQ(top.size(), queries.rows());
  for (size_t q = 0; q < queries.rows(); ++q) {
    ASSERT_EQ(top[q].size(), 1u);
    EXPECT_EQ(top[q][0].id, ScalarArgmax(queries.Row(q), base))
        << "query " << q;
  }
}

TEST(AnnBruteTest, MatchesScalarFullRanking) {
  // Full ordering, not just the argmax: k = rows must reproduce the
  // scalar sort by (similarity desc, id asc).
  const la::Matrix queries = RandomMatrix(10, 16, /*seed=*/3);
  const la::Matrix base = RandomMatrix(64, 16, /*seed=*/4);
  const std::vector<std::vector<ann::Neighbor>> top =
      ann::TopKSimilar(queries, base, base.rows());
  for (size_t q = 0; q < queries.rows(); ++q) {
    std::vector<std::pair<float, size_t>> scored;
    for (size_t r = 0; r < base.rows(); ++r) {
      scored.emplace_back(
          la::Cosine(queries.Row(q), base.Row(r), base.cols()), r);
    }
    std::sort(scored.begin(), scored.end(), [](const auto& a,
                                               const auto& b) {
      return a.first > b.first || (a.first == b.first && a.second < b.second);
    });
    ASSERT_EQ(top[q].size(), base.rows());
    for (size_t i = 0; i < base.rows(); ++i) {
      EXPECT_EQ(top[q][i].id, scored[i].second)
          << "query " << q << " rank " << i;
    }
  }
}

TEST(AnnBruteTest, TiesResolveToLowestId) {
  // Rows 3 and 7 are identical; both tie exactly (identical float inputs
  // produce identical scores), so 3 must rank ahead of 7.
  la::Matrix base = RandomMatrix(10, 8, /*seed=*/5);
  base.SetRow(7, base.RowVec(3));
  la::Matrix query(1, 8);
  query.SetRow(0, base.RowVec(3));
  const std::vector<std::vector<ann::Neighbor>> top =
      ann::TopKSimilar(query, base, 2);
  ASSERT_EQ(top[0].size(), 2u);
  EXPECT_EQ(top[0][0].id, 3u);
  EXPECT_EQ(top[0][1].id, 7u);
  EXPECT_EQ(std::memcmp(&top[0][0].score, &top[0][1].score, sizeof(float)),
            0);
}

TEST(AnnBruteTest, BitwiseDeterministicAcrossThreadCounts) {
  const la::Matrix queries = RandomMatrix(33, 48, /*seed=*/6);
  const la::Matrix base = RandomMatrix(500, 48, /*seed=*/7);
  ScopedThreads guard;
  ThreadPool::Reset(1);
  const std::vector<std::vector<ann::Neighbor>> want =
      ann::TopKSimilar(queries, base, 5);
  for (const size_t threads : {2, 4}) {
    ThreadPool::Reset(threads);
    const std::vector<std::vector<ann::Neighbor>> got =
        ann::TopKSimilar(queries, base, 5);
    ASSERT_EQ(got.size(), want.size());
    for (size_t q = 0; q < want.size(); ++q) {
      ASSERT_EQ(got[q].size(), want[q].size());
      for (size_t i = 0; i < want[q].size(); ++i) {
        EXPECT_EQ(got[q][i].id, want[q][i].id);
        EXPECT_EQ(std::memcmp(&got[q][i].score, &want[q][i].score,
                              sizeof(float)),
                  0)
            << threads << " threads, query " << q << " rank " << i;
      }
    }
  }
}

TEST(AnnBruteTest, BitwiseInvariantUnderQueryPermutation) {
  const la::Matrix queries = RandomMatrix(21, 32, /*seed=*/8);
  const la::Matrix base = RandomMatrix(200, 32, /*seed=*/9);
  const std::vector<std::vector<ann::Neighbor>> want =
      ann::TopKSimilar(queries, base, 3);

  Rng rng(10);
  const std::vector<size_t> perm = rng.Permutation(queries.rows());
  la::Matrix shuffled(queries.rows(), queries.cols());
  for (size_t q = 0; q < queries.rows(); ++q) {
    shuffled.SetRow(q, queries.RowVec(perm[q]));
  }
  const std::vector<std::vector<ann::Neighbor>> got =
      ann::TopKSimilar(shuffled, base, 3);
  for (size_t q = 0; q < queries.rows(); ++q) {
    ASSERT_EQ(got[q].size(), want[perm[q]].size());
    for (size_t i = 0; i < got[q].size(); ++i) {
      EXPECT_EQ(got[q][i].id, want[perm[q]][i].id);
      EXPECT_EQ(std::memcmp(&got[q][i].score, &want[perm[q]][i].score,
                            sizeof(float)),
                0);
    }
  }
}

TEST(AnnBruteTest, ClampsAndEdgeCases) {
  const la::Matrix base = RandomMatrix(4, 8, /*seed=*/11);
  la::Matrix queries = RandomMatrix(2, 8, /*seed=*/12);
  // k larger than the base clamps.
  EXPECT_EQ(ann::TopKSimilar(queries, base, 99)[0].size(), base.rows());
  // Empty query set.
  EXPECT_TRUE(ann::TopKSimilar(la::Matrix(0, 8), base, 3).empty());
  // A zero query scores 0 everywhere (la::Cosine's zero-vector contract)
  // and ties resolve to ascending ids.
  queries.SetRow(0, std::vector<float>(8, 0.0f));
  const std::vector<std::vector<ann::Neighbor>> top =
      ann::TopKSimilar(queries, base, 2);
  EXPECT_EQ(top[0][0].score, 0.0f);
  EXPECT_EQ(top[0][0].id, 0u);
  EXPECT_EQ(top[0][1].id, 1u);
}

TEST(AnnLshTest, RecallAtTenOnClusteredEmbeddings) {
  const size_t kRows = 4000;
  const size_t kDim = 32;
  const size_t kQueries = 100;
  const size_t kK = 10;
  // Base and queries drawn from the same cluster structure (one sample,
  // split), so each query's true neighbors concentrate in its cluster.
  const la::Matrix all = ClusteredMatrix(kRows + kQueries, kDim,
                                         /*clusters=*/25, /*seed=*/13);
  la::Matrix base(kRows, kDim);
  la::Matrix queries(kQueries, kDim);
  for (size_t r = 0; r < kRows; ++r) base.SetRow(r, all.RowVec(r));
  for (size_t q = 0; q < kQueries; ++q) {
    queries.SetRow(q, all.RowVec(kRows + q));
  }

  ann::IndexOptions options;
  options.mode = ann::AnnMode::kLsh;
  options.bits = 256;
  options.rerank = 200;
  const ann::Index index = ann::Index::Build(base, options);
  ASSERT_TRUE(index.lsh_enabled());

  const std::vector<std::vector<ann::Neighbor>> exact =
      ann::TopKSimilar(queries, base, kK);
  const std::vector<std::vector<ann::Neighbor>> approx =
      index.TopK(queries, kK);
  size_t hits = 0;
  for (size_t q = 0; q < kQueries; ++q) {
    ASSERT_EQ(approx[q].size(), kK);
    for (const ann::Neighbor& n : approx[q]) {
      for (const ann::Neighbor& e : exact[q]) {
        if (n.id == e.id) {
          ++hits;
          break;
        }
      }
    }
  }
  const double recall =
      static_cast<double>(hits) / static_cast<double>(kQueries * kK);
  EXPECT_GE(recall, 0.95) << "recall@10 over clustered embeddings";
}

TEST(AnnLshTest, DeterministicForFixedSeed) {
  const la::Matrix base = ClusteredMatrix(1000, 16, 10, /*seed=*/15);
  const la::Matrix queries = ClusteredMatrix(20, 16, 10, /*seed=*/16);
  ann::IndexOptions options;
  options.mode = ann::AnnMode::kLsh;
  const ann::Index index = ann::Index::Build(base, options);

  ScopedThreads guard;
  ThreadPool::Reset(1);
  const std::vector<std::vector<ann::Neighbor>> want =
      index.TopK(queries, 7);
  ThreadPool::Reset(4);
  const std::vector<std::vector<ann::Neighbor>> got = index.TopK(queries, 7);
  for (size_t q = 0; q < want.size(); ++q) {
    ASSERT_EQ(got[q].size(), want[q].size());
    for (size_t i = 0; i < want[q].size(); ++i) {
      EXPECT_EQ(got[q][i].id, want[q][i].id);
      EXPECT_EQ(std::memcmp(&got[q][i].score, &want[q][i].score,
                            sizeof(float)),
                0);
    }
  }
}

TEST(AnnLshTest, AutoCutoverSelectsTier) {
  ann::IndexOptions options;
  options.mode = ann::AnnMode::kAuto;
  options.auto_min_rows = 64;
  EXPECT_FALSE(
      ann::Index::Build(RandomMatrix(63, 8, 17), options).lsh_enabled());
  EXPECT_TRUE(
      ann::Index::Build(RandomMatrix(64, 8, 18), options).lsh_enabled());
  options.mode = ann::AnnMode::kOff;
  EXPECT_FALSE(
      ann::Index::Build(RandomMatrix(64, 8, 19), options).lsh_enabled());
}

TEST(AnnArtifactTest, RoundTripIsBitwiseIdentical) {
  Env* env = Env::Default();
  for (const bool lsh : {false, true}) {
    const la::Matrix base = ClusteredMatrix(300, 12, 6, /*seed=*/20);
    const la::Matrix queries = ClusteredMatrix(15, 12, 6, /*seed=*/21);
    ann::IndexOptions options;
    options.mode = lsh ? ann::AnnMode::kLsh : ann::AnnMode::kOff;
    const ann::Index built = ann::Index::Build(base, options);
    const std::string path =
        TestPath(lsh ? "ann_rt_lsh.stma" : "ann_rt_brute.stma");
    ASSERT_TRUE(built.Save(env, path).ok());

    StatusOr<ann::Index> loaded = ann::Index::Load(env, path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded->rows(), built.rows());
    EXPECT_EQ(loaded->dim(), built.dim());
    EXPECT_EQ(loaded->lsh_enabled(), lsh);

    const std::vector<std::vector<ann::Neighbor>> want =
        built.TopK(queries, 5);
    const std::vector<std::vector<ann::Neighbor>> got =
        loaded->TopK(queries, 5);
    for (size_t q = 0; q < want.size(); ++q) {
      ASSERT_EQ(got[q].size(), want[q].size());
      for (size_t i = 0; i < want[q].size(); ++i) {
        EXPECT_EQ(got[q][i].id, want[q][i].id);
        EXPECT_EQ(std::memcmp(&got[q][i].score, &want[q][i].score,
                              sizeof(float)),
                  0);
      }
    }
  }
}

TEST(AnnArtifactTest, CorruptedBytesYieldCorruptDataNeverCrash) {
  Env* env = Env::Default();
  const la::Matrix base = ClusteredMatrix(200, 8, 4, /*seed=*/22);
  ann::IndexOptions options;
  options.mode = ann::AnnMode::kLsh;
  const std::string path = TestPath("ann_corrupt.stma");
  ASSERT_TRUE(ann::Index::Build(base, options).Save(env, path).ok());

  StatusOr<std::string> bytes = env->ReadFile(path);
  ASSERT_TRUE(bytes.ok());
  // Flip one byte at every stride through the file: frame, header fields,
  // payload arrays and trailer all get hit.
  for (size_t pos = 0; pos < bytes->size(); pos += 97) {
    std::string mutated = *bytes;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x40);
    ASSERT_TRUE(env->WriteFileAtomic(path, mutated).ok());
    StatusOr<ann::Index> loaded = ann::Index::Load(env, path);
    EXPECT_FALSE(loaded.ok()) << "flip at " << pos;
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruptData)
        << "flip at " << pos;
  }

  // Truncations at every boundary must also be rejected cleanly.
  for (const size_t keep : {0u, 3u, 17u, 40u}) {
    ASSERT_TRUE(
        env->WriteFileAtomic(path, bytes->substr(0, keep)).ok());
    StatusOr<ann::Index> loaded = ann::Index::Load(env, path);
    EXPECT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruptData);
  }
}

TEST(AnnArtifactTest, LoadOrBuildQuarantinesTornWriteAndRebuilds) {
  Env* base_env = Env::Default();
  FaultInjectingEnv env(base_env);
  const la::Matrix base = ClusteredMatrix(150, 8, 3, /*seed=*/23);
  ann::IndexOptions options;
  options.mode = ann::AnnMode::kLsh;
  const std::string path = TestPath("ann_torn.stma");
  (void)base_env->Delete(path);
  (void)base_env->Delete(path + ".corrupt");

  // A torn write leaves a half-published artifact behind.
  env.ShortWriteNext(64);
  ASSERT_TRUE(ann::Index::Build(base, options).Save(&env, path).ok());
  ASSERT_TRUE(ann::Index::Load(&env, path).status().code() ==
              StatusCode::kCorruptData);

  // LoadOrBuild must quarantine the bad file, rebuild, and re-save a
  // loadable index.
  const ann::Index rebuilt = ann::Index::LoadOrBuild(&env, path, base,
                                                     options);
  EXPECT_EQ(rebuilt.rows(), base.rows());
  EXPECT_TRUE(env.FileExists(path + ".corrupt"));
  StatusOr<ann::Index> reloaded = ann::Index::Load(&env, path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded->rows(), base.rows());

  // A cached index for a different base shape is rebuilt, not served.
  const la::Matrix other = ClusteredMatrix(75, 8, 3, /*seed=*/24);
  const ann::Index reshaped = ann::Index::LoadOrBuild(&env, path, other,
                                                      options);
  EXPECT_EQ(reshaped.rows(), other.rows());
}

TEST(AnnEnvTest, KnobsParseThroughEnvParse) {
  {
    ScopedEnv mode("STM_ANN", "lsh");
    ScopedEnv bits("STM_ANN_BITS", "192");
    ScopedEnv rerank("STM_ANN_RERANK", "64");
    ScopedEnv auto_rows("STM_ANN_AUTO_ROWS", "1000");
    const ann::IndexOptions options = ann::IndexOptionsFromEnv();
    EXPECT_EQ(options.mode, ann::AnnMode::kLsh);
    EXPECT_EQ(options.bits, 192u);
    EXPECT_EQ(options.rerank, 64u);
    EXPECT_EQ(options.auto_min_rows, 1000u);
  }
  {
    ScopedEnv mode("STM_ANN", "off");
    EXPECT_EQ(ann::IndexOptionsFromEnv().mode, ann::AnnMode::kOff);
  }
  {
    // Malformed values warn and keep the defaults.
    ScopedEnv mode("STM_ANN", "bogus");
    ScopedEnv bits("STM_ANN_BITS", "not-a-number");
    const ann::IndexOptions options = ann::IndexOptionsFromEnv();
    const ann::IndexOptions defaults;
    EXPECT_EQ(options.mode, defaults.mode);
    EXPECT_EQ(options.bits, defaults.bits);
  }
  {
    // Non-multiple-of-64 bit widths round up at Build.
    ScopedEnv mode("STM_ANN", "lsh");
    ScopedEnv bits("STM_ANN_BITS", "100");
    const ann::Index index =
        ann::Index::Build(RandomMatrix(32, 8, 25), ann::IndexOptionsFromEnv());
    EXPECT_EQ(index.options().bits, 128u);
  }
}

}  // namespace
}  // namespace stm
