// GEMM kernel bench: times the seed's serial scalar loops ("reference")
// against the blocked, packed kernel library ("packed", see
// la/gemm_kernels.h) over the shapes the encoder actually runs — QKV and
// output projections (rows x 384 x 384), the FFN up/down projections
// (384 <-> 1536), and the three transpose variants. Inference-layout
// shapes (nn/nt) also time the int8 quantized kernel ("int8", see
// la/qgemm.h) with B pre-packed as a frozen weight. One table row per
// shape; with STM_BENCH_JSON=<path> every reference/packed/int8 timing
// is also recorded for scripted before/after comparison (see
// bench/run_benches.sh).
//
//   ./bench_gemm            full sweep (respects STM_NUM_THREADS)
//   ./bench_gemm --smoke    seconds-long correctness pass used by ctest;
//                           exits non-zero if packed and reference
//                           disagree beyond float reassociation
//
// The packed path is deterministic per the DESIGN.md contract: rerunning
// at any thread count reproduces the same floats bit-for-bit.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "la/gemm_kernels.h"
#include "la/matrix.h"
#include "la/qgemm.h"

namespace stm {
namespace {

enum class Variant { kNN, kNT, kTN };  // B, B^T, A^T operand layouts

const char* VariantName(Variant v) {
  switch (v) {
    case Variant::kNN: return "nn";
    case Variant::kNT: return "nt";
    case Variant::kTN: return "tn";
  }
  return "?";
}

std::vector<float> RandomVec(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.Uniform() * 2.0 - 1.0);
  return v;
}

void RunReference(Variant v, const float* a, const float* b, float* c,
                  size_t m, size_t k, size_t n) {
  switch (v) {
    case Variant::kNN: la::ReferenceGemmAcc(a, b, c, m, k, n); return;
    case Variant::kNT: la::ReferenceGemmBtAcc(a, b, c, m, k, n); return;
    case Variant::kTN: la::ReferenceGemmAtAcc(a, b, c, m, k, n); return;
  }
}

void RunPacked(Variant v, const float* a, const float* b, float* c,
               size_t m, size_t k, size_t n) {
  switch (v) {
    case Variant::kNN:
      la::PackedGemmAcc(a, k, 1, b, n, 1, c, m, k, n);
      return;
    case Variant::kNT:
      la::PackedGemmAcc(a, k, 1, b, 1, k, c, m, k, n);
      return;
    case Variant::kTN:
      la::PackedGemmAcc(a, 1, m, b, n, 1, c, m, k, n);
      return;
  }
}

struct Operands {
  std::vector<float> a, b, c;
};

// Packs B for the int8 path, honoring the variant's operand layout. The
// quantized kernel only covers inference shapes — activations [m, k]
// times a pre-packed weight — so kTN (a transposed-A gradient shape) has
// no int8 counterpart and returns false.
bool PackInt8Operand(Variant v, const float* b, size_t k, size_t n,
                     la::Int8PackedB* packed) {
  switch (v) {
    case Variant::kNN:
      *packed = la::PackInt8B(b, n, 1, k, n);
      return true;
    case Variant::kNT:
      *packed = la::PackInt8B(b, 1, k, k, n);
      return true;
    case Variant::kTN:
      return false;
  }
  return false;
}

Operands MakeOperands(Variant v, size_t m, size_t k, size_t n,
                      uint64_t seed) {
  Operands ops;
  ops.a = RandomVec(v == Variant::kTN ? k * m : m * k, seed);
  ops.b = RandomVec(v == Variant::kNT ? n * k : k * n, seed + 1);
  ops.c.assign(m * n, 0.0f);
  return ops;
}

std::string ShapeName(Variant v, size_t m, size_t k, size_t n) {
  return "gemm_" + std::to_string(m) + "x" + std::to_string(k) + "x" +
         std::to_string(n) + "_" + VariantName(v);
}

// Short tag of the ISA tier the dispatch selected, appended to every row
// and JSON method name so per-tier timings never collide when the suite
// is re-run under a different STM_ISA (see bench/run_benches.sh).
std::string IsaTag() {
  const std::string isa = la::GemmKernelIsa();
  if (isa == "generic") return "gen";
  if (isa == "avx2+fma") return "avx2";
  if (isa == "avx512+vnni") return "vnni";
  return isa;  // "avx512" and any future tier name already fit
}

// "generic:ok avx2:ok avx512:no ..." — every compiled tier plus whether
// THIS machine can run it, recorded in the table title so a committed
// BENCH_gemm.json says which tiers the numbers could have used.
std::string TierAvailability() {
  std::string out;
  for (const auto& tier : la::detail::CompiledGemmKernelTiers()) {
    if (!out.empty()) out += " ";
    out += tier.fns->name;
    out += tier.supported ? ":ok" : ":no";
  }
  return out;
}

// ---- timed sweep ----

struct ShapeSpec {
  size_t m, k, n;
  Variant variant;
};

// Repetitions sized for ~4e8 multiply-adds per timed method, so each row
// runs long enough to be stable without dragging the sweep out.
int RepsFor(size_t m, size_t k, size_t n) {
  const size_t ops = m * k * n;
  const size_t target = size_t{4} * 100 * 1000 * 1000;
  const size_t reps = ops == 0 ? 1 : target / ops;
  return static_cast<int>(reps < 1 ? 1 : reps);
}

int RunSweep() {
  const ShapeSpec shapes[] = {
      {256, 384, 384, Variant::kNN},   // acceptance shape: B*S x d x d
      {256, 384, 384, Variant::kNT},
      {256, 384, 384, Variant::kTN},
      {256, 384, 1152, Variant::kNN},  // fused QKV: one B*S x d x 3d pass
      {384, 384, 1536, Variant::kNN},  // FFN up-projection
      {384, 1536, 384, Variant::kNN},  // FFN down-projection
      {64, 64, 64, Variant::kNT},      // attention scores, S=64 strip
      {128, 64, 128, Variant::kNT},    // attention-score shape
      {256, 64, 256, Variant::kNT},    // attention scores, S=256
  };
  const std::string table =
      std::string("GEMM kernels (isa=") + la::GemmKernelIsa() +
      "; tiers " + TierAvailability() + ") @ " +
      std::to_string(ThreadPool::Global().threads()) + " threads";
  bench::Table out(table, {"ref_s", "packed_s", "speedup", "gflops",
                           "int8_s", "int8_x"});
  const std::string tag = IsaTag();
  for (const ShapeSpec& s : shapes) {
    const std::string name =
        ShapeName(s.variant, s.m, s.k, s.n) + "@" + tag;
    Operands ops = MakeOperands(s.variant, s.m, s.k, s.n, 7);
    const int reps = RepsFor(s.m, s.k, s.n);

    double ref_s = 0.0;
    {
      bench::MethodTimer timer(table, name + "_reference");
      for (int r = 0; r < reps; ++r) {
        RunReference(s.variant, ops.a.data(), ops.b.data(), ops.c.data(),
                     s.m, s.k, s.n);
      }
      ref_s = timer.Seconds() / reps;
    }
    double packed_s = 0.0;
    {
      bench::MethodTimer timer(table, name + "_packed");
      for (int r = 0; r < reps; ++r) {
        RunPacked(s.variant, ops.a.data(), ops.b.data(), ops.c.data(),
                  s.m, s.k, s.n);
      }
      packed_s = timer.Seconds() / reps;
    }
    // Int8 path: B is quantized and packed ONCE outside the timer — that
    // is the serving configuration (frozen weights pre-packed at
    // Freeze()), and the fp32 packed row amortizes its packing across the
    // loop the same way.
    double int8_s = -1.0;
    la::Int8PackedB bq;
    if (PackInt8Operand(s.variant, ops.b.data(), s.k, s.n, &bq)) {
      bench::MethodTimer timer(table, name + "_int8");
      for (int r = 0; r < reps; ++r) {
        la::Int8GemmAcc(ops.a.data(), s.m, bq, ops.c.data());
      }
      int8_s = timer.Seconds() / reps;
    }
    const double flop = 2.0 * static_cast<double>(s.m * s.k * s.n);
    out.AddRow(name, {ref_s, packed_s, ref_s / packed_s,
                      flop / packed_s * 1e-9, int8_s,
                      int8_s > 0 ? packed_s / int8_s : -1.0});
    bench::Progress(name + " done");
  }
  out.Print();
  return 0;
}

// ---- smoke mode (ctest) ----

// Small full-coverage pass: every variant over ragged and aligned shapes
// plus one shape big enough to split across pool workers, so TSan builds
// exercise the shared packed-B buffer and the workspace recycling.
int RunSmoke() {
  const size_t dims[] = {1, 5, 8, 13, 32};
  int failures = 0;
  auto check = [&](Variant v, size_t m, size_t k, size_t n) {
    Operands ops = MakeOperands(v, m, k, n, 31 + m + k + n);
    std::vector<float> want = ops.c;
    RunReference(v, ops.a.data(), ops.b.data(), want.data(), m, k, n);
    RunPacked(v, ops.a.data(), ops.b.data(), ops.c.data(), m, k, n);
    const float tol = 1e-6f * static_cast<float>(k + 1);
    for (size_t i = 0; i < want.size(); ++i) {
      const float diff = std::fabs(want[i] - ops.c[i]);
      if (diff > tol + tol * std::fabs(want[i])) {
        std::fprintf(stderr,
                     "[bench] smoke MISMATCH %s elem %zu: ref %g packed %g\n",
                     ShapeName(v, m, k, n).c_str(), i,
                     static_cast<double>(want[i]),
                     static_cast<double>(ops.c[i]));
        ++failures;
        break;
      }
    }
  };
  // Int8 path vs fp32 reference, bounded by the quantization error model:
  // per element, half an activation step times the column's |b| mass,
  // half a weight step times the row's |a| mass, plus the cross term
  // (see la/qgemm.h for the scale definitions).
  auto check_int8 = [&](Variant v, size_t m, size_t k, size_t n) {
    Operands ops = MakeOperands(v, m, k, n, 131 + m + k + n);
    la::Int8PackedB bq;
    if (!PackInt8Operand(v, ops.b.data(), k, n, &bq)) return;
    std::vector<float> want = ops.c;
    RunReference(v, ops.a.data(), ops.b.data(), want.data(), m, k, n);
    la::Int8GemmAcc(ops.a.data(), m, bq, ops.c.data());
    const auto bat = [&](size_t p, size_t j) {
      return v == Variant::kNT ? ops.b[j * k + p] : ops.b[p * n + j];
    };
    std::vector<float> col_mass(n, 0.0f);
    for (size_t j = 0; j < n; ++j) {
      for (size_t p = 0; p < k; ++p) col_mass[j] += std::fabs(bat(p, j));
    }
    for (size_t i = 0; i < m; ++i) {
      float amax = 0.0f, row_mass = 0.0f;
      for (size_t p = 0; p < k; ++p) {
        amax = std::max(amax, std::fabs(ops.a[i * k + p]));
        row_mass += std::fabs(ops.a[i * k + p]);
      }
      const float sa = amax / static_cast<float>(la::kInt8AMax);
      for (size_t j = 0; j < n; ++j) {
        const float sb = bq.scales[j];
        const float bound = 0.5f * sb * row_mass + 0.5f * sa * col_mass[j] +
                            0.25f * static_cast<float>(k) * sa * sb + 1e-5f;
        const float diff = std::fabs(want[i * n + j] - ops.c[i * n + j]);
        if (diff > bound) {
          std::fprintf(stderr,
                       "[bench] smoke int8 MISMATCH %s elem (%zu,%zu): ref "
                       "%g int8 %g bound %g\n",
                       ShapeName(v, m, k, n).c_str(), i, j,
                       static_cast<double>(want[i * n + j]),
                       static_cast<double>(ops.c[i * n + j]),
                       static_cast<double>(bound));
          ++failures;
          return;
        }
      }
    }
  };
  for (Variant v : {Variant::kNN, Variant::kNT, Variant::kTN}) {
    for (size_t m : dims) {
      for (size_t k : dims) {
        for (size_t n : dims) {
          check(v, m, k, n);
          check_int8(v, m, k, n);
        }
      }
    }
    check(v, 96, 64, 96);  // multi-chunk parallel path
    check_int8(v, 96, 64, 96);
  }
  if (failures == 0) {
    std::fprintf(stderr, "[bench] smoke ok (isa=%s, %zu threads)\n",
                 la::GemmKernelIsa(), ThreadPool::Global().threads());
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace stm

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--smoke") {
    return stm::RunSmoke();
  }
  return stm::RunSweep();
}
