// Tests for the persistent embedding cache (plm/encode_cache.h): memory
// hit/miss accounting and bitwise-identical cached results, pooled-from-
// hidden reuse, invalidation at the training boundary, disk spill and
// reload across cache instances, and disk-failure robustness (corrupt or
// truncated entry files are quarantined, failed writes are counted and
// never fatal — the cache always falls back to re-encoding). Part of
// stm_encode_tests (ctest label "encode").

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/rng.h"
#include "common/status.h"
#include "la/matrix.h"
#include "plm/encode_cache.h"
#include "plm/minilm.h"
#include "plm/quantized_minilm.h"
#include "text/vocabulary.h"

namespace stm {
namespace {

struct QuantGuard {
  ~QuantGuard() { plm::SetQuantInference(-1); }
};

plm::MiniLmConfig SmallConfig() {
  plm::MiniLmConfig config;
  config.vocab_size = 80;
  config.dim = 16;
  config.layers = 1;
  config.heads = 2;
  config.ffn_dim = 32;
  config.max_seq = 16;
  config.seed = 3;
  return config;
}

std::vector<std::vector<int32_t>> RandomDocs(size_t count, size_t vocab,
                                             uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<int32_t>> docs(count);
  for (auto& doc : docs) {
    const size_t len = 3 + rng.UniformInt(10);
    for (size_t t = 0; t < len; ++t) {
      doc.push_back(static_cast<int32_t>(
          text::kNumSpecialTokens +
          rng.UniformInt(vocab - text::kNumSpecialTokens)));
    }
  }
  return docs;
}

std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// The single entry file a one-insert cache wrote under `dir`.
std::string OnlyEntryFile(const std::string& dir) {
  std::string found;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string path = entry.path().string();
    if (path.size() >= 4 && path.substr(path.size() - 4) == ".bin") {
      EXPECT_TRUE(found.empty()) << "more than one entry file in " << dir;
      found = path;
    }
  }
  EXPECT_FALSE(found.empty()) << "no entry file in " << dir;
  return found;
}

std::shared_ptr<plm::EncodeCache> MemoryCache() {
  plm::EncodeCache::Config config;
  config.max_bytes = 4 * 1024 * 1024;
  return std::make_shared<plm::EncodeCache>(config);
}

std::shared_ptr<plm::EncodeCache> DiskCache(const std::string& dir,
                                            Env* env = nullptr) {
  plm::EncodeCache::Config config;
  config.max_bytes = 4 * 1024 * 1024;
  config.dir = dir;
  config.env = env;
  return std::make_shared<plm::EncodeCache>(config);
}

void ExpectSame(const la::Matrix& want, const la::Matrix& got,
                const std::string& what) {
  ASSERT_EQ(want.rows(), got.rows()) << what;
  ASSERT_EQ(want.cols(), got.cols()) << what;
  EXPECT_EQ(0, std::memcmp(want.data(), got.data(),
                           want.size() * sizeof(float)))
      << what;
}

TEST(EncodeCacheTest, MemoryHitIsBitwiseIdenticalAndCounted) {
  plm::MiniLm model(SmallConfig());
  const auto docs = RandomDocs(6, model.config().vocab_size, 11);
  const std::vector<la::Matrix> want = model.EncodeBatch(docs);

  auto cache = MemoryCache();
  model.SetEncodeCache(cache);
  const std::vector<la::Matrix> first = model.EncodeBatch(docs);
  const plm::EncodeCache::Stats after_fill = cache->stats();
  EXPECT_EQ(after_fill.hits(), 0u);
  EXPECT_EQ(after_fill.misses, docs.size());
  EXPECT_EQ(after_fill.inserts, docs.size());

  const std::vector<la::Matrix> second = model.EncodeBatch(docs);
  const plm::EncodeCache::Stats after_hit = cache->stats();
  EXPECT_EQ(after_hit.memory_hits, docs.size());
  EXPECT_EQ(after_hit.misses, docs.size());  // unchanged

  for (size_t d = 0; d < docs.size(); ++d) {
    ExpectSame(want[d], first[d], "fill doc " + std::to_string(d));
    ExpectSame(want[d], second[d], "hit doc " + std::to_string(d));
  }
}

TEST(EncodeCacheTest, PooledVectorReusesCachedHiddenStates) {
  plm::MiniLm model(SmallConfig());
  const auto docs = RandomDocs(1, model.config().vocab_size, 13);
  const std::vector<float> want = model.Pool(docs[0]);

  auto cache = MemoryCache();
  model.SetEncodeCache(cache);
  (void)model.Encode(docs[0]);  // caches the hidden rows
  const size_t misses_before = cache->stats().misses;
  const std::vector<float> pooled = model.Pool(docs[0]);
  const plm::EncodeCache::Stats stats = cache->stats();
  // The pooled key itself missed, but the hidden entry satisfied it —
  // no re-encode, one memory hit, and bitwise the same pooled vector.
  EXPECT_EQ(stats.misses, misses_before + 1);
  EXPECT_GE(stats.memory_hits, 1u);
  ASSERT_EQ(want.size(), pooled.size());
  EXPECT_EQ(0,
            std::memcmp(want.data(), pooled.data(),
                        want.size() * sizeof(float)));

  // Second Pool is served straight from the pooled entry.
  const size_t hits_before = cache->stats().memory_hits;
  const std::vector<float> again = model.Pool(docs[0]);
  EXPECT_EQ(cache->stats().memory_hits, hits_before + 1);
  EXPECT_EQ(0,
            std::memcmp(want.data(), again.data(),
                        want.size() * sizeof(float)));
}

TEST(EncodeCacheTest, QuantAndFp32EntriesNeverMix) {
  QuantGuard guard;
  plm::MiniLm model(SmallConfig());
  const auto docs = RandomDocs(1, model.config().vocab_size, 17);
  auto cache = MemoryCache();
  model.SetEncodeCache(cache);

  plm::SetQuantInference(0);
  const la::Matrix fp32 = model.Encode(docs[0]);
  plm::SetQuantInference(1);
  const la::Matrix quant = model.Encode(docs[0]);
  // The int8 call missed (different key) instead of serving fp32 rows.
  EXPECT_EQ(cache->stats().misses, 2u);
  const auto frozen = model.Freeze();
  ExpectSame(frozen->Encode(docs[0]), quant, "quant encode");
}

TEST(EncodeCacheTest, TrainingInvalidatesCachedEntries) {
  plm::MiniLm model(SmallConfig());
  const auto docs = RandomDocs(8, model.config().vocab_size, 19);
  auto cache = MemoryCache();
  model.SetEncodeCache(cache);

  const uint64_t fp_before = model.WeightsFingerprint();
  (void)model.Pool(docs[0]);
  const size_t misses_before = cache->stats().misses;

  plm::PretrainConfig pretrain;
  pretrain.steps = 5;
  pretrain.batch = 2;
  model.Pretrain(docs, pretrain);
  EXPECT_NE(model.WeightsFingerprint(), fp_before);

  // Old entries are unaddressable now: the next Pool misses and returns
  // exactly what an uncached model with the trained weights returns.
  const std::vector<float> cached_path = model.Pool(docs[0]);
  EXPECT_GT(cache->stats().misses, misses_before);
  model.SetEncodeCache(nullptr);
  const std::vector<float> fresh = model.Pool(docs[0]);
  ASSERT_EQ(fresh.size(), cached_path.size());
  EXPECT_EQ(0, std::memcmp(fresh.data(), cached_path.data(),
                           fresh.size() * sizeof(float)));
}

TEST(EncodeCacheTest, DiskSpillServesAFreshCacheInstance) {
  const std::string dir = FreshDir("encode_cache_spill");
  plm::MiniLm model(SmallConfig());
  const auto docs = RandomDocs(1, model.config().vocab_size, 23);
  const la::Matrix want = model.Encode(docs[0]);

  model.SetEncodeCache(DiskCache(dir));
  (void)model.Encode(docs[0]);

  // A brand-new cache over the same directory — simulating the next
  // process run — serves the entry from disk without re-encoding.
  auto cache2 = DiskCache(dir);
  model.SetEncodeCache(cache2);
  const la::Matrix reloaded = model.Encode(docs[0]);
  EXPECT_EQ(cache2->stats().disk_hits, 1u);
  EXPECT_EQ(cache2->stats().memory_hits, 0u);
  ExpectSame(want, reloaded, "disk reload");
}

TEST(EncodeCacheTest, CorruptEntryFileIsQuarantinedAndReencoded) {
  const std::string dir = FreshDir("encode_cache_corrupt");
  plm::MiniLm model(SmallConfig());
  const auto docs = RandomDocs(1, model.config().vocab_size, 29);
  const la::Matrix want = model.Encode(docs[0]);

  model.SetEncodeCache(DiskCache(dir));
  (void)model.Encode(docs[0]);
  const std::string path = OnlyEntryFile(dir);

  // Flip one payload byte: the CRC catches it on the next read.
  StatusOr<std::string> data = Env::Default()->ReadFile(path);
  ASSERT_TRUE(data.ok());
  std::string bytes = std::move(data).value();
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  ASSERT_TRUE(Env::Default()->WriteFileAtomic(path, bytes).ok());

  auto cache2 = DiskCache(dir);
  model.SetEncodeCache(cache2);
  const la::Matrix got = model.Encode(docs[0]);
  ExpectSame(want, got, "re-encode after corruption");
  EXPECT_GE(cache2->stats().disk_errors, 1u);
  EXPECT_EQ(cache2->stats().disk_hits, 0u);
  EXPECT_TRUE(Env::Default()->FileExists(path + ".corrupt"));
}

TEST(EncodeCacheTest, TruncatedEntryFileIsTreatedAsMiss) {
  const std::string dir = FreshDir("encode_cache_trunc");
  plm::MiniLm model(SmallConfig());
  const auto docs = RandomDocs(1, model.config().vocab_size, 31);
  const la::Matrix want = model.Encode(docs[0]);

  model.SetEncodeCache(DiskCache(dir));
  (void)model.Encode(docs[0]);
  const std::string path = OnlyEntryFile(dir);

  StatusOr<std::string> data = Env::Default()->ReadFile(path);
  ASSERT_TRUE(data.ok());
  ASSERT_TRUE(Env::Default()
                  ->WriteFileAtomic(path, data.value().substr(0, 10))
                  .ok());

  auto cache2 = DiskCache(dir);
  model.SetEncodeCache(cache2);
  const la::Matrix got = model.Encode(docs[0]);
  ExpectSame(want, got, "re-encode after truncation");
  EXPECT_GE(cache2->stats().disk_errors, 1u);
}

TEST(EncodeCacheTest, FailedSpillWritesAreCountedNotFatal) {
  const std::string dir = FreshDir("encode_cache_failwrite");
  FaultInjectingEnv fault(Env::Default());
  plm::MiniLm model(SmallConfig());
  const auto docs = RandomDocs(1, model.config().vocab_size, 37);
  const la::Matrix want = model.Encode(docs[0]);

  auto cache = DiskCache(dir, &fault);
  model.SetEncodeCache(cache);
  // kIoError is deterministic, so the serialize layer's retry loop does
  // not absorb it the way a single transient kUnavailable would be.
  fault.FailNextWrites(1, StatusCode::kIoError);
  const la::Matrix got = model.Encode(docs[0]);
  ExpectSame(want, got, "encode with failed spill");
  EXPECT_GE(cache->stats().disk_errors, 1u);

  // The entry still serves from memory even though the spill was lost.
  const la::Matrix again = model.Encode(docs[0]);
  ExpectSame(want, again, "memory hit after failed spill");
  EXPECT_GE(cache->stats().memory_hits, 1u);
}

TEST(EncodeCacheTest, FailingReadFallsBackToReencoding) {
  const std::string dir = FreshDir("encode_cache_failread");
  plm::MiniLm model(SmallConfig());
  const auto docs = RandomDocs(1, model.config().vocab_size, 41);
  const la::Matrix want = model.Encode(docs[0]);

  model.SetEncodeCache(DiskCache(dir));
  (void)model.Encode(docs[0]);

  FaultInjectingEnv fault(Env::Default());
  auto cache2 = DiskCache(dir, &fault);
  model.SetEncodeCache(cache2);
  fault.FailNthOp(0, StatusCode::kIoError);  // the entry-file read
  const la::Matrix got = model.Encode(docs[0]);
  ExpectSame(want, got, "re-encode after read failure");
  EXPECT_GE(cache2->stats().disk_errors, 1u);
}

TEST(EncodeCacheTest, LruEvictsUnderMemoryPressure) {
  plm::EncodeCache::Config config;
  config.max_bytes = 2000;  // a few small entries
  plm::EncodeCache cache(config);
  la::Matrix value(4, 16);  // 256B payload + overhead
  for (int i = 0; i < 32; ++i) {
    const int32_t id = i;
    cache.Insert(plm::EncodeCache::MakeKey(
                     1, false, plm::EncodeCache::Kind::kHidden, &id, 1),
                 value);
  }
  EXPECT_LE(cache.bytes(), config.max_bytes);
  EXPECT_GT(cache.stats().evictions, 0u);
}

}  // namespace
}  // namespace stm
