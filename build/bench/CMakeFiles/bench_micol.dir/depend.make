# Empty dependencies file for bench_micol.
# This may be replaced when dependencies are built.
