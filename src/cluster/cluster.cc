#include "cluster/cluster.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/check.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace stm::cluster {

namespace {

// Points per chunk for the parallel passes over the data. Fixed (never a
// function of the thread count) so the chunk-ordered reductions below are
// bit-identical at any STM_NUM_THREADS.
constexpr size_t kPointsGrain = 256;

double SquaredDistance(const float* a, const float* b, size_t d) {
  double sum = 0.0;
  for (size_t j = 0; j < d; ++j) {
    const double diff = static_cast<double>(a[j]) - b[j];
    sum += diff * diff;
  }
  return sum;
}

// Index of the point with the largest squared distance to its assigned
// centroid (ties -> smallest index). Used for deterministic re-seeding.
size_t FarthestPoint(const std::vector<double>& dists) {
  size_t best = 0;
  for (size_t i = 1; i < dists.size(); ++i) {
    if (dists[i] > dists[best]) best = i;
  }
  return best;
}

// Rows per streamed block. A multiple of kPointsGrain, and blocks start
// at multiples of kStreamRows, so every parallel chunk lies entirely
// inside one block and the block-local chunk decomposition coincides
// with the global ParallelFor(0, n, kPointsGrain) one.
constexpr size_t kStreamRows = 16 * kPointsGrain;

}  // namespace

size_t MatrixRowSource::rows() const { return m_->rows(); }
size_t MatrixRowSource::cols() const { return m_->cols(); }

void MatrixRowSource::ReadRows(size_t begin, size_t end, float* out) const {
  STM_CHECK_LE(begin, end);
  STM_CHECK_LE(end, m_->rows());
  if (begin == end) return;
  // Rows are contiguous in the dense row-major storage.
  std::memcpy(out, m_->Row(begin), (end - begin) * m_->cols() * sizeof(float));
}

KMeansResult KMeans(const la::Matrix& data, const KMeansOptions& options) {
  return KMeansStream(MatrixRowSource(data), options);
}

KMeansResult KMeansStream(const RowSource& source,
                          const KMeansOptions& options) {
  STM_CHECK_GT(options.k, 0u);
  STM_CHECK_GT(source.rows(), 0u);
  const size_t n = source.rows();
  const size_t d = source.cols();
  const size_t k = std::min(options.k, n);
  Rng rng(options.seed);

  // One block of rows is resident at a time; spherical mode normalizes
  // each loaded row (per-row, so the values match normalizing the whole
  // table up front).
  la::Matrix block(std::min(n, kStreamRows), d);
  const auto load_block = [&](size_t b0, size_t b1) {
    source.ReadRows(b0, b1, block.Row(0));
    if (options.spherical) {
      for (size_t i = 0; i < b1 - b0; ++i) la::NormalizeInPlace(block.Row(i), d);
    }
  };
  // Single-row fetch for centroid selection and re-seeding.
  std::vector<float> fetched(d);
  const auto fetch_row = [&](size_t i) -> const std::vector<float>& {
    source.ReadRows(i, i + 1, fetched.data());
    if (options.spherical) la::NormalizeInPlace(fetched.data(), d);
    return fetched;
  };

  // k-means++ seeding. Points at distance zero from an existing centroid
  // (the chosen points themselves and any duplicates of them) are
  // excluded from the draw so a centroid can never be selected twice;
  // when every remaining point coincides with a centroid the fallback
  // takes the farthest not-yet-chosen index instead of a uniform draw
  // over all points.
  la::Matrix centroids(k, d);
  std::vector<double> min_dist(n, std::numeric_limits<double>::max());
  std::vector<bool> is_centroid(n, false);
  const size_t first = rng.UniformInt(n);
  is_centroid[first] = true;
  centroids.SetRow(0, fetch_row(first));
  for (size_t c = 1; c < k; ++c) {
    for (size_t b0 = 0; b0 < n; b0 += kStreamRows) {
      const size_t b1 = std::min(n, b0 + kStreamRows);
      load_block(b0, b1);
      ParallelFor(b0, b1, kPointsGrain, [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i) {
          min_dist[i] =
              std::min(min_dist[i], SquaredDistance(block.Row(i - b0),
                                                    centroids.Row(c - 1), d));
        }
      });
    }
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (!is_centroid[i]) total += min_dist[i];
    }
    size_t chosen = n;
    if (total > 0.0) {
      double target = rng.Uniform() * total;
      for (size_t i = 0; i < n; ++i) {
        if (is_centroid[i] || min_dist[i] <= 0.0) continue;
        target -= min_dist[i];
        chosen = i;  // last eligible point absorbs rounding drift
        if (target <= 0.0) break;
      }
    }
    if (chosen == n) {
      // All remaining mass is zero: take the farthest unchosen point
      // (with all distances zero this is the smallest unchosen index).
      double best = -1.0;
      for (size_t i = 0; i < n; ++i) {
        if (is_centroid[i]) continue;
        if (min_dist[i] > best) {
          best = min_dist[i];
          chosen = i;
        }
      }
    }
    STM_CHECK_LT(chosen, n);
    is_centroid[chosen] = true;
    centroids.SetRow(c, fetch_row(chosen));
  }

  KMeansResult result;
  result.assignment.assign(n, 0);
  std::vector<double> dists(n, 0.0);
  std::vector<size_t> counts(k, 0);
  const size_t chunks = ParallelChunkCount(0, n, kPointsGrain);
  // Per-chunk centroid partial sums and counts, merged in chunk order so
  // the float accumulation is identical at every thread count. Chunks are
  // indexed globally (block start / grain + block-local chunk) so the
  // merge order is independent of the block size.
  std::vector<la::Matrix> partial_sums(chunks);
  std::vector<std::vector<size_t>> partial_counts(chunks);
  for (int iter = 0; iter < options.max_iters; ++iter) {
    std::atomic<bool> changed{false};
    // Assignment step: each point's nearest centroid, plus the per-chunk
    // centroid partials for the update step.
    for (size_t b0 = 0; b0 < n; b0 += kStreamRows) {
      const size_t b1 = std::min(n, b0 + kStreamRows);
      load_block(b0, b1);
      const size_t chunk_base = b0 / kPointsGrain;
      ParallelForChunks(b0, b1, kPointsGrain,
                        [&](size_t chunk, size_t b, size_t e) {
        la::Matrix& sums = partial_sums[chunk_base + chunk];
        std::vector<size_t>& cnts = partial_counts[chunk_base + chunk];
        if (sums.rows() != k || sums.cols() != d) sums = la::Matrix(k, d);
        sums.Fill(0.0f);
        cnts.assign(k, 0);
        bool chunk_changed = false;
        for (size_t i = b; i < e; ++i) {
          const float* row = block.Row(i - b0);
          double best = std::numeric_limits<double>::max();
          int best_c = 0;
          for (size_t c = 0; c < k; ++c) {
            const double dist = SquaredDistance(row, centroids.Row(c), d);
            if (dist < best) {
              best = dist;
              best_c = static_cast<int>(c);
            }
          }
          if (result.assignment[i] != best_c) {
            result.assignment[i] = best_c;
            chunk_changed = true;
          }
          dists[i] = best;
          la::Axpy(1.0f, row, sums.Row(static_cast<size_t>(best_c)), d);
          cnts[static_cast<size_t>(best_c)]++;
        }
        if (chunk_changed) changed.store(true, std::memory_order_relaxed);
      });
    }
    // Inertia: serial fold in point order (cheap, and independent of the
    // chunking entirely).
    result.inertia = 0.0;
    for (size_t i = 0; i < n; ++i) result.inertia += dists[i];
    // Merge the per-chunk partials in chunk order.
    centroids.Fill(0.0f);
    std::fill(counts.begin(), counts.end(), 0);
    for (size_t chunk = 0; chunk < chunks; ++chunk) {
      for (size_t c = 0; c < k; ++c) {
        la::Axpy(1.0f, partial_sums[chunk].Row(c), centroids.Row(c), d);
        counts[c] += partial_counts[chunk][c];
      }
    }
    // Empty clusters re-seed from the point currently farthest from its
    // centroid — a deterministic choice (unlike a draw from `rng`, whose
    // position in the stream would depend on the iteration count).
    std::vector<double> reseed_dists;
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        if (reseed_dists.empty()) reseed_dists = dists;
        const size_t far = FarthestPoint(reseed_dists);
        reseed_dists[far] = -1.0;  // each empty cluster gets its own point
        centroids.SetRow(c, fetch_row(far));
        continue;
      }
      la::ScaleInPlace(centroids.Row(c), d,
                       1.0f / static_cast<float>(counts[c]));
      if (options.spherical) la::NormalizeInPlace(centroids.Row(c), d);
    }
    if (!changed.load(std::memory_order_relaxed) && iter > 0) break;
  }
  result.centroids = std::move(centroids);
  return result;
}

size_t SilhouetteStride(size_t n, size_t max_points) {
  STM_CHECK_GT(max_points, 0u);
  if (n <= max_points) return 1;
  // Ceiling division: floor could keep up to 2x max_points samples
  // (e.g. n = 1999, max_points = 1000 -> stride 1 -> 1999 samples),
  // blowing up the O(sample^2) cost below.
  return (n + max_points - 1) / max_points;
}

double Silhouette(const la::Matrix& data, const std::vector<int>& assignment,
                  size_t k, size_t max_points) {
  STM_CHECK_EQ(data.rows(), assignment.size());
  const size_t n = data.rows();
  if (n < 2 || k < 2) return 0.0;
  // Deterministic subsample: stride.
  std::vector<size_t> sample;
  const size_t stride = SilhouetteStride(n, max_points);
  for (size_t i = 0; i < n; i += stride) sample.push_back(i);

  // Per-sample silhouette values, computed independently in parallel and
  // folded serially in sample order afterwards.
  std::vector<double> scores(sample.size(), 0.0);
  std::vector<char> counted(sample.size(), 0);
  ParallelFor(0, sample.size(), 16, [&](size_t s0, size_t s1) {
    std::vector<double> dist_sum(k, 0.0);
    std::vector<size_t> dist_count(k, 0);  // per-worker-chunk scratch
    for (size_t s = s0; s < s1; ++s) {
      const size_t i = sample[s];
      std::fill(dist_sum.begin(), dist_sum.end(), 0.0);
      std::fill(dist_count.begin(), dist_count.end(), 0);
      for (size_t j : sample) {
        if (i == j) continue;
        const size_t c = static_cast<size_t>(assignment[j]);
        dist_sum[c] += std::sqrt(
            SquaredDistance(data.Row(i), data.Row(j), data.cols()));
        dist_count[c]++;
      }
      const size_t own = static_cast<size_t>(assignment[i]);
      if (dist_count[own] == 0) continue;
      const double a = dist_sum[own] / static_cast<double>(dist_count[own]);
      double b = std::numeric_limits<double>::max();
      for (size_t c = 0; c < k; ++c) {
        if (c == own || dist_count[c] == 0) continue;
        b = std::min(b, dist_sum[c] / static_cast<double>(dist_count[c]));
      }
      if (b == std::numeric_limits<double>::max()) continue;
      const double denom = std::max(a, b);
      if (denom > 0.0) {
        scores[s] = (b - a) / denom;
        counted[s] = 1;
      }
    }
  });
  double total = 0.0;
  size_t used = 0;
  for (size_t s = 0; s < sample.size(); ++s) {
    if (counted[s]) {
      total += scores[s];
      ++used;
    }
  }
  return used > 0 ? total / static_cast<double>(used) : 0.0;
}

GmmResult GmmFit(const la::Matrix& data, const la::Matrix& init_means,
                 const GmmOptions& options) {
  STM_CHECK_EQ(data.cols(), init_means.cols());
  STM_CHECK_GT(init_means.rows(), 0u);
  const size_t n = data.rows();
  const size_t d = data.cols();
  const size_t k = init_means.rows();

  GmmResult result;
  result.means = init_means;
  result.variances.assign(k, 0.05f);
  result.weights.assign(k, 1.0f / static_cast<float>(k));
  result.posteriors = la::Matrix(n, k);

  std::vector<double> logp(k);
  for (int iter = 0; iter < options.max_iters; ++iter) {
    // E-step.
    for (size_t i = 0; i < n; ++i) {
      double max_lp = -std::numeric_limits<double>::max();
      for (size_t c = 0; c < k; ++c) {
        const double var = result.variances[c];
        const double dist =
            SquaredDistance(data.Row(i), result.means.Row(c), d);
        logp[c] = std::log(result.weights[c] + 1e-12) -
                  0.5 * dist / var -
                  0.5 * static_cast<double>(d) * std::log(2.0 * M_PI * var);
        max_lp = std::max(max_lp, logp[c]);
      }
      double sum = 0.0;
      for (size_t c = 0; c < k; ++c) {
        logp[c] = std::exp(logp[c] - max_lp);
        sum += logp[c];
      }
      for (size_t c = 0; c < k; ++c) {
        result.posteriors.At(i, c) = static_cast<float>(logp[c] / sum);
      }
    }
    // M-step.
    for (size_t c = 0; c < k; ++c) {
      double mass = 0.0;
      std::vector<double> mean(d, 0.0);
      for (size_t i = 0; i < n; ++i) {
        const double r = result.posteriors.At(i, c);
        mass += r;
        for (size_t j = 0; j < d; ++j) mean[j] += r * data.At(i, j);
      }
      if (mass < 1e-8) continue;
      for (size_t j = 0; j < d; ++j) {
        result.means.At(c, j) = static_cast<float>(mean[j] / mass);
      }
      double var = 0.0;
      for (size_t i = 0; i < n; ++i) {
        const double r = result.posteriors.At(i, c);
        var += r * SquaredDistance(data.Row(i), result.means.Row(c), d);
      }
      result.variances[c] = std::max(
          options.min_variance,
          static_cast<float>(var / (mass * static_cast<double>(d))));
      result.weights[c] = static_cast<float>(mass / static_cast<double>(n));
    }
  }
  result.assignment.assign(n, 0);
  for (size_t i = 0; i < n; ++i) {
    const float* row = result.posteriors.Row(i);
    result.assignment[i] =
        static_cast<int>(std::max_element(row, row + k) - row);
  }
  return result;
}

std::vector<int> AlignClusters(const std::vector<int>& clusters,
                               const std::vector<int>& gold, size_t k) {
  STM_CHECK_EQ(clusters.size(), gold.size());
  // Overlap counts.
  std::vector<std::vector<int>> overlap(k, std::vector<int>(k, 0));
  for (size_t i = 0; i < clusters.size(); ++i) {
    const size_t c = static_cast<size_t>(clusters[i]);
    const size_t g = static_cast<size_t>(gold[i]);
    if (c < k && g < k) overlap[c][g]++;
  }
  std::vector<int> mapping(k, -1);
  std::vector<bool> used_cluster(k, false);
  std::vector<bool> used_class(k, false);
  for (size_t round = 0; round < k; ++round) {
    int best = -1;
    size_t best_c = 0;
    size_t best_g = 0;
    for (size_t c = 0; c < k; ++c) {
      if (used_cluster[c]) continue;
      for (size_t g = 0; g < k; ++g) {
        if (used_class[g]) continue;
        if (overlap[c][g] > best) {
          best = overlap[c][g];
          best_c = c;
          best_g = g;
        }
      }
    }
    if (best < 0) break;
    mapping[best_c] = static_cast<int>(best_g);
    used_cluster[best_c] = true;
    used_class[best_g] = true;
  }
  // Any cluster left unmapped (k mismatch) maps to class 0.
  for (int& m : mapping) {
    if (m < 0) m = 0;
  }
  return mapping;
}

}  // namespace stm::cluster
