#include "la/qgemm.h"

#include <cmath>
#include <utility>

#include "common/thread_pool.h"
#include "la/gemm_kernels.h"
#include "la/workspace.h"

namespace stm::la {

namespace {

// absmax(row) / qmax; 0 for an all-zero (or empty) row so the quantized
// row is all zeros instead of NaN.
float RowAbsmaxScale(const float* row, size_t k, int qmax) {
  float absmax = 0.0f;
  for (size_t p = 0; p < k; ++p) {
    const float a = std::fabs(row[p]);
    if (a > absmax) absmax = a;
  }
  return absmax > 0.0f ? absmax / static_cast<float>(qmax) : 0.0f;
}

int32_t QuantValue(float x, float inv_scale, int qmax) {
  const long q = std::lrintf(x * inv_scale);
  if (q > qmax) return qmax;
  if (q < -qmax) return -qmax;
  return static_cast<int32_t>(q);
}

// Panel layout for an arbitrary panel width: nr-column panels, k in
// groups of kInt8KGroup, zero-padded past the k/n edges. Serial and
// value-only, so the result is the same no matter which thread (or thread
// count) runs it.
std::vector<int8_t> BuildPanels(const std::vector<int8_t>& rowmajor,
                                size_t k, size_t n, size_t panel_nr) {
  const size_t kgroups = detail::CeilDiv(k, kInt8KGroup);
  const size_t npanels = detail::CeilDiv(n, panel_nr);
  std::vector<int8_t> panels(npanels * kgroups * panel_nr * kInt8KGroup, 0);
  for (size_t jp = 0; jp < npanels; ++jp) {
    const size_t j0 = jp * panel_nr;
    const size_t nr = n - j0 < panel_nr ? n - j0 : panel_nr;
    int8_t* panel = panels.data() + jp * kgroups * panel_nr * kInt8KGroup;
    for (size_t g = 0; g < kgroups; ++g) {
      int8_t* chunk = panel + g * panel_nr * kInt8KGroup;
      for (size_t jj = 0; jj < nr; ++jj) {
        for (size_t t = 0; t < kInt8KGroup; ++t) {
          const size_t p = g * kInt8KGroup + t;
          if (p < k) {
            chunk[jj * kInt8KGroup + t] = rowmajor[p * n + (j0 + jj)];
          }
        }
      }
    }
  }
  return panels;
}

// Rebuilds colsums and the freeze tier's panel layout from the row-major
// quantized values.
void FinishPack(Int8PackedB* b) {
  const size_t k = b->k;
  const size_t n = b->n;
  b->colsums.assign(n, 0);
  for (size_t p = 0; p < k; ++p) {
    const int8_t* row = b->rowmajor.data() + p * n;
    for (size_t j = 0; j < n; ++j) {
      b->colsums[j] += static_cast<int32_t>(row[j]);
    }
  }
  b->tier = &detail::FreezeKernelsForWidth(n);
  b->panel_nr = b->tier->nr;
  b->panels = BuildPanels(b->rowmajor, k, n, b->panel_nr);
}

}  // namespace

std::vector<int8_t> Int8PanelsForWidth(const Int8PackedB& b, size_t nr) {
  return BuildPanels(b.rowmajor, b.k, b.n, nr);
}

void QuantizeRowWithScale(const float* row, size_t k, float scale, int qmax,
                          int8_t* q) {
  if (!(scale > 0.0f)) {
    for (size_t p = 0; p < k; ++p) q[p] = 0;
    return;
  }
  const float inv = 1.0f / scale;
  for (size_t p = 0; p < k; ++p) {
    q[p] = static_cast<int8_t>(QuantValue(row[p], inv, qmax));
  }
}

void QuantizeRowsAbsmax(const float* a, size_t rows, size_t k, int qmax,
                        int8_t* q, float* scales) {
  for (size_t i = 0; i < rows; ++i) {
    scales[i] = RowAbsmaxScale(a + i * k, k, qmax);
    QuantizeRowWithScale(a + i * k, k, scales[i], qmax, q + i * k);
  }
}

Int8PackedB PackInt8B(const float* b, size_t rs, size_t cs, size_t k,
                      size_t n) {
  Int8PackedB out;
  out.k = k;
  out.n = n;
  out.scales.resize(n);
  out.rowmajor.assign(k * n, 0);
  for (size_t j = 0; j < n; ++j) {
    float absmax = 0.0f;
    for (size_t p = 0; p < k; ++p) {
      const float v = std::fabs(b[p * rs + j * cs]);
      if (v > absmax) absmax = v;
    }
    const float scale =
        absmax > 0.0f ? absmax / static_cast<float>(kInt8BMax) : 0.0f;
    out.scales[j] = scale;
    if (scale > 0.0f) {
      const float inv = 1.0f / scale;
      for (size_t p = 0; p < k; ++p) {
        out.rowmajor[p * n + j] = static_cast<int8_t>(
            QuantValue(b[p * rs + j * cs], inv, kInt8BMax));
      }
    }
  }
  FinishPack(&out);
  return out;
}

Int8PackedB RepackInt8B(std::vector<int8_t> rowmajor,
                        std::vector<float> scales, size_t k, size_t n) {
  Int8PackedB out;
  out.k = k;
  out.n = n;
  out.rowmajor = std::move(rowmajor);
  out.scales = std::move(scales);
  FinishPack(&out);
  return out;
}

void Int8GemmAcc(const float* a, size_t m, const Int8PackedB& b, float* c) {
  const size_t k = b.k;
  const size_t n = b.n;
  if (m == 0 || n == 0 || k == 0) return;
  // Run the tier the operand was packed for (identical int8 bits in every
  // tier, so this only affects throughput).
  const detail::GemmKernelFns& fns =
      b.tier != nullptr ? *b.tier : detail::ActiveGemmKernels();
  // Per-row quantization over the whole A matrix, before any row-chunk
  // split: the scales (and therefore every quantized byte) depend only on
  // the tensor, never on the thread count. The byte buffer is carved out
  // of a workspace float allocation (unsigned char access is always
  // aliasing-legal).
  std::vector<float> scales = AcquireVec(m);
  std::vector<float> aoff_f = AcquireVec(detail::CeilDiv(m * k, sizeof(float)));
  uint8_t* aoff = reinterpret_cast<uint8_t*>(aoff_f.data());
  ParallelFor(0, m, GrainForOps(2 * k), [&](size_t r0, size_t r1) {
    for (size_t i = r0; i < r1; ++i) {
      const float* row = a + i * k;
      uint8_t* out = aoff + i * k;
      const float scale = RowAbsmaxScale(row, k, kInt8AMax);
      scales[i] = scale;
      if (scale > 0.0f) {
        const float inv = 1.0f / scale;
        for (size_t p = 0; p < k; ++p) {
          out[p] = static_cast<uint8_t>(QuantValue(row[p], inv, kInt8AMax) +
                                        kInt8AZero);
        }
      } else {
        for (size_t p = 0; p < k; ++p) {
          out[p] = static_cast<uint8_t>(kInt8AZero);
        }
      }
    }
  });
  ParallelFor(0, m, detail::PackedRowGrain(k, n, fns.mr),
              [&](size_t r0, size_t r1) {
                fns.int8_run_rows(aoff, scales.data(), b.panels.data(),
                                  b.scales.data(), b.colsums.data(), c, k, n,
                                  r0, r1);
              });
  ReleaseVec(std::move(aoff_f));
  ReleaseVec(std::move(scales));
}

}  // namespace stm::la
