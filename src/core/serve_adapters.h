#ifndef STM_CORE_SERVE_ADAPTERS_H_
#define STM_CORE_SERVE_ADAPTERS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "la/matrix.h"
#include "nn/feature_classifier.h"
#include "nn/text_classifier.h"
#include "plm/minilm.h"
#include "serve/serve.h"
#include "taxonomy/taxonomy.h"

namespace stm::core {

// serve::Classifier adapters over the trained core methods, so any of
// them can sit behind serve::Server::Serve(). Each adapter replicates its
// method's per-document decision rule exactly — same float operations in
// the same order — so a served prediction is bit-identical to the batch
// Run() prediction for the same token ids (pinned by tests/serve_test.cc).
//
// All adapters are inference-only over frozen parameters and safe to call
// concurrently from several drain workers. Invariant violations inside a
// hook (missing encoder input, a classifier producing the wrong shape)
// throw std::logic_error rather than STM_CHECK-aborting: the Server
// isolates hook exceptions and fails only the affected request with a
// Status (serve.h), so a wiring bug degrades one answer instead of
// killing the process.

// Similarity argmax against fixed class representations over the
// document's pooled vector: the PlmSimpleMatchClassify baseline, and the
// decision rule X-Class's RepOnly ablation uses. Class reps are
// normalized once at construction; each request is one normalize + one
// GEMV through the ann retrieval kernels, bit-identical to the batch
// path's ann::TopKSimilar scores. `scores` returns the per-class
// similarities.
class PooledCosineServable : public serve::Classifier {
 public:
  PooledCosineServable(std::string name, la::Matrix class_reps);

  std::string name() const override { return name_; }
  size_t num_classes() const override { return class_reps_.rows(); }
  Input input() const override { return Input::kPooled; }

  serve::Prediction Classify(const std::vector<int32_t>& ids,
                             const float* pooled,
                             const la::Matrix* hidden) const override;

 private:
  std::string name_;
  la::Matrix class_reps_;
};

// Pools `class_name_tokens` through `model` (exactly as
// PlmSimpleMatchClassify does) and wraps the result.
std::shared_ptr<PooledCosineServable> MakePlmSimpleMatchServable(
    plm::MiniLm* model,
    const std::vector<std::vector<int32_t>>& class_name_tokens);

// A trained nn::TextClassifier (ConWea::trained_classifier(),
// XClass::trained_classifier(), or any WeSTClass model) behind the
// serve interface. `scores` returns the class probabilities.
class TextClassifierServable : public serve::Classifier {
 public:
  TextClassifierServable(std::string name,
                         std::shared_ptr<nn::TextClassifier> classifier,
                         size_t num_classes);

  std::string name() const override { return name_; }
  size_t num_classes() const override { return num_classes_; }
  Input input() const override { return Input::kTokens; }

  serve::Prediction Classify(const std::vector<int32_t>& ids,
                             const float* pooled,
                             const la::Matrix* hidden) const override;

 private:
  std::string name_;
  std::shared_ptr<nn::TextClassifier> classifier_;
  size_t num_classes_;
};

// TaxoClass's self-trained multi-label classifier plus its leaf-level
// decision rule (taxoclass.cc): a leaf is predicted when its probability
// clears both `predict_threshold` and 0.45x the document's best leaf;
// the set is closed under ancestors, falling back to the best leaf's
// path. `label` is the best leaf, `labels` the closed set (ascending),
// `scores` the per-node probabilities.
class TaxoClassServable : public serve::Classifier {
 public:
  TaxoClassServable(std::string name,
                    std::shared_ptr<nn::FeatureMlpClassifier> classifier,
                    const taxonomy::LabelTree* tree, size_t vocab_size,
                    float predict_threshold);

  std::string name() const override { return name_; }
  size_t num_classes() const override { return tree_->size(); }
  Input input() const override { return Input::kTokens; }

  serve::Prediction Classify(const std::vector<int32_t>& ids,
                             const float* pooled,
                             const la::Matrix* hidden) const override;

 private:
  std::string name_;
  std::shared_ptr<nn::FeatureMlpClassifier> classifier_;
  const taxonomy::LabelTree* tree_;
  size_t vocab_size_;
  float predict_threshold_;
};

}  // namespace stm::core

#endif  // STM_CORE_SERVE_ADAPTERS_H_
