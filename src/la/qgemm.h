#ifndef STM_LA_QGEMM_H_
#define STM_LA_QGEMM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace stm::la {

namespace detail {
struct GemmKernelFns;
}

// Int8 quantized GEMM for frozen-weight inference (see DESIGN.md,
// "Quantized inference").
//
// Scale scheme — symmetric absmax, chosen per tensor so the dispatch and
// the quantized values never depend on the thread count:
//  * B (the weight) is quantized per COLUMN to [-127, 127]:
//      b_scale[j] = absmax(B[:, j]) / 127,   bq = round(b / b_scale[j]).
//  * A (the activation) is quantized per ROW to [-63, 63] and stored with
//    a +64 offset as unsigned bytes in [1, 127]:
//      a_scale[i] = absmax(A[i, :]) / 63,    aq = round(a / a_scale[i]),
//      stored byte = aq + 64.
// An all-zero row/column gets scale 0 and quantized value 0.
//
// The offset lets the AVX2/AVX-512BW micro-kernels use `maddubs`
// (unsigned x signed byte pairs -> saturating int16): with the unsigned
// operand capped at 127 the worst pair sum is 127*127*2 = 32258 < 32767,
// so the saturating instruction never actually saturates and the integer
// arithmetic is exact. The VNNI tier's `vpdpbusd` accumulates the same
// products directly in int32 (exact by construction), and the generic
// build computes them with scalar loops — every ISA tier dequantizes
// identical accumulators:
//
//   sum_p (aq + 64) * bq = sum_p aq*bq + 64 * colsum_q(B[:, j])
//   C[i][j] += a_scale[i] * b_scale[j] * (acc[i][j] - 64 * colsum[j])
//
// |sum_p aq*bq| <= k * 63 * 127, exact in int32 for any realistic k and
// exact in float for k <= 2097 (< 2^24), so the only error left is the
// quantization rounding itself.

// Quantization extents. Part of the pack layout; identical in every ISA
// build.
inline constexpr int kInt8AMax = 63;    // |aq| bound (7 bits effective)
inline constexpr int kInt8BMax = 127;   // |bq| bound
inline constexpr int kInt8AZero = 64;   // unsigned-byte offset added to aq
inline constexpr size_t kInt8KGroup = 4;  // k values consumed per maddubs

// scales[i] = absmax(a[i, :]) / qmax (0 for an all-zero row), then each
// row is quantized with QuantizeRowWithScale. `q` is row-major [rows, k].
void QuantizeRowsAbsmax(const float* a, size_t rows, size_t k, int qmax,
                        int8_t* q, float* scales);

// q[p] = clamp(round(row[p] / scale), -qmax, qmax); all zeros when
// scale <= 0. Exposed so tests can force saturation with an undersized
// scale.
void QuantizeRowWithScale(const float* row, size_t k, float scale, int qmax,
                          int8_t* q);

// A quantized, packed B operand, built once (at MiniLm::Freeze time) and
// reused across every GEMM against it.
struct Int8PackedB {
  size_t k = 0;  // rows of B (the contraction extent)
  size_t n = 0;  // columns of B

  // Row-major [k, n] quantized values — the serialization and test view.
  std::vector<int8_t> rowmajor;
  // Per-column dequantization scales [n].
  std::vector<float> scales;
  // Per-column sums of the quantized values [n] (the +64 offset
  // correction term); recomputed from `rowmajor`, never stored on disk.
  std::vector<int32_t> colsums;
  // Micro-kernel layout, packed for the freeze tier's panel width
  // (panel_nr = FreezeKernelsForWidth(n).nr — the active tier unless the
  // width-aware hint picks a narrower one; int8 output is bit-identical
  // in every tier): panel_nr-column panels, k in groups of kInt8KGroup.
  // Panel jp, group g is a panel_nr*4-byte chunk whose byte (jj * 4 + t)
  // holds bq[g*4 + t][jp*panel_nr + jj] (zero past the k/n edges). Only
  // `rowmajor` + `scales` are the portable view; panels (and the tier
  // pointer) are rebuilt per process.
  size_t panel_nr = 0;
  const detail::GemmKernelFns* tier = nullptr;
  std::vector<int8_t> panels;
};

// Quantizes and packs the strided operand B[p][j] = b[p*rs + j*cs]
// (rs/cs in floats). Serial per column; the result depends only on B.
Int8PackedB PackInt8B(const float* b, size_t rs, size_t cs, size_t k,
                      size_t n);

// Rebuilds panels and colsums from stored row-major quantized values (the
// artifact load path; see plm/quantized_minilm.cc). `rowmajor` must hold
// k*n values and `scales` n entries.
Int8PackedB RepackInt8B(std::vector<int8_t> rowmajor,
                        std::vector<float> scales, size_t k, size_t n);

// Rebuilds b's panel layout for an arbitrary panel width. Test hook: the
// per-tier kernel sweeps pack B at each compiled tier's nr to drive that
// tier's int8_run_rows directly, independent of the active dispatch.
std::vector<int8_t> Int8PanelsForWidth(const Int8PackedB& b, size_t nr);

// c[m, b.n] += dequant(quant(a) * B) for row-major a[m, b.k]. A is
// quantized per row over the whole matrix before the row-parallel sweep,
// so the output is bit-identical across thread counts. Runs the int8
// micro-kernel picked by the same one-time cpuid/STM_ISA selection as the
// fp32 packed path; every tier produces bit-identical output (exact
// integer accumulators, one shared dequantization expression).
void Int8GemmAcc(const float* a, size_t m, const Int8PackedB& b, float* c);

}  // namespace stm::la

#endif  // STM_LA_QGEMM_H_
