// Multi-label product tagging over a taxonomy with TaxoClass.
//
// Products carry 1-3 leaf categories from a two-level department taxonomy;
// the only supervision is the category names. The relevance model is
// pre-trained on auxiliary topics (never the evaluation classes), then
// TaxoClass explores the taxonomy top-down and trains a multi-label
// classifier on its core classes.
//
//   ./example_paper_tagging_taxonomy

#include <cstdio>

#include "common/string_util.h"
#include "core/taxoclass.h"
#include "datasets/specs.h"
#include "eval/metrics.h"
#include "plm/minilm.h"

int main() {
  stm::datasets::SyntheticSpec spec =
      stm::datasets::AmazonTaxoSpec(/*seed=*/11);
  spec.num_docs = 250;
  spec.pretrain_docs = 800;
  stm::datasets::SyntheticDataset data = stm::datasets::Generate(spec);
  std::printf("taxonomy: %zu nodes, %zu leaves, %zu documents\n",
              data.tree.size(), data.tree.Leaves().size(),
              data.corpus.num_docs());

  stm::plm::MiniLmConfig lm_config;
  lm_config.vocab_size = data.corpus.vocab().size();
  lm_config.dim = 40;
  lm_config.layers = 2;
  lm_config.heads = 4;
  lm_config.ffn_dim = 80;
  lm_config.max_seq = 40;
  stm::plm::PretrainConfig pretrain;
  pretrain.steps = 1200;
  auto model = stm::plm::MiniLm::LoadOrPretrain(
      "plm_cache", data.fingerprint, lm_config, pretrain,
      data.pretrain_docs);

  // Entailment-style relevance model, pre-trained on auxiliary topics.
  auto relevance = stm::core::TrainRelevanceModel(
      model.get(), data.aux_docs, data.aux_labels,
      data.aux_topic_name_tokens, /*seed=*/3);

  // Node name tokens.
  std::vector<std::vector<int32_t>> node_names(data.tree.size());
  for (size_t n = 0; n < data.tree.size(); ++n) {
    for (const auto& part :
         stm::SplitWhitespace(data.tree.NameOf(static_cast<int>(n)))) {
      node_names[n].push_back(data.corpus.vocab().IdOf(part));
    }
  }

  stm::core::TaxoClassConfig config;
  stm::core::TaxoClass method(data.corpus, data.tree, model.get(),
                              relevance.get(), config);
  const auto result = method.Run(node_names);

  // Evaluate with ancestor-closed gold label sets.
  std::vector<std::vector<int>> gold;
  for (const auto& doc : data.corpus.docs()) {
    gold.push_back(data.tree.ClosureOf(doc.labels));
  }
  std::printf("Example-F1: %.3f   P@1: %.3f\n",
              stm::eval::ExampleF1(result.predicted, gold),
              stm::eval::PrecisionAtK(result.ranked, gold, 1));

  // Show a few tagged products.
  for (size_t d = 0; d < 4; ++d) {
    std::printf("doc %zu\n  predicted:", d);
    for (int node : result.predicted[d]) {
      std::printf(" %s", data.tree.NameOf(node).c_str());
    }
    std::printf("\n  gold:     ");
    for (int node : gold[d]) {
      std::printf(" %s", data.tree.NameOf(node).c_str());
    }
    std::printf("\n");
  }
  return 0;
}
