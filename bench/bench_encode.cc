// Batch-encoding bench: padded vs length-bucketed batching vs the
// embedding cache, over a mixed-length corpus shaped like the tutorial
// datasets (mostly short documents with a long tail). One row per
// execution mode in fp32 and int8 (STM_QUANT path); the "cached" row
// times a warm PoolBatch pass against an in-memory EncodeCache. With
// STM_BENCH_JSON=<path>, every timing plus the derived speedup ratios is
// recorded for scripted before/after comparison (see bench/run_benches.sh,
// which commits the single-thread numbers as BENCH_encode.json).
//
//   ./bench_encode            full sweep (respects STM_NUM_THREADS)
//   ./bench_encode --smoke    fast correctness pass used by ctest; exits
//                             non-zero if bucketed/padded/cached outputs
//                             are not BIT-identical to per-document calls
//                             in both fp32 and int8

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "la/gemm_kernels.h"
#include "la/matrix.h"
#include "plm/batch_scheduler.h"
#include "plm/encode_cache.h"
#include "plm/minilm.h"
#include "plm/quantized_minilm.h"
#include "text/vocabulary.h"

namespace stm {
namespace {

// Tutorial-shaped length mix: 70% short (4-12 tokens), 25% medium
// (13-28), 5% near the max_seq cap — the regime where padding to the
// global max wastes most of the batch.
std::vector<std::vector<int32_t>> SkewedCorpus(size_t count, size_t vocab,
                                               uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<int32_t>> docs(count);
  for (auto& doc : docs) {
    size_t len;
    const double r = rng.Uniform();
    if (r < 0.70) {
      len = 4 + rng.UniformInt(9);
    } else if (r < 0.95) {
      len = 13 + rng.UniformInt(16);
    } else {
      len = 36 + rng.UniformInt(13);
    }
    doc.resize(len);
    for (int32_t& id : doc) {
      id = text::kNumSpecialTokens +
           static_cast<int32_t>(
               rng.UniformInt(vocab - text::kNumSpecialTokens));
    }
  }
  return docs;
}

std::unique_ptr<plm::MiniLm> BenchModel(size_t vocab) {
  plm::MiniLmConfig config;
  config.vocab_size = vocab;
  config.dim = 40;
  config.layers = 2;
  config.heads = 4;
  config.ffn_dim = 80;
  config.max_seq = 48;
  config.seed = 17;
  // Random init: batching/caching speed and bit-identity are independent
  // of training, and skipping pre-training keeps the bench self-contained.
  return std::make_unique<plm::MiniLm>(config);
}

void SetMode(plm::BatchMode mode) {
  plm::BatchOptions options;
  options.mode = mode;
  plm::SetBatchOptions(options);
}

double TimePoolBatch(plm::MiniLm& model,
                     const std::vector<std::vector<int32_t>>& docs,
                     const std::string& json_method) {
  WallTimer timer;
  {
    bench::MethodTimer method("encode", json_method);
    const la::Matrix pooled = model.PoolBatch(docs);
    // Keep the result alive so the pass cannot be optimized away.
    if (pooled.rows() != docs.size()) std::abort();
  }
  return timer.Seconds();
}

void RecordRatio(const std::string& name, double ratio) {
  bench::BenchJsonWriter::Instance().Record("encode", name, ratio);
}

void NarrowFreezeTierBench();

int RunSweep() {
  const size_t kVocab = 1000;
  const auto docs = SkewedCorpus(1400, kVocab, 99);
  auto model = BenchModel(kVocab);

  bench::Table table("Batch encoding: padded vs bucketed vs cached "
                     "(PoolBatch seconds, lower is better)",
                     {"perdoc_s", "padded_s", "bucket_s", "speedup",
                      "cached_s", "cache_x"});

  for (const bool quant : {false, true}) {
    const std::string prefix = quant ? "int8" : "fp32";
    plm::SetQuantInference(quant ? 1 : 0);
    bench::Progress(prefix + ": warmup");
    SetMode(plm::BatchMode::kBucketed);
    (void)model->PoolBatch({docs[0], docs[1]});  // freeze/pack once

    SetMode(plm::BatchMode::kPerDoc);
    const double perdoc = TimePoolBatch(*model, docs, prefix + "_perdoc");
    bench::Progress(prefix + ": perdoc " + std::to_string(perdoc) + "s");
    SetMode(plm::BatchMode::kPadded);
    const double padded = TimePoolBatch(*model, docs, prefix + "_padded");
    bench::Progress(prefix + ": padded " + std::to_string(padded) + "s");
    SetMode(plm::BatchMode::kBucketed);
    const double bucketed =
        TimePoolBatch(*model, docs, prefix + "_bucketed");
    bench::Progress(prefix + ": bucketed " + std::to_string(bucketed) +
                    "s");

    // Warm-cache pass: fill once, then time a pure-hit run.
    plm::EncodeCache::Config cache_config;
    cache_config.max_bytes = size_t{512} * 1024 * 1024;
    model->SetEncodeCache(std::make_shared<plm::EncodeCache>(cache_config));
    (void)model->PoolBatch(docs);
    const double cached = TimePoolBatch(*model, docs, prefix + "_cached");
    bench::Progress(prefix + ": cached " + std::to_string(cached) + "s");
    model->SetEncodeCache(nullptr);

    const double speedup = bucketed > 0 ? padded / bucketed : 0.0;
    const double cache_x = cached > 0 ? bucketed / cached : 0.0;
    RecordRatio(prefix + "_bucketed_speedup", speedup);
    RecordRatio(prefix + "_cache_speedup", cache_x);
    table.AddRow(prefix, {perdoc, padded, bucketed, speedup, cached,
                          cache_x});
  }
  plm::SetQuantInference(-1);
  SetMode(plm::BatchMode::kBucketed);
  table.Print();
  NarrowFreezeTierBench();
  return 0;
}

// Width-aware freeze tier at the bench model's dim (40): the same
// prepacked fp32 GEMM timed with B packed for the active tier versus the
// tier FreezeKernelsForWidth picks for n=40. On an AVX-512 machine the
// freeze tier packs 8-column AVX2 panels (zero padding) instead of
// 16-column ones (20% padded multiply work); on narrower machines both
// rows run the same tier and the ratio is ~1. Outputs are compared
// bitwise first — the hint must never change bits, only throughput.
void NarrowFreezeTierBench() {
  constexpr size_t kM = 512;
  constexpr size_t kK = 40;
  constexpr size_t kN = 40;
  Rng rng(1234);
  std::vector<float> a(kM * kK);
  std::vector<float> b(kK * kN);
  for (float& v : a) v = static_cast<float>(rng.Uniform()) - 0.5f;
  for (float& v : b) v = static_cast<float>(rng.Uniform()) - 0.5f;

  const auto pack_for = [&](const la::detail::GemmKernelFns& fns) {
    la::PackedBF32 out;
    out.k = kK;
    out.n = kN;
    out.panel_nr = fns.nr;
    out.tier = &fns;
    const size_t npanels = la::detail::CeilDiv(kN, fns.nr);
    out.panels.resize(npanels * kK * fns.nr);
    fns.pack_b(b.data(), kN, 1, kK, kN, 0, npanels, out.panels.data());
    return out;
  };
  const la::PackedBF32 active_b = pack_for(la::detail::ActiveGemmKernels());
  const la::PackedBF32 freeze_b =
      pack_for(la::detail::FreezeKernelsForWidth(kN));

  std::vector<float> c_active(kM * kN, 0.0f);
  std::vector<float> c_freeze(kM * kN, 0.0f);
  la::PrepackedGemmAcc(a.data(), kM, active_b, c_active.data());
  la::PrepackedGemmAcc(a.data(), kM, freeze_b, c_freeze.data());
  if (std::memcmp(c_active.data(), c_freeze.data(),
                  c_active.size() * sizeof(float)) != 0) {
    std::fprintf(stderr,
                 "FAIL: freeze-tier GEMM differs from active tier\n");
    std::abort();
  }

  constexpr int kIters = 4000;
  const auto time_tier = [&](const la::PackedBF32& packed, float* c) {
    WallTimer timer;
    for (int i = 0; i < kIters; ++i) {
      la::PrepackedGemmAcc(a.data(), kM, packed, c);
    }
    return timer.Seconds();
  };
  (void)time_tier(active_b, c_active.data());  // warm
  const double active_s = time_tier(active_b, c_active.data());
  const double freeze_s = time_tier(freeze_b, c_freeze.data());
  const double speedup = freeze_s > 0 ? active_s / freeze_s : 0.0;

  bench::Table table(
      "Width-aware freeze tier, prepacked fp32 GEMM m=512 k=n=40 "
      "(seconds for 4000 calls, lower is better)",
      {"active_s", "freeze_s", "speedup"});
  table.AddRow("narrow40", {active_s, freeze_s, speedup});
  table.Print();
  bench::BenchJsonWriter::Instance().Record("encode", "narrow40_active_s",
                                            active_s);
  bench::BenchJsonWriter::Instance().Record("encode", "narrow40_freeze_s",
                                            freeze_s);
  bench::BenchJsonWriter::Instance().Record("encode", "narrow40_speedup",
                                            speedup);
}

// Fast ctest pass: every batch mode and the cache must reproduce the
// per-document outputs bit-for-bit in both precisions.
int RunSmoke() {
  const size_t kVocab = 200;
  const auto docs = SkewedCorpus(48, kVocab, 7);
  auto model = BenchModel(kVocab);
  int failures = 0;

  for (const bool quant : {false, true}) {
    plm::SetQuantInference(quant ? 1 : 0);
    SetMode(plm::BatchMode::kPerDoc);
    const la::Matrix want = model->PoolBatch(docs);
    for (const plm::BatchMode mode :
         {plm::BatchMode::kPadded, plm::BatchMode::kBucketed}) {
      SetMode(mode);
      const la::Matrix got = model->PoolBatch(docs);
      if (std::memcmp(want.data(), got.data(),
                      want.size() * sizeof(float)) != 0) {
        std::fprintf(stderr,
                     "FAIL: quant=%d mode=%d differs from perdoc\n",
                     quant ? 1 : 0, static_cast<int>(mode));
        ++failures;
      }
    }
    SetMode(plm::BatchMode::kBucketed);
    model->SetEncodeCache(std::make_shared<plm::EncodeCache>(
        plm::EncodeCache::Config{}));
    (void)model->PoolBatch(docs);  // fill
    const la::Matrix cached = model->PoolBatch(docs);  // pure hits
    if (std::memcmp(want.data(), cached.data(),
                    want.size() * sizeof(float)) != 0) {
      std::fprintf(stderr, "FAIL: quant=%d cached differs from perdoc\n",
                   quant ? 1 : 0);
      ++failures;
    }
    model->SetEncodeCache(nullptr);
  }
  plm::SetQuantInference(-1);
  if (failures == 0) std::printf("bench_encode --smoke: OK\n");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace stm

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--smoke") {
    return stm::RunSmoke();
  }
  return stm::RunSweep();
}
