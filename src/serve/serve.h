#ifndef STM_SERVE_SERVE_H_
#define STM_SERVE_SERVE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "la/matrix.h"
#include "plm/minilm.h"

namespace stm::serve {

// Online classification service over the library's trained methods.
//
// Every core method in this repo runs as a batch `Run()` over a fixed
// corpus; production traffic is a stream of single documents. The Server
// below turns a trained method into a request/response service:
//
//   request -> bounded queue -> dynamic batch -> shared encoder -> hook
//
//  * Incoming single-document requests are coalesced into batches of up
//    to STM_SERVE_MAX_BATCH documents under a latency deadline of
//    STM_SERVE_DEADLINE_MS (a lone request under light load waits at
//    most the deadline before it runs alone).
//  * A drained batch is encoded through MiniLm::PoolBatch/EncodeBatch —
//    i.e. through plm::PlanBuckets and the frozen int8 encoder when
//    STM_QUANT is on, the fp32 graph otherwise — so the serve path reuses
//    the exact batch machinery (and its bit-identity guarantees) that the
//    offline Run() paths use.
//  * Admission control: the queue holds at most STM_SERVE_QUEUE_DEPTH
//    requests. When it is full, Submit() rejects with kUnavailable and
//    bumps a shed counter; overload degrades into rejections, never into
//    unbounded memory growth.
//  * Routing: any number of Classifier adapters register under model
//    names; each request names the model it wants.
//
// Overload resilience (see DESIGN.md 5j): shedding is the LAST resort,
// not the only response to pressure.
//
//  * Per-request deadlines: Submit takes a SubmitOptions with a relative
//    deadline; a request whose deadline passed while it queued is failed
//    with kDeadlineExceeded at drain time, cheaply, WITHOUT being
//    encoded — under overload the encoder's capacity goes to requests
//    that can still be answered in time. The batch-close heuristic is
//    deadline-aware: a batch closes early when the tightest deadline in
//    the queue would be at risk (estimated from an EWMA of batch wall
//    time) if the worker kept waiting for the batch to fill.
//  * Cooperative cancellation: a request may carry a CancelToken; once
//    tripped, the request is dropped at the next drain with kCancelled.
//  * Graceful degradation (STM_SERVE_DEGRADE=off|auto): under sustained
//    pressure — an EWMA of the queue-depth fraction crossing a
//    high-water mark — the server steps down a ladder
//      full fidelity -> frozen int8 encoder -> cache-hit-only -> shed
//    and steps back up (down the ladder) when pressure clears, with
//    hysteresis (distinct high/low water marks plus a minimum dwell in
//    pressure samples) so it does not flap. Every transition is counted;
//    Health() reports the current tier. Int8-tier answers are marked
//    Prediction::degraded (unless int8 already was the configured mode);
//    cache-only answers come from entries the full-fidelity path wrote,
//    so they stay bit-identical and unmarked, and cache-only misses shed.
//  * No promise leak: a batch whose encode fails, or whose Classify hook
//    throws, fails exactly the affected requests with a Status. Every
//    admitted future resolves — with a Prediction or a Status — no
//    matter which mix of faults, cancellations and deadlines occurs
//    (pinned by tests/serve_chaos_test.cc).
//  * Watchdog: with STM_SERVE_WATCHDOG_MS > 0, a watchdog thread flags
//    (counter + stderr) any drain worker stuck in one batch longer than
//    the threshold — a hung Classify hook is surfaced, not silent.
//
// Threading (see DESIGN.md 5h): the drain workers are DEDICATED
// std::threads owned by the Server, never members of the global
// ThreadPool. ThreadPool::Run serializes when called from inside a pool
// worker (the nested-submit rejection in thread_pool.cc), so a serve
// worker that lived in the pool would run every encoder GEMM single-
// threaded. As plain threads they *submit* parallel regions to the
// global pool and participate in draining them, exactly like the batch
// Run() callers do.
//
// Determinism: each document's full-fidelity result depends only on
// (model weights, quant mode, token ids) — never on what else shared its
// batch, the timing of arrivals, or STM_NUM_THREADS. This is the PR 5
// invariant (bucketed == per-doc, bit-for-bit) plus per-document
// classify hooks, and is pinned by tests/serve_test.cc and bench_serve
// --smoke. Degraded (int8-tier) answers trade that identity for
// capacity, and say so.

// ---- options ----

struct ServeOptions {
  // Upper bound on documents drained into one batch.
  size_t max_batch = 32;
  // How long a drain worker may wait for the batch to fill, measured
  // from the oldest queued request's arrival. 0 = never wait.
  double deadline_ms = 2.0;
  // Admission-control bound on queued (not yet drained) requests.
  size_t queue_depth = 256;
  // Dedicated drain threads. More than one lets a second batch encode
  // while the first is still in its classify hooks.
  size_t workers = 2;

  // Default per-request deadline applied when SubmitOptions does not set
  // one. 0 = no deadline.
  double request_deadline_ms = 0.0;
  // Graceful-degradation ladder on/off (STM_SERVE_DEGRADE=off|auto).
  bool degrade_auto = false;
  // Watchdog threshold for a worker stuck in one batch; 0 disables the
  // watchdog thread entirely.
  double watchdog_ms = 0.0;
  // Fixed capacity of the latency reservoir sample (see
  // TakeLatenciesMs); memory stays bounded no matter how long the
  // server runs.
  size_t latency_reservoir = 4096;

  // Degradation hysteresis tuning (not environment-exposed; tests and
  // benches set them directly). Pressure is an EWMA of queue_size /
  // queue_depth sampled at every Submit.
  double degrade_alpha = 0.05;       // EWMA smoothing per sample
  double degrade_high_water = 0.5;   // step toward shedding above this
  double degrade_low_water = 0.1;    // step toward full below this
  size_t degrade_dwell_up = 16;      // min samples between up-steps
  size_t degrade_dwell_down = 256;   // min samples between down-steps
};

// Options from the environment (validated via common/env_parse.h; a set
// but malformed knob warns on stderr and keeps the default):
//   STM_SERVE_MAX_BATCH            [1, 4096]     default 32
//   STM_SERVE_DEADLINE_MS          [0, 60000]    default 2.0
//   STM_SERVE_QUEUE_DEPTH          [1, 1048576]  default 256
//   STM_SERVE_WORKERS              [1, 256]      default 2
//   STM_SERVE_REQUEST_DEADLINE_MS  [0, 600000]   default 0 (= none)
//   STM_SERVE_DEGRADE              off|auto      default off
//   STM_SERVE_WATCHDOG_MS          [0, 600000]   default 0 (= off)
ServeOptions ServeOptionsFromEnv();

// ---- per-request controls ----

// Cooperative cancellation handle. The client keeps (a shared_ptr to)
// the token and trips it; the server observes it at the next drain and
// fails the request with kCancelled instead of encoding it. One token
// may be shared by many requests (cancel a whole page of work at once).
class CancelToken {
 public:
  CancelToken() = default;

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

struct SubmitOptions {
  // Relative deadline for this request, measured from Submit. 0 = use
  // ServeOptions::request_deadline_ms (which may itself be 0 = none).
  double deadline_ms = 0.0;
  // Optional cancellation handle; null = not cancellable.
  std::shared_ptr<const CancelToken> cancel;
};

// ---- degradation ladder ----

enum class DegradeTier : int {
  kFull = 0,       // fp32 (or the configured STM_QUANT mode) — reference
  kInt8 = 1,       // frozen int8 encoder; answers marked `degraded`
  kCacheOnly = 2,  // answer cache hits bit-identically, shed the rest
  kShed = 3,       // admission rejects everything until pressure clears
};

std::string_view DegradeTierName(DegradeTier tier);

// ---- the routing interface ----

struct Prediction {
  // Primary (argmax) label.
  int label = -1;
  // Multi-label methods (TaxoClass) additionally fill the full predicted
  // set, closed under taxonomy ancestors, sorted ascending.
  std::vector<int> labels;
  // Per-class scores when the method computes them anyway (cosines,
  // probabilities); empty otherwise.
  std::vector<float> scores;
  // Which ladder tier served this answer, and whether the answer may
  // differ from the full-fidelity batch path (true only for int8-tier
  // answers when int8 was not the configured mode; cache-only hits are
  // full-fidelity bits and stay false).
  DegradeTier tier = DegradeTier::kFull;
  bool degraded = false;
};

// One trained method behind the Server. Implementations declare which
// encoder output they need; the Server computes it once per batch and
// hands each document to the per-document hook. Hooks MUST be
// deterministic pure functions of their inputs and safe to call
// concurrently from several drain workers (every adapter in
// core/serve_adapters.h is: inference-only forward passes over frozen
// parameters). A hook that throws fails ITS request with a Status — the
// server isolates the exception; it never takes down the batch, a drain
// worker, or the process.
class Classifier {
 public:
  enum class Input {
    kTokens,  // raw token ids only (bag-of-words style methods)
    kPooled,  // mean-pooled document vector from the shared encoder
    kHidden,  // per-token hidden states from the shared encoder
  };

  virtual ~Classifier() = default;

  virtual std::string name() const = 0;
  virtual size_t num_classes() const = 0;
  virtual Input input() const { return Input::kPooled; }

  // Exactly one of `pooled` / `hidden` is non-null, per input():
  // `pooled` points at the document's dim-wide PoolBatch row, `hidden`
  // at its EncodeBatch matrix. Both are bit-identical to what the batch
  // Run() path computes for the same ids.
  virtual Prediction Classify(const std::vector<int32_t>& ids,
                              const float* pooled,
                              const la::Matrix* hidden) const = 0;
};

// ---- the server ----

class Server {
 public:
  struct Stats {
    uint64_t accepted = 0;   // requests admitted to the queue
    uint64_t shed = 0;       // rejected kUnavailable: queue full or
                             // shed-tier admission
    uint64_t invalid = 0;    // rejected kInvalidArgument
    uint64_t completed = 0;  // predictions delivered
    uint64_t batches = 0;    // drained batches that ran work
    size_t max_queue = 0;    // high-water queue depth

    // Overload-resilience accounting. Every admitted request lands in
    // exactly one bucket, so after all futures resolve:
    //   accepted == completed + cancelled + deadline_exceeded
    //             + degrade_shed + failed_requests + failed_batch_requests
    //             + orphaned
    // — the no-promise-leak conservation law the chaos test asserts.
    uint64_t cancelled = 0;          // dropped at drain: CancelToken
    uint64_t deadline_exceeded = 0;  // expired in queue, never encoded
    uint64_t degrade_shed = 0;       // cache-only tier miss, shed at drain
    uint64_t failed_requests = 0;    // Classify hook threw
    uint64_t failed_batches = 0;     // encode step failed (whole batch)
    uint64_t failed_batch_requests = 0;  // requests failed by those
    uint64_t orphaned = 0;           // queued at Shutdown, kUnavailable
    uint64_t degraded = 0;           // answers delivered with degraded set
    uint64_t degrade_up = 0;         // ladder steps toward shedding
    uint64_t degrade_down = 0;       // ladder steps toward full fidelity
    uint64_t watchdog_stalls = 0;    // workers flagged stuck
  };

  // Point-in-time readiness snapshot for load balancers and operators.
  struct Health {
    bool ready = false;         // accepting work (not stopped, not kShed)
    DegradeTier tier = DegradeTier::kFull;
    double pressure = 0.0;      // EWMA of queue_size / queue_depth
    double ewma_batch_ms = 0.0; // EWMA of batch wall time
    size_t queue_size = 0;      // current queued (undrained) requests
    size_t stuck_workers = 0;   // currently flagged by the watchdog
    double shed_rate = 0.0;     // (shed + degrade_shed) / submitted
    double deadline_miss_rate = 0.0;  // deadline_exceeded / accepted
  };

  // `model` is the shared encoder; it must not be trained while the
  // server is running (same contract as every batch inference path).
  Server(plm::MiniLm* model, const ServeOptions& options);
  ~Server();  // Shutdown() + join

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Registers `classifier` under `name`. Registration is only legal
  // before the first Submit: the routing map is read lock-free on the
  // hot path once serving starts, so a late Register returns (and logs)
  // kInvalidArgument instead of racing in-flight lookups.
  Status Register(const std::string& name,
                  std::shared_ptr<const Classifier> classifier);

  // Non-blocking admission. On acceptance the future resolves when the
  // batch carrying the document completes — always, with a Prediction or
  // a Status (see the conservation law on Stats). Rejections are
  // immediate:
  //   kInvalidArgument  unknown model name, or a token id outside the
  //                     encoder's vocabulary (checked here so a bad
  //                     request can never abort a drain worker);
  //   kUnavailable      queue at queue_depth (shed), shed-tier
  //                     degradation, or shutting down.
  // Deferred resolutions:
  //   kDeadlineExceeded deadline passed while queued (failed at drain,
  //                     never encoded);
  //   kCancelled        CancelToken tripped before the drain;
  //   kUnavailable      cache-only tier miss, encode failure, or a
  //                     throwing Classify hook.
  std::future<StatusOr<Prediction>> Submit(const std::string& model,
                                           std::vector<int32_t> ids,
                                           const SubmitOptions& submit);
  std::future<StatusOr<Prediction>> Submit(const std::string& model,
                                           std::vector<int32_t> ids) {
    return Submit(model, std::move(ids), SubmitOptions{});
  }

  // Blocking convenience: Submit + wait.
  StatusOr<Prediction> Serve(const std::string& model,
                             std::vector<int32_t> ids,
                             const SubmitOptions& submit);
  StatusOr<Prediction> Serve(const std::string& model,
                             std::vector<int32_t> ids) {
    return Serve(model, std::move(ids), SubmitOptions{});
  }

  // Stops admitting, fails queued-but-undrained requests with
  // kUnavailable, and joins the workers. Idempotent.
  void Shutdown();

  Stats stats() const;
  Health health() const;

  // Per-request latencies (admission -> prediction delivered) in
  // milliseconds, drained destructively. A fixed-capacity reservoir
  // sample (ServeOptions::latency_reservoir): uniform over everything
  // recorded since the last Take, so p50/p99 computed on it estimate the
  // true percentiles while a long-running server's memory stays bounded.
  std::vector<double> TakeLatenciesMs();

  const ServeOptions& options() const { return options_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Request {
    std::vector<int32_t> ids;
    const Classifier* classifier = nullptr;
    std::promise<StatusOr<Prediction>> promise;
    std::chrono::steady_clock::time_point enqueued;
    // time_point::max() = no deadline.
    std::chrono::steady_clock::time_point deadline;
    std::shared_ptr<const CancelToken> cancel;
  };

  // Per-worker watchdog slot, padded so heartbeats don't false-share.
  struct alignas(64) WorkerState {
    std::atomic<int64_t> busy_since_ns{0};  // 0 = idle
    std::atomic<bool> flagged{false};
  };

  void WorkerLoop(size_t worker_index);
  void WatchdogLoop();
  std::vector<std::unique_ptr<Request>> NextBatch();  // empty = shutdown
  void RunBatch(std::vector<std::unique_ptr<Request>> batch,
                WorkerState* state);

  DegradeTier tier() const {
    return static_cast<DegradeTier>(tier_.load(std::memory_order_acquire));
  }
  // Feeds one queue-fraction sample into the pressure EWMA and, in
  // degrade_auto mode, applies the hysteresis ladder transition rule.
  void UpdatePressure(double queue_frac);
  void RecordLatencyLocked(double ms);  // stats_mu_ held

  plm::MiniLm* const model_;
  const ServeOptions options_;

  // Routing map: mutable only before serving starts (registry_mu_ guards
  // the map and the serving_ latch together).
  mutable std::mutex registry_mu_;
  std::unordered_map<std::string, std::shared_ptr<const Classifier>>
      classifiers_;
  bool serving_ = false;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;  // signals arrivals and shutdown
  std::deque<std::unique_ptr<Request>> queue_;
  bool stopping_ = false;

  mutable std::mutex stats_mu_;
  Stats stats_;
  std::vector<double> latencies_ms_;  // reservoir, capacity latency_reservoir
  uint64_t latencies_seen_ = 0;       // since last Take
  Rng latency_rng_{0x1A7E};

  // Degradation state. Lock order where nesting is needed: mu_ may be
  // held when degrade_mu_ is taken (NextBatch reads the batch-time EWMA),
  // never the reverse. Ladder counters are atomics so transitions never
  // need stats_mu_ under degrade_mu_.
  mutable std::mutex degrade_mu_;
  double pressure_ = 0.0;
  double ewma_batch_ms_ = 0.0;
  size_t samples_since_change_ = 0;
  std::atomic<int> tier_{0};
  std::atomic<uint64_t> degrade_up_{0};
  std::atomic<uint64_t> degrade_down_{0};
  std::atomic<uint64_t> watchdog_stalls_{0};

  std::vector<std::unique_ptr<WorkerState>> worker_states_;
  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;
  std::thread watchdog_;

  std::mutex join_mu_;  // serializes concurrent Shutdown() joins
  std::vector<std::thread> workers_;
};

}  // namespace stm::serve

#endif  // STM_SERVE_SERVE_H_
