#include "plm/minilm.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "common/env_parse.h"
#include "common/hash.h"
#include "common/thread_pool.h"
#include "common/serialize.h"
#include "common/string_util.h"
#include "la/gemm_kernels.h"
#include "la/qgemm.h"
#include "la/workspace.h"
#include "nn/infer_ops.h"
#include "nn/loss.h"
#include "nn/ops.h"
#include "plm/batch_scheduler.h"
#include "plm/encode_cache.h"
#include "plm/quantized_minilm.h"
#include "text/vocabulary.h"

namespace stm::plm {

namespace {

constexpr uint32_t kModelMagic = 0x53544D4C;  // "STML"

// Mean over the rows of a cached hidden matrix, reproducing both
// nn::MaskedMeanPool's forward and QuantizedMiniLm::Pool bit-for-bit:
// zero accumulator, rows summed in ascending order, then one multiply by
// 1/rows. Lets PoolBatch serve a pooled vector from a cached hidden
// entry without re-encoding.
void PoolRowsFromHidden(const la::Matrix& hidden, float* out) {
  const size_t d = hidden.cols();
  std::fill(out, out + d, 0.0f);
  for (size_t t = 0; t < hidden.rows(); ++t) {
    const float* row = hidden.Row(t);
    for (size_t j = 0; j < d; ++j) out[j] += row[j];
  }
  const float inv = 1.0f / static_cast<float>(hidden.rows());
  for (size_t j = 0; j < d; ++j) out[j] *= inv;
}

// Same value as nn::LayerNorm's epsilon — the fused forward must
// reproduce the autograd forward bit-for-bit.
constexpr float kLayerNormEps = 1e-5f;

std::atomic<int> g_fp32_fused_override{-1};

bool EnvFp32FusedEnabled() {
  // Parsed once; process-wide so every call site takes the same path.
  static const bool enabled = ParseBoolEnv("STM_FP32_FUSED", true);
  return enabled;
}

// Row-chunked LayerNormRows: per-row math, so chunking is value-neutral
// and the chunk decomposition is the deterministic ParallelFor one.
void LayerNormRowsParallel(const float* x, size_t rows, size_t d,
                           const std::vector<float>& gamma,
                           const std::vector<float>& beta, float* out) {
  ParallelFor(0, rows, GrainForOps(8 * d), [&](size_t r0, size_t r1) {
    nn::LayerNormRows(x + r0 * d, r1 - r0, d, gamma.data(), beta.data(),
                      kLayerNormEps, out + r0 * d);
  });
}

// y[i] += x[i], chunked. Elementwise, so chunking is value-neutral.
void AddInplaceParallel(float* y, const float* x, size_t n) {
  ParallelFor(0, n, GrainForOps(2), [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) y[i] += x[i];
  });
}

}  // namespace

bool Fp32FusedEnabled() {
  const int mode = g_fp32_fused_override.load(std::memory_order_relaxed);
  if (mode >= 0) return mode != 0;
  return EnvFp32FusedEnabled();
}

void SetFp32FusedInference(int mode) {
  g_fp32_fused_override.store(mode < 0 ? -1 : (mode != 0 ? 1 : 0),
                              std::memory_order_relaxed);
}

// Frozen fp32 inference snapshot (see minilm.h). Mirrors
// QuantizedMiniLm::ForwardBucket's structure with exact fp32 projections:
// each weight is pre-packed once (la::PackFp32B) so a forward pass runs
// only A-side work, and the fused qkv projection computes q, k and v in
// ONE packed GEMM against the concatenated [dim, 3*dim] panels.
struct MiniLm::FrozenFp32 {
  struct PackedLinear {
    la::PackedBF32 weight;    // packed [in, out]
    std::vector<float> bias;  // [out]
  };
  struct FrozenLayer {
    PackedLinear qkv, out, ffn1, ffn2;
    std::vector<float> ln1_gamma, ln1_beta;
    std::vector<float> ln2_gamma, ln2_beta;
  };

  MiniLmConfig config;
  std::vector<float> token_table;  // [vocab, dim]
  std::vector<float> pos_table;    // [max_seq, dim]
  std::vector<FrozenLayer> layers;
  std::vector<float> final_gamma, final_beta;

  // x[rows, w.weight.k] @ W + b into out[rows, w.weight.n]. Zero-fill +
  // PrepackedGemmAcc + AddBiasRows rounds identically to
  // nn::Linear::Forward (MatMul then AddBias) — see la/gemm_kernels.h on
  // why the prepacked micro-kernel matches GemmAcc bit-for-bit.
  static void ApplyLinear(const float* x, size_t rows,
                          const PackedLinear& w, float* out) {
    const size_t n = w.weight.n;
    std::fill(out, out + rows * n, 0.0f);
    la::PrepackedGemmAcc(x, rows, w.weight, out);
    nn::AddBiasRows(out, rows, n, w.bias.data());
  }

  // Forward pass over one padded length bucket; same contract as
  // QuantizedMiniLm::ForwardBucket (out receives [count * seq, dim] final
  // hidden rows; rows past a document's length are deterministic but
  // meaningless). Attention runs per document at its exact length —
  // bit-identical to the autograd Forward's masked full-seq attention,
  // because the -1e9 additive mask drives every pad-key weight to an
  // exact 0.0f (exp underflow) and a zero attention weight contributes
  // exactly nothing to the fused context accumulation.
  void ForwardBucket(const int32_t* flat, size_t count, size_t seq,
                     const std::vector<int>& lengths, float* out) const;
};

void MiniLm::FrozenFp32::ForwardBucket(const int32_t* flat, size_t count,
                                       size_t seq,
                                       const std::vector<int>& lengths,
                                       float* out) const {
  const size_t R = count * seq;
  const size_t d = config.dim;
  const size_t h = config.heads;
  const size_t dh = d / h;
  const size_t f = config.ffn_dim;
  const float att_scale = 1.0f / std::sqrt(static_cast<float>(dh));

  // Token + position embeddings. Pad rows get real kPadId embeddings —
  // finite, deterministic values that flow through the row-local
  // projections but are never read by attention or the caller.
  std::vector<float> x = la::AcquireVec(R * d);
  ParallelFor(0, R, GrainForOps(2 * d), [&](size_t r0, size_t r1) {
    for (size_t r = r0; r < r1; ++r) {
      const float* tok = token_table.data() + static_cast<size_t>(flat[r]) * d;
      const float* pos = pos_table.data() + (r % seq) * d;
      float* row = x.data() + r * d;
      for (size_t j = 0; j < d; ++j) row[j] = tok[j] + pos[j];
    }
  });

  std::vector<float> normed = la::AcquireVec(R * d);
  std::vector<float> qkv = la::AcquireVec(R * 3 * d);
  // Zeroed once: attention only writes rows t < len, so pad rows stay an
  // exact 0.0 across layers instead of uninitialized bytes.
  std::vector<float> merged = la::AcquireZeroedVec(R * d);
  std::vector<float> proj = la::AcquireVec(R * d);
  std::vector<float> ffn = la::AcquireVec(R * f);

  for (const FrozenLayer& layer : layers) {
    // ---- attention sublayer (pre-LN) ----
    LayerNormRowsParallel(x.data(), R, d, layer.ln1_gamma, layer.ln1_beta,
                          normed.data());
    // Fused QKV: one pre-packed GEMM produces q|k|v for every row.
    ApplyLinear(normed.data(), R, layer.qkv, qkv.data());
    // Per-document, per-head tiled attention at the document's exact
    // length (see nn/infer_ops.h): O(strip * len) score workspace, GEMM
    // extents that match the per-document call bit-for-bit regardless of
    // bucket composition.
    ParallelFor(
        0, count, GrainForOps(2 * h * seq * seq * dh),
        [&](size_t b0, size_t b1) {
          for (size_t b = b0; b < b1; ++b) {
            const size_t len = static_cast<size_t>(lengths[b]);
            const size_t base = b * seq;
            std::vector<float> qh = la::AcquireVec(len * dh);
            std::vector<float> kh = la::AcquireVec(len * dh);
            std::vector<float> vh = la::AcquireVec(len * dh);
            std::vector<float> ctx = la::AcquireVec(len * dh);
            for (size_t head = 0; head < h; ++head) {
              const size_t off = head * dh;
              for (size_t t = 0; t < len; ++t) {
                const float* row = qkv.data() + (base + t) * 3 * d;
                for (size_t j = 0; j < dh; ++j) {
                  qh[t * dh + j] = row[off + j];
                  kh[t * dh + j] = row[d + off + j];
                  vh[t * dh + j] = row[2 * d + off + j];
                }
              }
              nn::TiledAttentionHead(qh.data(), kh.data(), vh.data(), len,
                                     dh, att_scale, ctx.data());
              for (size_t t = 0; t < len; ++t) {
                float* mrow = merged.data() + (base + t) * d + off;
                const float* crow = ctx.data() + t * dh;
                for (size_t j = 0; j < dh; ++j) mrow[j] = crow[j];
              }
            }
            la::ReleaseVec(std::move(ctx));
            la::ReleaseVec(std::move(vh));
            la::ReleaseVec(std::move(kh));
            la::ReleaseVec(std::move(qh));
          }
        });
    ApplyLinear(merged.data(), R, layer.out, proj.data());
    AddInplaceParallel(x.data(), proj.data(), R * d);

    // ---- feed-forward sublayer ----
    LayerNormRowsParallel(x.data(), R, d, layer.ln2_gamma, layer.ln2_beta,
                          normed.data());
    ApplyLinear(normed.data(), R, layer.ffn1, ffn.data());
    ParallelFor(0, R * f, GrainForOps(8), [&](size_t b, size_t e) {
      nn::GeluInplace(ffn.data() + b, e - b);
    });
    ApplyLinear(ffn.data(), R, layer.ffn2, proj.data());
    AddInplaceParallel(x.data(), proj.data(), R * d);
  }

  LayerNormRowsParallel(x.data(), R, d, final_gamma, final_beta, out);

  la::ReleaseVec(std::move(ffn));
  la::ReleaseVec(std::move(proj));
  la::ReleaseVec(std::move(merged));
  la::ReleaseVec(std::move(qkv));
  la::ReleaseVec(std::move(normed));
  la::ReleaseVec(std::move(x));
}

uint64_t MiniLmConfig::Fingerprint() const {
  uint64_t h = Fnv1a("minilm-v1");
  h = HashCombine(h, vocab_size);
  h = HashCombine(h, dim);
  h = HashCombine(h, layers);
  h = HashCombine(h, heads);
  h = HashCombine(h, ffn_dim);
  h = HashCombine(h, max_seq);
  h = HashCombine(h, seed);
  return h;
}

MiniLm::MiniLm(const MiniLmConfig& config) : config_(config), rng_(config.seed) {
  STM_CHECK_GT(config.vocab_size, 0u);
  STM_CHECK_EQ(config.dim % config.heads, 0u);
  token_embed_ = std::make_unique<nn::Embedding>(
      &store_, "tok", config.vocab_size, config.dim, rng_);
  pos_embed_ = std::make_unique<nn::Embedding>(&store_, "pos",
                                               config.max_seq, config.dim,
                                               rng_);
  layers_.resize(config.layers);
  for (size_t l = 0; l < config.layers; ++l) {
    const std::string prefix = "layer" + std::to_string(l);
    Layer& layer = layers_[l];
    layer.qkv = std::make_unique<nn::Linear>(&store_, prefix + ".qkv",
                                             config.dim, 3 * config.dim,
                                             rng_);
    layer.out = std::make_unique<nn::Linear>(&store_, prefix + ".out",
                                             config.dim, config.dim, rng_);
    layer.ffn1 = std::make_unique<nn::Linear>(&store_, prefix + ".ffn1",
                                              config.dim, config.ffn_dim,
                                              rng_);
    layer.ffn2 = std::make_unique<nn::Linear>(&store_, prefix + ".ffn2",
                                              config.ffn_dim, config.dim,
                                              rng_);
    layer.ln1 = std::make_unique<nn::LayerNormModule>(&store_, prefix + ".ln1",
                                                      config.dim);
    layer.ln2 = std::make_unique<nn::LayerNormModule>(&store_, prefix + ".ln2",
                                                      config.dim);
  }
  final_ln_ =
      std::make_unique<nn::LayerNormModule>(&store_, "final_ln", config.dim);
  mlm_bias_ = store_.Register("mlm_bias",
                              nn::Tensor::ZeroParam({config.vocab_size}));
  rtd_head_ =
      std::make_unique<nn::Linear>(&store_, "rtd", config.dim, 1, rng_);
  encode_cache_ = EncodeCache::SharedFromEnv();
}

std::vector<int32_t> MiniLm::Truncate(const std::vector<int32_t>& ids) const {
  std::vector<int32_t> out = ids;
  if (out.size() > config_.max_seq) out.resize(config_.max_seq);
  if (out.empty()) out.push_back(text::kPadId);
  for (int32_t id : out) {
    STM_CHECK_GE(id, 0);
    STM_CHECK_LT(static_cast<size_t>(id), config_.vocab_size);
  }
  return out;
}

nn::Tensor MiniLm::Forward(const std::vector<int32_t>& flat_ids, size_t count,
                           size_t seq, const std::vector<int>& lengths) {
  STM_CHECK_EQ(flat_ids.size(), count * seq);
  STM_CHECK_EQ(lengths.size(), count);
  const size_t d = config_.dim;
  const size_t h = config_.heads;
  const size_t dh = d / h;

  // Token + position embeddings.
  std::vector<int32_t> pos_ids(count * seq);
  for (size_t b = 0; b < count; ++b) {
    for (size_t t = 0; t < seq; ++t) {
      pos_ids[b * seq + t] = static_cast<int32_t>(t);
    }
  }
  nn::Tensor x = nn::Add(token_embed_->Forward(flat_ids),
                         pos_embed_->Forward(pos_ids));  // [B*S, d]

  // Additive attention mask: -1e9 on key positions beyond each length.
  // Built as ONE seq*seq block per sequence and broadcast over the h
  // heads at the AddConstantBroadcast op — every head sees the same key
  // validity, so materializing the [B*h, S, S] copy would cost h x the
  // memory for identical bytes. Borrowed from the workspace, so
  // consecutive Forward calls at the same shape reuse one allocation.
  std::vector<float> mask = la::AcquireZeroedVec(count * seq * seq);
  for (size_t b = 0; b < count; ++b) {
    const size_t len = static_cast<size_t>(lengths[b]);
    float* block = mask.data() + b * seq * seq;
    for (size_t q = 0; q < seq; ++q) {
      for (size_t kpos = len; kpos < seq; ++kpos) {
        block[q * seq + kpos] = -1e9f;
      }
    }
  }

  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
  for (Layer& layer : layers_) {
    // ---- attention sublayer (pre-LN) ----
    nn::Tensor normed = layer.ln1->Forward(x);
    nn::Tensor qkv = layer.qkv->Forward(normed);  // [B*S, 3d]
    nn::Tensor q = nn::SliceCols(qkv, 0, d);
    nn::Tensor k = nn::SliceCols(qkv, d, d);
    nn::Tensor v = nn::SliceCols(qkv, 2 * d, d);
    // [B*S, d] -> [B, S, h, dh] -> [B, h, S, dh] -> [B*h, S, dh]
    auto to_heads = [&](const nn::Tensor& t) {
      return nn::Reshape(
          nn::Permute(nn::Reshape(t, {count, seq, h, dh}), {0, 2, 1, 3}),
          {count * h, seq, dh});
    };
    nn::Tensor qh = to_heads(q);
    nn::Tensor kh = to_heads(k);
    nn::Tensor vh = to_heads(v);
    nn::Tensor scores = nn::Scale(nn::BMatMulT(qh, kh), scale);
    scores = nn::AddConstantBroadcast(scores, mask, h, seq * seq);
    nn::Tensor attn = nn::SoftmaxLastDim(scores);       // [B*h, S, S]
    nn::Tensor ctx = nn::BMatMul(attn, vh);             // [B*h, S, dh]
    nn::Tensor merged = nn::Reshape(
        nn::Permute(nn::Reshape(ctx, {count, h, seq, dh}), {0, 2, 1, 3}),
        {count * seq, d});
    x = nn::Add(x, layer.out->Forward(merged));

    // ---- feed-forward sublayer ----
    nn::Tensor normed2 = layer.ln2->Forward(x);
    nn::Tensor ffn =
        layer.ffn2->Forward(nn::Gelu(layer.ffn1->Forward(normed2)));
    x = nn::Add(x, ffn);
  }
  la::ReleaseVec(std::move(mask));
  return final_ln_->Forward(x);  // [B*S, d]
}

nn::Tensor MiniLm::MlmLogits(const nn::Tensor& hidden_rows) {
  // logits = H * E^T + b  via batched matmul-with-transpose.
  const size_t n = hidden_rows.dim(0);
  nn::Tensor h3 = nn::Reshape(hidden_rows, {1, n, config_.dim});
  nn::Tensor e3 = nn::Reshape(token_embed_->table(),
                              {1, config_.vocab_size, config_.dim});
  nn::Tensor logits =
      nn::Reshape(nn::BMatMulT(h3, e3), {n, config_.vocab_size});
  return nn::AddBias(logits, mlm_bias_);
}

double MiniLm::Pretrain(const std::vector<std::vector<int32_t>>& corpus_docs,
                        const PretrainConfig& pretrain) {
  STM_CHECK(!corpus_docs.empty());
  // Any previously frozen int8 snapshot is about to go stale.
  InvalidateFrozen();
  Rng rng(pretrain.seed);

  // Unigram distribution for random replacement / RTD corruption.
  std::vector<double> unigram(config_.vocab_size, 0.0);
  for (const auto& doc : corpus_docs) {
    for (int32_t id : doc) {
      if (id >= text::kNumSpecialTokens &&
          static_cast<size_t>(id) < config_.vocab_size) {
        unigram[static_cast<size_t>(id)] += 1.0;
      }
    }
  }
  bool any = false;
  for (double w : unigram) any = any || w > 0.0;
  STM_CHECK(any) << "corpus has no regular tokens";
  AliasSampler unigram_sampler(unigram);

  // Very frequent tokens (function words) are masked less often so the
  // model spends its capacity on informative positions.
  std::vector<bool> frequent(config_.vocab_size, false);
  {
    std::vector<std::pair<double, size_t>> ranked;
    for (size_t i = 0; i < unigram.size(); ++i) {
      if (unigram[i] > 0.0) ranked.emplace_back(unigram[i], i);
    }
    std::sort(ranked.rbegin(), ranked.rend());
    if (pretrain.frequency_aware_masking) {
      for (size_t i = 0; i < ranked.size() && i < 40; ++i) {
        frequent[ranked[i].second] = true;
      }
    }
  }

  nn::OptimizerConfig opt_config;
  opt_config.lr = pretrain.lr;
  opt_config.grad_clip = 5.0f;
  nn::AdamOptimizer optimizer(&store_, opt_config);
  const int warmup =
      std::max(1, static_cast<int>(pretrain.steps * pretrain.warmup_frac));

  const size_t seq = config_.max_seq;
  double running_mlm = 0.0;
  for (int step = 0; step < pretrain.steps; ++step) {
    // Linear warmup.
    const float lr_scale =
        step < warmup ? static_cast<float>(step + 1) / warmup : 1.0f;
    optimizer.set_lr(pretrain.lr * lr_scale);

    // Assemble a batch of windows.
    const size_t batch = pretrain.batch;
    std::vector<int32_t> ids(batch * seq, text::kPadId);
    std::vector<int> lengths(batch, 1);
    std::vector<int32_t> originals(batch * seq, text::kPadId);
    for (size_t b = 0; b < batch; ++b) {
      const auto& doc = corpus_docs[rng.UniformInt(corpus_docs.size())];
      if (doc.empty()) continue;
      const size_t start =
          doc.size() > seq ? rng.UniformInt(doc.size() - seq + 1) : 0;
      const size_t len = std::min(seq, doc.size() - start);
      for (size_t t = 0; t < len; ++t) {
        ids[b * seq + t] = doc[start + t];
        originals[b * seq + t] = doc[start + t];
      }
      lengths[b] = std::max<int>(1, static_cast<int>(len));
    }

    // ---- MLM corruption ----
    std::vector<int32_t> masked_rows;
    std::vector<int> mlm_targets;
    for (size_t b = 0; b < batch; ++b) {
      for (size_t t = 0; t < static_cast<size_t>(lengths[b]); ++t) {
        const size_t pos = b * seq + t;
        if (originals[pos] < text::kNumSpecialTokens) continue;
        const double rate =
            frequent[static_cast<size_t>(originals[pos])]
                ? 0.3 * pretrain.mask_prob
                : pretrain.mask_prob;
        if (!rng.Bernoulli(rate)) continue;
        masked_rows.push_back(static_cast<int32_t>(pos));
        mlm_targets.push_back(originals[pos]);
        const double roll = rng.Uniform();
        if (roll < 0.8) {
          ids[pos] = text::kMaskId;
        } else if (roll < 0.9) {
          ids[pos] =
              static_cast<int32_t>(unigram_sampler.Sample(rng));
        }  // else keep
      }
    }
    if (masked_rows.empty()) continue;

    nn::Tensor hidden = Forward(ids, batch, seq, lengths);
    nn::Tensor masked_hidden = nn::Rows(hidden, masked_rows);
    nn::Tensor logits = MlmLogits(masked_hidden);
    nn::Tensor mlm_loss = nn::CrossEntropy(logits, mlm_targets);
    nn::Tensor loss = mlm_loss;

    // ---- RTD objective on an independently corrupted copy ----
    if (pretrain.train_rtd) {
      std::vector<int32_t> rtd_ids = originals;
      std::vector<int32_t> all_rows;
      std::vector<float> rtd_targets;
      for (size_t b = 0; b < batch; ++b) {
        for (size_t t = 0; t < static_cast<size_t>(lengths[b]); ++t) {
          const size_t pos = b * seq + t;
          if (originals[pos] < text::kNumSpecialTokens) continue;
          float replaced = 0.0f;
          if (rng.Bernoulli(pretrain.rtd_corrupt_prob)) {
            const int32_t sampled =
                static_cast<int32_t>(unigram_sampler.Sample(rng));
            if (sampled != originals[pos]) {
              rtd_ids[pos] = sampled;
              replaced = 1.0f;
            }
          }
          all_rows.push_back(static_cast<int32_t>(pos));
          rtd_targets.push_back(replaced);
        }
      }
      if (!all_rows.empty()) {
        nn::Tensor rtd_hidden = Forward(rtd_ids, batch, seq, lengths);
        nn::Tensor rtd_logits =
            nn::Reshape(rtd_head_->Forward(nn::Rows(rtd_hidden, all_rows)),
                        {all_rows.size()});
        loss = nn::Add(loss,
                       nn::Scale(nn::BceWithLogits(rtd_logits, rtd_targets),
                                 2.0f));
      }
    }

    nn::Backward(loss);
    optimizer.Step();
    running_mlm = running_mlm == 0.0
                      ? mlm_loss.item()
                      : 0.95 * running_mlm + 0.05 * mlm_loss.item();
    if (pretrain.log_every > 0 && (step + 1) % pretrain.log_every == 0) {
      std::fprintf(stderr, "[minilm] step %d/%d loss %.3f\n", step + 1,
                   pretrain.steps, running_mlm);
    }
  }
  // Parameters changed: the next quantized-inference call re-freezes.
  InvalidateFrozen();
  return running_mlm;
}

nn::Tensor MiniLm::EncodeTensor(const std::vector<int32_t>& ids) {
  const std::vector<int32_t> trunc = Truncate(ids);
  const std::vector<int> lengths = {static_cast<int>(trunc.size())};
  return Forward(trunc, 1, trunc.size(), lengths);
}

nn::Tensor MiniLm::PoolTensor(const std::vector<int32_t>& ids) {
  const std::vector<int32_t> trunc = Truncate(ids);
  nn::Tensor hidden = EncodeTensor(ids);
  return nn::MaskedMeanPool(hidden, 1, trunc.size(),
                            {static_cast<int>(trunc.size())});
}

la::Matrix MiniLm::EncodeOneFp32(const std::vector<int32_t>& trunc) {
  if (Fp32FusedEnabled()) {
    la::Matrix out(trunc.size(), config_.dim);
    Fp32Frozen()->ForwardBucket(trunc.data(), 1, trunc.size(),
                                {static_cast<int>(trunc.size())},
                                out.data());
    return out;
  }
  nn::Tensor hidden =
      Forward(trunc, 1, trunc.size(), {static_cast<int>(trunc.size())});
  la::Matrix out(hidden.dim(0), hidden.dim(1));
  std::copy(hidden.value().begin(), hidden.value().end(), out.data());
  return out;
}

std::vector<float> MiniLm::PoolOneFp32(const std::vector<int32_t>& trunc) {
  if (Fp32FusedEnabled()) {
    // Same ascending row sum + single multiply as MaskedMeanPool's
    // forward (see PoolRowsFromHidden): bit-identical pooled vector.
    const la::Matrix hidden = EncodeOneFp32(trunc);
    std::vector<float> pooled(config_.dim);
    PoolRowsFromHidden(hidden, pooled.data());
    return pooled;
  }
  nn::Tensor hidden =
      Forward(trunc, 1, trunc.size(), {static_cast<int>(trunc.size())});
  return nn::MaskedMeanPool(hidden, 1, trunc.size(),
                            {static_cast<int>(trunc.size())})
      .value();
}

size_t MiniLm::EncodeGraphFloats(size_t count, size_t seq) const {
  // Rough upper bound on the autograd graph of one bucket forward: the
  // per-layer activations (~10 d-wide plus 2 ffn-wide tensors per row)
  // and the attention score/weight tensors. Only a workspace-budget hint;
  // over-estimating just raises the cap toward its hard ceiling.
  const size_t rows = count * seq;
  const size_t att = count * config_.heads * seq * seq;
  return config_.layers *
             (rows * (10 * config_.dim + 2 * config_.ffn_dim) + 4 * att) +
         8 * rows * config_.dim;
}

std::vector<la::Matrix> MiniLm::EncodeMissesFp32(
    const std::vector<std::vector<int32_t>>& trunc_docs) {
  std::vector<la::Matrix> out(trunc_docs.size());
  const BatchOptions options = GetBatchOptions();
  if (options.mode == BatchMode::kPerDoc) {
    ParallelFor(0, trunc_docs.size(), 1, [&](size_t b, size_t e) {
      for (size_t i = b; i < e; ++i) out[i] = EncodeOneFp32(trunc_docs[i]);
    });
    return out;
  }
  std::vector<size_t> lengths(trunc_docs.size());
  for (size_t i = 0; i < trunc_docs.size(); ++i) {
    lengths[i] = trunc_docs[i].size();
  }
  const BatchPlan plan = PlanBuckets(lengths, options);
  const bool fused = Fp32FusedEnabled();
  const FrozenFp32* frozen = fused ? Fp32Frozen() : nullptr;
  const size_t d = config_.dim;
  for (const EncodeBucket& bucket : plan.buckets) {
    const size_t count = bucket.docs.size();
    const size_t seq = bucket.seq;
    std::vector<int32_t> flat(count * seq, text::kPadId);
    std::vector<int> lens(count);
    for (size_t i = 0; i < count; ++i) {
      const auto& doc = trunc_docs[bucket.docs[i]];
      std::copy(doc.begin(), doc.end(), flat.begin() + i * seq);
      lens[i] = static_cast<int>(doc.size());
    }
    if (fused) {
      std::vector<float> hidden = la::AcquireVec(count * seq * d);
      frozen->ForwardBucket(flat.data(), count, seq, lens, hidden.data());
      for (size_t i = 0; i < count; ++i) {
        const size_t len = trunc_docs[bucket.docs[i]].size();
        la::Matrix m(len, d);
        const float* src = hidden.data() + i * seq * d;
        std::copy(src, src + len * d, m.data());
        out[bucket.docs[i]] = std::move(m);
      }
      la::ReleaseVec(std::move(hidden));
      continue;
    }
    la::Workspace::ReserveThreadFloats(EncodeGraphFloats(count, seq));
    nn::Tensor hidden = Forward(flat, count, seq, lens);
    for (size_t i = 0; i < count; ++i) {
      const size_t len = trunc_docs[bucket.docs[i]].size();
      la::Matrix m(len, d);
      const float* src = hidden.value().data() + i * seq * d;
      std::copy(src, src + len * d, m.data());
      out[bucket.docs[i]] = std::move(m);
    }
  }
  return out;
}

la::Matrix MiniLm::PoolMissesFp32(
    const std::vector<std::vector<int32_t>>& trunc_docs) {
  la::Matrix out(trunc_docs.size(), config_.dim);
  const BatchOptions options = GetBatchOptions();
  if (options.mode == BatchMode::kPerDoc) {
    ParallelFor(0, trunc_docs.size(), 1, [&](size_t b, size_t e) {
      for (size_t i = b; i < e; ++i) {
        const std::vector<float> pooled = PoolOneFp32(trunc_docs[i]);
        std::copy(pooled.begin(), pooled.end(), out.Row(i));
      }
    });
    return out;
  }
  std::vector<size_t> lengths(trunc_docs.size());
  for (size_t i = 0; i < trunc_docs.size(); ++i) {
    lengths[i] = trunc_docs[i].size();
  }
  const BatchPlan plan = PlanBuckets(lengths, options);
  const bool fused = Fp32FusedEnabled();
  const FrozenFp32* frozen = fused ? Fp32Frozen() : nullptr;
  const size_t d = config_.dim;
  for (const EncodeBucket& bucket : plan.buckets) {
    const size_t count = bucket.docs.size();
    const size_t seq = bucket.seq;
    std::vector<int32_t> flat(count * seq, text::kPadId);
    std::vector<int> lens(count);
    for (size_t i = 0; i < count; ++i) {
      const auto& doc = trunc_docs[bucket.docs[i]];
      std::copy(doc.begin(), doc.end(), flat.begin() + i * seq);
      lens[i] = static_cast<int>(doc.size());
    }
    if (fused) {
      std::vector<float> hidden = la::AcquireVec(count * seq * d);
      frozen->ForwardBucket(flat.data(), count, seq, lens, hidden.data());
      for (size_t i = 0; i < count; ++i) {
        // Same ascending sum + single multiply as MaskedMeanPool's
        // forward: bit-identical.
        const size_t len = static_cast<size_t>(lens[i]);
        float* row = out.Row(bucket.docs[i]);
        std::fill(row, row + d, 0.0f);
        for (size_t t = 0; t < len; ++t) {
          const float* hr = hidden.data() + (i * seq + t) * d;
          for (size_t j = 0; j < d; ++j) row[j] += hr[j];
        }
        const float inv = 1.0f / static_cast<float>(len);
        for (size_t j = 0; j < d; ++j) row[j] *= inv;
      }
      la::ReleaseVec(std::move(hidden));
      continue;
    }
    la::Workspace::ReserveThreadFloats(EncodeGraphFloats(count, seq));
    nn::Tensor hidden = Forward(flat, count, seq, lens);
    nn::Tensor pooled = nn::MaskedMeanPool(hidden, count, seq, lens);
    for (size_t i = 0; i < count; ++i) {
      const float* src = pooled.value().data() + i * d;
      std::copy(src, src + d, out.Row(bucket.docs[i]));
    }
  }
  return out;
}

la::Matrix MiniLm::Encode(const std::vector<int32_t>& ids) {
  const std::vector<int32_t> trunc = Truncate(ids);
  const bool quant = QuantInferenceEnabled();
  std::shared_ptr<EncodeCache> cache = encode_cache();
  EncodeCache::Key key;
  if (cache != nullptr) {
    key = EncodeCache::MakeKey(WeightsFingerprint(), quant,
                               EncodeCache::Kind::kHidden, trunc.data(),
                               trunc.size());
    la::Matrix out;
    if (cache->Lookup(key, &out)) return out;
  }
  la::Matrix out = quant ? Frozen()->Encode(trunc) : EncodeOneFp32(trunc);
  if (cache != nullptr) cache->Insert(key, out);
  return out;
}

std::vector<float> MiniLm::Pool(const std::vector<int32_t>& ids) {
  const std::vector<int32_t> trunc = Truncate(ids);
  const bool quant = QuantInferenceEnabled();
  std::shared_ptr<EncodeCache> cache = encode_cache();
  EncodeCache::Key key;
  if (cache != nullptr) {
    const uint64_t fp = WeightsFingerprint();
    key = EncodeCache::MakeKey(fp, quant, EncodeCache::Kind::kPooled,
                               trunc.data(), trunc.size());
    la::Matrix row;
    if (cache->Lookup(key, &row)) {
      return std::vector<float>(row.data(), row.data() + row.size());
    }
    // A cached hidden matrix pools to the same bits (see
    // PoolRowsFromHidden) — cheaper than a fresh forward pass.
    const EncodeCache::Key hidden_key =
        EncodeCache::MakeKey(fp, quant, EncodeCache::Kind::kHidden,
                             trunc.data(), trunc.size());
    if (cache->Lookup(hidden_key, &row)) {
      std::vector<float> pooled(config_.dim);
      PoolRowsFromHidden(row, pooled.data());
      la::Matrix entry(1, config_.dim);
      std::copy(pooled.begin(), pooled.end(), entry.data());
      cache->Insert(key, entry);
      return pooled;
    }
  }
  std::vector<float> pooled =
      quant ? Frozen()->Pool(trunc) : PoolOneFp32(trunc);
  if (cache != nullptr) {
    la::Matrix entry(1, config_.dim);
    std::copy(pooled.begin(), pooled.end(), entry.data());
    cache->Insert(key, entry);
  }
  return pooled;
}

std::vector<la::Matrix> MiniLm::EncodeBatch(
    const std::vector<std::vector<int32_t>>& docs) {
  const size_t n = docs.size();
  const bool quant = QuantInferenceEnabled();
  std::shared_ptr<EncodeCache> cache = encode_cache();
  std::vector<std::vector<int32_t>> trunc(n);
  for (size_t i = 0; i < n; ++i) trunc[i] = Truncate(docs[i]);

  std::vector<la::Matrix> out(n);
  std::vector<size_t> miss;
  std::vector<EncodeCache::Key> keys;
  // Within-batch duplicates (same truncated ids) encode once; resolved
  // after the compute pass. Only tracked when a cache supplies the keys.
  std::vector<std::pair<size_t, size_t>> dups;
  if (cache != nullptr) {
    keys.resize(n);
    const uint64_t fp = WeightsFingerprint();
    std::unordered_map<EncodeCache::Key, size_t, EncodeCache::KeyHash>
        scheduled;
    for (size_t i = 0; i < n; ++i) {
      keys[i] = EncodeCache::MakeKey(fp, quant, EncodeCache::Kind::kHidden,
                                     trunc[i].data(), trunc[i].size());
      if (cache->Lookup(keys[i], &out[i])) continue;
      const auto [it, fresh] = scheduled.emplace(keys[i], i);
      if (fresh) {
        miss.push_back(i);
      } else {
        dups.emplace_back(i, it->second);
      }
    }
  } else {
    miss.resize(n);
    std::iota(miss.begin(), miss.end(), size_t{0});
  }

  if (!miss.empty()) {
    std::vector<std::vector<int32_t>> miss_docs;
    miss_docs.reserve(miss.size());
    for (size_t i : miss) miss_docs.push_back(trunc[i]);
    std::vector<la::Matrix> fresh =
        quant ? Frozen()->EncodeBatch(miss_docs) : EncodeMissesFp32(miss_docs);
    for (size_t j = 0; j < miss.size(); ++j) {
      out[miss[j]] = std::move(fresh[j]);
    }
    if (cache != nullptr) {
      for (size_t i : miss) cache->Insert(keys[i], out[i]);
    }
  }
  for (const auto& [dst, src] : dups) out[dst] = out[src];
  return out;
}

la::Matrix MiniLm::PoolBatch(const std::vector<std::vector<int32_t>>& docs) {
  const size_t n = docs.size();
  const bool quant = QuantInferenceEnabled();
  std::shared_ptr<EncodeCache> cache = encode_cache();
  std::vector<std::vector<int32_t>> trunc(n);
  for (size_t i = 0; i < n; ++i) trunc[i] = Truncate(docs[i]);

  la::Matrix out(n, config_.dim);
  std::vector<size_t> miss;
  std::vector<EncodeCache::Key> keys;
  std::vector<std::pair<size_t, size_t>> dups;
  if (cache != nullptr) {
    keys.resize(n);
    const uint64_t fp = WeightsFingerprint();
    std::unordered_map<EncodeCache::Key, size_t, EncodeCache::KeyHash>
        scheduled;
    for (size_t i = 0; i < n; ++i) {
      keys[i] = EncodeCache::MakeKey(fp, quant, EncodeCache::Kind::kPooled,
                                     trunc[i].data(), trunc[i].size());
      la::Matrix row;
      if (cache->Lookup(keys[i], &row)) {
        std::copy(row.data(), row.data() + config_.dim, out.Row(i));
        continue;
      }
      const EncodeCache::Key hidden_key =
          EncodeCache::MakeKey(fp, quant, EncodeCache::Kind::kHidden,
                               trunc[i].data(), trunc[i].size());
      if (cache->Lookup(hidden_key, &row)) {
        PoolRowsFromHidden(row, out.Row(i));
        la::Matrix entry(1, config_.dim);
        std::copy(out.Row(i), out.Row(i) + config_.dim, entry.data());
        cache->Insert(keys[i], entry);
        continue;
      }
      const auto [it, fresh] = scheduled.emplace(keys[i], i);
      if (fresh) {
        miss.push_back(i);
      } else {
        dups.emplace_back(i, it->second);
      }
    }
  } else {
    miss.resize(n);
    std::iota(miss.begin(), miss.end(), size_t{0});
  }

  if (!miss.empty()) {
    std::vector<std::vector<int32_t>> miss_docs;
    miss_docs.reserve(miss.size());
    for (size_t i : miss) miss_docs.push_back(trunc[i]);
    const la::Matrix fresh =
        quant ? Frozen()->PoolBatch(miss_docs) : PoolMissesFp32(miss_docs);
    for (size_t j = 0; j < miss.size(); ++j) {
      std::copy(fresh.Row(j), fresh.Row(j) + config_.dim,
                out.Row(miss[j]));
    }
    if (cache != nullptr) {
      for (size_t j = 0; j < miss.size(); ++j) {
        la::Matrix entry(1, config_.dim);
        std::copy(fresh.Row(j), fresh.Row(j) + config_.dim, entry.data());
        cache->Insert(keys[miss[j]], entry);
      }
    }
  }
  for (const auto& [dst, src] : dups) {
    std::copy(out.Row(src), out.Row(src) + config_.dim, out.Row(dst));
  }
  return out;
}

bool MiniLm::TryCachedPool(const std::vector<int32_t>& ids,
                           std::vector<float>* out) {
  std::shared_ptr<EncodeCache> cache = encode_cache();
  if (cache == nullptr) return false;
  const std::vector<int32_t> trunc = Truncate(ids);
  const bool quant = QuantInferenceEnabled();
  const uint64_t fp = WeightsFingerprint();
  la::Matrix row;
  const EncodeCache::Key pooled_key = EncodeCache::MakeKey(
      fp, quant, EncodeCache::Kind::kPooled, trunc.data(), trunc.size());
  if (cache->Probe(pooled_key, &row)) {
    out->assign(row.data(), row.data() + row.size());
    return true;
  }
  const EncodeCache::Key hidden_key = EncodeCache::MakeKey(
      fp, quant, EncodeCache::Kind::kHidden, trunc.data(), trunc.size());
  if (cache->Probe(hidden_key, &row)) {
    out->assign(config_.dim, 0.0f);
    PoolRowsFromHidden(row, out->data());
    la::Matrix entry(1, config_.dim);
    std::copy(out->begin(), out->end(), entry.data());
    cache->Insert(pooled_key, entry);
    return true;
  }
  return false;
}

bool MiniLm::TryCachedEncode(const std::vector<int32_t>& ids,
                             la::Matrix* out) {
  std::shared_ptr<EncodeCache> cache = encode_cache();
  if (cache == nullptr) return false;
  const std::vector<int32_t> trunc = Truncate(ids);
  const EncodeCache::Key key = EncodeCache::MakeKey(
      WeightsFingerprint(), QuantInferenceEnabled(),
      EncodeCache::Kind::kHidden, trunc.data(), trunc.size());
  return cache->Probe(key, out);
}

std::shared_ptr<EncodeCache> MiniLm::encode_cache() const {
  std::lock_guard<std::mutex> lock(freeze_mu_);
  return encode_cache_;
}

void MiniLm::SetEncodeCache(std::shared_ptr<EncodeCache> cache) {
  std::lock_guard<std::mutex> lock(freeze_mu_);
  encode_cache_ = std::move(cache);
}

uint64_t MiniLm::WeightsFingerprint() const {
  std::lock_guard<std::mutex> lock(freeze_mu_);
  DropStaleFrozenLocked();
  if (!weights_fp_valid_) {
    const std::vector<float> snapshot = store_.Snapshot();
    weights_fp_ = Fnv1aBytes(snapshot.data(),
                             snapshot.size() * sizeof(float),
                             HashCombine(config_.Fingerprint(),
                                         uint64_t{0x5747u}));  // "WG"
    // Salted with the kernel FP-contraction regime, NOT the ISA tier
    // name: all FMA-built tiers produce bit-identical fp32 output (see
    // la/gemm_kernels.h), so persisted embeddings are shared across
    // avx2/avx512/vnni machines but never mixed with generic-build bits.
    weights_fp_ = HashCombine(weights_fp_, Fnv1a(la::GemmKernelFpRegime()));
    weights_fp_valid_ = true;
  }
  return weights_fp_;
}

// ---- quantized inference ----

std::unique_ptr<QuantizedMiniLm> MiniLm::Freeze() const {
  auto frozen = std::unique_ptr<QuantizedMiniLm>(new QuantizedMiniLm());
  frozen->config_ = config_;
  frozen->token_table_ = token_embed_->table().value();
  frozen->pos_table_ = pos_embed_->table().value();
  frozen->final_gamma_ = final_ln_->gamma().value();
  frozen->final_beta_ = final_ln_->beta().value();
  // Linear weights are stored row-major [in, out]: row stride `out`,
  // column stride 1, contraction extent `in`.
  const auto pack = [](const nn::Linear& lin, size_t in, size_t out) {
    QuantizedMiniLm::QuantLinear q;
    q.weight = la::PackInt8B(lin.weight().value().data(), out, 1, in, out);
    q.bias = lin.bias().value();
    return q;
  };
  const size_t d = config_.dim;
  frozen->layers_.resize(config_.layers);
  for (size_t l = 0; l < config_.layers; ++l) {
    const Layer& src = layers_[l];
    auto& dst = frozen->layers_[l];
    dst.qkv = pack(*src.qkv, d, 3 * d);
    dst.out = pack(*src.out, d, d);
    dst.ffn1 = pack(*src.ffn1, d, config_.ffn_dim);
    dst.ffn2 = pack(*src.ffn2, config_.ffn_dim, d);
    dst.ln1_gamma = src.ln1->gamma().value();
    dst.ln1_beta = src.ln1->beta().value();
    dst.ln2_gamma = src.ln2->gamma().value();
    dst.ln2_beta = src.ln2->beta().value();
  }
  return frozen;
}

const QuantizedMiniLm* MiniLm::Frozen() const {
  // Pool/Encode are called concurrently from pool workers (e.g. MICoL's
  // parallel label encoding), so the lazy freeze is mutex-guarded; after
  // the first call everyone reads the same immutable snapshot.
  std::lock_guard<std::mutex> lock(freeze_mu_);
  DropStaleFrozenLocked();
  if (!frozen_) frozen_ = Freeze();
  return frozen_.get();
}

const MiniLm::FrozenFp32* MiniLm::Fp32Frozen() const {
  std::lock_guard<std::mutex> lock(freeze_mu_);
  DropStaleFrozenLocked();
  if (!frozen_fp32_) {
    auto f = std::make_shared<FrozenFp32>();
    f->config = config_;
    f->token_table = token_embed_->table().value();
    f->pos_table = pos_embed_->table().value();
    f->final_gamma = final_ln_->gamma().value();
    f->final_beta = final_ln_->beta().value();
    // Linear weights are stored row-major [in, out]: row stride `out`,
    // column stride 1, contraction extent `in`. Packed ONCE here; every
    // later forward pass runs only A-side work against the panels.
    const auto pack = [](const nn::Linear& lin, size_t in, size_t out) {
      FrozenFp32::PackedLinear p;
      p.weight = la::PackFp32B(lin.weight().value().data(), out, 1, in, out);
      p.bias = lin.bias().value();
      return p;
    };
    const size_t d = config_.dim;
    f->layers.resize(config_.layers);
    for (size_t l = 0; l < config_.layers; ++l) {
      const Layer& src = layers_[l];
      FrozenFp32::FrozenLayer& dst = f->layers[l];
      dst.qkv = pack(*src.qkv, d, 3 * d);
      dst.out = pack(*src.out, d, d);
      dst.ffn1 = pack(*src.ffn1, d, config_.ffn_dim);
      dst.ffn2 = pack(*src.ffn2, config_.ffn_dim, d);
      dst.ln1_gamma = src.ln1->gamma().value();
      dst.ln1_beta = src.ln1->beta().value();
      dst.ln2_gamma = src.ln2->gamma().value();
      dst.ln2_beta = src.ln2->beta().value();
    }
    frozen_fp32_ = std::move(f);
  }
  return frozen_fp32_.get();
}

void MiniLm::InvalidateFrozen() {
  std::lock_guard<std::mutex> lock(freeze_mu_);
  frozen_.reset();
  frozen_fp32_.reset();
  // The weights fingerprint keys the embedding cache; dropping it here —
  // the same boundary that drops the frozen snapshots — makes every
  // cached embedding of the old parameters unaddressable.
  weights_fp_valid_ = false;
  frozen_generation_ = store_.generation();
}

void MiniLm::DropStaleFrozenLocked() const {
  // Fine-tuning that runs its own optimizer over store() (e.g. MICoL's
  // contrastive training) mutates the weights without ever calling
  // InvalidateFrozen(); the store's mutation generation catches that.
  if (frozen_generation_ == store_.generation()) return;
  frozen_.reset();
  frozen_fp32_.reset();
  weights_fp_valid_ = false;
  frozen_generation_ = store_.generation();
}

std::vector<int32_t> MiniLm::PredictTopK(const std::vector<int32_t>& ids,
                                         size_t position, size_t k,
                                         bool mask_position) {
  std::vector<int32_t> input = Truncate(ids);
  STM_CHECK_LT(position, input.size());
  if (mask_position) input[position] = text::kMaskId;
  nn::Tensor hidden = EncodeTensor(input);
  nn::Tensor logits =
      MlmLogits(nn::Rows(hidden, {static_cast<int32_t>(position)}));
  std::vector<std::pair<float, int32_t>> scored;
  scored.reserve(config_.vocab_size);
  for (size_t i = text::kNumSpecialTokens; i < config_.vocab_size; ++i) {
    scored.emplace_back(logits.value()[i], static_cast<int32_t>(i));
  }
  const size_t keep = std::min(k, scored.size());
  std::partial_sort(scored.begin(),
                    scored.begin() + static_cast<std::ptrdiff_t>(keep),
                    scored.end(), [](const auto& a, const auto& b) {
                      return a.first > b.first;
                    });
  std::vector<int32_t> top;
  top.reserve(keep);
  for (size_t i = 0; i < keep; ++i) top.push_back(scored[i].second);
  return top;
}

std::vector<std::vector<int32_t>> MiniLm::PredictTopKAt(
    const std::vector<int32_t>& ids, const std::vector<size_t>& positions,
    size_t k) {
  const std::vector<int32_t> input = Truncate(ids);
  nn::Tensor hidden = EncodeTensor(input);
  std::vector<int32_t> rows;
  rows.reserve(positions.size());
  for (size_t pos : positions) {
    STM_CHECK_LT(pos, input.size());
    rows.push_back(static_cast<int32_t>(pos));
  }
  nn::Tensor logits = MlmLogits(nn::Rows(hidden, rows));
  std::vector<std::vector<int32_t>> result(positions.size());
  std::vector<std::pair<float, int32_t>> scored;
  for (size_t r = 0; r < positions.size(); ++r) {
    scored.clear();
    const float* row = logits.value().data() + r * config_.vocab_size;
    for (size_t i = text::kNumSpecialTokens; i < config_.vocab_size; ++i) {
      scored.emplace_back(row[i], static_cast<int32_t>(i));
    }
    const size_t keep = std::min(k, scored.size());
    std::partial_sort(scored.begin(),
                      scored.begin() + static_cast<std::ptrdiff_t>(keep),
                      scored.end(), [](const auto& a, const auto& b) {
                        return a.first > b.first;
                      });
    for (size_t i = 0; i < keep; ++i) {
      result[r].push_back(scored[i].second);
    }
  }
  return result;
}

std::vector<float> MiniLm::CandidateLogProbs(
    const std::vector<int32_t>& ids, size_t position,
    const std::vector<int32_t>& candidates) {
  std::vector<int32_t> input = Truncate(ids);
  STM_CHECK_LT(position, input.size());
  input[position] = text::kMaskId;
  nn::Tensor hidden = EncodeTensor(input);
  nn::Tensor logits =
      MlmLogits(nn::Rows(hidden, {static_cast<int32_t>(position)}));
  // Log-softmax over the full vocabulary, then gather candidates.
  float max = logits.value()[0];
  for (float v : logits.value()) max = std::max(max, v);
  double sum = 0.0;
  for (float v : logits.value()) sum += std::exp(v - max);
  const float lse = max + static_cast<float>(std::log(sum));
  std::vector<float> out;
  out.reserve(candidates.size());
  for (int32_t c : candidates) {
    STM_CHECK_GE(c, 0);
    STM_CHECK_LT(static_cast<size_t>(c), config_.vocab_size);
    out.push_back(logits.value()[static_cast<size_t>(c)] - lse);
  }
  return out;
}

std::vector<float> MiniLm::ReplacedProbs(const std::vector<int32_t>& ids) {
  const std::vector<int32_t> trunc = Truncate(ids);
  nn::Tensor hidden = EncodeTensor(trunc);
  nn::Tensor logits = rtd_head_->Forward(hidden);
  std::vector<float> probs(trunc.size());
  for (size_t t = 0; t < trunc.size(); ++t) {
    probs[t] = 1.0f / (1.0f + std::exp(-logits.value()[t]));
  }
  return probs;
}

Status MiniLm::Save(Env* env, const std::string& path) const {
  BinaryWriter writer;
  writer.WriteU64(config_.vocab_size);
  writer.WriteU64(config_.dim);
  writer.WriteU64(config_.layers);
  writer.WriteU64(config_.heads);
  writer.WriteU64(config_.ffn_dim);
  writer.WriteU64(config_.max_seq);
  writer.WriteU64(config_.seed);
  writer.WriteFloats(store_.Snapshot());
  return writer.FlushToEnv(env, path, kModelMagic);
}

StatusOr<std::unique_ptr<MiniLm>> MiniLm::Load(Env* env,
                                               const std::string& path) {
  STM_ASSIGN_OR_RETURN(BinaryReader reader,
                       BinaryReader::OpenArtifact(env, path, kModelMagic));
  MiniLmConfig config;
  uint64_t vocab_size = 0, dim = 0, layers = 0, heads = 0;
  uint64_t ffn_dim = 0, max_seq = 0;
  STM_RETURN_IF_ERROR(reader.Read(&vocab_size));
  STM_RETURN_IF_ERROR(reader.Read(&dim));
  STM_RETURN_IF_ERROR(reader.Read(&layers));
  STM_RETURN_IF_ERROR(reader.Read(&heads));
  STM_RETURN_IF_ERROR(reader.Read(&ffn_dim));
  STM_RETURN_IF_ERROR(reader.Read(&max_seq));
  STM_RETURN_IF_ERROR(reader.Read(&config.seed));
  std::vector<float> snapshot;
  STM_RETURN_IF_ERROR(reader.Read(&snapshot));
  STM_RETURN_IF_ERROR(reader.Finish());
  // The CRC only proves the file is what some writer produced; a crafted
  // file can still carry a hostile config. Validate everything the MiniLm
  // constructor would otherwise STM_CHECK (abort) on, and bound each shape
  // by the parameter count actually present so a tiny file cannot request
  // a multi-GB allocation.
  const auto corrupt = [&path](const char* what) {
    return CorruptDataError(StrFormat("%s: %s", path.c_str(), what));
  };
  if (vocab_size == 0 || dim == 0 || heads == 0 || max_seq == 0 ||
      dim % heads != 0) {
    return corrupt("implausible model config");
  }
  // Every real model satisfies these (the token/position embeddings, the
  // qkv projection and the FFN weights all fit in the snapshot), and
  // together they bound construction-time allocation by O(file size). All
  // comparisons divide instead of multiplying so hostile values cannot
  // wrap.
  const uint64_t params = snapshot.size();
  if (vocab_size > params / dim || max_seq > params / dim ||
      dim > params / dim || ffn_dim > params / dim) {
    return corrupt("model config larger than stored parameters");
  }
  const uint64_t per_layer = 3 * dim * dim + dim * ffn_dim;
  if (layers > 0 && layers > params / per_layer) {
    return corrupt("model config larger than stored parameters");
  }
  config.vocab_size = vocab_size;
  config.dim = dim;
  config.layers = layers;
  config.heads = heads;
  config.ffn_dim = ffn_dim;
  config.max_seq = max_seq;
  auto model = std::make_unique<MiniLm>(config);
  if (snapshot.size() != model->store_.TotalSize()) {
    return corrupt("parameter count does not match model config");
  }
  model->store_.Restore(snapshot);
  return model;
}

bool MiniLm::Save(const std::string& path) const {
  return Save(Env::Default(), path).ok();
}

std::unique_ptr<MiniLm> MiniLm::Load(const std::string& path) {
  StatusOr<std::unique_ptr<MiniLm>> model = Load(Env::Default(), path);
  return model.ok() ? std::move(model).value() : nullptr;
}

StatusOr<std::unique_ptr<MiniLm>> MiniLm::LoadOrPretrain(
    Env* env, const std::string& cache_dir, uint64_t extra_key,
    const MiniLmConfig& config, const PretrainConfig& pretrain,
    const std::vector<std::vector<int32_t>>& corpus_docs) {
  uint64_t key = HashCombine(config.Fingerprint(), extra_key);
  key = HashCombine(key, static_cast<uint64_t>(pretrain.steps));
  key = HashCombine(key, pretrain.seed);
  const std::string path =
      cache_dir + "/minilm_" + HashToHex(key) + ".bin";
  StatusOr<std::unique_ptr<MiniLm>> cached = Load(env, path);
  if (cached.ok()) return cached;
  if (env->FileExists(path)) {
    // The cache exists but would not load (torn write, bit rot, stale
    // format): quarantine it so the bad bytes stay inspectable, then fall
    // through to re-pretraining.
    const std::string quarantine = path + ".corrupt";
    std::fprintf(stderr, "[stm] quarantining bad MiniLm cache %s -> %s (%s)\n",
                 path.c_str(), quarantine.c_str(),
                 cached.status().ToString().c_str());
    if (!env->Rename(path, quarantine).ok()) (void)env->Delete(path);
  }
  auto model = std::make_unique<MiniLm>(config);
  model->Pretrain(corpus_docs, pretrain);
  const Status saved = model->Save(env, path);
  if (!saved.ok()) {
    // Failure to cache is not fatal, but say why the next run will retrain.
    std::fprintf(stderr, "[stm] could not cache MiniLm: %s\n",
                 saved.ToString().c_str());
  }
  return model;
}

std::unique_ptr<MiniLm> MiniLm::LoadOrPretrain(
    const std::string& cache_dir, uint64_t extra_key,
    const MiniLmConfig& config, const PretrainConfig& pretrain,
    const std::vector<std::vector<int32_t>>& corpus_docs) {
  return LoadOrPretrain(Env::Default(), cache_dir, extra_key, config,
                        pretrain, corpus_docs)
      .value();
}

StatusOr<la::Matrix> PoolCorpus(MiniLm& model,
                                const text::CorpusReader& corpus,
                                bool skip_empty) {
  la::Matrix reps(corpus.num_docs(), model.config().dim);  // zero-filled
  std::vector<size_t> doc_index;
  std::vector<std::vector<int32_t>> to_pool;
  for (size_t s = 0; s < corpus.num_shards(); ++s) {
    doc_index.clear();
    to_pool.clear();
    STM_RETURN_IF_ERROR(
        corpus.VisitShard(s, [&](size_t doc, const text::DocView& view) {
          if (skip_empty && view.num_tokens == 0) return;
          doc_index.push_back(doc);
          to_pool.emplace_back(view.tokens, view.tokens + view.num_tokens);
        }));
    if (to_pool.empty()) continue;
    const la::Matrix pooled = model.PoolBatch(to_pool);
    for (size_t i = 0; i < doc_index.size(); ++i) {
      reps.SetRow(doc_index[i], pooled.RowVec(i));
    }
  }
  return reps;
}

}  // namespace stm::plm
