#include "core/micol.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/thread_pool.h"
#include "index/ann.h"
#include "nn/loss.h"
#include "nn/ops.h"
#include "nn/optimizer.h"
#include "plm/encode_cache.h"
#include "text/vocabulary.h"

namespace stm::core {

Micol::Micol(const text::Corpus& corpus, plm::MiniLm* model,
             const MicolConfig& config)
    : corpus_(corpus), model_(model), config_(config) {
  STM_CHECK(model != nullptr);
}

std::vector<float> Micol::Represent(const std::vector<int32_t>& tokens) {
  std::vector<float> pooled = model_->Pool(tokens);
  if (!projection_trained_) return pooled;
  const size_t d = model_->config().dim;
  std::vector<float> projected(d, 0.0f);
  // projected = W^T pooled (W stored [d, d] row-major as in MatMul).
  for (size_t i = 0; i < d; ++i) {
    const float x = pooled[i];
    if (x == 0.0f) continue;
    const float* wrow = proj_weight_.value().data() + i * d;
    for (size_t j = 0; j < d; ++j) projected[j] += x * wrow[j];
  }
  return projected;
}

double Micol::FineTuneBiEncoder(
    const std::vector<std::pair<size_t, size_t>>& pairs) {
  STM_CHECK(!pairs.empty());
  Rng rng(config_.seed);
  const size_t d = model_->config().dim;

  if (config_.projection_head && !proj_weight_.defined()) {
    // Identity-initialized linear projection over the frozen encoder.
    nn::Tensor w = nn::Tensor::ZeroParam({d, d});
    for (size_t i = 0; i < d; ++i) w.value()[i * d + i] = 1.0f;
    proj_weight_ = proj_store_.Register("proj", w);
  }
  nn::OptimizerConfig opt_config;
  opt_config.lr = config_.lr;
  opt_config.grad_clip = 1.0f;
  nn::AdamOptimizer optimizer(
      config_.projection_head ? &proj_store_ : &model_->store(), opt_config);

  // Projection mode: pre-compute frozen pooled vectors once (parallel
  // across documents; pure inference).
  std::vector<std::vector<float>> pooled_cache;
  if (config_.projection_head) {
    pooled_cache.resize(corpus_.num_docs());
    ParallelFor(0, corpus_.num_docs(), 1, [&](size_t b, size_t e) {
      for (size_t i = b; i < e; ++i) {
        pooled_cache[i] = model_->Pool(corpus_.docs()[i].tokens);
      }
    });
  }

  double last = 0.0;
  for (int step = 0; step < config_.bi_encoder_steps; ++step) {
    const size_t batch = std::min(config_.batch_pairs, pairs.size());
    nn::Tensor u;
    nn::Tensor v;
    if (config_.projection_head) {
      std::vector<float> left;
      std::vector<float> right;
      for (size_t b = 0; b < batch; ++b) {
        const auto& [i, j] = pairs[rng.UniformInt(pairs.size())];
        left.insert(left.end(), pooled_cache[i].begin(),
                    pooled_cache[i].end());
        right.insert(right.end(), pooled_cache[j].begin(),
                     pooled_cache[j].end());
      }
      u = nn::MatMul(nn::Tensor::FromVector(std::move(left), {batch, d}),
                     proj_weight_);
      v = nn::MatMul(nn::Tensor::FromVector(std::move(right), {batch, d}),
                     proj_weight_);
    } else {
      std::vector<nn::Tensor> left;
      std::vector<nn::Tensor> right;
      for (size_t b = 0; b < batch; ++b) {
        const auto& [i, j] = pairs[rng.UniformInt(pairs.size())];
        left.push_back(model_->PoolTensor(corpus_.docs()[i].tokens));
        right.push_back(model_->PoolTensor(corpus_.docs()[j].tokens));
      }
      u = nn::ConcatRows(left);
      v = nn::ConcatRows(right);
    }
    u = nn::NormalizeRowsOp(u);
    v = nn::NormalizeRowsOp(v);
    // Cosine similarity matrix via batched matmul-with-transpose.
    nn::Tensor sim = nn::Reshape(
        nn::BMatMulT(nn::Reshape(u, {1, batch, d}),
                     nn::Reshape(v, {1, batch, d})),
        {batch, batch});
    nn::Tensor loss = nn::InfoNce(sim, config_.temperature);
    nn::Backward(loss);
    optimizer.Step();
    last = loss.item();
  }
  if (config_.projection_head) projection_trained_ = true;
  return last;
}

std::unique_ptr<plm::PairScorer> Micol::TrainCrossEncoder(
    const std::vector<std::pair<size_t, size_t>>& pairs) {
  STM_CHECK(!pairs.empty());
  Rng rng(config_.seed + 1);
  // Pure inference over the (frozen-at-this-point) encoder; anchors recur
  // across pairs, so the cache collapses repeated pools. Scoped to this
  // function only: FineTuneBiEncoder without a projection head mutates the
  // encoder weights, so a run-wide cache would serve stale vectors.
  plm::ScopedEncodeCache encode_cache(model_);
  // Draw all negatives first (one draw per pair, in pair order, so the
  // rng sequence matches the old interleaved loop), then pool each
  // involved document once, in parallel.
  std::vector<size_t> negatives;
  negatives.reserve(pairs.size());
  for (size_t p = 0; p < pairs.size(); ++p) {
    negatives.push_back(rng.UniformInt(corpus_.num_docs()));
  }
  std::vector<std::vector<float>> pooled(corpus_.num_docs());
  std::vector<bool> needed(corpus_.num_docs(), false);
  for (size_t p = 0; p < pairs.size(); ++p) {
    needed[pairs[p].first] = true;
    needed[pairs[p].second] = true;
    needed[negatives[p]] = true;
  }
  ParallelFor(0, corpus_.num_docs(), 1, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) {
      if (needed[i]) pooled[i] = model_->Pool(corpus_.docs()[i].tokens);
    }
  });
  std::vector<std::vector<float>> u;
  std::vector<std::vector<float>> v;
  std::vector<float> labels;
  for (size_t p = 0; p < pairs.size(); ++p) {
    const auto& [i, j] = pairs[p];
    u.push_back(pooled[i]);
    v.push_back(pooled[j]);
    labels.push_back(1.0f);
    // Random negative partner for the same anchor.
    u.push_back(pooled[i]);
    v.push_back(pooled[negatives[p]]);
    labels.push_back(0.0f);
  }
  plm::PairScorer::Config config;
  config.encoder_dim = model_->config().dim;
  config.epochs = config_.cross_epochs;
  config.seed = config_.seed + 2;
  auto scorer = std::make_unique<plm::PairScorer>(config);
  scorer->Train(u, v, labels);
  return scorer;
}

namespace {

// Sorts label indices for one document by descending score (ties keep the
// original reverse-pair order: equal scores rank the larger label first).
std::vector<int> RankOne(std::vector<std::pair<float, int>>& scored) {
  std::sort(scored.rbegin(), scored.rend());
  std::vector<int> ranked;
  ranked.reserve(scored.size());
  for (const auto& [_, label] : scored) ranked.push_back(label);
  return ranked;
}

}  // namespace

std::vector<std::vector<int>> Micol::RankByBiEncoder(
    const std::vector<std::vector<int32_t>>& label_texts) {
  plm::ScopedEncodeCache encode_cache(model_);
  std::vector<std::vector<float>> doc_reps(corpus_.num_docs());
  ParallelFor(0, corpus_.num_docs(), 1, [&](size_t b, size_t e) {
    for (size_t d = b; d < e; ++d) {
      doc_reps[d] = Represent(corpus_.docs()[d].tokens);
    }
  });
  std::vector<std::vector<float>> label_reps(label_texts.size());
  ParallelFor(0, label_texts.size(), 1, [&](size_t b, size_t e) {
    for (size_t l = b; l < e; ++l) label_reps[l] = Represent(label_texts[l]);
  });
  // Full ranking = top-k with k = num labels, batched through the
  // retrieval tier instead of per-pair cosines. Ties now rank the
  // *smaller* label first (the retrieval contract), where the old
  // reverse-pair sort ranked the larger one.
  const size_t dim = model_->config().dim;
  la::Matrix doc_mat(doc_reps.size(), dim);
  for (size_t d = 0; d < doc_reps.size(); ++d) {
    doc_mat.SetRow(d, doc_reps[d]);
  }
  la::Matrix label_mat(label_reps.size(), dim);
  for (size_t l = 0; l < label_reps.size(); ++l) {
    label_mat.SetRow(l, label_reps[l]);
  }
  const std::vector<std::vector<ann::Neighbor>> top =
      ann::TopKSimilar(doc_mat, label_mat, label_mat.rows());
  std::vector<std::vector<int>> ranked(doc_reps.size());
  for (size_t d = 0; d < doc_reps.size(); ++d) {
    ranked[d].reserve(top[d].size());
    for (const ann::Neighbor& n : top[d]) {
      ranked[d].push_back(static_cast<int>(n.id));
    }
  }
  return ranked;
}

std::vector<std::vector<int>> Micol::RankByCrossEncoder(
    plm::PairScorer* scorer,
    const std::vector<std::vector<int32_t>>& label_texts) {
  STM_CHECK(scorer != nullptr);
  plm::ScopedEncodeCache encode_cache(model_);
  std::vector<std::vector<int32_t>> doc_tokens;
  doc_tokens.reserve(corpus_.num_docs());
  for (const auto& doc : corpus_.docs()) doc_tokens.push_back(doc.tokens);
  const la::Matrix doc_reps = model_->PoolBatch(doc_tokens);
  const la::Matrix label_reps = model_->PoolBatch(label_texts);

  // Score every (document, label) pair in one parallel batch, then rank
  // per document with the same tie order as the pairwise path.
  const size_t num_labels = label_reps.rows();
  std::vector<std::vector<float>> u;
  std::vector<std::vector<float>> v;
  u.reserve(doc_reps.rows() * num_labels);
  v.reserve(doc_reps.rows() * num_labels);
  for (size_t d = 0; d < doc_reps.rows(); ++d) {
    for (size_t l = 0; l < num_labels; ++l) {
      u.push_back(doc_reps.RowVec(d));
      v.push_back(label_reps.RowVec(l));
    }
  }
  const std::vector<float> scores = scorer->ScoreBatch(u, v);
  std::vector<std::vector<int>> ranked(doc_reps.rows());
  for (size_t d = 0; d < doc_reps.rows(); ++d) {
    std::vector<std::pair<float, int>> scored;
    scored.reserve(num_labels);
    for (size_t l = 0; l < num_labels; ++l) {
      scored.emplace_back(scores[d * num_labels + l], static_cast<int>(l));
    }
    ranked[d] = RankOne(scored);
  }
  return ranked;
}

std::vector<int32_t> AugmentEda(const std::vector<int32_t>& tokens,
                                Rng& rng) {
  std::vector<int32_t> out;
  out.reserve(tokens.size());
  for (int32_t id : tokens) {
    if (rng.Bernoulli(0.15)) continue;  // word dropout
    out.push_back(id);
  }
  // Local swaps.
  for (size_t s = 0; s + 1 < out.size(); ++s) {
    if (rng.Bernoulli(0.1)) std::swap(out[s], out[s + 1]);
  }
  if (out.empty() && !tokens.empty()) out.push_back(tokens[0]);
  return out;
}

std::vector<int32_t> AugmentUda(const std::vector<int32_t>& tokens,
                                const std::vector<double>& unigram,
                                Rng& rng) {
  AliasSampler sampler(unigram);
  std::vector<int32_t> out = tokens;
  for (int32_t& id : out) {
    if (rng.Bernoulli(0.2)) {
      id = static_cast<int32_t>(sampler.Sample(rng));
    }
  }
  return out;
}

}  // namespace stm::core
