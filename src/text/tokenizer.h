#ifndef STM_TEXT_TOKENIZER_H_
#define STM_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

#include "text/vocabulary.h"

namespace stm::text {

// Rule-based word tokenizer: lower-cases, strips punctuation (keeping
// intra-word hyphens/apostrophes), splits on whitespace. The synthetic
// corpora are generated directly as token streams; this tokenizer exists so
// examples and users can feed raw text through the same pipeline.
class Tokenizer {
 public:
  // Tokenizes `raw` into word strings.
  static std::vector<std::string> Words(std::string_view raw);

  // Tokenizes and maps to ids, optionally inserting unseen words into
  // `vocab` (when `grow_vocab` is true) or mapping them to [UNK].
  static std::vector<int32_t> Encode(std::string_view raw, Vocabulary& vocab,
                                     bool grow_vocab);

  // Id mapping against a frozen vocabulary.
  static std::vector<int32_t> Encode(std::string_view raw,
                                     const Vocabulary& vocab);
};

// The default English stopword list used by TF-IDF weighting and the
// category-vocabulary filters (LOTClass, ConWea).
const std::vector<std::string>& Stopwords();

// True if `word` is in the stopword list.
bool IsStopword(std::string_view word);

}  // namespace stm::text

#endif  // STM_TEXT_TOKENIZER_H_
