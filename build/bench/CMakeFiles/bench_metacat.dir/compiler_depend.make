# Empty compiler generated dependencies file for bench_metacat.
# This may be replaced when dependencies are built.
