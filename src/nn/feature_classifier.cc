#include "nn/feature_classifier.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "nn/loss.h"
#include "nn/ops.h"

namespace stm::nn {

FeatureMlpClassifier::FeatureMlpClassifier(const Config& config)
    : config_(config), rng_(config.seed) {
  STM_CHECK_GT(config.input_dim, 0u);
  STM_CHECK_GT(config.num_classes, 0u);
  size_t in = config.input_dim;
  if (config.hidden > 0) {
    hidden_ = std::make_unique<Linear>(&store_, "hidden", in, config.hidden,
                                       rng_);
    in = config.hidden;
  }
  out_ = std::make_unique<Linear>(&store_, "out", in, config.num_classes,
                                  rng_);
  OptimizerConfig opt;
  opt.lr = config.lr;
  opt.grad_clip = 5.0f;
  optimizer_ = std::make_unique<AdamOptimizer>(&store_, opt);
}

Tensor FeatureMlpClassifier::Logits(const la::Matrix& features,
                                    const std::vector<size_t>& rows,
                                    bool training) {
  std::vector<float> batch(rows.size() * config_.input_dim);
  for (size_t i = 0; i < rows.size(); ++i) {
    const float* src = features.Row(rows[i]);
    std::copy(src, src + config_.input_dim,
              batch.data() + i * config_.input_dim);
  }
  Tensor x = Tensor::FromVector(std::move(batch),
                                {rows.size(), config_.input_dim});
  if (hidden_ != nullptr) {
    x = Relu(hidden_->Forward(x));
    x = Dropout(x, config_.dropout, rng_, training);
  }
  return out_->Forward(x);
}

double FeatureMlpClassifier::TrainEpoch(const la::Matrix& features,
                                        const la::Matrix& targets) {
  STM_CHECK_EQ(features.rows(), targets.rows());
  STM_CHECK_EQ(features.cols(), config_.input_dim);
  STM_CHECK_EQ(targets.cols(), config_.num_classes);
  const std::vector<size_t> order = rng_.Permutation(features.rows());
  double total = 0.0;
  size_t batches = 0;
  for (size_t begin = 0; begin < order.size();
       begin += config_.batch_size) {
    const size_t count = std::min(config_.batch_size, order.size() - begin);
    std::vector<size_t> rows(order.begin() +
                                 static_cast<std::ptrdiff_t>(begin),
                             order.begin() +
                                 static_cast<std::ptrdiff_t>(begin + count));
    Tensor logits = Logits(features, rows, /*training=*/true);
    std::vector<float> target_rows(count * config_.num_classes);
    for (size_t i = 0; i < count; ++i) {
      const float* src = targets.Row(rows[i]);
      std::copy(src, src + config_.num_classes,
                target_rows.data() + i * config_.num_classes);
    }
    Tensor loss;
    if (config_.multi_label) {
      loss = BceWithLogits(
          Reshape(logits, {count * config_.num_classes}), target_rows);
    } else {
      loss = SoftCrossEntropy(logits, target_rows);
    }
    Backward(loss);
    optimizer_->Step();
    total += loss.item();
    ++batches;
  }
  return batches > 0 ? total / static_cast<double>(batches) : 0.0;
}

la::Matrix FeatureMlpClassifier::PredictProbs(const la::Matrix& features) {
  la::Matrix probs(features.rows(), config_.num_classes);
  const size_t batch_size = 64;
  for (size_t begin = 0; begin < features.rows(); begin += batch_size) {
    const size_t count = std::min(batch_size, features.rows() - begin);
    std::vector<size_t> rows(count);
    for (size_t i = 0; i < count; ++i) rows[i] = begin + i;
    Tensor logits = Logits(features, rows, /*training=*/false);
    if (config_.multi_label) {
      for (size_t i = 0; i < count; ++i) {
        for (size_t c = 0; c < config_.num_classes; ++c) {
          probs.At(begin + i, c) =
              1.0f /
              (1.0f +
               std::exp(-logits.value()[i * config_.num_classes + c]));
        }
      }
    } else {
      Tensor soft = SoftmaxLastDim(logits);
      for (size_t i = 0; i < count; ++i) {
        for (size_t c = 0; c < config_.num_classes; ++c) {
          probs.At(begin + i, c) =
              soft.value()[i * config_.num_classes + c];
        }
      }
    }
  }
  return probs;
}

std::vector<int> FeatureMlpClassifier::Predict(const la::Matrix& features) {
  const la::Matrix probs = PredictProbs(features);
  std::vector<int> labels(features.rows());
  for (size_t i = 0; i < probs.rows(); ++i) {
    const float* row = probs.Row(i);
    labels[i] =
        static_cast<int>(std::max_element(row, row + probs.cols()) - row);
  }
  return labels;
}

}  // namespace stm::nn
