#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "common/hash.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "common/string_util.h"

namespace stm {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next64() == b.Next64());
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_LT(rng.UniformInt(13), 13u);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, NormalMomentsRoughlyStandard) {
  Rng rng(5);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, DiscreteFollowsWeights) {
  Rng rng(9);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 40000;
  for (int i = 0; i < n; ++i) counts[rng.Discrete(weights)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.25);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(3);
  auto perm = rng.Permutation(50);
  std::set<size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(3);
  auto sample = rng.SampleWithoutReplacement(100, 30);
  std::set<size_t> seen(sample.begin(), sample.end());
  EXPECT_EQ(seen.size(), 30u);
  for (size_t s : seen) EXPECT_LT(s, 100u);
}

TEST(AliasSamplerTest, MatchesDistribution) {
  Rng rng(17);
  std::vector<double> weights = {5.0, 1.0, 0.0, 4.0};
  AliasSampler sampler(weights);
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[sampler.Sample(rng)]++;
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.5, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.4, 0.02);
}

TEST(StringUtilTest, SplitBasics) {
  EXPECT_EQ(Split("a,b,,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(Split("", ',').empty());
  EXPECT_EQ(SplitWhitespace("  hello   world\t\n"),
            (std::vector<std::string>{"hello", "world"}));
}

TEST(StringUtilTest, JoinRoundTrip) {
  std::vector<std::string> pieces = {"x", "y", "z"};
  EXPECT_EQ(Join(pieces, "-"), "x-y-z");
  EXPECT_EQ(Join({}, "-"), "");
}

TEST(StringUtilTest, CaseAndTrim) {
  EXPECT_EQ(ToLower("HeLLo"), "hello");
  EXPECT_EQ(Trim("  pad  "), "pad");
  EXPECT_TRUE(StartsWith("prefix_rest", "prefix"));
  EXPECT_TRUE(EndsWith("file.bin", ".bin"));
  EXPECT_FALSE(StartsWith("ab", "abc"));
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
}

TEST(HashTest, StableAndDistinct) {
  EXPECT_EQ(Fnv1a("abc"), Fnv1a("abc"));
  EXPECT_NE(Fnv1a("abc"), Fnv1a("abd"));
  EXPECT_EQ(HashToHex(0).size(), 16u);
  EXPECT_EQ(HashToHex(0xDEADBEEFULL), "00000000deadbeef");
}

TEST(SerializeTest, RoundTrip) {
  BinaryWriter writer;
  writer.WriteU32(42);
  writer.WriteU64(1ULL << 40);
  writer.WriteF32(3.25f);
  writer.WriteString("hello");
  writer.WriteFloats({1.0f, -2.0f, 0.5f});

  const std::string path = testing::TempDir() + "/stm_serialize_test.bin";
  ASSERT_TRUE(writer.Flush(path));

  BinaryReader reader(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.ReadU32(), 42u);
  EXPECT_EQ(reader.ReadU64(), 1ULL << 40);
  EXPECT_FLOAT_EQ(reader.ReadF32(), 3.25f);
  EXPECT_EQ(reader.ReadString(), "hello");
  EXPECT_EQ(reader.ReadFloats(), (std::vector<float>{1.0f, -2.0f, 0.5f}));
  EXPECT_TRUE(reader.exhausted());
}

TEST(SerializeTest, MissingFileNotOk) {
  BinaryReader reader("/nonexistent/definitely_missing.bin");
  EXPECT_FALSE(reader.ok());
}

TEST(SerializeTest, TruncatedReadFailsGracefully) {
  BinaryWriter writer;
  writer.WriteU32(1);
  const std::string path = testing::TempDir() + "/stm_trunc_test.bin";
  ASSERT_TRUE(writer.Flush(path));
  BinaryReader reader(path);
  reader.ReadU64();  // larger than what was written
  EXPECT_FALSE(reader.ok());
}

}  // namespace
}  // namespace stm
