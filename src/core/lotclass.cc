#include "core/lotclass.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/check.h"
#include "nn/text_classifier.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace stm::core {

LotClass::LotClass(const text::Corpus& corpus, plm::MiniLm* model,
                   const LotClassConfig& config)
    : corpus_(corpus), model_(model), config_(config) {
  STM_CHECK(model != nullptr);
}

void LotClass::BuildCategoryVocab(
    const std::vector<std::vector<int32_t>>& label_names) {
  const size_t num_classes = label_names.size();
  const size_t max_seq = model_->config().max_seq;
  category_vocab_.assign(num_classes, {});

  // Corpus-frequent tokens (function words) are never category words.
  std::set<int32_t> too_frequent;
  {
    const std::vector<int64_t> token_counts = corpus_.TokenCounts();
    std::vector<std::pair<int64_t, int32_t>> ranked;
    for (size_t i = text::kNumSpecialTokens; i < token_counts.size(); ++i) {
      ranked.emplace_back(token_counts[i], static_cast<int32_t>(i));
    }
    std::sort(ranked.rbegin(), ranked.rend());
    for (size_t i = 0; i < ranked.size() && i < 40; ++i) {
      too_frequent.insert(ranked[i].second);
    }
  }

  std::vector<std::map<int32_t, int>> counts(num_classes);
  for (size_t c = 0; c < num_classes; ++c) {
    for (int32_t name_token : label_names[c]) {
      const auto occurrences =
          corpus_.Occurrences(name_token, config_.name_occurrences);
      for (const auto& [doc, pos] : occurrences) {
        const auto& tokens = corpus_.docs()[doc].tokens;
        const size_t half = max_seq / 2;
        const size_t begin = pos > half ? pos - half : 0;
        const size_t end = std::min(tokens.size(), begin + max_seq);
        std::vector<int32_t> window(
            tokens.begin() + static_cast<std::ptrdiff_t>(begin),
            tokens.begin() + static_cast<std::ptrdiff_t>(end));
        const auto top = model_->PredictTopK(window, pos - begin,
                                             config_.replacements_topk);
        for (int32_t id : top) {
          if (too_frequent.count(id)) continue;
          if (text::IsStopword(corpus_.vocab().TokenOf(id))) continue;
          counts[c][id]++;
        }
      }
    }
  }

  // Rank candidate replacements by count weighted by class exclusivity:
  // count_c(w)^2 / sum_c' count_c'(w). Frequent words predicted for every
  // class (function words, shared domain words) rank low; words the LM
  // proposes mostly for this class rank high.
  std::map<int32_t, int> total_counts;
  for (size_t c = 0; c < num_classes; ++c) {
    for (const auto& [id, count] : counts[c]) total_counts[id] += count;
  }
  // Every candidate word is assigned to at most one class: the class with
  // the dominant exclusivity score, and only if it dominates clearly
  // (>= 2x the runner-up). Label names in noisy contexts make most strong
  // topical words weakly claimed by several classes, so outright deletion
  // of contested words (the large-vocabulary behaviour) collapses here.
  std::map<int32_t, std::vector<std::pair<double, size_t>>> claims;
  for (size_t c = 0; c < num_classes; ++c) {
    for (const auto& [id, count] : counts[c]) {
      const double score = static_cast<double>(count) * count /
                           static_cast<double>(total_counts[id]);
      claims[id].emplace_back(score, c);
    }
  }
  std::vector<std::vector<std::pair<double, int32_t>>> winners(num_classes);
  for (auto& [id, scores] : claims) {
    std::sort(scores.rbegin(), scores.rend());
    const double best = scores[0].first;
    const double second = scores.size() > 1 ? scores[1].first : 0.0;
    if (second == 0.0 || best >= 2.0 * second) {
      winners[scores[0].second].emplace_back(best, id);
    }
  }
  for (size_t c = 0; c < num_classes; ++c) {
    std::sort(winners[c].rbegin(), winners[c].rend());
    for (size_t i = 0; i < winners[c].size() &&
                       category_vocab_[c].size() <
                           config_.category_vocab_size;
         ++i) {
      category_vocab_[c].push_back(winners[c][i].second);
    }
    // The label name itself always belongs to its category vocabulary.
    for (int32_t name_token : label_names[c]) {
      if (std::find(category_vocab_[c].begin(), category_vocab_[c].end(),
                    name_token) == category_vocab_[c].end()) {
        category_vocab_[c].push_back(name_token);
      }
    }
  }
}

std::vector<int> LotClass::Run(
    const std::vector<std::vector<int32_t>>& label_names) {
  const size_t num_classes = label_names.size();
  STM_CHECK_EQ(num_classes, corpus_.num_labels());
  BuildCategoryVocab(label_names);

  // Fast membership lookup: token -> class (or -1).
  std::map<int32_t, int> vocab_class;
  for (size_t c = 0; c < num_classes; ++c) {
    for (int32_t id : category_vocab_[c]) {
      vocab_class[id] = static_cast<int>(c);
    }
  }

  // ---- masked category prediction ----
  const size_t max_seq = model_->config().max_seq;
  const size_t num_docs = config_.mcp_docs == 0
                              ? corpus_.num_docs()
                              : std::min(config_.mcp_docs,
                                         corpus_.num_docs());
  std::vector<std::vector<int32_t>> train_docs;
  std::vector<int> train_labels;
  for (size_t d = 0; d < num_docs; ++d) {
    const auto& tokens = corpus_.docs()[d].tokens;
    std::vector<int> indicative(num_classes, 0);
    // Only tokens already in some category vocabulary are candidates for
    // context verification (context-free match alone is NOT trusted).
    const size_t limit = std::min(tokens.size(), max_seq);
    std::vector<size_t> positions;
    std::vector<int> claims;
    for (size_t t = 0; t < limit; ++t) {
      auto it = vocab_class.find(tokens[t]);
      if (it == vocab_class.end()) continue;
      positions.push_back(t);
      claims.push_back(it->second);
    }
    if (positions.empty()) continue;
    const std::vector<int32_t> window(
        tokens.begin(), tokens.begin() + static_cast<std::ptrdiff_t>(limit));
    const auto tops = model_->PredictTopKAt(window, positions,
                                            config_.mcp_topk);
    for (size_t i = 0; i < positions.size(); ++i) {
      const int claimed = claims[i];
      size_t overlap = 0;
      for (int32_t id : tops[i]) {
        auto jt = vocab_class.find(id);
        if (jt != vocab_class.end() && jt->second == claimed) ++overlap;
      }
      if (overlap >= config_.mcp_min_overlap) {
        indicative[static_cast<size_t>(claimed)]++;
      }
    }
    const auto best =
        std::max_element(indicative.begin(), indicative.end());
    if (*best > 0) {
      train_docs.push_back(tokens);
      train_labels.push_back(
          static_cast<int>(best - indicative.begin()));
    }
  }

  std::vector<std::vector<int32_t>> all_docs;
  for (const auto& doc : corpus_.docs()) all_docs.push_back(doc.tokens);

  nn::ClassifierConfig clf_config;
  clf_config.vocab_size = corpus_.vocab().size();
  clf_config.num_classes = num_classes;
  clf_config.seed = config_.seed;
  auto classifier = nn::MakeClassifier(config_.classifier, clf_config);
  if (!train_docs.empty()) {
    classifier->Fit(train_docs, train_labels, config_.classifier_epochs);
  }
  if (config_.enable_self_training) {
    return SelfTrain(*classifier, all_docs, config_.self_train);
  }
  return classifier->Predict(all_docs);
}

}  // namespace stm::core
