#ifndef STM_PLM_MINILM_H_
#define STM_PLM_MINILM_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/status.h"
#include "la/matrix.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "nn/tensor.h"
#include "text/corpus.h"

namespace stm::plm {

class EncodeCache;
class QuantizedMiniLm;

// ---- STM_FP32_FUSED switch ----
//
// When enabled (the default), MiniLm's non-differentiable fp32 inference
// entry points (Encode/Pool/EncodeBatch/PoolBatch without STM_QUANT) run
// a frozen fused forward: weights pre-packed once into the GEMM kernel
// panel layout (la::PackedBF32) and attention tiled per query strip —
// no autograd Node construction, no per-call B pack. Output is
// bit-identical to the autograd graph forward; the switch exists as an
// escape hatch and so tests can compare both paths in one process.
// Reads STM_FP32_FUSED ("0"/"false" disables) unless overridden.
bool Fp32FusedEnabled();

// 1 = force on, 0 = force off, -1 = follow STM_FP32_FUSED (the default).
void SetFp32FusedInference(int mode);

// MiniLm is the library's stand-in for BERT/RoBERTa/ELECTRA: a from-scratch
// transformer encoder pre-trained with masked-language-modeling (MLM) and
// an ELECTRA-style replaced-token-detection (RTD) head on a "general"
// corpus. Every tutorial method that consumes a pre-trained LM talks to
// this class through the same interfaces a real PLM would offer:
//
//  * contextualized token representations      (ConWea, X-Class, MICoL)
//  * top-k masked-token prediction             (LOTClass, PromptClass)
//  * replaced-token-detection scores           (PromptClass, ELECTRA-style)
//  * pooled document vectors                   (X-Class, TaxoClass, MICoL)
//
// The architecture is pre-LN: x + MHSA(LN(x)), x + FFN(LN(x)), final LN.
// The MLM head ties its projection with the token embedding table.

struct MiniLmConfig {
  size_t vocab_size = 0;
  size_t dim = 48;        // model width; must be divisible by heads
  size_t layers = 2;
  size_t heads = 4;
  size_t ffn_dim = 96;
  size_t max_seq = 48;    // maximum sequence length (incl. specials)
  uint64_t seed = 1;

  // Stable fingerprint for the on-disk cache.
  uint64_t Fingerprint() const;
};

struct PretrainConfig {
  int steps = 500;
  size_t batch = 8;
  float lr = 1e-3f;
  float warmup_frac = 0.1f;     // linear warmup then constant
  float mask_prob = 0.15f;      // MLM masking rate
  float rtd_corrupt_prob = 0.15f;
  bool train_rtd = true;        // learn the discriminator head too
  // Mask the 40 most frequent tokens at 0.3x rate so model capacity goes
  // to informative positions (ablation: set false for uniform masking).
  bool frequency_aware_masking = true;
  int log_every = 0;            // 0 = silent
  uint64_t seed = 13;
};

class MiniLm {
 public:
  explicit MiniLm(const MiniLmConfig& config);

  MiniLm(const MiniLm&) = delete;
  MiniLm& operator=(const MiniLm&) = delete;

  const MiniLmConfig& config() const { return config_; }

  // ---- pre-training ----

  // Runs MLM (+RTD) pre-training on `corpus_docs` (token id sequences over
  // the model vocabulary). Returns the final running MLM loss.
  double Pretrain(const std::vector<std::vector<int32_t>>& corpus_docs,
                  const PretrainConfig& pretrain);

  // ---- differentiable encoding (for fine-tuning) ----

  // Final hidden states [len, dim] for one sequence (truncated to
  // max_seq). The graph reaches the model parameters, so losses built on
  // top fine-tune the encoder.
  nn::Tensor EncodeTensor(const std::vector<int32_t>& ids);

  // Mean-pooled document vector [1, dim] (differentiable).
  nn::Tensor PoolTensor(const std::vector<int32_t>& ids);

  // ---- inference conveniences (no gradient bookkeeping kept) ----
  //
  // When quantized inference is enabled (STM_QUANT env var or
  // plm::SetQuantInference, see plm/quantized_minilm.h), Encode/Pool/
  // EncodeBatch/PoolBatch route through a lazily built frozen int8 model
  // instead of the fp32 autograd graph. The MLM/RTD heads (PredictTopK,
  // CandidateLogProbs, ReplacedProbs) and the differentiable
  // EncodeTensor/PoolTensor always stay fp32.

  // Contextual token vectors, row t = representation of ids[t].
  la::Matrix Encode(const std::vector<int32_t>& ids);

  // Average of token vectors — "average-pooled BERT representation".
  std::vector<float> Pool(const std::vector<int32_t>& ids);

  // Batch inference conveniences: encode/pool many documents. Documents
  // are grouped into length buckets with bounded padding waste (see
  // plm/batch_scheduler.h; STM_ENCODE_BATCH selects perdoc/padded/
  // bucketed) and each bucket runs one forward pass, parallel inside the
  // kernels on the global thread pool. Results are scattered back to
  // input order and are bitwise identical to the per-document calls, at
  // any thread count and under any input permutation. Safe for concurrent
  // inference only — must not be interleaved with Pretrain() or other
  // parameter updates.
  std::vector<la::Matrix> EncodeBatch(
      const std::vector<std::vector<int32_t>>& docs);

  // Row i = Pool(docs[i]); returns [docs.size(), dim].
  la::Matrix PoolBatch(const std::vector<std::vector<int32_t>>& docs);

  // ---- embedding cache ----
  //
  // When a cache is installed (automatically from STM_ENCODE_CACHE, or
  // explicitly here / via plm::ScopedEncodeCache), Encode/Pool/
  // EncodeBatch/PoolBatch consult it before encoding and insert fresh
  // results after. Entries are keyed by (WeightsFingerprint, quant mode,
  // output kind, token ids), so training simply makes old entries
  // unaddressable — see plm/encode_cache.h.
  std::shared_ptr<EncodeCache> encode_cache() const;
  void SetEncodeCache(std::shared_ptr<EncodeCache> cache);

  // Cache-probe-without-encode entry points: fill `out` from the installed
  // cache (current quant mode, same keys as Pool/Encode) and return true,
  // or return false WITHOUT running the encoder. False when no cache is
  // installed or the document was never encoded under the current weights.
  // The serve layer's cache-only degradation tier is built on these: under
  // overload it answers what the cache already knows — bit-identical to
  // the full path, since that is what populated the cache — and sheds the
  // rest. A pooled probe that finds only the hidden-states entry pools it
  // (same bits, see PoolRowsFromHidden) and memoizes the pooled row.
  bool TryCachedPool(const std::vector<int32_t>& ids, std::vector<float>* out);
  bool TryCachedEncode(const std::vector<int32_t>& ids, la::Matrix* out);

  // Stable content hash of the architecture plus every current parameter
  // value; memoized, recomputed lazily after training invalidates it at
  // the same boundary as the frozen int8 snapshot.
  uint64_t WeightsFingerprint() const;

  // Top-k vocabulary predictions at `position` after replacing it with
  // [MASK] (when `mask_position` is true) or keeping the original token.
  // Specials are excluded. Returns ids sorted by descending probability.
  std::vector<int32_t> PredictTopK(const std::vector<int32_t>& ids,
                                   size_t position, size_t k,
                                   bool mask_position = true);

  // Top-k predictions at several positions from ONE encoding pass with no
  // masking (the LOTClass setting: the model predicts which words could
  // replace the observed word in context). Much cheaper than calling
  // PredictTopK per position.
  std::vector<std::vector<int32_t>> PredictTopKAt(
      const std::vector<int32_t>& ids, const std::vector<size_t>& positions,
      size_t k);

  // Log-probabilities of `candidates` at `position` (masked). Used for
  // prompt-based zero-shot classification.
  std::vector<float> CandidateLogProbs(const std::vector<int32_t>& ids,
                                       size_t position,
                                       const std::vector<int32_t>& candidates);

  // RTD head score per token: probability that the token was replaced
  // (lower = more "original"/plausible in context).
  std::vector<float> ReplacedProbs(const std::vector<int32_t>& ids);

  // ---- quantized inference ----

  // Builds a frozen int8 inference model from the current parameters:
  // attention/FFN projection weights quantized per output column and
  // packed once into the micro-kernel layout (see plm/quantized_minilm.h).
  // Snapshot semantics — later training does not update the result.
  std::unique_ptr<QuantizedMiniLm> Freeze() const;

  // ---- persistence ----

  // Writes the model as a framed, CRC32C-protected artifact (see
  // common/serialize.h) atomically via `env`.
  Status Save(Env* env, const std::string& path) const;

  // Loads a model saved by Save. Never aborts on external input: a
  // missing file is kUnavailable; a torn, truncated, bit-flipped, or
  // otherwise implausible file is kCorruptData.
  static StatusOr<std::unique_ptr<MiniLm>> Load(Env* env,
                                                const std::string& path);

  // Legacy bool/nullptr shims over the Status API (Env::Default()).
  bool Save(const std::string& path) const;
  static std::unique_ptr<MiniLm> Load(const std::string& path);

  // Loads from `<cache_dir>/minilm_<fp>.bin` when present; otherwise
  // pre-trains on `corpus_docs` and saves. `extra_key` folds corpus
  // identity into the fingerprint. A cache that exists but fails to load
  // (bad CRC, bad decode) is quarantined as `<path>.corrupt` and the
  // model is re-pretrained — never crashed on or silently half-loaded.
  static StatusOr<std::unique_ptr<MiniLm>> LoadOrPretrain(
      Env* env, const std::string& cache_dir, uint64_t extra_key,
      const MiniLmConfig& config, const PretrainConfig& pretrain,
      const std::vector<std::vector<int32_t>>& corpus_docs);

  // Legacy shim (Env::Default()).
  static std::unique_ptr<MiniLm> LoadOrPretrain(
      const std::string& cache_dir, uint64_t extra_key,
      const MiniLmConfig& config, const PretrainConfig& pretrain,
      const std::vector<std::vector<int32_t>>& corpus_docs);

  nn::ParameterStore& store() { return store_; }

 private:
  // Frozen fp32 inference snapshot: every projection weight pre-packed
  // into the active GEMM tier's panel layout (the fused-QKV projection is
  // ONE packed [dim, 3*dim] panel set, so a forward pass runs one
  // A-sweep per layer for q, k and v together), plus plain fp32 copies of
  // the embeddings, biases and layer-norm parameters. Built lazily under
  // freeze_mu_, dropped by InvalidateFrozen() at the same boundary as the
  // int8 snapshot. Defined in minilm.cc.
  struct FrozenFp32;

  struct Layer {
    std::unique_ptr<nn::Linear> qkv;
    std::unique_ptr<nn::Linear> out;
    std::unique_ptr<nn::Linear> ffn1;
    std::unique_ptr<nn::Linear> ffn2;
    std::unique_ptr<nn::LayerNormModule> ln1;
    std::unique_ptr<nn::LayerNormModule> ln2;
  };

  // Shared forward: `count` sequences of equal padded length `seq`.
  nn::Tensor Forward(const std::vector<int32_t>& flat_ids, size_t count,
                     size_t seq, const std::vector<int>& lengths);

  // MLM logits for selected rows of hidden states (tied embeddings).
  nn::Tensor MlmLogits(const nn::Tensor& hidden_rows);

  std::vector<int32_t> Truncate(const std::vector<int32_t>& ids) const;

  // fp32 encode/pool of one already-truncated document (no cache, no
  // quant routing) — the reference semantics every batched path must
  // reproduce bit-for-bit.
  la::Matrix EncodeOneFp32(const std::vector<int32_t>& trunc);
  std::vector<float> PoolOneFp32(const std::vector<int32_t>& trunc);

  // fp32 bucketed/padded/perdoc execution over already-truncated cache
  // misses, per GetBatchOptions().
  std::vector<la::Matrix> EncodeMissesFp32(
      const std::vector<std::vector<int32_t>>& trunc_docs);
  la::Matrix PoolMissesFp32(
      const std::vector<std::vector<int32_t>>& trunc_docs);

  // Workspace-budget hint for one bucket's forward graph.
  size_t EncodeGraphFloats(size_t count, size_t seq) const;

  // Lazily built frozen model behind the STM_QUANT switch. Guarded by a
  // mutex because Pool/Encode may be called concurrently from pool
  // workers; invalidated whenever training updates the parameters.
  const QuantizedMiniLm* Frozen() const;
  // Same contract for the fp32 fused snapshot (STM_FP32_FUSED switch).
  const FrozenFp32* Fp32Frozen() const;
  void InvalidateFrozen();
  // Drops frozen snapshots/fingerprint if the parameter store mutated
  // since they were built (e.g. fine-tuning through an external
  // optimizer over store(), which never calls InvalidateFrozen()).
  // Caller must hold freeze_mu_.
  void DropStaleFrozenLocked() const;

  MiniLmConfig config_;
  Rng rng_;
  nn::ParameterStore store_;
  std::unique_ptr<nn::Embedding> token_embed_;
  std::unique_ptr<nn::Embedding> pos_embed_;
  std::vector<Layer> layers_;
  std::unique_ptr<nn::LayerNormModule> final_ln_;
  nn::Tensor mlm_bias_;                       // [vocab]
  std::unique_ptr<nn::Linear> rtd_head_;      // dim -> 1
  mutable std::mutex freeze_mu_;
  mutable std::shared_ptr<const QuantizedMiniLm> frozen_;
  mutable std::shared_ptr<const FrozenFp32> frozen_fp32_;
  // Guarded by freeze_mu_ (fingerprint and frozen snapshot go stale at
  // exactly the same parameter-update boundaries).
  mutable uint64_t weights_fp_ = 0;
  mutable bool weights_fp_valid_ = false;
  // store_.generation() at the time the snapshots/fingerprint above were
  // built; a mismatch means training mutated the weights behind our back.
  mutable uint64_t frozen_generation_ = 0;
  std::shared_ptr<EncodeCache> encode_cache_;
};

// Shard-at-a-time corpus pooling: row d = Pool(tokens of document d),
// for any CorpusReader (in-RAM or on-disk sharded). Each shard's
// documents go through one PoolBatch call, so the resident working set
// is one shard of token lists plus the output matrix; the installed
// EncodeCache (if any) carries duplicate documents across shards.
// PoolBatch is bit-identical to per-document pooling under any batching,
// so the result matches pooling the whole corpus in one call at any
// shard size. With `skip_empty`, empty documents keep their zero row
// without being encoded (X-Class's convention).
StatusOr<la::Matrix> PoolCorpus(MiniLm& model,
                                const text::CorpusReader& corpus,
                                bool skip_empty = false);

}  // namespace stm::plm

#endif  // STM_PLM_MINILM_H_
