#ifndef STM_CORE_BASELINES_H_
#define STM_CORE_BASELINES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "embedding/sgns.h"
#include "plm/minilm.h"
#include "text/corpus.h"

namespace stm::core {

// Baseline classifiers used across the tutorial's tables.

// IR with TF-IDF: each class is a keyword query; documents take the class
// with the highest cosine between the query and the document TF-IDF
// vector.
std::vector<int> IrTfIdfClassify(
    const text::Corpus& corpus,
    const std::vector<std::vector<int32_t>>& class_keywords);

// Topic Model baseline: LDA via collapsed Gibbs sampling with one topic
// per class; topics are mapped to classes through the seed keywords'
// topic assignments, and documents take their dominant topic's class.
struct LdaConfig {
  int iterations = 60;
  double alpha = 0.5;
  double beta = 0.05;
  uint64_t seed = 61;
};
std::vector<int> LdaClassify(
    const text::Corpus& corpus,
    const std::vector<std::vector<int32_t>>& class_keywords,
    const LdaConfig& config);

// Dataless / Word2Vec-style: documents and classes meet in a static
// embedding space; each document takes the nearest class representation
// (average of seed-word unit vectors).
std::vector<int> EmbeddingSimilarityClassify(
    const text::Corpus& corpus, const embedding::WordEmbeddings& embeddings,
    const std::vector<std::vector<int32_t>>& class_keywords);

// "BERT with simple match": average-pooled MiniLm document representation
// vs. pooled class-name representation, cosine argmax.
std::vector<int> PlmSimpleMatchClassify(
    const text::Corpus& corpus, plm::MiniLm& model,
    const std::vector<std::vector<int32_t>>& class_name_tokens);

// Supervised upper bound: trains classifier `kind` ("cnn"/"han"/"bow") on
// gold labels of `train_docs` and predicts the whole corpus.
std::vector<int> SupervisedBound(const text::Corpus& corpus,
                                 const std::vector<size_t>& train_docs,
                                 const std::string& kind, int epochs,
                                 uint64_t seed);

}  // namespace stm::core

#endif  // STM_CORE_BASELINES_H_
