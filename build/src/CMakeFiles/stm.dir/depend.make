# Empty dependencies file for stm.
# This may be replaced when dependencies are built.
