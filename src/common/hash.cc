#include "common/hash.h"

#include <array>

namespace stm {

namespace {

// Byte-at-a-time lookup table for the Castagnoli polynomial (reflected
// form 0x82F63B78), built once at first use.
std::array<uint32_t, 256> BuildCrc32cTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

std::string HashToHex(uint64_t hash) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kDigits[hash & 0xF];
    hash >>= 4;
  }
  return out;
}

uint32_t Crc32c(std::string_view data, uint32_t crc) {
  static const std::array<uint32_t, 256> kTable = BuildCrc32cTable();
  crc = ~crc;
  for (char c : data) {
    crc = (crc >> 8) ^ kTable[(crc ^ static_cast<uint8_t>(c)) & 0xFF];
  }
  return ~crc;
}

}  // namespace stm
