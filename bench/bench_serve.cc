// Online-serving bench: dynamic batching under open-loop load. A burst
// phase measures the server's saturated throughput, then an open-loop
// generator offers 70% of that rate with paced arrivals (submission times
// never depend on completions, so queueing delay is measured honestly)
// and reports achieved QPS, p50/p99 latency and shed count, in fp32 and
// int8. A final overload phase offers 1.5x the fp32 saturated rate with a
// 25 ms client deadline and compares a shed-only server against the
// degradation ladder (STM_SERVE_DEGRADE=auto), reporting goodput, shed
// rate and deadline-miss rate. With STM_BENCH_JSON=<path> every number is
// recorded for scripted comparison (bench/run_benches.sh commits them as
// BENCH_serve.json).
//
//   ./bench_serve            full sweep (respects STM_NUM_THREADS and the
//                            STM_SERVE_* knobs; see src/serve/serve.h)
//   ./bench_serve --smoke    fast correctness pass used by ctest; exits
//                            non-zero if served predictions are not
//                            bit-identical to the batch path in fp32 and
//                            int8, or if admission control fails to shed
//                            with kUnavailable

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/timer.h"
#include "core/serve_adapters.h"
#include "index/ann.h"
#include "la/matrix.h"
#include "plm/minilm.h"
#include "plm/quantized_minilm.h"
#include "serve/serve.h"
#include "text/vocabulary.h"

namespace stm {
namespace {

std::vector<std::vector<int32_t>> SkewedCorpus(size_t count, size_t vocab,
                                               uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<int32_t>> docs(count);
  for (auto& doc : docs) {
    size_t len;
    const double r = rng.Uniform();
    if (r < 0.70) {
      len = 4 + rng.UniformInt(9);
    } else if (r < 0.95) {
      len = 13 + rng.UniformInt(16);
    } else {
      len = 36 + rng.UniformInt(13);
    }
    doc.resize(len);
    for (int32_t& id : doc) {
      id = text::kNumSpecialTokens +
           static_cast<int32_t>(
               rng.UniformInt(vocab - text::kNumSpecialTokens));
    }
  }
  return docs;
}

std::unique_ptr<plm::MiniLm> BenchModel(size_t vocab) {
  plm::MiniLmConfig config;
  config.vocab_size = vocab;
  config.dim = 40;
  config.layers = 2;
  config.heads = 4;
  config.ffn_dim = 80;
  config.max_seq = 48;
  config.seed = 17;
  // Random init: serving throughput and bit-identity are independent of
  // training, and skipping pre-training keeps the bench self-contained.
  return std::make_unique<plm::MiniLm>(config);
}

std::vector<std::vector<int32_t>> ClassNames(size_t classes) {
  std::vector<std::vector<int32_t>> names;
  for (size_t c = 0; c < classes; ++c) {
    names.push_back({static_cast<int32_t>(text::kNumSpecialTokens + c),
                     static_cast<int32_t>(text::kNumSpecialTokens +
                                          classes + c)});
  }
  return names;
}

// Registration happens before the first Submit, so a failure here is a
// bench bug; report it and let the caller abort the run.
bool MustRegister(serve::Server& server, const std::string& name,
                  std::shared_ptr<const serve::Classifier> classifier) {
  const Status status = server.Register(name, std::move(classifier));
  if (!status.ok()) {
    std::fprintf(stderr, "FAIL: Register(%s): %s\n", name.c_str(),
                 status.ToString().c_str());
  }
  return status.ok();
}

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

struct LoadResult {
  double burst_qps = 0.0;
  double offered_qps = 0.0;
  double achieved_qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  uint64_t shed = 0;
};

// Saturated throughput: submit everything at once, wait for it all.
double BurstPhase(serve::Server& server,
                  const std::vector<std::vector<int32_t>>& docs,
                  size_t requests) {
  std::vector<std::future<StatusOr<serve::Prediction>>> futures;
  futures.reserve(requests);
  WallTimer timer;
  for (size_t i = 0; i < requests; ++i) {
    futures.push_back(server.Submit("match", docs[i % docs.size()]));
  }
  size_t completed = 0;
  for (auto& future : futures) {
    if (future.get().ok()) ++completed;
  }
  const double seconds = timer.Seconds();
  (void)server.TakeLatenciesMs();  // burst latencies don't enter the report
  return seconds > 0 ? static_cast<double>(completed) / seconds : 0.0;
}

// Open loop: arrival times are fixed up front from the offered rate, so a
// slow server accumulates queueing delay (or sheds) instead of silently
// slowing the generator down.
LoadResult OpenLoopPhase(serve::Server& server,
                         const std::vector<std::vector<int32_t>>& docs,
                         double offered_qps, double seconds) {
  using Clock = std::chrono::steady_clock;
  const size_t requests =
      static_cast<size_t>(std::max(1.0, offered_qps * seconds));
  const auto interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(1.0 / offered_qps));

  std::vector<std::future<StatusOr<serve::Prediction>>> futures;
  futures.reserve(requests);
  const Clock::time_point start = Clock::now();
  WallTimer timer;
  for (size_t i = 0; i < requests; ++i) {
    std::this_thread::sleep_until(start + interval * i);
    futures.push_back(server.Submit("match", docs[i % docs.size()]));
  }
  size_t completed = 0;
  uint64_t shed = 0;
  for (auto& future : futures) {
    const StatusOr<serve::Prediction> result = future.get();
    if (result.ok()) {
      ++completed;
    } else if (result.status().code() == StatusCode::kUnavailable) {
      ++shed;
    }
  }
  const double elapsed = timer.Seconds();

  LoadResult result;
  result.offered_qps = offered_qps;
  result.achieved_qps =
      elapsed > 0 ? static_cast<double>(completed) / elapsed : 0.0;
  const std::vector<double> latencies = server.TakeLatenciesMs();
  result.p50_ms = Percentile(latencies, 0.50);
  result.p99_ms = Percentile(latencies, 0.99);
  result.shed = shed;
  return result;
}

struct OverloadResult {
  double offered_qps = 0.0;
  double goodput_qps = 0.0;  // ok answers delivered within the deadline
  double shed_rate = 0.0;    // kUnavailable rejections / offered
  double miss_rate = 0.0;    // kDeadlineExceeded + late-ok / offered
  double p50_ms = 0.0;       // client-side latency of ok answers
  double p99_ms = 0.0;
  uint64_t degraded = 0;     // ok answers with Prediction::degraded set
};

// Overload: the offered rate exceeds what the server can sustain, so the
// question is what the excess turns into. Goodput counts an answer only
// if it arrived ok within `deadline_ms` measured CLIENT-side (Submit to
// future-ready) — the number an end user experiences, stricter than the
// server-side admission-to-delivery latency. A collector thread waits on
// futures in submission order while the generator paces arrivals;
// batching drains FIFO, so order-based ready timestamps overestimate
// latency only marginally.
OverloadResult OverloadPhase(serve::Server& server,
                             const std::vector<std::vector<int32_t>>& docs,
                             double offered_qps, double seconds,
                             double deadline_ms, bool with_deadline) {
  using Clock = std::chrono::steady_clock;
  const size_t requests =
      static_cast<size_t>(std::max(1.0, offered_qps * seconds));
  const auto interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(1.0 / offered_qps));

  std::vector<std::future<StatusOr<serve::Prediction>>> futures(requests);
  std::vector<Clock::time_point> submitted(requests);
  std::atomic<size_t> produced{0};

  size_t good = 0;
  size_t shed = 0;
  size_t missed = 0;
  uint64_t degraded = 0;
  std::vector<double> ok_latency_ms;
  std::thread collector([&] {
    for (size_t i = 0; i < requests; ++i) {
      while (produced.load(std::memory_order_acquire) <= i) {
        std::this_thread::yield();
      }
      const StatusOr<serve::Prediction> result = futures[i].get();
      const double ms = std::chrono::duration<double, std::milli>(
                            Clock::now() - submitted[i])
                            .count();
      if (result.ok()) {
        ok_latency_ms.push_back(ms);
        if (result->degraded) ++degraded;
        if (ms <= deadline_ms) {
          ++good;
        } else {
          ++missed;  // delivered, but past the client's deadline
        }
      } else if (result.status().code() == StatusCode::kUnavailable) {
        ++shed;
      } else if (result.status().code() == StatusCode::kDeadlineExceeded) {
        ++missed;
      }
    }
  });

  serve::SubmitOptions submit;
  if (with_deadline) submit.deadline_ms = deadline_ms;
  const Clock::time_point start = Clock::now();
  WallTimer timer;
  for (size_t i = 0; i < requests; ++i) {
    std::this_thread::sleep_until(start + interval * i);
    submitted[i] = Clock::now();
    futures[i] = server.Submit("match", docs[i % docs.size()], submit);
    produced.store(i + 1, std::memory_order_release);
  }
  collector.join();
  const double elapsed = timer.Seconds();
  (void)server.TakeLatenciesMs();  // the report uses client-side numbers

  OverloadResult result;
  result.offered_qps = offered_qps;
  result.goodput_qps =
      elapsed > 0 ? static_cast<double>(good) / elapsed : 0.0;
  result.shed_rate =
      static_cast<double>(shed) / static_cast<double>(requests);
  result.miss_rate =
      static_cast<double>(missed) / static_cast<double>(requests);
  result.p50_ms = Percentile(ok_latency_ms, 0.50);
  result.p99_ms = Percentile(ok_latency_ms, 0.99);
  result.degraded = degraded;
  return result;
}

int RunSweep() {
  const size_t kVocab = 1000;
  const auto docs = SkewedCorpus(512, kVocab, 99);
  const auto names = ClassNames(8);
  auto model = BenchModel(kVocab);

  bench::Table table(
      "Online serving: dynamic batching under open-loop load "
      "(plm-simple-match route)",
      {"burst_qps", "offered_qps", "achieved_qps", "p50_ms", "p99_ms",
       "shed"});

  double fp32_burst = 0.0;
  double fp32_goodput = 0.0;  // pre-overload achieved qps at 0.7x burst

  for (const bool quant : {false, true}) {
    const std::string prefix = quant ? "int8" : "fp32";
    plm::SetQuantInference(quant ? 1 : 0);

    serve::ServeOptions options = serve::ServeOptionsFromEnv();
    options.queue_depth = 4096;
    serve::Server server(model.get(), options);
    if (!MustRegister(server, "match", core::MakePlmSimpleMatchServable(
                                           model.get(), names))) {
      return 1;
    }

    bench::Progress(prefix + ": warmup");
    (void)server.Serve("match", docs[0]);  // freeze/pack once
    (void)server.TakeLatenciesMs();

    bench::Progress(prefix + ": burst phase");
    const double burst = BurstPhase(server, docs, 2000);
    bench::Progress(prefix + ": burst " + std::to_string(burst) + " qps");

    const double offered = 0.7 * burst;
    bench::Progress(prefix + ": open loop at " + std::to_string(offered) +
                    " qps");
    LoadResult load = OpenLoopPhase(server, docs, offered, 2.0);
    load.burst_qps = burst;
    if (!quant) {
      fp32_burst = burst;
      fp32_goodput = load.achieved_qps;
    }
    bench::Progress(prefix + ": p50 " + std::to_string(load.p50_ms) +
                    "ms p99 " + std::to_string(load.p99_ms) + "ms");

    auto& json = bench::BenchJsonWriter::Instance();
    json.Record("serve", prefix + "_burst_qps", load.burst_qps);
    json.Record("serve", prefix + "_offered_qps", load.offered_qps);
    json.Record("serve", prefix + "_achieved_qps", load.achieved_qps);
    json.Record("serve", prefix + "_p50_ms", load.p50_ms);
    json.Record("serve", prefix + "_p99_ms", load.p99_ms);
    json.Record("serve", prefix + "_shed", static_cast<double>(load.shed));
    table.AddRow(prefix,
                 {load.burst_qps, load.offered_qps, load.achieved_qps,
                  load.p50_ms, load.p99_ms, static_cast<double>(load.shed)});
  }

  // ---- overload comparison: shed-only vs the degradation ladder ----
  //
  // Offered load is 1.5x the fp32 saturated rate with a 25 ms client
  // deadline. "off" is the shed-only server: no request deadlines, no
  // ladder; the queue fills, every queued answer arrives tens of
  // milliseconds late, and goodput collapses to the handful of requests
  // served before the backlog built. "auto" submits the same stream with
  // 25 ms deadlines against a degrade_auto server: requests that expired
  // while queued are failed cheaply at drain (never encoded), sustained
  // pressure steps the encoder down the ladder to int8, and goodput
  // should hold at >= 80% of the pre-overload (0.7x burst) rate.
  plm::SetQuantInference(0);  // the ladder's full tier is fp32
  const double kClientDeadlineMs = 25.0;
  const double overload_qps = 1.5 * fp32_burst;
  bench::Table overload_table(
      "Overload (1.5x fp32 burst, 25 ms client deadline): shed-only vs "
      "degradation ladder",
      {"offered_qps", "goodput_qps", "shed_rate", "miss_rate", "p50_ms",
       "p99_ms"});
  auto& json = bench::BenchJsonWriter::Instance();
  json.Record("serve", "overload_offered_qps", overload_qps);
  json.Record("serve", "overload_pre_goodput_qps", fp32_goodput);

  for (const bool ladder : {false, true}) {
    const std::string mode = ladder ? "auto" : "off";
    serve::ServeOptions options = serve::ServeOptionsFromEnv();
    options.queue_depth = 128;
    if (ladder) {
      options.degrade_auto = true;
      options.degrade_alpha = 0.05;
      options.degrade_high_water = 0.5;
      options.degrade_low_water = 0.1;
      // Pressure samples arrive at the offered rate (thousands/s), so
      // dwell counts translate to wall time: 256 up-samples ~ 80 ms,
      // long enough for the int8 tier to drain the fp32 backlog before
      // the ladder concludes it needs the next step down.
      options.degrade_dwell_up = 256;
      options.degrade_dwell_down = 4096;
    }
    serve::Server server(model.get(), options);
    if (!MustRegister(server, "match", core::MakePlmSimpleMatchServable(
                                           model.get(), names))) {
      return 1;
    }
    bench::Progress("overload " + mode + ": warmup");
    (void)server.Serve("match", docs[0]);  // freeze/pack once
    (void)server.TakeLatenciesMs();

    bench::Progress("overload " + mode + ": open loop at " +
                    std::to_string(overload_qps) + " qps");
    const OverloadResult overload = OverloadPhase(
        server, docs, overload_qps, 2.0, kClientDeadlineMs, ladder);
    const serve::Server::Stats stats = server.stats();
    bench::Progress("overload " + mode + ": goodput " +
                    std::to_string(overload.goodput_qps) + " qps, shed " +
                    std::to_string(overload.shed_rate) + ", miss " +
                    std::to_string(overload.miss_rate));

    json.Record("serve", "overload_" + mode + "_goodput_qps",
                overload.goodput_qps);
    json.Record("serve", "overload_" + mode + "_shed_rate",
                overload.shed_rate);
    json.Record("serve", "overload_" + mode + "_miss_rate",
                overload.miss_rate);
    json.Record("serve", "overload_" + mode + "_p50_ms", overload.p50_ms);
    json.Record("serve", "overload_" + mode + "_p99_ms", overload.p99_ms);
    json.Record("serve", "overload_" + mode + "_degraded",
                static_cast<double>(overload.degraded));
    json.Record("serve", "overload_" + mode + "_degrade_up",
                static_cast<double>(stats.degrade_up));
    overload_table.AddRow(mode,
                          {overload.offered_qps, overload.goodput_qps,
                           overload.shed_rate, overload.miss_rate,
                           overload.p50_ms, overload.p99_ms});
  }

  plm::SetQuantInference(-1);
  table.Print();
  overload_table.Print();
  return 0;
}

// A classifier that parks inside Classify until released, for a
// deterministic admission-control check.
class BlockingServable : public serve::Classifier {
 public:
  std::string name() const override { return "blocking"; }
  size_t num_classes() const override { return 1; }
  Input input() const override { return Input::kTokens; }

  serve::Prediction Classify(const std::vector<int32_t>&, const float*,
                             const la::Matrix*) const override {
    std::unique_lock<std::mutex> lock(mu_);
    ++entered_;
    entered_cv_.notify_all();
    release_cv_.wait(lock, [&] { return released_; });
    return serve::Prediction{};
  }

  void AwaitEntered() const {
    std::unique_lock<std::mutex> lock(mu_);
    entered_cv_.wait(lock, [&] { return entered_ >= 1; });
  }

  void Release() const {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    release_cv_.notify_all();
  }

 private:
  mutable std::mutex mu_;
  mutable std::condition_variable entered_cv_;
  mutable std::condition_variable release_cv_;
  mutable int entered_ = 0;
  mutable bool released_ = false;
};

// Fast ctest pass: served predictions must be bit-identical to the batch
// path in both precisions, and a full queue must shed with kUnavailable.
int RunSmoke() {
  const size_t kVocab = 200;
  const auto docs = SkewedCorpus(32, kVocab, 7);
  const auto names = ClassNames(4);
  auto model = BenchModel(kVocab);
  int failures = 0;

  for (const bool quant : {false, true}) {
    plm::SetQuantInference(quant ? 1 : 0);
    // Batch reference: full-corpus PoolBatch + retrieval similarity panel
    // (the exact float path the adapter reproduces per request).
    const la::Matrix class_reps = model->PoolBatch(names);
    const la::Matrix doc_reps = model->PoolBatch(docs);
    const la::Matrix panel = stm::ann::SimilarityPanel(doc_reps, class_reps);

    serve::Server server(model.get(), serve::ServeOptions{});
    if (!MustRegister(server, "match", core::MakePlmSimpleMatchServable(
                                           model.get(), names))) {
      return 1;
    }
    std::vector<std::future<StatusOr<serve::Prediction>>> futures;
    for (const auto& doc : docs) {
      futures.push_back(server.Submit("match", doc));
    }
    for (size_t d = 0; d < docs.size(); ++d) {
      StatusOr<serve::Prediction> got = futures[d].get();
      if (!got.ok()) {
        std::fprintf(stderr, "FAIL: quant=%d doc %zu: %s\n", quant ? 1 : 0,
                     d, got.status().ToString().c_str());
        ++failures;
        continue;
      }
      int want_label = 0;
      float best = -2.0f;
      for (size_t c = 0; c < class_reps.rows(); ++c) {
        const float sim = panel.At(d, c);
        if (sim > best) {
          best = sim;
          want_label = static_cast<int>(c);
        }
        if (std::memcmp(&sim, &got->scores[c], sizeof(float)) != 0) {
          std::fprintf(stderr,
                       "FAIL: quant=%d doc %zu class %zu score differs "
                       "from batch path\n",
                       quant ? 1 : 0, d, c);
          ++failures;
        }
      }
      if (got->label != want_label) {
        std::fprintf(stderr, "FAIL: quant=%d doc %zu label %d != %d\n",
                     quant ? 1 : 0, d, got->label, want_label);
        ++failures;
      }
    }
  }
  plm::SetQuantInference(-1);

  // Admission control: one parked batch + a full queue => kUnavailable.
  {
    auto blocking = std::make_shared<BlockingServable>();
    serve::ServeOptions options;
    options.max_batch = 1;
    options.deadline_ms = 0.0;
    options.queue_depth = 1;
    options.workers = 1;
    serve::Server server(model.get(), options);
    if (!MustRegister(server, "block", blocking)) return 1;
    const std::vector<int32_t> doc = {text::kNumSpecialTokens};
    auto parked = server.Submit("block", doc);
    blocking->AwaitEntered();
    auto queued = server.Submit("block", doc);
    StatusOr<serve::Prediction> shed = server.Submit("block", doc).get();
    if (shed.ok() || shed.status().code() != StatusCode::kUnavailable) {
      std::fprintf(stderr, "FAIL: full queue did not shed kUnavailable\n");
      ++failures;
    }
    if (server.stats().shed != 1) {
      std::fprintf(stderr, "FAIL: shed counter not bumped\n");
      ++failures;
    }
    blocking->Release();
    if (!parked.get().ok() || !queued.get().ok()) {
      std::fprintf(stderr, "FAIL: admitted requests did not complete\n");
      ++failures;
    }
  }

  if (failures == 0) std::printf("bench_serve --smoke: OK\n");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace stm

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--smoke") {
    return stm::RunSmoke();
  }
  return stm::RunSweep();
}
