// Tests for the int8 quantized inference path (la/qgemm.h,
// plm/quantized_minilm.h): quantization round-trip properties, the int8
// kernel against the fp32 reference under the scale-derived error bound,
// the frozen encoder's accuracy guardrails vs fp32, thread-count
// invariance, and the STMQ artifact round-trip. Built as its own binary
// (stm_quant_tests, ctest label "quant") so scripts/check.sh can run the
// suite under ASan in isolation.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "common/env.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/baselines.h"
#include "datasets/synthetic.h"
#include "eval/metrics.h"
#include "la/gemm_kernels.h"
#include "la/matrix.h"
#include "la/qgemm.h"
#include "nn/infer_ops.h"
#include "plm/minilm.h"
#include "plm/pair_scorer.h"
#include "plm/quantized_minilm.h"

namespace stm {
namespace {

// Restores the global quant switch and thread pool no matter how a test
// exits, so a failing assertion can't leak state into later tests.
struct QuantGuard {
  ~QuantGuard() {
    plm::SetQuantInference(-1);
    ThreadPool::Reset(ThreadPool::ConfiguredThreads());
  }
};

std::vector<float> RandomVec(size_t n, uint64_t seed, float scale = 1.0f) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (float& x : v) {
    x = scale * static_cast<float>(rng.Uniform() * 2.0 - 1.0);
  }
  return v;
}

// ---- quantization round-trip properties ----

TEST(QuantizeTest, RowScaleRecoveryWithinHalfStep) {
  const size_t k = 37;
  const std::vector<float> a = RandomVec(4 * k, 11, 3.0f);
  std::vector<int8_t> q(4 * k);
  std::vector<float> scales(4);
  la::QuantizeRowsAbsmax(a.data(), 4, k, la::kInt8BMax, q.data(),
                         scales.data());
  for (size_t i = 0; i < 4; ++i) {
    float absmax = 0.0f;
    for (size_t p = 0; p < k; ++p) {
      absmax = std::max(absmax, std::fabs(a[i * k + p]));
    }
    EXPECT_FLOAT_EQ(scales[i], absmax / la::kInt8BMax);
    for (size_t p = 0; p < k; ++p) {
      EXPECT_LE(std::abs(q[i * k + p]), la::kInt8BMax);
      // Dequantized value recovers the input within half a step.
      const float back = scales[i] * static_cast<float>(q[i * k + p]);
      EXPECT_LE(std::fabs(back - a[i * k + p]), 0.5f * scales[i] + 1e-7f);
    }
  }
}

TEST(QuantizeTest, SaturatesAtQmaxWithUndersizedScale) {
  const std::vector<float> row = {10.0f, -20.0f, 127.4f, 3.0f};
  std::vector<int8_t> q(row.size());
  la::QuantizeRowWithScale(row.data(), row.size(), 0.1f, la::kInt8BMax,
                           q.data());
  EXPECT_EQ(q[0], 100);
  EXPECT_EQ(q[1], -127);  // -200 clamps
  EXPECT_EQ(q[2], 127);   // 1274 clamps
  EXPECT_EQ(q[3], 30);
}

TEST(QuantizeTest, ZeroRowGetsZeroScaleAndZeroValues) {
  const std::vector<float> a(16, 0.0f);
  std::vector<int8_t> q(16, 1);
  std::vector<float> scales(1, 1.0f);
  la::QuantizeRowsAbsmax(a.data(), 1, 16, la::kInt8AMax, q.data(),
                         scales.data());
  EXPECT_EQ(scales[0], 0.0f);
  for (int8_t v : q) EXPECT_EQ(v, 0);
}

TEST(QuantizeTest, PackedBZeroColumnIsHarmless) {
  // One all-zero column among normal ones: scale 0, contributes exactly 0.
  const size_t k = 9, n = 5;
  std::vector<float> b = RandomVec(k * n, 17);
  for (size_t p = 0; p < k; ++p) b[p * n + 2] = 0.0f;
  const la::Int8PackedB bq = la::PackInt8B(b.data(), n, 1, k, n);
  EXPECT_EQ(bq.scales[2], 0.0f);
  const std::vector<float> a = RandomVec(3 * k, 19);
  std::vector<float> c(3 * n, 0.0f);
  la::Int8GemmAcc(a.data(), 3, bq, c.data());
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(c[i * n + 2], 0.0f);
}

// ---- int8 kernel vs fp32 reference ----

// |err(i,j)| <= half an activation step times the column's |b| mass plus
// half a weight step times the row's |a| mass plus the rounding cross
// term (each of the k products can be off by at most half a step on
// either factor).
void CheckInt8AgainstReference(size_t m, size_t k, size_t n,
                               uint64_t seed) {
  const std::vector<float> a = RandomVec(m * k, seed);
  const std::vector<float> b = RandomVec(k * n, seed + 1);
  std::vector<float> want(m * n, 0.0f);
  la::ReferenceGemmAcc(a.data(), b.data(), want.data(), m, k, n);
  const la::Int8PackedB bq = la::PackInt8B(b.data(), n, 1, k, n);
  std::vector<float> got(m * n, 0.0f);
  la::Int8GemmAcc(a.data(), m, bq, got.data());
  std::vector<float> col_mass(n, 0.0f);
  for (size_t j = 0; j < n; ++j) {
    for (size_t p = 0; p < k; ++p) col_mass[j] += std::fabs(b[p * n + j]);
  }
  for (size_t i = 0; i < m; ++i) {
    float amax = 0.0f, row_mass = 0.0f;
    for (size_t p = 0; p < k; ++p) {
      amax = std::max(amax, std::fabs(a[i * k + p]));
      row_mass += std::fabs(a[i * k + p]);
    }
    const float sa = amax / static_cast<float>(la::kInt8AMax);
    for (size_t j = 0; j < n; ++j) {
      const float sb = bq.scales[j];
      const float bound = 0.5f * sb * row_mass + 0.5f * sa * col_mass[j] +
                          0.25f * static_cast<float>(k) * sa * sb + 1e-5f;
      ASSERT_LE(std::fabs(want[i * n + j] - got[i * n + j]), bound)
          << m << "x" << k << "x" << n << " elem (" << i << "," << j << ")";
    }
  }
}

TEST(Int8GemmTest, MatchesReferenceAcrossShapeSweep) {
  const size_t dims[] = {1, 3, 5, 8, 13, 33};
  for (size_t m : dims) {
    for (size_t k : dims) {
      for (size_t n : dims) CheckInt8AgainstReference(m, k, n, 7 + m + k + n);
    }
  }
  CheckInt8AgainstReference(96, 64, 96, 23);  // multi-chunk parallel path
}

TEST(Int8GemmTest, BitIdenticalAcrossThreadCounts) {
  QuantGuard guard;
  const size_t m = 61, k = 53, n = 47;
  const std::vector<float> a = RandomVec(m * k, 29);
  const std::vector<float> b = RandomVec(k * n, 31);
  const la::Int8PackedB bq = la::PackInt8B(b.data(), n, 1, k, n);
  std::vector<std::vector<float>> results;
  for (size_t threads : {size_t{1}, size_t{4}}) {
    ThreadPool::Reset(threads);
    std::vector<float> c(m * n, 0.0f);
    la::Int8GemmAcc(a.data(), m, bq, c.data());
    results.push_back(std::move(c));
  }
  ASSERT_EQ(std::memcmp(results[0].data(), results[1].data(),
                        m * n * sizeof(float)),
            0);
}

TEST(Int8GemmTest, RepackMatchesPack) {
  const size_t k = 21, n = 13;
  const std::vector<float> b = RandomVec(k * n, 37);
  const la::Int8PackedB packed = la::PackInt8B(b.data(), n, 1, k, n);
  const la::Int8PackedB repacked =
      la::RepackInt8B(packed.rowmajor, packed.scales, k, n);
  EXPECT_EQ(packed.panels, repacked.panels);
  EXPECT_EQ(packed.colsums, repacked.colsums);
}

// ---- frozen encoder: accuracy guardrails and invariance ----

class QuantMiniLmTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datasets::SyntheticSpec spec;
    spec.dataset_name = "quant-test";
    spec.seed = 42;
    spec.num_docs = 60;
    spec.pretrain_docs = 500;
    spec.background_vocab = 120;
    spec.class_vocab = 12;
    spec.doc_len_min = 15;
    spec.doc_len_max = 30;
    spec.topical_fraction = 0.6;
    spec.classes = {
        {"soccer", {"goal", "match"}, 1.0, -1},
        {"court", {"judge", "law"}, 1.0, -1},
    };
    data_ = new datasets::SyntheticDataset(datasets::Generate(spec));

    plm::MiniLmConfig config;
    config.vocab_size = data_->corpus.vocab().size();
    config.dim = 32;
    config.layers = 2;
    config.heads = 2;
    config.ffn_dim = 64;
    config.max_seq = 32;
    model_ = new plm::MiniLm(config);
    plm::PretrainConfig pretrain;
    pretrain.steps = 400;
    pretrain.batch = 6;
    model_->Pretrain(data_->pretrain_docs, pretrain);
  }

  static void TearDownTestSuite() {
    delete model_;
    delete data_;
    model_ = nullptr;
    data_ = nullptr;
  }

  static std::vector<std::vector<int32_t>> Docs(size_t count) {
    std::vector<std::vector<int32_t>> docs;
    for (size_t d = 0; d < count && d < data_->corpus.num_docs(); ++d) {
      docs.push_back(data_->corpus.docs()[d].tokens);
    }
    return docs;
  }

  static datasets::SyntheticDataset* data_;
  static plm::MiniLm* model_;
};

datasets::SyntheticDataset* QuantMiniLmTest::data_ = nullptr;
plm::MiniLm* QuantMiniLmTest::model_ = nullptr;

TEST_F(QuantMiniLmTest, PooledCosineVsFp32AtLeast99) {
  const auto docs = Docs(40);
  const la::Matrix fp32 = model_->PoolBatch(docs);
  const auto frozen = model_->Freeze();
  const la::Matrix quant = frozen->PoolBatch(docs);
  ASSERT_EQ(fp32.rows(), quant.rows());
  for (size_t d = 0; d < fp32.rows(); ++d) {
    EXPECT_GE(la::Cosine(fp32.Row(d), quant.Row(d), fp32.cols()), 0.99f)
        << "doc " << d;
  }
}

TEST_F(QuantMiniLmTest, MacroF1WithinOnePointOfFp32) {
  QuantGuard guard;
  const auto& vocab = data_->corpus.vocab();
  const std::vector<std::vector<int32_t>> class_names = {
      {vocab.IdOf("soccer")}, {vocab.IdOf("court")}};
  std::vector<int> gold;
  for (const auto& doc : data_->corpus.docs()) gold.push_back(doc.labels[0]);
  plm::SetQuantInference(0);
  const std::vector<int> fp32_pred =
      core::PlmSimpleMatchClassify(data_->corpus, *model_, class_names);
  plm::SetQuantInference(1);
  const std::vector<int> quant_pred =
      core::PlmSimpleMatchClassify(data_->corpus, *model_, class_names);
  const double fp32_f1 = eval::MacroF1(fp32_pred, gold, 2);
  const double quant_f1 = eval::MacroF1(quant_pred, gold, 2);
  EXPECT_GE(quant_f1, fp32_f1 - 0.01);
}

TEST_F(QuantMiniLmTest, QuantEncoderBitIdenticalAcrossThreadCounts) {
  QuantGuard guard;
  plm::SetQuantInference(1);
  const auto docs = Docs(16);
  std::vector<la::Matrix> pooled;
  for (size_t threads : {size_t{1}, size_t{4}}) {
    ThreadPool::Reset(threads);
    pooled.push_back(model_->PoolBatch(docs));
  }
  ASSERT_EQ(pooled[0].rows(), pooled[1].rows());
  ASSERT_EQ(std::memcmp(pooled[0].data(), pooled[1].data(),
                        pooled[0].rows() * pooled[0].cols() * sizeof(float)),
            0);
}

// Multi-strip tiled attention on the int8 path: documents longer than
// kAttentionQueryBlock cross a query-strip boundary inside
// nn::TiledAttentionHead. Tiling must keep the per-doc/bucketed
// bit-identity invariant, and the output must still track fp32 within
// the quantization error (same pooled-cosine guardrail as the rest of
// the suite — the tiles change memory, the int8 scales set the error).
TEST(QuantTiledAttentionTest, LongDocsCrossStripBoundary) {
  QuantGuard guard;
  plm::MiniLmConfig config;
  config.vocab_size = 100;
  config.dim = 32;
  config.layers = 2;
  config.heads = 2;
  config.ffn_dim = 64;
  config.max_seq = nn::kAttentionQueryBlock + 32;
  config.seed = 17;
  plm::MiniLm model(config);

  Rng rng(53);
  std::vector<std::vector<int32_t>> docs;
  for (const size_t len :
       {size_t{40}, nn::kAttentionQueryBlock, nn::kAttentionQueryBlock + 1,
        config.max_seq, config.max_seq}) {
    std::vector<int32_t> doc(len);
    for (int32_t& id : doc) {
      id = 4 + static_cast<int32_t>(rng.UniformInt(96));
    }
    docs.push_back(std::move(doc));
  }

  const auto frozen = model.Freeze();
  std::vector<la::Matrix> perdoc;
  for (const auto& doc : docs) perdoc.push_back(frozen->Encode(doc));
  const std::vector<la::Matrix> batched = frozen->EncodeBatch(docs);
  ASSERT_EQ(batched.size(), perdoc.size());
  for (size_t d = 0; d < docs.size(); ++d) {
    ASSERT_EQ(perdoc[d].rows(), batched[d].rows());
    EXPECT_EQ(std::memcmp(perdoc[d].data(), batched[d].data(),
                          perdoc[d].size() * sizeof(float)),
              0)
        << "doc " << d;
  }
  const la::Matrix fp32 = model.PoolBatch(docs);
  const la::Matrix quant = frozen->PoolBatch(docs);
  for (size_t d = 0; d < docs.size(); ++d) {
    EXPECT_GE(la::Cosine(fp32.Row(d), quant.Row(d), fp32.cols()), 0.99f)
        << "doc " << d;
  }
}

TEST_F(QuantMiniLmTest, RoutingMatchesExplicitFreeze) {
  QuantGuard guard;
  const std::vector<int32_t> ids = data_->corpus.docs()[3].tokens;
  const auto frozen = model_->Freeze();
  plm::SetQuantInference(1);
  const la::Matrix routed = model_->Encode(ids);
  const la::Matrix direct = frozen->Encode(ids);
  ASSERT_EQ(routed.rows(), direct.rows());
  ASSERT_EQ(std::memcmp(routed.data(), direct.data(),
                        routed.rows() * routed.cols() * sizeof(float)),
            0);
  // And the fp32 path still differs from quant only by quantization
  // noise, not wholesale (sanity that routing actually switched).
  plm::SetQuantInference(0);
  const la::Matrix fp32 = model_->Encode(ids);
  EXPECT_NE(std::memcmp(fp32.data(), routed.data(),
                        fp32.rows() * fp32.cols() * sizeof(float)),
            0);
}

TEST_F(QuantMiniLmTest, ArtifactRoundTripIsBitwise) {
  const std::string path = testing::TempDir() + "/quant_roundtrip.bin";
  const auto frozen = model_->Freeze();
  ASSERT_TRUE(frozen->Save(Env::Default(), path).ok());
  auto loaded = plm::QuantizedMiniLm::Load(Env::Default(), path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  const auto docs = Docs(8);
  const la::Matrix a = frozen->PoolBatch(docs);
  const la::Matrix b = loaded.value()->PoolBatch(docs);
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(std::memcmp(a.data(), b.data(),
                        a.rows() * a.cols() * sizeof(float)),
            0);
}

TEST_F(QuantMiniLmTest, LoadRejectsBitFlipAndGarbage) {
  const std::string path = testing::TempDir() + "/quant_corrupt.bin";
  ASSERT_TRUE(model_->Freeze()->Save(Env::Default(), path).ok());
  StatusOr<std::string> data = Env::Default()->ReadFile(path);
  ASSERT_TRUE(data.ok());
  std::string flipped = data.value();
  flipped[flipped.size() / 2] ^= 0x20;
  ASSERT_TRUE(Env::Default()->WriteFileAtomic(path, flipped).ok());
  EXPECT_FALSE(plm::QuantizedMiniLm::Load(Env::Default(), path).ok());

  const std::string garbage = testing::TempDir() + "/quant_garbage.bin";
  ASSERT_TRUE(Env::Default()->WriteFileAtomic(garbage, "not a model").ok());
  EXPECT_FALSE(plm::QuantizedMiniLm::Load(Env::Default(), garbage).ok());
}

// ---- pair scorer quant path ----

TEST(PairScorerQuantTest, QuantScoresTrackFp32AndAreThreadInvariant) {
  QuantGuard guard;
  const size_t dim = 12;
  plm::PairScorer::Config config;
  config.encoder_dim = dim;
  config.epochs = 4;
  plm::PairScorer scorer(config);
  Rng rng(5);
  std::vector<std::vector<float>> u, v;
  std::vector<float> labels;
  for (size_t i = 0; i < 64; ++i) {
    u.push_back(RandomVec(dim, 100 + i));
    // Positives share direction with u, negatives are independent.
    if (i % 2 == 0) {
      v.push_back(u.back());
      for (float& x : v.back()) {
        x += 0.1f * static_cast<float>(rng.Uniform() - 0.5);
      }
      labels.push_back(1.0f);
    } else {
      v.push_back(RandomVec(dim, 500 + i));
      labels.push_back(0.0f);
    }
  }
  scorer.Train(u, v, labels);

  plm::SetQuantInference(0);
  const std::vector<float> fp32 = scorer.ScoreBatch(u, v);
  plm::SetQuantInference(1);
  const std::vector<float> quant = scorer.ScoreBatch(u, v);
  ASSERT_EQ(fp32.size(), quant.size());
  for (size_t i = 0; i < fp32.size(); ++i) {
    EXPECT_NEAR(fp32[i], quant[i], 0.05f) << "pair " << i;
  }

  std::vector<std::vector<float>> runs;
  for (size_t threads : {size_t{1}, size_t{3}}) {
    ThreadPool::Reset(threads);
    runs.push_back(scorer.ScoreBatch(u, v));
  }
  ASSERT_EQ(std::memcmp(runs[0].data(), runs[1].data(),
                        runs[0].size() * sizeof(float)),
            0);
}

}  // namespace
}  // namespace stm
