#ifndef STM_PLM_ENCODE_CACHE_H_
#define STM_PLM_ENCODE_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/env.h"
#include "la/matrix.h"

namespace stm::plm {

class MiniLm;

// Content-addressed cache for frozen-encoder outputs.
//
// Every tutorial method re-encodes the same corpus — often several times
// within one run (TaxoClass per taxonomy node, MICoL for documents and
// labels) and always again on the next run. With frozen weights the
// encoder is a pure function of (weights, quant mode, token ids), so its
// outputs are safe to memoize under a hash of exactly those inputs:
//
//   key = 2 x 64-bit FNV-1a over the token ids, seeded with the model's
//         weights fingerprint, the quant-mode flag and the output kind
//         (hidden rows vs pooled vector)
//
// Training changes the weights fingerprint (MiniLm::InvalidateFrozen, the
// same boundary that drops the frozen int8 snapshot), so stale entries
// simply stop being addressable and age out of the LRU.
//
// Entries live in a mutex-guarded in-memory LRU bounded by max_bytes.
// When a directory is configured, every insert also spills the entry to
// disk as a CRC32C-checked artifact (common/serialize.h) via the Env
// seam, and a memory miss falls back to the disk copy — a re-run with an
// unchanged model skips encoding entirely. Disk failures are never
// fatal: unreadable or corrupt entry files are quarantined as
// `<file>.corrupt` and treated as misses, failed writes are counted and
// dropped. All I/O happens outside the lock.
class EncodeCache {
 public:
  enum class Kind : uint32_t { kHidden = 1, kPooled = 2 };

  struct Key {
    uint64_t hi = 0;
    uint64_t lo = 0;
    bool operator==(const Key& other) const {
      return hi == other.hi && lo == other.lo;
    }
  };

  struct KeyHash {
    size_t operator()(const Key& key) const {
      return static_cast<size_t>(key.hi ^ (key.lo * 0x9E3779B97F4A7C15ULL));
    }
  };

  struct Stats {
    size_t memory_hits = 0;
    size_t disk_hits = 0;
    size_t misses = 0;
    size_t inserts = 0;
    size_t evictions = 0;
    size_t disk_errors = 0;
    size_t hits() const { return memory_hits + disk_hits; }
  };

  struct Config {
    size_t max_bytes = size_t{256} * 1024 * 1024;
    std::string dir;      // empty = memory-only
    Env* env = nullptr;   // nullptr = Env::Default()
  };

  explicit EncodeCache(const Config& config);

  EncodeCache(const EncodeCache&) = delete;
  EncodeCache& operator=(const EncodeCache&) = delete;

  static Key MakeKey(uint64_t weights_fingerprint, bool quantized, Kind kind,
                     const int32_t* ids, size_t len);

  // Fills `out` and returns true on a hit (memory first, then disk).
  bool Lookup(const Key& key, la::Matrix* out);

  // Lookup that never records a miss. The serve layer's cache-only
  // degradation tier probes speculatively — answer from the cache or shed,
  // never encode — and those probes must not skew the hit-rate stats the
  // offline paths report. Hits still count (memory or disk) and refresh
  // LRU recency, so sustained cache-only serving keeps its working set
  // resident.
  bool Probe(const Key& key, la::Matrix* out);

  // Stores `value` (copied) in memory and, when configured, on disk.
  void Insert(const Key& key, const la::Matrix& value);

  // Drops the in-memory entries (testing hook); disk files stay.
  void Clear();

  Stats stats() const;
  size_t bytes() const;
  const std::string& dir() const { return dir_; }

  // Process-wide cache configured by the environment, shared by every
  // MiniLm constructed afterwards:
  //   STM_ENCODE_CACHE     unset/""/"0" = off, "mem" = memory-only,
  //                        anything else = spill directory
  //   STM_ENCODE_CACHE_MB  in-memory LRU bound in MB (default 256)
  // Returns nullptr when disabled.
  static std::shared_ptr<EncodeCache> SharedFromEnv();

 private:
  std::string EntryPath(const Key& key) const;
  bool LoadFromDisk(const Key& key, la::Matrix* out);
  void StoreToDisk(const Key& key, const la::Matrix& value);
  void InsertMemory(const Key& key, la::Matrix value);

  const size_t max_bytes_;
  std::string dir_;
  Env* const env_;

  mutable std::mutex mu_;
  // Front = most recently used. Guarded by mu_, as are index_/bytes_/stats_.
  std::list<std::pair<Key, la::Matrix>> lru_;
  std::unordered_map<Key, std::list<std::pair<Key, la::Matrix>>::iterator,
                     KeyHash>
      index_;
  size_t bytes_ = 0;
  Stats stats_;
};

// Installs a bounded, memory-only EncodeCache on `model` for the current
// scope — the pattern for pipeline stages that encode overlapping
// document sets (TaxoClass node reps, MICoL ranking) without wanting a
// process-wide cache. When the model already has a cache (e.g. from
// STM_ENCODE_CACHE), that one is kept and this guard is a no-op; the
// previous cache (possibly none) is restored on destruction.
class ScopedEncodeCache {
 public:
  explicit ScopedEncodeCache(MiniLm* model,
                             size_t max_bytes = size_t{64} * 1024 * 1024);
  ~ScopedEncodeCache();

  ScopedEncodeCache(const ScopedEncodeCache&) = delete;
  ScopedEncodeCache& operator=(const ScopedEncodeCache&) = delete;

  // The cache the model is using inside this scope (never null).
  const std::shared_ptr<EncodeCache>& cache() const { return cache_; }

 private:
  MiniLm* const model_;
  std::shared_ptr<EncodeCache> cache_;
  bool installed_ = false;
};

}  // namespace stm::plm

#endif  // STM_PLM_ENCODE_CACHE_H_
