#include <gtest/gtest.h>

#include "core/xclass.h"
#include "datasets/specs.h"
#include "embedding/sgns.h"
#include "eval/metrics.h"

namespace stm {
namespace {

TEST(WordEmbeddingsIoTest, SaveLoadRoundTrip) {
  datasets::SyntheticSpec spec = datasets::AgNewsSpec(51);
  spec.num_docs = 120;
  spec.pretrain_docs = 0;
  const auto data = datasets::Generate(spec);
  std::vector<std::vector<int32_t>> docs;
  for (const auto& doc : data.corpus.docs()) docs.push_back(doc.tokens);
  embedding::SgnsConfig config;
  config.epochs = 2;
  const auto emb = embedding::WordEmbeddings::Train(
      docs, data.corpus.vocab().size(), config);

  const std::string path = testing::TempDir() + "/emb_roundtrip.bin";
  ASSERT_TRUE(emb.Save(path));
  const auto loaded = embedding::WordEmbeddings::Load(path);
  ASSERT_NE(loaded, nullptr);
  ASSERT_EQ(loaded->vocab_size(), emb.vocab_size());
  ASSERT_EQ(loaded->dim(), emb.dim());
  for (size_t i = 0; i < emb.vectors().size(); ++i) {
    EXPECT_FLOAT_EQ(loaded->vectors().data()[i], emb.vectors().data()[i]);
  }
}

TEST(WordEmbeddingsIoTest, LoadRejectsGarbage) {
  const std::string path = testing::TempDir() + "/emb_garbage.bin";
  FILE* f = fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  fputs("garbage", f);
  fclose(f);
  EXPECT_EQ(embedding::WordEmbeddings::Load(path), nullptr);
}

TEST(XClassPathsTest, HierarchicalPathsAreConsistent) {
  datasets::SyntheticSpec spec = datasets::ArxivSpec(52);
  spec.num_docs = 220;
  spec.pretrain_docs = 800;
  const auto data = datasets::Generate(spec);
  // Leaf-flattened view so the corpus label space matches the leaves.
  const auto fine =
      datasets::FlattenToDepth(data, data.tree.MaxDepth());
  plm::MiniLmConfig config;
  config.vocab_size = data.corpus.vocab().size();
  config.dim = 40;
  config.layers = 2;
  config.heads = 4;
  config.ffn_dim = 80;
  config.max_seq = 40;
  plm::PretrainConfig pretrain;
  pretrain.steps = 1200;
  pretrain.batch = 8;
  auto model = plm::MiniLm::LoadOrPretrain(
      testing::TempDir(), data.fingerprint, config, pretrain,
      data.pretrain_docs);

  std::vector<std::vector<int32_t>> leaf_names;
  for (int node : fine.node_of_label) {
    leaf_names.push_back({fine.corpus.vocab().IdOf(
        data.tree.NameOf(node))});
  }
  core::XClassConfig xconfig;
  core::XClass method(fine.corpus, model.get(), xconfig);
  const auto paths =
      method.RunPaths(data.tree, fine.node_of_label, leaf_names);
  ASSERT_EQ(paths.size(), data.corpus.num_docs());

  size_t coarse_correct = 0;
  size_t leaf_correct = 0;
  for (size_t d = 0; d < paths.size(); ++d) {
    ASSERT_EQ(paths[d].size(), 2u);
    // Path is structurally valid.
    EXPECT_EQ(data.tree.ParentOf(paths[d][1]), paths[d][0]);
    coarse_correct +=
        paths[d][0] == data.corpus.docs()[d].label_path[0];
    leaf_correct += paths[d][1] == data.corpus.docs()[d].label_path[1];
  }
  const double coarse =
      static_cast<double>(coarse_correct) / paths.size();
  const double leaf = static_cast<double>(leaf_correct) / paths.size();
  EXPECT_GT(coarse, 0.5);   // 3 coarse classes
  EXPECT_GT(leaf, 0.3);     // 9 leaves
  EXPECT_GE(coarse + 1e-9, leaf);
}

}  // namespace
}  // namespace stm
