#ifndef STM_PLM_PAIR_SCORER_H_
#define STM_PLM_PAIR_SCORER_H_

#include <memory>
#include <vector>

#include "nn/layers.h"
#include "nn/optimizer.h"

namespace stm::plm {

// Sentence-pair relevance head over frozen encoder vectors: an MLP on the
// standard interaction features [u; v; |u-v|; u*v] with a binary output.
//
// This stands in for two pre-trained artifacts of the tutorial:
//  * TaxoClass's NLI relevance model (roberta-large-mnli): we pre-train
//    the head on entailment pairs built from auxiliary topics, then apply
//    it to unseen evaluation classes;
//  * MICoL's Cross-Encoder: trained on metadata-induced document pairs,
//    applied to (document, label description) pairs at inference.
class PairScorer {
 public:
  struct Config {
    size_t encoder_dim = 0;
    size_t hidden = 48;
    float lr = 4e-3f;
    size_t batch_size = 32;
    int epochs = 8;
    uint64_t seed = 41;
  };

  explicit PairScorer(const Config& config);

  // Trains on (u, v, label∈{0,1}) triples for `config.epochs` epochs.
  // Returns final mean loss.
  double Train(const std::vector<std::vector<float>>& u,
               const std::vector<std::vector<float>>& v,
               const std::vector<float>& labels);

  // Relevance probability in [0, 1].
  float Score(const std::vector<float>& u, const std::vector<float>& v);

  // Scores many pairs at once (parallel across pairs on the global
  // thread pool). scores[i] == Score(u[i], v[i]) exactly; must not be
  // interleaved with Train().
  std::vector<float> ScoreBatch(const std::vector<std::vector<float>>& u,
                                const std::vector<std::vector<float>>& v);

 private:
  std::vector<float> Interaction(const std::vector<float>& u,
                                 const std::vector<float>& v) const;

  Config config_;
  Rng rng_;
  nn::ParameterStore store_;
  std::unique_ptr<nn::Linear> hidden_;
  std::unique_ptr<nn::Linear> out_;
  std::unique_ptr<nn::AdamOptimizer> optimizer_;
};

}  // namespace stm::plm

#endif  // STM_PLM_PAIR_SCORER_H_
