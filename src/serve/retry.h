#ifndef STM_SERVE_RETRY_H_
#define STM_SERVE_RETRY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/env.h"
#include "serve/serve.h"

namespace stm::serve {

// Client-side retry wrapper around Server::Serve.
//
// kUnavailable from the serve layer means transient pressure — queue
// full, shed tier, a failed batch — exactly the class of failure where
// backing off and retrying helps (the same contract as PR 3's
// WriteFileAtomicWithRetry, whose stm::RetryOptions this reuses). Every
// other code is final and is returned after the FIRST attempt:
//   kInvalidArgument   the request itself is wrong; resending the same
//                      bytes can never succeed;
//   kDeadlineExceeded  the time budget is already spent; retrying would
//                      answer after the caller stopped caring;
//   kCancelled         the caller asked for the request to stop.
//
// Backoff is exponential with full decorrelation avoided but thundering
// herds broken: attempt k sleeps initial_backoff_ms * 2^(k-1) scaled by a
// uniform jitter factor in [0.5, 1.0), drawn from a deterministic Rng
// seeded with `jitter_seed` (tests pass a fixed seed; production callers
// can seed from a per-client id).
//
// A SubmitOptions deadline is respected across attempts in the sense that
// each attempt re-submits with the SAME relative deadline — the wrapper
// does not stretch a request's budget, it only re-enters the queue.
StatusOr<Prediction> ServeWithRetry(Server& server, const std::string& model,
                                    std::vector<int32_t> ids,
                                    const SubmitOptions& submit = {},
                                    const RetryOptions& retry = {},
                                    uint64_t jitter_seed = 0x5E1F);

}  // namespace stm::serve

#endif  // STM_SERVE_RETRY_H_
