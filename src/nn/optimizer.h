#ifndef STM_NN_OPTIMIZER_H_
#define STM_NN_OPTIMIZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "nn/tensor.h"

namespace stm::nn {

// Named collection of trainable parameters; modules register their
// parameters here so optimizers and (de)serialization can reach them.
class ParameterStore {
 public:
  // Registers `param` under `name` (names must be unique) and returns it.
  Tensor Register(const std::string& name, Tensor param);

  const std::vector<Tensor>& params() const { return params_; }
  const std::vector<std::string>& names() const { return names_; }

  // Zeroes every parameter gradient.
  void ZeroGrads();

  // Total scalar parameter count.
  size_t TotalSize() const;

  // Serializes all parameter values (in registration order).
  std::vector<float> Snapshot() const;

  // Restores values from a Snapshot(); sizes must match.
  void Restore(const std::vector<float>& snapshot);

  // Monotonic mutation counter, bumped by every optimizer Step() and by
  // Restore(). Consumers that cache derived views of the parameters
  // (frozen inference snapshots, weight fingerprints) record the
  // generation they were built at and drop the cache when it moves —
  // this catches fine-tuning through external optimizers that never go
  // through the owning model's invalidation hooks.
  uint64_t generation() const { return generation_; }
  void BumpGeneration() { ++generation_; }

 private:
  std::vector<Tensor> params_;
  std::vector<std::string> names_;
  uint64_t generation_ = 0;
};

struct OptimizerConfig {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;  // decoupled (AdamW-style)
  float grad_clip = 0.0f;     // global L2 clip; 0 = off
};

// Adam / AdamW over a ParameterStore. SGD is Adam with beta1=beta2=0
// conceptually; a separate lightweight SGD is provided for the embedding
// trainers that manage their own updates.
class AdamOptimizer {
 public:
  AdamOptimizer(ParameterStore* store, OptimizerConfig config);

  // Applies one update from the accumulated gradients, then zeroes them.
  void Step();

  // Current step count (for bias correction).
  int64_t steps() const { return step_; }

  void set_lr(float lr) { config_.lr = lr; }
  float lr() const { return config_.lr; }

 private:
  ParameterStore* store_;
  OptimizerConfig config_;
  int64_t step_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

// Plain SGD with optional momentum over a ParameterStore.
class SgdOptimizer {
 public:
  SgdOptimizer(ParameterStore* store, float lr, float momentum = 0.0f);

  void Step();

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  ParameterStore* store_;
  float lr_;
  float momentum_;
  std::vector<std::vector<float>> velocity_;
};

}  // namespace stm::nn

#endif  // STM_NN_OPTIMIZER_H_
