#ifndef STM_PLM_QUANTIZED_MINILM_H_
#define STM_PLM_QUANTIZED_MINILM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/status.h"
#include "la/matrix.h"
#include "la/qgemm.h"
#include "plm/minilm.h"

namespace stm::plm {

// ---- STM_QUANT switch ----
//
// When enabled, MiniLm::Encode/Pool/EncodeBatch/PoolBatch and
// PairScorer::ScoreBatch route through the frozen int8 path below. The
// setting is process-wide: read once from the STM_QUANT environment
// variable ("" / "0" disables, anything else enables), overridable
// programmatically for tests and embedding servers.
bool QuantInferenceEnabled();

// 1 = force on, 0 = force off, -1 = follow STM_QUANT (the default).
void SetQuantInference(int mode);

// RAII thread-local override of the quant switch, consulted before the
// process-wide SetQuantInference/STM_QUANT setting. The serve layer's
// degradation ladder uses it to run one drain worker's batch through the
// frozen int8 encoder under overload without perturbing concurrent
// full-fidelity callers on other threads (QuantInferenceEnabled() is read
// on the calling thread before any parallel region is submitted, so the
// override scopes exactly to this thread's encode calls). Nests: the
// previous override is restored on destruction.
class ScopedQuantOverride {
 public:
  explicit ScopedQuantOverride(bool enable);
  ~ScopedQuantOverride();

  ScopedQuantOverride(const ScopedQuantOverride&) = delete;
  ScopedQuantOverride& operator=(const ScopedQuantOverride&) = delete;

 private:
  int prev_;
};

// Frozen-weight int8 inference encoder, produced by MiniLm::Freeze().
//
// The attention/FFN projection weights are quantized per output column
// and packed once into the la::Int8PackedB micro-kernel layout; biases,
// layer-norm parameters and the embedding tables stay fp32 (they are
// O(dim), not worth quantizing, and keeping them exact is what holds the
// pooled-vector cosine vs fp32 at >= 0.99). The forward pass runs on raw
// workspace buffers — no autograd Node construction — with fp32
// attention (seq x seq x head_dim is tiny next to the projections) and
// int8 GEMMs for qkv/out/ffn1/ffn2.
//
// Determinism: weights are quantized at Freeze() time and activations per
// row of the whole tensor (see la/qgemm.h), so output is bit-identical
// across STM_NUM_THREADS settings, matching the PR 1 contract.
class QuantizedMiniLm {
 public:
  struct QuantLinear {
    la::Int8PackedB weight;     // packed [in, out]
    std::vector<float> bias;    // [out], fp32
  };

  const MiniLmConfig& config() const { return config_; }

  // Inference API mirroring MiniLm's (same truncation, same shapes).
  la::Matrix Encode(const std::vector<int32_t>& ids) const;
  std::vector<float> Pool(const std::vector<int32_t>& ids) const;
  std::vector<la::Matrix> EncodeBatch(
      const std::vector<std::vector<int32_t>>& docs) const;
  la::Matrix PoolBatch(const std::vector<std::vector<int32_t>>& docs) const;

  // Scores hidden @ W + b for row-major features [rows, w.weight.k] into
  // out [rows, w.weight.n] (zeroed first). Exposed for PairScorer.
  static void ApplyQuantLinear(const float* x, size_t rows,
                               const QuantLinear& w, float* out);

  // ---- persistence ----
  //
  // The int8 model serializes as its own framed artifact ("STMQ" magic,
  // CRC32C-checked container, see common/serialize.h): row-major
  // quantized weights + per-column scales + fp32 biases/norms/embeddings.
  // A server can load it directly — no fp32 MiniLm weights needed.
  Status Save(Env* env, const std::string& path) const;
  static StatusOr<std::unique_ptr<QuantizedMiniLm>> Load(
      Env* env, const std::string& path);

 private:
  friend class MiniLm;

  struct QuantLayer {
    QuantLinear qkv, out, ffn1, ffn2;
    std::vector<float> ln1_gamma, ln1_beta;
    std::vector<float> ln2_gamma, ln2_beta;
  };

  QuantizedMiniLm() = default;

  std::vector<int32_t> Truncate(const std::vector<int32_t>& ids) const;

  // Forward pass over one padded length bucket: `flat` holds count
  // sequences of `seq` token ids (kPadId beyond each document's length),
  // `out` receives the final hidden states as [count * seq, dim] rows.
  // Attention runs per document at its exact length and pad rows never
  // feed a live row, so each document's output rows are bit-identical to
  // a per-document Encode — and, because activation quantization is
  // per-row (la/qgemm.h), independent of what else shares the bucket.
  // Rows past a document's length are deterministic but meaningless.
  void ForwardBucket(const int32_t* flat, size_t count, size_t seq,
                     const std::vector<int>& lengths, float* out) const;

  MiniLmConfig config_;
  std::vector<float> token_table_;  // [vocab, dim]
  std::vector<float> pos_table_;    // [max_seq, dim]
  std::vector<QuantLayer> layers_;
  std::vector<float> final_gamma_, final_beta_;
};

}  // namespace stm::plm

#endif  // STM_PLM_QUANTIZED_MINILM_H_
