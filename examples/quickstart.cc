// Quickstart: weakly-supervised text classification with label names only.
//
// Builds a small four-topic news corpus, runs WeSTClass from just the four
// category names, and reports accuracy — no labeled documents involved.
//
//   ./example_quickstart

#include <cstdio>

#include "core/westclass.h"
#include "datasets/specs.h"
#include "eval/metrics.h"

int main() {
  // 1. A corpus. Normally you would load your own documents through
  //    stm::text::Tokenizer; here we use the bundled synthetic AG-News-like
  //    generator so the example is self-contained.
  stm::datasets::SyntheticSpec spec = stm::datasets::AgNewsSpec(/*seed=*/7);
  spec.num_docs = 400;
  spec.pretrain_docs = 0;  // WeSTClass needs no pre-trained LM
  stm::datasets::SyntheticDataset data = stm::datasets::Generate(spec);
  std::printf("corpus: %zu documents, %zu classes, vocab %zu\n",
              data.corpus.num_docs(), data.corpus.num_labels(),
              data.corpus.vocab().size());

  // 2. Weak supervision: the class names (the generator also provides a
  //    few keywords per class; LABELS mode uses only the name).
  for (size_t c = 0; c < data.corpus.num_labels(); ++c) {
    std::printf("  class %zu: %s\n", c,
                data.corpus.label_names()[c].c_str());
  }

  // 3. Run WeSTClass: corpus embedding -> vMF pseudo documents -> neural
  //    classifier -> self-training.
  stm::core::WestClassConfig config;
  config.classifier = "cnn";
  stm::core::WestClass method(data.corpus, config);
  const std::vector<int> predictions =
      method.Run(stm::core::Supervision::kLabels, data.supervision);

  // 4. Evaluate against the gold labels (only used for scoring).
  const auto gold = data.corpus.GoldLabels();
  std::printf("accuracy: %.3f   macro-F1: %.3f\n",
              stm::eval::Accuracy(predictions, gold),
              stm::eval::MacroF1(predictions, gold,
                                 data.corpus.num_labels()));

  // 5. Peek at a few predictions.
  for (size_t d = 0; d < 5; ++d) {
    std::printf("doc %zu: predicted %-12s gold %s\n", d,
                data.corpus.label_names()[static_cast<size_t>(
                    predictions[d])].c_str(),
                data.corpus.label_names()[static_cast<size_t>(gold[d])]
                    .c_str());
  }
  return 0;
}
