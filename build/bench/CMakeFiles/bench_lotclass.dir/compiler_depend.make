# Empty compiler generated dependencies file for bench_lotclass.
# This may be replaced when dependencies are built.
