#include "plm/encode_cache.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <limits>

#include "common/env_parse.h"
#include "common/hash.h"
#include "common/serialize.h"
#include "common/status.h"
#include "plm/minilm.h"

namespace stm::plm {

namespace {

constexpr uint32_t kEncodeCacheMagic = 0x53544D45;  // "STME"

// Flat LRU accounting: payload floats plus map/list node overhead.
size_t EntryBytes(const la::Matrix& value) {
  return value.size() * sizeof(float) + 64;
}

}  // namespace

EncodeCache::EncodeCache(const Config& config)
    : max_bytes_(config.max_bytes),
      dir_(config.dir),
      env_(config.env != nullptr ? config.env : Env::Default()) {
  if (!dir_.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) {
      std::fprintf(stderr,
                   "[stm] cannot create encode-cache dir '%s': %s; "
                   "running memory-only\n",
                   dir_.c_str(), ec.message().c_str());
      dir_.clear();
    }
  }
}

EncodeCache::Key EncodeCache::MakeKey(uint64_t weights_fingerprint,
                                      bool quantized, Kind kind,
                                      const int32_t* ids, size_t len) {
  // Two independently seeded 64-bit FNV-1a streams over the token ids;
  // 128 bits makes an accidental collision (which would silently serve
  // the wrong document's embedding) astronomically unlikely.
  uint64_t seed = HashCombine(weights_fingerprint,
                              static_cast<uint64_t>(quantized ? 1 : 0));
  seed = HashCombine(seed, static_cast<uint64_t>(kind));
  Key key;
  key.hi = Fnv1aBytes(ids, len * sizeof(int32_t), seed);
  key.lo = Fnv1aBytes(ids, len * sizeof(int32_t),
                      HashCombine(seed, 0xA076'1D64'78BD'642FULL));
  return key;
}

bool EncodeCache::Lookup(const Key& key, la::Matrix* out) {
  if (Probe(key, out)) return true;
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.misses;
  return false;
}

bool EncodeCache::Probe(const Key& key, la::Matrix* out) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      *out = it->second->second;
      ++stats_.memory_hits;
      return true;
    }
  }
  if (!dir_.empty() && LoadFromDisk(key, out)) {
    InsertMemory(key, *out);
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.disk_hits;
    return true;
  }
  return false;
}

void EncodeCache::Insert(const Key& key, const la::Matrix& value) {
  if (!dir_.empty()) StoreToDisk(key, value);
  InsertMemory(key, value);
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.inserts;
}

void EncodeCache::InsertMemory(const Key& key, la::Matrix value) {
  const size_t entry_bytes = EntryBytes(value);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Refresh (identical content in practice; keyed by content hash).
    bytes_ -= EntryBytes(it->second->second);
    it->second->second = std::move(value);
    bytes_ += entry_bytes;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (entry_bytes > max_bytes_) return;  // would evict itself immediately
  lru_.emplace_front(key, std::move(value));
  index_[key] = lru_.begin();
  bytes_ += entry_bytes;
  while (bytes_ > max_bytes_ && !lru_.empty()) {
    bytes_ -= EntryBytes(lru_.back().second);
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void EncodeCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

EncodeCache::Stats EncodeCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t EncodeCache::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

std::string EncodeCache::EntryPath(const Key& key) const {
  return dir_ + "/enc_" + HashToHex(key.hi) + HashToHex(key.lo) + ".bin";
}

bool EncodeCache::LoadFromDisk(const Key& key, la::Matrix* out) {
  const std::string path = EntryPath(key);
  StatusOr<BinaryReader> opened =
      BinaryReader::OpenArtifact(env_, path, kEncodeCacheMagic);
  if (!opened.ok()) {
    if (opened.status().code() == StatusCode::kUnavailable) return false;
    // Present but unreadable (torn write, bit rot): quarantine so the bad
    // bytes stay inspectable, then treat as a miss — the caller simply
    // re-encodes and overwrites.
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.disk_errors;
    if (!env_->Rename(path, path + ".corrupt").ok()) (void)env_->Delete(path);
    return false;
  }
  BinaryReader reader = std::move(opened).value();
  uint64_t hi = 0, lo = 0, rows = 0, cols = 0;
  std::vector<float> values;
  Status status = reader.Read(&hi);
  if (status.ok()) status = reader.Read(&lo);
  if (status.ok()) status = reader.Read(&rows);
  if (status.ok()) status = reader.Read(&cols);
  if (status.ok()) status = reader.Read(&values);
  if (status.ok()) status = reader.Finish();
  // The CRC already passed, so these only fail on a crafted or truncated
  // payload; the shape cross-checks bound allocation by the file size.
  const bool plausible =
      status.ok() && hi == key.hi && lo == key.lo && rows > 0 && cols > 0 &&
      values.size() / cols == rows && values.size() % cols == 0;
  if (!plausible) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.disk_errors;
    if (!env_->Rename(path, path + ".corrupt").ok()) (void)env_->Delete(path);
    return false;
  }
  la::Matrix m(static_cast<size_t>(rows), static_cast<size_t>(cols));
  std::memcpy(m.data(), values.data(), values.size() * sizeof(float));
  *out = std::move(m);
  return true;
}

void EncodeCache::StoreToDisk(const Key& key, const la::Matrix& value) {
  BinaryWriter writer;
  writer.WriteU64(key.hi);
  writer.WriteU64(key.lo);
  writer.WriteU64(value.rows());
  writer.WriteU64(value.cols());
  std::vector<float> values(value.data(), value.data() + value.size());
  writer.WriteFloats(values);
  const Status status =
      writer.FlushToEnv(env_, EntryPath(key), kEncodeCacheMagic);
  if (!status.ok()) {
    // Never fatal — the entry still serves from memory; the next run
    // re-encodes. Counted so tests and operators can see the drops.
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.disk_errors;
  }
}

std::shared_ptr<EncodeCache> EncodeCache::SharedFromEnv() {
  static const std::shared_ptr<EncodeCache> shared = [] {
    const char* value = std::getenv("STM_ENCODE_CACHE");
    if (value == nullptr || value[0] == '\0' ||
        std::strcmp(value, "0") == 0) {
      return std::shared_ptr<EncodeCache>();
    }
    Config config;
    // Saturating multiply: a huge STM_ENCODE_CACHE_MB clamps to an
    // effectively unbounded cache instead of wrapping size_t and
    // silently configuring a tiny one.
    const size_t default_mb = config.max_bytes / (1024 * 1024);
    const size_t mb = ParseSizeEnv("STM_ENCODE_CACHE_MB", default_mb, 1,
                                   std::numeric_limits<size_t>::max());
    config.max_bytes = SaturatingMulSize(mb, size_t{1024} * 1024);
    if (std::strcmp(value, "mem") != 0) config.dir = value;
    return std::make_shared<EncodeCache>(config);
  }();
  return shared;
}

ScopedEncodeCache::ScopedEncodeCache(MiniLm* model, size_t max_bytes)
    : model_(model) {
  cache_ = model_->encode_cache();
  if (cache_ == nullptr) {
    EncodeCache::Config config;
    config.max_bytes = max_bytes;
    cache_ = std::make_shared<EncodeCache>(config);
    model_->SetEncodeCache(cache_);
    installed_ = true;
  }
}

ScopedEncodeCache::~ScopedEncodeCache() {
  if (installed_) model_->SetEncodeCache(nullptr);
}

}  // namespace stm::plm
