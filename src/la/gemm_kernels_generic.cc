// Portable micro-kernel build: compiled with the project's baseline
// architecture flags. The dispatch in gemm_kernels.cc falls back to this
// namespace when no wider ISA build is available at runtime.

#define STM_GEMM_KERNEL_NAMESPACE generic
#define STM_GEMM_KERNEL_NAME "generic"
#include "la/gemm_kernels_impl.h"
