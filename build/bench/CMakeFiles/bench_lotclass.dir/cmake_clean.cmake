file(REMOVE_RECURSE
  "CMakeFiles/bench_lotclass.dir/bench_lotclass.cc.o"
  "CMakeFiles/bench_lotclass.dir/bench_lotclass.cc.o.d"
  "bench_lotclass"
  "bench_lotclass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lotclass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
