// Tests for common/env_parse.h: every STM_* knob parser must accept valid
// tokens, reject garbage (trailing junk, signs, overflow, NaN/Inf,
// out-of-range, unknown enum tokens) by falling back to the default, and
// never crash or silently mis-parse. Built into stm_serve_tests (ctest
// label "serve") because the serving knobs were the trigger for hardening
// the parsing.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "common/env_parse.h"
#include "serve/serve.h"

namespace stm {
namespace {

// Sets an environment variable for one test and restores the previous
// value (or unsets) on destruction, so tests can't leak knobs into each
// other.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    if (value != nullptr) {
      ::setenv(name, value, /*overwrite=*/1);
    } else {
      ::unsetenv(name);
    }
  }

  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), /*overwrite=*/1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  bool had_old_ = false;
  std::string old_;
};

constexpr const char* kVar = "STM_TEST_ENV_PARSE";

// ---- ParseSizeEnv ----

TEST(ParseSizeEnvTest, UnsetAndEmptyReturnFallback) {
  {
    ScopedEnv env(kVar, nullptr);
    EXPECT_EQ(ParseSizeEnv(kVar, 7, 0, 100), 7u);
  }
  {
    ScopedEnv env(kVar, "");
    EXPECT_EQ(ParseSizeEnv(kVar, 7, 0, 100), 7u);
  }
}

TEST(ParseSizeEnvTest, ValidTokensParse) {
  {
    ScopedEnv env(kVar, "0");
    EXPECT_EQ(ParseSizeEnv(kVar, 7, 0, 100), 0u);
  }
  {
    ScopedEnv env(kVar, "42");
    EXPECT_EQ(ParseSizeEnv(kVar, 7, 0, 100), 42u);
  }
  {
    ScopedEnv env(kVar, "100");  // inclusive max
    EXPECT_EQ(ParseSizeEnv(kVar, 7, 0, 100), 100u);
  }
}

TEST(ParseSizeEnvTest, GarbageFallsBack) {
  for (const char* bad : {"abc", "12abc", "1.5", " 12", "12 ", "0x10",
                          "twelve", "-5", "+5"}) {
    ScopedEnv env(kVar, bad);
    EXPECT_EQ(ParseSizeEnv(kVar, 7, 0, 100), 7u) << "token: " << bad;
  }
}

TEST(ParseSizeEnvTest, OverflowFallsBack) {
  // Larger than any uint64: strtoull saturates with ERANGE, which must be
  // detected rather than returned.
  ScopedEnv env(kVar, "99999999999999999999999999999999");
  EXPECT_EQ(ParseSizeEnv(kVar, 7, 0, std::numeric_limits<size_t>::max()),
            7u);
}

TEST(ParseSizeEnvTest, OutOfRangeFallsBack) {
  {
    ScopedEnv env(kVar, "3");
    EXPECT_EQ(ParseSizeEnv(kVar, 7, 4, 100), 7u);  // below min
  }
  {
    ScopedEnv env(kVar, "101");
    EXPECT_EQ(ParseSizeEnv(kVar, 7, 4, 100), 7u);  // above max
  }
}

// ---- ParseFloatEnv ----

TEST(ParseFloatEnvTest, ValidTokensParse) {
  {
    ScopedEnv env(kVar, "0.25");
    EXPECT_FLOAT_EQ(ParseFloatEnv(kVar, 1.0f, 0.0f, 2.0f), 0.25f);
  }
  {
    ScopedEnv env(kVar, "2");
    EXPECT_FLOAT_EQ(ParseFloatEnv(kVar, 1.0f, 0.0f, 2.0f), 2.0f);
  }
  {
    ScopedEnv env(kVar, "1e-1");
    EXPECT_FLOAT_EQ(ParseFloatEnv(kVar, 1.0f, 0.0f, 2.0f), 0.1f);
  }
}

TEST(ParseFloatEnvTest, GarbageFallsBack) {
  for (const char* bad : {"abc", "0.5x", "1.2.3", "", " 0.5", "--1"}) {
    ScopedEnv env(kVar, bad);
    EXPECT_FLOAT_EQ(ParseFloatEnv(kVar, 1.0f, 0.0f, 2.0f), 1.0f)
        << "token: " << bad;
  }
}

TEST(ParseFloatEnvTest, NonFiniteFallsBack) {
  for (const char* bad : {"nan", "NaN", "inf", "-inf", "INFINITY", "1e99"}) {
    // 1e99 overflows float to +inf via strtof's ERANGE path.
    ScopedEnv env(kVar, bad);
    EXPECT_FLOAT_EQ(ParseFloatEnv(kVar, 1.0f, -10.0f, 10.0f), 1.0f)
        << "token: " << bad;
  }
}

TEST(ParseFloatEnvTest, OutOfRangeFallsBack) {
  {
    ScopedEnv env(kVar, "-0.1");
    EXPECT_FLOAT_EQ(ParseFloatEnv(kVar, 0.5f, 0.0f, 1.0f), 0.5f);
  }
  {
    ScopedEnv env(kVar, "1.5");
    EXPECT_FLOAT_EQ(ParseFloatEnv(kVar, 0.5f, 0.0f, 1.0f), 0.5f);
  }
}

// ---- ParseBoolEnv ----

TEST(ParseBoolEnvTest, AcceptedSpellings) {
  for (const char* yes : {"1", "true", "TRUE", "on", "On", "yes"}) {
    ScopedEnv env(kVar, yes);
    EXPECT_TRUE(ParseBoolEnv(kVar, false)) << "token: " << yes;
  }
  for (const char* no : {"0", "false", "False", "off", "OFF", "no"}) {
    ScopedEnv env(kVar, no);
    EXPECT_FALSE(ParseBoolEnv(kVar, true)) << "token: " << no;
  }
}

TEST(ParseBoolEnvTest, GarbageFallsBack) {
  for (const char* bad : {"2", "yep", "truee", "10", "-1", "y"}) {
    ScopedEnv env(kVar, bad);
    EXPECT_FALSE(ParseBoolEnv(kVar, false)) << "token: " << bad;
    EXPECT_TRUE(ParseBoolEnv(kVar, true)) << "token: " << bad;
  }
}

// ---- ParseEnumEnv ----

TEST(ParseEnumEnvTest, MatchesAndFallsBack) {
  const std::vector<std::string_view> values = {"perdoc", "padded",
                                                "bucketed"};
  {
    ScopedEnv env(kVar, "padded");
    EXPECT_EQ(ParseEnumEnv(kVar, values, 2), 1u);
  }
  {
    ScopedEnv env(kVar, "bucket");  // prefix is not a match
    EXPECT_EQ(ParseEnumEnv(kVar, values, 2), 2u);
  }
  {
    ScopedEnv env(kVar, nullptr);
    EXPECT_EQ(ParseEnumEnv(kVar, values, 0), 0u);
  }
}

// ---- SaturatingMulSize ----

TEST(SaturatingMulSizeTest, NormalAndOverflow) {
  EXPECT_EQ(SaturatingMulSize(64, 1024 * 1024), size_t{64} << 20);
  EXPECT_EQ(SaturatingMulSize(0, std::numeric_limits<size_t>::max()), 0u);
  // The STM_ENCODE_CACHE_MB wrap case: a huge MB count must clamp, not
  // wrap to a tiny byte budget.
  EXPECT_EQ(SaturatingMulSize(std::numeric_limits<size_t>::max() / 2,
                              1024 * 1024),
            std::numeric_limits<size_t>::max());
  EXPECT_EQ(SaturatingMulSize(std::numeric_limits<size_t>::max(),
                              std::numeric_limits<size_t>::max()),
            std::numeric_limits<size_t>::max());
}

// ---- the serve knobs end-to-end ----

TEST(ServeOptionsFromEnvTest, DefaultsWhenUnset) {
  ScopedEnv a("STM_SERVE_MAX_BATCH", nullptr);
  ScopedEnv b("STM_SERVE_DEADLINE_MS", nullptr);
  ScopedEnv c("STM_SERVE_QUEUE_DEPTH", nullptr);
  ScopedEnv d("STM_SERVE_WORKERS", nullptr);
  const serve::ServeOptions options = serve::ServeOptionsFromEnv();
  EXPECT_EQ(options.max_batch, 32u);
  EXPECT_DOUBLE_EQ(options.deadline_ms, 2.0);
  EXPECT_EQ(options.queue_depth, 256u);
  EXPECT_EQ(options.workers, 2u);
}

TEST(ServeOptionsFromEnvTest, ValidKnobsApply) {
  ScopedEnv a("STM_SERVE_MAX_BATCH", "8");
  ScopedEnv b("STM_SERVE_DEADLINE_MS", "0.5");
  ScopedEnv c("STM_SERVE_QUEUE_DEPTH", "16");
  ScopedEnv d("STM_SERVE_WORKERS", "1");
  const serve::ServeOptions options = serve::ServeOptionsFromEnv();
  EXPECT_EQ(options.max_batch, 8u);
  EXPECT_DOUBLE_EQ(options.deadline_ms, 0.5);
  EXPECT_EQ(options.queue_depth, 16u);
  EXPECT_EQ(options.workers, 1u);
}

TEST(ServeOptionsFromEnvTest, GarbageKnobsKeepDefaults) {
  ScopedEnv a("STM_SERVE_MAX_BATCH", "8k");
  ScopedEnv b("STM_SERVE_DEADLINE_MS", "nan");
  ScopedEnv c("STM_SERVE_QUEUE_DEPTH", "0");  // below the minimum of 1
  ScopedEnv d("STM_SERVE_WORKERS", "-2");
  const serve::ServeOptions options = serve::ServeOptionsFromEnv();
  EXPECT_EQ(options.max_batch, 32u);
  EXPECT_DOUBLE_EQ(options.deadline_ms, 2.0);
  EXPECT_EQ(options.queue_depth, 256u);
  EXPECT_EQ(options.workers, 2u);
}

}  // namespace
}  // namespace stm
