#include "core/xclass.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "cluster/cluster.h"
#include "common/check.h"
#include "index/ann.h"
#include "nn/text_classifier.h"
#include "plm/encode_cache.h"
#include "text/vocabulary.h"

namespace stm::core {

XClass::XClass(const text::Corpus& corpus, plm::MiniLm* model,
               const XClassConfig& config)
    : corpus_(corpus), model_(model), config_(config) {
  STM_CHECK(model != nullptr);
}

std::vector<int> XClass::Run(
    const std::vector<std::vector<int32_t>>& label_names) {
  const size_t num_classes = label_names.size();
  STM_CHECK_EQ(num_classes, corpus_.num_labels());
  const size_t dim = model_->config().dim;

  // The hidden-state pass below and AverageDocReps' PoolBatch cover the
  // same documents; with a cache in scope the pooled vectors are derived
  // from the cached hidden rows instead of a second full encode.
  plm::ScopedEncodeCache encode_cache(model_);

  // ---- one encoding pass: cache hidden states, accumulate static word
  //      representations (mean contextual vector per word) ----
  std::vector<la::Matrix> hidden_cache(corpus_.num_docs());
  const size_t vocab_size = corpus_.vocab().size();
  la::Matrix word_sum(vocab_size, dim);
  std::vector<int32_t> word_count(vocab_size, 0);
  {
    // Parallel encoding pass (empty docs keep an empty cache entry, as
    // before); the word-sum accumulation below stays serial in d-order so
    // the float sums match the single-threaded path exactly.
    std::vector<size_t> doc_index;
    std::vector<std::vector<int32_t>> to_encode;
    for (size_t d = 0; d < corpus_.num_docs(); ++d) {
      if (corpus_.docs()[d].tokens.empty()) continue;
      doc_index.push_back(d);
      to_encode.push_back(corpus_.docs()[d].tokens);
    }
    std::vector<la::Matrix> encoded = model_->EncodeBatch(to_encode);
    for (size_t i = 0; i < doc_index.size(); ++i) {
      hidden_cache[doc_index[i]] = std::move(encoded[i]);
    }
  }
  for (size_t d = 0; d < corpus_.num_docs(); ++d) {
    const auto& tokens = corpus_.docs()[d].tokens;
    if (tokens.empty()) continue;
    const size_t len = hidden_cache[d].rows();
    for (size_t t = 0; t < len; ++t) {
      const size_t id = static_cast<size_t>(tokens[t]);
      if (tokens[t] < text::kNumSpecialTokens) continue;
      if (word_count[id] >=
          static_cast<int32_t>(config_.occurrences_per_word)) {
        continue;
      }
      la::Axpy(1.0f, hidden_cache[d].Row(t), word_sum.Row(id), dim);
      word_count[id]++;
    }
  }
  la::Matrix word_reps = word_sum;
  la::NormalizeRows(word_reps);

  // Frequent words are candidates for class-rep absorption.
  const std::vector<int64_t> counts = corpus_.TokenCounts();
  std::vector<int32_t> frequent;
  for (size_t id = text::kNumSpecialTokens; id < vocab_size; ++id) {
    if (counts[id] >= 8 && word_count[id] > 0) {
      frequent.push_back(static_cast<int32_t>(id));
    }
  }

  // ---- class representations with iterative absorption ----
  // The absorption argmax scans every frequent word per round; gather the
  // frequent rows once and let the batched top-k pick the best
  // not-yet-absorbed candidate (k = absorbed + 1 guarantees one survives
  // the skip). Ascending-id ties match the old first-max scan because
  // `frequent` is built in ascending id order.
  la::Matrix frequent_reps(frequent.size(), dim);
  for (size_t i = 0; i < frequent.size(); ++i) {
    frequent_reps.SetRow(i,
                         word_reps.RowVec(static_cast<size_t>(frequent[i])));
  }
  class_reps_ = la::Matrix(num_classes, dim);
  for (size_t c = 0; c < num_classes; ++c) {
    std::vector<float> rep(dim, 0.0f);
    for (int32_t id : label_names[c]) {
      la::Axpy(1.0f, word_reps.Row(static_cast<size_t>(id)), rep.data(),
               dim);
    }
    la::NormalizeInPlace(rep.data(), dim);
    std::vector<int32_t> absorbed = label_names[c];
    la::Matrix query(1, dim);
    for (size_t round = 1; round <= config_.class_rep_words; ++round) {
      query.SetRow(0, rep);
      const std::vector<std::vector<ann::Neighbor>> top = ann::TopKSimilar(
          query, frequent_reps, absorbed.size() + 1);
      int32_t best_id = -1;
      for (const ann::Neighbor& n : top[0]) {
        const int32_t id = frequent[n.id];
        if (std::find(absorbed.begin(), absorbed.end(), id) ==
            absorbed.end()) {
          best_id = id;
          break;
        }
      }
      if (best_id < 0) break;
      absorbed.push_back(best_id);
      // Harmonic weight 1/(round+1), as in the paper.
      la::Axpy(1.0f / static_cast<float>(round + 1),
               word_reps.Row(static_cast<size_t>(best_id)), rep.data(), dim);
      la::NormalizeInPlace(rep.data(), dim);
    }
    class_reps_.SetRow(c, rep);
  }

  // ---- class-oriented document representations ----
  doc_reps_ = la::Matrix(corpus_.num_docs(), dim);
  for (size_t d = 0; d < corpus_.num_docs(); ++d) {
    const la::Matrix& hidden = hidden_cache[d];
    if (hidden.rows() == 0) continue;
    const size_t len = hidden.rows();
    // Attention: softmax over (max class similarity / temperature). One
    // batched top-1 over all tokens replaces the per-(token, class)
    // scalar cosines.
    const std::vector<std::vector<ann::Neighbor>> best_class =
        ann::TopKSimilar(hidden, class_reps_, 1);
    std::vector<float> weights(len);
    float max_weight = -1e30f;
    for (size_t t = 0; t < len; ++t) {
      weights[t] = best_class[t][0].score / config_.attention_temperature;
      max_weight = std::max(max_weight, weights[t]);
    }
    float sum = 0.0f;
    for (float& w : weights) {
      w = std::exp(w - max_weight);
      sum += w;
    }
    float* rep = doc_reps_.Row(d);
    for (size_t t = 0; t < len; ++t) {
      la::Axpy(weights[t] / sum, hidden.Row(t), rep, dim);
    }
    la::NormalizeInPlace(rep, dim);
  }

  // ---- class-prior GMM alignment ----
  cluster::GmmOptions gmm_options;
  gmm_options.seed = config_.seed;
  const cluster::GmmResult gmm =
      cluster::GmmFit(doc_reps_, class_reps_, gmm_options);
  gmm_assignment_ = gmm.assignment;

  // ---- confidence-selected classifier training ----
  std::vector<std::pair<float, size_t>> confidence;
  for (size_t d = 0; d < corpus_.num_docs(); ++d) {
    const float* row = gmm.posteriors.Row(d);
    confidence.emplace_back(*std::max_element(row, row + num_classes), d);
  }
  std::sort(confidence.rbegin(), confidence.rend());
  const size_t keep = std::max<size_t>(
      num_classes,
      static_cast<size_t>(confidence.size() * config_.confident_fraction));
  std::vector<std::vector<int32_t>> train_docs;
  std::vector<int> train_labels;
  for (size_t i = 0; i < keep && i < confidence.size(); ++i) {
    const size_t d = confidence[i].second;
    train_docs.push_back(corpus_.docs()[d].tokens);
    train_labels.push_back(gmm_assignment_[d]);
  }

  nn::ClassifierConfig clf_config;
  clf_config.vocab_size = vocab_size;
  clf_config.num_classes = num_classes;
  clf_config.seed = config_.seed + 1;
  classifier_ = std::make_shared<nn::BowLogRegClassifier>(clf_config);
  classifier_->Fit(train_docs, train_labels, config_.classifier_epochs);
  std::vector<std::vector<int32_t>> all_docs;
  for (const auto& doc : corpus_.docs()) all_docs.push_back(doc.tokens);
  return classifier_->Predict(all_docs);
}

std::vector<int> XClass::RepOnly() const {
  STM_CHECK_GT(doc_reps_.rows(), 0u) << "Run() must be called first";
  // Batched doc-cluster assignment: one top-1 retrieval over all docs.
  // Zero (empty-doc) rows score 0 against every class and keep class 0,
  // exactly as the scalar scan did.
  std::vector<int> predictions(corpus_.num_docs(), 0);
  const std::vector<std::vector<ann::Neighbor>> top =
      ann::TopKSimilar(doc_reps_, class_reps_, 1);
  for (size_t d = 0; d < corpus_.num_docs(); ++d) {
    predictions[d] = static_cast<int>(top[d][0].id);
  }
  return predictions;
}

std::vector<std::vector<int>> XClass::RunPaths(
    const taxonomy::LabelTree& tree, const std::vector<int>& leaves,
    const std::vector<std::vector<int32_t>>& leaf_label_names) {
  STM_CHECK_EQ(leaves.size(), leaf_label_names.size());
  // Flat leaf-level classification; the label space of `corpus_` must be
  // the leaf space in the same order.
  const std::vector<int> leaf_pred = Run(leaf_label_names);
  std::vector<std::vector<int>> paths(leaf_pred.size());
  for (size_t d = 0; d < leaf_pred.size(); ++d) {
    paths[d] = tree.PathTo(leaves[static_cast<size_t>(leaf_pred[d])]);
  }
  return paths;
}

la::Matrix XClass::AverageDocReps() {
  // Shard-at-a-time pooling; empty docs keep the zero row.
  auto reps = plm::PoolCorpus(*model_, corpus_, /*skip_empty=*/true);
  STM_CHECK(reps.ok()) << reps.status().message();
  return std::move(reps).value();
}

}  // namespace stm::core
