#ifndef STM_CLUSTER_CLUSTER_H_
#define STM_CLUSTER_CLUSTER_H_

#include <cstdint>
#include <vector>

#include "la/matrix.h"

namespace stm::cluster {

// K-means and Gaussian-mixture clustering over dense row vectors.
// ConWea clusters contextualized occurrences of each seed word to split
// senses; X-Class clusters class-oriented document representations with a
// class-prior initialization.

struct KMeansResult {
  la::Matrix centroids;           // [k, d]
  std::vector<int> assignment;    // row -> cluster
  double inertia = 0.0;           // sum of squared distances
};

struct KMeansOptions {
  size_t k = 2;
  int max_iters = 50;
  bool spherical = false;  // cosine distance on normalized vectors
  uint64_t seed = 29;
};

// Abstract random-access row provider, the out-of-core seam for k-means:
// an embedding table too large for RAM implements ReadRows by decoding
// the requested rows (e.g. encoding one corpus shard at a time) while the
// in-RAM path memcpys out of a matrix.
class RowSource {
 public:
  virtual ~RowSource() = default;
  virtual size_t rows() const = 0;
  virtual size_t cols() const = 0;
  // Copies rows [begin, end) row-major into `out` ((end-begin)*cols()
  // floats). May be called from the streaming loop with block-sized
  // ranges or with single rows (centroid fetches).
  virtual void ReadRows(size_t begin, size_t end, float* out) const = 0;
};

// In-RAM adapter; does not own the matrix.
class MatrixRowSource : public RowSource {
 public:
  explicit MatrixRowSource(const la::Matrix& m) : m_(&m) {}
  size_t rows() const override;
  size_t cols() const override;
  void ReadRows(size_t begin, size_t end, float* out) const override;

 private:
  const la::Matrix* m_;
};

// Lloyd's algorithm with k-means++ seeding.
KMeansResult KMeans(const la::Matrix& data, const KMeansOptions& options);

// Streaming Lloyd's over a RowSource: every pass (seeding scans,
// assignment/update iterations) pulls fixed-size row blocks, so resident
// memory is one block plus the O(n) assignment/distance arrays — never
// the full table. The block size is a multiple of the parallel grain and
// blocks start on grain boundaries, so the chunk decomposition (and with
// it every chunk-ordered float reduction) is exactly the in-RAM one:
// KMeansStream is bit-identical to KMeans on the same rows at any block
// size and thread count. KMeans itself delegates here via MatrixRowSource.
KMeansResult KMeansStream(const RowSource& source,
                          const KMeansOptions& options);

// Subsampling stride Silhouette() uses so at most `max_points` points
// enter the O(sample^2) distance pass (ceiling division; exposed for the
// regression test on the sample size).
size_t SilhouetteStride(size_t n, size_t max_points);

// Mean silhouette coefficient of a clustering (subsampled for large n).
double Silhouette(const la::Matrix& data, const std::vector<int>& assignment,
                  size_t k, size_t max_points = 400);

struct GmmResult {
  la::Matrix means;               // [k, d]
  std::vector<float> variances;   // shared spherical variance per cluster
  std::vector<float> weights;     // mixing proportions
  la::Matrix posteriors;          // [n, k]
  std::vector<int> assignment;    // argmax posterior
};

struct GmmOptions {
  int max_iters = 40;
  float min_variance = 1e-4f;
  uint64_t seed = 31;
};

// Spherical-covariance Gaussian mixture fit with EM, initialized from
// `init_means` (X-Class passes class representations so cluster c stays
// aligned with class c).
GmmResult GmmFit(const la::Matrix& data, const la::Matrix& init_means,
                 const GmmOptions& options);

// Greedy one-to-one alignment between `k` clusters and `k` gold classes
// maximizing overlap counts. Returns cluster -> class. Used to score
// unsupervised clusterings (tutorial Figure 2).
std::vector<int> AlignClusters(const std::vector<int>& clusters,
                               const std::vector<int>& gold, size_t k);

}  // namespace stm::cluster

#endif  // STM_CLUSTER_CLUSTER_H_
