#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "la/matrix.h"

namespace stm::la {
namespace {

TEST(MatrixTest, ConstructAndAccess) {
  Matrix m(2, 3, 1.5f);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_FLOAT_EQ(m.At(1, 2), 1.5f);
  m.At(0, 1) = 7.0f;
  EXPECT_FLOAT_EQ(m.Row(0)[1], 7.0f);
}

TEST(MatrixTest, SetRowAndRowVec) {
  Matrix m(2, 2);
  m.SetRow(1, {3.0f, 4.0f});
  EXPECT_EQ(m.RowVec(1), (std::vector<float>{3.0f, 4.0f}));
}

TEST(VectorOpsTest, DotNormCosine) {
  const float a[] = {3.0f, 4.0f};
  const float b[] = {4.0f, 3.0f};
  EXPECT_FLOAT_EQ(Dot(a, b, 2), 24.0f);
  EXPECT_FLOAT_EQ(Norm(a, 2), 5.0f);
  EXPECT_NEAR(Cosine(a, b, 2), 24.0f / 25.0f, 1e-6f);
}

TEST(VectorOpsTest, NormalizeInPlace) {
  float v[] = {3.0f, 4.0f};
  NormalizeInPlace(v, 2);
  EXPECT_NEAR(Norm(v, 2), 1.0f, 1e-6f);
  float zero[] = {0.0f, 0.0f};
  NormalizeInPlace(zero, 2);  // must not NaN
  EXPECT_FLOAT_EQ(zero[0], 0.0f);
}

TEST(VectorOpsTest, MeanOf) {
  std::vector<float> a = {1.0f, 2.0f};
  std::vector<float> b = {3.0f, 4.0f};
  auto mean = MeanOf({a.data(), b.data()}, 2);
  EXPECT_FLOAT_EQ(mean[0], 2.0f);
  EXPECT_FLOAT_EQ(mean[1], 3.0f);
}

TEST(GemmTest, SmallProduct) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  float av = 1.0f;
  for (size_t i = 0; i < a.size(); ++i) a.data()[i] = av++;
  for (size_t i = 0; i < b.size(); ++i) b.data()[i] = 1.0f;
  Matrix c;
  Gemm(a, b, c);
  EXPECT_FLOAT_EQ(c.At(0, 0), 6.0f);
  EXPECT_FLOAT_EQ(c.At(1, 1), 15.0f);
}

TEST(GemmTest, TransposedVariantsAgree) {
  Rng rng(1);
  Matrix a(4, 3);
  Matrix b(3, 5);
  for (size_t i = 0; i < a.size(); ++i) {
    a.data()[i] = static_cast<float>(rng.Normal());
  }
  for (size_t i = 0; i < b.size(); ++i) {
    b.data()[i] = static_cast<float>(rng.Normal());
  }
  Matrix c_ref;
  Gemm(a, b, c_ref);

  // GemmBt: a * (b^T)^T with bt = b^T stored as [5 x 3].
  Matrix bt(5, 3);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 5; ++j) bt.At(j, i) = b.At(i, j);
  }
  Matrix c1;
  GemmBt(a, bt, c1);
  for (size_t i = 0; i < c_ref.size(); ++i) {
    EXPECT_NEAR(c1.data()[i], c_ref.data()[i], 1e-5f);
  }

  // GemmAt: (a^T)^T * b with at = a^T stored as [3 x 4].
  Matrix at(3, 4);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 3; ++j) at.At(j, i) = a.At(i, j);
  }
  Matrix c2;
  GemmAt(at, b, c2);
  for (size_t i = 0; i < c_ref.size(); ++i) {
    EXPECT_NEAR(c2.data()[i], c_ref.data()[i], 1e-5f);
  }
}

TEST(GemmTest, AccumulateAddsToExisting) {
  Matrix a(1, 1, 2.0f);
  Matrix b(1, 1, 3.0f);
  Matrix c(1, 1, 10.0f);
  Gemm(a, b, c, /*accumulate=*/true);
  EXPECT_FLOAT_EQ(c.At(0, 0), 16.0f);
  Gemm(a, b, c, /*accumulate=*/false);
  EXPECT_FLOAT_EQ(c.At(0, 0), 6.0f);
}

TEST(NormalizeRowsTest, AllRowsUnit) {
  Rng rng(2);
  Matrix m(5, 4);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.Normal());
  }
  NormalizeRows(m);
  for (size_t r = 0; r < m.rows(); ++r) {
    EXPECT_NEAR(Norm(m.Row(r), m.cols()), 1.0f, 1e-5f);
  }
}

TEST(PcaTest, RecoversDominantDirection) {
  // Points spread along (1, 1, 0) with small noise: the first PC should
  // separate the two ends.
  Rng rng(3);
  const size_t n = 200;
  Matrix data(n, 3);
  std::vector<float> ts(n);
  for (size_t i = 0; i < n; ++i) {
    const float t = static_cast<float>(rng.Uniform(-5.0, 5.0));
    ts[i] = t;
    data.At(i, 0) = t + static_cast<float>(rng.Normal(0.0, 0.05));
    data.At(i, 1) = t + static_cast<float>(rng.Normal(0.0, 0.05));
    data.At(i, 2) = static_cast<float>(rng.Normal(0.0, 0.05));
  }
  Matrix projected = Pca(data, 2);
  ASSERT_EQ(projected.rows(), n);
  ASSERT_EQ(projected.cols(), 2u);
  // |corr(first PC, t)| should be ~1.
  double num = 0.0;
  double den_a = 0.0;
  double den_b = 0.0;
  for (size_t i = 0; i < n; ++i) {
    num += projected.At(i, 0) * ts[i];
    den_a += projected.At(i, 0) * projected.At(i, 0);
    den_b += ts[i] * ts[i];
  }
  EXPECT_GT(std::fabs(num) / std::sqrt(den_a * den_b), 0.99);
}

}  // namespace
}  // namespace stm::la
