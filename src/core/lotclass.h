#ifndef STM_CORE_LOTCLASS_H_
#define STM_CORE_LOTCLASS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/self_training.h"
#include "plm/minilm.h"
#include "text/corpus.h"

namespace stm::core {

// LOTClass (Meng et al., EMNLP'20): text classification using label names
// only, through the MLM head of a pre-trained LM.
//   1. Category vocabulary: run the masked LM over occurrences of each
//      label name; aggregate its top replacement words into a per-class
//      topic vocabulary (stopwords and cross-class words removed).
//   2. Masked category prediction (MCP): a token occurrence is "topic
//      indicative" for class c when enough of its top replacement words
//      fall in c's vocabulary; documents with indicative tokens get
//      pseudo-labels.
//   3. Train a classifier on the pseudo-labeled documents, then
//      self-train on the whole corpus.
struct LotClassConfig {
  size_t name_occurrences = 50;     // label-name contexts sampled
  size_t replacements_topk = 30;    // MLM top-k per context
  size_t category_vocab_size = 40;  // words kept per class
  size_t mcp_topk = 20;             // replacements checked per token
  size_t mcp_min_overlap = 4;       // overlap for "topic indicative"
  size_t mcp_docs = 0;              // docs scanned by MCP (0 = all)
  int classifier_epochs = 8;
  std::string classifier = "bow";
  bool enable_self_training = true;  // "Ours w/o. self train" ablation
  SelfTrainConfig self_train;
  uint64_t seed = 81;
};

class LotClass {
 public:
  LotClass(const text::Corpus& corpus, plm::MiniLm* model,
           const LotClassConfig& config);

  // Full pipeline from per-class label-name tokens (usually one token).
  std::vector<int> Run(const std::vector<std::vector<int32_t>>& label_names);

  // Category vocabularies built in the last Run (per class).
  const std::vector<std::vector<int32_t>>& category_vocab() const {
    return category_vocab_;
  }

  // Builds only the category vocabulary (step 1), exposed for tests and
  // for the tutorial's Table 1 qualitative reproduction.
  void BuildCategoryVocab(
      const std::vector<std::vector<int32_t>>& label_names);

 private:
  const text::Corpus& corpus_;
  plm::MiniLm* model_;
  LotClassConfig config_;
  std::vector<std::vector<int32_t>> category_vocab_;
};

}  // namespace stm::core

#endif  // STM_CORE_LOTCLASS_H_
