#include "text/corpus_store.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"
#include "common/env_parse.h"
#include "common/hash.h"
#include "common/serialize.h"
#include "common/string_util.h"

namespace stm::text {

namespace {

constexpr char kManifestFile[] = "manifest.stmc";
constexpr char kDictFile[] = "dict.stmc";
constexpr char kShardPrefix[] = "shard-";
constexpr char kShardSuffix[] = ".stmc";
constexpr char kCountsSuffix[] = ".counts.stmc";

std::string JoinPath(const std::string& dir, const std::string& name) {
  if (dir.empty()) return name;
  if (dir.back() == '/') return dir + name;
  return dir + "/" + name;
}

std::string ShardFileName(size_t index) {
  return StrFormat("%s%06zu%s", kShardPrefix, index, kShardSuffix);
}

// "shard-000123.stmc" -> "shard-000123.counts.stmc"
std::string SidecarNameFor(const std::string& shard_file) {
  return shard_file.substr(0, shard_file.size() - std::strlen(kShardSuffix)) +
         kCountsSuffix;
}

bool IsShardFileName(const std::string& name) {
  if (name.size() <= std::strlen(kShardPrefix) + std::strlen(kShardSuffix)) {
    return false;
  }
  if (name.compare(0, std::strlen(kShardPrefix), kShardPrefix) != 0) {
    return false;
  }
  if (name.size() >= std::strlen(kCountsSuffix) &&
      name.compare(name.size() - std::strlen(kCountsSuffix),
                   std::strlen(kCountsSuffix), kCountsSuffix) == 0) {
    return false;
  }
  return name.compare(name.size() - std::strlen(kShardSuffix),
                      std::strlen(kShardSuffix), kShardSuffix) == 0;
}

// Zero-copy decode of a shard payload. Pointers alias `payload`; the u64
// offset arrays land 8-aligned and the i32 arrays 4-aligned because every
// field before them is 8 bytes wide and both backing stores (a page-
// aligned mapping, a malloc'd heap copy) are at least 8-aligned.
struct ParsedShard {
  uint64_t doc_count = 0;
  uint64_t first_doc = 0;
  const uint64_t* doc_offsets = nullptr;    // doc_count + 1 entries
  const uint64_t* label_offsets = nullptr;  // doc_count + 1 entries
  const int32_t* tokens = nullptr;
  uint64_t token_count = 0;
  const int32_t* labels = nullptr;
  uint64_t label_count = 0;
};

Status ParseShardPayload(std::string_view payload, const std::string& path,
                         ParsedShard* out) {
  const auto corrupt = [&path](const char* what) {
    return CorruptDataError(StrFormat("%s: %s", path.c_str(), what));
  };
  size_t pos = 0;
  const auto read_u64 = [&](uint64_t* value) {
    if (payload.size() - pos < sizeof(uint64_t)) return false;
    std::memcpy(value, payload.data() + pos, sizeof(uint64_t));
    pos += sizeof(uint64_t);
    return true;
  };
  // Length-prefixed array whose elements are `elem` bytes wide; returns the
  // element count and leaves `pos` at the array start.
  const auto read_array = [&](size_t elem, uint64_t* count,
                              const char** base) {
    if (!read_u64(count)) return false;
    if (*count > (payload.size() - pos) / elem) return false;
    *base = payload.data() + pos;
    pos += static_cast<size_t>(*count) * elem;
    return true;
  };

  if (!read_u64(&out->doc_count)) return corrupt("truncated shard header");
  if (!read_u64(&out->first_doc)) return corrupt("truncated shard header");

  uint64_t offset_count = 0;
  const char* base = nullptr;
  if (!read_array(sizeof(uint64_t), &offset_count, &base) ||
      offset_count != out->doc_count + 1) {
    return corrupt("bad doc offset table");
  }
  out->doc_offsets = reinterpret_cast<const uint64_t*>(base);
  if (!read_array(sizeof(uint64_t), &offset_count, &base) ||
      offset_count != out->doc_count + 1) {
    return corrupt("bad label offset table");
  }
  out->label_offsets = reinterpret_cast<const uint64_t*>(base);
  if (!read_array(sizeof(int32_t), &out->token_count, &base)) {
    return corrupt("bad token array");
  }
  out->tokens = reinterpret_cast<const int32_t*>(base);
  if (!read_array(sizeof(int32_t), &out->label_count, &base)) {
    return corrupt("bad label array");
  }
  out->labels = reinterpret_cast<const int32_t*>(base);
  if (pos != payload.size()) return corrupt("trailing bytes in shard");

  // Offset tables must be monotone and land exactly on the array ends.
  if (out->doc_offsets[0] != 0 || out->label_offsets[0] != 0 ||
      out->doc_offsets[out->doc_count] != out->token_count ||
      out->label_offsets[out->doc_count] != out->label_count) {
    return corrupt("offset table does not span arrays");
  }
  for (uint64_t d = 0; d < out->doc_count; ++d) {
    if (out->doc_offsets[d] > out->doc_offsets[d + 1] ||
        out->label_offsets[d] > out->label_offsets[d + 1]) {
      return corrupt("non-monotone offset table");
    }
  }
  return Status::Ok();
}

// Serializes a sidecar (per-shard document frequencies + occurrence
// counts) into `writer`.
void SerializeSidecar(const std::vector<int32_t>& df,
                      const std::vector<int64_t>& counts,
                      BinaryWriter* writer) {
  STM_CHECK_EQ(df.size(), counts.size());
  writer->WriteU64(df.size());
  writer->WriteI32s(df);
  std::vector<uint64_t> raw(counts.size());
  for (size_t i = 0; i < counts.size(); ++i) {
    raw[i] = static_cast<uint64_t>(counts[i]);
  }
  writer->WriteU64s(raw);
}

Status ReadSidecar(Env* env, const std::string& path,
                   std::vector<int32_t>* df, std::vector<int64_t>* counts) {
  STM_ASSIGN_OR_RETURN(
      BinaryReader reader,
      BinaryReader::OpenArtifact(env, path, kCorpusCountsMagic));
  uint64_t size = 0;
  STM_RETURN_IF_ERROR(reader.Read(&size));
  STM_RETURN_IF_ERROR(reader.Read(df));
  std::vector<uint64_t> raw;
  STM_RETURN_IF_ERROR(reader.Read(&raw));
  if (df->size() != size || raw.size() != size) {
    return CorruptDataError(
        StrFormat("%s: sidecar array sizes disagree", path.c_str()));
  }
  counts->resize(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    (*counts)[i] = static_cast<int64_t>(raw[i]);
  }
  return reader.Finish().WithContext(
      StrFormat("reading sidecar %s", path.c_str()));
}

// Recomputes a shard's sidecar straight from its documents.
void ComputeSidecar(const ParsedShard& shard, size_t vocab_size,
                    std::vector<int32_t>* df, std::vector<int64_t>* counts) {
  df->assign(vocab_size, 0);
  counts->assign(vocab_size, 0);
  std::vector<uint64_t> seen(vocab_size, 0);
  for (uint64_t d = 0; d < shard.doc_count; ++d) {
    const uint64_t stamp = d + 1;
    for (uint64_t t = shard.doc_offsets[d]; t < shard.doc_offsets[d + 1];
         ++t) {
      const int32_t id = shard.tokens[t];
      if (id < 0 || static_cast<size_t>(id) >= vocab_size) continue;
      (*counts)[static_cast<size_t>(id)]++;
      if (seen[static_cast<size_t>(id)] != stamp) {
        seen[static_cast<size_t>(id)] = stamp;
        (*df)[static_cast<size_t>(id)]++;
      }
    }
  }
}

struct ManifestShardEntry {
  std::string file;
  uint64_t doc_count = 0;
  uint64_t first_doc = 0;
  uint32_t payload_crc = 0;
};

Status WriteManifest(Env* env, const std::string& dir, uint64_t total_docs,
                     uint64_t vocab_size,
                     const std::vector<ManifestShardEntry>& shards) {
  BinaryWriter writer;
  writer.WriteU64(total_docs);
  writer.WriteU64(vocab_size);
  writer.WriteU64(shards.size());
  for (const ManifestShardEntry& shard : shards) {
    writer.WriteString(shard.file);
    writer.WriteU64(shard.doc_count);
    writer.WriteU64(shard.first_doc);
    writer.WriteU32(shard.payload_crc);
  }
  return writer.FlushToEnv(env, JoinPath(dir, kManifestFile),
                           kCorpusManifestMagic);
}

Status ReadManifest(Env* env, const std::string& dir, uint64_t* total_docs,
                    uint64_t* vocab_size,
                    std::vector<ManifestShardEntry>* shards) {
  STM_ASSIGN_OR_RETURN(
      BinaryReader reader,
      BinaryReader::OpenArtifact(env, JoinPath(dir, kManifestFile),
                                 kCorpusManifestMagic));
  uint64_t shard_count = 0;
  STM_RETURN_IF_ERROR(reader.Read(total_docs));
  STM_RETURN_IF_ERROR(reader.Read(vocab_size));
  STM_RETURN_IF_ERROR(reader.Read(&shard_count));
  shards->clear();
  uint64_t next_doc = 0;
  for (uint64_t i = 0; i < shard_count; ++i) {
    ManifestShardEntry entry;
    STM_RETURN_IF_ERROR(reader.Read(&entry.file));
    STM_RETURN_IF_ERROR(reader.Read(&entry.doc_count));
    STM_RETURN_IF_ERROR(reader.Read(&entry.first_doc));
    STM_RETURN_IF_ERROR(reader.Read(&entry.payload_crc));
    if (entry.first_doc != next_doc || !IsShardFileName(entry.file)) {
      return CorruptDataError(
          StrFormat("%s: inconsistent manifest entry %llu",
                    JoinPath(dir, kManifestFile).c_str(),
                    static_cast<unsigned long long>(i)));
    }
    next_doc += entry.doc_count;
    shards->push_back(std::move(entry));
  }
  if (next_doc != *total_docs) {
    return CorruptDataError(
        StrFormat("%s: manifest doc totals disagree",
                  JoinPath(dir, kManifestFile).c_str()));
  }
  return reader.Finish().WithContext(
      StrFormat("reading manifest %s", JoinPath(dir, kManifestFile).c_str()));
}

Status WriteDict(Env* env, const std::string& dir, const Vocabulary& vocab,
                 const std::vector<std::string>& label_names) {
  BinaryWriter writer;
  writer.WriteU64(vocab.size());
  for (size_t id = 0; id < vocab.size(); ++id) {
    writer.WriteString(vocab.TokenOf(static_cast<int32_t>(id)));
    writer.WriteU64(
        static_cast<uint64_t>(vocab.CountOf(static_cast<int32_t>(id))));
  }
  writer.WriteU64(label_names.size());
  for (const std::string& name : label_names) writer.WriteString(name);
  return writer.FlushToEnv(env, JoinPath(dir, kDictFile), kCorpusDictMagic);
}

Status ReadDict(Env* env, const std::string& dir, Vocabulary* vocab,
                std::vector<std::string>* label_names) {
  const std::string path = JoinPath(dir, kDictFile);
  STM_ASSIGN_OR_RETURN(
      BinaryReader reader,
      BinaryReader::OpenArtifact(env, path, kCorpusDictMagic));
  uint64_t vocab_size = 0;
  STM_RETURN_IF_ERROR(reader.Read(&vocab_size));
  *vocab = Vocabulary();
  if (vocab_size < static_cast<uint64_t>(kNumSpecialTokens)) {
    return CorruptDataError(
        StrFormat("%s: vocabulary smaller than the specials", path.c_str()));
  }
  for (uint64_t id = 0; id < vocab_size; ++id) {
    std::string token;
    uint64_t count = 0;
    STM_RETURN_IF_ERROR(reader.Read(&token));
    STM_RETURN_IF_ERROR(reader.Read(&count));
    if (id < static_cast<uint64_t>(kNumSpecialTokens)) {
      // The specials are implied by the Vocabulary constructor; the store
      // still records them so a mismatch is detected rather than remapped.
      if (token != vocab->TokenOf(static_cast<int32_t>(id))) {
        return CorruptDataError(
            StrFormat("%s: special token mismatch at id %llu", path.c_str(),
                      static_cast<unsigned long long>(id)));
      }
      vocab->AddCount(static_cast<int32_t>(id),
                      static_cast<int64_t>(count));
      continue;
    }
    const int32_t got =
        vocab->AddToken(token, static_cast<int64_t>(count));
    if (static_cast<uint64_t>(got) != id) {
      return CorruptDataError(StrFormat(
          "%s: duplicate or out-of-order token at id %llu", path.c_str(),
          static_cast<unsigned long long>(id)));
    }
  }
  uint64_t label_count = 0;
  STM_RETURN_IF_ERROR(reader.Read(&label_count));
  label_names->clear();
  for (uint64_t i = 0; i < label_count; ++i) {
    std::string name;
    STM_RETURN_IF_ERROR(reader.Read(&name));
    label_names->push_back(std::move(name));
  }
  return reader.Finish().WithContext(
      StrFormat("reading dictionary %s", path.c_str()));
}

}  // namespace

CorpusStoreOptions CorpusStoreOptionsFromEnv() {
  CorpusStoreOptions options;
  options.shard_docs =
      ParseSizeEnv("STM_CORPUS_SHARD_DOCS", options.shard_docs, 1,
                   size_t{1} << 40);
  options.shard_bytes =
      ParseSizeEnv("STM_CORPUS_SHARD_BYTES", options.shard_bytes, 1,
                   size_t{1} << 40);
  options.use_mmap = ParseBoolEnv("STM_CORPUS_MMAP", options.use_mmap);
  return options;
}

CorpusShardWriter::CorpusShardWriter(Env* env, std::string dir,
                                     const CorpusStoreOptions& options)
    : env_(env), dir_(std::move(dir)), options_(options) {
  STM_CHECK(env_ != nullptr);
  STM_CHECK_GE(options_.shard_docs, 1u);
  STM_CHECK_GE(options_.shard_bytes, 1u);
}

void CorpusShardWriter::CountDoc(const int32_t* tokens, size_t num_tokens) {
  const uint64_t stamp = static_cast<uint64_t>(docs_added_) + 1;
  for (size_t t = 0; t < num_tokens; ++t) {
    const int32_t id = tokens[t];
    if (id < 0) continue;
    const size_t idx = static_cast<size_t>(id);
    if (idx >= shard_counts_.size()) {
      shard_counts_.resize(idx + 1, 0);
      shard_df_.resize(idx + 1, 0);
      df_seen_.resize(idx + 1, 0);
    }
    shard_counts_[idx]++;
    if (df_seen_[idx] != stamp) {
      df_seen_[idx] = stamp;
      shard_df_[idx]++;
    }
  }
}

Status CorpusShardWriter::Add(const int32_t* tokens, size_t num_tokens,
                              const int32_t* labels, size_t num_labels) {
  STM_CHECK(!finished_) << "Add after Finish";
  const size_t doc_bytes = (num_tokens + num_labels) * sizeof(int32_t);
  const size_t cur_docs = doc_offsets_.size() - 1;
  const size_t cur_bytes =
      (tokens_.size() + labels_.size()) * sizeof(int32_t);
  if (cur_docs > 0 && (cur_docs + 1 > options_.shard_docs ||
                       cur_bytes + doc_bytes > options_.shard_bytes)) {
    STM_RETURN_IF_ERROR(FlushShard());
  }
  tokens_.insert(tokens_.end(), tokens, tokens + num_tokens);
  labels_.insert(labels_.end(), labels, labels + num_labels);
  doc_offsets_.push_back(tokens_.size());
  label_offsets_.push_back(labels_.size());
  CountDoc(tokens, num_tokens);
  ++docs_added_;
  return Status::Ok();
}

Status CorpusShardWriter::Add(const Document& doc) {
  return Add(doc.tokens.data(), doc.tokens.size(), doc.labels.data(),
             doc.labels.size());
}

Status CorpusShardWriter::FlushShard() {
  const size_t doc_count = doc_offsets_.size() - 1;
  if (doc_count == 0) return Status::Ok();
  if (shards_.empty()) {
    // First flush may happen mid-Add, before Finish ever runs.
    STM_RETURN_IF_ERROR(env_->CreateDir(dir_));
  }
  ShardMeta meta;
  meta.file = ShardFileName(shards_.size());
  meta.doc_count = doc_count;
  meta.first_doc = docs_added_ - doc_count;

  BinaryWriter writer;
  writer.WriteU64(doc_count);
  writer.WriteU64(meta.first_doc);
  writer.WriteU64s(doc_offsets_);
  writer.WriteU64s(label_offsets_);
  writer.WriteI32s(tokens_);
  writer.WriteI32s(labels_);
  meta.payload_crc = Crc32c(writer.buffer());
  STM_RETURN_IF_ERROR(writer.FlushToEnv(env_, JoinPath(dir_, meta.file),
                                        kCorpusShardMagic));

  BinaryWriter sidecar;
  SerializeSidecar(shard_df_, shard_counts_, &sidecar);
  STM_RETURN_IF_ERROR(sidecar.FlushToEnv(
      env_, JoinPath(dir_, SidecarNameFor(meta.file)), kCorpusCountsMagic));

  shards_.push_back(std::move(meta));
  tokens_.clear();
  labels_.clear();
  doc_offsets_.assign(1, 0);
  label_offsets_.assign(1, 0);
  shard_df_.clear();
  shard_counts_.clear();
  df_seen_.clear();
  return Status::Ok();
}

Status CorpusShardWriter::Finish(const Vocabulary& vocab,
                                 const std::vector<std::string>& label_names) {
  STM_CHECK(!finished_) << "Finish called twice";
  STM_RETURN_IF_ERROR(env_->CreateDir(dir_));  // no-op if it exists
  STM_RETURN_IF_ERROR(FlushShard());
  finished_ = true;
  STM_RETURN_IF_ERROR(WriteDict(env_, dir_, vocab, label_names));
  std::vector<ManifestShardEntry> entries;
  entries.reserve(shards_.size());
  for (const ShardMeta& shard : shards_) {
    entries.push_back(
        {shard.file, shard.doc_count, shard.first_doc, shard.payload_crc});
  }
  return WriteManifest(env_, dir_, docs_added_, vocab.size(), entries);
}

Status WriteCorpusStore(Env* env, const Corpus& corpus, const std::string& dir,
                        const CorpusStoreOptions& options) {
  STM_RETURN_IF_ERROR(env->CreateDir(dir));
  CorpusShardWriter writer(env, dir, options);
  for (const Document& doc : corpus.docs()) {
    STM_RETURN_IF_ERROR(writer.Add(doc));
  }
  return writer.Finish(corpus.vocab(), corpus.label_names());
}

StatusOr<std::unique_ptr<ShardedCorpus>> ShardedCorpus::Open(
    Env* env, const std::string& dir, const CorpusStoreOptions& options) {
  std::unique_ptr<ShardedCorpus> store(new ShardedCorpus());
  store->env_ = env;
  store->dir_ = dir;
  store->options_ = options;

  uint64_t total_docs = 0;
  uint64_t vocab_size = 0;
  std::vector<ManifestShardEntry> entries;
  STM_RETURN_IF_ERROR(
      ReadManifest(env, dir, &total_docs, &vocab_size, &entries));
  STM_RETURN_IF_ERROR(
      ReadDict(env, dir, &store->vocab_, &store->label_names_));
  if (store->vocab_.size() != vocab_size) {
    return CorruptDataError(StrFormat(
        "%s: manifest and dictionary disagree on vocabulary size",
        dir.c_str()));
  }
  store->total_docs_ = total_docs;
  store->shards_.reserve(entries.size());
  for (ManifestShardEntry& entry : entries) {
    ShardInfo info;
    info.file = std::move(entry.file);
    info.doc_count = entry.doc_count;
    info.first_doc = entry.first_doc;
    info.payload_crc = entry.payload_crc;
    store->shards_.push_back(std::move(info));
  }

  // Sum the per-shard sidecars once; integer counts, so the totals are
  // exactly the in-RAM DocumentFrequencies()/TokenCounts().
  store->df_.assign(store->vocab_.size(), 0);
  store->counts_.assign(store->vocab_.size(), 0);
  for (const ShardInfo& shard : store->shards_) {
    std::vector<int32_t> df;
    std::vector<int64_t> counts;
    Status sidecar = ReadSidecar(
        env, JoinPath(dir, SidecarNameFor(shard.file)), &df, &counts);
    if (!sidecar.ok()) {
      // A manifested-but-missing sidecar is damage, not absence: report
      // it as corruption so OpenOrRepairCorpusStore rebuilds it.
      if (sidecar.code() == StatusCode::kUnavailable) {
        return CorruptDataError(StrFormat(
            "%s: missing sidecar for %s", dir.c_str(), shard.file.c_str()));
      }
      return sidecar;
    }
    if (df.size() > store->df_.size()) {
      return CorruptDataError(StrFormat(
          "%s: sidecar for %s exceeds the dictionary", dir.c_str(),
          shard.file.c_str()));
    }
    for (size_t i = 0; i < df.size(); ++i) {
      store->df_[i] += df[i];
      store->counts_[i] += counts[i];
    }
  }
  return StatusOr<std::unique_ptr<ShardedCorpus>>(std::move(store));
}

std::pair<size_t, size_t> ShardedCorpus::ShardDocRange(size_t shard) const {
  STM_CHECK_LT(shard, shards_.size());
  const ShardInfo& info = shards_[shard];
  return {info.first_doc, info.first_doc + info.doc_count};
}

Status ShardedCorpus::VisitShard(
    size_t shard,
    const std::function<void(size_t doc, const DocView&)>& fn) const {
  STM_CHECK_LT(shard, shards_.size());
  const ShardInfo& info = shards_[shard];
  const std::string path = JoinPath(dir_, info.file);

  // Pin the shard bytes for the duration of the visit: a real mapping
  // when allowed and available, a heap copy otherwise.
  std::unique_ptr<FileView> view;
  std::string heap_bytes;
  std::string_view file_bytes;
  bool mapped = false;
  if (options_.use_mmap) {
    STM_ASSIGN_OR_RETURN(view, env_->MapFile(path));
    file_bytes = view->view();
    mapped = view->mapped();
  } else {
    STM_ASSIGN_OR_RETURN(heap_bytes, env_->ReadFile(path));
    file_bytes = heap_bytes;
  }
  last_visit_mapped_.store(mapped, std::memory_order_relaxed);

  STM_ASSIGN_OR_RETURN(
      std::string_view payload,
      ValidateArtifactFrame(file_bytes, kCorpusShardMagic, path));
  // The frame trailer already matched the payload; cross-check it against
  // the manifest so a whole-file swap (stale or foreign shard) with a
  // self-consistent CRC is still rejected.
  uint32_t trailer_crc = 0;
  std::memcpy(&trailer_crc, file_bytes.data() + file_bytes.size() -
                                sizeof(uint32_t),
              sizeof(uint32_t));
  if (trailer_crc != info.payload_crc) {
    return CorruptDataError(StrFormat(
        "%s: shard does not match the manifest (CRC 0x%08x vs 0x%08x)",
        path.c_str(), trailer_crc, info.payload_crc));
  }

  ParsedShard parsed;
  STM_RETURN_IF_ERROR(ParseShardPayload(payload, path, &parsed));
  if (parsed.doc_count != info.doc_count ||
      parsed.first_doc != info.first_doc) {
    return CorruptDataError(StrFormat(
        "%s: shard header does not match the manifest", path.c_str()));
  }

  for (uint64_t d = 0; d < parsed.doc_count; ++d) {
    DocView doc;
    doc.tokens = parsed.tokens + parsed.doc_offsets[d];
    doc.num_tokens =
        static_cast<size_t>(parsed.doc_offsets[d + 1] - parsed.doc_offsets[d]);
    doc.labels = parsed.labels + parsed.label_offsets[d];
    doc.num_labels = static_cast<size_t>(parsed.label_offsets[d + 1] -
                                         parsed.label_offsets[d]);
    fn(static_cast<size_t>(parsed.first_doc + d), doc);
  }
  return Status::Ok();
}

StatusOr<CorpusRepairReport> RepairCorpusStore(Env* env,
                                               const std::string& dir) {
  CorpusRepairReport report;

  // The dictionary is the one unrecoverable artifact: token ids are
  // meaningless without it, so a broken dictionary fails the repair.
  Vocabulary vocab;
  std::vector<std::string> label_names;
  STM_RETURN_IF_ERROR(
      ReadDict(env, dir, &vocab, &label_names)
          .WithContext(StrFormat("repairing corpus store %s", dir.c_str())));

  STM_ASSIGN_OR_RETURN(std::vector<std::string> names, env->ListDir(dir));
  std::vector<ManifestShardEntry> survivors;
  uint64_t next_doc = 0;
  for (const std::string& name : names) {  // ListDir sorts, so shard order
    if (!IsShardFileName(name)) continue;
    const std::string path = JoinPath(dir, name);

    // Validate the shard end to end: frame, CRC, payload structure, token
    // ids within the dictionary.
    ParsedShard parsed;
    std::string bytes;
    Status valid = [&]() -> Status {
      STM_ASSIGN_OR_RETURN(bytes, env->ReadFile(path));
      STM_ASSIGN_OR_RETURN(
          std::string_view payload,
          ValidateArtifactFrame(bytes, kCorpusShardMagic, path));
      STM_RETURN_IF_ERROR(ParseShardPayload(payload, path, &parsed));
      for (uint64_t t = 0; t < parsed.token_count; ++t) {
        if (parsed.tokens[t] < 0 ||
            static_cast<size_t>(parsed.tokens[t]) >= vocab.size()) {
          return CorruptDataError(
              StrFormat("%s: token id out of range", path.c_str()));
        }
      }
      return Status::Ok();
    }();
    if (!valid.ok()) {
      // Quarantine rather than delete: the bytes stay around for forensics
      // but stop matching the shard pattern.
      (void)env->Rename(path, path + ".corrupt");
      (void)env->Delete(JoinPath(dir, SidecarNameFor(name)));
      ++report.shards_quarantined;
      continue;
    }

    // A valid shard with a damaged sidecar gets the sidecar recomputed
    // from the documents themselves.
    std::vector<int32_t> df;
    std::vector<int64_t> counts;
    const std::string sidecar_path = JoinPath(dir, SidecarNameFor(name));
    if (!ReadSidecar(env, sidecar_path, &df, &counts).ok() ||
        df.size() > vocab.size()) {
      ComputeSidecar(parsed, vocab.size(), &df, &counts);
      BinaryWriter sidecar;
      SerializeSidecar(df, counts, &sidecar);
      STM_RETURN_IF_ERROR(
          sidecar.FlushToEnv(env, sidecar_path, kCorpusCountsMagic));
      ++report.sidecars_rebuilt;
    }

    ManifestShardEntry entry;
    entry.file = name;
    entry.doc_count = parsed.doc_count;
    entry.first_doc = next_doc;  // renumbered: survivors stay contiguous
    uint32_t trailer_crc = 0;
    std::memcpy(&trailer_crc,
                bytes.data() + bytes.size() - sizeof(uint32_t),
                sizeof(uint32_t));
    entry.payload_crc = trailer_crc;
    next_doc += entry.doc_count;
    survivors.push_back(std::move(entry));
    ++report.shards_kept;
  }
  report.docs_kept = next_doc;

  // Renumbering shifts first_doc inside the shard headers out of date; the
  // manifest is authoritative for global indices, but the reader cross-
  // checks the header, so rewrite any shard whose position moved.
  for (ManifestShardEntry& entry : survivors) {
    const std::string path = JoinPath(dir, entry.file);
    STM_ASSIGN_OR_RETURN(std::string bytes, env->ReadFile(path));
    STM_ASSIGN_OR_RETURN(
        std::string_view payload,
        ValidateArtifactFrame(bytes, kCorpusShardMagic, path));
    uint64_t stored_first = 0;
    std::memcpy(&stored_first, payload.data() + sizeof(uint64_t),
                sizeof(uint64_t));
    if (stored_first == entry.first_doc) continue;
    ParsedShard parsed;
    STM_RETURN_IF_ERROR(ParseShardPayload(payload, path, &parsed));
    BinaryWriter writer;
    writer.WriteU64(parsed.doc_count);
    writer.WriteU64(entry.first_doc);
    std::vector<uint64_t> doc_offsets(parsed.doc_offsets,
                                      parsed.doc_offsets + parsed.doc_count +
                                          1);
    std::vector<uint64_t> label_offsets(
        parsed.label_offsets, parsed.label_offsets + parsed.doc_count + 1);
    writer.WriteU64s(doc_offsets);
    writer.WriteU64s(label_offsets);
    writer.WriteI32s(parsed.tokens, parsed.token_count);
    writer.WriteI32s(parsed.labels, parsed.label_count);
    entry.payload_crc = Crc32c(writer.buffer());
    STM_RETURN_IF_ERROR(
        writer.FlushToEnv(env, path, kCorpusShardMagic));
  }

  STM_RETURN_IF_ERROR(
      WriteManifest(env, dir, next_doc, vocab.size(), survivors));
  return report;
}

StatusOr<std::unique_ptr<ShardedCorpus>> OpenOrRepairCorpusStore(
    Env* env, const std::string& dir, const CorpusStoreOptions& options) {
  StatusOr<std::unique_ptr<ShardedCorpus>> store =
      ShardedCorpus::Open(env, dir, options);
  if (store.ok() || store.status().code() != StatusCode::kCorruptData) {
    return store;
  }
  STM_RETURN_IF_ERROR(RepairCorpusStore(env, dir).status());
  return ShardedCorpus::Open(env, dir, options);
}

}  // namespace stm::text
