#include "core/micol.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/check.h"
#include "nn/loss.h"
#include "nn/ops.h"
#include "nn/optimizer.h"
#include "text/vocabulary.h"

namespace stm::core {

Micol::Micol(const text::Corpus& corpus, plm::MiniLm* model,
             const MicolConfig& config)
    : corpus_(corpus), model_(model), config_(config) {
  STM_CHECK(model != nullptr);
}

std::vector<float> Micol::Represent(const std::vector<int32_t>& tokens) {
  std::vector<float> pooled = model_->Pool(tokens);
  if (!projection_trained_) return pooled;
  const size_t d = model_->config().dim;
  std::vector<float> projected(d, 0.0f);
  // projected = W^T pooled (W stored [d, d] row-major as in MatMul).
  for (size_t i = 0; i < d; ++i) {
    const float x = pooled[i];
    if (x == 0.0f) continue;
    const float* wrow = proj_weight_.value().data() + i * d;
    for (size_t j = 0; j < d; ++j) projected[j] += x * wrow[j];
  }
  return projected;
}

double Micol::FineTuneBiEncoder(
    const std::vector<std::pair<size_t, size_t>>& pairs) {
  STM_CHECK(!pairs.empty());
  Rng rng(config_.seed);
  const size_t d = model_->config().dim;

  if (config_.projection_head && !proj_weight_.defined()) {
    // Identity-initialized linear projection over the frozen encoder.
    nn::Tensor w = nn::Tensor::ZeroParam({d, d});
    for (size_t i = 0; i < d; ++i) w.value()[i * d + i] = 1.0f;
    proj_weight_ = proj_store_.Register("proj", w);
  }
  nn::OptimizerConfig opt_config;
  opt_config.lr = config_.lr;
  opt_config.grad_clip = 1.0f;
  nn::AdamOptimizer optimizer(
      config_.projection_head ? &proj_store_ : &model_->store(), opt_config);

  // Projection mode: pre-compute frozen pooled vectors once.
  std::vector<std::vector<float>> pooled_cache;
  if (config_.projection_head) {
    pooled_cache.reserve(corpus_.num_docs());
    for (const auto& doc : corpus_.docs()) {
      pooled_cache.push_back(model_->Pool(doc.tokens));
    }
  }

  double last = 0.0;
  for (int step = 0; step < config_.bi_encoder_steps; ++step) {
    const size_t batch = std::min(config_.batch_pairs, pairs.size());
    nn::Tensor u;
    nn::Tensor v;
    if (config_.projection_head) {
      std::vector<float> left;
      std::vector<float> right;
      for (size_t b = 0; b < batch; ++b) {
        const auto& [i, j] = pairs[rng.UniformInt(pairs.size())];
        left.insert(left.end(), pooled_cache[i].begin(),
                    pooled_cache[i].end());
        right.insert(right.end(), pooled_cache[j].begin(),
                     pooled_cache[j].end());
      }
      u = nn::MatMul(nn::Tensor::FromVector(std::move(left), {batch, d}),
                     proj_weight_);
      v = nn::MatMul(nn::Tensor::FromVector(std::move(right), {batch, d}),
                     proj_weight_);
    } else {
      std::vector<nn::Tensor> left;
      std::vector<nn::Tensor> right;
      for (size_t b = 0; b < batch; ++b) {
        const auto& [i, j] = pairs[rng.UniformInt(pairs.size())];
        left.push_back(model_->PoolTensor(corpus_.docs()[i].tokens));
        right.push_back(model_->PoolTensor(corpus_.docs()[j].tokens));
      }
      u = nn::ConcatRows(left);
      v = nn::ConcatRows(right);
    }
    u = nn::NormalizeRowsOp(u);
    v = nn::NormalizeRowsOp(v);
    // Cosine similarity matrix via batched matmul-with-transpose.
    nn::Tensor sim = nn::Reshape(
        nn::BMatMulT(nn::Reshape(u, {1, batch, d}),
                     nn::Reshape(v, {1, batch, d})),
        {batch, batch});
    nn::Tensor loss = nn::InfoNce(sim, config_.temperature);
    nn::Backward(loss);
    optimizer.Step();
    last = loss.item();
  }
  if (config_.projection_head) projection_trained_ = true;
  return last;
}

std::unique_ptr<plm::PairScorer> Micol::TrainCrossEncoder(
    const std::vector<std::pair<size_t, size_t>>& pairs) {
  STM_CHECK(!pairs.empty());
  Rng rng(config_.seed + 1);
  std::vector<std::vector<float>> u;
  std::vector<std::vector<float>> v;
  std::vector<float> labels;
  for (const auto& [i, j] : pairs) {
    u.push_back(model_->Pool(corpus_.docs()[i].tokens));
    v.push_back(model_->Pool(corpus_.docs()[j].tokens));
    labels.push_back(1.0f);
    // Random negative partner for the same anchor.
    const size_t neg = rng.UniformInt(corpus_.num_docs());
    u.push_back(u[u.size() - 1]);
    v.push_back(model_->Pool(corpus_.docs()[neg].tokens));
    labels.push_back(0.0f);
  }
  plm::PairScorer::Config config;
  config.encoder_dim = model_->config().dim;
  config.epochs = config_.cross_epochs;
  config.seed = config_.seed + 2;
  auto scorer = std::make_unique<plm::PairScorer>(config);
  scorer->Train(u, v, labels);
  return scorer;
}

namespace {

std::vector<std::vector<int>> RankAll(
    const std::vector<std::vector<float>>& doc_reps,
    const std::vector<std::vector<float>>& label_reps,
    const std::function<float(const std::vector<float>&,
                              const std::vector<float>&)>& score) {
  std::vector<std::vector<int>> ranked(doc_reps.size());
  for (size_t d = 0; d < doc_reps.size(); ++d) {
    std::vector<std::pair<float, int>> scored;
    scored.reserve(label_reps.size());
    for (size_t l = 0; l < label_reps.size(); ++l) {
      scored.emplace_back(score(doc_reps[d], label_reps[l]),
                          static_cast<int>(l));
    }
    std::sort(scored.rbegin(), scored.rend());
    for (const auto& [_, label] : scored) ranked[d].push_back(label);
  }
  return ranked;
}

}  // namespace

std::vector<std::vector<int>> Micol::RankByBiEncoder(
    const std::vector<std::vector<int32_t>>& label_texts) {
  std::vector<std::vector<float>> doc_reps;
  doc_reps.reserve(corpus_.num_docs());
  for (const auto& doc : corpus_.docs()) {
    doc_reps.push_back(Represent(doc.tokens));
  }
  std::vector<std::vector<float>> label_reps;
  for (const auto& tokens : label_texts) {
    label_reps.push_back(Represent(tokens));
  }
  return RankAll(doc_reps, label_reps,
                 [](const std::vector<float>& a,
                    const std::vector<float>& b) {
                   return la::Cosine(a, b);
                 });
}

std::vector<std::vector<int>> Micol::RankByCrossEncoder(
    plm::PairScorer* scorer,
    const std::vector<std::vector<int32_t>>& label_texts) {
  STM_CHECK(scorer != nullptr);
  std::vector<std::vector<float>> doc_reps;
  doc_reps.reserve(corpus_.num_docs());
  for (const auto& doc : corpus_.docs()) {
    doc_reps.push_back(model_->Pool(doc.tokens));
  }
  std::vector<std::vector<float>> label_reps;
  for (const auto& tokens : label_texts) {
    label_reps.push_back(model_->Pool(tokens));
  }
  return RankAll(doc_reps, label_reps,
                 [scorer](const std::vector<float>& a,
                          const std::vector<float>& b) {
                   return scorer->Score(a, b);
                 });
}

std::vector<int32_t> AugmentEda(const std::vector<int32_t>& tokens,
                                Rng& rng) {
  std::vector<int32_t> out;
  out.reserve(tokens.size());
  for (int32_t id : tokens) {
    if (rng.Bernoulli(0.15)) continue;  // word dropout
    out.push_back(id);
  }
  // Local swaps.
  for (size_t s = 0; s + 1 < out.size(); ++s) {
    if (rng.Bernoulli(0.1)) std::swap(out[s], out[s + 1]);
  }
  if (out.empty() && !tokens.empty()) out.push_back(tokens[0]);
  return out;
}

std::vector<int32_t> AugmentUda(const std::vector<int32_t>& tokens,
                                const std::vector<double>& unigram,
                                Rng& rng) {
  AliasSampler sampler(unigram);
  std::vector<int32_t> out = tokens;
  for (int32_t& id : out) {
    if (rng.Bernoulli(0.2)) {
      id = static_cast<int32_t>(sampler.Sample(rng));
    }
  }
  return out;
}

}  // namespace stm::core
