#include "serve/fault_injection.h"

#include <chrono>
#include <stdexcept>
#include <thread>

namespace stm::serve {

void FaultInjectingClassifier::ThrowNext(int count) {
  std::lock_guard<std::mutex> lock(mu_);
  throw_next_ = count;
}

void FaultInjectingClassifier::ThrowEveryNth(int n) {
  std::lock_guard<std::mutex> lock(mu_);
  throw_every_nth_ = n;
}

void FaultInjectingClassifier::SleepNext(double ms, int count) {
  std::lock_guard<std::mutex> lock(mu_);
  sleep_ms_ = ms;
  sleep_next_ = count;
}

uint64_t FaultInjectingClassifier::calls() const {
  std::lock_guard<std::mutex> lock(mu_);
  return calls_;
}

uint64_t FaultInjectingClassifier::injected_throws() const {
  std::lock_guard<std::mutex> lock(mu_);
  return injected_throws_;
}

uint64_t FaultInjectingClassifier::injected_sleeps() const {
  std::lock_guard<std::mutex> lock(mu_);
  return injected_sleeps_;
}

Prediction FaultInjectingClassifier::Classify(const std::vector<int32_t>& ids,
                                              const float* pooled,
                                              const la::Matrix* hidden) const {
  bool do_throw = false;
  double sleep_ms = 0.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++calls_;
    if (sleep_next_ > 0) {
      --sleep_next_;
      sleep_ms = sleep_ms_;
      ++injected_sleeps_;
    }
    if (throw_next_ > 0) {
      --throw_next_;
      do_throw = true;
    } else if (throw_every_nth_ > 0 && calls_ % throw_every_nth_ == 0) {
      do_throw = true;
    }
    if (do_throw) ++injected_throws_;
  }
  if (sleep_ms > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(sleep_ms));
  }
  if (do_throw) {
    throw std::runtime_error("injected classifier fault (" + base_->name() +
                             ")");
  }
  return base_->Classify(ids, pooled, hidden);
}

}  // namespace stm::serve
