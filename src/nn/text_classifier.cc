#include "nn/text_classifier.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "nn/loss.h"
#include "text/vocabulary.h"

namespace stm::nn {

namespace {

// Pads/truncates each doc to `max_len`, returning the flat id array and the
// effective lengths. Empty docs get a single [PAD] with length 1 so pooling
// stays well-defined.
void PadBatch(const std::vector<std::vector<int32_t>>& docs, size_t begin,
              size_t count, size_t max_len, std::vector<int32_t>& ids,
              std::vector<int>& lengths) {
  ids.assign(count * max_len, text::kPadId);
  lengths.assign(count, 1);
  for (size_t i = 0; i < count; ++i) {
    const auto& doc = docs[begin + i];
    const size_t len = std::min(doc.size(), max_len);
    for (size_t t = 0; t < len; ++t) ids[i * max_len + t] = doc[t];
    lengths[i] = std::max<int>(1, static_cast<int>(len));
  }
}

std::vector<float> SliceTargets(const std::vector<float>& soft_targets,
                                size_t begin, size_t count,
                                size_t num_classes) {
  return std::vector<float>(
      soft_targets.begin() + static_cast<std::ptrdiff_t>(begin * num_classes),
      soft_targets.begin() +
          static_cast<std::ptrdiff_t>((begin + count) * num_classes));
}

}  // namespace

void TextClassifier::InitWordEmbeddings(
    const std::vector<std::vector<float>>&) {}

std::vector<int> TextClassifier::Predict(
    const std::vector<std::vector<int32_t>>& docs) {
  const la::Matrix probs = PredictProbs(docs);
  std::vector<int> labels(docs.size(), 0);
  for (size_t i = 0; i < docs.size(); ++i) {
    const float* row = probs.Row(i);
    labels[i] = static_cast<int>(
        std::max_element(row, row + probs.cols()) - row);
  }
  return labels;
}

void TextClassifier::Fit(const std::vector<std::vector<int32_t>>& docs,
                         const std::vector<int>& labels, int epochs) {
  STM_CHECK_EQ(docs.size(), labels.size());
  // Infer class count from PredictProbs' width lazily: callers constructed
  // the classifier with num_classes, so just build one-hots of that size.
  // We recover C from a 1-doc prediction to avoid adding a getter.
  size_t num_classes = 0;
  if (!docs.empty()) {
    num_classes = PredictProbs({docs[0]}).cols();
  }
  std::vector<float> targets(docs.size() * num_classes, 0.0f);
  for (size_t i = 0; i < labels.size(); ++i) {
    STM_CHECK_GE(labels[i], 0);
    STM_CHECK_LT(static_cast<size_t>(labels[i]), num_classes);
    targets[i * num_classes + static_cast<size_t>(labels[i])] = 1.0f;
  }
  for (int e = 0; e < epochs; ++e) TrainEpoch(docs, targets);
}

// ---------------- TextCnnClassifier ----------------

TextCnnClassifier::TextCnnClassifier(const ClassifierConfig& config)
    : config_(config), rng_(config.seed) {
  STM_CHECK_GT(config.vocab_size, 0u);
  STM_CHECK_GT(config.num_classes, 0u);
  embedding_ = std::make_unique<Embedding>(&store_, "embed",
                                           config.vocab_size,
                                           config.embed_dim, rng_);
  for (size_t w : config.conv_widths) {
    STM_CHECK_LE(w, config.max_len);
    convs_.push_back(std::make_unique<Linear>(
        &store_, "conv" + std::to_string(w), w * config.embed_dim,
        config.filters, rng_));
  }
  const size_t pooled = config.filters * config.conv_widths.size();
  dense_ = std::make_unique<Linear>(&store_, "dense", pooled, config.hidden,
                                    rng_);
  out_ = std::make_unique<Linear>(&store_, "out", config.hidden,
                                  config.num_classes, rng_);
  OptimizerConfig opt;
  opt.lr = config.lr;
  opt.grad_clip = 5.0f;
  optimizer_ = std::make_unique<AdamOptimizer>(&store_, opt);
}

void TextCnnClassifier::InitWordEmbeddings(
    const std::vector<std::vector<float>>& embeddings) {
  embedding_->LoadRows(embeddings);
}

Tensor TextCnnClassifier::Logits(
    const std::vector<std::vector<int32_t>>& docs, size_t begin,
    size_t count, bool training) {
  std::vector<int32_t> ids;
  std::vector<int> lengths;
  PadBatch(docs, begin, count, config_.max_len, ids, lengths);
  Tensor embedded = embedding_->Forward(ids);  // [B*S, d]
  std::vector<Tensor> pooled;
  for (size_t c = 0; c < convs_.size(); ++c) {
    const size_t width = config_.conv_widths[c];
    Tensor cols = Im2Col(embedded, count, config_.max_len, width);
    Tensor feature = Relu(convs_[c]->Forward(cols));
    pooled.push_back(
        MaxPoolRows(feature, count, config_.max_len - width + 1));
  }
  Tensor features = ConcatCols(pooled);
  features = Dropout(features, config_.dropout, rng_, training);
  Tensor hidden = Relu(dense_->Forward(features));
  return out_->Forward(hidden);
}

double TextCnnClassifier::TrainEpoch(
    const std::vector<std::vector<int32_t>>& docs,
    const std::vector<float>& soft_targets) {
  STM_CHECK_EQ(soft_targets.size(), docs.size() * config_.num_classes);
  const std::vector<size_t> order = rng_.Permutation(docs.size());
  std::vector<std::vector<int32_t>> shuffled(docs.size());
  std::vector<float> shuffled_targets(soft_targets.size());
  for (size_t i = 0; i < order.size(); ++i) {
    shuffled[i] = docs[order[i]];
    std::copy(soft_targets.begin() +
                  static_cast<std::ptrdiff_t>(order[i] * config_.num_classes),
              soft_targets.begin() + static_cast<std::ptrdiff_t>(
                                         (order[i] + 1) * config_.num_classes),
              shuffled_targets.begin() +
                  static_cast<std::ptrdiff_t>(i * config_.num_classes));
  }
  double total_loss = 0.0;
  size_t batches = 0;
  for (size_t begin = 0; begin < shuffled.size();
       begin += config_.batch_size) {
    const size_t count =
        std::min(config_.batch_size, shuffled.size() - begin);
    Tensor logits = Logits(shuffled, begin, count, /*training=*/true);
    Tensor loss = SoftCrossEntropy(
        logits, SliceTargets(shuffled_targets, begin, count,
                             config_.num_classes));
    Backward(loss);
    optimizer_->Step();
    total_loss += loss.item();
    ++batches;
  }
  return batches > 0 ? total_loss / static_cast<double>(batches) : 0.0;
}

la::Matrix TextCnnClassifier::PredictProbs(
    const std::vector<std::vector<int32_t>>& docs) {
  la::Matrix probs(docs.size(), config_.num_classes);
  for (size_t begin = 0; begin < docs.size(); begin += config_.batch_size) {
    const size_t count = std::min(config_.batch_size, docs.size() - begin);
    Tensor p = SoftmaxLastDim(Logits(docs, begin, count, /*training=*/false));
    for (size_t i = 0; i < count; ++i) {
      for (size_t c = 0; c < config_.num_classes; ++c) {
        probs.At(begin + i, c) = p.value()[i * config_.num_classes + c];
      }
    }
  }
  return probs;
}

// ---------------- HanClassifier ----------------

HanClassifier::HanClassifier(const ClassifierConfig& config)
    : config_(config), rng_(config.seed) {
  STM_CHECK_GT(config.vocab_size, 0u);
  STM_CHECK_GT(config.num_classes, 0u);
  embedding_ = std::make_unique<Embedding>(&store_, "embed",
                                           config.vocab_size,
                                           config.embed_dim, rng_);
  proj_ = std::make_unique<Linear>(&store_, "proj", config.embed_dim,
                                   config.attn_hidden, rng_);
  attn_ = std::make_unique<Linear>(&store_, "attn", config.attn_hidden, 1,
                                   rng_);
  dense_ = std::make_unique<Linear>(&store_, "dense", config.attn_hidden,
                                    config.hidden, rng_);
  out_ = std::make_unique<Linear>(&store_, "out", config.hidden,
                                  config.num_classes, rng_);
  OptimizerConfig opt;
  opt.lr = config.lr;
  opt.grad_clip = 5.0f;
  optimizer_ = std::make_unique<AdamOptimizer>(&store_, opt);
}

void HanClassifier::InitWordEmbeddings(
    const std::vector<std::vector<float>>& embeddings) {
  embedding_->LoadRows(embeddings);
}

Tensor HanClassifier::Logits(const std::vector<std::vector<int32_t>>& docs,
                             size_t begin, size_t count, bool training) {
  std::vector<int32_t> ids;
  std::vector<int> lengths;
  PadBatch(docs, begin, count, config_.max_len, ids, lengths);
  const size_t seq = config_.max_len;
  Tensor embedded = embedding_->Forward(ids);            // [B*S, d]
  Tensor projected = Tanh(proj_->Forward(embedded));     // [B*S, h]
  Tensor scores = attn_->Forward(projected);             // [B*S, 1]
  // Mask padding with a large negative constant, softmax per doc.
  std::vector<float> mask(count * seq, 0.0f);
  for (size_t b = 0; b < count; ++b) {
    for (size_t t = static_cast<size_t>(lengths[b]); t < seq; ++t) {
      mask[b * seq + t] = -1e9f;
    }
  }
  Tensor masked = AddConstant(Reshape(scores, {count, seq}), mask);
  Tensor weights = SoftmaxLastDim(masked);               // [B, S]
  // Weighted sum per doc via Rows + WeightedSumRows.
  std::vector<Tensor> pooled;
  pooled.reserve(count);
  for (size_t b = 0; b < count; ++b) {
    std::vector<int32_t> row_ids(seq);
    for (size_t t = 0; t < seq; ++t) {
      row_ids[t] = static_cast<int32_t>(b * seq + t);
    }
    Tensor doc_rows = Rows(projected, row_ids);                   // [S, h]
    std::vector<int32_t> w_ids(seq);
    for (size_t t = 0; t < seq; ++t) {
      w_ids[t] = static_cast<int32_t>(b * seq + t);
    }
    Tensor doc_weights =
        Reshape(Rows(Reshape(weights, {count * seq, 1}), w_ids), {seq});
    pooled.push_back(WeightedSumRows(doc_rows, doc_weights));     // [1, h]
  }
  Tensor features = ConcatRows(pooled);                           // [B, h]
  features = Dropout(features, config_.dropout, rng_, training);
  Tensor hidden = Relu(dense_->Forward(features));
  return out_->Forward(hidden);
}

double HanClassifier::TrainEpoch(
    const std::vector<std::vector<int32_t>>& docs,
    const std::vector<float>& soft_targets) {
  STM_CHECK_EQ(soft_targets.size(), docs.size() * config_.num_classes);
  const std::vector<size_t> order = rng_.Permutation(docs.size());
  double total_loss = 0.0;
  size_t batches = 0;
  std::vector<std::vector<int32_t>> batch_docs;
  std::vector<float> batch_targets;
  for (size_t begin = 0; begin < docs.size(); begin += config_.batch_size) {
    const size_t count = std::min(config_.batch_size, docs.size() - begin);
    batch_docs.clear();
    batch_targets.clear();
    for (size_t i = 0; i < count; ++i) {
      const size_t src = order[begin + i];
      batch_docs.push_back(docs[src]);
      for (size_t c = 0; c < config_.num_classes; ++c) {
        batch_targets.push_back(soft_targets[src * config_.num_classes + c]);
      }
    }
    Tensor logits = Logits(batch_docs, 0, count, /*training=*/true);
    Tensor loss = SoftCrossEntropy(logits, batch_targets);
    Backward(loss);
    optimizer_->Step();
    total_loss += loss.item();
    ++batches;
  }
  return batches > 0 ? total_loss / static_cast<double>(batches) : 0.0;
}

la::Matrix HanClassifier::PredictProbs(
    const std::vector<std::vector<int32_t>>& docs) {
  la::Matrix probs(docs.size(), config_.num_classes);
  for (size_t begin = 0; begin < docs.size(); begin += config_.batch_size) {
    const size_t count = std::min(config_.batch_size, docs.size() - begin);
    Tensor p = SoftmaxLastDim(Logits(docs, begin, count, /*training=*/false));
    for (size_t i = 0; i < count; ++i) {
      for (size_t c = 0; c < config_.num_classes; ++c) {
        probs.At(begin + i, c) = p.value()[i * config_.num_classes + c];
      }
    }
  }
  return probs;
}

// ---------------- BowLogRegClassifier ----------------

BowLogRegClassifier::BowLogRegClassifier(const ClassifierConfig& config)
    : config_(config), rng_(config.seed) {
  STM_CHECK_GT(config.vocab_size, 0u);
  STM_CHECK_GT(config.num_classes, 0u);
  out_ = std::make_unique<Linear>(&store_, "out", config.vocab_size,
                                  config.num_classes, rng_);
  OptimizerConfig opt;
  opt.lr = config.bow_lr;
  optimizer_ = std::make_unique<AdamOptimizer>(&store_, opt);
}

Tensor BowLogRegClassifier::Features(
    const std::vector<std::vector<int32_t>>& docs, size_t begin,
    size_t count) const {
  std::vector<float> features(count * config_.vocab_size, 0.0f);
  for (size_t i = 0; i < count; ++i) {
    float* row = features.data() + i * config_.vocab_size;
    float total = 0.0f;
    for (int32_t id : docs[begin + i]) {
      if (id >= text::kNumSpecialTokens &&
          static_cast<size_t>(id) < config_.vocab_size) {
        row[id] += 1.0f;
        total += 1.0f;
      }
    }
    if (total > 0.0f) {
      for (size_t j = 0; j < config_.vocab_size; ++j) row[j] /= total;
    }
  }
  return Tensor::FromVector(std::move(features),
                            {count, config_.vocab_size});
}

double BowLogRegClassifier::TrainEpoch(
    const std::vector<std::vector<int32_t>>& docs,
    const std::vector<float>& soft_targets) {
  STM_CHECK_EQ(soft_targets.size(), docs.size() * config_.num_classes);
  const std::vector<size_t> order = rng_.Permutation(docs.size());
  double total_loss = 0.0;
  size_t batches = 0;
  std::vector<std::vector<int32_t>> batch_docs;
  std::vector<float> batch_targets;
  const size_t batch_size = std::max<size_t>(config_.batch_size, 32);
  for (size_t begin = 0; begin < docs.size(); begin += batch_size) {
    const size_t count = std::min(batch_size, docs.size() - begin);
    batch_docs.clear();
    batch_targets.clear();
    for (size_t i = 0; i < count; ++i) {
      const size_t src = order[begin + i];
      batch_docs.push_back(docs[src]);
      for (size_t c = 0; c < config_.num_classes; ++c) {
        batch_targets.push_back(soft_targets[src * config_.num_classes + c]);
      }
    }
    Tensor logits = out_->Forward(Features(batch_docs, 0, count));
    Tensor loss = SoftCrossEntropy(logits, batch_targets);
    Backward(loss);
    optimizer_->Step();
    total_loss += loss.item();
    ++batches;
  }
  return batches > 0 ? total_loss / static_cast<double>(batches) : 0.0;
}

la::Matrix BowLogRegClassifier::PredictProbs(
    const std::vector<std::vector<int32_t>>& docs) {
  la::Matrix probs(docs.size(), config_.num_classes);
  const size_t batch_size = 64;
  for (size_t begin = 0; begin < docs.size(); begin += batch_size) {
    const size_t count = std::min(batch_size, docs.size() - begin);
    Tensor p =
        SoftmaxLastDim(out_->Forward(Features(docs, begin, count)));
    for (size_t i = 0; i < count; ++i) {
      for (size_t c = 0; c < config_.num_classes; ++c) {
        probs.At(begin + i, c) = p.value()[i * config_.num_classes + c];
      }
    }
  }
  return probs;
}

std::unique_ptr<TextClassifier> MakeClassifier(
    const std::string& kind, const ClassifierConfig& config) {
  if (kind == "cnn") return std::make_unique<TextCnnClassifier>(config);
  if (kind == "han") return std::make_unique<HanClassifier>(config);
  if (kind == "bow") return std::make_unique<BowLogRegClassifier>(config);
  STM_CHECK(false) << "unknown classifier kind: " << kind;
  return nullptr;
}

}  // namespace stm::nn
