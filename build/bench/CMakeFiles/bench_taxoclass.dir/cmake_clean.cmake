file(REMOVE_RECURSE
  "CMakeFiles/bench_taxoclass.dir/bench_taxoclass.cc.o"
  "CMakeFiles/bench_taxoclass.dir/bench_taxoclass.cc.o.d"
  "bench_taxoclass"
  "bench_taxoclass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_taxoclass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
