#include "text/corpus_io.h"

#include <map>
#include <memory>
#include <string_view>
#include <utility>

#include "common/string_util.h"
#include "text/tokenizer.h"

namespace stm::text {

namespace {

// Backslash escaping for label names and metadata keys/values. The mapped
// characters are exactly the ones with structural meaning in the format:
// line and column separators, the label separator '|' and the metadata
// separator '='.
std::string EscapeField(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '|': out += "\\p"; break;
      case '=': out += "\\e"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string UnescapeField(std::string_view escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] != '\\' || i + 1 == escaped.size()) {
      out.push_back(escaped[i]);
      continue;
    }
    ++i;
    switch (escaped[i]) {
      case '\\': out.push_back('\\'); break;
      case 't': out.push_back('\t'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      case 'p': out.push_back('|'); break;
      case 'e': out.push_back('='); break;
      default:
        // Unknown escape: keep both characters (legacy files never
        // contain backslashes followed by these letters by construction).
        out.push_back('\\');
        out.push_back(escaped[i]);
    }
  }
  return out;
}

// A token survives the TSV round trip iff the tokenizer re-tokenizes it to
// exactly itself (one word, same bytes): no whitespace, no separators, no
// punctuation the tokenizer strips, no upper case it would fold.
bool TokenRoundTrips(const std::string& token) {
  const std::vector<std::string> words = Tokenizer::Words(token);
  return words.size() == 1 && words[0] == token;
}

// One parsed-but-not-committed line.
struct PendingDocument {
  std::vector<std::string> labels;
  std::vector<std::string> words;
  std::map<std::string, std::vector<std::string>> metadata;
};

bool ParseLine(const std::string& trimmed, PendingDocument* pending) {
  const std::vector<std::string> columns = ::stm::Split(trimmed, '\t');
  if (columns.size() < 2) return false;
  for (const std::string& label : ::stm::Split(columns[0], '|')) {
    pending->labels.push_back(UnescapeField(label));
  }
  if (pending->labels.empty()) return false;
  pending->words = Tokenizer::Words(columns[1]);
  if (pending->words.empty()) return false;
  for (size_t c = 2; c < columns.size(); ++c) {
    const size_t eq = columns[c].find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= columns[c].size()) {
      return false;
    }
    pending->metadata[UnescapeField(columns[c].substr(0, eq))].push_back(
        UnescapeField(columns[c].substr(eq + 1)));
  }
  return true;
}

}  // namespace

Status LoadTsv(Env* env, const std::string& path, Corpus* corpus,
               TsvReadReport* report) {
  // Streamed line-at-a-time through Env::OpenSequential: resident memory
  // is one read chunk plus any partial trailing line, never the whole
  // file. Commit-on-success is preserved at two levels: a line only
  // touches the corpus after it fully validates (as before), and a read
  // fault mid-stream rolls the corpus back to its pre-call state (docs,
  // label names, vocabulary entries and counts) before the error is
  // returned — a failed load never leaves a partially ingested corpus.
  STM_ASSIGN_OR_RETURN(std::unique_ptr<SequentialFile> file,
                       env->OpenSequential(path));
  TsvReadReport local_report;
  TsvReadReport* out = report != nullptr ? report : &local_report;
  out->skipped = 0;
  out->skipped_lines.clear();

  const size_t docs_before = corpus->docs().size();
  const size_t labels_before = corpus->label_names().size();
  const size_t vocab_before = corpus->vocab().size();
  std::vector<int64_t> counts_before(vocab_before);
  for (size_t i = 0; i < vocab_before; ++i) {
    counts_before[i] = corpus->vocab().CountOf(static_cast<int32_t>(i));
  }

  std::map<std::string, int> label_ids;
  for (size_t i = 0; i < corpus->label_names().size(); ++i) {
    label_ids[corpus->label_names()[i]] = static_cast<int>(i);
  }

  size_t line_number = 0;
  const auto process_line = [&](const std::string& line) {
    ++line_number;
    const std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') return;

    // Parse into locals first; the corpus (label set and vocabulary) is
    // only touched after the whole line validates, so a rejected line
    // cannot leave phantom labels or tokens behind.
    PendingDocument pending;
    if (!ParseLine(trimmed, &pending)) {
      ++out->skipped;
      out->skipped_lines.push_back(line_number);
      return;
    }

    Document doc;
    for (const std::string& label : pending.labels) {
      auto [it, inserted] = label_ids.try_emplace(
          label, static_cast<int>(corpus->label_names().size()));
      if (inserted) corpus->label_names().push_back(label);
      doc.labels.push_back(it->second);
    }
    doc.tokens.reserve(pending.words.size());
    for (const std::string& word : pending.words) {
      doc.tokens.push_back(corpus->vocab().AddToken(word));
    }
    doc.metadata = std::move(pending.metadata);
    corpus->docs().push_back(std::move(doc));
  };

  std::string carry;
  std::vector<char> chunk(64 << 10);
  Status read_status = Status::Ok();
  while (true) {
    StatusOr<size_t> n = file->Read(chunk.data(), chunk.size());
    if (!n.ok()) {
      read_status = n.status();
      break;
    }
    if (*n == 0) break;  // EOF
    carry.append(chunk.data(), *n);
    size_t start = 0;
    size_t nl;
    while ((nl = carry.find('\n', start)) != std::string::npos) {
      process_line(carry.substr(start, nl - start));
      start = nl + 1;
    }
    carry.erase(0, start);
  }
  if (!read_status.ok()) {
    // Roll back everything this call added or counted.
    corpus->docs().resize(docs_before);
    corpus->label_names().resize(labels_before);
    corpus->vocab().TruncateTo(vocab_before);
    for (size_t i = 0; i < vocab_before; ++i) {
      const int32_t id = static_cast<int32_t>(i);
      const int64_t delta = counts_before[i] - corpus->vocab().CountOf(id);
      if (delta != 0) corpus->vocab().AddCount(id, delta);
    }
    out->skipped = 0;
    out->skipped_lines.clear();
    return read_status.WithContext(
        StrFormat("streaming corpus %s", path.c_str()));
  }
  if (!carry.empty()) process_line(carry);  // final line without newline
  return Status::Ok();
}

Status SaveTsv(Env* env, const Corpus& corpus, const std::string& path) {
  std::string out;
  // Memoized per-id round-trip verdict (0 = unknown, 1 = ok).
  std::vector<uint8_t> token_ok(corpus.vocab().size(), 0);
  for (size_t d = 0; d < corpus.docs().size(); ++d) {
    const Document& doc = corpus.docs()[d];
    std::vector<std::string> labels;
    for (int label : doc.labels) {
      const std::string& name =
          corpus.label_names()[static_cast<size_t>(label)];
      if (name.empty()) {
        return InvalidArgumentError(
            StrFormat("document %zu has an empty label name", d));
      }
      labels.push_back(EscapeField(name));
    }
    out += Join(labels, "|");
    out += '\t';
    for (size_t t = 0; t < doc.tokens.size(); ++t) {
      const int32_t id = doc.tokens[t];
      const std::string& token = corpus.vocab().TokenOf(id);
      if (token_ok[static_cast<size_t>(id)] == 0) {
        if (!TokenRoundTrips(token)) {
          return InvalidArgumentError(StrFormat(
              "token '%s' (document %zu) would not survive a TSV round "
              "trip; clean the corpus before saving",
              token.c_str(), d));
        }
        token_ok[static_cast<size_t>(id)] = 1;
      }
      if (t > 0) out += ' ';
      out += token;
    }
    for (const auto& [type, values] : doc.metadata) {
      if (type.empty()) {
        return InvalidArgumentError(
            StrFormat("document %zu has an empty metadata key", d));
      }
      for (const std::string& value : values) {
        if (value.empty()) {
          return InvalidArgumentError(StrFormat(
              "document %zu has an empty metadata value for key '%s'", d,
              type.c_str()));
        }
        out += '\t';
        out += EscapeField(type);
        out += '=';
        out += EscapeField(value);
      }
    }
    out += '\n';
  }
  return WriteFileAtomicWithRetry(env, path, out)
      .WithContext(StrFormat("writing corpus %s", path.c_str()));
}

bool LoadTsv(const std::string& path, Corpus* corpus, size_t* skipped) {
  TsvReadReport report;
  const Status status = LoadTsv(Env::Default(), path, corpus, &report);
  if (skipped != nullptr) *skipped = report.skipped;
  return status.ok();
}

bool SaveTsv(const Corpus& corpus, const std::string& path) {
  return SaveTsv(Env::Default(), corpus, path).ok();
}

}  // namespace stm::text
