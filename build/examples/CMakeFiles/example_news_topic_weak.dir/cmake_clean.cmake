file(REMOVE_RECURSE
  "CMakeFiles/example_news_topic_weak.dir/news_topic_weak.cc.o"
  "CMakeFiles/example_news_topic_weak.dir/news_topic_weak.cc.o.d"
  "example_news_topic_weak"
  "example_news_topic_weak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_news_topic_weak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
