#include "text/tokenizer.h"

#include <cctype>
#include <unordered_set>

namespace stm::text {

namespace {

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
         c == '\'' || c == '_';
}

}  // namespace

std::vector<std::string> Tokenizer::Words(std::string_view raw) {
  std::vector<std::string> words;
  std::string current;
  for (char c : raw) {
    if (IsWordChar(c)) {
      current.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!current.empty()) {
      words.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) words.push_back(std::move(current));
  // Strip leading/trailing hyphens and apostrophes left by punctuation runs.
  for (std::string& w : words) {
    size_t begin = 0;
    size_t end = w.size();
    while (begin < end && !std::isalnum(static_cast<unsigned char>(w[begin])))
      ++begin;
    while (end > begin && !std::isalnum(static_cast<unsigned char>(w[end - 1])))
      --end;
    w = w.substr(begin, end - begin);
  }
  std::vector<std::string> out;
  out.reserve(words.size());
  for (std::string& w : words) {
    if (!w.empty()) out.push_back(std::move(w));
  }
  return out;
}

std::vector<int32_t> Tokenizer::Encode(std::string_view raw,
                                       Vocabulary& vocab, bool grow_vocab) {
  std::vector<int32_t> ids;
  for (const std::string& w : Words(raw)) {
    ids.push_back(grow_vocab ? vocab.AddToken(w) : vocab.IdOf(w));
  }
  return ids;
}

std::vector<int32_t> Tokenizer::Encode(std::string_view raw,
                                       const Vocabulary& vocab) {
  std::vector<int32_t> ids;
  for (const std::string& w : Words(raw)) ids.push_back(vocab.IdOf(w));
  return ids;
}

const std::vector<std::string>& Stopwords() {
  static const std::vector<std::string>* const kStopwords =
      new std::vector<std::string>{
          "a",     "an",    "and",   "are",   "as",    "at",    "be",
          "but",   "by",    "for",   "from",  "had",   "has",   "have",
          "he",    "her",   "his",   "i",     "if",    "in",    "into",
          "is",    "it",    "its",   "my",    "no",    "not",   "of",
          "on",    "or",    "our",   "she",   "so",    "that",  "the",
          "their", "them",  "then",  "there", "these", "they",  "this",
          "those", "to",    "was",   "we",    "were",  "what",  "when",
          "which", "while", "who",   "will",  "with",  "would", "you",
          "your",  "said",  "also",  "more",  "most",  "such",  "than",
          "very",  "can",   "could", "about", "after", "all",   "any",
          "been",  "being", "do",    "does",  "did",   "how",   "just",
          "like",  "made",  "make",  "many",  "may",   "much",  "new",
          "now",   "only",  "other", "out",   "over",  "some",  "time",
          "two",   "up",    "us",    "use",   "used",  "way",   "well",
          "where", "both",  "each",  "even",  "first", "get",   "one"};
  return *kStopwords;
}

bool IsStopword(std::string_view word) {
  static const std::unordered_set<std::string>* const kSet = [] {
    auto* set = new std::unordered_set<std::string>();
    for (const std::string& w : Stopwords()) set->insert(w);
    return set;
  }();
  return kSet->count(std::string(word)) > 0;
}

}  // namespace stm::text
