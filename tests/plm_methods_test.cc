#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/baselines.h"
#include "core/conwea.h"
#include "core/lotclass.h"
#include "core/xclass.h"
#include "datasets/specs.h"
#include "eval/metrics.h"

namespace stm::core {
namespace {

// Shared small corpus + cached MiniLm. LoadOrPretrain caches the model on
// disk, so only the first test process pays for pre-training.
struct World {
  datasets::SyntheticDataset data;
  std::unique_ptr<plm::MiniLm> model;
};

World MakeWorld() {
  datasets::SyntheticSpec spec = datasets::AgNewsSpec(21);
  spec.num_docs = 300;
  spec.pretrain_docs = 900;
  spec.background_vocab = 300;
  World world;
  world.data = datasets::Generate(spec);
  plm::MiniLmConfig config;
  config.vocab_size = world.data.corpus.vocab().size();
  config.dim = 40;
  config.layers = 2;
  config.heads = 4;
  config.ffn_dim = 80;
  config.max_seq = 40;
  plm::PretrainConfig pretrain;
  pretrain.steps = 1200;
  pretrain.batch = 8;
  world.model = plm::MiniLm::LoadOrPretrain(
      testing::TempDir(), world.data.fingerprint, config, pretrain,
      world.data.pretrain_docs);
  return world;
}

double GoldMicroF1(const World& world, const std::vector<int>& pred) {
  return eval::MicroF1(pred, world.data.corpus.GoldLabels(),
                       world.data.corpus.num_labels());
}

TEST(ConWeaTest, BeatsChanceAndProducesSenses) {
  World world = MakeWorld();
  ConWeaConfig config;
  config.iterations = 2;
  config.max_occurrences = 20;
  ConWea method(world.data.corpus, world.model.get(), config);
  const auto pred = method.Run(world.data.supervision);
  EXPECT_GT(GoldMicroF1(world, pred), 0.6);
  // Expansion grew the seed sets.
  size_t total_seeds = 0;
  for (const auto& seeds : method.final_seeds()) total_seeds += seeds.size();
  size_t original = 0;
  for (const auto& seeds : world.data.supervision.class_keywords) {
    original += seeds.size();
  }
  EXPECT_GT(total_seeds, original);
}

TEST(ConWeaTest, ContextualizationBeatsNoCon) {
  World world = MakeWorld();
  ConWeaConfig with;
  with.iterations = 2;
  with.max_occurrences = 20;
  ConWeaConfig without = with;
  without.enable_contextualization = false;
  ConWea m1(world.data.corpus, world.model.get(), with);
  ConWea m2(world.data.corpus, world.model.get(), without);
  const double f1_with = GoldMicroF1(world, m1.Run(world.data.supervision));
  const double f1_without =
      GoldMicroF1(world, m2.Run(world.data.supervision));
  // Ambiguous seeds make contextualization matter; allow slack since the
  // corpus is small.
  EXPECT_GE(f1_with + 0.05, f1_without);
}

TEST(LotClassTest, CategoryVocabIsTopical) {
  World world = MakeWorld();
  LotClassConfig config;
  LotClass method(world.data.corpus, world.model.get(), config);
  method.BuildCategoryVocab(world.data.leaf_name_tokens);
  const auto& vocab = method.category_vocab();
  ASSERT_EQ(vocab.size(), 4u);
  // Class 1 = "sports": most of its category vocabulary should be
  // sports-theme tokens.
  size_t topical = 0;
  for (int32_t id : vocab[1]) {
    const std::string& token = world.data.corpus.vocab().TokenOf(id);
    if (token.rfind("sports", 0) == 0 || token == "game" ||
        token == "team" || token == "championship") {
      ++topical;
    }
  }
  EXPECT_GT(vocab[1].size(), 5u);
  EXPECT_GT(topical * 2, vocab[1].size());
}

TEST(LotClassTest, ClassifiesAboveIrBaseline) {
  World world = MakeWorld();
  LotClassConfig config;
  LotClass method(world.data.corpus, world.model.get(), config);
  const auto pred = method.Run(world.data.leaf_name_tokens);
  const double lot_f1 = GoldMicroF1(world, pred);
  std::vector<std::vector<int32_t>> name_only;
  for (const auto& names : world.data.leaf_name_tokens) {
    name_only.push_back(names);
  }
  const double ir_f1 = GoldMicroF1(
      world, IrTfIdfClassify(world.data.corpus, name_only));
  EXPECT_GT(lot_f1, 0.6);
  EXPECT_GT(lot_f1 + 0.05, ir_f1);
}

TEST(XClassTest, PipelineAndAblationOrdering) {
  World world = MakeWorld();
  XClassConfig config;
  XClass method(world.data.corpus, world.model.get(), config);
  const auto pred = method.Run(world.data.leaf_name_tokens);
  const double full = GoldMicroF1(world, pred);
  const double rep = GoldMicroF1(world, method.RepOnly());
  const double align = GoldMicroF1(world, method.AlignOnly());
  EXPECT_GT(full, 0.6);
  // Paper ordering: full >= align >= rep (allow small slack).
  EXPECT_GE(full + 0.08, align);
  EXPECT_GE(align + 0.08, rep);
}

TEST(XClassTest, DocRepsClusterByClass) {
  World world = MakeWorld();
  XClassConfig config;
  XClass method(world.data.corpus, world.model.get(), config);
  method.Run(world.data.leaf_name_tokens);
  const la::Matrix& reps = method.doc_reps();
  double same = 0.0;
  double cross = 0.0;
  size_t same_n = 0;
  size_t cross_n = 0;
  const auto gold = world.data.corpus.GoldLabels();
  for (size_t i = 0; i < 60; ++i) {
    for (size_t j = i + 1; j < 60; ++j) {
      const float sim = la::Cosine(reps.Row(i), reps.Row(j), reps.cols());
      if (gold[i] == gold[j]) {
        same += sim;
        ++same_n;
      } else {
        cross += sim;
        ++cross_n;
      }
    }
  }
  EXPECT_GT(same / same_n, cross / cross_n + 0.05);
}

TEST(PlmBaselineTest, SimpleMatchAboveChance) {
  World world = MakeWorld();
  const auto pred = PlmSimpleMatchClassify(
      world.data.corpus, *world.model, world.data.leaf_name_tokens);
  EXPECT_GT(GoldMicroF1(world, pred), 0.4);
}

}  // namespace
}  // namespace stm::core
