#ifndef STM_TEXT_CORPUS_H_
#define STM_TEXT_CORPUS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "text/vocabulary.h"

namespace stm::text {

// One text unit: a token-id sequence plus gold labels and optional
// metadata. Labels index into the owning corpus' `label_names`. Multi-label
// documents carry several labels; hierarchical datasets store the full
// root-to-leaf path in `label_path`.
struct Document {
  std::vector<int32_t> tokens;

  // Gold labels (indices into Corpus::label_names). Single-label docs have
  // exactly one entry.
  std::vector<int> labels;

  // For hierarchical datasets: gold label path from root (coarse) to leaf
  // (fine). Empty for flat datasets.
  std::vector<int> label_path;

  // Metadata attributes, e.g. {"user": ["u12"], "tag": ["t3", "t7"]}.
  // Keys are metadata type names; values are node identifiers.
  std::map<std::string, std::vector<std::string>> metadata;

  // Convenience: the single gold label; requires exactly one.
  int Label() const;
};

// A corpus: shared vocabulary, label space and documents. Weakly-supervised
// methods receive the corpus *without* labels (labels stay only for
// evaluation) plus seed information (class names / keywords / a few
// labeled ids) held separately in `WeakSupervision`.
class Corpus {
 public:
  Corpus() = default;

  Vocabulary& vocab() { return vocab_; }
  const Vocabulary& vocab() const { return vocab_; }

  std::vector<Document>& docs() { return docs_; }
  const std::vector<Document>& docs() const { return docs_; }

  std::vector<std::string>& label_names() { return label_names_; }
  const std::vector<std::string>& label_names() const { return label_names_; }

  size_t num_docs() const { return docs_.size(); }
  size_t num_labels() const { return label_names_.size(); }

  // Document frequency of every token id (number of docs containing it).
  std::vector<int32_t> DocumentFrequencies() const;

  // Corpus-wide token occurrence counts.
  std::vector<int64_t> TokenCounts() const;

  // Gold single-label vector over all docs (requires single-label corpus).
  std::vector<int> GoldLabels() const;

  // Positions (doc index, token offset) of every occurrence of `token_id`,
  // capped at `max_occurrences` (0 = unlimited).
  std::vector<std::pair<size_t, size_t>> Occurrences(
      int32_t token_id, size_t max_occurrences = 0) const;

 private:
  Vocabulary vocab_;
  std::vector<Document> docs_;
  std::vector<std::string> label_names_;
};

// The weak supervision available to a method, mirroring the tutorial's
// three settings: LABELS (category names only), KEYWORDS (a few seed words
// per class), DOCS (a few labeled documents per class).
struct WeakSupervision {
  // Per-class seed keyword token ids (includes the class name token for
  // the LABELS setting).
  std::vector<std::vector<int32_t>> class_keywords;

  // Per-class labeled document indices (DOCS setting); empty otherwise.
  std::vector<std::vector<size_t>> labeled_docs;
};

// Deterministic train/test split of document indices.
struct Split {
  std::vector<size_t> train;
  std::vector<size_t> test;
};

// Splits [0, num_docs) with `test_fraction` held out, shuffled by `seed`.
Split MakeSplit(size_t num_docs, double test_fraction, uint64_t seed);

}  // namespace stm::text

#endif  // STM_TEXT_CORPUS_H_
