#ifndef STM_EVAL_METRICS_H_
#define STM_EVAL_METRICS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "la/matrix.h"

namespace stm::eval {

// Single-label classification metrics.

// Fraction of exact matches.
double Accuracy(const std::vector<int>& pred, const std::vector<int>& gold);

// Micro-averaged F1. For single-label multi-class this equals accuracy;
// provided for parity with the tables.
double MicroF1(const std::vector<int>& pred, const std::vector<int>& gold,
               size_t num_classes);

// Macro-averaged F1 (unweighted mean of per-class F1; absent classes
// contribute 0).
double MacroF1(const std::vector<int>& pred, const std::vector<int>& gold,
               size_t num_classes);

// num_classes x num_classes confusion counts; rows = gold, cols = pred.
la::Matrix ConfusionMatrix(const std::vector<int>& pred,
                           const std::vector<int>& gold,
                           size_t num_classes);

// Renders a confusion matrix with row/col labels for bench output.
std::string FormatConfusion(const la::Matrix& confusion,
                            const std::vector<std::string>& labels);

// Multi-label metrics. `pred`/`gold` are per-document label-id sets
// (unsorted ok); `scores` are per-document ranked label ids (best first).

// Example-F1 = mean_i 2|pred_i ∩ gold_i| / (|pred_i| + |gold_i|).
double ExampleF1(const std::vector<std::vector<int>>& pred,
                 const std::vector<std::vector<int>>& gold);

// Precision@k over ranked predictions.
double PrecisionAtK(const std::vector<std::vector<int>>& ranked,
                    const std::vector<std::vector<int>>& gold, size_t k);

// NDCG@k with binary relevance.
double NdcgAtK(const std::vector<std::vector<int>>& ranked,
               const std::vector<std::vector<int>>& gold, size_t k);

}  // namespace stm::eval

#endif  // STM_EVAL_METRICS_H_
