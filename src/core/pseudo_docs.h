#ifndef STM_CORE_PSEUDO_DOCS_H_
#define STM_CORE_PSEUDO_DOCS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "embedding/sgns.h"

namespace stm::core {

// vMF pseudo-document generator shared by WeSTClass and WeSHClass.
// Fits a von Mises-Fisher distribution over the seed-word embeddings of a
// class and emits keyword-bag documents around sampled topic directions,
// interpolated with background unigram noise.
struct PseudoDocOptions {
  size_t docs_per_class = 40;
  size_t doc_len = 40;
  size_t topical_candidates = 50;
  float background_alpha = 0.2f;
  bool enable_vmf = true;  // false: uniform seed bags (No-vMF ablation)
};

class PseudoDocGenerator {
 public:
  // `background` is an unnormalized unigram distribution over the
  // vocabulary (special tokens must carry zero mass).
  PseudoDocGenerator(const embedding::WordEmbeddings* embeddings,
                     std::vector<double> background,
                     const PseudoDocOptions& options);

  // Pseudo documents for one class given its seed token ids.
  std::vector<std::vector<int32_t>> Generate(
      const std::vector<int32_t>& seeds, Rng& rng) const;

 private:
  const embedding::WordEmbeddings* embeddings_;
  AliasSampler background_;
  PseudoDocOptions options_;
};

}  // namespace stm::core

#endif  // STM_CORE_PSEUDO_DOCS_H_
