#include "embedding/sgns.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "common/string_util.h"
#include "text/vocabulary.h"

namespace stm::embedding {

namespace {

float FastSigmoid(float x) {
  if (x > 8.0f) return 1.0f;
  if (x < -8.0f) return 0.0f;
  return 1.0f / (1.0f + std::exp(-x));
}

// One SGNS update: positive (center, context) plus `negatives` samples.
// Updates in_vec (center row) and the output matrix rows.
void SgnsUpdate(float* in_vec, la::Matrix& out, int32_t positive,
                const AliasSampler& noise, Rng& rng, int negatives,
                float lr, size_t dim, std::vector<float>& grad_in) {
  std::fill(grad_in.begin(), grad_in.end(), 0.0f);
  for (int n = 0; n <= negatives; ++n) {
    const int32_t target =
        n == 0 ? positive : static_cast<int32_t>(noise.Sample(rng));
    if (n > 0 && target == positive) continue;
    const float label = n == 0 ? 1.0f : 0.0f;
    float* out_vec = out.Row(static_cast<size_t>(target));
    const float score = la::Dot(in_vec, out_vec, dim);
    const float gradient = (FastSigmoid(score) - label) * lr;
    for (size_t j = 0; j < dim; ++j) {
      grad_in[j] += gradient * out_vec[j];
      out_vec[j] -= gradient * in_vec[j];
    }
  }
  for (size_t j = 0; j < dim; ++j) in_vec[j] -= grad_in[j];
}

std::vector<double> UnigramNoise(
    const std::vector<std::vector<int32_t>>& docs, size_t vocab_size) {
  std::vector<double> counts(vocab_size, 0.0);
  for (const auto& doc : docs) {
    for (int32_t id : doc) {
      if (id >= text::kNumSpecialTokens &&
          static_cast<size_t>(id) < vocab_size) {
        counts[static_cast<size_t>(id)] += 1.0;
      }
    }
  }
  for (double& c : counts) c = std::pow(c, 0.75);
  return counts;
}

// Shared SGNS training core. `counts` are the integer occurrence counts
// over [0, vocab_size); `for_each_doc` runs one epoch, invoking its
// callback once per document in global order (the same order every
// epoch), and reports any I/O failure. Occurrence counts convert to the
// exact doubles the per-token accumulation produced (integers < 2^53),
// so the corpus-derived and docs-derived paths train bit-identically.
template <typename ForEachDoc>
StatusOr<la::Matrix> TrainSgnsCore(size_t vocab_size,
                                   const SgnsConfig& config,
                                   const std::vector<int64_t>& counts,
                                   const ForEachDoc& for_each_doc) {
  STM_CHECK_GT(vocab_size, 0u);
  STM_CHECK_EQ(counts.size(), vocab_size);
  Rng rng(config.seed);
  const size_t dim = config.dim;
  la::Matrix in(vocab_size, dim);
  la::Matrix out(vocab_size, dim);
  for (size_t i = 0; i < in.size(); ++i) {
    in.data()[i] =
        static_cast<float>(rng.Uniform(-0.5, 0.5)) / static_cast<float>(dim);
  }

  std::vector<double> noise_weights(vocab_size, 0.0);
  for (size_t id = text::kNumSpecialTokens; id < vocab_size; ++id) {
    noise_weights[id] = std::pow(static_cast<double>(counts[id]), 0.75);
  }
  double total_mass = 0.0;
  for (double w : noise_weights) total_mass += w;
  if (total_mass == 0.0) return std::move(in);
  AliasSampler noise(noise_weights);

  // Raw counts for subsampling.
  std::vector<double> freq(vocab_size, 0.0);
  double total_tokens = 0.0;
  for (size_t id = 0; id < vocab_size; ++id) {
    freq[id] = static_cast<double>(counts[id]);
    total_tokens += freq[id];
  }

  std::vector<float> grad_in(dim);
  std::vector<int32_t> kept;
  const float lr0 = config.lr;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    const float lr =
        lr0 * (1.0f - static_cast<float>(epoch) / config.epochs) + 1e-4f;
    STM_RETURN_IF_ERROR(
        for_each_doc([&](const int32_t* tokens, size_t num_tokens) {
          kept.clear();
          for (size_t i = 0; i < num_tokens; ++i) {
            const int32_t id = tokens[i];
            if (id < text::kNumSpecialTokens ||
                static_cast<size_t>(id) >= vocab_size) {
              continue;
            }
            if (config.subsample > 0.0) {
              const double f = freq[static_cast<size_t>(id)] / total_tokens;
              const double keep =
                  std::sqrt(config.subsample / f) + config.subsample / f;
              if (keep < 1.0 && !rng.Bernoulli(keep)) continue;
            }
            kept.push_back(id);
          }
          for (size_t t = 0; t < kept.size(); ++t) {
            const int span = 1 + static_cast<int>(rng.UniformInt(
                                     static_cast<uint64_t>(config.window)));
            for (int off = -span; off <= span; ++off) {
              if (off == 0) continue;
              const long ctx = static_cast<long>(t) + off;
              if (ctx < 0 || ctx >= static_cast<long>(kept.size())) continue;
              SgnsUpdate(in.Row(static_cast<size_t>(kept[t])), out,
                         kept[static_cast<size_t>(ctx)], noise, rng,
                         config.negatives, lr, dim, grad_in);
            }
          }
        }));
  }
  return std::move(in);
}

}  // namespace

WordEmbeddings::WordEmbeddings(la::Matrix vectors)
    : vectors_(std::move(vectors)) {}

WordEmbeddings WordEmbeddings::Train(
    const std::vector<std::vector<int32_t>>& docs, size_t vocab_size,
    const SgnsConfig& config) {
  std::vector<int64_t> counts(vocab_size, 0);
  for (const auto& doc : docs) {
    for (int32_t id : doc) {
      if (id >= 0 && static_cast<size_t>(id) < vocab_size) {
        counts[static_cast<size_t>(id)]++;
      }
    }
  }
  StatusOr<la::Matrix> in = TrainSgnsCore(
      vocab_size, config, counts,
      [&docs](const auto& visit_doc) -> Status {
        for (const auto& doc : docs) visit_doc(doc.data(), doc.size());
        return Status::Ok();
      });
  STM_CHECK(in.ok()) << in.status().message();
  return WordEmbeddings(std::move(in).value());
}

StatusOr<WordEmbeddings> WordEmbeddings::Train(
    const text::CorpusReader& corpus, const SgnsConfig& config) {
  STM_ASSIGN_OR_RETURN(
      la::Matrix in,
      TrainSgnsCore(corpus.vocab().size(), config, corpus.TokenCounts(),
                    [&corpus](const auto& visit_doc) -> Status {
                      return corpus.VisitAll(
                          [&visit_doc](size_t, const text::DocView& doc) {
                            visit_doc(doc.tokens, doc.num_tokens);
                          });
                    }));
  return WordEmbeddings(std::move(in));
}

std::vector<float> WordEmbeddings::UnitVectorOf(int32_t id) const {
  STM_CHECK_GE(id, 0);
  STM_CHECK_LT(static_cast<size_t>(id), vectors_.rows());
  std::vector<float> v = vectors_.RowVec(static_cast<size_t>(id));
  la::NormalizeInPlace(v.data(), v.size());
  return v;
}

std::vector<std::pair<int32_t, float>> WordEmbeddings::MostSimilar(
    const std::vector<float>& query, size_t k,
    const std::vector<int32_t>& exclude, int32_t first_regular_id) const {
  STM_CHECK_EQ(query.size(), dim());
  const ann::Index* index = nullptr;
  {
    std::lock_guard<std::mutex> lock(index_mutex_);
    if (!index_) {
      index_ = std::make_unique<ann::Index>(ann::Index::Build(vectors_));
    }
    index = index_.get();
  }
  // The index covers the whole table, so over-fetch by the number of ids
  // the caller filters out; on the exact tier the surviving top-k then
  // matches the old full scan (LSH stays approximate either way).
  const size_t skippable =
      exclude.size() + static_cast<size_t>(std::max(first_regular_id, 0));
  const std::vector<ann::Neighbor> top =
      index->TopK1(query.data(), k + skippable);
  std::vector<std::pair<int32_t, float>> scored;
  scored.reserve(k);
  for (const ann::Neighbor& n : top) {
    if (scored.size() >= k) break;
    const int32_t id = static_cast<int32_t>(n.id);
    if (id < first_regular_id) continue;
    if (std::find(exclude.begin(), exclude.end(), id) != exclude.end()) {
      continue;
    }
    scored.emplace_back(id, n.score);
  }
  return scored;
}

std::vector<float> WordEmbeddings::AverageOf(
    const std::vector<int32_t>& ids) const {
  std::vector<float> mean(dim(), 0.0f);
  size_t used = 0;
  for (int32_t id : ids) {
    if (id < 0 || static_cast<size_t>(id) >= vectors_.rows()) continue;
    const std::vector<float> unit = UnitVectorOf(id);
    la::Axpy(1.0f, unit.data(), mean.data(), dim());
    ++used;
  }
  if (used > 0) la::NormalizeInPlace(mean.data(), mean.size());
  return mean;
}

namespace {

constexpr uint32_t kEmbeddingMagic = 0x53544D45;  // "STME"

}  // namespace

Status WordEmbeddings::Save(Env* env, const std::string& path) const {
  BinaryWriter writer;
  writer.WriteU64(vectors_.rows());
  writer.WriteU64(vectors_.cols());
  writer.WriteFloats(std::vector<float>(
      vectors_.data(), vectors_.data() + vectors_.size()));
  return writer.FlushToEnv(env, path, kEmbeddingMagic);
}

StatusOr<std::unique_ptr<WordEmbeddings>> WordEmbeddings::Load(
    Env* env, const std::string& path) {
  STM_ASSIGN_OR_RETURN(
      BinaryReader reader,
      BinaryReader::OpenArtifact(env, path, kEmbeddingMagic));
  uint64_t rows = 0, cols = 0;
  STM_RETURN_IF_ERROR(reader.Read(&rows));
  STM_RETURN_IF_ERROR(reader.Read(&cols));
  std::vector<float> values;
  STM_RETURN_IF_ERROR(reader.Read(&values));
  STM_RETURN_IF_ERROR(reader.Finish());
  // Divide instead of multiplying so hostile shapes cannot wrap.
  if (cols == 0 ? rows != 0 || !values.empty()
                : rows != values.size() / cols ||
                      values.size() % cols != 0) {
    return CorruptDataError(
        StrFormat("%s: embedding shape %llux%llu does not match %zu stored "
                  "values",
                  path.c_str(), static_cast<unsigned long long>(rows),
                  static_cast<unsigned long long>(cols), values.size()));
  }
  la::Matrix table(static_cast<size_t>(rows), static_cast<size_t>(cols));
  std::copy(values.begin(), values.end(), table.data());
  return std::make_unique<WordEmbeddings>(std::move(table));
}

bool WordEmbeddings::Save(const std::string& path) const {
  return Save(Env::Default(), path).ok();
}

std::unique_ptr<WordEmbeddings> WordEmbeddings::Load(
    const std::string& path) {
  StatusOr<std::unique_ptr<WordEmbeddings>> result =
      Load(Env::Default(), path);
  return result.ok() ? std::move(result).value() : nullptr;
}

la::Matrix TrainDocEmbeddings(const std::vector<std::vector<int32_t>>& docs,
                              size_t vocab_size,
                              const DocEmbeddingConfig& config) {
  Rng rng(config.seed);
  const size_t dim = config.dim;
  la::Matrix doc_vecs(docs.size(), dim);
  la::Matrix out(vocab_size, dim);
  for (size_t i = 0; i < doc_vecs.size(); ++i) {
    doc_vecs.data()[i] =
        static_cast<float>(rng.Uniform(-0.5, 0.5)) / static_cast<float>(dim);
  }
  const std::vector<double> noise_weights = UnigramNoise(docs, vocab_size);
  double total_mass = 0.0;
  for (double w : noise_weights) total_mass += w;
  if (total_mass == 0.0) return doc_vecs;
  AliasSampler noise(noise_weights);

  std::vector<float> grad_in(dim);
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    const float lr = config.lr *
                         (1.0f - static_cast<float>(epoch) / config.epochs) +
                     1e-4f;
    for (size_t d = 0; d < docs.size(); ++d) {
      for (int32_t id : docs[d]) {
        if (id < text::kNumSpecialTokens ||
            static_cast<size_t>(id) >= vocab_size) {
          continue;
        }
        SgnsUpdate(doc_vecs.Row(d), out, id, noise, rng, config.negatives,
                   lr, dim, grad_in);
      }
    }
  }
  return doc_vecs;
}

}  // namespace stm::embedding
