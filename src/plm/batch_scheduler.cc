#include "plm/batch_scheduler.h"

#include <algorithm>
#include <limits>
#include <mutex>
#include <numeric>

#include "common/check.h"
#include "common/env_parse.h"

namespace stm::plm {

namespace {

BatchOptions OptionsFromEnv() {
  BatchOptions options;
  const size_t mode = ParseEnumEnv("STM_ENCODE_BATCH",
                                   {"perdoc", "padded", "bucketed"},
                                   /*fallback_index=*/2);
  options.mode = mode == 0   ? BatchMode::kPerDoc
                 : mode == 1 ? BatchMode::kPadded
                             : BatchMode::kBucketed;
  options.max_waste =
      ParseFloatEnv("STM_ENCODE_BUCKET_WASTE", options.max_waste, 0.0f, 1.0f);
  options.max_bucket_tokens =
      ParseSizeEnv("STM_ENCODE_BUCKET_TOKENS", options.max_bucket_tokens, 1,
                   std::numeric_limits<size_t>::max());
  return options;
}

std::mutex& OptionsMutex() {
  static std::mutex mu;
  return mu;
}

BatchOptions& GlobalOptions() {
  static BatchOptions options = OptionsFromEnv();
  return options;
}

}  // namespace

BatchOptions GetBatchOptions() {
  std::lock_guard<std::mutex> lock(OptionsMutex());
  return GlobalOptions();
}

void SetBatchOptions(const BatchOptions& options) {
  STM_CHECK_GE(options.max_waste, 0.0f);
  STM_CHECK_LE(options.max_waste, 1.0f);
  STM_CHECK_GT(options.max_bucket_tokens, 0u);
  std::lock_guard<std::mutex> lock(OptionsMutex());
  GlobalOptions() = options;
}

BatchPlan PlanBuckets(const std::vector<size_t>& lengths,
                      const BatchOptions& options) {
  BatchPlan plan;
  const size_t n = lengths.size();
  if (n == 0) return plan;
  for (size_t len : lengths) {
    STM_CHECK_GT(len, 0u);
    plan.real_tokens += len;
  }

  if (options.mode == BatchMode::kPerDoc) {
    plan.buckets.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      plan.buckets.push_back({lengths[i], {i}});
      plan.padded_tokens += lengths[i];
    }
    return plan;
  }

  if (options.mode == BatchMode::kPadded) {
    // Everything runs at the global max length; the token bound only
    // chunks the batch (in input order) so activation memory stays flat —
    // the per-document padding bill is the same in every chunk.
    const size_t seq = *std::max_element(lengths.begin(), lengths.end());
    const size_t per_bucket =
        std::max<size_t>(1, options.max_bucket_tokens / seq);
    for (size_t start = 0; start < n; start += per_bucket) {
      EncodeBucket bucket;
      bucket.seq = seq;
      for (size_t i = start; i < std::min(n, start + per_bucket); ++i) {
        bucket.docs.push_back(i);
      }
      plan.padded_tokens += seq * bucket.docs.size();
      plan.buckets.push_back(std::move(bucket));
    }
    return plan;
  }

  // Bucketed: sort by (length desc, index asc) — the index tie-break keeps
  // the plan deterministic — then greedily fill. A bucket's padded length
  // is fixed by its first (longest) member, so appending a document only
  // ever adds `seq - len` pad tokens; the bucket closes when the next
  // document would push the pad fraction past max_waste or the token
  // count past max_bucket_tokens.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (lengths[a] != lengths[b]) return lengths[a] > lengths[b];
    return a < b;
  });

  EncodeBucket bucket;
  size_t bucket_real = 0;
  const auto flush = [&]() {
    if (bucket.docs.empty()) return;
    plan.padded_tokens += bucket.seq * bucket.docs.size();
    plan.buckets.push_back(std::move(bucket));
    bucket = EncodeBucket();
    bucket_real = 0;
  };
  for (size_t i : order) {
    const size_t len = lengths[i];
    if (!bucket.docs.empty()) {
      const size_t count = bucket.docs.size() + 1;
      const size_t padded = bucket.seq * count;
      const float waste = static_cast<float>(padded - (bucket_real + len)) /
                          static_cast<float>(padded);
      if (padded > options.max_bucket_tokens || waste > options.max_waste) {
        flush();
      }
    }
    if (bucket.docs.empty()) bucket.seq = len;
    bucket.docs.push_back(i);
    bucket_real += len;
  }
  flush();
  return plan;
}

}  // namespace stm::plm
