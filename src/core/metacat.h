#ifndef STM_CORE_METACAT_H_
#define STM_CORE_METACAT_H_

#include <cstdint>
#include <vector>

#include "graph/hin.h"
#include "text/corpus.h"

namespace stm::core {

// MetaCat (Zhang et al., SIGIR'20): minimally supervised categorization
// of text with metadata.
//   1. Cast the corpus + metadata as a heterogeneous information network
//      (docs, users, tags, words, labels-of-seed-docs) and learn joint
//      embeddings of all node types from meta-path walks — the generative
//      process "user -> doc -> words/tags" turned into a likelihood.
//   2. Generate synthetic training documents per label by sampling words
//      whose embeddings are near the label embedding.
//   3. Train a classifier on [bag-of-words ; HIN doc embedding] features
//      from the seed docs plus the synthesized docs.
struct MetaCatConfig {
  size_t embedding_dim = 32;
  int walks_per_node = 4;
  int walk_length = 9;
  size_t synth_docs_per_class = 30;
  size_t synth_doc_len = 30;
  float word_temperature = 0.12f;   // softmax temp for word sampling
  int classifier_epochs = 20;
  bool use_metadata_features = true;  // ablation: text-only features
  uint64_t seed = 131;
};

class MetaCat {
 public:
  MetaCat(const text::Corpus& corpus, const MetaCatConfig& config);

  // `labeled_docs[c]` = seed documents of class c. Returns predictions
  // for every document.
  std::vector<int> Run(const std::vector<std::vector<size_t>>& labeled_docs);

 private:
  const text::Corpus& corpus_;
  MetaCatConfig config_;
};

}  // namespace stm::core

#endif  // STM_CORE_METACAT_H_
