#ifndef STM_LA_GEMM_KERNELS_H_
#define STM_LA_GEMM_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace stm::la {

namespace detail {
struct GemmKernelFns;
}

// Cache-blocked, register-tiled GEMM kernel library.
//
// Layout (see DESIGN.md, "Kernel library"):
//  * B is packed once per call into column panels of the active tier's nr
//    columns, stored p-major (panel jp holds B[p][jp*nr .. jp*nr+nr) for
//    every p, zero-padded at the right edge);
//  * A is packed per row block into panels of the tier's mr rows, also
//    p-major and zero-padded, sized so a block stays L2-resident;
//  * the micro-kernel accumulates an mr x nr output tile in registers
//    over the full k extent, then adds the tile into C.
//
// Four micro-kernel builds exist: a portable one and (on x86-64) AVX2+FMA,
// AVX-512F/BW and AVX-512VNNI tiers, selected once at startup via cpuid
// (overridable with STM_ISA=generic|avx2|avx512|vnni|auto). Dispatch
// depends on the machine and environment, never on the thread count, so
// output is bit-identical across STM_NUM_THREADS on any given machine.
// Across tiers: every FMA-built tier produces identical fp32 bits (a
// per-cell chain is one accumulator over ascending p, independent of the
// tile shape), and the int8 path is exact integer arithmetic plus one
// shared dequantization expression, so int8 output is identical across
// ALL tiers. Only generic-vs-FMA fp32 may differ (split vs fused
// rounding) — see GemmKernelFpRegime().

// Micro-tile extents of the portable/AVX2 builds. Part of those tiers'
// pack layouts; the AVX-512 tiers widen to 8x16 (see GemmKernelFns::mr/
// nr for the active tier's extents).
inline constexpr size_t kGemmMr = 4;
inline constexpr size_t kGemmNr = 8;

// Shapes below this many multiply-adds run the serial scalar reference
// (packing overhead would dominate). Shape-only, so the dispatch is
// thread-count invariant.
inline constexpr size_t kGemmPackedMinOps = size_t{1} << 15;

// ---- serial scalar reference kernels ----
//
// The seed implementation, kept as the correctness baseline for tests and
// bench, and as the execution path for tiny shapes.

// c[m, n] += a[m, k] * b[k, n].
void ReferenceGemmAcc(const float* a, const float* b, float* c, size_t m,
                      size_t k, size_t n);

// c[m, n] += a[m, k] * b[n, k]^T.
void ReferenceGemmBtAcc(const float* a, const float* b, float* c, size_t m,
                        size_t k, size_t n);

// c[m, n] += a[k, m]^T * b[k, n].
void ReferenceGemmAtAcc(const float* a, const float* b, float* c, size_t m,
                        size_t k, size_t n);

// ---- packed kernels ----

// True when (m, k, n) takes the packed path.
bool UsePackedGemm(size_t m, size_t k, size_t n);

// c[m, n] += A * B over strided operands: A[i][p] = a[i*a_rs + p*a_cs],
// B[p][j] = b[p*b_rs + j*b_cs], C row-major with leading dimension n.
// The three transpose variants of the library map onto it as:
//   Gemm:   A = (a, k, 1),  B = (b, n, 1)
//   GemmBt: A = (a, k, 1),  B = (b, 1, k)   (B^T view of an n x k array)
//   GemmAt: A = (a, 1, m),  B = (b, n, 1)   (A^T view of a k x m array)
// Parallel over row blocks on the global thread pool; chunking and
// accumulation order depend only on the shape.
void PackedGemmAcc(const float* a, size_t a_rs, size_t a_cs, const float* b,
                   size_t b_rs, size_t b_cs, float* c, size_t m, size_t k,
                   size_t n);

// A pre-packed fp32 B operand: the strided B quantized into the active
// tier's panel layout ONCE (e.g. at plm::MiniLm freeze time) and reused
// across every GEMM against it — the per-call B pack of PackedGemmAcc
// disappears from the hot path. PrepackedGemmAcc always runs the packed
// micro-kernel; because the reference loops and the micro-kernel share
// one FP-contraction regime (see gemm_kernels_impl.h), its output is
// bit-identical to GemmAcc on the same operands at ANY shape, so callers
// can route small per-document GEMMs through it without changing bits.
struct PackedBF32 {
  size_t k = 0;         // rows of B (the contraction extent)
  size_t n = 0;         // columns of B
  size_t panel_nr = 0;  // panel width the panels were packed for
  // Kernel build the panels were packed for (width-aware freeze tier, see
  // FreezeKernelsForWidth); null means the active tier. Never serialized.
  const detail::GemmKernelFns* tier = nullptr;
  std::vector<float> panels;
};

// Packs the strided operand B[p][j] = b[p*rs + j*cs]. The tier is chosen
// per operand width (FreezeKernelsForWidth): normally the active tier,
// but a narrow B on an AVX-512 machine packs for the AVX2 kernels whose
// 8-column panels pad it less — same FP-contraction regime, so the GEMM
// bits are unchanged.
PackedBF32 PackFp32B(const float* b, size_t rs, size_t cs, size_t k,
                     size_t n);

// c[m, b.n] += a[m, b.k] (row-major) * B. Parallel over row chunks.
void PrepackedGemmAcc(const float* a, size_t m, const PackedBF32& b,
                      float* c);

// Name of the micro-kernel build selected at startup ("generic",
// "avx2+fma", "avx512" or "avx512+vnni").
const char* GemmKernelIsa();

// FP-contraction regime of the selected build: "fma" (fused multiply-add
// chains) or "portable" (separate multiply and add roundings). Tiers with
// the same regime produce bit-identical fp32 output for the same
// operands; the int8 path is regime-independent. The encode cache salts
// its weight fingerprints with this (not the tier name) so persisted
// embeddings never mix across regimes while still being shared across
// same-regime tiers.
const char* GemmKernelFpRegime();

namespace detail {

inline constexpr size_t CeilDiv(size_t a, size_t b) { return (a + b - 1) / b; }
inline constexpr size_t RoundUp(size_t a, size_t b) {
  return CeilDiv(a, b) * b;
}

// Rows per packed A block: keeps block_rows * k floats around 256KB
// (L2-resident) and a multiple of the tier's mr.
inline size_t GemmABlockRows(size_t k, size_t mr) {
  constexpr size_t kBlockFloats = size_t{64} * 1024;
  const size_t rows = kBlockFloats / (k == 0 ? 1 : k);
  return rows < mr ? mr : (rows / mr) * mr;
}

// Output rows per parallel chunk: ~1M multiply-adds, rounded to whole
// micro-panels of the tier's mr rows. Shape-only, like every grain in
// the library; shared by the fp32 and int8 packed drivers. Chunk
// boundaries never affect bits (each output row's accumulation chain is
// row-local), only load balance.
inline size_t PackedRowGrain(size_t k, size_t n, size_t mr) {
  constexpr size_t kTargetOps = size_t{1} << 20;
  const size_t ops_per_row = k * n;
  if (ops_per_row == 0) return mr;
  const size_t rows = kTargetOps / ops_per_row;
  return RoundUp(rows < 1 ? 1 : rows, mr);
}

// Per-ISA entry points (one namespace per micro-kernel build; see
// gemm_kernels_impl.h).
struct GemmKernelFns {
  // Packs B panels [jp0, jp1) of the strided operand into `out` (panel jp
  // at offset jp * k * nr).
  void (*pack_b)(const float* b, size_t rs, size_t cs, size_t k, size_t n,
                 size_t jp0, size_t jp1, float* out);
  // Computes C rows [r0, r1) from the strided A operand and packed B.
  void (*run_rows)(const float* a, size_t a_rs, size_t a_cs,
                   const float* bpack, float* c, size_t k, size_t n,
                   size_t r0, size_t r1);
  // Int8 path (see la/qgemm.h): computes C rows [r0, r1) from row-major
  // offset-quantized A bytes (aq + 64, stride k) and an Int8PackedB's
  // panels/scales/colsums (panels packed at THIS tier's nr). Every ISA
  // build produces identical int32 accumulators, so dequantized output
  // matches bit-for-bit across tiers.
  void (*int8_run_rows)(const uint8_t* aoff, const float* a_scales,
                        const int8_t* bpanels, const float* b_scales,
                        const int32_t* b_colsums, float* c, size_t k,
                        size_t n, size_t r0, size_t r1);
  // Serial scalar kernels built in the same TU as the micro-kernel so
  // both sides of the UsePackedGemm dispatch share one FP-contraction
  // regime (see gemm_kernels_impl.h) — a shape change can move a GEMM
  // across the dispatch threshold without changing a single output bit.
  void (*reference_gemm_acc)(const float* a, const float* b, float* c,
                             size_t m, size_t k, size_t n);
  void (*reference_gemm_bt_acc)(const float* a, const float* b, float* c,
                                size_t m, size_t k, size_t n);
  void (*reference_gemm_at_acc)(const float* a, const float* b, float* c,
                                size_t m, size_t k, size_t n);
  // Micro-tile extents of this build (panel widths follow them).
  size_t mr;
  size_t nr;
  const char* name;
  const char* fp_regime;  // "fma" or "portable"
};

const GemmKernelFns& ActiveGemmKernels();

// Tier used to pack a long-lived B operand of width `n` (ROADMAP item 4:
// width-aware freeze). Normally the active tier; when STM_ISA is auto
// and n is narrow (below STM_GEMM_NARROW_N, default 64), the widest
// supported same-FP-regime tier whose panel width rounds n up the least
// is chosen instead — on an AVX-512 machine a dim-40 model packs 8-column
// AVX2 panels (40 -> 40) instead of 16-column ones (40 -> 48, 20% padded
// multiply work). An explicit STM_ISA pin disables the hint entirely.
// Same FP regime means identical fp32 bits, and the int8 path is exact in
// every tier, so the choice never changes output, only throughput.
const GemmKernelFns& FreezeKernelsForWidth(size_t n);

// One compiled-in kernel tier, plus whether this machine's cpuid allows
// running it. Test hook: the per-tier shape sweeps drive every compiled
// tier's kernels directly (the one-time dispatch cannot be switched
// in-process), skipping tiers the hardware cannot execute.
struct GemmKernelTier {
  const GemmKernelFns* fns;
  bool supported;
};

// Every tier compiled into this binary, ordered generic -> widest. The
// auto dispatch picks the last supported entry.
std::vector<GemmKernelTier> CompiledGemmKernelTiers();

}  // namespace detail

}  // namespace stm::la

#endif  // STM_LA_GEMM_KERNELS_H_
