// ISA-generic body of the packed GEMM kernels. Included (once per kernel
// tier) by gemm_kernels_generic.cc / gemm_kernels_avx2.cc /
// gemm_kernels_avx512.cc / gemm_kernels_vnni.cc with
// STM_GEMM_KERNEL_NAMESPACE and STM_GEMM_KERNEL_NAME set; the including
// translation unit supplies the compiler flags (-mavx2 -mfma for the AVX2
// build, the -mavx512* family for the AVX-512 builds) and may widen the
// register tile via STM_GEMM_KERNEL_MR / STM_GEMM_KERNEL_NR (defaults
// 4x8). The plain fixed-trip-count loops below are written so GCC/Clang
// auto-vectorize the kNr-wide inner dimension into the widest available
// vectors.
//
// NO include guard: this file is a template expanded once per ISA
// namespace. Do not include it outside the kernel translation units.

#ifndef STM_GEMM_KERNEL_NAMESPACE
#error "define STM_GEMM_KERNEL_NAMESPACE before including gemm_kernels_impl.h"
#endif
#ifndef STM_GEMM_KERNEL_NAME
#error "define STM_GEMM_KERNEL_NAME before including gemm_kernels_impl.h"
#endif
#ifndef STM_GEMM_KERNEL_MR
#define STM_GEMM_KERNEL_MR 4
#endif
#ifndef STM_GEMM_KERNEL_NR
#define STM_GEMM_KERNEL_NR 8
#endif

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "la/gemm_kernels.h"
#include "la/qgemm.h"
#include "la/workspace.h"

#if defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace stm::la::detail::STM_GEMM_KERNEL_NAMESPACE {

// Micro-tile extents of THIS tier. Part of this tier's pack layout; the
// driver reads them back through GemmKernelFns::mr/nr so panel sizing and
// row-chunk rounding always match the kernel that will consume them.
inline constexpr size_t kMr = STM_GEMM_KERNEL_MR;
inline constexpr size_t kNr = STM_GEMM_KERNEL_NR;

// One multiply-accumulate step of an accumulation chain. The fused/split
// rounding choice is made HERE, per ISA build, not left to the compiler's
// contraction pass: sanitizer instrumentation (e.g. -fsanitize=thread)
// changes which loops GCC contracts, and if the micro-kernel contracted
// while the reference loops did not, the UsePackedGemm shape dispatch
// would leak into output bits. With the builtin both sides of the
// dispatch round identically in every build regime.
inline float MulAdd(float a, float b, float acc) {
#if defined(__FMA__) || defined(__ARM_FEATURE_FMA)
  return __builtin_fmaf(a, b, acc);
#else
  return acc + a * b;
#endif
}

// The FP-contraction regime this tier's chains round under. Every tier
// built with FMA produces bit-identical fp32 output for the same operands
// (a per-cell chain is one accumulator over ascending p regardless of the
// tile shape), so the regime — not the tier name — is the equivalence
// class for fp32 bits. The encode cache keys on it (see
// plm::MiniLm::WeightsFingerprint).
inline constexpr const char* kFpRegime =
#if defined(__FMA__) || defined(__ARM_FEATURE_FMA)
    "fma";
#else
    "portable";
#endif

// Packs B panels [jp0, jp1): panel jp holds, p-major, the kNr columns
// starting at jp * kNr, zero-padded past n. Strided reads make the same
// routine serve both B and B^T operands.
void PackBPanels(const float* b, size_t rs, size_t cs, size_t k,
                 size_t n, size_t jp0, size_t jp1, float* out) {
  for (size_t jp = jp0; jp < jp1; ++jp) {
    const size_t j0 = jp * kNr;
    const size_t nr = n - j0 < kNr ? n - j0 : kNr;
    float* panel = out + jp * k * kNr;
    for (size_t p = 0; p < k; ++p) {
      const float* src = b + p * rs + j0 * cs;
      float* dst = panel + p * kNr;
      for (size_t jj = 0; jj < nr; ++jj) dst[jj] = src[jj * cs];
      for (size_t jj = nr; jj < kNr; ++jj) dst[jj] = 0.0f;
    }
  }
}

// Packs rows [i0, i0 + mr) of the strided A operand into one p-major
// micro-panel (kMr floats per p, zero-padded past mr).
inline void PackAPanel(const float* a, size_t rs, size_t cs, size_t k,
                       size_t i0, size_t mr, float* out) {
  for (size_t p = 0; p < k; ++p) {
    float* dst = out + p * kMr;
    const float* src = a + i0 * rs + p * cs;
    for (size_t ii = 0; ii < mr; ++ii) dst[ii] = src[ii * rs];
    for (size_t ii = mr; ii < kMr; ++ii) dst[ii] = 0.0f;
  }
}

// Register-tiled micro-kernel: acc[kMr][kNr] += Apanel * Bpanel over the
// full k extent (ascending p — the fixed accumulation order the
// determinism contract relies on), then C[mr, nr] += acc.
inline void MicroKernel(const float* apanel, const float* bpanel, size_t k,
                        float* c, size_t ldc, size_t mr, size_t nr) {
  float acc[kMr][kNr] = {};
  for (size_t p = 0; p < k; ++p) {
    const float* av = apanel + p * kMr;
    const float* bv = bpanel + p * kNr;
    for (size_t ii = 0; ii < kMr; ++ii) {
      const float aval = av[ii];
      for (size_t jj = 0; jj < kNr; ++jj) {
        acc[ii][jj] = MulAdd(aval, bv[jj], acc[ii][jj]);
      }
    }
  }
  if (mr == kMr && nr == kNr) {
    for (size_t ii = 0; ii < kMr; ++ii) {
      float* crow = c + ii * ldc;
      for (size_t jj = 0; jj < kNr; ++jj) crow[jj] += acc[ii][jj];
    }
  } else {
    for (size_t ii = 0; ii < mr; ++ii) {
      float* crow = c + ii * ldc;
      for (size_t jj = 0; jj < nr; ++jj) crow[jj] += acc[ii][jj];
    }
  }
}

// Computes C rows [r0, r1): packs A in L2-sized row blocks (buffer
// borrowed from the calling thread's workspace) and sweeps every B panel
// per block. Writes are confined to C rows [r0, r1), so concurrent chunks
// never touch the same output.
void RunRowChunk(const float* a, size_t a_rs, size_t a_cs,
                 const float* bpack, float* c, size_t k, size_t n,
                 size_t r0, size_t r1) {
  const size_t npanels = CeilDiv(n, kNr);
  const size_t block_rows = GemmABlockRows(k, kMr);
  std::vector<float> apack =
      AcquireVec(RoundUp(block_rows < r1 - r0 ? block_rows : r1 - r0,
                         kMr) *
                 k);
  for (size_t ic = r0; ic < r1; ic += block_rows) {
    const size_t ie = ic + block_rows < r1 ? ic + block_rows : r1;
    for (size_t i0 = ic; i0 < ie; i0 += kMr) {
      const size_t mr = ie - i0 < kMr ? ie - i0 : kMr;
      PackAPanel(a, a_rs, a_cs, k, i0, mr,
                 apack.data() + ((i0 - ic) / kMr) * k * kMr);
    }
    for (size_t jp = 0; jp < npanels; ++jp) {
      const size_t j0 = jp * kNr;
      const size_t nr = n - j0 < kNr ? n - j0 : kNr;
      const float* bpanel = bpack + jp * k * kNr;
      for (size_t i0 = ic; i0 < ie; i0 += kMr) {
        const size_t mr = ie - i0 < kMr ? ie - i0 : kMr;
        MicroKernel(apack.data() + ((i0 - ic) / kMr) * k * kMr,
                    bpanel, k, c + i0 * n + j0, n, mr, nr);
      }
    }
  }
  ReleaseVec(std::move(apack));
}

// ---- serial scalar reference kernels ----
//
// Compiled once per ISA namespace so they see the SAME floating-point
// contraction flags as the packed micro-kernel above (the FMA-enabled TUs
// fuse `c += a * b` into one rounding). That keeps every per-cell
// accumulation chain — one accumulator, ascending p — bitwise identical
// between the reference and packed kernels, so the shape-based
// UsePackedGemm dispatch can never change output bits: a per-document
// call (small m, reference) and a length-bucketed batch (large m, packed)
// of the same row produce the same floats.

void ReferenceGemmAcc(const float* a, const float* b, float* c, size_t m,
                      size_t k, size_t n) {
  for (size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (size_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b + p * n;
      for (size_t j = 0; j < n; ++j) crow[j] = MulAdd(av, brow[j], crow[j]);
    }
  }
}

void ReferenceGemmBtAcc(const float* a, const float* b, float* c, size_t m,
                        size_t k, size_t n) {
  for (size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (size_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float sum = 0.0f;
      for (size_t p = 0; p < k; ++p) sum = MulAdd(arow[p], brow[p], sum);
      crow[j] += sum;
    }
  }
}

void ReferenceGemmAtAcc(const float* a, const float* b, float* c, size_t m,
                        size_t k, size_t n) {
  for (size_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    for (size_t p = 0; p < k; ++p) {
      const float av = a[p * m + i];
      if (av == 0.0f) continue;
      const float* brow = b + p * n;
      for (size_t j = 0; j < n; ++j) crow[j] = MulAdd(av, brow[j], crow[j]);
    }
  }
}

// ---- int8 quantized path (see la/qgemm.h for the layout contract) ----

// Packs rows [i0, i0 + mr) of the row-major offset-quantized A bytes
// (stride k) into one micro-panel: group g holds kMr * kInt8KGroup
// bytes, byte (ii * 4 + t) = aoff[i0 + ii][g*4 + t]. Padding (past mr or
// k) is filled with the offset byte kInt8AZero, i.e. quantized zero, so
// padded lanes contribute exactly the colsum correction term and cancel.
inline void PackInt8APanel(const uint8_t* aoff, size_t k, size_t i0,
                           size_t mr, uint8_t* out) {
  const size_t kgroups = CeilDiv(k, kInt8KGroup);
  for (size_t g = 0; g < kgroups; ++g) {
    uint8_t* dst = out + g * kMr * kInt8KGroup;
    const size_t p0 = g * kInt8KGroup;
    for (size_t ii = 0; ii < kMr; ++ii) {
      const uint8_t* src = ii < mr ? aoff + (i0 + ii) * k : nullptr;
      for (size_t t = 0; t < kInt8KGroup; ++t) {
        dst[ii * kInt8KGroup + t] =
            (src != nullptr && p0 + t < k)
                ? src[p0 + t]
                : static_cast<uint8_t>(kInt8AZero);
      }
    }
  }
}

// acc[ii][jj] = sum_p (aq[i0+ii][p] + 64) * bq[p][j0+jj] over all k
// groups, then C[mr, nr] += a_scale * b_scale * (acc - 64 * colsum). The
// integer phase is exact in every build (the offset keeps maddubs inside
// int16 range and vpdpbusd is exact by construction — see qgemm.h), so
// dequantized output is identical across ISAs: every tier feeds the same
// int32 accumulators through the same dequantization expression.
inline void MicroKernelInt8(const uint8_t* apanel, const int8_t* bpanel,
                            size_t kgroups, const float* a_scales,
                            const float* b_scales, const int32_t* b_colsums,
                            float* c, size_t ldc, size_t mr, size_t nr) {
  int32_t acc[kMr][kNr];
#if defined(__AVX512BW__) && STM_GEMM_KERNEL_NR == 16
  // 512-bit path: one zmm accumulator per A row, 16 int32 column lanes
  // each. With AVX512VNNI a group is one vpdpbusd (u8 x s8 dot products
  // of 4-byte lanes accumulated exactly into int32); without it the
  // AVX512BW maddubs/madd pair computes the same exact integers.
  static_assert(kMr <= 16, "one zmm accumulator per row");
  __m512i vacc[kMr];
  for (size_t ii = 0; ii < kMr; ++ii) vacc[ii] = _mm512_setzero_si512();
#ifndef __AVX512VNNI__
  const __m512i ones16 = _mm512_set1_epi16(1);
#endif
  for (size_t g = 0; g < kgroups; ++g) {
    const __m512i bv = _mm512_loadu_si512(
        reinterpret_cast<const void*>(bpanel + g * kNr * kInt8KGroup));
    const uint8_t* ap = apanel + g * kMr * kInt8KGroup;
    for (size_t ii = 0; ii < kMr; ++ii) {
      int32_t aw;
      std::memcpy(&aw, ap + ii * kInt8KGroup, sizeof(aw));
      const __m512i av = _mm512_set1_epi32(aw);
#ifdef __AVX512VNNI__
      vacc[ii] = _mm512_dpbusd_epi32(vacc[ii], av, bv);
#else
      vacc[ii] = _mm512_add_epi32(
          vacc[ii],
          _mm512_madd_epi16(_mm512_maddubs_epi16(av, bv), ones16));
#endif
    }
  }
  if (mr == kMr && nr == kNr) {
    // Full-tile fast path: dequantize straight from the accumulator
    // registers. acc - 64*colsum fits int32 up to k ~ 88k — far beyond
    // where acc itself would overflow — and the multiply order (sa*sb)*q
    // matches the scalar expression below, so both epilogues round
    // identically.
    const __m512i voff = _mm512_slli_epi32(
        _mm512_loadu_si512(reinterpret_cast<const void*>(b_colsums)), 6);
    const __m512 vsb = _mm512_loadu_ps(b_scales);
    for (size_t ii = 0; ii < kMr; ++ii) {
      const __m512 q = _mm512_cvtepi32_ps(_mm512_sub_epi32(vacc[ii], voff));
      const __m512 scaled = _mm512_mul_ps(
          _mm512_mul_ps(_mm512_set1_ps(a_scales[ii]), vsb), q);
      float* crow = c + ii * ldc;
      _mm512_storeu_ps(crow, _mm512_add_ps(_mm512_loadu_ps(crow), scaled));
    }
    return;
  }
  for (size_t ii = 0; ii < kMr; ++ii) {
    _mm512_storeu_si512(reinterpret_cast<void*>(acc[ii]), vacc[ii]);
  }
#elif defined(__AVX2__) && STM_GEMM_KERNEL_NR == 8
  static_assert(kMr == 4, "the 256-bit int8 path is written for a 4x8 tile");
  const __m256i ones16 = _mm256_set1_epi16(1);
  __m256i vacc0 = _mm256_setzero_si256();
  __m256i vacc1 = _mm256_setzero_si256();
  __m256i vacc2 = _mm256_setzero_si256();
  __m256i vacc3 = _mm256_setzero_si256();
  for (size_t g = 0; g < kgroups; ++g) {
    const __m256i bv = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(bpanel + g * kNr * kInt8KGroup));
    const uint8_t* ap = apanel + g * kMr * kInt8KGroup;
    int32_t a0, a1, a2, a3;
    std::memcpy(&a0, ap + 0 * kInt8KGroup, sizeof(a0));
    std::memcpy(&a1, ap + 1 * kInt8KGroup, sizeof(a1));
    std::memcpy(&a2, ap + 2 * kInt8KGroup, sizeof(a2));
    std::memcpy(&a3, ap + 3 * kInt8KGroup, sizeof(a3));
    // maddubs: u8 x s8 pairs -> i16 (never saturates here); madd with 1s
    // widens the 4-byte group dot product to exact i32 lanes, one per
    // output column.
    vacc0 = _mm256_add_epi32(
        vacc0, _mm256_madd_epi16(
                   _mm256_maddubs_epi16(_mm256_set1_epi32(a0), bv), ones16));
    vacc1 = _mm256_add_epi32(
        vacc1, _mm256_madd_epi16(
                   _mm256_maddubs_epi16(_mm256_set1_epi32(a1), bv), ones16));
    vacc2 = _mm256_add_epi32(
        vacc2, _mm256_madd_epi16(
                   _mm256_maddubs_epi16(_mm256_set1_epi32(a2), bv), ones16));
    vacc3 = _mm256_add_epi32(
        vacc3, _mm256_madd_epi16(
                   _mm256_maddubs_epi16(_mm256_set1_epi32(a3), bv), ones16));
  }
  if (mr == kMr && nr == kNr) {
    // Full-tile fast path: dequantize straight from the accumulator
    // registers (the scalar epilogue's store/reload round-trip costs as
    // much as the whole integer loop for small k). acc - 64*colsum fits
    // int32 up to k ~ 88k — far beyond where acc itself would overflow —
    // and the multiply order (sa*sb)*q matches the scalar expression
    // below, so both epilogues round identically.
    const __m256i voff = _mm256_slli_epi32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b_colsums)), 6);
    const __m256 vsb = _mm256_loadu_ps(b_scales);
    const __m256 q0 = _mm256_cvtepi32_ps(_mm256_sub_epi32(vacc0, voff));
    const __m256 q1 = _mm256_cvtepi32_ps(_mm256_sub_epi32(vacc1, voff));
    const __m256 q2 = _mm256_cvtepi32_ps(_mm256_sub_epi32(vacc2, voff));
    const __m256 q3 = _mm256_cvtepi32_ps(_mm256_sub_epi32(vacc3, voff));
    const auto store_row = [&](float* crow, float sa, __m256 q) {
      const __m256 scaled =
          _mm256_mul_ps(_mm256_mul_ps(_mm256_set1_ps(sa), vsb), q);
      _mm256_storeu_ps(crow, _mm256_add_ps(_mm256_loadu_ps(crow), scaled));
    };
    store_row(c + 0 * ldc, a_scales[0], q0);
    store_row(c + 1 * ldc, a_scales[1], q1);
    store_row(c + 2 * ldc, a_scales[2], q2);
    store_row(c + 3 * ldc, a_scales[3], q3);
    return;
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc[0]), vacc0);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc[1]), vacc1);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc[2]), vacc2);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc[3]), vacc3);
#else
  for (size_t ii = 0; ii < kMr; ++ii) {
    for (size_t jj = 0; jj < kNr; ++jj) acc[ii][jj] = 0;
  }
  for (size_t g = 0; g < kgroups; ++g) {
    const uint8_t* ap = apanel + g * kMr * kInt8KGroup;
    const int8_t* bp = bpanel + g * kNr * kInt8KGroup;
    for (size_t ii = 0; ii < kMr; ++ii) {
      for (size_t jj = 0; jj < kNr; ++jj) {
        int32_t sum = 0;
        for (size_t t = 0; t < kInt8KGroup; ++t) {
          sum += static_cast<int32_t>(ap[ii * kInt8KGroup + t]) *
                 static_cast<int32_t>(bp[jj * kInt8KGroup + t]);
        }
        acc[ii][jj] += sum;
      }
    }
  }
#endif
  for (size_t ii = 0; ii < mr; ++ii) {
    float* crow = c + ii * ldc;
    const float sa = a_scales[ii];
    for (size_t jj = 0; jj < nr; ++jj) {
      // int64 keeps the offset correction exact even for extreme k; the
      // magnitude is <= k * 63 * 127, exact in float for k <= 2097.
      const int64_t q = static_cast<int64_t>(acc[ii][jj]) -
                        int64_t{kInt8AZero} * b_colsums[jj];
      crow[jj] += sa * b_scales[jj] * static_cast<float>(q);
    }
  }
}

// Int8 analogue of RunRowChunk: packs offset-quantized A rows in L2-sized
// blocks (byte panels carved out of a workspace float buffer) and sweeps
// every B panel per block. Writes are confined to C rows [r0, r1).
void Int8RunRowChunk(const uint8_t* aoff, const float* a_scales,
                     const int8_t* bpanels, const float* b_scales,
                     const int32_t* b_colsums, float* c, size_t k, size_t n,
                     size_t r0, size_t r1) {
  const size_t kgroups = CeilDiv(k, kInt8KGroup);
  const size_t npanels = CeilDiv(n, kNr);
  const size_t panel_bytes = kgroups * kNr * kInt8KGroup;
  const size_t tile_bytes = kgroups * kMr * kInt8KGroup;
  const size_t block_rows = GemmABlockRows(k, kMr);
  const size_t max_rows =
      RoundUp(block_rows < r1 - r0 ? block_rows : r1 - r0, kMr);
  std::vector<float> apackf =
      AcquireVec(CeilDiv((max_rows / kMr) * tile_bytes, sizeof(float)));
  uint8_t* apack = reinterpret_cast<uint8_t*>(apackf.data());
  for (size_t ic = r0; ic < r1; ic += block_rows) {
    const size_t ie = ic + block_rows < r1 ? ic + block_rows : r1;
    for (size_t i0 = ic; i0 < ie; i0 += kMr) {
      const size_t mr = ie - i0 < kMr ? ie - i0 : kMr;
      PackInt8APanel(aoff, k, i0, mr,
                     apack + ((i0 - ic) / kMr) * tile_bytes);
    }
    for (size_t jp = 0; jp < npanels; ++jp) {
      const size_t j0 = jp * kNr;
      const size_t nr = n - j0 < kNr ? n - j0 : kNr;
      const int8_t* bpanel = bpanels + jp * panel_bytes;
      for (size_t i0 = ic; i0 < ie; i0 += kMr) {
        const size_t mr = ie - i0 < kMr ? ie - i0 : kMr;
        MicroKernelInt8(apack + ((i0 - ic) / kMr) * tile_bytes, bpanel,
                        kgroups, a_scales + i0, b_scales + j0,
                        b_colsums + j0, c + i0 * n + j0, n, mr, nr);
      }
    }
  }
  ReleaseVec(std::move(apackf));
}

// The tier's dispatch-table entry. One function so the dispatcher in
// gemm_kernels.cc needs a single declaration per compiled-in namespace
// instead of re-declaring every kernel.
const GemmKernelFns& KernelFns() {
  static const GemmKernelFns fns = {
      &PackBPanels,        &RunRowChunk,          &Int8RunRowChunk,
      &ReferenceGemmAcc,   &ReferenceGemmBtAcc,   &ReferenceGemmAtAcc,
      kMr,                 kNr,                   STM_GEMM_KERNEL_NAME,
      kFpRegime};
  return fns;
}

}  // namespace stm::la::detail::STM_GEMM_KERNEL_NAMESPACE
