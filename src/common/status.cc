#include "common/status.h"

namespace stm {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kCorruptData:
      return "CORRUPT_DATA";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kCancelled:
      return "CANCELLED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  std::string message(context);
  message += ": ";
  message += message_;
  return Status(code_, std::move(message));
}

Status IoError(std::string_view message) {
  return Status(StatusCode::kIoError, std::string(message));
}
Status CorruptDataError(std::string_view message) {
  return Status(StatusCode::kCorruptData, std::string(message));
}
Status InvalidArgumentError(std::string_view message) {
  return Status(StatusCode::kInvalidArgument, std::string(message));
}
Status UnavailableError(std::string_view message) {
  return Status(StatusCode::kUnavailable, std::string(message));
}
Status DeadlineExceededError(std::string_view message) {
  return Status(StatusCode::kDeadlineExceeded, std::string(message));
}
Status CancelledError(std::string_view message) {
  return Status(StatusCode::kCancelled, std::string(message));
}

}  // namespace stm
