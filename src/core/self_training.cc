#include "core/self_training.h"

#include <algorithm>

#include "common/check.h"

namespace stm::core {

std::vector<float> SharpenTargets(const la::Matrix& probs) {
  const size_t n = probs.rows();
  const size_t c = probs.cols();
  // Soft class frequencies.
  std::vector<double> freq(c, 1e-8);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < c; ++j) freq[j] += probs.At(i, j);
  }
  std::vector<float> targets(n * c, 0.0f);
  for (size_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (size_t j = 0; j < c; ++j) {
      const double p = probs.At(i, j);
      const double q = p * p / freq[j];
      targets[i * c + j] = static_cast<float>(q);
      row_sum += q;
    }
    if (row_sum > 0.0) {
      for (size_t j = 0; j < c; ++j) {
        targets[i * c + j] = static_cast<float>(targets[i * c + j] / row_sum);
      }
    }
  }
  return targets;
}

std::vector<int> SelfTrain(nn::TextClassifier& classifier,
                           const std::vector<std::vector<int32_t>>& docs,
                           const SelfTrainConfig& config) {
  STM_CHECK(!docs.empty());
  std::vector<int> previous = classifier.Predict(docs);
  for (int iter = 0; iter < config.max_iters; ++iter) {
    const la::Matrix probs = classifier.PredictProbs(docs);
    const std::vector<float> targets = SharpenTargets(probs);
    for (int epoch = 0; epoch < config.epochs_per_iter; ++epoch) {
      classifier.TrainEpoch(docs, targets);
    }
    const std::vector<int> current = classifier.Predict(docs);
    size_t changed = 0;
    for (size_t i = 0; i < current.size(); ++i) {
      changed += current[i] != previous[i];
    }
    previous = current;
    if (static_cast<double>(changed) / static_cast<double>(docs.size()) <
        config.convergence_delta) {
      break;
    }
  }
  return previous;
}

}  // namespace stm::core
