#!/usr/bin/env bash
# Regenerates every committed BENCH_*.json from the bench binaries.
#
#   bench/run_benches.sh [build_dir] [bench ...]
#
# With no bench names, every bench_* binary found in <build_dir>/bench is
# run; each writes <repo>/BENCH_<name>.json via the STM_BENCH_JSON hook
# (see bench/harness.h). STM_NUM_THREADS defaults to 1 so committed
# numbers are single-thread and comparable across machines; override it
# in the environment to record scaling runs. STM_ISA pins the kernel tier
# for the whole suite (generic|avx2|avx512|vnni; see la/gemm_kernels.h)
# and is recorded in the output filename — BENCH_<name>_<isa>.json — so
# per-tier trajectories never overwrite the canonical auto-dispatch
# numbers. Pre-trained MiniLm weights are cached under plm_cache/, so the
# first run of the experiment benches is the slow one.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
shift || true

if [[ ! -d "${build_dir}/bench" ]]; then
  echo "error: ${build_dir}/bench not found; build the project first" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

if [[ $# -gt 0 ]]; then
  benches=("$@")
else
  benches=()
  for bin in "${build_dir}"/bench/bench_*; do
    [[ -x "${bin}" && ! -d "${bin}" ]] && benches+=("$(basename "${bin}")")
  done
fi

export STM_NUM_THREADS="${STM_NUM_THREADS:-1}"
# Forwarded to every bench binary; "auto" (the default dispatch) keeps the
# canonical BENCH_*.json names, a pinned tier gets its own suffix.
export STM_ISA="${STM_ISA:-auto}"
isa_suffix=""
if [[ "${STM_ISA}" != "auto" ]]; then
  isa_suffix="_${STM_ISA}"
fi

for bench in "${benches[@]}"; do
  bin="${build_dir}/bench/${bench}"
  if [[ ! -x "${bin}" ]]; then
    echo "error: ${bin} not found or not executable" >&2
    exit 1
  fi
  short="${bench#bench_}"
  out="${repo_root}/BENCH_${short}${isa_suffix}.json"
  tmp="${out}.tmp"
  echo "[run_benches] ${bench} -> ${out}" \
       "(STM_NUM_THREADS=${STM_NUM_THREADS}, STM_ISA=${STM_ISA})"
  # Write to a temp file and rename only on success: a crashing bench must
  # fail the script loudly, not leave a stale or truncated BENCH_*.json
  # that silently masquerades as fresh numbers.
  if ! STM_BENCH_JSON="${tmp}" "${bin}"; then
    echo "error: ${bench} exited non-zero; ${out} left untouched" >&2
    rm -f "${tmp}"
    exit 1
  fi
  mv "${tmp}" "${out}"
done
