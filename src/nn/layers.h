#ifndef STM_NN_LAYERS_H_
#define STM_NN_LAYERS_H_

#include <string>
#include <vector>

#include "nn/ops.h"
#include "nn/optimizer.h"
#include "nn/tensor.h"

namespace stm::nn {

// Thin parameter-owning modules. Each registers its parameters into the
// ParameterStore passed at construction so a single optimizer drives the
// whole model.

// Affine map x [n, in] -> x W + b [n, out].
class Linear {
 public:
  Linear(ParameterStore* store, const std::string& name, size_t in,
         size_t out, Rng& rng);

  Tensor Forward(const Tensor& x) const;

  const Tensor& weight() const { return weight_; }
  const Tensor& bias() const { return bias_; }

 private:
  Tensor weight_;
  Tensor bias_;
};

// Token embedding table [vocab, dim].
class Embedding {
 public:
  Embedding(ParameterStore* store, const std::string& name, size_t vocab,
            size_t dim, Rng& rng);

  Tensor Forward(const std::vector<int32_t>& ids) const;

  // Overwrites rows from a [vocab, dim] matrix (e.g. pre-trained static
  // embeddings); rows beyond `values` rows are left untouched.
  void LoadRows(const std::vector<std::vector<float>>& values);

  Tensor& table() { return table_; }
  const Tensor& table() const { return table_; }
  size_t dim() const { return dim_; }

 private:
  Tensor table_;
  size_t dim_;
};

// Layer normalization with learnable gain/offset.
class LayerNormModule {
 public:
  LayerNormModule(ParameterStore* store, const std::string& name, size_t dim);

  Tensor Forward(const Tensor& x) const;

  const Tensor& gamma() const { return gamma_; }
  const Tensor& beta() const { return beta_; }

 private:
  Tensor gamma_;
  Tensor beta_;
};

}  // namespace stm::nn

#endif  // STM_NN_LAYERS_H_
