# Empty compiler generated dependencies file for example_metadata_reviews.
# This may be replaced when dependencies are built.
