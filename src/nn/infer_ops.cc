#include "nn/infer_ops.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "la/matrix.h"
#include "la/workspace.h"

namespace stm::nn {

float GeluScalar(float x) {
  constexpr float kC = 0.7978845608028654f;  // sqrt(2/pi)
  const float inner = kC * (x + 0.044715f * x * x * x);
  return 0.5f * x * (1.0f + std::tanh(inner));
}

void GeluInplace(float* x, size_t count) {
  for (size_t i = 0; i < count; ++i) x[i] = GeluScalar(x[i]);
}

void ReluInplace(float* x, size_t count) {
  for (size_t i = 0; i < count; ++i) x[i] = std::max(x[i], 0.0f);
}

void AddBiasRows(float* x, size_t rows, size_t d, const float* bias) {
  for (size_t r = 0; r < rows; ++r) {
    float* row = x + r * d;
    for (size_t j = 0; j < d; ++j) row[j] += bias[j];
  }
}

void LayerNormRows(const float* x, size_t rows, size_t d, const float* gamma,
                   const float* beta, float eps, float* out) {
  for (size_t r = 0; r < rows; ++r) {
    const float* xr = x + r * d;
    float* o = out + r * d;
    float mu = 0.0f;
    for (size_t j = 0; j < d; ++j) mu += xr[j];
    mu /= static_cast<float>(d);
    float var = 0.0f;
    for (size_t j = 0; j < d; ++j) {
      const float diff = xr[j] - mu;
      var += diff * diff;
    }
    var /= static_cast<float>(d);
    const float rs = 1.0f / std::sqrt(var + eps);
    for (size_t j = 0; j < d; ++j) {
      o[j] = (xr[j] - mu) * rs * gamma[j] + beta[j];
    }
  }
}

void SoftmaxRowsInplace(float* x, size_t rows, size_t d) {
  for (size_t r = 0; r < rows; ++r) {
    float* row = x + r * d;
    float max = row[0];
    for (size_t j = 1; j < d; ++j) max = std::max(max, row[j]);
    float sum = 0.0f;
    for (size_t j = 0; j < d; ++j) {
      row[j] = std::exp(row[j] - max);
      sum += row[j];
    }
    const float inv = 1.0f / sum;
    for (size_t j = 0; j < d; ++j) row[j] *= inv;
  }
}

void TiledAttentionHead(const float* qh, const float* kh, const float* vh,
                        size_t len, size_t dh, float scale, float* ctx) {
  if (len == 0 || dh == 0) return;
  std::fill(ctx, ctx + len * dh, 0.0f);
  const size_t qb = std::min(kAttentionQueryBlock, len);
  std::vector<float> scores = la::AcquireVec(qb * len);
  for (size_t q0 = 0; q0 < len; q0 += qb) {
    const size_t rows = std::min(qb, len - q0);
    std::fill(scores.begin(), scores.begin() + rows * len, 0.0f);
    // Strip of score rows [q0, q0+rows) against every key, then the
    // row-local softmax and the strip's context rows. Identical per-cell
    // chains to the full len x len version (GemmBtAcc/GemmAcc row chunks
    // are row-local; see la/gemm_kernels.h).
    la::GemmBtAcc(qh + q0 * dh, kh, scores.data(), rows, dh, len);
    for (size_t i = 0; i < rows * len; ++i) scores[i] *= scale;
    SoftmaxRowsInplace(scores.data(), rows, len);
    la::GemmAcc(scores.data(), vh, ctx + q0 * dh, rows, len, dh);
  }
  la::ReleaseVec(std::move(scores));
}

}  // namespace stm::nn
