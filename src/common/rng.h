#ifndef STM_COMMON_RNG_H_
#define STM_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace stm {

// Deterministic pseudo-random number generator (xoshiro256**) with the
// sampling helpers the library needs. Every stochastic component in the
// library takes an explicit `Rng&` (or a seed) so experiments are exactly
// reproducible across runs and platforms.
class Rng {
 public:
  // Seeds the four 64-bit lanes from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  // Next raw 64-bit value.
  uint64_t Next64();

  // Uniform double in [0, 1).
  double Uniform();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  // Standard normal via Box-Muller (cached second value).
  double Normal();

  // Normal with mean/stddev.
  double Normal(double mean, double stddev);

  // Bernoulli(p).
  bool Bernoulli(double p);

  // Gamma(shape, 1) via Marsaglia-Tsang (shape boost for shape < 1).
  double Gamma(double shape);

  // Beta(a, b) via two Gamma draws.
  double Beta(double a, double b);

  // Samples an index from an unnormalized non-negative weight vector.
  // Requires at least one strictly positive weight.
  size_t Discrete(const std::vector<double>& weights);

  // Fisher-Yates shuffle of indices [0, n); returns the permutation.
  std::vector<size_t> Permutation(size_t n);

  // Shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = UniformInt(i);
      std::swap(items[i - 1], items[j]);
    }
  }

  // Samples `k` distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  // Derives an independent child generator; useful for giving each
  // submodule its own stream without coupling consumption order.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

// Alias table for O(1) repeated sampling from a fixed discrete
// distribution (Walker's alias method). Used by the corpus generators and
// negative samplers, which draw millions of samples from static
// distributions.
class AliasSampler {
 public:
  AliasSampler() = default;

  // Builds the table from unnormalized non-negative weights.
  explicit AliasSampler(const std::vector<double>& weights);

  // Draws one index.
  size_t Sample(Rng& rng) const;

  size_t size() const { return prob_.size(); }
  bool empty() const { return prob_.empty(); }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

}  // namespace stm

#endif  // STM_COMMON_RNG_H_
