#include "index/ann.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>

#include "common/check.h"
#include "common/env_parse.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "la/gemm_kernels.h"

namespace stm::ann {

namespace {

constexpr uint32_t kAnnIndexMagic = 0x53544D41;  // "STMA"

// Query rows per parallel chunk on the brute tier. Each chunk packs every
// base block once into GemmBt panels, so wider chunks amortize the packing
// cost; 16 keeps the score scratch small while making packing ~6% of the
// multiply work. Constant (shape- and thread-count-independent), so the
// chunk decomposition obeys the determinism contract.
constexpr size_t kQueryChunk = 16;

// Base rows per GemmBt panel: bounds the score scratch at
// kQueryChunk * kBaseBlock floats (256KB) and keeps the packed B panel
// L2-resident.
constexpr size_t kBaseBlock = 4096;

// Strict "a ranks before b": higher score first, lower id on ties. Used
// both as the heap ordering (top = worst kept neighbor) and as the final
// sort, so every output list is deterministically ordered.
inline bool BetterNeighbor(const Neighbor& a, const Neighbor& b) {
  return a.score > b.score || (a.score == b.score && a.id < b.id);
}

// Row-normalized copy (the zero row stays zero, as in la::Cosine).
la::Matrix NormalizedCopy(const la::Matrix& m) {
  la::Matrix out = m;
  la::NormalizeRows(out);
  return out;
}

// Pushes the scores of base ids [b0, b1) for one query into its running
// top-k heap. Ids arrive in ascending order and the comparison against the
// current worst is strict, so equal-score candidates keep the lowest id.
void HeapPushBlock(const float* scores, size_t b0, size_t b1, size_t k,
                   std::vector<Neighbor>& heap) {
  for (size_t b = b0; b < b1; ++b) {
    const Neighbor candidate{static_cast<uint32_t>(b), scores[b - b0]};
    if (heap.size() < k) {
      heap.push_back(candidate);
      std::push_heap(heap.begin(), heap.end(), BetterNeighbor);
    } else if (BetterNeighbor(candidate, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), BetterNeighbor);
      heap.back() = candidate;
      std::push_heap(heap.begin(), heap.end(), BetterNeighbor);
    }
  }
}

// Hamming candidates rank by (distance asc, id asc); the heap top is the
// worst kept candidate, mirroring the brute tier's selection.
struct HammingCandidate {
  uint32_t id;
  uint32_t dist;
};

inline bool BetterCandidate(const HammingCandidate& a,
                            const HammingCandidate& b) {
  return a.dist < b.dist || (a.dist == b.dist && a.id < b.id);
}

// Scans base ids [0, rows) keeping the `shortlist` smallest distances in
// `heap`. `dist_of(r)` returns row r's Hamming distance to the query.
// Once the heap is full, `worst` rejects most rows on a single integer
// compare without touching the heap; rows tying the worst distance still
// go through the id-aware comparator.
template <typename DistFn>
void HammingSelect(size_t rows, size_t shortlist,
                   std::vector<HammingCandidate>& heap, DistFn dist_of) {
  uint32_t worst = std::numeric_limits<uint32_t>::max();
  for (size_t r = 0; r < rows; ++r) {
    const uint32_t dist = dist_of(r);
    if (dist > worst) continue;
    const HammingCandidate candidate{static_cast<uint32_t>(r), dist};
    if (heap.size() < shortlist) {
      heap.push_back(candidate);
      std::push_heap(heap.begin(), heap.end(), BetterCandidate);
    } else if (BetterCandidate(candidate, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), BetterCandidate);
      heap.back() = candidate;
      std::push_heap(heap.begin(), heap.end(), BetterCandidate);
    } else {
      continue;
    }
    if (heap.size() >= shortlist) worst = heap.front().dist;
  }
}

// Word-count-specialized scan: the query sketch lives in a fixed-size
// array the compiler keeps in registers and the popcount chain fully
// unrolls, instead of re-walking a runtime-length loop per base row.
template <size_t kWords>
void HammingScanFixed(const uint64_t* codes, size_t rows,
                      const uint64_t* qcode, size_t shortlist,
                      std::vector<HammingCandidate>& heap) {
  uint64_t q[kWords];
  std::memcpy(q, qcode, sizeof(q));
  HammingSelect(rows, shortlist, heap, [&](size_t r) {
    const uint64_t* code = codes + r * kWords;
    uint32_t dist = 0;
    for (size_t w = 0; w < kWords; ++w) {
      dist += static_cast<uint32_t>(__builtin_popcountll(q[w] ^ code[w]));
    }
    return dist;
  });
}

void HammingScan(const uint64_t* codes, size_t rows, size_t words,
                 const uint64_t* qcode, size_t shortlist,
                 std::vector<HammingCandidate>& heap) {
  switch (words) {
    case 1:
      return HammingScanFixed<1>(codes, rows, qcode, shortlist, heap);
    case 2:
      return HammingScanFixed<2>(codes, rows, qcode, shortlist, heap);
    case 3:
      return HammingScanFixed<3>(codes, rows, qcode, shortlist, heap);
    case 4:
      return HammingScanFixed<4>(codes, rows, qcode, shortlist, heap);
    case 8:
      return HammingScanFixed<8>(codes, rows, qcode, shortlist, heap);
    default:
      break;
  }
  HammingSelect(rows, shortlist, heap, [&](size_t r) {
    const uint64_t* code = codes + r * words;
    uint32_t dist = 0;
    for (size_t w = 0; w < words; ++w) {
      dist += static_cast<uint32_t>(__builtin_popcountll(qcode[w] ^
                                                         code[w]));
    }
    return dist;
  });
}

// Exact top-k over already-normalized operands. Parallel over query
// chunks; each chunk walks base blocks in ascending-id order and selects
// per query serially, so output depends only on the inputs.
std::vector<std::vector<Neighbor>> BruteTopK(const la::Matrix& qnorm,
                                             const la::Matrix& bnorm,
                                             size_t k) {
  const size_t num_queries = qnorm.rows();
  const size_t num_base = bnorm.rows();
  const size_t dim = qnorm.cols();
  std::vector<std::vector<Neighbor>> results(num_queries);
  k = std::min(k, num_base);
  if (k == 0 || num_queries == 0) return results;

  ParallelFor(0, num_queries, kQueryChunk, [&](size_t q0, size_t q1) {
    const size_t chunk = q1 - q0;
    std::vector<float> scores(chunk * kBaseBlock);
    std::vector<std::vector<Neighbor>> heaps(chunk);
    for (auto& heap : heaps) heap.reserve(k + 1);
    for (size_t b0 = 0; b0 < num_base; b0 += kBaseBlock) {
      const size_t b1 = std::min(num_base, b0 + kBaseBlock);
      const size_t width = b1 - b0;
      std::memset(scores.data(), 0, chunk * width * sizeof(float));
      la::GemmBtAcc(qnorm.Row(q0), bnorm.Row(b0), scores.data(), chunk, dim,
                    width);
      for (size_t q = 0; q < chunk; ++q) {
        HeapPushBlock(scores.data() + q * width, b0, b1, k, heaps[q]);
      }
    }
    for (size_t q = 0; q < chunk; ++q) {
      std::sort_heap(heaps[q].begin(), heaps[q].end(), BetterNeighbor);
      results[q0 + q] = std::move(heaps[q]);
    }
  });
  return results;
}

size_t RoundUpBits(size_t bits) {
  const size_t words = (std::max<size_t>(bits, 1) + 63) / 64;
  return words * 64;
}

}  // namespace

IndexOptions IndexOptionsFromEnv() {
  IndexOptions options;
  const size_t mode =
      ParseEnumEnv("STM_ANN", {"off", "auto", "lsh"}, /*fallback_index=*/1);
  options.mode = mode == 0   ? AnnMode::kOff
                 : mode == 2 ? AnnMode::kLsh
                             : AnnMode::kAuto;
  options.bits = ParseSizeEnv("STM_ANN_BITS", options.bits, 1, 1 << 14);
  options.rerank = ParseSizeEnv("STM_ANN_RERANK", options.rerank, 1,
                                std::numeric_limits<size_t>::max());
  options.auto_min_rows =
      ParseSizeEnv("STM_ANN_AUTO_ROWS", options.auto_min_rows, 1,
                   std::numeric_limits<size_t>::max());
  return options;
}

std::vector<std::vector<Neighbor>> TopKSimilar(const la::Matrix& queries,
                                               const la::Matrix& base,
                                               size_t k) {
  if (queries.rows() == 0 || base.rows() == 0) {
    return std::vector<std::vector<Neighbor>>(queries.rows());
  }
  STM_CHECK_EQ(queries.cols(), base.cols());
  return BruteTopK(NormalizedCopy(queries), NormalizedCopy(base), k);
}

la::Matrix SimilarityPanel(const la::Matrix& queries, const la::Matrix& base) {
  la::Matrix panel(queries.rows(), base.rows());
  if (queries.rows() == 0 || base.rows() == 0) return panel;
  STM_CHECK_EQ(queries.cols(), base.cols());
  const la::Matrix qnorm = NormalizedCopy(queries);
  const la::Matrix bnorm = NormalizedCopy(base);
  la::GemmBt(qnorm, bnorm, panel);
  return panel;
}

void ScoreNormalized(const float* query, const la::Matrix& base,
                     float* scores) {
  std::memset(scores, 0, base.rows() * sizeof(float));
  la::GemmBtAcc(query, base.data(), scores, 1, base.cols(), base.rows());
}

Index Index::Build(const la::Matrix& base, const IndexOptions& options) {
  IndexBuilder builder(base.cols(), base.rows(), options);
  builder.Add(base);
  return builder.Finish();
}

IndexBuilder::IndexBuilder(size_t dim, size_t total_rows,
                           const IndexOptions& options)
    : total_rows_(total_rows) {
  index_.options_ = options;
  index_.options_.bits = RoundUpBits(options.bits);
  index_.base_ = la::Matrix(total_rows, dim);
  index_.use_lsh_ =
      total_rows > 0 &&
      (options.mode == AnnMode::kLsh ||
       (options.mode == AnnMode::kAuto && total_rows >= options.auto_min_rows));
  if (!index_.use_lsh_) return;

  const size_t bits = index_.options_.bits;
  index_.words_ = bits / 64;
  index_.planes_ = la::Matrix(bits, dim);
  Rng rng(options.seed);
  for (size_t i = 0; i < index_.planes_.size(); ++i) {
    index_.planes_.data()[i] = static_cast<float>(rng.Normal());
  }
  index_.codes_.assign(total_rows * index_.words_, 0);
}

void IndexBuilder::Add(const float* rows, size_t count) {
  STM_CHECK(!finished_);
  STM_CHECK_LE(count, total_rows_ - added_);
  if (count == 0) return;
  const size_t d = index_.base_.cols();
  std::memcpy(index_.base_.Row(added_), rows, count * d * sizeof(float));
  // Normalization is per-row, so doing it block-at-a-time matches
  // normalizing the whole base at once.
  la::Matrix& base = index_.base_;
  ParallelFor(added_, added_ + count, kQueryChunk, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) la::NormalizeInPlace(base.Row(i), d);
  });
  if (index_.use_lsh_) Sketch(added_, added_ + count);
  added_ += count;
}

void IndexBuilder::Add(const la::Matrix& rows) {
  if (rows.rows() == 0) return;
  STM_CHECK_EQ(rows.cols(), index_.base_.cols());
  Add(rows.data(), rows.rows());
}

// Sketch rows [begin, end): sign bits of planes * row, packed 64 per
// word. Row chunks write disjoint code regions and the projections come
// from the thread-count-invariant kernels, so the codes are deterministic
// and independent of how the rows were blocked into Add calls.
void IndexBuilder::Sketch(size_t begin, size_t end) {
  const size_t bits = index_.options_.bits;
  const size_t dim = index_.base_.cols();
  const size_t words = index_.words_;
  const la::Matrix& bnorm = index_.base_;
  const la::Matrix& planes = index_.planes_;
  std::vector<uint64_t>& codes = index_.codes_;
  ParallelFor(begin, end, kQueryChunk, [&](size_t r0, size_t r1) {
    const size_t chunk = r1 - r0;
    std::vector<float> proj(chunk * bits, 0.0f);
    la::GemmBtAcc(bnorm.Row(r0), planes.data(), proj.data(), chunk, dim,
                  bits);
    for (size_t r = 0; r < chunk; ++r) {
      uint64_t* code = codes.data() + (r0 + r) * words;
      const float* p = proj.data() + r * bits;
      for (size_t b = 0; b < bits; ++b) {
        if (p[b] >= 0.0f) code[b / 64] |= uint64_t{1} << (b % 64);
      }
    }
  });
}

Index IndexBuilder::Finish() {
  STM_CHECK(!finished_);
  STM_CHECK_EQ(added_, total_rows_);
  finished_ = true;
  return std::move(index_);
}

std::vector<std::vector<Neighbor>> Index::TopK(const la::Matrix& queries,
                                               size_t k) const {
  if (queries.rows() == 0 || base_.rows() == 0) {
    return std::vector<std::vector<Neighbor>>(queries.rows());
  }
  STM_CHECK_EQ(queries.cols(), base_.cols());
  const la::Matrix qnorm = NormalizedCopy(queries);
  if (!use_lsh_) return BruteTopK(qnorm, base_, k);

  const size_t num_queries = qnorm.rows();
  const size_t num_base = base_.rows();
  const size_t dim = base_.cols();
  const size_t bits = options_.bits;
  const size_t keep = std::min(k, num_base);
  const size_t shortlist = std::min(std::max(options_.rerank, keep), num_base);
  std::vector<std::vector<Neighbor>> results(num_queries);
  if (keep == 0) return results;

  // Each query is processed start-to-finish by one chunk, so results are
  // independent of the thread count and of the other queries.
  ParallelFor(0, num_queries, 1, [&](size_t q_begin, size_t q_end) {
    std::vector<float> proj(bits);
    std::vector<uint64_t> qcode(words_);
    std::vector<HammingCandidate> heap;
    std::vector<float> gathered;
    std::vector<float> scores;
    for (size_t q = q_begin; q < q_end; ++q) {
      // 1. Sketch the query with the same planes as the base.
      std::fill(proj.begin(), proj.end(), 0.0f);
      la::GemmBtAcc(qnorm.Row(q), planes_.data(), proj.data(), 1, dim, bits);
      std::fill(qcode.begin(), qcode.end(), 0);
      for (size_t b = 0; b < bits; ++b) {
        if (proj[b] >= 0.0f) qcode[b / 64] |= uint64_t{1} << (b % 64);
      }

      // 2. Candidate generation: `shortlist` smallest Hamming distances
      // over the packed sketches, ascending-id ties.
      heap.clear();
      heap.reserve(shortlist + 1);
      HammingScan(codes_.data(), num_base, words_, qcode.data(), shortlist,
                  heap);

      // 3. Exact rerank of the shortlist through the shared kernels, in
      // ascending-id order so ties resolve exactly as the brute tier.
      std::sort(heap.begin(), heap.end(),
                [](const HammingCandidate& a, const HammingCandidate& b) {
                  return a.id < b.id;
                });
      const size_t candidates = heap.size();
      gathered.resize(candidates * dim);
      for (size_t i = 0; i < candidates; ++i) {
        std::memcpy(gathered.data() + i * dim, base_.Row(heap[i].id),
                    dim * sizeof(float));
      }
      scores.assign(candidates, 0.0f);
      la::GemmBtAcc(qnorm.Row(q), gathered.data(), scores.data(), 1, dim,
                    candidates);
      std::vector<Neighbor> reranked(candidates);
      for (size_t i = 0; i < candidates; ++i) {
        reranked[i] = Neighbor{heap[i].id, scores[i]};
      }
      std::sort(reranked.begin(), reranked.end(), BetterNeighbor);
      reranked.resize(std::min(keep, reranked.size()));
      results[q] = std::move(reranked);
    }
  });
  return results;
}

std::vector<Neighbor> Index::TopK1(const float* query, size_t k) const {
  la::Matrix one(1, dim());
  std::memcpy(one.Row(0), query, dim() * sizeof(float));
  std::vector<std::vector<Neighbor>> results = TopK(one, k);
  return std::move(results[0]);
}

Status Index::Save(Env* env, const std::string& path) const {
  BinaryWriter writer;
  writer.WriteU64(base_.rows());
  writer.WriteU32(static_cast<uint32_t>(base_.cols()));
  writer.WriteU32(use_lsh_ ? 1 : 0);
  writer.WriteU32(static_cast<uint32_t>(options_.bits));
  writer.WriteU64(options_.rerank);
  writer.WriteU64(options_.auto_min_rows);
  writer.WriteU64(options_.seed);
  writer.WriteFloats(base_.data(), base_.size());
  if (use_lsh_) {
    writer.WriteFloats(planes_.data(), planes_.size());
    writer.WriteU64s(codes_);
  }
  return writer.FlushToEnv(env, path, kAnnIndexMagic);
}

StatusOr<Index> Index::Load(Env* env, const std::string& path) {
  STM_ASSIGN_OR_RETURN(BinaryReader reader,
                       BinaryReader::OpenArtifact(env, path, kAnnIndexMagic));
  const auto corrupt = [&path](const char* what) {
    return CorruptDataError(StrFormat("%s: %s", path.c_str(), what));
  };
  uint64_t rows = 0;
  uint32_t dim = 0;
  uint32_t use_lsh = 0;
  uint32_t bits = 0;
  Index index;
  STM_RETURN_IF_ERROR(reader.Read(&rows));
  STM_RETURN_IF_ERROR(reader.Read(&dim));
  STM_RETURN_IF_ERROR(reader.Read(&use_lsh));
  STM_RETURN_IF_ERROR(reader.Read(&bits));
  STM_RETURN_IF_ERROR(reader.Read(&index.options_.rerank));
  STM_RETURN_IF_ERROR(reader.Read(&index.options_.auto_min_rows));
  STM_RETURN_IF_ERROR(reader.Read(&index.options_.seed));
  if (dim == 0) return corrupt("zero embedding dimension");
  if (use_lsh > 1) return corrupt("invalid tier flag");
  if (bits == 0 || bits % 64 != 0) {
    return corrupt("sketch bits not a positive multiple of 64");
  }
  index.options_.bits = bits;
  index.options_.mode = use_lsh == 1 ? AnnMode::kLsh : AnnMode::kOff;
  index.use_lsh_ = use_lsh == 1;

  std::vector<float> base;
  STM_RETURN_IF_ERROR(reader.Read(&base));
  // Division, never multiplication: rows * dim could wrap for a hostile
  // header even though the array length itself was bounds-checked.
  if (rows != base.size() / dim || base.size() % dim != 0) {
    return corrupt("base row count does not match stored floats");
  }
  index.base_ = la::Matrix(static_cast<size_t>(rows), dim);
  std::memcpy(index.base_.data(), base.data(), base.size() * sizeof(float));

  if (index.use_lsh_) {
    index.words_ = bits / 64;
    std::vector<float> planes;
    STM_RETURN_IF_ERROR(reader.Read(&planes));
    if (planes.size() != static_cast<size_t>(bits) * dim) {
      return corrupt("hyperplane count does not match bits x dim");
    }
    index.planes_ = la::Matrix(bits, dim);
    std::memcpy(index.planes_.data(), planes.data(),
                planes.size() * sizeof(float));
    STM_RETURN_IF_ERROR(reader.Read(&index.codes_));
    if (index.codes_.size() != static_cast<size_t>(rows) * index.words_) {
      return corrupt("sketch word count does not match rows x words");
    }
  }
  STM_RETURN_IF_ERROR(reader.Finish());
  return index;
}

Index Index::LoadOrBuild(Env* env, const std::string& path,
                         const la::Matrix& base,
                         const IndexOptions& options) {
  StatusOr<Index> loaded = Load(env, path);
  if (loaded.ok()) {
    if (loaded->rows() == base.rows() && loaded->dim() == base.cols()) {
      return std::move(loaded).value();
    }
    std::fprintf(stderr,
                 "[stm] ANN index %s is for a %zux%zu base (want %zux%zu); "
                 "rebuilding\n",
                 path.c_str(), loaded->rows(), loaded->dim(), base.rows(),
                 base.cols());
  } else if (env->FileExists(path)) {
    // Present but unreadable: torn write, bit rot, or stale format. Keep
    // the bad bytes inspectable and rebuild, exactly as the MiniLm cache.
    const std::string quarantine = path + ".corrupt";
    std::fprintf(stderr, "[stm] quarantining bad ANN index %s -> %s (%s)\n",
                 path.c_str(), quarantine.c_str(),
                 loaded.status().ToString().c_str());
    if (!env->Rename(path, quarantine).ok()) (void)env->Delete(path);
  }
  Index built = Build(base, options);
  const Status saved = built.Save(env, path);
  if (!saved.ok()) {
    std::fprintf(stderr, "[stm] could not cache ANN index: %s\n",
                 saved.ToString().c_str());
  }
  return built;
}

}  // namespace stm::ann
