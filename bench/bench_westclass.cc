// E1 — WeSTClass results table (CIKM'18).
//
// Reproduces the tutorial's WeSTClass experiment: Macro-F1 and Micro-F1 on
// The New York Times (coarse sections), AG's News and Yelp Review under the
// three supervision settings LABELS / KEYWORDS / DOCS, against the IR,
// topic-model and Dataless baselines plus the NoST ablations.
//
// Expected shape (paper): WeSTClass-CNN/HAN top every column; NoST (no
// self-training) trails the full method; IR/LDA/Dataless trail further.

#include <string>
#include <vector>

#include "bench/harness.h"
#include "core/baselines.h"
#include "core/westclass.h"
#include "embedding/sgns.h"
#include "eval/metrics.h"

namespace stm {
namespace {

struct Dataset {
  std::string name;
  text::Corpus corpus;
  text::WeakSupervision supervision;
};

Dataset MakeNyt() {
  datasets::SyntheticSpec spec = datasets::NytSpec(11);
  spec.num_docs = 700;
  spec.pretrain_docs = 0;
  datasets::SyntheticDataset data = datasets::Generate(spec);
  datasets::FlatView coarse = datasets::FlattenToDepth(data, 0);
  Dataset out;
  out.name = "NYT";
  out.corpus = std::move(coarse.corpus);
  out.supervision = std::move(coarse.supervision);
  return out;
}

Dataset MakeFlat(datasets::SyntheticSpec spec, const std::string& name) {
  spec.num_docs = 400;
  spec.pretrain_docs = 0;
  datasets::SyntheticDataset data = datasets::Generate(spec);
  Dataset out;
  out.name = name;
  out.corpus = std::move(data.corpus);
  out.supervision = std::move(data.supervision);
  return out;
}

struct Scores {
  double macro = -1;
  double micro = -1;
};

Scores Eval(const text::Corpus& corpus, const std::vector<int>& pred) {
  Scores scores;
  const auto gold = corpus.GoldLabels();
  scores.macro = eval::MacroF1(pred, gold, corpus.num_labels());
  scores.micro = eval::MicroF1(pred, gold, corpus.num_labels());
  return scores;
}

}  // namespace

int Main() {
  std::vector<Dataset> datasets;
  datasets.push_back(MakeNyt());
  datasets.push_back(MakeFlat(datasets::AgNewsSpec(12), "AG's News"));
  datasets.push_back(MakeFlat(datasets::YelpSpec(13), "Yelp Review"));

  const std::vector<std::string> modes = {"LABELS", "KEYWORDS", "DOCS"};
  for (bool macro : {true, false}) {
    std::vector<std::string> columns;
    for (const auto& dataset : datasets) {
      for (const auto& mode : modes) {
        columns.push_back(dataset.name.substr(0, 4) + ":" + mode.substr(0, 4));
      }
    }
    bench::Table table(
        std::string("E1 WeSTClass — ") + (macro ? "Macro-F1" : "Micro-F1") +
            " (datasets x supervision)",
        columns);

    struct RowSpec {
      std::string name;
    };
    const std::vector<std::string> rows = {
        "IR with tf-idf", "Topic Model (LDA)", "Dataless",
        "NoST-CNN (no self-train)", "WeSTClass-HAN", "WeSTClass-CNN"};
    std::vector<std::vector<double>> cells(
        rows.size(), std::vector<double>(columns.size(), -1));

    size_t column = 0;
    for (auto& dataset : datasets) {
      bench::Progress("dataset " + dataset.name);
      // Labeled docs for the DOCS setting (5 per class).
      text::WeakSupervision docs_supervision = dataset.supervision;
      docs_supervision.labeled_docs =
          datasets::SampleLabeledDocs(dataset.corpus, 5, 29);

      // Shared static embeddings for the Dataless baseline.
      std::vector<std::vector<int32_t>> tokens;
      for (const auto& doc : dataset.corpus.docs()) {
        tokens.push_back(doc.tokens);
      }
      embedding::SgnsConfig sgns;
      sgns.seed = 31;
      const embedding::WordEmbeddings embeddings =
          embedding::WordEmbeddings::Train(
              tokens, dataset.corpus.vocab().size(), sgns);

      for (size_t m = 0; m < modes.size(); ++m) {
        const core::Supervision mode =
            m == 0 ? core::Supervision::kLabels
                   : (m == 1 ? core::Supervision::kKeywords
                             : core::Supervision::kDocs);
        // Seeds visible to the keyword baselines in this mode.
        std::vector<std::vector<int32_t>> seeds;
        for (const auto& keywords :
             dataset.supervision.class_keywords) {
          if (mode == core::Supervision::kLabels) {
            seeds.push_back({keywords[0]});
          } else {
            seeds.push_back(keywords);
          }
        }

        auto eval_into = [&](size_t row, const std::vector<int>& pred) {
          const Scores s = Eval(dataset.corpus, pred);
          cells[row][column] = macro ? s.macro : s.micro;
        };

        eval_into(0, core::IrTfIdfClassify(dataset.corpus, seeds));
        core::LdaConfig lda;
        lda.iterations = 40;
        eval_into(1, core::LdaClassify(dataset.corpus, seeds, lda));
        eval_into(2, core::EmbeddingSimilarityClassify(dataset.corpus,
                                                       embeddings, seeds));

        const text::WeakSupervision& supervision =
            mode == core::Supervision::kDocs ? docs_supervision
                                             : dataset.supervision;
        {
          core::WestClassConfig config;
          config.classifier = "cnn";
          config.enable_self_training = false;
          config.seed = 41;
          core::WestClass method(dataset.corpus, config);
          eval_into(3, method.Run(mode, supervision));
        }
        {
          core::WestClassConfig config;
          config.classifier = "han";
          config.seed = 42;
          core::WestClass method(dataset.corpus, config);
          eval_into(4, method.Run(mode, supervision));
        }
        {
          core::WestClassConfig config;
          config.classifier = "cnn";
          config.seed = 43;
          core::WestClass method(dataset.corpus, config);
          eval_into(5, method.Run(mode, supervision));
        }
        ++column;
      }
    }
    for (size_t r = 0; r < rows.size(); ++r) {
      table.AddRow(rows[r], cells[r]);
    }
    table.Print();
  }
  return 0;
}

}  // namespace stm

int main() { return stm::Main(); }
