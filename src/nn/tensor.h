#ifndef STM_NN_TENSOR_H_
#define STM_NN_TENSOR_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"

namespace stm::nn {

// Reverse-mode automatic differentiation over dense float tensors.
//
// A `Tensor` is a cheap handle (shared_ptr) to a graph node holding the
// value buffer, an optional gradient buffer, and the backward closure that
// propagates gradients to its parents. A fresh graph is built every
// training step; parameters are long-lived leaf nodes whose gradients the
// optimizer consumes and clears.

struct Node {
  std::vector<float> value;
  std::vector<float> grad;           // allocated lazily when needed
  std::vector<size_t> shape;         // rank <= 4
  bool requires_grad = false;
  std::vector<std::shared_ptr<Node>> parents;
  std::function<void(Node&)> backward;  // propagates this->grad to parents

  // Returns value/grad to the thread-local la::Workspace so the next
  // graph (or the next Encode call) reuses the allocations.
  ~Node();

  size_t size() const { return value.size(); }
  void EnsureGrad();                  // allocates + zeroes grad if empty
};

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::shared_ptr<Node> node) : node_(std::move(node)) {}

  // ---- constructors ----

  // Constant (no gradient) tensor filled with `fill`.
  static Tensor Zeros(std::vector<size_t> shape, float fill = 0.0f);

  // Constant tensor wrapping `values` (copied).
  static Tensor FromVector(std::vector<float> values,
                           std::vector<size_t> shape);

  // Trainable parameter initialized from N(0, stddev).
  static Tensor Param(std::vector<size_t> shape, float stddev, Rng& rng);

  // Trainable parameter with Xavier/Glorot uniform init for a
  // fan_in x fan_out weight.
  static Tensor XavierParam(size_t fan_in, size_t fan_out, Rng& rng);

  // Trainable parameter of zeros (biases, layernorm beta).
  static Tensor ZeroParam(std::vector<size_t> shape);

  // Trainable parameter of ones (layernorm gamma).
  static Tensor OnesParam(std::vector<size_t> shape);

  // ---- accessors ----

  bool defined() const { return node_ != nullptr; }
  Node* node() const { return node_.get(); }
  const std::shared_ptr<Node>& ptr() const { return node_; }

  const std::vector<size_t>& shape() const;
  size_t size() const;
  size_t rank() const;
  size_t dim(size_t axis) const;

  std::vector<float>& value();
  const std::vector<float>& value() const;
  std::vector<float>& grad();
  const std::vector<float>& grad() const;
  bool requires_grad() const;

  // Scalar convenience: requires size() == 1.
  float item() const;

 private:
  std::shared_ptr<Node> node_;
};

// Runs reverse-mode differentiation from scalar `loss` (size 1). Gradients
// accumulate into every reachable node with requires_grad.
void Backward(const Tensor& loss);

// Number of elements implied by a shape.
size_t ShapeSize(const std::vector<size_t>& shape);

}  // namespace stm::nn

#endif  // STM_NN_TENSOR_H_
