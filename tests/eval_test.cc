#include <gtest/gtest.h>

#include "eval/metrics.h"

namespace stm::eval {
namespace {

TEST(AccuracyTest, Basic) {
  EXPECT_DOUBLE_EQ(Accuracy({0, 1, 2}, {0, 1, 1}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(Accuracy({}, {}), 0.0);
}

TEST(F1Test, PerfectPrediction) {
  const std::vector<int> labels = {0, 1, 2, 0, 1};
  EXPECT_DOUBLE_EQ(MicroF1(labels, labels, 3), 1.0);
  EXPECT_DOUBLE_EQ(MacroF1(labels, labels, 3), 1.0);
}

TEST(F1Test, MicroEqualsAccuracyForSingleLabel) {
  const std::vector<int> pred = {0, 1, 2, 2, 1, 0};
  const std::vector<int> gold = {0, 1, 1, 2, 1, 1};
  EXPECT_NEAR(MicroF1(pred, gold, 3), Accuracy(pred, gold), 1e-12);
}

TEST(F1Test, MacroPunishesMinorityErrors) {
  // 9 correct on class 0, one class-1 doc misclassified.
  std::vector<int> gold(10, 0);
  gold[9] = 1;
  std::vector<int> pred(10, 0);
  const double micro = MicroF1(pred, gold, 2);
  const double macro = MacroF1(pred, gold, 2);
  EXPECT_GT(micro, 0.89);
  EXPECT_LT(macro, 0.55);
}

TEST(F1Test, KnownMacroValue) {
  // Class 0: tp=1 fp=1 fn=0 -> F1 = 2/3; class 1: tp=0 fp=0 fn=1 -> 0;
  // class 2: tp=1 fp=0 fn=0 -> 1. Macro = (2/3 + 0 + 1)/3.
  const std::vector<int> gold = {0, 1, 2};
  const std::vector<int> pred = {0, 0, 2};
  EXPECT_NEAR(MacroF1(pred, gold, 3), (2.0 / 3.0 + 0.0 + 1.0) / 3.0, 1e-12);
}

TEST(ConfusionTest, CountsCells) {
  la::Matrix confusion = ConfusionMatrix({0, 1, 1}, {0, 0, 1}, 2);
  EXPECT_FLOAT_EQ(confusion.At(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(confusion.At(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(confusion.At(1, 1), 1.0f);
  EXPECT_FLOAT_EQ(confusion.At(1, 0), 0.0f);
  const std::string text = FormatConfusion(confusion, {"a", "b"});
  EXPECT_NE(text.find("a"), std::string::npos);
}

TEST(ExampleF1Test, PartialOverlap) {
  // doc0: pred {1,2}, gold {1} -> 2*1/3; doc1: exact -> 1.
  const double f1 = ExampleF1({{1, 2}, {3}}, {{1}, {3}});
  EXPECT_NEAR(f1, (2.0 / 3.0 + 1.0) / 2.0, 1e-12);
}

TEST(ExampleF1Test, EmptyPredictionsScoreZero) {
  EXPECT_NEAR(ExampleF1({{}}, {{1}}), 0.0, 1e-12);
}

TEST(PrecisionAtKTest, CountsTopK) {
  // Ranked: [3 (hit), 5 (miss), 1 (hit)], gold {1, 3}.
  EXPECT_NEAR(PrecisionAtK({{3, 5, 1}}, {{1, 3}}, 1), 1.0, 1e-12);
  EXPECT_NEAR(PrecisionAtK({{3, 5, 1}}, {{1, 3}}, 3), 2.0 / 3.0, 1e-12);
}

TEST(NdcgTest, PerfectRankingIsOne) {
  EXPECT_NEAR(NdcgAtK({{1, 2, 9}}, {{1, 2}}, 3), 1.0, 1e-12);
}

TEST(NdcgTest, LowerWhenHitsAreLate) {
  const double early = NdcgAtK({{1, 8, 9}}, {{1}}, 3);
  const double late = NdcgAtK({{8, 9, 1}}, {{1}}, 3);
  EXPECT_GT(early, late);
  EXPECT_GT(late, 0.0);
}

}  // namespace
}  // namespace stm::eval
