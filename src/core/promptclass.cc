#include "core/promptclass.h"

#include <algorithm>
#include <cmath>
#include <tuple>

#include "common/check.h"
#include "nn/text_classifier.h"
#include "text/vocabulary.h"

namespace stm::core {

PromptClass::PromptClass(const text::Corpus& corpus, plm::MiniLm* model,
                         const PromptClassConfig& config)
    : corpus_(corpus), model_(model), config_(config) {
  STM_CHECK(model != nullptr);
}

la::Matrix PromptClass::ZeroShotScores(
    const std::vector<std::vector<int32_t>>& label_names,
    PromptStyle style) {
  const size_t num_classes = label_names.size();
  la::Matrix scores(corpus_.num_docs(), num_classes);
  const size_t max_seq = model_->config().max_seq;

  for (size_t d = 0; d < corpus_.num_docs(); ++d) {
    const auto& tokens = corpus_.docs()[d].tokens;
    // Document prefix leaving one slot for the prompt verbalizer.
    std::vector<int32_t> prompt(
        tokens.begin(),
        tokens.begin() +
            static_cast<std::ptrdiff_t>(std::min(tokens.size(), max_seq - 1)));
    const size_t slot = prompt.size();
    prompt.push_back(text::kMaskId);

    if (style == PromptStyle::kMlm) {
      // Score = mean masked-LM log-prob of the label-name token(s).
      for (size_t c = 0; c < num_classes; ++c) {
        const auto lp =
            model_->CandidateLogProbs(prompt, slot, label_names[c]);
        float mean = 0.0f;
        for (float v : lp) mean += v;
        scores.At(d, c) = mean / static_cast<float>(lp.size());
      }
    } else {
      // RTD: fill the slot with each label name; score = how original the
      // discriminator finds it (1 - replaced probability).
      for (size_t c = 0; c < num_classes; ++c) {
        float total = 0.0f;
        for (int32_t name : label_names[c]) {
          prompt[slot] = name;
          const auto probs = model_->ReplacedProbs(prompt);
          total += 1.0f - probs[slot];
        }
        scores.At(d, c) =
            total / static_cast<float>(label_names[c].size());
      }
      prompt[slot] = text::kMaskId;
    }
  }
  // Per-class calibration: subtract each class's mean score over the
  // corpus and divide by its standard deviation. Raw verbalizer scores
  // carry strong class-frequency bias (the classic zero-shot prompting
  // failure mode); calibration makes the argmax usable.
  const size_t n = scores.rows();
  for (size_t c = 0; c < num_classes; ++c) {
    double mean = 0.0;
    for (size_t d = 0; d < n; ++d) mean += scores.At(d, c);
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (size_t d = 0; d < n; ++d) {
      const double diff = scores.At(d, c) - mean;
      var += diff * diff;
    }
    const double stddev = std::sqrt(var / static_cast<double>(n)) + 1e-9;
    for (size_t d = 0; d < n; ++d) {
      scores.At(d, c) = static_cast<float>(
          (scores.At(d, c) - mean) / stddev);
    }
  }
  return scores;
}

std::vector<int> PromptClass::Run(
    const std::vector<std::vector<int32_t>>& label_names) {
  const size_t num_classes = label_names.size();
  STM_CHECK_EQ(num_classes, corpus_.num_labels());
  const la::Matrix scores = ZeroShotScores(label_names, config_.prompt);

  // Confidence = margin between best and runner-up prompt score.
  struct Scored {
    float margin;
    size_t doc;
    int label;
  };
  std::vector<Scored> ranked;
  for (size_t d = 0; d < corpus_.num_docs(); ++d) {
    const float* row = scores.Row(d);
    size_t best = 0;
    for (size_t c = 1; c < num_classes; ++c) {
      if (row[c] > row[best]) best = c;
    }
    float second = -1e30f;
    for (size_t c = 0; c < num_classes; ++c) {
      if (c != best) second = std::max(second, row[c]);
    }
    ranked.push_back({row[best] - second, d, static_cast<int>(best)});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const Scored& a, const Scored& b) {
              return a.margin > b.margin;
            });

  std::vector<std::vector<int32_t>> all_docs;
  for (const auto& doc : corpus_.docs()) all_docs.push_back(doc.tokens);

  // (1) Seed training pool from the most confident prompt labels,
  // balanced per class so a skewed prompt doesn't starve any label.
  std::vector<bool> in_pool(corpus_.num_docs(), false);
  std::vector<int> pool_label(corpus_.num_docs(), -1);
  const size_t per_class = std::max<size_t>(
      1, static_cast<size_t>(ranked.size() * config_.initial_fraction) /
             num_classes);
  std::vector<size_t> taken(num_classes, 0);
  for (const Scored& entry : ranked) {
    const size_t c = static_cast<size_t>(entry.label);
    if (taken[c] >= per_class) continue;
    in_pool[entry.doc] = true;
    pool_label[entry.doc] = entry.label;
    taken[c]++;
  }

  nn::ClassifierConfig clf_config;
  clf_config.vocab_size = corpus_.vocab().size();
  clf_config.num_classes = num_classes;
  clf_config.seed = config_.seed;
  auto classifier = nn::MakeClassifier(config_.head_classifier, clf_config);

  // (2) + (3): train on the pool, expand where classifier and prompt
  // agree with high classifier confidence.
  for (int round = 0; round <= config_.expansion_rounds; ++round) {
    std::vector<std::vector<int32_t>> train_docs;
    std::vector<int> train_labels;
    for (size_t d = 0; d < corpus_.num_docs(); ++d) {
      if (in_pool[d]) {
        train_docs.push_back(corpus_.docs()[d].tokens);
        train_labels.push_back(pool_label[d]);
      }
    }
    classifier->Fit(train_docs, train_labels, config_.classifier_epochs);
    if (round == config_.expansion_rounds) break;

    const la::Matrix probs = classifier->PredictProbs(all_docs);
    std::vector<std::tuple<float, size_t, size_t>> candidates;  // (p, doc, c)
    for (size_t d = 0; d < corpus_.num_docs(); ++d) {
      if (in_pool[d]) continue;
      const float* row = probs.Row(d);
      const size_t best = static_cast<size_t>(
          std::max_element(row, row + num_classes) - row);
      // Expand only where the head classifier agrees with the prompt.
      const float* prow = scores.Row(d);
      const size_t prompt_best = static_cast<size_t>(
          std::max_element(prow, prow + num_classes) - prow);
      if (best != prompt_best) continue;
      candidates.emplace_back(row[best], d, best);
    }
    std::sort(candidates.rbegin(), candidates.rend());
    // Balanced per-class expansion.
    const size_t add_per_class = std::max<size_t>(
        1, static_cast<size_t>(corpus_.num_docs() *
                               config_.expand_fraction) /
               num_classes);
    std::vector<size_t> added(num_classes, 0);
    for (const auto& [p, d, c] : candidates) {
      if (added[c] >= add_per_class) continue;
      in_pool[d] = true;
      pool_label[d] = static_cast<int>(c);
      added[c]++;
    }
  }

  if (config_.final_self_train) {
    return SelfTrain(*classifier, all_docs, config_.self_train);
  }
  return classifier->Predict(all_docs);
}

}  // namespace stm::core
