#ifndef STM_COMMON_CHECK_H_
#define STM_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

// Assertion and logging macros used across the library.
//
// STM_CHECK(cond) aborts with a message when `cond` is false. These guard
// programmer errors (shape mismatches, out-of-range indices) and are active
// in all build types: the library is research infrastructure where a silent
// wrong answer is worse than a crash.

namespace stm {
namespace internal {

// Terminates the process after printing `msg` with source location.
[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const std::string& msg) {
  std::fprintf(stderr, "[STM CHECK FAILED] %s:%d: %s\n", file, line,
               msg.c_str());
  std::abort();
}

// Stream-style message builder so call sites can write
//   STM_CHECK(a == b) << "a=" << a;
class CheckMessage {
 public:
  CheckMessage(const char* file, int line, const char* cond)
      : file_(file), line_(line) {
    stream_ << "check `" << cond << "` failed. ";
  }

  [[noreturn]] ~CheckMessage() { CheckFailed(file_, line_, stream_.str()); }

  template <typename T>
  CheckMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace stm

#define STM_CHECK(cond)                                            \
  if (cond) {                                                      \
  } else                                                           \
    ::stm::internal::CheckMessage(__FILE__, __LINE__, #cond)

#define STM_CHECK_EQ(a, b) STM_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define STM_CHECK_NE(a, b) STM_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define STM_CHECK_LT(a, b) STM_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define STM_CHECK_LE(a, b) STM_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define STM_CHECK_GT(a, b) STM_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define STM_CHECK_GE(a, b) STM_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#endif  // STM_COMMON_CHECK_H_
