#ifndef STM_NN_OPS_H_
#define STM_NN_OPS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "nn/tensor.h"

namespace stm::nn {

// Differentiable operations. All functions build graph nodes; gradients
// flow to any parent with requires_grad when Backward() runs. Tensors are
// row-major; "rows" of a rank-2 tensor [n, d] are length-d vectors.

// ---- elementwise ----

Tensor Add(const Tensor& a, const Tensor& b);          // same shape
Tensor Sub(const Tensor& a, const Tensor& b);          // same shape
Tensor Mul(const Tensor& a, const Tensor& b);          // same shape
Tensor Scale(const Tensor& a, float s);
Tensor AddScalar(const Tensor& a, float s);

// x [n, d] + bias [d], broadcast over rows.
Tensor AddBias(const Tensor& x, const Tensor& bias);

// x + c where `c` is a non-differentiable constant of the same size
// (attention masks).
Tensor AddConstant(const Tensor& x, const std::vector<float>& c);

// x + c with each `block`-sized slab of `c` broadcast over `repeat`
// consecutive slabs of x: x is G*repeat blocks, c is G blocks, and
// x-block g*repeat + r receives c-block g. Lets the attention mask store
// one seq*seq slab per sequence instead of one per (sequence, head).
Tensor AddConstantBroadcast(const Tensor& x, const std::vector<float>& c,
                            size_t repeat, size_t block);

// ---- activations ----

Tensor Relu(const Tensor& x);
Tensor Gelu(const Tensor& x);   // tanh approximation
Tensor Tanh(const Tensor& x);
Tensor Sigmoid(const Tensor& x);

// ---- matrix products ----

// a [m, k] * b [k, n] -> [m, n].
Tensor MatMul(const Tensor& a, const Tensor& b);

// Batched: a [B, m, k] * b [B, k, n] -> [B, m, n].
Tensor BMatMul(const Tensor& a, const Tensor& b);

// Batched with transposed rhs: a [B, m, k] * b [B, n, k]^T -> [B, m, n].
Tensor BMatMulT(const Tensor& a, const Tensor& b);

// ---- shape ----

// Same data, new shape (element count preserved).
Tensor Reshape(const Tensor& x, std::vector<size_t> shape);

// Axis permutation for rank 2..4 tensors.
Tensor Permute(const Tensor& x, const std::vector<size_t>& axes);

// Columns [start, start+len) of x [n, d] -> [n, len].
Tensor SliceCols(const Tensor& x, size_t start, size_t len);

// Rows of x [n, d] selected by `indices` (repeats allowed) -> [k, d].
// This is also the embedding lookup when x is a parameter table.
Tensor Rows(const Tensor& x, const std::vector<int32_t>& indices);

// Concatenates along columns: inputs all [n, d_i] -> [n, sum d_i].
Tensor ConcatCols(const std::vector<Tensor>& parts);

// Concatenates along rows: inputs all [n_i, d] -> [sum n_i, d].
Tensor ConcatRows(const std::vector<Tensor>& parts);

// ---- reductions / pooling ----

Tensor SumAll(const Tensor& x);    // -> scalar
Tensor MeanAll(const Tensor& x);   // -> scalar

// x [B*S, d] viewed as B sequences of length S; mean over the first
// `lengths[b]` positions of each -> [B, d]. lengths[b] in [1, S].
Tensor MaskedMeanPool(const Tensor& x, size_t batch, size_t seq,
                      const std::vector<int>& lengths);

// Max over rows within each consecutive group of `group` rows:
// x [B*group, d] -> [B, d]. Gradient routes to the argmax row.
Tensor MaxPoolRows(const Tensor& x, size_t batch, size_t group);

// Weighted sum of rows: x [n, d], weights [n] (differentiable) -> [1, d].
Tensor WeightedSumRows(const Tensor& x, const Tensor& weights);

// ---- softmax / normalization ----

// Softmax over the last dimension.
Tensor SoftmaxLastDim(const Tensor& x);

// Log-softmax over the last dimension (numerically stable).
Tensor LogSoftmaxLastDim(const Tensor& x);

// L2-normalizes each row of x [n, d] (zero rows pass through).
Tensor NormalizeRowsOp(const Tensor& x);

// Per-row layer normalization of x [n, d] with learnable gamma/beta [d].
Tensor LayerNorm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                 float eps = 1e-5f);

// Inverted dropout; identity when !training or p == 0.
Tensor Dropout(const Tensor& x, float p, Rng& rng, bool training);

// ---- convolution helper ----

// Sliding windows for 1-D convolution over token embeddings.
// x is [B*S, d] (B sequences of length S); output is
// [B*(S-width+1), width*d], each row the concatenation of `width`
// consecutive embedding rows within one sequence.
Tensor Im2Col(const Tensor& x, size_t batch, size_t seq, size_t width);

}  // namespace stm::nn

#endif  // STM_NN_OPS_H_
