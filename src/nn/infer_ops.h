#ifndef STM_NN_INFER_OPS_H_
#define STM_NN_INFER_OPS_H_

#include <cstddef>

namespace stm::nn {

// Inference-only forward kernels over raw float buffers. These replicate
// the forward math of the autograd ops in nn/ops.cc exactly (same
// constants, same accumulation order) so a frozen-weight forward pass
// (plm::QuantizedMiniLm) differs from the fp32 graph only by weight
// quantization, never by activation-function drift. No Node construction,
// no gradient bookkeeping.

// The tanh-approximation GELU used by both the autograd op and the
// inference path.
float GeluScalar(float x);

// x[i] = GeluScalar(x[i]) for i in [0, count).
void GeluInplace(float* x, size_t count);

// x[i] = max(x[i], 0).
void ReluInplace(float* x, size_t count);

// Adds bias[j] to every row of the row-major x[rows, d].
void AddBiasRows(float* x, size_t rows, size_t d, const float* bias);

// Row-wise layer norm of x[rows, d] into out[rows, d] (may not alias x):
// out = (x - mean) * rsqrt(var + eps) * gamma + beta with the biased
// variance, matching nn::LayerNorm's forward.
void LayerNormRows(const float* x, size_t rows, size_t d, const float* gamma,
                   const float* beta, float eps, float* out);

// In-place row-wise softmax of x[rows, d] with max subtraction, matching
// nn::SoftmaxLastDim's forward.
void SoftmaxRowsInplace(float* x, size_t rows, size_t d);

// Query rows processed per strip by TiledAttentionHead. Documents up to
// this length see the exact pre-tiling execution (one strip covers all
// queries).
inline constexpr size_t kAttentionQueryBlock = 64;

// Scaled-dot-product attention for one head over contiguous row-major
// q/k/v [len, dh]: ctx = softmax(q k^T * scale) v, overwriting ctx.
//
// Queries are processed in strips of kAttentionQueryBlock rows so the
// score buffer is O(strip * len) workspace instead of a materialized
// len x len matrix. Each strip still scores against the FULL key range
// before its softmax (no streaming/rescaled softmax), and every score and
// context cell has a row-local accumulation chain, so the output is
// bit-identical to the unbounded len x len formulation — tiling changes
// the peak memory, never the bits.
void TiledAttentionHead(const float* qh, const float* kh, const float* vh,
                        size_t len, size_t dh, float scale, float* ctx);

}  // namespace stm::nn

#endif  // STM_NN_INFER_OPS_H_
