// News topic classification with a pre-trained language model.
//
// Shows the PLM-based pipeline end to end: pre-train MiniLm on an
// unlabeled "general" corpus, then classify a news corpus with X-Class and
// LOTClass from category names only — and inspect what the LM learned
// (contextual replacements of an ambiguous word).
//
//   ./example_news_topic_weak

#include <cstdio>

#include "core/lotclass.h"
#include "core/xclass.h"
#include "datasets/specs.h"
#include "eval/metrics.h"
#include "plm/minilm.h"

int main() {
  stm::datasets::SyntheticSpec spec = stm::datasets::AgNewsSpec(/*seed=*/9);
  spec.num_docs = 300;
  spec.pretrain_docs = 800;
  stm::datasets::SyntheticDataset data = stm::datasets::Generate(spec);

  // Pre-train the LM stand-in on the unlabeled general corpus. (The first
  // run takes a minute or two; the model is cached in ./plm_cache.)
  stm::plm::MiniLmConfig lm_config;
  lm_config.vocab_size = data.corpus.vocab().size();
  lm_config.dim = 40;
  lm_config.layers = 2;
  lm_config.heads = 4;
  lm_config.ffn_dim = 80;
  lm_config.max_seq = 40;
  stm::plm::PretrainConfig pretrain;
  pretrain.steps = 1200;
  pretrain.log_every = 300;
  auto model = stm::plm::MiniLm::LoadOrPretrain(
      "plm_cache", data.fingerprint, lm_config, pretrain,
      data.pretrain_docs);

  // What did it learn? Replacements for an ambiguous token depend on the
  // context (the LOTClass observation).
  const auto& vocab = data.corpus.vocab();
  const auto occurrences = data.corpus.Occurrences(vocab.IdOf("amb0"), 2);
  for (const auto& [d, pos] : occurrences) {
    std::printf("'amb0' in a %s document -> LM suggests: ",
                data.corpus
                    .label_names()[static_cast<size_t>(
                        data.corpus.docs()[d].labels[0])]
                    .c_str());
    for (int32_t id :
         model->PredictTopK(data.corpus.docs()[d].tokens, pos, 6)) {
      std::printf("%s ", vocab.TokenOf(id).c_str());
    }
    std::printf("\n");
  }

  const auto gold = data.corpus.GoldLabels();

  // X-Class: class-oriented representations + clustering.
  stm::core::XClassConfig xclass_config;
  stm::core::XClass xclass(data.corpus, model.get(), xclass_config);
  const auto xclass_pred = xclass.Run(data.leaf_name_tokens);
  std::printf("X-Class accuracy:  %.3f\n",
              stm::eval::Accuracy(xclass_pred, gold));

  // LOTClass: category vocabulary via the masked LM + self-training.
  stm::core::LotClassConfig lot_config;
  stm::core::LotClass lotclass(data.corpus, model.get(), lot_config);
  const auto lot_pred = lotclass.Run(data.leaf_name_tokens);
  std::printf("LOTClass accuracy: %.3f\n",
              stm::eval::Accuracy(lot_pred, gold));

  // The category vocabulary LOTClass discovered for class "sports".
  std::printf("LOTClass category vocabulary for 'sports': ");
  for (int32_t id : lotclass.category_vocab()[1]) {
    std::printf("%s ", vocab.TokenOf(id).c_str());
  }
  std::printf("\n");
  return 0;
}
