#include "core/baselines.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "index/ann.h"
#include "la/matrix.h"
#include "nn/text_classifier.h"
#include "plm/encode_cache.h"
#include "text/tfidf.h"
#include "text/vocabulary.h"

namespace stm::core {

std::vector<int> IrTfIdfClassify(
    const text::Corpus& corpus,
    const std::vector<std::vector<int32_t>>& class_keywords) {
  STM_CHECK_EQ(class_keywords.size(), corpus.num_labels());
  text::TfIdf tfidf(corpus);
  std::vector<text::SparseVector> queries;
  for (const auto& keywords : class_keywords) {
    queries.push_back(tfidf.KeywordQuery(keywords));
  }
  std::vector<int> predictions(corpus.num_docs(), 0);
  for (size_t d = 0; d < corpus.num_docs(); ++d) {
    const text::SparseVector vec = tfidf.Transform(corpus.docs()[d].tokens);
    float best = -1.0f;
    for (size_t c = 0; c < queries.size(); ++c) {
      const float sim = text::SparseCosine(queries[c], vec);
      if (sim > best) {
        best = sim;
        predictions[d] = static_cast<int>(c);
      }
    }
  }
  return predictions;
}

std::vector<int> LdaClassify(
    const text::Corpus& corpus,
    const std::vector<std::vector<int32_t>>& class_keywords,
    const LdaConfig& config) {
  const size_t num_topics = corpus.num_labels();
  const size_t vocab_size = corpus.vocab().size();
  Rng rng(config.seed);

  // Flatten tokens with doc boundaries.
  std::vector<int32_t> words;
  std::vector<size_t> doc_of;
  for (size_t d = 0; d < corpus.num_docs(); ++d) {
    for (int32_t id : corpus.docs()[d].tokens) {
      if (id < text::kNumSpecialTokens) continue;
      words.push_back(id);
      doc_of.push_back(d);
    }
  }
  std::vector<int> topic_of(words.size());
  la::Matrix doc_topic(corpus.num_docs(), num_topics);
  la::Matrix topic_word(num_topics, vocab_size);
  std::vector<double> topic_total(num_topics, 0.0);
  for (size_t i = 0; i < words.size(); ++i) {
    const int topic = static_cast<int>(rng.UniformInt(num_topics));
    topic_of[i] = topic;
    doc_topic.At(doc_of[i], static_cast<size_t>(topic)) += 1.0f;
    topic_word.At(static_cast<size_t>(topic),
                  static_cast<size_t>(words[i])) += 1.0f;
    topic_total[static_cast<size_t>(topic)] += 1.0;
  }

  std::vector<double> probs(num_topics);
  const double vbeta = config.beta * static_cast<double>(vocab_size);
  for (int iter = 0; iter < config.iterations; ++iter) {
    for (size_t i = 0; i < words.size(); ++i) {
      const size_t d = doc_of[i];
      const size_t w = static_cast<size_t>(words[i]);
      const size_t old_topic = static_cast<size_t>(topic_of[i]);
      doc_topic.At(d, old_topic) -= 1.0f;
      topic_word.At(old_topic, w) -= 1.0f;
      topic_total[old_topic] -= 1.0;
      for (size_t t = 0; t < num_topics; ++t) {
        probs[t] = (doc_topic.At(d, t) + config.alpha) *
                   (topic_word.At(t, w) + config.beta) /
                   (topic_total[t] + vbeta);
      }
      const size_t new_topic = rng.Discrete(probs);
      topic_of[i] = static_cast<int>(new_topic);
      doc_topic.At(d, new_topic) += 1.0f;
      topic_word.At(new_topic, w) += 1.0f;
      topic_total[new_topic] += 1.0;
    }
  }

  // Map topics to classes by seed-keyword mass, greedily one-to-one.
  la::Matrix affinity(num_topics, num_topics);  // topic x class
  for (size_t c = 0; c < class_keywords.size(); ++c) {
    for (int32_t id : class_keywords[c]) {
      if (id < 0 || static_cast<size_t>(id) >= vocab_size) continue;
      for (size_t t = 0; t < num_topics; ++t) {
        affinity.At(t, c) += topic_word.At(t, static_cast<size_t>(id)) /
                             static_cast<float>(topic_total[t] + 1.0);
      }
    }
  }
  std::vector<int> topic_to_class(num_topics, 0);
  std::vector<bool> topic_used(num_topics, false);
  std::vector<bool> class_used(num_topics, false);
  for (size_t round = 0; round < num_topics; ++round) {
    float best = -1.0f;
    size_t bt = 0;
    size_t bc = 0;
    for (size_t t = 0; t < num_topics; ++t) {
      if (topic_used[t]) continue;
      for (size_t c = 0; c < num_topics; ++c) {
        if (class_used[c]) continue;
        if (affinity.At(t, c) > best) {
          best = affinity.At(t, c);
          bt = t;
          bc = c;
        }
      }
    }
    topic_to_class[bt] = static_cast<int>(bc);
    topic_used[bt] = true;
    class_used[bc] = true;
  }

  std::vector<int> predictions(corpus.num_docs(), 0);
  for (size_t d = 0; d < corpus.num_docs(); ++d) {
    const float* row = doc_topic.Row(d);
    const size_t top =
        static_cast<size_t>(std::max_element(row, row + num_topics) - row);
    predictions[d] = topic_to_class[top];
  }
  return predictions;
}

std::vector<int> EmbeddingSimilarityClassify(
    const text::Corpus& corpus, const embedding::WordEmbeddings& embeddings,
    const std::vector<std::vector<int32_t>>& class_keywords) {
  STM_CHECK(!class_keywords.empty());
  la::Matrix class_reps(class_keywords.size(), embeddings.dim());
  for (size_t c = 0; c < class_keywords.size(); ++c) {
    class_reps.SetRow(c, embeddings.AverageOf(class_keywords[c]));
  }
  la::Matrix doc_reps(corpus.num_docs(), embeddings.dim());
  for (size_t d = 0; d < corpus.num_docs(); ++d) {
    doc_reps.SetRow(d, embeddings.AverageOf(corpus.docs()[d].tokens));
  }
  // One batched top-1 retrieval; zero doc reps tie to class 0 like the
  // scalar scan they replace.
  const std::vector<std::vector<ann::Neighbor>> top =
      ann::TopKSimilar(doc_reps, class_reps, 1);
  std::vector<int> predictions(corpus.num_docs(), 0);
  for (size_t d = 0; d < corpus.num_docs(); ++d) {
    predictions[d] = static_cast<int>(top[d][0].id);
  }
  return predictions;
}

std::vector<int> PlmSimpleMatchClassify(
    const text::Corpus& corpus, plm::MiniLm& model,
    const std::vector<std::vector<int32_t>>& class_name_tokens) {
  plm::ScopedEncodeCache encode_cache(&model);
  const la::Matrix class_reps = model.PoolBatch(class_name_tokens);
  // Shard-at-a-time pooling through the CorpusReader interface
  // (bit-identical to pooling every document in one batch).
  auto pooled = plm::PoolCorpus(model, corpus);
  STM_CHECK(pooled.ok()) << pooled.status().message();
  const la::Matrix doc_reps = std::move(pooled).value();
  const std::vector<std::vector<ann::Neighbor>> top =
      ann::TopKSimilar(doc_reps, class_reps, 1);
  std::vector<int> predictions(corpus.num_docs(), 0);
  for (size_t d = 0; d < corpus.num_docs(); ++d) {
    predictions[d] = static_cast<int>(top[d][0].id);
  }
  return predictions;
}

std::vector<int> SupervisedBound(const text::Corpus& corpus,
                                 const std::vector<size_t>& train_docs,
                                 const std::string& kind, int epochs,
                                 uint64_t seed) {
  nn::ClassifierConfig config;
  config.vocab_size = corpus.vocab().size();
  config.num_classes = corpus.num_labels();
  config.seed = seed;
  auto classifier = nn::MakeClassifier(kind, config);
  std::vector<std::vector<int32_t>> docs;
  std::vector<int> labels;
  for (size_t d : train_docs) {
    docs.push_back(corpus.docs()[d].tokens);
    labels.push_back(corpus.docs()[d].Label());
  }
  classifier->Fit(docs, labels, epochs);
  std::vector<std::vector<int32_t>> all_docs;
  for (const auto& doc : corpus.docs()) all_docs.push_back(doc.tokens);
  return classifier->Predict(all_docs);
}

}  // namespace stm::core
