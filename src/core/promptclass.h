#ifndef STM_CORE_PROMPTCLASS_H_
#define STM_CORE_PROMPTCLASS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/self_training.h"
#include "plm/minilm.h"
#include "text/corpus.h"

namespace stm::core {

// Prompt-based weakly-supervised classification (the tutorial's
// "integrating head token & prompt-based fine-tuning" section).
//
// Zero-shot prompting:
//  * MLM style ("RoBERTa"): append a [MASK] slot to the document and rank
//    classes by the masked-LM probability of their label-name tokens.
//  * RTD style ("ELECTRA"): fill the slot with each label name and rank
//    classes by how *original* (non-replaced) the discriminator finds it.
//
// PromptClass then (1) pseudo-labels the most confident documents from the
// zero-shot prompt scores, (2) trains a head-token classifier on them, and
// (3) iteratively expands the pseudo-labeled pool where prompt and
// classifier agree, finishing with self-training.

enum class PromptStyle { kMlm, kRtd };

struct PromptClassConfig {
  PromptStyle prompt = PromptStyle::kRtd;
  std::string head_classifier = "bow";  // head-token fine-tuning stand-in
  double initial_fraction = 0.3;        // confident docs seeding training
  int expansion_rounds = 2;
  double expand_fraction = 0.25;        // extra docs added per round
  int classifier_epochs = 8;
  bool final_self_train = true;
  SelfTrainConfig self_train;
  uint64_t seed = 101;
};

class PromptClass {
 public:
  PromptClass(const text::Corpus& corpus, plm::MiniLm* model,
              const PromptClassConfig& config);

  // Zero-shot prompt scores [n, C] (higher = more likely class). Public:
  // the "RoBERTa (0-shot)" / "ELECTRA (0-shot)" baselines are exactly
  // argmax over these.
  la::Matrix ZeroShotScores(
      const std::vector<std::vector<int32_t>>& label_names,
      PromptStyle style);

  // Full PromptClass pipeline.
  std::vector<int> Run(const std::vector<std::vector<int32_t>>& label_names);

 private:
  const text::Corpus& corpus_;
  plm::MiniLm* model_;
  PromptClassConfig config_;
};

}  // namespace stm::core

#endif  // STM_CORE_PROMPTCLASS_H_
