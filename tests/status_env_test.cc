// Unit tests for the error-propagation and durable-I/O subsystem:
// Status/StatusOr, the Env filesystem seam, the framed artifact format in
// common/serialize, and the TSV round-trip hardening. Runs in the
// `robustness` ctest label (see tests/CMakeLists.txt).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/hash.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "common/status.h"
#include "text/corpus_io.h"

namespace stm {
namespace {

// ---- Status / StatusOr ----

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status = CorruptDataError("bad crc");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruptData);
  EXPECT_EQ(status.message(), "bad crc");
  EXPECT_EQ(status.ToString(), "CORRUPT_DATA: bad crc");
}

TEST(StatusTest, WithContextPrepends) {
  const Status status = IoError("disk on fire").WithContext("saving model");
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_EQ(status.message(), "saving model: disk on fire");
  EXPECT_TRUE(Status::Ok().WithContext("ignored").ok());
}

TEST(StatusOrTest, HoldsValueOrStatus) {
  StatusOr<int> good = 42;
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);

  StatusOr<int> bad = UnavailableError("nope");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kUnavailable);
}

TEST(StatusOrTest, SupportsMoveOnlyTypes) {
  StatusOr<std::unique_ptr<int>> result = std::make_unique<int>(7);
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(result).value();
  EXPECT_EQ(*owned, 7);
}

Status FailsThrough(StatusCode code) {
  STM_RETURN_IF_ERROR(Status(code, "inner"));
  return Status::Ok();
}

StatusOr<int> DoublesOrFails(StatusOr<int> input) {
  STM_ASSIGN_OR_RETURN(const int value, std::move(input));
  return value * 2;
}

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(FailsThrough(StatusCode::kOk).ok());
  EXPECT_EQ(FailsThrough(StatusCode::kIoError).code(), StatusCode::kIoError);
}

TEST(StatusMacrosTest, AssignOrReturnPropagates) {
  EXPECT_EQ(DoublesOrFails(21).value(), 42);
  EXPECT_EQ(DoublesOrFails(InvalidArgumentError("no")).status().code(),
            StatusCode::kInvalidArgument);
}

// ---- CRC32C ----

TEST(Crc32cTest, MatchesKnownVector) {
  // The iSCSI/RFC 3720 check value for "123456789".
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(""), 0u);
}

TEST(Crc32cTest, ChunkedEqualsWhole) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = Crc32c(data);
  const uint32_t chunked = Crc32c(data.substr(10), Crc32c(data.substr(0, 10)));
  EXPECT_EQ(chunked, whole);
  EXPECT_NE(Crc32c("almost the same data"), Crc32c("almost the sane data"));
}

// ---- Env ----

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(EnvTest, WriteReadRoundTrip) {
  Env* env = Env::Default();
  const std::string path = TempPath("env_roundtrip.bin");
  const std::string payload("binary\0data\xFFwith nul", 20);
  ASSERT_TRUE(env->WriteFileAtomic(path, payload).ok());
  StatusOr<std::string> read = env->ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), payload);
}

TEST(EnvTest, MissingFileIsUnavailable) {
  StatusOr<std::string> read =
      Env::Default()->ReadFile(TempPath("does_not_exist"));
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kUnavailable);
}

TEST(EnvTest, AtomicWriteReplacesAndLeavesNoTempFiles) {
  Env* env = Env::Default();
  const std::string dir = TempPath("atomic_dir");
  std::filesystem::create_directory(dir);
  const std::string path = dir + "/file.bin";
  ASSERT_TRUE(env->WriteFileAtomic(path, "old").ok());
  ASSERT_TRUE(env->WriteFileAtomic(path, "new").ok());
  EXPECT_EQ(env->ReadFile(path).value(), "new");
  size_t entries = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);  // no stray temp files
}

TEST(EnvTest, DeleteAndRename) {
  Env* env = Env::Default();
  const std::string a = TempPath("env_a.bin");
  const std::string b = TempPath("env_b.bin");
  ASSERT_TRUE(env->WriteFileAtomic(a, "payload").ok());
  ASSERT_TRUE(env->Rename(a, b).ok());
  EXPECT_FALSE(env->FileExists(a));
  ASSERT_TRUE(env->FileExists(b));
  ASSERT_TRUE(env->Delete(b).ok());
  EXPECT_FALSE(env->FileExists(b));
  EXPECT_EQ(env->Delete(b).code(), StatusCode::kUnavailable);
}

TEST(EnvTest, RetrySucceedsAfterTransientFailures) {
  FaultInjectingEnv env(Env::Default());
  const std::string path = TempPath("env_retry_ok.bin");
  env.FailNextWrites(2, StatusCode::kUnavailable);
  RetryOptions retry;
  retry.max_attempts = 3;
  retry.initial_backoff_ms = 0;
  ASSERT_TRUE(WriteFileAtomicWithRetry(&env, path, "data", retry).ok());
  EXPECT_EQ(env.write_count(), 3);
  EXPECT_EQ(env.injected_failures(), 2);
}

TEST(EnvTest, RetryDoesNotRetryDeterministicErrors) {
  FaultInjectingEnv env(Env::Default());
  env.FailNextWrites(1, StatusCode::kIoError);
  RetryOptions retry;
  retry.max_attempts = 5;
  retry.initial_backoff_ms = 0;
  const Status status = WriteFileAtomicWithRetry(
      &env, TempPath("env_retry_hard.bin"), "data", retry);
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_EQ(env.write_count(), 1);
}

// ---- serialize: framed artifacts ----

constexpr uint32_t kTestMagic = 0x54534554;  // "TEST"

TEST(SerializeTest, FramedRoundTrip) {
  Env* env = Env::Default();
  const std::string path = TempPath("artifact_roundtrip.bin");
  BinaryWriter writer;
  writer.WriteU32(123);
  writer.WriteU64(1ULL << 40);
  writer.WriteF32(2.5f);
  writer.WriteString("hello world");
  writer.WriteFloats({1.0f, -2.0f, 3.0f});
  ASSERT_TRUE(writer.FlushToEnv(env, path, kTestMagic).ok());

  StatusOr<BinaryReader> opened =
      BinaryReader::OpenArtifact(env, path, kTestMagic);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  BinaryReader reader = std::move(opened).value();
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  float f32 = 0.0f;
  std::string text;
  std::vector<float> floats;
  ASSERT_TRUE(reader.Read(&u32).ok());
  ASSERT_TRUE(reader.Read(&u64).ok());
  ASSERT_TRUE(reader.Read(&f32).ok());
  ASSERT_TRUE(reader.Read(&text).ok());
  ASSERT_TRUE(reader.Read(&floats).ok());
  EXPECT_EQ(u32, 123u);
  EXPECT_EQ(u64, 1ULL << 40);
  EXPECT_FLOAT_EQ(f32, 2.5f);
  EXPECT_EQ(text, "hello world");
  EXPECT_EQ(floats, (std::vector<float>{1.0f, -2.0f, 3.0f}));
  EXPECT_TRUE(reader.Finish().ok());
}

TEST(SerializeTest, MissingArtifactIsUnavailable) {
  StatusOr<BinaryReader> opened = BinaryReader::OpenArtifact(
      Env::Default(), TempPath("no_such_artifact.bin"), kTestMagic);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kUnavailable);
}

TEST(SerializeTest, WrongArtifactMagicIsCorrupt) {
  Env* env = Env::Default();
  const std::string path = TempPath("artifact_wrong_magic.bin");
  BinaryWriter writer;
  writer.WriteU32(7);
  ASSERT_TRUE(writer.FlushToEnv(env, path, kTestMagic).ok());
  StatusOr<BinaryReader> opened =
      BinaryReader::OpenArtifact(env, path, kTestMagic + 1);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kCorruptData);
}

TEST(SerializeTest, FlippedPayloadByteFailsCrc) {
  Env* env = Env::Default();
  const std::string path = TempPath("artifact_flip.bin");
  BinaryWriter writer;
  writer.WriteFloats(std::vector<float>(64, 1.25f));
  ASSERT_TRUE(writer.FlushToEnv(env, path, kTestMagic).ok());
  std::string bytes = env->ReadFile(path).value();
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x10);
  ASSERT_TRUE(env->WriteFileAtomic(path, bytes).ok());
  StatusOr<BinaryReader> opened =
      BinaryReader::OpenArtifact(env, path, kTestMagic);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kCorruptData);
}

TEST(SerializeTest, FinishRejectsTrailingBytes) {
  Env* env = Env::Default();
  const std::string path = TempPath("artifact_trailing.bin");
  BinaryWriter writer;
  writer.WriteU32(1);
  writer.WriteU32(2);
  ASSERT_TRUE(writer.FlushToEnv(env, path, kTestMagic).ok());
  BinaryReader reader =
      BinaryReader::OpenArtifact(env, path, kTestMagic).value();
  uint32_t value = 0;
  ASSERT_TRUE(reader.Read(&value).ok());
  EXPECT_EQ(reader.Finish().code(), StatusCode::kCorruptData);
}

TEST(SerializeTest, ReaderStaysFailedAfterFirstError) {
  Env* env = Env::Default();
  const std::string path = TempPath("artifact_sticky.bin");
  BinaryWriter writer;
  writer.WriteU32(1);
  ASSERT_TRUE(writer.FlushToEnv(env, path, kTestMagic).ok());
  BinaryReader reader =
      BinaryReader::OpenArtifact(env, path, kTestMagic).value();
  uint64_t too_big = 0;
  EXPECT_FALSE(reader.Read(&too_big).ok());  // only 4 bytes present
  uint32_t after = 9;
  EXPECT_FALSE(reader.Read(&after).ok());
  EXPECT_EQ(after, 0u);
  EXPECT_FALSE(reader.ok());
}

// ---- serialize: untrusted length fields must not wrap or allocate ----

// Writes `writer`'s raw (unframed) buffer so the legacy reader sees the
// hostile bytes directly, bypassing the CRC that would otherwise reject
// them before decoding.
std::string WriteRaw(const BinaryWriter& writer, const std::string& name) {
  const std::string path = TempPath(name);
  EXPECT_TRUE(Env::Default()->WriteFileAtomic(path, writer.buffer()).ok());
  return path;
}

TEST(SerializeOverflowTest, HugeFloatCountIsRejectedNotAllocated) {
  // count * sizeof(float) wraps to 4 for this count; the old bounds check
  // passed and the resize attempted a multi-exabyte allocation.
  BinaryWriter writer;
  writer.WriteU64((1ULL << 62) + 1);
  BinaryReader reader(WriteRaw(writer, "overflow_floats.bin"));
  ASSERT_TRUE(reader.ok());
  std::vector<float> values;
  EXPECT_EQ(reader.Read(&values).code(), StatusCode::kCorruptData);
  EXPECT_TRUE(values.empty());
}

TEST(SerializeOverflowTest, HugeStringLengthIsRejected) {
  BinaryWriter writer;
  writer.WriteU64(~0ULL - 3);
  BinaryReader reader(WriteRaw(writer, "overflow_string.bin"));
  ASSERT_TRUE(reader.ok());
  std::string value;
  EXPECT_EQ(reader.Read(&value).code(), StatusCode::kCorruptData);
  EXPECT_TRUE(value.empty());
}

TEST(SerializeOverflowTest, LegacyValueReadsReportViaOk) {
  BinaryWriter writer;
  writer.WriteU64(1ULL << 63);
  BinaryReader reader(WriteRaw(writer, "overflow_legacy.bin"));
  ASSERT_TRUE(reader.ok());
  const std::vector<float> values = reader.ReadFloats();
  EXPECT_TRUE(values.empty());
  EXPECT_FALSE(reader.ok());
  EXPECT_FALSE(reader.exhausted());
}

// ---- TSV round-trip hardening ----

text::Corpus MakeCorpus(const std::vector<std::string>& labels,
                        const std::vector<std::vector<std::string>>& docs) {
  text::Corpus corpus;
  corpus.label_names() = labels;
  for (size_t d = 0; d < docs.size(); ++d) {
    text::Document doc;
    doc.labels.push_back(static_cast<int>(d % labels.size()));
    for (const std::string& token : docs[d]) {
      doc.tokens.push_back(corpus.vocab().AddToken(token));
    }
    corpus.docs().push_back(std::move(doc));
  }
  return corpus;
}

void ExpectCorporaEqual(const text::Corpus& a, const text::Corpus& b) {
  ASSERT_EQ(a.num_docs(), b.num_docs());
  for (size_t d = 0; d < a.num_docs(); ++d) {
    const text::Document& da = a.docs()[d];
    const text::Document& db = b.docs()[d];
    ASSERT_EQ(da.tokens.size(), db.tokens.size()) << "doc " << d;
    for (size_t t = 0; t < da.tokens.size(); ++t) {
      EXPECT_EQ(a.vocab().TokenOf(da.tokens[t]),
                b.vocab().TokenOf(db.tokens[t]));
    }
    ASSERT_EQ(da.labels.size(), db.labels.size()) << "doc " << d;
    for (size_t l = 0; l < da.labels.size(); ++l) {
      EXPECT_EQ(a.label_names()[static_cast<size_t>(da.labels[l])],
                b.label_names()[static_cast<size_t>(db.labels[l])]);
    }
    EXPECT_EQ(da.metadata, db.metadata) << "doc " << d;
  }
}

TEST(TsvHardeningTest, StructuralCharactersInLabelsAndMetadataRoundTrip) {
  text::Corpus corpus =
      MakeCorpus({"comp.sys=x86|legacy", "tab\there\nand newline"},
                 {{"alpha", "beta"}, {"gamma"}});
  corpus.docs()[0].metadata["path=dir"].push_back("a|b\tc=d\\e");
  corpus.docs()[1].metadata["note"].push_back("line1\nline2");

  Env* env = Env::Default();
  const std::string path = TempPath("tsv_structural.tsv");
  ASSERT_TRUE(text::SaveTsv(env, corpus, path).ok());
  text::Corpus loaded;
  text::TsvReadReport report;
  ASSERT_TRUE(text::LoadTsv(env, path, &loaded, &report).ok());
  EXPECT_EQ(report.skipped, 0u);
  ExpectCorporaEqual(corpus, loaded);
}

TEST(TsvHardeningTest, UnsafeTokenIsRejectedWithClearStatus) {
  text::Corpus corpus = MakeCorpus({"label"}, {{"good", "bad\ttoken"}});
  const Status status =
      text::SaveTsv(Env::Default(), corpus, TempPath("tsv_unsafe.tsv"));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("bad\ttoken"), std::string::npos);
}

TEST(TsvHardeningTest, RejectedLineLeavesNoPhantomState) {
  // The third column is malformed, so the line must be skipped — and the
  // label "phantom" and the tokens "ghost"/"words" must NOT leak into the
  // corpus (they did before the commit-on-success fix).
  Env* env = Env::Default();
  const std::string path = TempPath("tsv_phantom.tsv");
  ASSERT_TRUE(env->WriteFileAtomic(path,
                                   "real\tsolid text here\n"
                                   "phantom\tghost words\tbroken-meta\n")
                  .ok());
  text::Corpus corpus;
  text::TsvReadReport report;
  ASSERT_TRUE(text::LoadTsv(env, path, &corpus, &report).ok());
  EXPECT_EQ(report.skipped, 1u);
  EXPECT_EQ(report.skipped_lines, (std::vector<size_t>{2}));
  EXPECT_EQ(corpus.num_docs(), 1u);
  EXPECT_EQ(corpus.label_names(), (std::vector<std::string>{"real"}));
  EXPECT_FALSE(corpus.vocab().Contains("ghost"));
  EXPECT_FALSE(corpus.vocab().Contains("words"));
}

TEST(TsvHardeningTest, SkippedLineNumbersAreExact) {
  Env* env = Env::Default();
  const std::string path = TempPath("tsv_line_numbers.tsv");
  ASSERT_TRUE(env->WriteFileAtomic(path,
                                   "# comment\n"
                                   "only-one-column\n"
                                   "ok\tfine text\n"
                                   "\n"
                                   "bad\ttext\tno-equals\n")
                  .ok());
  text::Corpus corpus;
  text::TsvReadReport report;
  ASSERT_TRUE(text::LoadTsv(env, path, &corpus, &report).ok());
  EXPECT_EQ(report.skipped, 2u);
  EXPECT_EQ(report.skipped_lines, (std::vector<size_t>{2, 5}));
}

// Property test: corpora whose labels and metadata are random strings over
// an alphabet heavy in structural characters always round-trip to an equal
// corpus (tokens stay tokenizer-safe, as the format requires).
TEST(TsvHardeningTest, PropertyRandomStructuralFieldsRoundTrip) {
  const std::string kNasty = "ab|=\t\\c=|d\n.e ";
  Rng rng(1234);
  for (int round = 0; round < 25; ++round) {
    auto random_field = [&rng, &kNasty]() {
      const size_t length = 1 + rng.UniformInt(8);
      std::string field;
      for (size_t i = 0; i < length; ++i) {
        field.push_back(kNasty[rng.UniformInt(kNasty.size())]);
      }
      return field;
    };
    // Labels must be distinct and non-empty after Trim (leading/trailing
    // whitespace would not survive the line Trim on load).
    std::vector<std::string> labels;
    while (labels.size() < 2) {
      std::string label = random_field();
      if (label.find_first_not_of(" \t\n") == std::string::npos) continue;
      label = "x" + label + "x";  // anchor ends so Trim cannot eat them
      if (std::find(labels.begin(), labels.end(), label) == labels.end()) {
        labels.push_back(label);
      }
    }
    text::Corpus corpus =
        MakeCorpus(labels, {{"alpha", "beta"}, {"gamma", "delta"}});
    for (auto& doc : corpus.docs()) {
      const size_t entries = rng.UniformInt(3);
      for (size_t i = 0; i < entries; ++i) {
        doc.metadata["k" + random_field() + "k"].push_back(
            "v" + random_field() + "v");
      }
    }
    Env* env = Env::Default();
    const std::string path = TempPath("tsv_property.tsv");
    ASSERT_TRUE(text::SaveTsv(env, corpus, path).ok());
    text::Corpus loaded;
    text::TsvReadReport report;
    ASSERT_TRUE(text::LoadTsv(env, path, &loaded, &report).ok());
    EXPECT_EQ(report.skipped, 0u) << "round " << round;
    ExpectCorporaEqual(corpus, loaded);
  }
}

}  // namespace
}  // namespace stm
