// Design-choice ablations (DESIGN.md §5b).
//
// Not a paper table: these sweeps justify the substrate decisions the
// reproduction depends on.
//   A1  MLM pre-training budget vs. downstream X-Class accuracy and the
//       "BERT w. simple match" baseline (context-sensitivity emerges with
//       training).
//   A2  Frequency-aware masking on/off at a fixed budget.
//   A3  WeSTClass: pseudo-document count and embedding warm-start.

#include <string>
#include <vector>

#include "bench/harness.h"
#include "core/baselines.h"
#include "core/westclass.h"
#include "core/xclass.h"
#include "eval/metrics.h"

namespace stm {

int Main() {
  datasets::SyntheticSpec spec = datasets::AgNewsSpec(211);
  spec.num_docs = 300;
  spec.pretrain_docs = 900;
  const datasets::SyntheticDataset data = datasets::Generate(spec);
  const auto gold = data.corpus.GoldLabels();

  // ---- A1: pre-training budget ----
  {
    bench::Table table("A1 — MLM budget vs downstream quality",
                       {"XClass acc", "SimpleMatch"});
    for (int steps : {200, 600, 1200}) {
      auto model = bench::PretrainedLm(data, steps);
      core::XClassConfig config;
      core::XClass xclass(data.corpus, model.get(), config);
      const double xacc =
          eval::Accuracy(xclass.Run(data.leaf_name_tokens), gold);
      const double match = eval::Accuracy(
          core::PlmSimpleMatchClassify(data.corpus, *model,
                                       data.leaf_name_tokens),
          gold);
      table.AddRow("steps=" + std::to_string(steps), {xacc, match});
    }
    table.Print();
  }

  // ---- A2: frequency-aware masking ----
  {
    bench::Table table("A2 — frequency-aware masking (600 steps)",
                       {"XClass acc"});
    for (bool freq_aware : {true, false}) {
      plm::MiniLmConfig config;
      config.vocab_size = data.corpus.vocab().size();
      config.dim = 40;
      config.layers = 2;
      config.heads = 4;
      config.ffn_dim = 80;
      config.max_seq = 40;
      plm::PretrainConfig pretrain;
      pretrain.steps = 600;
      pretrain.frequency_aware_masking = freq_aware;
      plm::MiniLm model(config);
      model.Pretrain(data.pretrain_docs, pretrain);
      core::XClassConfig xconfig;
      core::XClass xclass(data.corpus, &model, xconfig);
      table.AddRow(freq_aware ? "frequency-aware" : "uniform masking",
                   {eval::Accuracy(xclass.Run(data.leaf_name_tokens),
                                   gold)});
    }
    table.Print();
  }

  // ---- A3: WeSTClass pseudo-document budget and warm start ----
  {
    bench::Table table("A3 — WeSTClass-CNN design knobs (LABELS mode)",
                       {"accuracy"});
    for (size_t pseudo : {40u, 150u}) {
      for (bool warm : {true, false}) {
        core::WestClassConfig config;
        config.classifier = "cnn";
        config.pseudo_docs_per_class = pseudo;
        config.warm_start_embeddings = warm;
        config.seed = 219;
        core::WestClass method(data.corpus, config);
        const double acc = eval::Accuracy(
            method.Run(core::Supervision::kLabels, data.supervision), gold);
        table.AddRow("pseudo=" + std::to_string(pseudo) +
                         (warm ? " warm-start" : " cold-start"),
                     {acc});
      }
    }
    table.Print();
  }
  return 0;
}

}  // namespace stm

int main() { return stm::Main(); }
