// E8 — WeSHClass results table (AAAI'19).
//
// Leaf-level Macro/Micro-F1 on the NYT, arXiv and Yelp hierarchies under
// KEYWORDS and DOCS supervision. Rows: Hier-Dataless, flat CNN on pseudo
// docs, flat WeSTClass over the leaves, the three WeSHClass ablations
// (No-global, No-vMF, No-self-train) and full WeSHClass.
//
// Expected shape (paper): WeSHClass > every ablation > flat baselines;
// removing self-training hurts the most.

#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/string_util.h"
#include "text/tfidf.h"
#include "core/baselines.h"
#include "core/weshclass.h"
#include "core/westclass.h"
#include "embedding/sgns.h"
#include "eval/metrics.h"

namespace stm {
namespace {

struct Entry {
  std::string name;
  datasets::SyntheticDataset data;
  std::vector<std::vector<int32_t>> node_keywords;  // per tree node
  // Leaf labels renumbered densely for flat methods.
  text::Corpus leaf_corpus;
  text::WeakSupervision leaf_supervision;
  std::vector<int> leaf_of_label;  // dense label -> tree node
};

Entry MakeEntry(const std::string& name, datasets::SyntheticSpec spec) {
  spec.num_docs = 500;
  spec.pretrain_docs = 0;
  Entry entry;
  entry.name = name;
  entry.data = datasets::Generate(spec);
  entry.node_keywords.resize(entry.data.tree.size());
  for (size_t n = 0; n < entry.data.tree.size(); ++n) {
    for (const auto& part :
         SplitWhitespace(entry.data.tree.NameOf(static_cast<int>(n)))) {
      entry.node_keywords[n].push_back(
          entry.data.corpus.vocab().IdOf(part));
    }
  }
  // Leaf-level user keywords (the leaf supervision) augment leaf nodes.
  for (size_t l = 0; l < entry.data.leaf_classes.size(); ++l) {
    const size_t node = static_cast<size_t>(entry.data.leaf_classes[l]);
    for (int32_t id : entry.data.supervision.class_keywords[l]) {
      entry.node_keywords[node].push_back(id);
    }
  }
  // Flat leaf view for the flat baselines.
  datasets::FlatView fine = datasets::FlattenToDepth(
      entry.data, entry.data.tree.MaxDepth());
  entry.leaf_corpus = std::move(fine.corpus);
  entry.leaf_supervision = std::move(fine.supervision);
  entry.leaf_of_label = std::move(fine.node_of_label);
  return entry;
}

}  // namespace

int Main() {
  std::vector<Entry> entries;
  entries.push_back(MakeEntry("NYT", datasets::NytSpec(121)));
  entries.push_back(MakeEntry("arXiv", datasets::ArxivSpec(122)));
  entries.push_back(MakeEntry("Yelp", datasets::YelpHierSpec(123)));

  std::vector<std::string> columns;
  for (const auto& entry : entries) {
    columns.push_back(entry.name + ":KW");
    columns.push_back(entry.name + ":DOCS");
  }
  const std::vector<std::string> rows = {
      "Hier-Dataless", "CNN (flat pseudo)", "WeSTClass (flat)",
      "No-global",     "No-vMF",            "No-self-train",
      "WeSHClass"};

  for (bool macro : {true, false}) {
    bench::Table table(std::string("E8 WeSHClass — leaf ") +
                           (macro ? "Macro-F1" : "Micro-F1"),
                       columns);
    std::vector<std::vector<double>> cells(
        rows.size(), std::vector<double>(columns.size(), -1));

    for (size_t e = 0; e < entries.size(); ++e) {
      Entry& entry = entries[e];
      bench::Progress(entry.name);
      // Gold leaf labels in the dense flat numbering.
      const auto gold = entry.leaf_corpus.GoldLabels();
      const size_t num_leaves = entry.leaf_corpus.num_labels();
      auto score = [&](const std::vector<int>& pred) {
        return macro ? eval::MacroF1(pred, gold, num_leaves)
                     : eval::MicroF1(pred, gold, num_leaves);
      };
      // Tree-node leaf predictions -> dense labels.
      auto densify = [&](const std::vector<int>& leaf_nodes) {
        std::vector<int> dense(leaf_nodes.size(), 0);
        for (size_t d = 0; d < leaf_nodes.size(); ++d) {
          for (size_t l = 0; l < entry.leaf_of_label.size(); ++l) {
            if (entry.leaf_of_label[l] == leaf_nodes[d]) {
              dense[d] = static_cast<int>(l);
              break;
            }
          }
        }
        return dense;
      };

      for (int mode = 0; mode < 2; ++mode) {  // 0 = KEYWORDS, 1 = DOCS
        const size_t column = 2 * e + static_cast<size_t>(mode);
        text::WeakSupervision supervision = entry.leaf_supervision;
        std::vector<std::vector<int32_t>> node_keywords =
            entry.node_keywords;
        if (mode == 1) {
          // DOCS: harvest keywords from 5 labeled docs per leaf.
          supervision.labeled_docs =
              datasets::SampleLabeledDocs(entry.leaf_corpus, 5, 131);
          text::TfIdf tfidf(entry.leaf_corpus);
          for (size_t l = 0; l < supervision.labeled_docs.size(); ++l) {
            const size_t node =
                static_cast<size_t>(entry.leaf_of_label[l]);
            for (size_t d : supervision.labeled_docs[l]) {
              for (int32_t id : tfidf.TopTerms(
                       entry.leaf_corpus.docs()[d].tokens, 8)) {
                node_keywords[node].push_back(id);
              }
            }
          }
        }

        // Hier-Dataless: embedding similarity with node seeds + ancestors.
        {
          std::vector<std::vector<int32_t>> tokens;
          for (const auto& doc : entry.leaf_corpus.docs()) {
            tokens.push_back(doc.tokens);
          }
          embedding::SgnsConfig sgns;
          sgns.epochs = 6;
          sgns.seed = 132;
          const auto embeddings = embedding::WordEmbeddings::Train(
              tokens, entry.leaf_corpus.vocab().size(), sgns);
          std::vector<std::vector<int32_t>> seeds(num_leaves);
          for (size_t l = 0; l < num_leaves; ++l) {
            for (int node : entry.data.tree.WithAncestors(
                     entry.leaf_of_label[l])) {
              const auto& kw = node_keywords[static_cast<size_t>(node)];
              seeds[l].insert(seeds[l].end(), kw.begin(), kw.end());
            }
          }
          cells[0][column] = score(core::EmbeddingSimilarityClassify(
              entry.leaf_corpus, embeddings, seeds));
        }

        const core::Supervision flat_mode =
            mode == 0 ? core::Supervision::kKeywords
                      : core::Supervision::kDocs;
        {
          core::WestClassConfig config;
          config.classifier = "cnn";
          config.enable_self_training = false;
          config.seed = 133;
          core::WestClass method(entry.leaf_corpus, config);
          cells[1][column] = score(method.Run(flat_mode, supervision));
        }
        {
          core::WestClassConfig config;
          config.classifier = "bow";
          config.seed = 134;
          core::WestClass method(entry.leaf_corpus, config);
          cells[2][column] = score(method.Run(flat_mode, supervision));
        }

        auto run_wesh = [&](bool global, bool vmf, bool self_train) {
          core::WeshClassConfig config;
          config.classifier = "bow";
          config.enable_global = global;
          config.enable_vmf = vmf;
          config.enable_self_training = self_train;
          config.seed = 135;
          core::WeshClass method(entry.data.corpus, entry.data.tree,
                                 node_keywords, config);
          return score(densify(core::WeshClass::LeafOf(method.Run())));
        };
        cells[3][column] = run_wesh(false, true, true);   // No-global
        cells[4][column] = run_wesh(true, false, true);   // No-vMF
        cells[5][column] = run_wesh(true, true, false);   // No-self-train
        cells[6][column] = run_wesh(true, true, true);    // full
      }
    }
    for (size_t r = 0; r < rows.size(); ++r) {
      table.AddRow(rows[r], cells[r]);
    }
    table.Print();
  }
  return 0;
}

}  // namespace stm

int main() { return stm::Main(); }
