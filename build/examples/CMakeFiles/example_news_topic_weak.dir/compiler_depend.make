# Empty compiler generated dependencies file for example_news_topic_weak.
# This may be replaced when dependencies are built.
