#include <gtest/gtest.h>

#include <set>

#include "cluster/cluster.h"
#include "common/rng.h"
#include "datasets/specs.h"
#include "graph/hin.h"

namespace stm {
namespace {

// Three well-separated Gaussian blobs in 2-D.
la::Matrix Blobs(std::vector<int>* gold, uint64_t seed) {
  Rng rng(seed);
  const float centers[3][2] = {{0, 0}, {8, 0}, {0, 8}};
  la::Matrix data(150, 2);
  gold->resize(150);
  for (size_t i = 0; i < 150; ++i) {
    const size_t c = i % 3;
    (*gold)[i] = static_cast<int>(c);
    data.At(i, 0) = centers[c][0] + static_cast<float>(rng.Normal(0, 0.5));
    data.At(i, 1) = centers[c][1] + static_cast<float>(rng.Normal(0, 0.5));
  }
  return data;
}

TEST(KMeansTest, RecoversBlobs) {
  std::vector<int> gold;
  la::Matrix data = Blobs(&gold, 1);
  cluster::KMeansOptions options;
  options.k = 3;
  auto result = cluster::KMeans(data, options);
  auto mapping = cluster::AlignClusters(result.assignment, gold, 3);
  size_t correct = 0;
  for (size_t i = 0; i < gold.size(); ++i) {
    correct += mapping[static_cast<size_t>(result.assignment[i])] == gold[i];
  }
  EXPECT_GT(static_cast<double>(correct) / gold.size(), 0.95);
}

TEST(KMeansTest, InertiaDecreasesWithMoreClusters) {
  std::vector<int> gold;
  la::Matrix data = Blobs(&gold, 2);
  cluster::KMeansOptions k1;
  k1.k = 1;
  cluster::KMeansOptions k3;
  k3.k = 3;
  EXPECT_GT(cluster::KMeans(data, k1).inertia,
            cluster::KMeans(data, k3).inertia);
}

TEST(KMeansTest, SphericalHandlesUnnormalizedInput) {
  std::vector<int> gold;
  la::Matrix data = Blobs(&gold, 3);
  // Shift away from origin so directions differ.
  for (size_t i = 0; i < data.rows(); ++i) {
    data.At(i, 0) += 2.0f;
    data.At(i, 1) += 2.0f;
  }
  cluster::KMeansOptions options;
  options.k = 3;
  options.spherical = true;
  auto result = cluster::KMeans(data, options);
  std::set<int> used(result.assignment.begin(), result.assignment.end());
  EXPECT_GE(used.size(), 2u);
}

TEST(KMeansTest, DuplicatePointsSeedDistinctCentroids) {
  // 3 distinct locations, each duplicated 20 times. k-means++ must not
  // seed two centroids on the same location (zero-distance points are
  // excluded from the weighted draw), so the exact solution is found and
  // the inertia is 0 regardless of the seed.
  const float locations[3][2] = {{0, 0}, {5, 0}, {0, 5}};
  la::Matrix data(60, 2);
  for (size_t i = 0; i < 60; ++i) {
    data.At(i, 0) = locations[i % 3][0];
    data.At(i, 1) = locations[i % 3][1];
  }
  for (uint64_t seed = 0; seed < 8; ++seed) {
    cluster::KMeansOptions options;
    options.k = 3;
    options.seed = seed;
    const auto result = cluster::KMeans(data, options);
    EXPECT_EQ(result.inertia, 0.0) << "seed " << seed;
    std::set<int> used(result.assignment.begin(), result.assignment.end());
    EXPECT_EQ(used.size(), 3u) << "seed " << seed;
  }
}

TEST(KMeansTest, MoreClustersThanDistinctPointsTerminates) {
  // k exceeds the number of distinct points: the seeding fallback must
  // still pick k rows (duplicates) without dividing by a zero total.
  la::Matrix data(10, 1);
  for (size_t i = 0; i < 10; ++i) data.At(i, 0) = i < 5 ? 0.0f : 1.0f;
  cluster::KMeansOptions options;
  options.k = 4;
  const auto result = cluster::KMeans(data, options);
  EXPECT_EQ(result.inertia, 0.0);
  EXPECT_EQ(result.centroids.rows(), 4u);
}

TEST(KMeansTest, SameSeedSameResult) {
  std::vector<int> gold;
  la::Matrix data = Blobs(&gold, 6);
  cluster::KMeansOptions options;
  options.k = 5;  // more clusters than blobs -> exercises re-seeding
  const auto a = cluster::KMeans(data, options);
  const auto b = cluster::KMeans(data, options);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.inertia, b.inertia);
  for (size_t i = 0; i < a.centroids.size(); ++i) {
    EXPECT_EQ(a.centroids.data()[i], b.centroids.data()[i]);
  }
}

TEST(SilhouetteTest, StrideKeepsSampleWithinBudget) {
  // Regression: floor division let the sample grow to nearly 2x
  // max_points (n = 1999 -> stride 1 -> 1999 samples). Ceiling division
  // keeps the O(sample^2) pass bounded.
  EXPECT_EQ(cluster::SilhouetteStride(1999, 1000), 2u);
  EXPECT_EQ(cluster::SilhouetteStride(1000, 1000), 1u);
  EXPECT_EQ(cluster::SilhouetteStride(50, 1000), 1u);
  for (size_t n : {1u, 999u, 1000u, 1001u, 1999u, 2000u, 2001u, 5500u}) {
    const size_t stride = cluster::SilhouetteStride(n, 1000);
    size_t samples = 0;
    for (size_t i = 0; i < n; i += stride) ++samples;
    EXPECT_LE(samples, 1000u) << "n = " << n;
    if (n <= 1000) {
      EXPECT_EQ(samples, n);
    }
  }
}

TEST(SilhouetteTest, GoodClusteringScoresHigher) {
  std::vector<int> gold;
  la::Matrix data = Blobs(&gold, 4);
  std::vector<int> bad(gold.size());
  for (size_t i = 0; i < bad.size(); ++i) bad[i] = static_cast<int>(i % 3);
  // `bad` splits each blob across clusters randomly-ish (since points
  // alternate blobs, bad == gold here; rotate instead).
  for (size_t i = 0; i < bad.size(); ++i) {
    bad[i] = (gold[i] + static_cast<int>(i % 2)) % 3;
  }
  EXPECT_GT(cluster::Silhouette(data, gold, 3),
            cluster::Silhouette(data, bad, 3));
}

TEST(GmmTest, PosteriorsSumToOneAndRecoverBlobs) {
  std::vector<int> gold;
  la::Matrix data = Blobs(&gold, 5);
  la::Matrix init(3, 2);
  init.SetRow(0, {0.5f, 0.5f});
  init.SetRow(1, {7.0f, 0.5f});
  init.SetRow(2, {0.5f, 7.0f});
  cluster::GmmOptions options;
  auto result = cluster::GmmFit(data, init, options);
  size_t correct = 0;
  for (size_t i = 0; i < gold.size(); ++i) {
    float sum = 0.0f;
    for (size_t c = 0; c < 3; ++c) sum += result.posteriors.At(i, c);
    EXPECT_NEAR(sum, 1.0f, 1e-4f);
    correct += result.assignment[i] == gold[i];
  }
  EXPECT_GT(static_cast<double>(correct) / gold.size(), 0.95);
}

TEST(AlignClustersTest, PermutedLabelsFullyRecovered) {
  const std::vector<int> gold = {0, 0, 1, 1, 2, 2};
  const std::vector<int> clusters = {2, 2, 0, 0, 1, 1};
  const auto mapping = cluster::AlignClusters(clusters, gold, 3);
  EXPECT_EQ(mapping[2], 0);
  EXPECT_EQ(mapping[0], 1);
  EXPECT_EQ(mapping[1], 2);
}

TEST(HinTest, BuildFromMetadataCorpus) {
  auto data = datasets::Generate(datasets::GithubBioSpec(1));
  graph::HinBuildOptions options;
  graph::Hin hin = graph::BuildHin(data.corpus, options);
  EXPECT_GE(hin.num_nodes(), data.corpus.num_docs());
  // Doc 0 must connect to its user and tags.
  const auto users = hin.NeighborsOfType(0, "user");
  const auto tags = hin.NeighborsOfType(0, "tag");
  EXPECT_EQ(users.size(),
            data.corpus.docs()[0].metadata.at("user").size());
  EXPECT_EQ(tags.size(), data.corpus.docs()[0].metadata.at("tag").size());
}

TEST(HinTest, MetaPathWalksRespectTypes) {
  auto data = datasets::Generate(datasets::GithubBioSpec(2));
  graph::HinBuildOptions options;
  graph::Hin hin = graph::BuildHin(data.corpus, options);
  auto walks = graph::MetaPathWalks(hin, {"doc", "tag", "doc"}, 1, 7, 3);
  ASSERT_FALSE(walks.empty());
  for (const auto& walk : walks) {
    for (size_t i = 0; i < walk.size(); ++i) {
      EXPECT_EQ(hin.TypeOf(walk[i]), i % 2 == 0 ? "doc" : "tag");
    }
  }
}

TEST(HinTest, NodeEmbeddingsGroupSameClassDocs) {
  auto data = datasets::Generate(datasets::GithubSecSpec(3));
  graph::HinBuildOptions options;
  graph::Hin hin = graph::BuildHin(data.corpus, options);
  auto walks = graph::MetaPathWalks(hin, {"doc", "tag", "doc"}, 2, 9, 4);
  graph::NodeEmbeddingConfig config;
  config.epochs = 2;
  la::Matrix emb = graph::TrainNodeEmbeddings(walks, hin.num_nodes(), config);
  double same = 0.0;
  double cross = 0.0;
  size_t same_n = 0;
  size_t cross_n = 0;
  for (size_t i = 0; i < 80; ++i) {
    for (size_t j = i + 1; j < 80; ++j) {
      const float sim = la::Cosine(emb.Row(i), emb.Row(j), emb.cols());
      if (data.corpus.docs()[i].labels[0] ==
          data.corpus.docs()[j].labels[0]) {
        same += sim;
        ++same_n;
      } else {
        cross += sim;
        ++cross_n;
      }
    }
  }
  EXPECT_GT(same / same_n, cross / cross_n);
}

TEST(MinePairsTest, MetapathsYieldMostlySameClassPairs) {
  auto data = datasets::Generate(datasets::MagCsSpec(4));
  for (const char* metapath :
       {"P->P<-P", "P<-(PP)->P", "P-V-P", "P-A-P"}) {
    auto pairs = graph::MinePairs(data.corpus, metapath, 500, 5);
    ASSERT_FALSE(pairs.empty()) << metapath;
    size_t same = 0;
    for (const auto& [a, b] : pairs) {
      same += data.corpus.docs()[a].labels[0] ==
              data.corpus.docs()[b].labels[0];
    }
    EXPECT_GT(static_cast<double>(same) / pairs.size(), 0.5) << metapath;
  }
}

TEST(MinePairsTest, PairsAreDistinctAndCapped) {
  auto data = datasets::Generate(datasets::MagCsSpec(5));
  auto pairs = graph::MinePairs(data.corpus, "P->P<-P", 50, 6);
  EXPECT_LE(pairs.size(), 50u);
  std::set<std::pair<size_t, size_t>> unique(pairs.begin(), pairs.end());
  EXPECT_EQ(unique.size(), pairs.size());
}

}  // namespace
}  // namespace stm
