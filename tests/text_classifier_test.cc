#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "common/rng.h"
#include "nn/text_classifier.h"
#include "text/vocabulary.h"

namespace stm::nn {
namespace {

// Builds a tiny separable task: class 0 docs use ids [5, 15), class 1 docs
// use ids [15, 25), with shared noise ids [25, 30).
struct ToyTask {
  std::vector<std::vector<int32_t>> docs;
  std::vector<int> labels;
  std::vector<float> one_hot;
  size_t vocab_size = 30;
};

ToyTask MakeToyTask(size_t n_per_class, uint64_t seed) {
  Rng rng(seed);
  ToyTask task;
  for (int label = 0; label < 2; ++label) {
    for (size_t i = 0; i < n_per_class; ++i) {
      std::vector<int32_t> doc;
      const int32_t base = label == 0 ? 5 : 15;
      for (int t = 0; t < 12; ++t) {
        if (rng.Bernoulli(0.7)) {
          doc.push_back(base + static_cast<int32_t>(rng.UniformInt(10)));
        } else {
          doc.push_back(25 + static_cast<int32_t>(rng.UniformInt(5)));
        }
      }
      task.docs.push_back(std::move(doc));
      task.labels.push_back(label);
      task.one_hot.push_back(label == 0 ? 1.0f : 0.0f);
      task.one_hot.push_back(label == 1 ? 1.0f : 0.0f);
    }
  }
  return task;
}

double Accuracy(const std::vector<int>& pred, const std::vector<int>& gold) {
  size_t correct = 0;
  for (size_t i = 0; i < pred.size(); ++i) correct += (pred[i] == gold[i]);
  return static_cast<double>(correct) / static_cast<double>(pred.size());
}

class ClassifierKindTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ClassifierKindTest, LearnsSeparableTask) {
  ToyTask task = MakeToyTask(40, 11);
  ClassifierConfig config;
  config.vocab_size = task.vocab_size;
  config.num_classes = 2;
  config.max_len = 16;
  config.embed_dim = 16;
  config.seed = 3;
  auto clf = MakeClassifier(GetParam(), config);
  double last_loss = 1e9;
  for (int epoch = 0; epoch < 12; ++epoch) {
    last_loss = clf->TrainEpoch(task.docs, task.one_hot);
  }
  EXPECT_LT(last_loss, 0.5);
  ToyTask held_out = MakeToyTask(20, 99);
  EXPECT_GE(Accuracy(clf->Predict(held_out.docs), held_out.labels), 0.9);
}

TEST_P(ClassifierKindTest, ProbsAreDistributions) {
  ToyTask task = MakeToyTask(10, 21);
  ClassifierConfig config;
  config.vocab_size = task.vocab_size;
  config.num_classes = 2;
  config.max_len = 16;
  config.embed_dim = 8;
  auto clf = MakeClassifier(GetParam(), config);
  la::Matrix probs = clf->PredictProbs(task.docs);
  ASSERT_EQ(probs.rows(), task.docs.size());
  ASSERT_EQ(probs.cols(), 2u);
  for (size_t i = 0; i < probs.rows(); ++i) {
    EXPECT_NEAR(probs.At(i, 0) + probs.At(i, 1), 1.0f, 1e-4f);
    EXPECT_GE(probs.At(i, 0), 0.0f);
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ClassifierKindTest,
                         ::testing::Values("cnn", "han", "bow"));

TEST(TextCnnTest, HandlesEmptyAndLongDocs) {
  ClassifierConfig config;
  config.vocab_size = 10;
  config.num_classes = 2;
  config.max_len = 8;
  config.embed_dim = 8;
  TextCnnClassifier clf(config);
  std::vector<std::vector<int32_t>> docs = {
      {},                                          // empty
      std::vector<int32_t>(100, 6),                // longer than max_len
  };
  la::Matrix probs = clf.PredictProbs(docs);
  for (size_t i = 0; i < probs.rows(); ++i) {
    EXPECT_FALSE(std::isnan(probs.At(i, 0)));
  }
}

TEST(TextCnnTest, FitTrainsOnHardLabels) {
  ToyTask task = MakeToyTask(30, 31);
  ClassifierConfig config;
  config.vocab_size = task.vocab_size;
  config.num_classes = 2;
  config.max_len = 16;
  config.embed_dim = 16;
  TextCnnClassifier clf(config);
  clf.Fit(task.docs, task.labels, 10);
  EXPECT_GE(Accuracy(clf.Predict(task.docs), task.labels), 0.95);
}

TEST(TextCnnTest, InitWordEmbeddingsAppliesRows) {
  ClassifierConfig config;
  config.vocab_size = 6;
  config.num_classes = 2;
  config.embed_dim = 4;
  config.max_len = 4;
  TextCnnClassifier clf(config);
  std::vector<std::vector<float>> pretrained(6,
                                             std::vector<float>(4, 0.25f));
  clf.InitWordEmbeddings(pretrained);
  // Behavioural check: predictions on identical docs stay identical after
  // the deterministic re-init (no crash, deterministic path).
  la::Matrix p1 = clf.PredictProbs({{5, 5}});
  la::Matrix p2 = clf.PredictProbs({{5, 5}});
  EXPECT_FLOAT_EQ(p1.At(0, 0), p2.At(0, 0));
}

}  // namespace
}  // namespace stm::nn
