#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/self_training.h"
#include "core/westclass.h"
#include "datasets/specs.h"
#include "eval/metrics.h"

namespace stm::core {
namespace {

datasets::SyntheticDataset SmallAgNews(uint64_t seed) {
  datasets::SyntheticSpec spec = datasets::AgNewsSpec(seed);
  spec.num_docs = 320;
  spec.pretrain_docs = 0;
  return datasets::Generate(spec);
}

TEST(SharpenTargetsTest, RowsAreDistributionsAndSharper) {
  la::Matrix probs(2, 2);
  probs.SetRow(0, {0.7f, 0.3f});
  probs.SetRow(1, {0.6f, 0.4f});
  const auto targets = SharpenTargets(probs);
  EXPECT_NEAR(targets[0] + targets[1], 1.0f, 1e-5f);
  EXPECT_NEAR(targets[2] + targets[3], 1.0f, 1e-5f);
  EXPECT_GT(targets[0], 0.7f);  // sharpened toward the dominant class
}

TEST(WestClassTest, LabelsSupervisionBeatsIrBaseline) {
  auto data = SmallAgNews(3);
  WestClassConfig config;
  config.classifier = "bow";
  config.pretrain_epochs = 6;
  config.seed = 7;
  WestClass method(data.corpus, config);
  const auto pred = method.Run(Supervision::kLabels, data.supervision);
  const auto gold = data.corpus.GoldLabels();
  const double west_f1 =
      eval::MicroF1(pred, gold, data.corpus.num_labels());

  // Name-only IR baseline (queries = name token only).
  std::vector<std::vector<int32_t>> name_only;
  for (const auto& seeds : data.supervision.class_keywords) {
    name_only.push_back({seeds[0]});
  }
  const auto ir = IrTfIdfClassify(data.corpus, name_only);
  const double ir_f1 = eval::MicroF1(ir, gold, data.corpus.num_labels());

  EXPECT_GT(west_f1, 0.6);
  EXPECT_GT(west_f1, ir_f1);
}

TEST(WestClassTest, SeedExpansionFindsTopicalWords) {
  auto data = SmallAgNews(4);
  WestClassConfig config;
  config.classifier = "bow";
  config.pretrain_epochs = 2;
  config.self_train.max_iters = 1;
  WestClass method(data.corpus, config);
  method.Run(Supervision::kLabels, data.supervision);
  const auto& expanded = method.expanded_seeds();
  ASSERT_EQ(expanded.size(), 4u);
  for (const auto& seeds : expanded) {
    EXPECT_GE(seeds.size(), 10u);
  }
  // At least half of class 1 ("sports") seeds should be sports-themed.
  size_t sports_like = 0;
  for (int32_t id : expanded[1]) {
    const std::string& token = data.corpus.vocab().TokenOf(id);
    if (token.rfind("sports", 0) == 0 || token == "game" ||
        token == "team" || token == "championship") {
      ++sports_like;
    }
  }
  EXPECT_GE(sports_like * 2, expanded[1].size());
}

TEST(WestClassTest, DocsSupervisionWorks) {
  auto data = SmallAgNews(5);
  auto supervision = data.supervision;
  supervision.labeled_docs =
      datasets::SampleLabeledDocs(data.corpus, 5, 11);
  WestClassConfig config;
  config.classifier = "bow";
  config.pretrain_epochs = 6;
  WestClass method(data.corpus, config);
  const auto pred = method.Run(Supervision::kDocs, supervision);
  const double f1 = eval::MicroF1(pred, data.corpus.GoldLabels(),
                                  data.corpus.num_labels());
  EXPECT_GT(f1, 0.6);
}

TEST(WestClassTest, SelfTrainingHelps) {
  auto data = SmallAgNews(6);
  WestClassConfig with;
  with.classifier = "bow";
  with.pretrain_epochs = 4;
  with.seed = 13;
  WestClassConfig without = with;
  without.enable_self_training = false;
  const auto gold = data.corpus.GoldLabels();
  WestClass m1(data.corpus, with);
  WestClass m2(data.corpus, without);
  const double f1_with = eval::MicroF1(
      m1.Run(Supervision::kKeywords, data.supervision), gold, 4);
  const double f1_without = eval::MicroF1(
      m2.Run(Supervision::kKeywords, data.supervision), gold, 4);
  // Self-training should not hurt; usually it helps on this corpus.
  EXPECT_GE(f1_with + 0.02, f1_without);
}

TEST(BaselinesTest, IrTfIdfAboveChanceWithKeywords) {
  auto data = SmallAgNews(7);
  const auto pred =
      IrTfIdfClassify(data.corpus, data.supervision.class_keywords);
  EXPECT_GT(eval::Accuracy(pred, data.corpus.GoldLabels()), 0.4);
}

TEST(BaselinesTest, LdaClassifyAboveChance) {
  auto data = SmallAgNews(8);
  LdaConfig config;
  config.iterations = 30;
  const auto pred =
      LdaClassify(data.corpus, data.supervision.class_keywords, config);
  EXPECT_GT(eval::Accuracy(pred, data.corpus.GoldLabels()), 0.4);
}

TEST(BaselinesTest, SupervisedBoundIsStrong) {
  auto data = SmallAgNews(9);
  std::vector<size_t> train;
  for (size_t d = 0; d < data.corpus.num_docs(); d += 2) train.push_back(d);
  const auto pred = SupervisedBound(data.corpus, train, "bow", 12, 3);
  EXPECT_GT(eval::Accuracy(pred, data.corpus.GoldLabels()), 0.85);
}

TEST(BaselinesTest, EmbeddingSimilarityUsesSeeds) {
  auto data = SmallAgNews(10);
  std::vector<std::vector<int32_t>> docs;
  for (const auto& doc : data.corpus.docs()) docs.push_back(doc.tokens);
  embedding::SgnsConfig sgns;
  sgns.epochs = 4;
  auto emb = embedding::WordEmbeddings::Train(
      docs, data.corpus.vocab().size(), sgns);
  const auto pred = EmbeddingSimilarityClassify(
      data.corpus, emb, data.supervision.class_keywords);
  EXPECT_GT(eval::Accuracy(pred, data.corpus.GoldLabels()), 0.5);
}

}  // namespace
}  // namespace stm::core
