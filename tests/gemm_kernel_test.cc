// Packed GEMM kernel library (la/gemm_kernels.h): the blocked,
// register-tiled kernels must agree with the serial scalar reference on
// every shape class (full tiles, ragged edges, degenerate dims) up to
// float reassociation, and must be bit-identical to themselves across
// thread counts — the packed path reassociates differently from the
// reference, so cross-kernel checks use a tolerance while cross-thread
// checks are exact.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "la/gemm_kernels.h"
#include "la/matrix.h"
#include "la/workspace.h"

namespace stm::la {
namespace {

constexpr size_t kDims[] = {1, 3, 7, 8, 9, 17, 64, 65};

class GemmKernelTest : public ::testing::Test {
 protected:
  void TearDown() override {
    ThreadPool::Reset(ThreadPool::ConfiguredThreads());
  }
};

std::vector<float> RandomVec(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.Uniform() * 2.0 - 1.0);
  return v;
}

// Absolute-plus-relative bound scaled by the k reductions feeding each
// output element.
void ExpectClose(const std::vector<float>& want,
                 const std::vector<float>& got, size_t k) {
  ASSERT_EQ(want.size(), got.size());
  const float tol = 1e-6f * static_cast<float>(k + 1);
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_NEAR(want[i], got[i], tol + tol * std::fabs(want[i]))
        << "element " << i;
  }
}

void ExpectSame(const std::vector<float>& want,
                const std::vector<float>& got) {
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(want[i], got[i]) << "element " << i;
  }
}

TEST_F(GemmKernelTest, PackedMatchesReferenceOverShapeSweep) {
  for (size_t m : kDims) {
    for (size_t k : kDims) {
      for (size_t n : kDims) {
        const std::vector<float> a = RandomVec(m * k, 1 + m * 131 + k);
        const std::vector<float> b = RandomVec(k * n, 2 + k * 131 + n);
        const std::vector<float> c0 = RandomVec(m * n, 3 + m * 131 + n);

        // Plain A (m x k) times B (k x n).
        std::vector<float> want = c0;
        ReferenceGemmAcc(a.data(), b.data(), want.data(), m, k, n);
        std::vector<float> got = c0;
        PackedGemmAcc(a.data(), k, 1, b.data(), n, 1, got.data(), m, k, n);
        ExpectClose(want, got, k);

        // B^T operand: b holds an n x k matrix read with strides (1, k).
        const std::vector<float> bt = RandomVec(n * k, 4 + k * 131 + n);
        want = c0;
        ReferenceGemmBtAcc(a.data(), bt.data(), want.data(), m, k, n);
        got = c0;
        PackedGemmAcc(a.data(), k, 1, bt.data(), 1, k, got.data(), m, k, n);
        ExpectClose(want, got, k);

        // A^T operand: a holds a k x m matrix read with strides (1, m).
        const std::vector<float> at = RandomVec(k * m, 5 + m * 131 + k);
        want = c0;
        ReferenceGemmAtAcc(at.data(), b.data(), want.data(), m, k, n);
        got = c0;
        PackedGemmAcc(at.data(), 1, m, b.data(), n, 1, got.data(), m, k, n);
        ExpectClose(want, got, k);
      }
    }
  }
}

TEST_F(GemmKernelTest, AccumulateAddsOntoExistingOutput) {
  // 32^3 = 32768 ops reaches the packed path through the Gemm wrappers.
  const size_t d = 32;
  ASSERT_TRUE(UsePackedGemm(d, d, d));
  Rng rng(99);
  Matrix a(d, d), b(d, d);
  for (size_t i = 0; i < a.size(); ++i) {
    a.data()[i] = static_cast<float>(rng.Uniform() * 2.0 - 1.0);
    b.data()[i] = static_cast<float>(rng.Uniform() * 2.0 - 1.0);
  }
  Matrix once, twice;
  Gemm(a, b, once, /*accumulate=*/false);
  Gemm(a, b, twice, /*accumulate=*/false);
  Gemm(a, b, twice, /*accumulate=*/true);
  for (size_t i = 0; i < once.size(); ++i) {
    ASSERT_EQ(twice.data()[i], 2.0f * once.data()[i]) << "element " << i;
  }
  // Overwrite mode really overwrites: a third non-accumulating call on
  // the dirty output reproduces the first result exactly.
  Gemm(a, b, twice, /*accumulate=*/false);
  for (size_t i = 0; i < once.size(); ++i) {
    ASSERT_EQ(twice.data()[i], once.data()[i]) << "element " << i;
  }
}

TEST_F(GemmKernelTest, BitIdenticalAcrossThreadCounts) {
  // Ragged shape: exercises partial micro-tiles and multiple row chunks.
  const size_t m = 45, k = 64, n = 70;
  const std::vector<float> a = RandomVec(m * k, 11);
  const std::vector<float> b = RandomVec(k * n, 12);
  const std::vector<float> at = RandomVec(k * m, 13);
  const std::vector<float> bt = RandomVec(n * k, 14);

  auto run_all = [&]() {
    std::vector<std::vector<float>> out(3,
                                        std::vector<float>(m * n, 0.0f));
    PackedGemmAcc(a.data(), k, 1, b.data(), n, 1, out[0].data(), m, k, n);
    PackedGemmAcc(a.data(), k, 1, bt.data(), 1, k, out[1].data(), m, k, n);
    PackedGemmAcc(at.data(), 1, m, b.data(), n, 1, out[2].data(), m, k, n);
    return out;
  };

  ThreadPool::Reset(1);
  const std::vector<std::vector<float>> base = run_all();
  for (size_t threads : {size_t{2}, size_t{8}}) {
    ThreadPool::Reset(threads);
    const std::vector<std::vector<float>> got = run_all();
    for (size_t v = 0; v < base.size(); ++v) ExpectSame(base[v], got[v]);
  }
}

TEST_F(GemmKernelTest, DegenerateDimsAreNoOps) {
  std::vector<float> c(6, 42.0f);
  const std::vector<float> a = RandomVec(12, 7);
  PackedGemmAcc(a.data(), 2, 1, a.data(), 3, 1, c.data(), 0, 2, 3);
  PackedGemmAcc(a.data(), 0, 1, a.data(), 3, 1, c.data(), 2, 0, 3);
  for (float v : c) EXPECT_EQ(v, 42.0f);
}

TEST_F(GemmKernelTest, KernelIsaIsStable) {
  const char* isa = GemmKernelIsa();
  ASSERT_NE(isa, nullptr);
  // Repeated queries (and queries after pool resets) never change the
  // selected kernel — the dispatch is per-process, not per-thread.
  ThreadPool::Reset(2);
  EXPECT_STREQ(isa, GemmKernelIsa());
}

TEST_F(GemmKernelTest, WorkspaceRecyclesBuffers) {
  Workspace* ws = Workspace::ThreadLocalOrNull();
  ASSERT_NE(ws, nullptr);
  ws->Clear();
  std::vector<float> buf = ws->Acquire(1024);
  EXPECT_EQ(buf.size(), 1024u);
  const float* p = buf.data();
  ws->Release(std::move(buf));
  EXPECT_EQ(ws->cached_buffers(), 1u);
  std::vector<float> again = ws->Acquire(512);
  EXPECT_EQ(again.data(), p);  // best fit reuses the released buffer
  EXPECT_EQ(ws->cached_buffers(), 0u);
  ws->Release(std::move(again));
  ws->Clear();
  EXPECT_EQ(ws->cached_floats(), 0u);
}

}  // namespace
}  // namespace stm::la
