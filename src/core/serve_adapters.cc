#include "core/serve_adapters.h"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <utility>

#include "common/check.h"
#include "index/ann.h"
#include "text/vocabulary.h"

namespace stm::core {

// ---------------- PooledCosineServable ----------------

PooledCosineServable::PooledCosineServable(std::string name,
                                           la::Matrix class_reps)
    : name_(std::move(name)), class_reps_(std::move(class_reps)) {
  STM_CHECK_GT(class_reps_.rows(), 0u);
  // Normalize the class side exactly once, here. Per-request work is then
  // one normalize of the pooled vector plus one GEMV — the same float
  // operations, in the same order, as ann::TopKSimilar's batch panels, so
  // served scores stay bit-identical to the batch path.
  la::NormalizeRows(class_reps_);
}

serve::Prediction PooledCosineServable::Classify(
    const std::vector<int32_t>& ids, const float* pooled,
    const la::Matrix* hidden) const {
  (void)ids;
  (void)hidden;
  // Invariant violations inside a Classify hook throw instead of
  // STM_CHECK-aborting: the server's promise machinery converts the
  // exception into a kUnavailable for THIS request (see serve.h), so a
  // wiring bug costs one answer, not the process.
  if (pooled == nullptr) {
    throw std::logic_error(name_ + ": pooled input missing");
  }
  const size_t dim = class_reps_.cols();
  serve::Prediction prediction;
  prediction.scores.resize(class_reps_.rows());
  std::vector<float> query(pooled, pooled + dim);
  la::NormalizeInPlace(query.data(), dim);
  ann::ScoreNormalized(query.data(), class_reps_, prediction.scores.data());
  // Strict > keeps the first of tied classes (the retrieval tie contract),
  // and -2.0f is below any similarity.
  float best = -2.0f;
  prediction.label = 0;
  for (size_t c = 0; c < class_reps_.rows(); ++c) {
    if (prediction.scores[c] > best) {
      best = prediction.scores[c];
      prediction.label = static_cast<int>(c);
    }
  }
  return prediction;
}

std::shared_ptr<PooledCosineServable> MakePlmSimpleMatchServable(
    plm::MiniLm* model,
    const std::vector<std::vector<int32_t>>& class_name_tokens) {
  STM_CHECK(model != nullptr);
  return std::make_shared<PooledCosineServable>(
      "plm-simple-match", model->PoolBatch(class_name_tokens));
}

// ---------------- TextClassifierServable ----------------

TextClassifierServable::TextClassifierServable(
    std::string name, std::shared_ptr<nn::TextClassifier> classifier,
    size_t num_classes)
    : name_(std::move(name)),
      classifier_(std::move(classifier)),
      num_classes_(num_classes) {
  STM_CHECK(classifier_ != nullptr);
  STM_CHECK_GT(num_classes_, 0u);
}

serve::Prediction TextClassifierServable::Classify(
    const std::vector<int32_t>& ids, const float* pooled,
    const la::Matrix* hidden) const {
  (void)pooled;
  (void)hidden;
  const la::Matrix probs = classifier_->PredictProbs({ids});
  if (probs.cols() != num_classes_) {
    throw std::logic_error(name_ + ": classifier produced " +
                           std::to_string(probs.cols()) +
                           " classes, expected " +
                           std::to_string(num_classes_));
  }
  const float* row = probs.Row(0);
  serve::Prediction prediction;
  prediction.scores.assign(row, row + num_classes_);
  // max_element, as in TextClassifier::Predict: first of tied maxima.
  prediction.label =
      static_cast<int>(std::max_element(row, row + num_classes_) - row);
  return prediction;
}

// ---------------- TaxoClassServable ----------------

TaxoClassServable::TaxoClassServable(
    std::string name, std::shared_ptr<nn::FeatureMlpClassifier> classifier,
    const taxonomy::LabelTree* tree, size_t vocab_size,
    float predict_threshold)
    : name_(std::move(name)),
      classifier_(std::move(classifier)),
      tree_(tree),
      vocab_size_(vocab_size),
      predict_threshold_(predict_threshold) {
  STM_CHECK(classifier_ != nullptr);
  STM_CHECK(tree_ != nullptr);
  STM_CHECK_GT(vocab_size_, 0u);
  STM_CHECK(!tree_->Leaves().empty());
}

serve::Prediction TaxoClassServable::Classify(
    const std::vector<int32_t>& ids, const float* pooled,
    const la::Matrix* hidden) const {
  (void)pooled;
  (void)hidden;
  // L1-normalized bag-of-words row, exactly as TaxoClass::Run builds its
  // feature matrix (special tokens skipped). Ids outside the classifier's
  // vocabulary are skipped too: the batch path never sees them (corpus
  // ids are in range by construction), so skipping preserves identity on
  // every input the batch path can produce.
  la::Matrix features(1, vocab_size_);
  float* row = features.Row(0);
  float total = 0.0f;
  for (int32_t id : ids) {
    if (id < text::kNumSpecialTokens) continue;
    if (static_cast<size_t>(id) >= vocab_size_) continue;
    row[id] += 1.0f;
    total += 1.0f;
  }
  if (total > 0.0f) {
    for (size_t j = 0; j < vocab_size_; ++j) row[j] /= total;
  }

  const la::Matrix probs = classifier_->PredictProbs(features);
  const size_t num_nodes = tree_->size();
  if (probs.cols() != num_nodes) {
    throw std::logic_error(name_ + ": classifier produced " +
                           std::to_string(probs.cols()) +
                           " node scores, expected " +
                           std::to_string(num_nodes));
  }
  const float* p = probs.Row(0);
  serve::Prediction prediction;
  prediction.scores.assign(p, p + num_nodes);

  // The leaf-decision block from TaxoClass::Run, verbatim.
  float best_leaf_prob = 0.0f;
  int best_leaf = tree_->Leaves()[0];
  for (int leaf : tree_->Leaves()) {
    const float prob = p[static_cast<size_t>(leaf)];
    if (prob > best_leaf_prob) {
      best_leaf_prob = prob;
      best_leaf = leaf;
    }
  }
  std::set<int> predicted;
  for (int leaf : tree_->Leaves()) {
    const float prob = p[static_cast<size_t>(leaf)];
    if (prob > predict_threshold_ && prob > 0.45f * best_leaf_prob) {
      for (int anc : tree_->WithAncestors(leaf)) predicted.insert(anc);
    }
  }
  if (predicted.empty()) {
    for (int anc : tree_->WithAncestors(best_leaf)) predicted.insert(anc);
  }
  prediction.label = best_leaf;
  prediction.labels.assign(predicted.begin(), predicted.end());
  return prediction;
}

}  // namespace stm::core
