#ifndef STM_COMMON_THREAD_POOL_H_
#define STM_COMMON_THREAD_POOL_H_

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace stm {

// Shared worker pool behind the ParallelFor / ParallelReduce primitives
// below. The pool is lazily created on first use and sized by the
// STM_NUM_THREADS environment variable (unset or 0 -> hardware
// concurrency; 1 -> everything runs inline on the calling thread).
//
// Determinism contract (see DESIGN.md, "Threading model"):
//  * the chunk decomposition of a range depends only on
//    (begin, end, grain), never on the thread count;
//  * chunks either write to disjoint state or are reduced in chunk-index
//    order (ParallelReduce);
//  * workers never share an Rng.
// Under this contract every parallel region produces bit-identical output
// for any STM_NUM_THREADS value, including the forced-serial value 1.
class ThreadPool {
 public:
  // Spawns `threads - 1` workers; the calling thread participates in every
  // region, so `threads == 1` (or 0) means fully inline execution.
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total thread count of the pool (workers + the calling thread).
  size_t threads() const { return workers_.size() + 1; }

  // The process-wide pool, created on first use with ConfiguredThreads().
  static ThreadPool& Global();

  // Destroys and re-creates the global pool with `threads` total threads
  // (testing hook; must not be called while a parallel region is active).
  static void Reset(size_t threads);

  // True when called from inside a pool worker. Nested parallel regions
  // are rejected from the queue and run inline on the worker instead, so
  // nesting can never deadlock or change results.
  static bool InWorker();

  // Thread count implied by STM_NUM_THREADS (see class comment).
  static size_t ConfiguredThreads();

  // Runs task(0) .. task(count - 1), distributing indices over the
  // workers and the calling thread, and blocks until all of them have
  // finished. Called from a worker, runs everything inline. The first
  // exception thrown by any index is rethrown on the calling thread
  // (after all indices have been drained).
  void Run(size_t count, const std::function<void(size_t)>& task);

 private:
  struct Region;

  void WorkerLoop();
  static void DrainRegion(Region& region);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::vector<std::shared_ptr<Region>> regions_;  // active, FIFO
  bool stop_ = false;
};

// Items per chunk targeting ~64k operations per chunk given the cost of
// one item, so small workloads stay on the serial path and large ones
// split finely enough to balance. Depends only on the per-item cost —
// never on the thread count — which keeps the chunk decomposition (and
// thus every float written under the determinism contract) stable across
// STM_NUM_THREADS values. Shared by the la:: row-blocked kernels and the
// nn:: batched matmuls.
inline size_t GrainForOps(size_t ops_per_item) {
  constexpr size_t kTargetOps = size_t{1} << 16;
  if (ops_per_item == 0) return 1;
  return std::max<size_t>(1, kTargetOps / ops_per_item);
}

// Number of chunks ParallelFor splits [begin, end) into: ceil(n / grain).
size_t ParallelChunkCount(size_t begin, size_t end, size_t grain);

// Calls fn(chunk_begin, chunk_end) for consecutive chunks of at most
// `grain` indices covering [begin, end), possibly concurrently. Empty
// ranges are a no-op. The chunk boundaries depend only on the arguments,
// so any state written per-index or per-chunk is thread-count-invariant.
void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn);

// As ParallelFor but also passes the chunk index (chunks are numbered in
// range order); the building block for chunk-ordered reductions.
void ParallelForChunks(
    size_t begin, size_t end, size_t grain,
    const std::function<void(size_t, size_t, size_t)>& fn);

// Chunk-ordered parallel reduction: `chunk(b, e)` folds one chunk
// serially and returns its partial; partials are then combined
// left-to-right in chunk-index order. Because both the chunking and the
// combine order are fixed, the result is bit-identical for any thread
// count (float addition is reassociated relative to a plain serial loop,
// but always reassociated the same way).
template <typename T, typename ChunkFn, typename CombineFn>
T ParallelReduce(size_t begin, size_t end, size_t grain, T identity,
                 ChunkFn chunk, CombineFn combine) {
  const size_t chunks = ParallelChunkCount(begin, end, grain);
  if (chunks == 0) return identity;
  std::vector<T> partials(chunks, identity);
  ParallelForChunks(begin, end, grain,
                    [&](size_t index, size_t b, size_t e) {
                      partials[index] = chunk(b, e);
                    });
  T acc = std::move(identity);
  for (size_t i = 0; i < chunks; ++i) {
    acc = combine(std::move(acc), std::move(partials[i]));
  }
  return acc;
}

}  // namespace stm

#endif  // STM_COMMON_THREAD_POOL_H_
