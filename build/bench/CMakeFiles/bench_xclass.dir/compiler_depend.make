# Empty compiler generated dependencies file for bench_xclass.
# This may be replaced when dependencies are built.
