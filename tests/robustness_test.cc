#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "common/rng.h"
#include "core/self_training.h"
#include "embedding/vmf.h"
#include "eval/metrics.h"
#include "nn/text_classifier.h"
#include "taxonomy/taxonomy.h"
#include "text/tfidf.h"

namespace stm {
namespace {

TEST(RobustnessTest, KMeansMoreClustersThanPoints) {
  la::Matrix data(2, 3);
  data.SetRow(0, {1.0f, 0.0f, 0.0f});
  data.SetRow(1, {0.0f, 1.0f, 0.0f});
  cluster::KMeansOptions options;
  options.k = 5;  // clamped to n
  const auto result = cluster::KMeans(data, options);
  EXPECT_EQ(result.assignment.size(), 2u);
  EXPECT_LE(result.centroids.rows(), 2u);
}

TEST(RobustnessTest, KMeansIdenticalPoints) {
  la::Matrix data(6, 2, 1.0f);  // all identical
  cluster::KMeansOptions options;
  options.k = 2;
  const auto result = cluster::KMeans(data, options);
  // Must terminate and assign every point.
  EXPECT_EQ(result.assignment.size(), 6u);
  EXPECT_NEAR(result.inertia, 0.0, 1e-6);
}

TEST(RobustnessTest, GmmSinglePointPerCluster) {
  la::Matrix data(2, 2);
  data.SetRow(0, {0.0f, 0.0f});
  data.SetRow(1, {10.0f, 10.0f});
  la::Matrix init = data;
  cluster::GmmOptions options;
  const auto result = cluster::GmmFit(data, init, options);
  EXPECT_EQ(result.assignment[0], 0);
  EXPECT_EQ(result.assignment[1], 1);
  for (float v : result.variances) EXPECT_GE(v, options.min_variance);
}

TEST(RobustnessTest, VmfSingleSeedUsesFallbackKappa) {
  std::vector<std::vector<float>> units = {{0.0f, 1.0f, 0.0f}};
  const auto vmf = embedding::VonMisesFisher::Fit(units, 77.0f);
  EXPECT_FLOAT_EQ(vmf.kappa(), 77.0f);
  Rng rng(1);
  const auto sample = vmf.Sample(rng);
  EXPECT_NEAR(la::Norm(sample.data(), sample.size()), 1.0f, 1e-4f);
}

TEST(RobustnessTest, TfIdfEmptyDocument) {
  text::Corpus corpus;
  text::Document doc;
  doc.tokens = {corpus.vocab().AddToken("word")};
  doc.labels = {0};
  corpus.label_names() = {"a"};
  corpus.docs().push_back(doc);
  text::TfIdf tfidf(corpus);
  const auto vec = tfidf.Transform({});
  EXPECT_EQ(vec.size(), 0u);
  EXPECT_FLOAT_EQ(text::SparseCosine(vec, vec), 0.0f);
}

TEST(RobustnessTest, ClassifierSingleDocumentFit) {
  nn::ClassifierConfig config;
  config.vocab_size = 10;
  config.num_classes = 2;
  config.max_len = 4;
  config.embed_dim = 4;
  nn::TextCnnClassifier clf(config);
  clf.Fit({{5, 6}}, {1}, 3);
  const auto pred = clf.Predict({{5, 6}});
  EXPECT_EQ(pred.size(), 1u);
}

TEST(RobustnessTest, SelfTrainOnUniformClassifierTerminates) {
  nn::ClassifierConfig config;
  config.vocab_size = 12;
  config.num_classes = 3;
  nn::BowLogRegClassifier clf(config);
  std::vector<std::vector<int32_t>> docs(10, std::vector<int32_t>{6, 7});
  core::SelfTrainConfig st;
  st.max_iters = 3;
  const auto pred = core::SelfTrain(clf, docs, st);
  EXPECT_EQ(pred.size(), 10u);
}

TEST(RobustnessTest, LabelTreeSingleNode) {
  taxonomy::LabelTree tree;
  const int root = tree.AddNode("only", -1);
  EXPECT_TRUE(tree.IsLeaf(root));
  EXPECT_EQ(tree.MaxDepth(), 0);
  EXPECT_EQ(tree.PathTo(root), (std::vector<int>{root}));
  EXPECT_EQ(tree.ClosureOf({root}), (std::vector<int>{root}));
}

TEST(RobustnessTest, MetricsHandleSingleClass) {
  const std::vector<int> pred = {0, 0, 0};
  EXPECT_DOUBLE_EQ(eval::MicroF1(pred, pred, 1), 1.0);
  EXPECT_DOUBLE_EQ(eval::MacroF1(pred, pred, 1), 1.0);
}

TEST(RobustnessTest, AliasSamplerSingleOutcome) {
  AliasSampler sampler(std::vector<double>{3.0});
  Rng rng(2);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(sampler.Sample(rng), 0u);
}

}  // namespace
}  // namespace stm
