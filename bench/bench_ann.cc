// ANN retrieval bench: exhaustive scalar scan vs the brute-force GEMM
// tier vs the LSH tier at corpus scale (N = 100k docs), plus index build
// time and exact-vs-LSH recall@10. With STM_BENCH_JSON=<path>, the QPS
// numbers, speedup ratios, recall and build time are recorded for
// scripted before/after comparison (bench/run_benches.sh commits the
// single-thread numbers as BENCH_ann.json).
//
//   ./bench_ann            full sweep (respects STM_NUM_THREADS)
//   ./bench_ann --smoke    fast correctness pass used by ctest; exits
//                          non-zero if the brute tier's ranking is not
//                          identical to the scalar scan at several thread
//                          counts, or LSH recall falls below its floor,
//                          or the STMA artifact does not round-trip

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/env.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "index/ann.h"
#include "la/matrix.h"

namespace stm {
namespace {

// Clustered corpus embeddings: `clusters` gaussian centers plus noise,
// the structure X-Class / TaxoClass document representations actually
// have (documents concentrate around their class).
la::Matrix ClusteredMatrix(size_t rows, size_t cols, size_t clusters,
                           uint64_t seed) {
  Rng rng(seed);
  la::Matrix centers(clusters, cols);
  for (size_t i = 0; i < centers.size(); ++i) {
    centers.data()[i] = static_cast<float>(rng.Normal());
  }
  la::Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    const float* center = centers.Row(r % clusters);
    float* row = m.Row(r);
    for (size_t c = 0; c < cols; ++c) {
      row[c] = center[c] + 0.15f * static_cast<float>(rng.Normal());
    }
  }
  return m;
}

// The replaced hot loop: per-pair la::Cosine over the whole base plus a
// partial_sort, exactly what taxoclass/xclass/micol/sgns used to run.
std::vector<std::vector<uint32_t>> ScalarScanTopK(const la::Matrix& queries,
                                                  const la::Matrix& base,
                                                  size_t k) {
  std::vector<std::vector<uint32_t>> results(queries.rows());
  ParallelFor(0, queries.rows(), 1, [&](size_t q_begin, size_t q_end) {
    for (size_t q = q_begin; q < q_end; ++q) {
      std::vector<std::pair<float, uint32_t>> scored;
      scored.reserve(base.rows());
      for (size_t r = 0; r < base.rows(); ++r) {
        scored.emplace_back(
            la::Cosine(queries.Row(q), base.Row(r), base.cols()),
            static_cast<uint32_t>(r));
      }
      const size_t keep = std::min(k, scored.size());
      std::partial_sort(
          scored.begin(), scored.begin() + static_cast<std::ptrdiff_t>(keep),
          scored.end(), [](const auto& a, const auto& b) {
            return a.first > b.first ||
                   (a.first == b.first && a.second < b.second);
          });
      results[q].reserve(keep);
      for (size_t i = 0; i < keep; ++i) {
        results[q].push_back(scored[i].second);
      }
    }
  });
  return results;
}

double RecallAtK(const std::vector<std::vector<ann::Neighbor>>& exact,
                 const std::vector<std::vector<ann::Neighbor>>& approx) {
  size_t hits = 0;
  size_t total = 0;
  for (size_t q = 0; q < exact.size(); ++q) {
    total += exact[q].size();
    for (const ann::Neighbor& n : approx[q]) {
      for (const ann::Neighbor& e : exact[q]) {
        if (n.id == e.id) {
          ++hits;
          break;
        }
      }
    }
  }
  return total == 0 ? 1.0
                    : static_cast<double>(hits) / static_cast<double>(total);
}

int RunSmoke() {
  int failures = 0;
  const size_t kDim = 32;
  const la::Matrix base = ClusteredMatrix(3000, kDim, 20, /*seed=*/1);
  const la::Matrix queries = ClusteredMatrix(64, kDim, 20, /*seed=*/1);
  const size_t k = 10;

  // 1. Brute tier ranking == scalar scan ranking, at several pool sizes.
  const std::vector<std::vector<uint32_t>> scalar =
      ScalarScanTopK(queries, base, k);
  for (const size_t threads : {1, 2, 4}) {
    ThreadPool::Reset(threads);
    const std::vector<std::vector<ann::Neighbor>> brute =
        ann::TopKSimilar(queries, base, k);
    for (size_t q = 0; q < queries.rows(); ++q) {
      for (size_t i = 0; i < k; ++i) {
        if (brute[q][i].id != scalar[q][i]) {
          std::fprintf(stderr,
                       "FAIL: threads=%zu query %zu rank %zu: brute id %u "
                       "!= scalar id %u\n",
                       threads, q, i, brute[q][i].id, scalar[q][i]);
          ++failures;
        }
      }
    }
  }
  ThreadPool::Reset(0);

  // 2. LSH recall floor on the clustered corpus.
  ann::IndexOptions options;
  options.mode = ann::AnnMode::kLsh;
  options.bits = 256;
  options.rerank = 200;
  const ann::Index index = ann::Index::Build(base, options);
  const double recall = RecallAtK(ann::TopKSimilar(queries, base, k),
                                  index.TopK(queries, k));
  if (recall < 0.95) {
    std::fprintf(stderr, "FAIL: LSH recall@10 %.3f < 0.95\n", recall);
    ++failures;
  }

  // 3. STMA round-trip serves identical results.
  const std::string path = bench::CacheDir() + "/bench_ann_smoke.stma";
  if (!index.Save(Env::Default(), path).ok()) {
    std::fprintf(stderr, "FAIL: STMA save failed\n");
    ++failures;
  } else {
    StatusOr<ann::Index> loaded = ann::Index::Load(Env::Default(), path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "FAIL: STMA load failed: %s\n",
                   loaded.status().ToString().c_str());
      ++failures;
    } else {
      const auto want = index.TopK(queries, k);
      const auto got = loaded->TopK(queries, k);
      for (size_t q = 0; q < want.size(); ++q) {
        for (size_t i = 0; i < want[q].size(); ++i) {
          if (got[q][i].id != want[q][i].id ||
              std::memcmp(&got[q][i].score, &want[q][i].score,
                          sizeof(float)) != 0) {
            std::fprintf(stderr,
                         "FAIL: STMA round-trip mismatch at query %zu rank "
                         "%zu\n",
                         q, i);
            ++failures;
          }
        }
      }
    }
  }

  if (failures == 0) std::printf("bench_ann --smoke: all checks passed\n");
  return failures == 0 ? 0 : 1;
}

int RunFull() {
  const size_t kDocs = 100000;
  const size_t kDim = 64;
  const size_t kQueries = 500;
  const size_t kK = 10;
  bench::Progress("generating 100k clustered doc embeddings");
  const la::Matrix base = ClusteredMatrix(kDocs, kDim, 200, /*seed=*/7);
  const la::Matrix queries = ClusteredMatrix(kQueries, kDim, 200,
                                             /*seed=*/7);

  bench::Progress("scalar exhaustive scan");
  double scalar_seconds = 0.0;
  {
    WallTimer timer;
    const std::vector<std::vector<uint32_t>> scalar =
        ScalarScanTopK(queries, base, kK);
    scalar_seconds = timer.Seconds();
    if (scalar.size() != kQueries) return 1;
  }

  bench::Progress("brute-force GEMM tier");
  double brute_seconds = 0.0;
  std::vector<std::vector<ann::Neighbor>> exact;
  {
    WallTimer timer;
    exact = ann::TopKSimilar(queries, base, kK);
    brute_seconds = timer.Seconds();
  }

  bench::Progress("LSH tier (build + query)");
  ann::IndexOptions options;
  options.mode = ann::AnnMode::kLsh;
  options.bits = 128;
  options.rerank = 512;
  WallTimer build_timer;
  const ann::Index index = ann::Index::Build(base, options);
  const double build_seconds = build_timer.Seconds();
  double lsh_seconds = 0.0;
  std::vector<std::vector<ann::Neighbor>> approx;
  {
    WallTimer timer;
    approx = index.TopK(queries, kK);
    lsh_seconds = timer.Seconds();
  }
  const double recall = RecallAtK(exact, approx);

  const double nq = static_cast<double>(kQueries);
  const double scalar_qps = nq / scalar_seconds;
  const double brute_qps = nq / brute_seconds;
  const double lsh_qps = nq / lsh_seconds;

  bench::Table table("ANN top-10 retrieval, N=100k docs, dim=64",
                     {"QPS", "speedup", "recall@10"});
  table.AddRow("scalar_scan", {scalar_qps, 1.0, 1.0});
  table.AddRow("brute_gemm", {brute_qps, brute_qps / scalar_qps, 1.0});
  table.AddRow("lsh", {lsh_qps, lsh_qps / scalar_qps, recall});
  table.AddSeparator();
  table.AddRow("lsh_build_seconds", {build_seconds});
  table.Print();

  auto& json = bench::BenchJsonWriter::Instance();
  json.Record("ann", "scalar_scan_qps", scalar_qps);
  json.Record("ann", "brute_gemm_qps", brute_qps);
  json.Record("ann", "lsh_qps", lsh_qps);
  json.Record("ann", "brute_speedup_x", brute_qps / scalar_qps);
  json.Record("ann", "lsh_speedup_x", lsh_qps / scalar_qps);
  json.Record("ann", "lsh_recall_at10", recall);
  json.Record("ann", "lsh_build_seconds", build_seconds);
  json.Record("ann", "num_docs", static_cast<double>(kDocs));

  if (recall < 0.95) {
    std::fprintf(stderr, "WARNING: LSH recall@10 %.3f below the 0.95 "
                 "guardrail\n", recall);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace stm

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--smoke") {
    return stm::RunSmoke();
  }
  return stm::RunFull();
}
