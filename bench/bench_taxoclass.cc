// E9 — TaxoClass results table (NAACL'21).
//
// Example-F1 and P@1 on the Amazon-531-like and DBpedia-298-like
// multi-label taxonomies (scaled down). Rows: WeSHClass (paths as label
// sets), Hier-0Shot-TC (the relevance model alone, top-down), a
// semi-supervised bound trained on 30% gold labels, and TaxoClass.
//
// Expected shape (paper): TaxoClass > Hier-0Shot-TC > semi-supervised at
// this label budget > WeSHClass.

#include <set>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/taxoclass.h"
#include "core/weshclass.h"
#include "eval/metrics.h"
#include "nn/feature_classifier.h"

namespace stm {
namespace {

struct Entry {
  std::string name;
  datasets::SyntheticDataset data;
  std::vector<std::vector<int32_t>> node_names;
};

Entry MakeEntry(const std::string& name, datasets::SyntheticSpec spec) {
  spec.num_docs = 350;
  spec.pretrain_docs = 900;
  Entry entry;
  entry.name = name;
  entry.data = datasets::Generate(spec);
  entry.node_names.resize(entry.data.tree.size());
  for (size_t n = 0; n < entry.data.tree.size(); ++n) {
    for (const auto& part :
         SplitWhitespace(entry.data.tree.NameOf(static_cast<int>(n)))) {
      entry.node_names[n].push_back(entry.data.corpus.vocab().IdOf(part));
    }
  }
  return entry;
}

}  // namespace

int Main() {
  std::vector<Entry> entries;
  entries.push_back(MakeEntry("Amazon", datasets::AmazonTaxoSpec(141)));
  entries.push_back(MakeEntry("DBPedia", datasets::DbpediaTaxoSpec(142)));

  std::vector<std::string> columns;
  for (const auto& entry : entries) {
    columns.push_back(entry.name + ":ExF1");
    columns.push_back(entry.name + ":P@1");
  }
  const std::vector<std::string> rows = {
      "WeSHClass", "Semi-Bow (30% labels)", "Hier-0Shot-TC",
      "TaxoClass"};
  bench::Table table("E9 TaxoClass — multi-label taxonomy classification",
                     columns);
  std::vector<std::vector<double>> cells(
      rows.size(), std::vector<double>(columns.size(), -1));

  for (size_t e = 0; e < entries.size(); ++e) {
    Entry& entry = entries[e];
    bench::Progress(entry.name);
    auto model = bench::PretrainedLm(entry.data);
    const size_t num_nodes = entry.data.tree.size();
    const size_t num_docs = entry.data.corpus.num_docs();

    // Gold label sets closed under ancestors.
    std::vector<std::vector<int>> gold;
    for (const auto& doc : entry.data.corpus.docs()) {
      gold.push_back(entry.data.tree.ClosureOf(doc.labels));
    }
    auto put = [&](size_t row, const std::vector<std::vector<int>>& pred,
                   const std::vector<std::vector<int>>& ranked) {
      cells[row][2 * e] = eval::ExampleF1(pred, gold);
      cells[row][2 * e + 1] = eval::PrecisionAtK(ranked, gold, 1);
    };

    // --- WeSHClass: single predicted path per doc. ---
    {
      core::WeshClassConfig config;
      config.classifier = "bow";
      config.seed = 151;
      core::WeshClass method(entry.data.corpus, entry.data.tree,
                             entry.node_names, config);
      const auto paths = method.Run();
      std::vector<std::vector<int>> pred(paths.size());
      std::vector<std::vector<int>> ranked(paths.size());
      for (size_t d = 0; d < paths.size(); ++d) {
        pred[d] = paths[d];
        // Rank: leaf first, then ancestors upward.
        ranked[d].assign(paths[d].rbegin(), paths[d].rend());
      }
      put(0, pred, ranked);
    }

    // --- Semi-supervised bound: multi-label bow MLP on 30% gold. ---
    {
      const size_t vocab_size = entry.data.corpus.vocab().size();
      la::Matrix features(num_docs, vocab_size);
      for (size_t d = 0; d < num_docs; ++d) {
        float total = 0.0f;
        float* row = features.Row(d);
        for (int32_t id : entry.data.corpus.docs()[d].tokens) {
          if (id < text::kNumSpecialTokens) continue;
          row[id] += 1.0f;
          total += 1.0f;
        }
        if (total > 0.0f) {
          for (size_t j = 0; j < vocab_size; ++j) row[j] /= total;
        }
      }
      std::vector<size_t> train;
      for (size_t d = 0; d < num_docs; ++d) {
        if (d % 10 < 3) train.push_back(d);
      }
      la::Matrix train_x(train.size(), vocab_size);
      la::Matrix train_y(train.size(), num_nodes);
      for (size_t i = 0; i < train.size(); ++i) {
        train_x.SetRow(i, features.RowVec(train[i]));
        for (int node : gold[train[i]]) {
          train_y.At(i, static_cast<size_t>(node)) = 1.0f;
        }
      }
      nn::FeatureMlpClassifier::Config config;
      config.input_dim = vocab_size;
      config.num_classes = num_nodes;
      config.hidden = 64;
      config.multi_label = true;
      config.seed = 152;
      nn::FeatureMlpClassifier classifier(config);
      for (int epoch = 0; epoch < 20; ++epoch) {
        classifier.TrainEpoch(train_x, train_y);
      }
      const la::Matrix probs = classifier.PredictProbs(features);
      std::vector<std::vector<int>> pred(num_docs);
      std::vector<std::vector<int>> ranked(num_docs);
      for (size_t d = 0; d < num_docs; ++d) {
        std::vector<std::pair<float, int>> scored;
        for (size_t n = 0; n < num_nodes; ++n) {
          scored.emplace_back(probs.At(d, n), static_cast<int>(n));
        }
        std::sort(scored.rbegin(), scored.rend());
        for (const auto& [p, node] : scored) ranked[d].push_back(node);
        std::set<int> set;
        for (const auto& [p, node] : scored) {
          if (p > 0.5f) {
            for (int anc : entry.data.tree.WithAncestors(node)) {
              set.insert(anc);
            }
          }
        }
        if (set.empty()) {
          for (int anc :
               entry.data.tree.WithAncestors(scored[0].second)) {
            set.insert(anc);
          }
        }
        pred[d].assign(set.begin(), set.end());
      }
      put(1, pred, ranked);
    }

    // --- Relevance model shared by Hier-0Shot-TC and TaxoClass. ---
    auto relevance = core::TrainRelevanceModel(
        model.get(), entry.data.aux_docs, entry.data.aux_labels,
        entry.data.aux_topic_name_tokens, 153);

    // --- Hier-0Shot-TC: rank nodes by relevance alone. ---
    {
      std::vector<std::vector<int32_t>> corpus_tokens;
      for (const auto& doc : entry.data.corpus.docs()) {
        corpus_tokens.push_back(doc.tokens);
      }
      std::vector<std::vector<float>> class_reps(num_nodes);
      for (size_t n = 0; n < num_nodes; ++n) {
        class_reps[n] = core::OccurrenceAverageRep(
            model.get(), corpus_tokens, entry.node_names[n]);
      }
      // Documents score independently (encoder and relevance model are
      // read-only here), so the loop parallelizes without reordering.
      std::vector<std::vector<int>> pred(num_docs);
      std::vector<std::vector<int>> ranked(num_docs);
      ParallelFor(0, num_docs, 1, [&](size_t begin, size_t end) {
        for (size_t d = begin; d < end; ++d) {
          const la::Matrix hidden = model->Encode(corpus_tokens[d]);
          std::vector<std::pair<float, int>> scored;
          for (int leaf : entry.data.tree.Leaves()) {
            const size_t n = static_cast<size_t>(leaf);
            const auto evidence =
                core::TopTokenContext(hidden, class_reps[n]);
            scored.emplace_back(relevance->Score(evidence, class_reps[n]),
                                leaf);
          }
          std::sort(scored.rbegin(), scored.rend());
          for (const auto& [p, node] : scored) ranked[d].push_back(node);
          // Predict top-2 leaves with their ancestors.
          std::set<int> set;
          for (size_t i = 0; i < 2 && i < scored.size(); ++i) {
            if (i > 0 && scored[i].first < 0.65f * scored[0].first) break;
            for (int anc :
                 entry.data.tree.WithAncestors(scored[i].second)) {
              set.insert(anc);
            }
          }
          pred[d].assign(set.begin(), set.end());
        }
      });
      put(2, pred, ranked);
    }

    // --- TaxoClass. ---
    {
      core::TaxoClassConfig config;
      config.seed = 154;
      core::TaxoClass method(entry.data.corpus, entry.data.tree,
                             model.get(), relevance.get(), config);
      const auto result = method.Run(entry.node_names);
      put(3, result.predicted, result.ranked);
    }
  }
  for (size_t r = 0; r < rows.size(); ++r) table.AddRow(rows[r], cells[r]);
  table.Print();
  return 0;
}

}  // namespace stm

int main() { return stm::Main(); }
