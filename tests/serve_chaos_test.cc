// Chaos and degradation tests for the serve layer (serve/serve.h).
//
// serve_test.cc pins the sunny-day contracts (bit-identity, admission
// control, deadlines and cancellation in isolation). This file attacks
// the overload-resilience machinery:
//
//  * the graceful-degradation ladder steps up under pressure and back
//    down when it clears, with every transition counted;
//  * the cache-only tier answers cache hits bit-identically and sheds
//    misses instead of encoding;
//  * the shed tier rejects at admission and Health() reports not-ready;
//  * the watchdog flags a worker stuck in one batch;
//  * the chaos test: 2x queue capacity of concurrent traffic with mixed
//    deadlines, cancellations, invalid requests and injected classifier
//    faults — every admitted future resolves, the request-conservation
//    law holds exactly, and every non-degraded answer is bit-identical
//    to the batch reference.
//
// Built into stm_serve_tests (ctest label "serve") so scripts/check.sh
// runs all of this under BOTH ASan and TSan.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/serve_adapters.h"
#include "index/ann.h"
#include "la/matrix.h"
#include "plm/batch_scheduler.h"
#include "plm/encode_cache.h"
#include "plm/minilm.h"
#include "plm/quantized_minilm.h"
#include "serve/fault_injection.h"
#include "serve/serve.h"
#include "text/vocabulary.h"

namespace stm {
namespace {

struct ServeGuard {
  ~ServeGuard() {
    plm::SetQuantInference(-1);
    plm::SetBatchOptions(plm::BatchOptions{});
    ThreadPool::Reset(ThreadPool::ConfiguredThreads());
  }
};

plm::MiniLmConfig TestConfig(size_t vocab) {
  plm::MiniLmConfig config;
  config.vocab_size = vocab;
  config.dim = 24;
  config.layers = 2;
  config.heads = 4;
  config.ffn_dim = 48;
  config.max_seq = 32;
  config.seed = 7;
  return config;
}

std::vector<std::vector<int32_t>> MixedDocs(size_t count, size_t vocab,
                                            uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<int32_t>> docs;
  docs.push_back({});
  for (size_t d = 1; d < count; ++d) {
    const size_t len = 2 + rng.UniformInt(30);
    std::vector<int32_t> doc(len);
    for (int32_t& id : doc) {
      id = text::kNumSpecialTokens +
           static_cast<int32_t>(
               rng.UniformInt(vocab - text::kNumSpecialTokens));
    }
    docs.push_back(std::move(doc));
  }
  return docs;
}

// Parks inside Classify until released; used to hold a drain worker busy
// so the queue (and the pressure EWMA) can be driven deterministically.
class BlockingClassifier : public serve::Classifier {
 public:
  std::string name() const override { return "blocking"; }
  size_t num_classes() const override { return 1; }
  Input input() const override { return Input::kTokens; }

  serve::Prediction Classify(const std::vector<int32_t>&, const float*,
                             const la::Matrix*) const override {
    {
      std::unique_lock<std::mutex> lock(mu_);
      ++entered_;
      entered_cv_.notify_all();
      release_cv_.wait(lock, [&] { return released_; });
    }
    serve::Prediction prediction;
    prediction.label = 0;
    return prediction;
  }

  void AwaitEntered(int count) const {
    std::unique_lock<std::mutex> lock(mu_);
    entered_cv_.wait(lock, [&] { return entered_ >= count; });
  }

  void Release() const {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    release_cv_.notify_all();
  }

 private:
  mutable std::mutex mu_;
  mutable std::condition_variable entered_cv_;
  mutable std::condition_variable release_cv_;
  mutable int entered_ = 0;
  mutable bool released_ = false;
};

class ServeChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    model_ = new plm::MiniLm(TestConfig(kVocab));
    docs_ = new std::vector<std::vector<int32_t>>(MixedDocs(48, kVocab, 33));
    class_names_ = new std::vector<std::vector<int32_t>>();
    for (size_t c = 0; c < kClasses; ++c) {
      class_names_->push_back(
          {static_cast<int32_t>(text::kNumSpecialTokens + c),
           static_cast<int32_t>(text::kNumSpecialTokens + kClasses + c)});
    }
  }

  static void TearDownTestSuite() {
    delete model_;
    delete docs_;
    delete class_names_;
    model_ = nullptr;
    docs_ = nullptr;
    class_names_ = nullptr;
  }

  static std::vector<int> BatchSimpleMatch() {
    const la::Matrix class_reps = model_->PoolBatch(*class_names_);
    const la::Matrix doc_reps = model_->PoolBatch(*docs_);
    const std::vector<std::vector<ann::Neighbor>> top =
        ann::TopKSimilar(doc_reps, class_reps, 1);
    std::vector<int> predictions(docs_->size(), 0);
    for (size_t d = 0; d < docs_->size(); ++d) {
      predictions[d] = static_cast<int>(top[d][0].id);
    }
    return predictions;
  }

  static constexpr size_t kVocab = 120;
  static constexpr size_t kClasses = 4;
  static plm::MiniLm* model_;
  static std::vector<std::vector<int32_t>>* docs_;
  static std::vector<std::vector<int32_t>>* class_names_;
};

plm::MiniLm* ServeChaosTest::model_ = nullptr;
std::vector<std::vector<int32_t>>* ServeChaosTest::docs_ = nullptr;
std::vector<std::vector<int32_t>>* ServeChaosTest::class_names_ = nullptr;

// ---- degradation ladder ----

TEST_F(ServeChaosTest, LadderStepsUpUnderPressureAndRecovers) {
  ServeGuard guard;
  plm::SetQuantInference(0);  // baseline fp32, so int8 tier IS degraded
  auto blocking = std::make_shared<BlockingClassifier>();

  serve::ServeOptions options;
  options.max_batch = 1;
  options.deadline_ms = 0.0;
  options.queue_depth = 16;
  options.workers = 1;
  options.degrade_auto = true;
  // alpha=1 makes the pressure EWMA equal the latest queue-fraction
  // sample, so the walk below is fully deterministic.
  options.degrade_alpha = 1.0;
  options.degrade_high_water = 0.3;
  options.degrade_low_water = 0.1;
  options.degrade_dwell_up = 2;
  options.degrade_dwell_down = 2;
  serve::Server server(model_, options);
  ASSERT_TRUE(server.Register("block", blocking).ok());
  ASSERT_TRUE(server
                  .Register("match", core::MakePlmSimpleMatchServable(
                                         model_, *class_names_))
                  .ok());

  const std::vector<int> want = BatchSimpleMatch();
  const std::vector<int32_t> block_doc = {text::kNumSpecialTokens};

  // Park the single worker, then build queue pressure: fractions
  // 1/16 .. 5/16; the 5/16 = 0.3125 sample crosses the 0.3 high water
  // with dwell satisfied and steps kFull -> kInt8.
  std::vector<std::future<StatusOr<serve::Prediction>>> parked;
  parked.push_back(server.Submit("block", block_doc));
  blocking->AwaitEntered(1);
  for (int i = 0; i < 5; ++i) {
    parked.push_back(server.Submit("block", block_doc));
  }
  EXPECT_EQ(server.health().tier, serve::DegradeTier::kInt8);
  EXPECT_EQ(server.stats().degrade_up, 1u);

  // A pooled-input request submitted now drains at the int8 tier (the
  // 6/16 sample is dwell-blocked, so the tier cannot move again first).
  auto degraded_future = server.Submit("match", (*docs_)[1]);

  blocking->Release();
  for (auto& future : parked) {
    EXPECT_TRUE(future.get().ok());
  }
  StatusOr<serve::Prediction> degraded = degraded_future.get();
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_EQ(degraded->tier, serve::DegradeTier::kInt8);
  EXPECT_TRUE(degraded->degraded);
  EXPECT_EQ(server.stats().degraded, 1u);

  // Pressure cleared: the next submit samples 1/16 = 0.0625 < 0.1 with
  // dwell satisfied and steps back down to kFull. Requests after the
  // transition are full fidelity again, bit-identical to batch.
  EXPECT_TRUE(server.Serve("match", (*docs_)[2]).ok());
  EXPECT_EQ(server.health().tier, serve::DegradeTier::kFull);
  EXPECT_EQ(server.stats().degrade_down, 1u);
  StatusOr<serve::Prediction> recovered = server.Serve("match", (*docs_)[3]);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->tier, serve::DegradeTier::kFull);
  EXPECT_FALSE(recovered->degraded);
  EXPECT_EQ(recovered->label, want[3]);
}

TEST_F(ServeChaosTest, CacheOnlyTierServesHitsBitIdenticallyAndShedsMisses) {
  ServeGuard guard;
  plm::SetQuantInference(0);
  plm::ScopedEncodeCache cache(model_);
  auto blocking = std::make_shared<BlockingClassifier>();

  serve::ServeOptions options;
  options.max_batch = 1;
  options.deadline_ms = 0.0;
  options.queue_depth = 16;
  options.workers = 1;
  options.degrade_auto = true;
  options.degrade_alpha = 1.0;
  options.degrade_high_water = 0.3;
  options.degrade_low_water = 0.01;  // below 1/16: the tier never recovers
  options.degrade_dwell_up = 1;
  options.degrade_dwell_down = 1;
  serve::Server server(model_, options);
  ASSERT_TRUE(server.Register("block", blocking).ok());
  ASSERT_TRUE(server
                  .Register("match", core::MakePlmSimpleMatchServable(
                                         model_, *class_names_))
                  .ok());

  // Warm the cache with the full-fidelity bits for doc 1 (PoolBatch
  // inserts on miss), and compute the batch reference scores.
  const la::Matrix class_reps = model_->PoolBatch(*class_names_);
  const la::Matrix warm_rep = model_->PoolBatch({(*docs_)[1]});
  const la::Matrix panel = ann::SimilarityPanel(warm_rep, class_reps);

  // Two up-steps: fractions 5/16 then 6/16 both cross 0.3 with dwell 1,
  // landing on kCacheOnly.
  std::vector<std::future<StatusOr<serve::Prediction>>> parked;
  parked.push_back(server.Submit("block", {text::kNumSpecialTokens}));
  blocking->AwaitEntered(1);
  for (int i = 0; i < 6; ++i) {
    parked.push_back(server.Submit("block", {text::kNumSpecialTokens}));
  }
  ASSERT_EQ(server.health().tier, serve::DegradeTier::kCacheOnly);
  blocking->Release();
  for (auto& future : parked) {
    EXPECT_TRUE(future.get().ok());
  }

  // Cache hit: answered WITHOUT the encoder, bit-identical to the batch
  // panel, and NOT marked degraded (the bits came from the full path).
  StatusOr<serve::Prediction> hit = server.Serve("match", (*docs_)[1]);
  ASSERT_TRUE(hit.ok()) << hit.status().ToString();
  EXPECT_EQ(hit->tier, serve::DegradeTier::kCacheOnly);
  EXPECT_FALSE(hit->degraded);
  ASSERT_EQ(hit->scores.size(), kClasses);
  for (size_t c = 0; c < kClasses; ++c) {
    EXPECT_EQ(hit->scores[c], panel.At(0, c)) << "class " << c;
  }

  // Cache miss: shed with kUnavailable instead of encoding.
  StatusOr<serve::Prediction> miss = server.Serve("match", (*docs_)[2]);
  ASSERT_FALSE(miss.ok());
  EXPECT_EQ(miss.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(server.stats().degrade_shed, 1u);
  EXPECT_EQ(server.health().tier, serve::DegradeTier::kCacheOnly);
}

TEST_F(ServeChaosTest, ShedTierRejectsAtAdmissionAndStepsBackDown) {
  ServeGuard guard;
  plm::SetQuantInference(0);
  auto blocking = std::make_shared<BlockingClassifier>();

  serve::ServeOptions options;
  options.max_batch = 1;
  options.deadline_ms = 0.0;
  options.queue_depth = 4;
  options.workers = 1;
  options.degrade_auto = true;
  options.degrade_alpha = 1.0;
  options.degrade_high_water = 0.5;
  options.degrade_low_water = 0.3;
  options.degrade_dwell_up = 1;
  options.degrade_dwell_down = 1;
  serve::Server server(model_, options);
  ASSERT_TRUE(server.Register("block", blocking).ok());

  const std::vector<int32_t> doc = {text::kNumSpecialTokens};
  // Park, fill the queue (fractions .25, .5, .75 -> kInt8, 1.0 ->
  // kCacheOnly), then overflow: the queue-full shed samples 1.0 and steps
  // to kShed.
  std::vector<std::future<StatusOr<serve::Prediction>>> parked;
  parked.push_back(server.Submit("block", doc));
  blocking->AwaitEntered(1);
  for (int i = 0; i < 4; ++i) {
    parked.push_back(server.Submit("block", doc));
  }
  StatusOr<serve::Prediction> overflow = server.Submit("block", doc).get();
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kUnavailable);
  ASSERT_EQ(server.health().tier, serve::DegradeTier::kShed);
  EXPECT_FALSE(server.health().ready);  // load balancers should back off

  // At the shed tier, rejection happens at admission even though the
  // queue has room again after release.
  blocking->Release();
  for (auto& future : parked) {
    EXPECT_TRUE(future.get().ok());
  }
  StatusOr<serve::Prediction> shed = server.Serve("block", doc);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);

  // That rejected submit sampled an empty queue (0.0 < low water), so the
  // ladder begins stepping down; a few trickle requests walk it back to
  // kFull, and they are served normally once below kShed.
  for (int i = 0; i < 8 && server.health().tier != serve::DegradeTier::kFull;
       ++i) {
    (void)server.Serve("block", doc);
  }
  EXPECT_EQ(server.health().tier, serve::DegradeTier::kFull);
  EXPECT_TRUE(server.health().ready);
  EXPECT_GE(server.stats().degrade_down, 3u);
  EXPECT_TRUE(server.Serve("block", doc).ok());
}

// ---- watchdog ----

TEST_F(ServeChaosTest, WatchdogFlagsWorkerStuckInOneBatch) {
  ServeGuard guard;
  auto blocking = std::make_shared<BlockingClassifier>();
  serve::ServeOptions options;
  options.max_batch = 1;
  options.deadline_ms = 0.0;
  options.workers = 1;
  options.watchdog_ms = 20.0;
  serve::Server server(model_, options);
  ASSERT_TRUE(server.Register("block", blocking).ok());

  auto parked = server.Submit("block", {text::kNumSpecialTokens});
  blocking->AwaitEntered(1);
  // The worker is now stuck inside Classify; the watchdog polls at
  // watchdog_ms/4 and must flag it within a couple of thresholds.
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.stats().watchdog_stalls == 0 &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(server.stats().watchdog_stalls, 1u);
  EXPECT_EQ(server.health().stuck_workers, 1u);

  blocking->Release();
  EXPECT_TRUE(parked.get().ok());
  // The flag clears when the batch completes.
  const auto clear_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.health().stuck_workers != 0 &&
         std::chrono::steady_clock::now() < clear_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(server.health().stuck_workers, 0u);
  // A healthy fast batch afterwards is NOT flagged again.
  EXPECT_TRUE(server.Serve("block", {text::kNumSpecialTokens}).ok());
  EXPECT_EQ(server.stats().watchdog_stalls, 1u);
}

// ---- the chaos test ----

TEST_F(ServeChaosTest, ChaosEveryFutureResolvesAndAccountingBalances) {
  ServeGuard guard;
  plm::SetQuantInference(0);
  const std::vector<int> want = BatchSimpleMatch();

  auto fault = std::make_shared<serve::FaultInjectingClassifier>(
      core::MakePlmSimpleMatchServable(model_, *class_names_));
  fault->ThrowEveryNth(7);

  serve::ServeOptions options;
  options.max_batch = 8;
  options.deadline_ms = 1.0;
  options.queue_depth = 32;
  options.workers = 3;
  options.degrade_auto = true;
  options.degrade_alpha = 0.25;
  options.degrade_high_water = 0.75;
  options.degrade_low_water = 0.3;
  options.degrade_dwell_up = 4;
  options.degrade_dwell_down = 64;
  serve::Server server(model_, options);
  ASSERT_TRUE(server.Register("match", fault).ok());

  // Pre-storm sanity: sequential traffic stays at the full tier and is
  // bit-identical to batch (the every-7th fault has not armed yet at
  // call counts 1..6 of 7).
  for (size_t d = 0; d < 6; ++d) {
    StatusOr<serve::Prediction> before = server.Serve("match", (*docs_)[d]);
    ASSERT_TRUE(before.ok()) << before.status().ToString();
    EXPECT_FALSE(before->degraded);
    EXPECT_EQ(before->label, want[d]) << "doc " << d;
  }
  const uint64_t pre_storm_completed = server.stats().completed;
  EXPECT_EQ(pre_storm_completed, 6u);

  // 2x queue capacity of concurrent traffic, from several client threads,
  // with every hostile ingredient at once: tight deadlines, cancellations
  // racing the drain, invalid token ids, and a classifier that throws on
  // every 7th call.
  constexpr int kClients = 4;
  const int per_client =
      static_cast<int>(2 * options.queue_depth) / kClients;
  struct Issued {
    std::future<StatusOr<serve::Prediction>> future;
    size_t doc = 0;
    bool invalid = false;
  };
  std::mutex issued_mu;
  std::vector<Issued> issued;
  std::vector<std::thread> clients;
  std::atomic<uint64_t> submitted{0};
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      Rng rng(1000 + static_cast<uint64_t>(t));
      for (int i = 0; i < per_client; ++i) {
        const size_t d = rng.UniformInt(docs_->size());
        serve::SubmitOptions submit;
        const double coin = rng.Uniform();
        std::shared_ptr<serve::CancelToken> token;
        if (coin < 0.2) {
          submit.deadline_ms = 0.2;  // will often expire in queue
        } else if (coin < 0.4) {
          token = std::make_shared<serve::CancelToken>();
          submit.cancel = token;
        }
        Issued record;
        record.doc = d;
        if (rng.Uniform() < 0.05) {
          record.invalid = true;
          record.future =
              server.Submit("match", {static_cast<int32_t>(kVocab) + 7},
                            submit);
        } else {
          record.future = server.Submit("match", (*docs_)[d], submit);
        }
        ++submitted;
        if (token != nullptr && rng.Uniform() < 0.5) token->Cancel();
        {
          std::lock_guard<std::mutex> lock(issued_mu);
          issued.push_back(std::move(record));
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  ASSERT_EQ(submitted.load(), static_cast<uint64_t>(2 * options.queue_depth));
  submitted += 6;  // the pre-storm requests share the same counters

  // EVERY future must resolve — no stranded promises, no matter which mix
  // of faults each request hit.
  size_t ok_full_fidelity = 0;
  for (Issued& record : issued) {
    ASSERT_EQ(record.future.wait_for(std::chrono::seconds(60)),
              std::future_status::ready)
        << "stranded promise";
    StatusOr<serve::Prediction> result = record.future.get();
    if (record.invalid) {
      ASSERT_FALSE(result.ok());
      EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
      continue;
    }
    if (result.ok()) {
      // Non-degraded answers are bit-identical to the batch reference
      // even amid the chaos.
      if (!result->degraded) {
        EXPECT_EQ(result->label, want[record.doc])
            << "doc " << record.doc;
        ++ok_full_fidelity;
      }
    } else {
      const StatusCode code = result.status().code();
      EXPECT_TRUE(code == StatusCode::kUnavailable ||
                  code == StatusCode::kDeadlineExceeded ||
                  code == StatusCode::kCancelled)
          << result.status().ToString();
    }
  }

  // The request-conservation law: every admitted request lands in exactly
  // one terminal bucket.
  const serve::Server::Stats stats = server.stats();
  EXPECT_EQ(stats.accepted,
            stats.completed + stats.cancelled + stats.deadline_exceeded +
                stats.degrade_shed + stats.failed_requests +
                stats.failed_batch_requests + stats.orphaned);
  EXPECT_EQ(stats.accepted + stats.shed + stats.invalid, submitted.load());
  EXPECT_EQ(stats.failed_batches, 0u);  // faults are per-request here
  // Whether any storm request completed at full fidelity depends on how
  // fast the ladder stepped; when one did, it was checked bit-identical
  // above. The pre-storm phase pinned the guarantee deterministically.
  (void)ok_full_fidelity;

  // And the server is still healthy: after the storm clears (the ladder
  // may need trickle traffic to step back down, and the every-7th fault
  // may still fire), a clean request gets the reference answer.
  bool served_clean = false;
  for (int attempt = 0; attempt < 300 && !served_clean; ++attempt) {
    StatusOr<serve::Prediction> after = server.Serve("match", (*docs_)[1]);
    if (after.ok() && !after->degraded) {
      EXPECT_EQ(after->label, want[1]);
      served_clean = true;
    }
  }
  EXPECT_TRUE(served_clean);
}

}  // namespace
}  // namespace stm
