#include "text/corpus.h"

#include <unordered_set>

#include "common/check.h"
#include "common/rng.h"

namespace stm::text {

int Document::Label() const {
  STM_CHECK_EQ(labels.size(), 1u) << "document is not single-label";
  return labels[0];
}

Status CorpusReader::VisitAll(
    const std::function<void(size_t doc, const DocView&)>& fn) const {
  for (size_t shard = 0; shard < num_shards(); ++shard) {
    STM_RETURN_IF_ERROR(VisitShard(shard, fn));
  }
  return Status::Ok();
}

std::pair<size_t, size_t> Corpus::ShardDocRange(size_t shard) const {
  STM_CHECK_EQ(shard, 0u);
  return {0, docs_.size()};
}

Status Corpus::VisitShard(
    size_t shard,
    const std::function<void(size_t doc, const DocView&)>& fn) const {
  STM_CHECK_EQ(shard, 0u);
  for (size_t d = 0; d < docs_.size(); ++d) {
    const Document& doc = docs_[d];
    DocView view;
    view.tokens = doc.tokens.data();
    view.num_tokens = doc.tokens.size();
    view.labels = doc.labels.data();
    view.num_labels = doc.labels.size();
    fn(d, view);
  }
  return Status::Ok();
}

std::vector<int32_t> Corpus::DocumentFrequencies() const {
  std::vector<int32_t> df(vocab_.size(), 0);
  std::unordered_set<int32_t> seen;
  for (const Document& doc : docs_) {
    seen.clear();
    for (int32_t id : doc.tokens) {
      if (seen.insert(id).second) df[static_cast<size_t>(id)]++;
    }
  }
  return df;
}

std::vector<int64_t> Corpus::TokenCounts() const {
  std::vector<int64_t> counts(vocab_.size(), 0);
  for (const Document& doc : docs_) {
    for (int32_t id : doc.tokens) counts[static_cast<size_t>(id)]++;
  }
  return counts;
}

std::vector<int> Corpus::GoldLabels() const {
  std::vector<int> labels;
  labels.reserve(docs_.size());
  for (const Document& doc : docs_) labels.push_back(doc.Label());
  return labels;
}

std::vector<std::pair<size_t, size_t>> Corpus::Occurrences(
    int32_t token_id, size_t max_occurrences) const {
  std::vector<std::pair<size_t, size_t>> hits;
  for (size_t d = 0; d < docs_.size(); ++d) {
    const auto& tokens = docs_[d].tokens;
    for (size_t t = 0; t < tokens.size(); ++t) {
      if (tokens[t] == token_id) {
        hits.emplace_back(d, t);
        if (max_occurrences > 0 && hits.size() >= max_occurrences) {
          return hits;
        }
      }
    }
  }
  return hits;
}

Split MakeSplit(size_t num_docs, double test_fraction, uint64_t seed) {
  STM_CHECK_GE(test_fraction, 0.0);
  STM_CHECK_LE(test_fraction, 1.0);
  Rng rng(seed);
  std::vector<size_t> perm = rng.Permutation(num_docs);
  const size_t num_test = static_cast<size_t>(test_fraction * num_docs);
  Split split;
  split.test.assign(perm.begin(), perm.begin() + num_test);
  split.train.assign(perm.begin() + num_test, perm.end());
  return split;
}

}  // namespace stm::text
