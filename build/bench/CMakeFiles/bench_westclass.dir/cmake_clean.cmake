file(REMOVE_RECURSE
  "CMakeFiles/bench_westclass.dir/bench_westclass.cc.o"
  "CMakeFiles/bench_westclass.dir/bench_westclass.cc.o.d"
  "bench_westclass"
  "bench_westclass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_westclass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
