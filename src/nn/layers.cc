#include "nn/layers.h"

#include "common/check.h"

namespace stm::nn {

Linear::Linear(ParameterStore* store, const std::string& name, size_t in,
               size_t out, Rng& rng)
    : weight_(store->Register(name + ".weight",
                              Tensor::XavierParam(in, out, rng))),
      bias_(store->Register(name + ".bias", Tensor::ZeroParam({out}))) {}

Tensor Linear::Forward(const Tensor& x) const {
  return AddBias(MatMul(x, weight_), bias_);
}

Embedding::Embedding(ParameterStore* store, const std::string& name,
                     size_t vocab, size_t dim, Rng& rng)
    : table_(store->Register(
          name + ".table",
          Tensor::Param({vocab, dim}, 0.5f / static_cast<float>(dim), rng))),
      dim_(dim) {}

Tensor Embedding::Forward(const std::vector<int32_t>& ids) const {
  return Rows(table_, ids);
}

void Embedding::LoadRows(const std::vector<std::vector<float>>& values) {
  const size_t vocab = table_.dim(0);
  for (size_t r = 0; r < values.size() && r < vocab; ++r) {
    STM_CHECK_EQ(values[r].size(), dim_);
    for (size_t j = 0; j < dim_; ++j) {
      table_.value()[r * dim_ + j] = values[r][j];
    }
  }
}

LayerNormModule::LayerNormModule(ParameterStore* store,
                                 const std::string& name, size_t dim)
    : gamma_(store->Register(name + ".gamma", Tensor::OnesParam({dim}))),
      beta_(store->Register(name + ".beta", Tensor::ZeroParam({dim}))) {}

Tensor LayerNormModule::Forward(const Tensor& x) const {
  return LayerNorm(x, gamma_, beta_);
}

}  // namespace stm::nn
