#include "common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace stm {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find(sep, start);
    if (end == std::string_view::npos) end = text.size();
    if (end > start) pieces.emplace_back(text.substr(start, end - start));
    start = end + 1;
  }
  return pieces;
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> pieces;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) pieces.emplace_back(text.substr(start, i - start));
  }
  return pieces;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return std::string(text.substr(begin, end - begin));
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed <= 0) {
    va_end(args_copy);
    return std::string();
  }
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

}  // namespace stm
