// Out-of-core corpus store: round-trip fidelity, bit-identity of every
// streaming consumer against its in-RAM counterpart at several shard
// sizes, and the corruption/repair paths (torn manifest, bit-flipped
// shard, missing sidecar, mmap-failure fallback, mid-ingest I/O errors).

#include "text/corpus_store.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "common/env.h"
#include "common/rng.h"
#include "common/status.h"
#include "embedding/sgns.h"
#include "index/ann.h"
#include "la/matrix.h"
#include "plm/minilm.h"
#include "text/corpus.h"
#include "text/corpus_io.h"
#include "text/tfidf.h"

namespace stm::text {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

constexpr size_t kTestWords = 50;

// A small corpus shaped like the tutorial datasets: 3 labels, short
// documents, counts accumulated per occurrence as real ingestion does.
// Lengths start at `min_len` (pass 0 to include empty documents).
Corpus MakeCorpus(size_t num_docs, uint64_t seed, size_t min_len = 0) {
  Corpus corpus;
  corpus.label_names() = {"alpha", "beta", "gamma"};
  std::vector<int32_t> ids(kTestWords);
  for (size_t w = 0; w < kTestWords; ++w) {
    ids[w] = corpus.vocab().AddToken("w" + std::to_string(w), 0);
  }
  Rng rng(seed);
  for (size_t i = 0; i < num_docs; ++i) {
    Document doc;
    const size_t len = min_len + rng.UniformInt(13 - min_len);
    doc.tokens.resize(len);
    for (int32_t& id : doc.tokens) {
      id = ids[rng.UniformInt(kTestWords)];
      corpus.vocab().AddCount(id, 1);
    }
    doc.labels.push_back(static_cast<int>(i % 3));
    corpus.docs().push_back(std::move(doc));
  }
  return corpus;
}

CorpusStoreOptions ShardDocsOptions(size_t shard_docs) {
  CorpusStoreOptions options;
  options.shard_docs = shard_docs;
  return options;
}

// Writes `corpus` with the given options and opens the result.
std::unique_ptr<ShardedCorpus> WriteAndOpen(Env* env, const Corpus& corpus,
                                            const std::string& dir,
                                            const CorpusStoreOptions& options) {
  Status written = WriteCorpusStore(env, corpus, dir, options);
  EXPECT_TRUE(written.ok()) << written.message();
  auto opened = ShardedCorpus::Open(env, dir, options);
  EXPECT_TRUE(opened.ok()) << opened.status().message();
  return std::move(opened).value();
}

// Collects every (doc index, tokens, labels) triple a reader serves.
struct VisitedDoc {
  size_t index = 0;
  std::vector<int32_t> tokens;
  std::vector<int32_t> labels;
  bool operator==(const VisitedDoc& other) const {
    return index == other.index && tokens == other.tokens &&
           labels == other.labels;
  }
};

std::vector<VisitedDoc> VisitedDocs(const CorpusReader& reader) {
  std::vector<VisitedDoc> docs;
  Status visited = reader.VisitAll([&](size_t doc, const DocView& view) {
    VisitedDoc out;
    out.index = doc;
    out.tokens.assign(view.tokens, view.tokens + view.num_tokens);
    out.labels.assign(view.labels, view.labels + view.num_labels);
    docs.push_back(std::move(out));
  });
  EXPECT_TRUE(visited.ok()) << visited.message();
  return docs;
}

void ExpectSameDocs(const Corpus& corpus, const CorpusReader& reader) {
  ASSERT_EQ(reader.num_docs(), corpus.num_docs());
  const std::vector<VisitedDoc> got = VisitedDocs(reader);
  ASSERT_EQ(got.size(), corpus.num_docs());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].index, i);
    EXPECT_EQ(got[i].tokens, corpus.docs()[i].tokens);
    ASSERT_EQ(got[i].labels.size(), corpus.docs()[i].labels.size());
    for (size_t l = 0; l < got[i].labels.size(); ++l) {
      EXPECT_EQ(got[i].labels[l],
                static_cast<int32_t>(corpus.docs()[i].labels[l]));
    }
  }
  EXPECT_EQ(reader.DocumentFrequencies(), corpus.DocumentFrequencies());
  EXPECT_EQ(reader.TokenCounts(), corpus.TokenCounts());
  EXPECT_EQ(reader.label_names(), corpus.label_names());
  ASSERT_EQ(reader.vocab().size(), corpus.vocab().size());
  for (size_t id = 0; id < corpus.vocab().size(); ++id) {
    EXPECT_EQ(reader.vocab().TokenOf(static_cast<int32_t>(id)),
              corpus.vocab().TokenOf(static_cast<int32_t>(id)));
    EXPECT_EQ(reader.vocab().CountOf(static_cast<int32_t>(id)),
              corpus.vocab().CountOf(static_cast<int32_t>(id)));
  }
}

TEST(CorpusStoreTest, RoundTripAcrossShardSizes) {
  Env* env = Env::Default();
  const Corpus corpus = MakeCorpus(23, 11);
  // One doc per shard, small shards, everything in one shard.
  const size_t sizes[] = {1, 4, 1u << 20};
  for (size_t shard_docs : sizes) {
    const std::string dir =
        TempPath("store_roundtrip_" + std::to_string(shard_docs));
    auto store = WriteAndOpen(env, corpus, dir, ShardDocsOptions(shard_docs));
    ExpectSameDocs(corpus, *store);
    if (shard_docs == 1) {
      EXPECT_EQ(store->num_shards(), corpus.num_docs());
    }
    if (shard_docs == 1u << 20) {
      EXPECT_EQ(store->num_shards(), 1u);
    }
    // Shard ranges tile [0, num_docs) in order.
    size_t next = 0;
    for (size_t s = 0; s < store->num_shards(); ++s) {
      const auto [begin, end] = store->ShardDocRange(s);
      EXPECT_EQ(begin, next);
      EXPECT_GT(end, begin);
      next = end;
    }
    EXPECT_EQ(next, store->num_docs());
  }
}

TEST(CorpusStoreTest, ByteBudgetSplitsShards) {
  Env* env = Env::Default();
  const Corpus corpus = MakeCorpus(16, 3, /*min_len=*/4);
  CorpusStoreOptions options;
  options.shard_bytes = 64;  // a handful of docs per shard
  const std::string dir = TempPath("store_bytebudget");
  auto store = WriteAndOpen(env, corpus, dir, options);
  EXPECT_GT(store->num_shards(), 1u);
  ExpectSameDocs(corpus, *store);
}

TEST(CorpusStoreTest, EmptyCorpusRoundTrips) {
  Env* env = Env::Default();
  const Corpus corpus = MakeCorpus(0, 1);
  const std::string dir = TempPath("store_empty");
  auto store = WriteAndOpen(env, corpus, dir, CorpusStoreOptions());
  EXPECT_EQ(store->num_docs(), 0u);
  EXPECT_EQ(store->num_shards(), 0u);
  ExpectSameDocs(corpus, *store);
}

TEST(CorpusStoreTest, MissingStoreIsUnavailable) {
  auto store =
      ShardedCorpus::Open(Env::Default(), TempPath("no_such_store"));
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kUnavailable);
}

TEST(CorpusStoreTest, InRamCorpusIsOneShardReader) {
  const Corpus corpus = MakeCorpus(9, 5);
  EXPECT_EQ(corpus.num_shards(), 1u);
  EXPECT_EQ(corpus.ShardDocRange(0), std::make_pair(size_t{0}, size_t{9}));
  ExpectSameDocs(corpus, corpus);
}

// ---- streaming consumers: bit-identical to the in-RAM path ----

TEST(CorpusStoreTest, TfIdfStreamingBitIdentical) {
  Env* env = Env::Default();
  const Corpus corpus = MakeCorpus(31, 7);
  const TfIdf in_ram(corpus);
  const std::vector<SparseVector> want = in_ram.TransformAll(corpus);
  for (size_t shard_docs : {size_t{1}, size_t{5}, size_t{1} << 20}) {
    const std::string dir =
        TempPath("store_tfidf_" + std::to_string(shard_docs));
    auto store = WriteAndOpen(env, corpus, dir, ShardDocsOptions(shard_docs));
    const TfIdf streamed(*store);
    for (size_t id = 0; id < corpus.vocab().size(); ++id) {
      EXPECT_EQ(streamed.IdfOf(static_cast<int32_t>(id)),
                in_ram.IdfOf(static_cast<int32_t>(id)));
    }
    std::vector<SparseVector> got;
    for (size_t s = 0; s < store->num_shards(); ++s) {
      auto shard = streamed.TransformShard(*store, s);
      ASSERT_TRUE(shard.ok()) << shard.status().message();
      for (SparseVector& v : shard.value()) got.push_back(std::move(v));
    }
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].ids, want[i].ids);
      ASSERT_EQ(got[i].weights.size(), want[i].weights.size());
      // Bitwise: the streaming pass must round identically.
      EXPECT_EQ(std::memcmp(got[i].weights.data(), want[i].weights.data(),
                            want[i].weights.size() * sizeof(float)),
                0);
    }
  }
}

TEST(CorpusStoreTest, SgnsStreamingBitIdentical) {
  Env* env = Env::Default();
  const Corpus corpus = MakeCorpus(40, 13, /*min_len=*/2);
  embedding::SgnsConfig config;
  config.dim = 16;
  config.epochs = 2;
  config.seed = 21;
  std::vector<std::vector<int32_t>> docs;
  for (const Document& doc : corpus.docs()) docs.push_back(doc.tokens);
  const embedding::WordEmbeddings want =
      embedding::WordEmbeddings::Train(docs, corpus.vocab().size(), config);
  for (size_t shard_docs : {size_t{1}, size_t{7}, size_t{1} << 20}) {
    const std::string dir =
        TempPath("store_sgns_" + std::to_string(shard_docs));
    auto store = WriteAndOpen(env, corpus, dir, ShardDocsOptions(shard_docs));
    auto got = embedding::WordEmbeddings::Train(*store, config);
    ASSERT_TRUE(got.ok()) << got.status().message();
    ASSERT_EQ(got.value().vectors().rows(), want.vectors().rows());
    ASSERT_EQ(got.value().vectors().cols(), want.vectors().cols());
    EXPECT_EQ(std::memcmp(got.value().vectors().data(),
                          want.vectors().data(),
                          want.vectors().size() * sizeof(float)),
              0);
  }
}

// RowSource backed by a flat float vector — the out-of-core shape (no
// la::Matrix behind it), exercising both block and single-row reads.
class VectorRowSource : public cluster::RowSource {
 public:
  VectorRowSource(std::vector<float> data, size_t cols)
      : data_(std::move(data)), cols_(cols) {}
  size_t rows() const override { return data_.size() / cols_; }
  size_t cols() const override { return cols_; }
  void ReadRows(size_t begin, size_t end, float* out) const override {
    std::memcpy(out, data_.data() + begin * cols_,
                (end - begin) * cols_ * sizeof(float));
  }

 private:
  std::vector<float> data_;
  size_t cols_;
};

TEST(CorpusStoreTest, KMeansStreamBitIdentical) {
  const size_t n = 700;  // several streaming blocks
  const size_t d = 8;
  Rng rng(33);
  la::Matrix data(n, d);
  for (size_t i = 0; i < data.size(); ++i) {
    data.data()[i] = static_cast<float>(rng.Uniform()) - 0.5f;
  }
  for (const bool spherical : {false, true}) {
    cluster::KMeansOptions options;
    options.k = 5;
    options.spherical = spherical;
    const cluster::KMeansResult want = cluster::KMeans(data, options);
    const VectorRowSource source(
        std::vector<float>(data.data(), data.data() + data.size()), d);
    const cluster::KMeansResult got =
        cluster::KMeansStream(source, options);
    EXPECT_EQ(got.assignment, want.assignment);
    EXPECT_EQ(got.inertia, want.inertia);
    ASSERT_EQ(got.centroids.size(), want.centroids.size());
    EXPECT_EQ(std::memcmp(got.centroids.data(), want.centroids.data(),
                          want.centroids.size() * sizeof(float)),
              0);
  }
}

TEST(CorpusStoreTest, PoolCorpusBitIdentical) {
  Env* env = Env::Default();
  const Corpus corpus = MakeCorpus(18, 17, /*min_len=*/1);
  plm::MiniLmConfig config;
  config.vocab_size = corpus.vocab().size();
  config.dim = 16;
  config.layers = 1;
  config.heads = 4;
  config.ffn_dim = 32;
  config.max_seq = 16;
  config.seed = 9;
  plm::MiniLm model(config);
  std::vector<std::vector<int32_t>> docs;
  for (const Document& doc : corpus.docs()) docs.push_back(doc.tokens);
  const la::Matrix want = model.PoolBatch(docs);

  // In-RAM corpus (one shard) and sharded stores must pool identically.
  auto in_ram = plm::PoolCorpus(model, corpus);
  ASSERT_TRUE(in_ram.ok()) << in_ram.status().message();
  EXPECT_EQ(std::memcmp(in_ram.value().data(), want.data(),
                        want.size() * sizeof(float)),
            0);
  for (size_t shard_docs : {size_t{1}, size_t{5}}) {
    const std::string dir =
        TempPath("store_pool_" + std::to_string(shard_docs));
    auto store = WriteAndOpen(env, corpus, dir, ShardDocsOptions(shard_docs));
    auto got = plm::PoolCorpus(model, *store);
    ASSERT_TRUE(got.ok()) << got.status().message();
    ASSERT_EQ(got.value().rows(), want.rows());
    EXPECT_EQ(std::memcmp(got.value().data(), want.data(),
                          want.size() * sizeof(float)),
              0);
  }
}

TEST(CorpusStoreTest, PoolCorpusSkipEmptyLeavesZeroRows) {
  Corpus corpus = MakeCorpus(6, 23, /*min_len=*/1);
  corpus.docs()[2].tokens.clear();  // one empty doc
  plm::MiniLmConfig config;
  config.vocab_size = corpus.vocab().size();
  config.dim = 16;
  config.layers = 1;
  config.heads = 4;
  config.ffn_dim = 32;
  config.max_seq = 16;
  plm::MiniLm model(config);
  auto reps = plm::PoolCorpus(model, corpus, /*skip_empty=*/true);
  ASSERT_TRUE(reps.ok()) << reps.status().message();
  for (size_t j = 0; j < reps.value().cols(); ++j) {
    EXPECT_EQ(reps.value().Row(2)[j], 0.0f);
  }
  float nonzero = 0.0f;
  for (size_t j = 0; j < reps.value().cols(); ++j) {
    nonzero += std::abs(reps.value().Row(0)[j]);
  }
  EXPECT_GT(nonzero, 0.0f);
}

TEST(CorpusStoreTest, IndexBuilderBitIdenticalToBuild) {
  const size_t rows = 300;
  const size_t dim = 16;
  Rng rng(41);
  la::Matrix base(rows, dim);
  for (size_t i = 0; i < base.size(); ++i) {
    base.data()[i] = static_cast<float>(rng.Uniform()) - 0.5f;
  }
  la::Matrix queries(7, dim);
  for (size_t i = 0; i < queries.size(); ++i) {
    queries.data()[i] = static_cast<float>(rng.Uniform()) - 0.5f;
  }
  for (const ann::AnnMode mode : {ann::AnnMode::kOff, ann::AnnMode::kLsh}) {
    ann::IndexOptions options;
    options.mode = mode;
    options.bits = 64;
    const ann::Index want = ann::Index::Build(base, options);
    for (size_t block : {size_t{1}, size_t{7}, size_t{64}}) {
      ann::IndexBuilder builder(dim, rows, options);
      for (size_t r = 0; r < rows; r += block) {
        const size_t count = std::min(block, rows - r);
        builder.Add(base.Row(r), count);
      }
      const ann::Index got = builder.Finish();
      EXPECT_EQ(got.lsh_enabled(), want.lsh_enabled());
      const auto want_top = want.TopK(queries, 5);
      const auto got_top = got.TopK(queries, 5);
      ASSERT_EQ(got_top.size(), want_top.size());
      for (size_t q = 0; q < want_top.size(); ++q) {
        ASSERT_EQ(got_top[q].size(), want_top[q].size());
        for (size_t j = 0; j < want_top[q].size(); ++j) {
          EXPECT_EQ(got_top[q][j].id, want_top[q][j].id);
          EXPECT_EQ(got_top[q][j].score, want_top[q][j].score);
        }
      }
    }
  }
}

// ---- corruption and repair ----

TEST(CorpusStoreTest, TornManifestRepairsToFullStore) {
  FaultInjectingEnv env(Env::Default());
  const Corpus corpus = MakeCorpus(10, 19);
  const std::string dir = TempPath("store_torn_manifest");
  ASSERT_TRUE(WriteCorpusStore(&env, corpus, dir, ShardDocsOptions(2)).ok());

  const std::string manifest = dir + "/manifest.stmc";
  auto bytes = env.ReadFile(manifest);
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(
      env.WriteFileAtomic(manifest,
                          bytes.value().substr(0, bytes.value().size() - 5))
          .ok());

  auto broken = ShardedCorpus::Open(&env, dir, CorpusStoreOptions());
  ASSERT_FALSE(broken.ok());
  EXPECT_EQ(broken.status().code(), StatusCode::kCorruptData);

  // Repair rebuilds the manifest from the (all intact) shards.
  auto repaired = OpenOrRepairCorpusStore(&env, dir, CorpusStoreOptions());
  ASSERT_TRUE(repaired.ok()) << repaired.status().message();
  ExpectSameDocs(corpus, *repaired.value());
}

TEST(CorpusStoreTest, BitFlippedShardIsQuarantined) {
  Env* env = Env::Default();
  const Corpus corpus = MakeCorpus(10, 29, /*min_len=*/2);
  const std::string dir = TempPath("store_bitflip");
  ASSERT_TRUE(WriteCorpusStore(env, corpus, dir, ShardDocsOptions(2)).ok());

  // Flip one payload byte of the second shard (header is 24 bytes).
  const std::string victim = dir + "/shard-000001.stmc";
  auto bytes = env->ReadFile(victim);
  ASSERT_TRUE(bytes.ok());
  std::string flipped = bytes.value();
  flipped[40] ^= 0x01;
  ASSERT_TRUE(env->WriteFileAtomic(victim, flipped).ok());

  // Open still succeeds (the manifest is fine); the visit detects it.
  auto store = ShardedCorpus::Open(env, dir, CorpusStoreOptions());
  ASSERT_TRUE(store.ok()) << store.status().message();
  Status visit = store.value()->VisitShard(1, [](size_t, const DocView&) {});
  ASSERT_FALSE(visit.ok());
  EXPECT_EQ(visit.code(), StatusCode::kCorruptData);

  auto report = RepairCorpusStore(env, dir);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_EQ(report.value().shards_quarantined, 1u);
  EXPECT_EQ(report.value().shards_kept, 4u);
  EXPECT_EQ(report.value().docs_kept, 8u);
  EXPECT_TRUE(env->FileExists(victim + ".corrupt"));
  EXPECT_FALSE(env->FileExists(victim));

  // The reopened store serves the surviving docs, renumbered contiguously.
  auto reopened = ShardedCorpus::Open(env, dir, CorpusStoreOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  EXPECT_EQ(reopened.value()->num_docs(), 8u);
  const std::vector<VisitedDoc> got = VisitedDocs(*reopened.value());
  ASSERT_EQ(got.size(), 8u);
  // Shard 1 held global docs 2 and 3.
  std::vector<const Document*> survivors;
  for (size_t i = 0; i < corpus.num_docs(); ++i) {
    if (i == 2 || i == 3) continue;
    survivors.push_back(&corpus.docs()[i]);
  }
  std::vector<int32_t> expected_df(corpus.vocab().size(), 0);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].index, i);
    EXPECT_EQ(got[i].tokens, survivors[i]->tokens);
    std::vector<bool> seen(corpus.vocab().size(), false);
    for (int32_t id : survivors[i]->tokens) {
      if (!seen[static_cast<size_t>(id)]) {
        seen[static_cast<size_t>(id)] = true;
        expected_df[static_cast<size_t>(id)]++;
      }
    }
  }
  EXPECT_EQ(reopened.value()->DocumentFrequencies(), expected_df);
}

TEST(CorpusStoreTest, DeletedSidecarIsRebuilt) {
  Env* env = Env::Default();
  const Corpus corpus = MakeCorpus(10, 37);
  const std::string dir = TempPath("store_sidecar");
  ASSERT_TRUE(WriteCorpusStore(env, corpus, dir, ShardDocsOptions(3)).ok());
  ASSERT_TRUE(env->Delete(dir + "/shard-000001.counts.stmc").ok());

  auto broken = ShardedCorpus::Open(env, dir, CorpusStoreOptions());
  ASSERT_FALSE(broken.ok());
  EXPECT_EQ(broken.status().code(), StatusCode::kCorruptData);

  auto report = RepairCorpusStore(env, dir);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_EQ(report.value().shards_quarantined, 0u);
  EXPECT_EQ(report.value().sidecars_rebuilt, 1u);
  EXPECT_EQ(report.value().docs_kept, corpus.num_docs());

  auto reopened = ShardedCorpus::Open(env, dir, CorpusStoreOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  ExpectSameDocs(corpus, *reopened.value());
}

TEST(CorpusStoreTest, MmapFailureFallsBackToReads) {
  FaultInjectingEnv env(Env::Default());
  const Corpus corpus = MakeCorpus(8, 43);
  const std::string dir = TempPath("store_mmap_fallback");
  ASSERT_TRUE(WriteCorpusStore(&env, corpus, dir, ShardDocsOptions(4)).ok());
  auto store = ShardedCorpus::Open(&env, dir, CorpusStoreOptions());
  ASSERT_TRUE(store.ok()) << store.status().message();

  const std::vector<VisitedDoc> mapped_docs = VisitedDocs(*store.value());
  EXPECT_TRUE(store.value()->last_visit_mapped());

  env.FailMmapNext(static_cast<int>(store.value()->num_shards()));
  const std::vector<VisitedDoc> fallback_docs = VisitedDocs(*store.value());
  EXPECT_FALSE(store.value()->last_visit_mapped());
  EXPECT_EQ(fallback_docs.size(), mapped_docs.size());
  for (size_t i = 0; i < mapped_docs.size(); ++i) {
    EXPECT_TRUE(fallback_docs[i] == mapped_docs[i]);
  }

  // Explicitly disabled mmap serves the same bytes too.
  CorpusStoreOptions no_mmap;
  no_mmap.use_mmap = false;
  auto heap_store = ShardedCorpus::Open(&env, dir, no_mmap);
  ASSERT_TRUE(heap_store.ok());
  const std::vector<VisitedDoc> heap_docs = VisitedDocs(*heap_store.value());
  EXPECT_FALSE(heap_store.value()->last_visit_mapped());
  for (size_t i = 0; i < mapped_docs.size(); ++i) {
    EXPECT_TRUE(heap_docs[i] == mapped_docs[i]);
  }
}

// ---- streaming TSV ingest ----

TEST(CorpusStoreTest, LoadTsvStreamsAndRollsBackOnReadError) {
  FaultInjectingEnv env(Env::Default());
  const std::string first = TempPath("stream_first.tsv");
  const std::string second = TempPath("stream_second.tsv");
  ASSERT_TRUE(env.WriteFileAtomic(
                     first, "alpha\thello world\nbeta\tgoodbye world\n")
                  .ok());
  std::string big;
  for (int i = 0; i < 200; ++i) {
    big += "gamma\tfresh tokens line " + std::to_string(i) + "\n";
  }
  ASSERT_TRUE(env.WriteFileAtomic(second, big).ok());

  Corpus corpus;
  ASSERT_TRUE(LoadTsv(&env, first, &corpus).ok());
  EXPECT_EQ(corpus.num_docs(), 2u);
  const size_t docs_before = corpus.num_docs();
  const size_t vocab_before = corpus.vocab().size();
  const size_t labels_before = corpus.label_names().size();
  std::vector<int64_t> counts_before(vocab_before);
  for (size_t id = 0; id < vocab_before; ++id) {
    counts_before[id] = corpus.vocab().CountOf(static_cast<int32_t>(id));
  }

  // A mid-stream read failure must leave no partial ingest behind.
  env.FailSequentialReadAfter(512);
  Status failed = LoadTsv(&env, second, &corpus);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(corpus.num_docs(), docs_before);
  EXPECT_EQ(corpus.vocab().size(), vocab_before);
  EXPECT_EQ(corpus.label_names().size(), labels_before);
  for (size_t id = 0; id < vocab_before; ++id) {
    EXPECT_EQ(corpus.vocab().CountOf(static_cast<int32_t>(id)),
              counts_before[id]);
  }

  // The same file loads cleanly once the fault clears.
  Status retried = LoadTsv(&env, second, &corpus);
  ASSERT_TRUE(retried.ok()) << retried.message();
  EXPECT_EQ(corpus.num_docs(), docs_before + 200);
}

// ---- knob parsing ----

TEST(CorpusStoreTest, OptionsFromEnvParsesKnobs) {
  ::setenv("STM_CORPUS_SHARD_DOCS", "3", 1);
  ::setenv("STM_CORPUS_SHARD_BYTES", "123", 1);
  ::setenv("STM_CORPUS_MMAP", "0", 1);
  CorpusStoreOptions options = CorpusStoreOptionsFromEnv();
  EXPECT_EQ(options.shard_docs, 3u);
  EXPECT_EQ(options.shard_bytes, 123u);
  EXPECT_FALSE(options.use_mmap);

  // Malformed values warn and keep the defaults.
  ::setenv("STM_CORPUS_SHARD_DOCS", "banana", 1);
  ::setenv("STM_CORPUS_SHARD_BYTES", "", 1);
  ::setenv("STM_CORPUS_MMAP", "maybe", 1);
  options = CorpusStoreOptionsFromEnv();
  EXPECT_EQ(options.shard_docs, CorpusStoreOptions().shard_docs);
  EXPECT_EQ(options.shard_bytes, CorpusStoreOptions().shard_bytes);
  EXPECT_EQ(options.use_mmap, CorpusStoreOptions().use_mmap);

  ::unsetenv("STM_CORPUS_SHARD_DOCS");
  ::unsetenv("STM_CORPUS_SHARD_BYTES");
  ::unsetenv("STM_CORPUS_MMAP");
}

}  // namespace
}  // namespace stm::text
