file(REMOVE_RECURSE
  "CMakeFiles/bench_weshclass.dir/bench_weshclass.cc.o"
  "CMakeFiles/bench_weshclass.dir/bench_weshclass.cc.o.d"
  "bench_weshclass"
  "bench_weshclass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_weshclass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
